module github.com/optik-go/optik

go 1.24
