// Reclaimer is the structure-agnostic node-lifecycle carrier. It began
// life as ds/hashmap's private reclaimer, shaped around overflow-chain
// nodes; promoting it here is what lets the skip-list towers and the hash
// chains share ONE lifecycle implementation (alloc from a free list,
// retire on unlink, amortized sweep on release) instead of each structure
// growing its own copy.
//
// Two borrowing modes cover the two protection stories in the repo:
//
//   - Handle: the lazy, best-effort borrow the hash table uses. Only
//     operations that actually touch nodes pay for the Acquire; when the
//     pool is exhausted the operation falls back to plain allocation and
//     GC reclamation — safe there because the table's OPTIK version
//     validation carries correctness on its own.
//   - Pin: the guaranteed borrow for structures whose READERS depend on
//     epoch protection (the skip list: recycled towers overwrite plain
//     fields, so a traversal must hold an announced epoch for its whole
//     walk). Pin falls back to registering a fresh thread in the domain
//     when every pool slot is borrowed, so it only returns nil when there
//     is no pool at all (the GC-reclaimed paper variants).
//
// The Pool field is exported on purpose: qsbrguard recognizes carriers by
// their composite-literal construction (`qsbr.Reclaimer{Pool: p}` ...
// `defer rc.Release()`), so construction must stay a literal, not a
// constructor call the analyzer cannot see through.

package qsbr

// Reclaimer borrows a qsbr handle lazily — only operations that actually
// touch nodes pay for it. The zero value with a nil Pool allocates from
// the heap and retires to the garbage collector.
type Reclaimer struct {
	Pool *Pool
	th   *Thread
	// tried records that a pool Acquire already ran (and possibly
	// failed), so one exhausted probe is not repeated per node.
	tried bool
	// registered marks a Pin fallback handle that was freshly registered
	// in the domain rather than borrowed; Release unregisters it.
	registered bool
}

// Handle returns the borrowed qsbr handle, acquiring one on first use.
// Returns nil for heap-backed reclaimers and when the pool is exhausted
// (every slot borrowed by a descheduled goroutine) — the caller then falls
// back to plain allocation for this operation.
func (rc *Reclaimer) Handle() *Thread {
	if rc == nil || rc.Pool == nil {
		return nil
	}
	if !rc.tried {
		rc.tried = true
		rc.th = rc.Pool.Acquire()
	}
	return rc.th
}

// Pin returns a guaranteed handle whose announced epoch protects every
// shared object the caller reaches until Release: first a pool borrow,
// then — when the pool is exhausted — a freshly registered domain thread.
// Registration orders with concurrent sweeps through the domain mutex, so
// an object the pinned caller can reach is never handed out for reuse
// before Release. Returns nil only when the reclaimer has no pool (the
// heap-backed zero value), where recycling never happens and traversals
// need no protection.
func (rc *Reclaimer) Pin() *Thread {
	if th := rc.Handle(); th != nil {
		return th
	}
	if rc == nil || rc.Pool == nil {
		return nil
	}
	rc.th = rc.Pool.Domain().Register()
	rc.registered = true
	return rc.th
}

// Alloc returns a recycled object from the handle's free list, or nil when
// none is available (the caller then allocates normally and must fully
// reset a recycled object before publishing it — stale readers from its
// previous life are fenced off by the structure's own validation).
func (rc *Reclaimer) Alloc() any {
	if th := rc.Handle(); th != nil {
		return th.Alloc()
	}
	return nil
}

// Retire hands an unlinked object to the reclamation scheme. Without a
// handle the object simply drops to the garbage collector — it is never
// reused, so validated readers stay safe either way.
func (rc *Reclaimer) Retire(obj any) {
	if th := rc.Handle(); th != nil {
		th.Retire(obj)
	}
}

// Free returns a never-published object straight to the free list: no
// reader can have seen it, so it skips the retire/epoch round trip
// entirely (an insert that lost its race allocates, finds the key taken,
// and hands the node back). Without a handle the object drops to the GC.
func (rc *Reclaimer) Free(obj any) {
	if th := rc.Handle(); th != nil {
		th.Free(obj)
	}
}

// Release returns the borrowed handle (running the amortized reclamation
// sweep when enough retirements accumulated) or unregisters a Pin
// fallback handle. Safe to call on a reclaimer that never acquired; a
// released reclaimer can be used again.
func (rc *Reclaimer) Release() {
	if rc == nil || rc.th == nil {
		rc.resetTried()
		return
	}
	if rc.registered {
		// Push pending retirements through one quiescent pass first so the
		// common case leaves nothing for the domain's orphan list.
		rc.th.Quiescent()
		rc.Pool.Domain().Unregister(rc.th)
	} else {
		rc.Pool.Release(rc.th)
	}
	rc.th = nil
	rc.tried = false
	rc.registered = false
}

func (rc *Reclaimer) resetTried() {
	if rc != nil {
		rc.tried = false
	}
}
