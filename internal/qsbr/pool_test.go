package qsbr

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

type pooledObj struct{ v uint64 }

// TestPoolAcquireReleaseRecycles drives the single-slot pool through the
// full lifecycle deterministically: retire past the sweep batch, release
// (which must sweep: the sole handle's own announcement is the minimum),
// reacquire, and get a recycled object back from Alloc.
func TestPoolAcquireReleaseRecycles(t *testing.T) {
	p := NewPool(NewDomain(), 1)
	th := p.Acquire()
	if th == nil {
		t.Fatal("Acquire returned nil on an idle pool")
	}
	for i := 0; i < sweepBatch+4; i++ {
		th.Retire(&pooledObj{v: uint64(i)})
	}
	p.Release(th)
	retired, reclaimed, _ := p.Domain().Stats()
	if retired != sweepBatch+4 || reclaimed != sweepBatch+4 {
		t.Fatalf("retired/reclaimed = %d/%d, want %d/%d", retired, reclaimed, sweepBatch+4, sweepBatch+4)
	}
	th = p.Acquire()
	if th == nil {
		t.Fatal("reacquire failed")
	}
	if obj := th.Alloc(); obj == nil {
		t.Fatal("Alloc found nothing on the free list after the sweep")
	}
	p.Release(th)
	if _, _, reused := p.Domain().Stats(); reused != 1 {
		t.Fatalf("reused = %d, want 1", reused)
	}
}

// TestPoolParkedSlotsDoNotBlockReclaim is the property that makes a pool
// usable at all: slots nobody borrowed must read as quiescent. A classic
// registered-but-silent thread would pin the minimum epoch forever; a
// parked slot must not.
func TestPoolParkedSlotsDoNotBlockReclaim(t *testing.T) {
	p := NewPool(NewDomain(), 8) // 7 slots stay parked throughout
	th := p.Acquire()
	for i := 0; i < sweepBatch; i++ {
		th.Retire(&pooledObj{})
	}
	p.Release(th)
	if _, reclaimed, _ := p.Domain().Stats(); reclaimed != sweepBatch {
		t.Fatalf("reclaimed = %d with 7 parked slots, want %d", reclaimed, sweepBatch)
	}
}

// TestPoolActiveBorrowerBlocksReclaim is the inverse: a retirement that
// happened after another handle announced must survive until that handle
// is released, then fall to a sweep.
func TestPoolActiveBorrowerBlocksReclaim(t *testing.T) {
	p := NewPool(NewDomain(), 2)
	a := p.Acquire()
	b := p.Acquire() // announced before a's retirements
	if a == nil || b == nil {
		t.Fatal("could not borrow both slots")
	}
	for i := 0; i < sweepBatch; i++ {
		a.Retire(&pooledObj{})
	}
	p.Release(a) // sweeps, but b's announcement blocks everything
	if _, reclaimed, _ := p.Domain().Stats(); reclaimed != 0 {
		t.Fatalf("reclaimed = %d while a borrower was active, want 0", reclaimed)
	}
	p.Release(b)
	p.Sweep() // all parked now: nothing blocks
	if _, reclaimed, _ := p.Domain().Stats(); reclaimed != sweepBatch {
		t.Fatalf("reclaimed = %d after all handles parked, want %d", reclaimed, sweepBatch)
	}
}

// TestPoolExhaustionReturnsNil pins the fallback contract: when every
// slot is borrowed, Acquire reports nil instead of blocking, and a
// release makes the slot borrowable again.
func TestPoolExhaustionReturnsNil(t *testing.T) {
	p := NewPool(NewDomain(), 2)
	a, b := p.Acquire(), p.Acquire()
	if a == nil || b == nil {
		t.Fatal("could not borrow both slots")
	}
	if c := p.Acquire(); c != nil {
		t.Fatal("Acquire on an exhausted pool returned a handle")
	}
	p.Release(b)
	if c := p.Acquire(); c == nil {
		t.Fatal("Acquire failed after a release")
	}
	p.Release(a)
}

// TestPoolConcurrentChurn hammers borrow/retire/alloc/release from many
// goroutines (the -race target for the pool): counters must stay
// consistent — nothing reused that was not first reclaimed, nothing
// reclaimed that was not first retired.
func TestPoolConcurrentChurn(t *testing.T) {
	p := NewPool(NewDomain(), 0)
	const goroutines = 8
	const iters = 20000
	var fallback atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				th := p.Acquire()
				if th == nil {
					fallback.Add(1)
					continue
				}
				var obj *pooledObj
				if v := th.Alloc(); v != nil {
					obj = v.(*pooledObj)
				} else {
					obj = &pooledObj{}
				}
				obj.v = uint64(i)
				th.Retire(obj)
				p.Release(th)
			}
		}()
	}
	wg.Wait()
	p.Sweep()
	retired, reclaimed, reused := p.Domain().Stats()
	if reused > reclaimed || reclaimed > retired {
		t.Fatalf("counter inversion: retired %d, reclaimed %d, reused %d", retired, reclaimed, reused)
	}
	if retired == 0 || reclaimed == 0 || reused == 0 {
		t.Fatalf("lifecycle never completed: retired %d, reclaimed %d, reused %d", retired, reclaimed, reused)
	}
	t.Logf("churn: %d retired, %d reclaimed, %d reused, %d exhausted borrows", retired, reclaimed, reused, fallback.Load())
}

// TestPoolDefaultSize pins the sizing rule: at least two slots per
// GOMAXPROCS, rounded up to a power of two.
func TestPoolDefaultSize(t *testing.T) {
	p := NewPool(NewDomain(), 0)
	want := 2
	for want < 2*runtime.GOMAXPROCS(0) {
		want <<= 1
	}
	if p.Slots() != want {
		t.Fatalf("Slots = %d, want %d", p.Slots(), want)
	}
}
