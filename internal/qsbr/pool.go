// The paper's structures run on ssmem with one allocator per pinned
// thread; Go structures are driven by arbitrary, short-lived goroutines,
// so "one Thread handle per goroutine" has no owner to hand the handle to.
// Pool closes that gap: a fixed ring of pre-registered Thread handles that
// any goroutine can borrow for the node-touching part of one operation and
// return when done. Parked (unborrowed) handles hold no references by
// construction, so they announce a sentinel epoch that can never be the
// domain minimum — an idle slot never stalls reclamation the way an idle
// registered thread would.

package qsbr

import (
	"runtime"
	"sync/atomic"
	"unsafe"
)

// parkedEpoch is the announcement of a slot nobody holds: larger than any
// real epoch, so a parked slot is never the minimum and never blocks
// reclamation.
const parkedEpoch = ^uint64(0)

// poolSlot is one borrowable handle, padded so the busy flags of adjacent
// slots do not false-share.
type poolSlot struct {
	busy atomic.Uint32
	th   *Thread
	_    [48]byte
}

// Pool is a fixed set of Thread handles shared by arbitrary goroutines.
// Acquire/Release pairs bracket the node-touching part of an operation;
// both are a handful of atomic operations on an uncontended slot.
type Pool struct {
	noCopy noCopy
	domain *Domain
	slots  []poolSlot
}

// NewPool returns a pool of n handles registered in d; n <= 0 sizes the
// pool at twice GOMAXPROCS (rounded up to a power of two), enough that a
// borrower under normal scheduling finds a free slot on the first probe.
func NewPool(d *Domain, n int) *Pool {
	if n <= 0 {
		n = 2
		for n < 2*runtime.GOMAXPROCS(0) {
			n <<= 1
		}
	}
	p := &Pool{domain: d, slots: make([]poolSlot, n)}
	for i := range p.slots {
		t := d.Register()
		t.announced.Store(parkedEpoch)
		t.slot = &p.slots[i]
		p.slots[i].th = t
	}
	return p
}

// Domain returns the reclamation domain backing the pool.
func (p *Pool) Domain() *Domain { return p.domain }

// Slots returns the number of handles in the pool.
func (p *Pool) Slots() int { return len(p.slots) }

// Acquire borrows a free handle, announcing the current epoch on it before
// returning (the unpark ordering every QSBR scheme needs: the announcement
// is visible before the borrower loads any shared pointer, so anything it
// reaches that is later retired gets an epoch its announcement blocks).
// The announcement is re-checked against the epoch until it lands on the
// current value: a store of a stale epoch could slip past a concurrent
// sweep that already advanced the epoch and scanned the slots without
// seeing the borrower. Returns nil when every slot is busy; the caller
// then falls back to plain allocation and GC reclamation for this
// operation.
func (p *Pool) Acquire() *Thread {
	// Probe from a goroutine-flavored start: a stack address is stable
	// within a goroutine and differs across them, spreading borrowers over
	// the slots without a shared rotation counter (which would put one
	// contended cache line on every borrow). Same-goroutine borrows also
	// tend to land on the same slot, keeping its free list warm — which is
	// what makes the free lists actually connect retires to reuses: Alloc
	// only consults its own thread's list, so a goroutine that retires on
	// one slot and allocates on another recycles nothing.
	//
	// The 8 KiB shift granularity is a deliberate trade. The probe depth
	// varies with the call path into Acquire — a plain insert borrows a
	// few frames shallower than a migration's chain move — so a fine,
	// cache-line-ish shift sends the two paths of one goroutine to
	// different slots, severing exactly the retire→alloc affinity above
	// (measured: chain-node reuse dropped ~7× at a 128 B granularity
	// when an extra call frame split the paths). Coarsening to 8 KiB
	// makes every plausible call depth of one goroutine hash alike. The
	// cost side: goroutine stacks start at 2 KiB, so up to four shallow
	// fresh goroutines can share an 8 KiB window and contend for the
	// same start slot — they settle one CAS later on neighboring slots,
	// a bounded affinity loss, and goroutines that do deep node-touching
	// work grow their stacks to ≥8 KiB blocks and separate on their own
	// (measured: 4-thread churn reuses ~3× more nodes than the fine
	// shift did).
	var probe byte
	start := int(uintptr(unsafe.Pointer(&probe)) >> 13)
	for i := 0; i < len(p.slots); i++ {
		s := &p.slots[(start+i)%len(p.slots)]
		if s.busy.Load() == 0 && s.busy.CompareAndSwap(0, 1) {
			t := s.th
			e := p.domain.epoch.Load()
			for {
				t.announced.Store(e)
				cur := p.domain.epoch.Load()
				if cur == e {
					return t
				}
				e = cur
			}
		}
	}
	return nil
}

// Release returns a borrowed handle. When enough retirements have piled up
// it first runs a full quiescent sweep (advance the epoch, reclaim what no
// announcement blocks) — the amortization ssmem applies to its epoch
// checks — then parks the handle so it cannot stall other threads'
// reclamation while idle. A sweep that reclaims nothing (blocked by a
// concurrent borrower's announcement) pushes the next attempt out by
// another batch, so a busy pool is not paying the domain scan on every
// release just to learn it is still blocked.
func (p *Pool) Release(t *Thread) {
	if pending := len(t.retired); pending >= sweepBatch && pending >= t.sweepAt {
		t.Quiescent()
		t.sweepAt = len(t.retired) + sweepBatch
	}
	t.announced.Store(parkedEpoch)
	t.slot.busy.Store(0)
}

// sweepBatch is how many pending retirements trigger the reclamation sweep
// on Release; below it, Release is two atomic stores.
const sweepBatch = 32

// Sweep force-runs the quiescent sweep on every currently-free slot: borrow
// it, announce + reclaim, park it again. Retirements below the Release
// batch threshold would otherwise linger in slots that traffic stopped
// touching; the background janitors call this on their idle ticks.
func (p *Pool) Sweep() {
	for i := range p.slots {
		s := &p.slots[i]
		if s.busy.Load() != 0 || !s.busy.CompareAndSwap(0, 1) {
			continue
		}
		if len(s.th.retired) > 0 {
			s.th.Quiescent()
			s.th.sweepAt = len(s.th.retired) + sweepBatch
		}
		s.th.announced.Store(parkedEpoch)
		s.busy.Store(0)
	}
}
