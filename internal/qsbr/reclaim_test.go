package qsbr

import "testing"

// TestReclaimerZeroValueIsHeapBacked pins the nil-Pool contract: every
// operation is a safe no-op returning nil, so the GC-reclaimed structures
// (the paper variants) share the recycling code path unchanged.
func TestReclaimerZeroValueIsHeapBacked(t *testing.T) {
	var rc Reclaimer
	if rc.Handle() != nil {
		t.Fatal("nil-pool Handle must return nil")
	}
	if rc.Pin() != nil {
		t.Fatal("nil-pool Pin must return nil")
	}
	if rc.Alloc() != nil {
		t.Fatal("nil-pool Alloc must return nil")
	}
	rc.Retire(new(int)) // must not panic
	rc.Free(new(int))   // must not panic
	rc.Release()        // must not panic, and must reset for reuse
	if rc.tried {
		t.Fatal("Release did not reset the acquire attempt")
	}
}

// TestReclaimerLifecycle drives one retire→reclaim→reuse round through
// the carrier: an object retired under one borrow becomes allocatable
// after enough quiescent passes.
func TestReclaimerLifecycle(t *testing.T) {
	d := NewDomain()
	p := NewPool(d, 2)
	obj := new(int)

	rc := Reclaimer{Pool: p}
	if rc.Alloc() != nil {
		t.Fatal("empty free list must alloc nil")
	}
	rc.Retire(obj)
	th := rc.Handle()
	if th == nil {
		t.Fatal("Handle returned nil with free slots")
	}
	// Drive the epoch forward until the retirement reclaims: with every
	// other slot parked, two quiescent passes suffice.
	th.Quiescent()
	th.Quiescent()
	if got := rc.Alloc(); got != obj {
		t.Fatalf("Alloc = %v, want the retired object back", got)
	}
	rc.Release()

	retired, reclaimed, reused := d.Stats()
	if retired != 1 || reclaimed != 1 || reused != 1 {
		t.Fatalf("stats = %d/%d/%d, want 1/1/1", retired, reclaimed, reused)
	}
}

// TestReclaimerFreeSkipsEpoch pins the lost-insert path: a never-published
// object handed to Free is immediately allocatable, no quiescent pass
// needed.
func TestReclaimerFreeSkipsEpoch(t *testing.T) {
	d := NewDomain()
	p := NewPool(d, 2)
	rc := Reclaimer{Pool: p}
	defer rc.Release()
	obj := new(int)
	rc.Free(obj)
	if got := rc.Alloc(); got != obj {
		t.Fatalf("Alloc = %v, want the freed object immediately", got)
	}
}

// TestReclaimerPinFallsBackToRegister is the exhaustion contract Pin
// exists for: with every pool slot borrowed, Pin must still produce an
// epoch-announcing handle (a freshly registered thread) whose announced
// epoch blocks reclamation until Release, and Release must unregister it.
func TestReclaimerPinFallsBackToRegister(t *testing.T) {
	d := NewDomain()
	p := NewPool(d, 2)
	// Exhaust the pool.
	a, b := p.Acquire(), p.Acquire()
	if a == nil || b == nil {
		t.Fatal("could not exhaust a 2-slot pool")
	}
	if p.Acquire() != nil {
		t.Fatal("pool not exhausted")
	}

	rc := Reclaimer{Pool: p}
	if rc.Handle() != nil {
		t.Fatal("Handle must fail on an exhausted pool")
	}
	th := rc.Pin()
	if th == nil {
		t.Fatal("Pin must fall back to a registered thread")
	}
	// The pinned announcement must block another thread's reclamation.
	// Keep slot a's announcement fresh around each sweep so the pin is the
	// only thing standing between the retirement and the free list.
	b.Retire(new(int))
	pinned := th.announced.Load()
	a.Quiescent()
	b.Quiescent()
	a.Quiescent()
	b.Quiescent()
	if got := b.FreeListLen(); got != 0 {
		t.Fatalf("pinned epoch %d did not block reclamation (free list %d)", pinned, got)
	}

	d.mu.Lock()
	threadsBefore := len(d.threads)
	d.mu.Unlock()
	rc.Release()
	d.mu.Lock()
	threadsAfter := len(d.threads)
	d.mu.Unlock()
	if threadsAfter != threadsBefore-1 {
		t.Fatalf("Release did not unregister the Pin fallback (threads %d -> %d)", threadsBefore, threadsAfter)
	}
	// With the pin gone the blocked retirement reclaims.
	a.Quiescent()
	b.Quiescent()
	a.Quiescent()
	b.Quiescent()
	if got := b.FreeListLen(); got != 1 {
		t.Fatalf("free list %d after unpin, want 1", got)
	}
	p.Release(a)
	p.Release(b)

	// A released reclaimer is reusable, now through the pool again.
	if rc.Pin() == nil {
		t.Fatal("reused reclaimer failed to pin")
	}
	if rc.registered {
		t.Fatal("pool borrow wrongly marked as registered")
	}
	rc.Release()
}

// TestReclaimerPinRetirementsSurviveUnregister pins that objects retired
// on a Pin-fallback handle are not lost when Release unregisters it: the
// pre-unregister quiescent pass (or the domain orphan list) must account
// for them.
func TestReclaimerPinRetirementsSurviveUnregister(t *testing.T) {
	d := NewDomain()
	p := NewPool(d, 2)
	a, b := p.Acquire(), p.Acquire()
	rc := Reclaimer{Pool: p}
	rc.Pin()
	rc.Retire(new(int))
	// Park the pool slots so their stale announcements do not pin the
	// retirement past the unregister.
	p.Release(a)
	p.Release(b)
	rc.Release()
	if pend := d.OrphansPending(); pend != 0 {
		// Acceptable fallback: parked as orphan, dropped on the next prune.
		d.minAnnounced()
		if pend = d.OrphansPending(); pend != 0 {
			t.Fatalf("%d orphans still pending after prune", pend)
		}
	}
}
