// Package qsbr implements quiescent-state-based memory reclamation, the Go
// analog of ssmem, the allocator the paper's data structures use ("a simple
// memory allocator with quiescent-based memory reclamation", §3.3).
//
// The paper's point is that OPTIK *decouples* concurrency control from
// memory reclamation: any scheme (hazard pointers, RCU, quiescent states)
// works underneath. In Go the garbage collector already guarantees the one
// property the data structures rely on — an unlinked node stays valid while
// any thread still references it — so most structures in ds/ allocate
// GC-managed nodes and simply drop them. This package provides the other
// half of ssmem's job, the half the GC does not do: free-list *reuse*. It
// implements per-thread retire lists, a global epoch advanced by
// quiescent-state announcements, and free-list-first allocation of
// reclaimed objects.
//
// It is no longer a standalone substitute kept only for reproducibility:
// ds/hashmap.Resizable allocates its overflow-chain nodes from a Domain's
// free lists and retires them on delete and on migration, borrowing
// handles through the Pool type below (see ds/hashmap/reclaim.go for how
// the structure's OPTIK version validation, rather than reader
// announcements, makes the reuse safe — the paper's decoupling claim,
// exercised for real).
//
// Protocol: each participating thread owns a Thread handle. Between
// operations the thread calls Quiescent(). Retire(obj) buffers obj on the
// thread's retire list stamped with the current epoch; once every registered
// thread has announced a quiescent state after that epoch, the object is
// moved to the free list and handed out again by Alloc. Threads whose
// goroutines are short-lived or anonymous borrow pre-registered handles
// from a Pool instead; parked handles count as quiescent, so an idle slot
// never stalls the epoch.
package qsbr

import (
	"sync"
	"sync/atomic"
)

// Domain groups the threads that may access a set of retired objects.
// A Domain is safe for concurrent use; Thread handles are not (one per
// goroutine, like the paper's per-thread ssmem allocators).
type Domain struct {
	epoch atomic.Uint64

	mu      sync.Mutex
	threads []*Thread
	// orphans holds retirements of unregistered threads. Once the minimum
	// announced epoch passes an orphan's epoch no thread can reference it,
	// and dropping the last pointer hands it to the Go garbage collector
	// (the domain has no owner to push it to a free list for).
	orphans        []retiredObject
	orphansDropped uint64
	// orphanCount mirrors len(orphans) so Quiescent can skip taking the
	// mutex on the (hot) no-orphans path.
	orphanCount atomic.Int64
}

// NewDomain returns an empty reclamation domain. The global epoch starts
// at 1 so that a zero announcement always reads as "not yet quiescent".
func NewDomain() *Domain {
	d := &Domain{}
	d.epoch.Store(1)
	return d
}

// Epoch returns the current global epoch (for tests and stats).
func (d *Domain) Epoch() uint64 { return d.epoch.Load() }

// Register creates a Thread handle bound to this domain. The handle must be
// used by a single goroutine.
func (d *Domain) Register() *Thread {
	t := &Thread{domain: d}
	t.announced.Store(d.epoch.Load())
	d.mu.Lock()
	d.threads = append(d.threads, t)
	d.mu.Unlock()
	return t
}

// Unregister removes t from the domain. Its pending retirements become
// domain orphans and are dropped (handed to the garbage collector) once the
// minimum announced epoch passes them. Using t after Unregister is a bug.
func (d *Domain) Unregister(t *Thread) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, th := range d.threads {
		if th == t {
			d.threads = append(d.threads[:i], d.threads[i+1:]...)
			break
		}
	}
	d.orphans = append(d.orphans, t.retired...)
	d.orphanCount.Store(int64(len(d.orphans)))
	t.retired = nil
	d.pruneOrphansLocked(d.minAnnouncedLocked())
}

// OrphansPending returns the number of orphaned retirements not yet dropped.
func (d *Domain) OrphansPending() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.orphans)
}

// OrphansDropped returns the number of orphans released to the GC so far.
func (d *Domain) OrphansDropped() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.orphansDropped
}

// Stats aggregates the lifetime retire/reclaim/reuse counts across every
// thread currently registered in the domain (racy snapshot; for monitoring
// and the allocation-regression tests).
func (d *Domain) Stats() (retired, reclaimed, reused uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, t := range d.threads {
		retired += t.retireCount.Load()
		reclaimed += t.reclaimCount.Load()
		reused += t.reuseCount.Load()
	}
	return retired, reclaimed, reused
}

// minAnnounced returns the smallest epoch announced by any registered
// thread, or the current epoch when no threads are registered, and prunes
// any orphans that became unreachable.
func (d *Domain) minAnnounced() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	min := d.minAnnouncedLocked()
	d.pruneOrphansLocked(min)
	return min
}

func (d *Domain) minAnnouncedLocked() uint64 {
	// Start above the current epoch: with no registered threads nothing can
	// hold a reference, so every retirement is immediately safe.
	min := d.epoch.Load() + 1
	for _, t := range d.threads {
		if a := t.announced.Load(); a < min {
			min = a
		}
	}
	return min
}

func (d *Domain) pruneOrphansLocked(safe uint64) {
	if len(d.orphans) == 0 {
		return
	}
	kept := d.orphans[:0]
	for _, r := range d.orphans {
		if r.epoch < safe {
			d.orphansDropped++
		} else {
			kept = append(kept, r)
		}
	}
	for i := len(kept); i < len(d.orphans); i++ {
		d.orphans[i] = retiredObject{}
	}
	d.orphans = kept
	d.orphanCount.Store(int64(len(kept)))
}

// retiredObject pairs a retired pointer with the epoch at which it became
// unreachable from the structure.
type retiredObject struct {
	obj   any
	epoch uint64
}

// Thread is a per-goroutine participant: it buffers retirements, announces
// quiescent states, and reuses reclaimed objects through a local free list.
type Thread struct {
	noCopy    noCopy
	domain    *Domain
	announced atomic.Uint64
	// slot is non-nil for pool-managed handles (see pool.go); it lets
	// Release park the handle without searching the pool.
	slot *poolSlot
	// sweepAt throttles Release's sweep attempts: when an older
	// announcement blocks the whole retired list, re-attempting on every
	// release would pay the domain scan each time for nothing, so the
	// next attempt waits until the list has grown by another batch.
	sweepAt int

	retired []retiredObject
	free    []any

	// Stats (monotonic; atomic so Domain.Stats can aggregate them while the
	// owner keeps mutating).
	retireCount  atomic.Uint64
	reclaimCount atomic.Uint64
	reuseCount   atomic.Uint64
}

// Alloc returns a reclaimed object from the free list, or nil when the free
// list is empty (the caller then allocates normally). This mirrors ssmem's
// free-list-first allocation.
func (t *Thread) Alloc() any {
	if n := len(t.free); n > 0 {
		obj := t.free[n-1]
		t.free[n-1] = nil
		t.free = t.free[:n-1]
		t.reuseCount.Add(1)
		return obj
	}
	return nil
}

// Free pushes obj straight onto the free list, skipping the retire/epoch
// round trip. Only legal for objects that were never published to the
// shared structure (no reader can hold a reference): the allocate-then-
// lose-the-race path of optimistic inserts.
func (t *Thread) Free(obj any) {
	t.free = append(t.free, obj)
}

// Retire marks obj unreachable from the shared structure as of the current
// epoch. The object will be recycled once every registered thread passes a
// quiescent state.
func (t *Thread) Retire(obj any) {
	t.retired = append(t.retired, retiredObject{obj: obj, epoch: t.domain.epoch.Load()})
	t.retireCount.Add(1)
}

// Quiescent announces that this thread holds no references into the shared
// structures, advances the global epoch, and reclaims every retired object
// whose epoch is older than the minimum announced epoch. Data structures
// call this between operations — exactly the paper's quiescent-state model.
func (t *Thread) Quiescent() {
	e := t.domain.epoch.Add(1)
	t.announced.Store(e)
	if len(t.retired) == 0 {
		if t.domain.orphanCount.Load() > 0 {
			t.domain.minAnnounced() // prunes eligible orphans
		}
		return
	}
	safe := t.domain.minAnnounced()
	// Objects retired strictly before the minimum announced epoch cannot be
	// referenced by any thread anymore. Retirements are stamped with a
	// monotonic epoch, so the retired list is sorted: the reclaimable
	// entries are exactly a prefix, and a sweep that reclaims nothing
	// (another thread's older announcement blocks the whole list) costs
	// O(1) instead of rescanning everything it must keep.
	n := 0
	for n < len(t.retired) && t.retired[n].epoch < safe {
		t.free = append(t.free, t.retired[n].obj)
		n++
	}
	if n > 0 {
		t.reclaimCount.Add(uint64(n))
		kept := copy(t.retired, t.retired[n:])
		// Zero the tail so reclaimed entries do not pin objects.
		for i := kept; i < len(t.retired); i++ {
			t.retired[i] = retiredObject{}
		}
		t.retired = t.retired[:kept]
	}
	// Bound the free list: reuse wants a working set, not an unbounded pin
	// of every node the structure ever held. The just-reclaimed tail past
	// the cap goes back to the garbage collector (safe: reclaimed objects
	// are unreachable by construction) — trimmed from the end, so a capped
	// list costs O(excess), never a full-list move.
	if len(t.free) > maxFreeList {
		for i := maxFreeList; i < len(t.free); i++ {
			t.free[i] = nil
		}
		t.free = t.free[:maxFreeList]
	}
}

// maxFreeList caps a thread's free list; see Quiescent.
const maxFreeList = 1 << 14

// Stats reports the lifetime counts of retired, reclaimed and reused
// objects for this thread.
func (t *Thread) Stats() (retired, reclaimed, reused uint64) {
	return t.retireCount.Load(), t.reclaimCount.Load(), t.reuseCount.Load()
}

// PendingRetired returns the number of objects waiting for reclamation.
func (t *Thread) PendingRetired() int { return len(t.retired) }

// FreeListLen returns the number of immediately reusable objects.
func (t *Thread) FreeListLen() int { return len(t.free) }
