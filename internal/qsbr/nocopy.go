package qsbr

// noCopy makes `go vet` (copylocks) flag any by-value copy of a type that
// holds one as a field — the sync package's convention. A copied Thread
// would fork the announcement/retired-list state the domain tracks by
// pointer; a copied Pool would share slots behind two descriptors.
type noCopy struct{}

// Lock is a no-op used by `go vet -copylocks`.
func (*noCopy) Lock() {}

// Unlock is a no-op used by `go vet -copylocks`.
func (*noCopy) Unlock() {}
