package qsbr_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/optik-go/optik/internal/qsbr"
)

// reuseNode is a Treiber-stack node that gets recycled through the QSBR
// free lists, exactly like ssmem recycles nodes in the paper's C
// implementation. Recycling a node that a concurrent Pop still references
// would re-expose the classic ABA corruption — QSBR's epoch protocol is
// what makes the reuse safe, and this test validates precisely that.
type reuseNode struct {
	val  uint64
	next *reuseNode
}

// reuseStack is a Treiber stack whose Pop retires nodes to a per-thread
// QSBR handle instead of dropping them to the garbage collector.
type reuseStack struct {
	top atomic.Pointer[reuseNode]
}

func (s *reuseStack) push(th *qsbr.Thread, val uint64) {
	var n *reuseNode
	if v := th.Alloc(); v != nil {
		n = v.(*reuseNode) // recycled: safe only because QSBR said so
	} else {
		n = new(reuseNode)
	}
	n.val = val
	for {
		top := s.top.Load()
		n.next = top
		if s.top.CompareAndSwap(top, n) {
			return
		}
	}
}

func (s *reuseStack) pop(th *qsbr.Thread) (uint64, bool) {
	for {
		top := s.top.Load()
		if top == nil {
			return 0, false
		}
		next := top.next
		if s.top.CompareAndSwap(top, next) {
			val := top.val
			th.Retire(top) // recycle once every thread has quiesced
			return val, true
		}
	}
}

// TestQSBRProtectsTreiberReuse runs producers/consumers that aggressively
// recycle nodes. Conservation must hold: every pushed value popped exactly
// once. Without the epoch protocol (e.g. if Retire handed nodes straight
// to the free list) the ABA race would corrupt the stack within
// milliseconds at this intensity.
func TestQSBRProtectsTreiberReuse(t *testing.T) {
	d := qsbr.NewDomain()
	var s reuseStack
	const goroutines = 8
	const perG = 30000
	total := goroutines * perG
	seen := make([]atomic.Uint32, total+1)
	var popped atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := d.Register()
			defer d.Unregister(th)
			for i := 0; i < perG; i++ {
				s.push(th, uint64(id*perG+i+1))
				if v, ok := s.pop(th); ok {
					if v == 0 || v > uint64(total) {
						t.Errorf("corrupt value %d", v)
						return
					}
					if seen[v].Add(1) != 1 {
						t.Errorf("value %d popped twice (ABA corruption)", v)
						return
					}
					popped.Add(1)
				}
				// Quiescent point between operations, as in the paper.
				th.Quiescent()
			}
		}(g)
	}
	wg.Wait()
	// Drain the remainder single-threaded.
	th := d.Register()
	for {
		v, ok := s.pop(th)
		if !ok {
			break
		}
		if seen[v].Add(1) != 1 {
			t.Fatalf("value %d popped twice on drain", v)
		}
		popped.Add(1)
	}
	d.Unregister(th)
	if popped.Load() != int64(total) {
		t.Fatalf("popped %d of %d", popped.Load(), total)
	}
}

// TestQSBRReuseActuallyHappens confirms the free lists are exercised (the
// test above would pass vacuously if nothing were ever recycled).
func TestQSBRReuseActuallyHappens(t *testing.T) {
	d := qsbr.NewDomain()
	th := d.Register()
	var s reuseStack
	for i := 0; i < 1000; i++ {
		s.push(th, uint64(i+1))
		s.pop(th)
		th.Quiescent()
	}
	_, reclaimed, reused := th.Stats()
	if reclaimed == 0 {
		t.Fatal("no nodes ever reclaimed")
	}
	if reused == 0 {
		t.Fatal("no nodes ever reused")
	}
}
