package qsbr

import (
	"sync"
	"testing"
)

type obj struct{ id int }

func TestSingleThreadReclaim(t *testing.T) {
	d := NewDomain()
	th := d.Register()
	o := &obj{1}
	th.Retire(o)
	if th.PendingRetired() != 1 {
		t.Fatal("retire did not buffer")
	}
	if got := th.Alloc(); got != nil {
		t.Fatal("Alloc before reclamation returned an object")
	}
	th.Quiescent() // epoch advances past retirement; sole thread -> safe
	if th.FreeListLen() != 1 {
		t.Fatalf("free list = %d, want 1", th.FreeListLen())
	}
	if got := th.Alloc(); got != o {
		t.Fatalf("Alloc = %v, want the retired object", got)
	}
	if got := th.Alloc(); got != nil {
		t.Fatal("second Alloc should be empty")
	}
}

func TestNoReclaimWhileOtherThreadNotQuiescent(t *testing.T) {
	d := NewDomain()
	a := d.Register()
	b := d.Register()
	_ = b
	a.Retire(&obj{1})
	a.Quiescent()
	if a.FreeListLen() != 0 {
		t.Fatal("object reclaimed although thread b never announced quiescence")
	}
	// After b announces, a's next quiescent pass may reclaim.
	b.Quiescent()
	a.Quiescent()
	if a.FreeListLen() != 1 {
		t.Fatalf("free list = %d, want 1 after all threads quiesced", a.FreeListLen())
	}
}

func TestEpochMonotone(t *testing.T) {
	d := NewDomain()
	th := d.Register()
	prev := d.Epoch()
	for i := 0; i < 100; i++ {
		th.Quiescent()
		if e := d.Epoch(); e <= prev {
			t.Fatal("epoch did not advance")
		} else {
			prev = e
		}
	}
}

func TestUnregisterOrphansRetirements(t *testing.T) {
	d := NewDomain()
	a := d.Register()
	b := d.Register()
	a.Retire(&obj{1})
	a.Retire(&obj{2})
	d.Unregister(a)
	if d.OrphansPending() != 2 {
		t.Fatalf("orphans pending = %d, want 2 (b has not quiesced)", d.OrphansPending())
	}
	// With a gone, b's quiescence is enough to prove the orphans
	// unreachable; they must then be dropped.
	b.Quiescent()
	b.Quiescent()
	if d.OrphansPending() != 0 {
		t.Fatalf("orphans pending = %d, want 0", d.OrphansPending())
	}
	if d.OrphansDropped() != 2 {
		t.Fatalf("orphans dropped = %d, want 2", d.OrphansDropped())
	}
	// b still works normally afterwards.
	b.Retire(&obj{3})
	b.Quiescent()
	b.Quiescent()
	if b.FreeListLen() == 0 {
		t.Fatal("b's own retirement never reclaimed after unregister of a")
	}
}

func TestUnregisterLastThread(t *testing.T) {
	d := NewDomain()
	a := d.Register()
	a.Retire(&obj{1})
	d.Unregister(a) // no surviving threads: orphans are immediately safe
	if d.OrphansPending() != 0 || d.OrphansDropped() != 1 {
		t.Fatalf("pending=%d dropped=%d, want 0/1", d.OrphansPending(), d.OrphansDropped())
	}
	b := d.Register()
	b.Retire(&obj{2})
	b.Quiescent()
	if b.FreeListLen() != 1 {
		t.Fatalf("fresh thread reclaim failed, free=%d", b.FreeListLen())
	}
}

func TestStats(t *testing.T) {
	d := NewDomain()
	th := d.Register()
	th.Retire(&obj{1})
	th.Quiescent()
	th.Alloc()
	retired, reclaimed, reused := th.Stats()
	if retired != 1 || reclaimed != 1 || reused != 1 {
		t.Fatalf("stats = %d %d %d, want 1 1 1", retired, reclaimed, reused)
	}
}

func TestConcurrentChurn(t *testing.T) {
	// Threads continuously retire and reuse private objects; the invariant
	// under test: an object is never handed out by Alloc while it could
	// still be observed. We verify by poisoning: each object carries its
	// owner round; reuse across rounds is fine, but the object must be on
	// the free list only after a full epoch turnover.
	d := NewDomain()
	const goroutines = 6
	const rounds = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := d.Register()
			defer d.Unregister(th)
			for i := 0; i < rounds; i++ {
				var o *obj
				if v := th.Alloc(); v != nil {
					o = v.(*obj)
				} else {
					o = &obj{}
				}
				o.id = id*rounds + i
				th.Retire(o)
				th.Quiescent()
			}
		}(g)
	}
	wg.Wait()
}

func TestReuseIsLIFO(t *testing.T) {
	d := NewDomain()
	th := d.Register()
	a, b := &obj{1}, &obj{2}
	th.Retire(a)
	th.Retire(b)
	th.Quiescent()
	if th.FreeListLen() != 2 {
		t.Fatalf("free list = %d", th.FreeListLen())
	}
	// LIFO reuse keeps caches warm, like ssmem's free lists.
	if th.Alloc() != b || th.Alloc() != a {
		t.Fatal("free list is not LIFO")
	}
}

func BenchmarkRetireQuiescent(b *testing.B) {
	d := NewDomain()
	th := d.Register()
	for i := 0; i < b.N; i++ {
		var o *obj
		if v := th.Alloc(); v != nil {
			o = v.(*obj)
		} else {
			o = &obj{}
		}
		th.Retire(o)
		th.Quiescent()
	}
}
