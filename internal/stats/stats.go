// Package stats provides the small statistics toolkit used by the benchmark
// harness: percentile summaries for latency boxplots (the paper reports 5th,
// 25th, 50th, 75th and 95th percentiles), medians across repetitions, and
// throughput aggregation.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Percentiles reported by the paper's latency boxplots.
var BoxplotPercentiles = []float64{5, 25, 50, 75, 95}

// Summary is a five-number latency summary in nanoseconds plus the sample
// count, matching the paper's boxplots (which use cycles; see DESIGN.md for
// the substitution). Beyond the paper's five percentiles it carries the
// tail the boxplots hide: P99 and Max, which is where migration stalls of
// the resizable structures show up.
type Summary struct {
	Count                       int
	P5, P25, P50, P75, P95, P99 float64
	Max                         float64
	Mean                        float64
}

// Summarize computes a Summary over samples. It sorts a copy; the input is
// not modified. An empty input yields a zero Summary.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return Summary{
		Count: len(s),
		P5:    Percentile(s, 5),
		P25:   Percentile(s, 25),
		P50:   Percentile(s, 50),
		P75:   Percentile(s, 75),
		P95:   Percentile(s, 95),
		P99:   Percentile(s, 99),
		Max:   s[len(s)-1],
		Mean:  sum / float64(len(s)),
	}
}

// String renders the summary as a compact boxplot row.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d p5=%.0f p25=%.0f p50=%.0f p75=%.0f p95=%.0f p99=%.0f max=%.0f mean=%.0f",
		s.Count, s.P5, s.P25, s.P50, s.P75, s.P95, s.P99, s.Max, s.Mean)
}

// Percentile returns the p-th percentile (0..100) of sorted (ascending)
// samples using linear interpolation between closest ranks. It panics if
// sorted is empty or p is out of range.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic("stats: percentile out of [0,100]")
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the median of xs. The input is not modified. It panics on
// an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Median of empty slice")
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// GeoMeanRatio returns the geometric mean of pairwise ratios a[i]/b[i].
// It is used to aggregate "X times faster on average" claims the way the
// paper does across thread counts. Pairs where b[i] == 0 are skipped; if all
// pairs are skipped it returns 0.
func GeoMeanRatio(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: GeoMeanRatio length mismatch")
	}
	prod := 1.0
	n := 0
	for i := range a {
		if b[i] == 0 {
			continue
		}
		prod *= a[i] / b[i]
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Pow(prod, 1/float64(n))
}
