package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestPercentileKnownValues(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25}, {75, 7.75},
	}
	for _, c := range cases {
		if got := Percentile(s, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileSingle(t *testing.T) {
	if got := Percentile([]float64{42}, 95); got != 42 {
		t.Fatalf("got %v", got)
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestPercentileMonotone(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		s := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				s = append(s, v)
			}
		}
		if len(s) == 0 {
			return true
		}
		sort.Float64s(s)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(s, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd median = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even median = %v", got)
	}
	// Input must not be mutated.
	in := []float64{9, 1, 5}
	Median(in)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Fatal("Median mutated its input")
	}
}

func TestMedianPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Median(nil)
}

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	var samples []float64
	for i := 1; i <= 100; i++ {
		samples = append(samples, float64(i))
	}
	s := Summarize(samples)
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P50 < 50 || s.P50 > 51 {
		t.Fatalf("p50 = %v", s.P50)
	}
	if s.P5 >= s.P25 || s.P25 >= s.P50 || s.P50 >= s.P75 || s.P75 >= s.P95 || s.P95 >= s.P99 {
		t.Fatalf("percentiles not ordered: %+v", s)
	}
	if s.P99 > s.Max || s.Max != 100 {
		t.Fatalf("tail wrong: p99=%v max=%v", s.P99, s.Max)
	}
	if math.Abs(s.Mean-50.5) > 1e-9 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if Summarize(nil) != (Summary{}) {
		t.Fatal("empty Summarize must be zero")
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestGeoMeanRatio(t *testing.T) {
	a := []float64{2, 8}
	b := []float64{1, 2}
	// ratios 2 and 4 -> geomean sqrt(8) ~ 2.828
	if got := GeoMeanRatio(a, b); math.Abs(got-math.Sqrt(8)) > 1e-9 {
		t.Fatalf("got %v", got)
	}
	if got := GeoMeanRatio([]float64{1}, []float64{0}); got != 0 {
		t.Fatalf("all-skipped should be 0, got %v", got)
	}
}

func TestGeoMeanRatioMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GeoMeanRatio([]float64{1}, nil)
}
