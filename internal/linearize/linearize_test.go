package linearize

import "testing"

// mkOp builds an operation with explicit times.
func setOp(op int, key, val uint64, outVal uint64, ok bool, call, ret int64) Operation {
	return Operation{
		Input:  SetInput{Op: op, Key: key, Val: val},
		Output: SetOutput{Val: outVal, OK: ok},
		Call:   call,
		Return: ret,
	}
}

func TestEmptyHistory(t *testing.T) {
	if !Check(SetModel(), nil) {
		t.Fatal("empty history must be linearizable")
	}
}

func TestSequentialSetHistory(t *testing.T) {
	h := []Operation{
		setOp(OpInsert, 1, 10, 0, true, 0, 1),
		setOp(OpSearch, 1, 0, 10, true, 2, 3),
		setOp(OpDelete, 1, 0, 10, true, 4, 5),
		setOp(OpSearch, 1, 0, 0, false, 6, 7),
	}
	if !Check(SetModel(), h) {
		t.Fatal("valid sequential history rejected")
	}
}

func TestSequentialSetViolation(t *testing.T) {
	// Search finds a value that was never inserted.
	h := []Operation{
		setOp(OpInsert, 1, 10, 0, true, 0, 1),
		setOp(OpSearch, 1, 0, 99, true, 2, 3),
	}
	if Check(SetModel(), h) {
		t.Fatal("foreign-value history accepted")
	}
}

func TestStaleReadViolation(t *testing.T) {
	// Delete completes strictly before the search starts, yet the search
	// still sees the key: non-linearizable.
	h := []Operation{
		setOp(OpInsert, 1, 10, 0, true, 0, 1),
		setOp(OpDelete, 1, 0, 10, true, 2, 3),
		setOp(OpSearch, 1, 0, 10, true, 4, 5),
	}
	if Check(SetModel(), h) {
		t.Fatal("stale read accepted")
	}
}

func TestConcurrentOverlapAllowsEitherOrder(t *testing.T) {
	// Insert and search overlap: the search may see either state.
	for _, found := range []bool{true, false} {
		out := SetOutput{OK: found}
		if found {
			out.Val = 10
		}
		h := []Operation{
			setOp(OpInsert, 1, 10, 0, true, 0, 10),
			{Input: SetInput{Op: OpSearch, Key: 1}, Output: out, Call: 2, Return: 8},
		}
		if !Check(SetModel(), h) {
			t.Fatalf("overlapping search (found=%v) rejected", found)
		}
	}
}

func TestDuplicateInsertViolation(t *testing.T) {
	// Two non-overlapping successful inserts of the same key.
	h := []Operation{
		setOp(OpInsert, 1, 10, 0, true, 0, 1),
		setOp(OpInsert, 1, 20, 0, true, 2, 3),
	}
	if Check(SetModel(), h) {
		t.Fatal("double successful insert accepted")
	}
}

func TestPartitioningIndependence(t *testing.T) {
	// Violation on key 2 must be caught even among valid key-1 traffic.
	h := []Operation{
		setOp(OpInsert, 1, 10, 0, true, 0, 1),
		setOp(OpSearch, 1, 0, 10, true, 2, 3),
		setOp(OpSearch, 2, 0, 5, true, 4, 5), // never inserted
	}
	if Check(SetModel(), h) {
		t.Fatal("cross-key violation missed")
	}
}

func qOp(op int, val uint64, outVal uint64, ok bool, call, ret int64) Operation {
	return Operation{
		Input:  QueueInput{Op: op, Val: val},
		Output: QueueOutput{Val: outVal, OK: ok},
		Call:   call,
		Return: ret,
	}
}

func TestQueueFIFO(t *testing.T) {
	h := []Operation{
		qOp(OpEnqueue, 1, 0, true, 0, 1),
		qOp(OpEnqueue, 2, 0, true, 2, 3),
		qOp(OpDequeue, 0, 1, true, 4, 5),
		qOp(OpDequeue, 0, 2, true, 6, 7),
		qOp(OpDequeue, 0, 0, false, 8, 9),
	}
	if !Check(QueueModel(), h) {
		t.Fatal("valid FIFO history rejected")
	}
}

func TestQueueLIFOViolation(t *testing.T) {
	h := []Operation{
		qOp(OpEnqueue, 1, 0, true, 0, 1),
		qOp(OpEnqueue, 2, 0, true, 2, 3),
		qOp(OpDequeue, 0, 2, true, 4, 5), // LIFO order: invalid for a queue
	}
	if Check(QueueModel(), h) {
		t.Fatal("LIFO dequeue accepted by queue model")
	}
}

func TestQueueConcurrentEnqueues(t *testing.T) {
	// Two overlapping enqueues: dequeues may observe either order.
	for _, first := range []uint64{1, 2} {
		second := uint64(3 - first)
		h := []Operation{
			qOp(OpEnqueue, 1, 0, true, 0, 10),
			qOp(OpEnqueue, 2, 0, true, 0, 10),
			qOp(OpDequeue, 0, first, true, 11, 12),
			qOp(OpDequeue, 0, second, true, 13, 14),
		}
		if !Check(QueueModel(), h) {
			t.Fatalf("order %d-first rejected", first)
		}
	}
}

func TestQueueLostElementViolation(t *testing.T) {
	// Dequeue of a value that was never enqueued.
	h := []Operation{
		qOp(OpEnqueue, 1, 0, true, 0, 1),
		qOp(OpDequeue, 0, 9, true, 2, 3),
	}
	if Check(QueueModel(), h) {
		t.Fatal("phantom dequeue accepted")
	}
}

func TestQueueEmptyDequeueWhileFull(t *testing.T) {
	// Non-overlapping: enqueue done, then dequeue reports empty: invalid.
	h := []Operation{
		qOp(OpEnqueue, 1, 0, true, 0, 1),
		qOp(OpDequeue, 0, 0, false, 2, 3),
	}
	if Check(QueueModel(), h) {
		t.Fatal("false-empty accepted")
	}
}

func sOp(op int, val uint64, outVal uint64, ok bool, call, ret int64) Operation {
	return Operation{
		Input:  StackInput{Op: op, Val: val},
		Output: StackOutput{Val: outVal, OK: ok},
		Call:   call,
		Return: ret,
	}
}

func TestStackLIFO(t *testing.T) {
	h := []Operation{
		sOp(OpPush, 1, 0, true, 0, 1),
		sOp(OpPush, 2, 0, true, 2, 3),
		sOp(OpPop, 0, 2, true, 4, 5),
		sOp(OpPop, 0, 1, true, 6, 7),
		sOp(OpPop, 0, 0, false, 8, 9),
	}
	if !Check(StackModel(), h) {
		t.Fatal("valid LIFO history rejected")
	}
}

func TestStackFIFOViolation(t *testing.T) {
	h := []Operation{
		sOp(OpPush, 1, 0, true, 0, 1),
		sOp(OpPush, 2, 0, true, 2, 3),
		sOp(OpPop, 0, 1, true, 4, 5), // FIFO order: invalid for a stack
	}
	if Check(StackModel(), h) {
		t.Fatal("FIFO pop accepted by stack model")
	}
}

func TestBitset(t *testing.T) {
	b := newBitset(130)
	b.set(0)
	b.set(64)
	b.set(129)
	for _, i := range []int{0, 64, 129} {
		if !b.get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	b.clear(64)
	if b.get(64) {
		t.Fatal("bit 64 still set")
	}
	if b.get(1) || b.get(128) {
		t.Fatal("unexpected bits set")
	}
}

func TestInstantaneousOps(t *testing.T) {
	// Zero-duration operations (Call == Return) must still check cleanly.
	h := []Operation{
		setOp(OpInsert, 1, 10, 0, true, 5, 5),
		setOp(OpSearch, 1, 0, 10, true, 5, 5),
	}
	if !Check(SetModel(), h) {
		t.Fatal("instantaneous overlapping ops rejected")
	}
}

func TestDeepBacktracking(t *testing.T) {
	// Many overlapping inserts+deletes on one key force real search.
	var h []Operation
	t0 := int64(0)
	for i := 0; i < 10; i++ {
		h = append(h, setOp(OpInsert, 1, uint64(i), 0, i == 0, t0, t0+20))
		t0++
	}
	h = append(h, setOp(OpDelete, 1, 0, 0, true, t0, t0+20))
	if !Check(SetModel(), h) {
		t.Fatal("overlapping same-key batch rejected")
	}
}
