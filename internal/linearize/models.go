package linearize

import (
	"fmt"
	"strings"
)

// Set operations for SetModel histories.
const (
	OpSearch = iota
	OpInsert
	OpDelete
)

// SetInput is the input of one set operation.
type SetInput struct {
	Op  int
	Key uint64
	Val uint64
}

// SetOutput is the observed result.
type SetOutput struct {
	Val uint64
	OK  bool
}

// setState is the per-key state: whether the key is present and with which
// value (P-compositional checking never needs more).
type setState struct {
	present bool
	val     uint64
}

// SetModel returns the sequential specification of the Set interface,
// partitioned per key (P-compositionality: a set is linearizable iff each
// single-key restriction is).
func SetModel() Model {
	return Model{
		Init: func() any { return setState{} },
		Step: func(state, input, output any) (bool, any) {
			s := state.(setState)
			in := input.(SetInput)
			out := output.(SetOutput)
			switch in.Op {
			case OpSearch:
				if out.OK {
					return s.present && s.val == out.Val, s
				}
				return !s.present, s
			case OpInsert:
				if out.OK {
					return !s.present, setState{present: true, val: in.Val}
				}
				return s.present, s
			case OpDelete:
				if out.OK {
					return s.present && s.val == out.Val, setState{}
				}
				return !s.present, s
			}
			return false, s
		},
		Key: func(state any) string {
			s := state.(setState)
			return fmt.Sprintf("%v:%d", s.present, s.val)
		},
		Partition: func(ops []Operation) [][]Operation {
			byKey := map[uint64][]Operation{}
			for _, op := range ops {
				k := op.Input.(SetInput).Key
				byKey[k] = append(byKey[k], op)
			}
			parts := make([][]Operation, 0, len(byKey))
			for _, p := range byKey {
				parts = append(parts, p)
			}
			return parts
		},
	}
}

// KV-TTL operations for KVTTLModel histories: the string store's
// observable surface with expiry in the mix. Every op is deterministic
// given the state — the clock is part of the state, advanced by explicit
// OpKVAdvance operations recorded in the history, so "an expired Get must
// linearize as a miss after its deadline, never before" is exactly what
// the checker decides. (The relative forms — SetEX, Expire-by-seconds —
// are excluded: their deadline depends on the nondeterministic instant
// the operation linearizes at; the sequential property suite covers
// them.)
const (
	OpKVGet = iota
	OpKVSet
	OpKVDel
	OpKVExpireAt
	OpKVPersist
	OpKVAdvance
)

// KVInput is the input of one KV-TTL operation. Advance carries the
// absolute clock value in Deadline; ExpireAt carries the absolute expiry
// deadline there.
type KVInput struct {
	Op       int
	Key      uint64
	Val      string
	Deadline int64
}

// KVOutput is the observed result: the value for Get, the
// replaced/present/had-TTL bool for the writes.
type KVOutput struct {
	Val string
	OK  bool
}

// kvState is the per-key state plus the clock: presence, value, deadline
// (0 = no TTL), and the model time. An entry past its deadline is
// normalized to absent before every step.
type kvState struct {
	present  bool
	val      string
	deadline int64
	now      int64
}

func (s kvState) normalized() kvState {
	if s.present && s.deadline != 0 && s.deadline <= s.now {
		return kvState{now: s.now}
	}
	return s
}

// KVTTLModel returns the sequential specification of the string store
// with TTL, partitioned per key with the clock-advance operations
// replicated into every partition (they commute with themselves and are
// the only cross-key coupling, so P-compositionality still holds: each
// single-key restriction must be linearizable against the shared clock).
// start is the injected clock's initial value — the model time before the
// first Advance; mismatching it makes a past-deadline ExpireAt diverge.
func KVTTLModel(start int64) Model {
	return Model{
		Init: func() any { return kvState{now: start} },
		Step: func(state, input, output any) (bool, any) {
			s := state.(kvState).normalized()
			in := input.(KVInput)
			out := output.(KVOutput)
			switch in.Op {
			case OpKVAdvance:
				if in.Deadline > s.now {
					s.now = in.Deadline
				}
				return true, s
			case OpKVGet:
				if out.OK {
					return s.present && s.val == out.Val, s
				}
				return !s.present, s
			case OpKVSet:
				return out.OK == s.present, kvState{present: true, val: in.Val, now: s.now}
			case OpKVDel:
				return out.OK == s.present, kvState{now: s.now}
			case OpKVExpireAt:
				if !s.present {
					return !out.OK, s
				}
				if !out.OK {
					return false, s
				}
				d := in.Deadline
				if d <= 0 {
					d = 1
				}
				s.deadline = d
				return true, s
			case OpKVPersist:
				if out.OK {
					if !s.present || s.deadline == 0 {
						return false, s
					}
					s.deadline = 0
					return true, s
				}
				return !s.present || s.deadline == 0, s
			}
			return false, s
		},
		Key: func(state any) string {
			s := state.(kvState)
			return fmt.Sprintf("%v:%s:%d:%d", s.present, s.val, s.deadline, s.now)
		},
		Partition: func(ops []Operation) [][]Operation {
			byKey := map[uint64][]Operation{}
			var advances []Operation
			for _, op := range ops {
				in := op.Input.(KVInput)
				if in.Op == OpKVAdvance {
					advances = append(advances, op)
					continue
				}
				byKey[in.Key] = append(byKey[in.Key], op)
			}
			parts := make([][]Operation, 0, len(byKey))
			for _, p := range byKey {
				parts = append(parts, append(p, advances...))
			}
			return parts
		},
	}
}

// Queue operations for QueueModel histories.
const (
	OpEnqueue = iota
	OpDequeue
)

// QueueInput is the input of one queue operation.
type QueueInput struct {
	Op  int
	Val uint64
}

// QueueOutput is the observed result (for dequeues).
type QueueOutput struct {
	Val uint64
	OK  bool
}

// queueState is an immutable FIFO snapshot.
type queueState struct {
	items string // encoded, comma-separated
}

func queuePush(s queueState, v uint64) queueState {
	if s.items == "" {
		return queueState{items: fmt.Sprintf("%d", v)}
	}
	return queueState{items: s.items + "," + fmt.Sprintf("%d", v)}
}

func queuePop(s queueState) (uint64, queueState, bool) {
	if s.items == "" {
		return 0, s, false
	}
	head := s.items
	rest := ""
	if i := strings.IndexByte(s.items, ','); i >= 0 {
		head, rest = s.items[:i], s.items[i+1:]
	}
	var v uint64
	fmt.Sscanf(head, "%d", &v)
	return v, queueState{items: rest}, true
}

// QueueModel returns the sequential FIFO specification. Queue histories are
// not partitionable; keep them small.
func QueueModel() Model {
	return Model{
		Init: func() any { return queueState{} },
		Step: func(state, input, output any) (bool, any) {
			s := state.(queueState)
			in := input.(QueueInput)
			switch in.Op {
			case OpEnqueue:
				return true, queuePush(s, in.Val)
			case OpDequeue:
				out := output.(QueueOutput)
				v, rest, ok := queuePop(s)
				if out.OK {
					return ok && v == out.Val, rest
				}
				return !ok, s
			}
			return false, s
		},
		Key: func(state any) string { return state.(queueState).items },
	}
}

// Stack operations for StackModel histories.
const (
	OpPush = iota
	OpPop
)

// StackInput is the input of one stack operation.
type StackInput struct {
	Op  int
	Val uint64
}

// StackOutput is the observed result (for pops).
type StackOutput struct {
	Val uint64
	OK  bool
}

type stackState struct {
	items string
}

// StackModel returns the sequential LIFO specification.
func StackModel() Model {
	return Model{
		Init: func() any { return stackState{} },
		Step: func(state, input, output any) (bool, any) {
			s := state.(stackState)
			in := input.(StackInput)
			switch in.Op {
			case OpPush:
				if s.items == "" {
					return true, stackState{items: fmt.Sprintf("%d", in.Val)}
				}
				return true, stackState{items: s.items + "," + fmt.Sprintf("%d", in.Val)}
			case OpPop:
				out := output.(StackOutput)
				if s.items == "" {
					return !out.OK, s
				}
				i := strings.LastIndexByte(s.items, ',')
				top := s.items[i+1:]
				rest := ""
				if i >= 0 {
					rest = s.items[:i]
				}
				var v uint64
				fmt.Sscanf(top, "%d", &v)
				if out.OK {
					return v == out.Val, stackState{items: rest}
				}
				return false, s
			}
			return false, s
		},
		Key: func(state any) string { return state.(stackState).items },
	}
}
