package linearize

import (
	"fmt"
	"strings"
)

// Set operations for SetModel histories.
const (
	OpSearch = iota
	OpInsert
	OpDelete
)

// SetInput is the input of one set operation.
type SetInput struct {
	Op  int
	Key uint64
	Val uint64
}

// SetOutput is the observed result.
type SetOutput struct {
	Val uint64
	OK  bool
}

// setState is the per-key state: whether the key is present and with which
// value (P-compositional checking never needs more).
type setState struct {
	present bool
	val     uint64
}

// SetModel returns the sequential specification of the Set interface,
// partitioned per key (P-compositionality: a set is linearizable iff each
// single-key restriction is).
func SetModel() Model {
	return Model{
		Init: func() any { return setState{} },
		Step: func(state, input, output any) (bool, any) {
			s := state.(setState)
			in := input.(SetInput)
			out := output.(SetOutput)
			switch in.Op {
			case OpSearch:
				if out.OK {
					return s.present && s.val == out.Val, s
				}
				return !s.present, s
			case OpInsert:
				if out.OK {
					return !s.present, setState{present: true, val: in.Val}
				}
				return s.present, s
			case OpDelete:
				if out.OK {
					return s.present && s.val == out.Val, setState{}
				}
				return !s.present, s
			}
			return false, s
		},
		Key: func(state any) string {
			s := state.(setState)
			return fmt.Sprintf("%v:%d", s.present, s.val)
		},
		Partition: func(ops []Operation) [][]Operation {
			byKey := map[uint64][]Operation{}
			for _, op := range ops {
				k := op.Input.(SetInput).Key
				byKey[k] = append(byKey[k], op)
			}
			parts := make([][]Operation, 0, len(byKey))
			for _, p := range byKey {
				parts = append(parts, p)
			}
			return parts
		},
	}
}

// Queue operations for QueueModel histories.
const (
	OpEnqueue = iota
	OpDequeue
)

// QueueInput is the input of one queue operation.
type QueueInput struct {
	Op  int
	Val uint64
}

// QueueOutput is the observed result (for dequeues).
type QueueOutput struct {
	Val uint64
	OK  bool
}

// queueState is an immutable FIFO snapshot.
type queueState struct {
	items string // encoded, comma-separated
}

func queuePush(s queueState, v uint64) queueState {
	if s.items == "" {
		return queueState{items: fmt.Sprintf("%d", v)}
	}
	return queueState{items: s.items + "," + fmt.Sprintf("%d", v)}
}

func queuePop(s queueState) (uint64, queueState, bool) {
	if s.items == "" {
		return 0, s, false
	}
	head := s.items
	rest := ""
	if i := strings.IndexByte(s.items, ','); i >= 0 {
		head, rest = s.items[:i], s.items[i+1:]
	}
	var v uint64
	fmt.Sscanf(head, "%d", &v)
	return v, queueState{items: rest}, true
}

// QueueModel returns the sequential FIFO specification. Queue histories are
// not partitionable; keep them small.
func QueueModel() Model {
	return Model{
		Init: func() any { return queueState{} },
		Step: func(state, input, output any) (bool, any) {
			s := state.(queueState)
			in := input.(QueueInput)
			switch in.Op {
			case OpEnqueue:
				return true, queuePush(s, in.Val)
			case OpDequeue:
				out := output.(QueueOutput)
				v, rest, ok := queuePop(s)
				if out.OK {
					return ok && v == out.Val, rest
				}
				return !ok, s
			}
			return false, s
		},
		Key: func(state any) string { return state.(queueState).items },
	}
}

// Stack operations for StackModel histories.
const (
	OpPush = iota
	OpPop
)

// StackInput is the input of one stack operation.
type StackInput struct {
	Op  int
	Val uint64
}

// StackOutput is the observed result (for pops).
type StackOutput struct {
	Val uint64
	OK  bool
}

type stackState struct {
	items string
}

// StackModel returns the sequential LIFO specification.
func StackModel() Model {
	return Model{
		Init: func() any { return stackState{} },
		Step: func(state, input, output any) (bool, any) {
			s := state.(stackState)
			in := input.(StackInput)
			switch in.Op {
			case OpPush:
				if s.items == "" {
					return true, stackState{items: fmt.Sprintf("%d", in.Val)}
				}
				return true, stackState{items: s.items + "," + fmt.Sprintf("%d", in.Val)}
			case OpPop:
				out := output.(StackOutput)
				if s.items == "" {
					return !out.OK, s
				}
				i := strings.LastIndexByte(s.items, ',')
				top := s.items[i+1:]
				rest := ""
				if i >= 0 {
					rest = s.items[:i]
				}
				var v uint64
				fmt.Sscanf(top, "%d", &v)
				if out.OK {
					return v == out.Val, stackState{items: rest}
				}
				return false, s
			}
			return false, s
		},
		Key: func(state any) string { return state.(stackState).items },
	}
}
