package linearize_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/optik-go/optik/internal/linearize"
	"github.com/optik-go/optik/internal/rng"
	"github.com/optik-go/optik/store"
)

// recordKVTTLHistory runs a concurrent KV workload with expiry against a
// string store driven by an injected clock. One dedicated client advances
// the clock (each advance is an operation in the history — the model's
// time only moves where the checker can see it), the workers mix
// Get/Set/Del/ExpireAt/Persist over few keys, and a janitor goroutine
// concurrently drives the store's sweep so background retirement of
// expired entries races the recorded operations.
func recordKVTTLHistory(goroutines, iters int, keys uint64) []linearize.Operation {
	var clock atomic.Int64
	clock.Store(1_000_000_000)
	s := store.NewStrings(
		store.WithClock(clock.Load),
		store.WithShards(2),
		store.WithShardBuckets(16),
		store.WithoutMaintenance(),
	)
	const tick = int64(time.Millisecond)

	var mu sync.Mutex
	var history []linearize.Operation
	var wg sync.WaitGroup
	var ready sync.WaitGroup
	stop := make(chan struct{})
	begin := make(chan struct{})
	start := time.Now()

	// The janitor: unrecorded, but its expired-entry retirement must be
	// invisible to the checker (an expired entry is absent either way).
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				s.Quiesce()
			}
		}
	}()

	// The clock client: iters monotone advances, each a history op.
	wg.Add(1)
	ready.Add(1)
	go func() {
		defer wg.Done()
		r := rng.NewXorshift(uint64(goroutines + 1))
		local := make([]linearize.Operation, 0, iters/2)
		ready.Done()
		<-begin
		for i := 0; i < iters/2; i++ {
			next := clock.Load() + int64(r.Intn(3)+1)*tick
			call := time.Since(start).Nanoseconds()
			clock.Store(next)
			ret := time.Since(start).Nanoseconds()
			local = append(local, linearize.Operation{
				ClientID: goroutines,
				Input:    linearize.KVInput{Op: linearize.OpKVAdvance, Deadline: next},
				Output:   linearize.KVOutput{OK: true},
				Call:     call, Return: ret,
			})
		}
		mu.Lock()
		history = append(history, local...)
		mu.Unlock()
	}()

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		ready.Add(1)
		go func(id int) {
			defer wg.Done()
			r := rng.NewXorshift(uint64(id + 1))
			local := make([]linearize.Operation, 0, iters)
			ready.Done()
			<-begin
			for i := 0; i < iters; i++ {
				key := r.Intn(keys) + 1
				k := fmt.Sprintf("key-%d", key)
				var in linearize.KVInput
				var out linearize.KVOutput
				call := time.Since(start).Nanoseconds()
				switch op := r.Intn(100); {
				case op < 40:
					in = linearize.KVInput{Op: linearize.OpKVGet, Key: key}
					out.Val, out.OK = s.Get(k)
				case op < 65:
					val := fmt.Sprintf("v%d-%d", id, i)
					in = linearize.KVInput{Op: linearize.OpKVSet, Key: key, Val: val}
					out.OK = s.Set(k, val)
				case op < 80:
					// An absolute deadline straddling the current clock:
					// some land in the past (immediate expiry), most a few
					// ticks out, so expiry races every other op.
					deadline := clock.Load() + int64(r.Intn(5)-1)*tick
					in = linearize.KVInput{Op: linearize.OpKVExpireAt, Key: key, Deadline: deadline}
					out.OK = s.ExpireAt(k, deadline)
				case op < 90:
					in = linearize.KVInput{Op: linearize.OpKVDel, Key: key}
					out.OK = s.Del(k)
				default:
					in = linearize.KVInput{Op: linearize.OpKVPersist, Key: key}
					out.OK = s.Persist(k)
				}
				ret := time.Since(start).Nanoseconds()
				local = append(local, linearize.Operation{
					ClientID: id, Input: in, Output: out, Call: call, Return: ret,
				})
			}
			mu.Lock()
			history = append(history, local...)
			mu.Unlock()
		}(g)
	}
	ready.Wait()
	close(begin)
	wg.Wait()
	close(stop)
	return history
}

// TestStringsTTLLinearizable checks the string store's TTL surface for
// linearizability: an expired Get must linearize as a miss after its
// deadline passed (an Advance in the history), never before, and the
// background sweep's retirements must be unobservable.
func TestStringsTTLLinearizable(t *testing.T) {
	model := linearize.KVTTLModel(1_000_000_000)
	for round := 0; round < 3; round++ {
		h := recordKVTTLHistory(4, 60, 4)
		if !linearize.Check(model, h) {
			t.Fatalf("round %d: KV-TTL history not linearizable (%d ops)", round, len(h))
		}
	}
}
