// Package linearize implements a Wing–Gong linearizability checker with the
// memoization of Lowe ("Testing for linearizability", 2017) — the algorithm
// behind tools like Knossos and Porcupine. The data structures in ds/ claim
// linearizability (§2 of the paper measures consistency against it); the
// integration tests record concurrent histories and verify them here.
//
// Set histories are P-compositional: a set is linearizable iff its
// restriction to each key is, so histories are partitioned per key and each
// (small) sub-history is checked independently, which keeps the exponential
// search tractable. Queue and stack histories cannot be partitioned and are
// checked whole, on small windows.
package linearize

import (
	"encoding/binary"
	"sort"
)

// Operation is one invocation/response pair observed in a history.
type Operation struct {
	ClientID int
	Input    any
	Output   any
	Call     int64 // invocation timestamp (monotonic)
	Return   int64 // response timestamp; must be >= Call
}

// Model is a sequential specification. States must be usable as map keys
// via Key (a collision-free encoding chosen by the model).
type Model struct {
	// Init returns the initial state.
	Init func() any
	// Step applies input/output to state, reporting whether the pair is
	// legal in that state and, if so, the successor state.
	Step func(state, input, output any) (bool, any)
	// Key encodes a state for memoization. Two states with equal keys must
	// be behaviourally identical.
	Key func(state any) string
	// Partition optionally splits a history into independently checkable
	// sub-histories (P-compositionality); nil checks the history whole.
	Partition func(ops []Operation) [][]Operation
}

// Check reports whether history is linearizable with respect to model.
func Check(model Model, history []Operation) bool {
	parts := [][]Operation{history}
	if model.Partition != nil {
		parts = model.Partition(history)
	}
	for _, part := range parts {
		if !checkSingle(model, part) {
			return false
		}
	}
	return true
}

// event is an entry in the doubly-linked event list: a call or return.
type event struct {
	id         int // operation index
	isCall     bool
	op         *Operation
	match      *event // call <-> return
	prev, next *event
}

// checkSingle runs the Wing–Gong/Lowe algorithm on one sub-history.
func checkSingle(model Model, ops []Operation) bool {
	n := len(ops)
	if n == 0 {
		return true
	}
	if n > 64*1024 {
		panic("linearize: history too large")
	}
	events := buildEvents(ops)
	head := &event{id: -1}
	head.next = events
	if events != nil {
		events.prev = head
	}

	type frame struct {
		call  *event
		state any
	}
	var stack []frame
	state := model.Init()
	linearized := newBitset(n)
	cache := map[cacheKey]struct{}{}

	entry := head.next
	for head.next != nil {
		if entry == nil {
			// Dead end: backtrack.
			if len(stack) == 0 {
				return false
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			state = top.state
			linearized.clear(top.call.id)
			unlift(top.call)
			entry = top.call.next
			continue
		}
		if entry.isCall {
			ok, next := model.Step(state, entry.op.Input, entry.op.Output)
			if ok {
				linearized.set(entry.id)
				key := makeCacheKey(linearized, model.Key(next))
				if _, seen := cache[key]; !seen {
					cache[key] = struct{}{}
					stack = append(stack, frame{call: entry, state: state})
					state = next
					lift(entry)
					entry = head.next
					continue
				}
				linearized.clear(entry.id)
			}
			entry = entry.next
			continue
		}
		// Return event reached: every op that returned before this point
		// must already be linearized; backtrack.
		if len(stack) == 0 {
			return false
		}
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		state = top.state
		linearized.clear(top.call.id)
		unlift(top.call)
		entry = top.call.next
	}
	return true
}

// buildEvents renders ops as a time-ordered doubly-linked list of call and
// return events.
func buildEvents(ops []Operation) *event {
	evs := make([]*event, 0, 2*len(ops))
	for i := range ops {
		op := &ops[i]
		call := &event{id: i, isCall: true, op: op}
		ret := &event{id: i, op: op}
		call.match = ret
		ret.match = call
		evs = append(evs, call, ret)
	}
	sort.SliceStable(evs, func(a, b int) bool {
		ta, tb := evTime(evs[a]), evTime(evs[b])
		if ta != tb {
			return ta < tb
		}
		// Calls first on ties: with equal timestamps the real order is
		// unknowable, so treat the operations as overlapping (permissive —
		// never reports a false violation) and keep an instantaneous op's
		// call ahead of its own return.
		return evs[a].isCall && !evs[b].isCall
	})
	for i := 0; i < len(evs); i++ {
		if i+1 < len(evs) {
			evs[i].next = evs[i+1]
			evs[i+1].prev = evs[i]
		}
	}
	return evs[0]
}

func evTime(e *event) int64 {
	if e.isCall {
		return e.op.Call
	}
	return e.op.Return
}

// lift removes a call event and its return from the list (the op has been
// linearized).
func lift(call *event) {
	call.prev.next = call.next
	if call.next != nil {
		call.next.prev = call.prev
	}
	ret := call.match
	ret.prev.next = ret.next
	if ret.next != nil {
		ret.next.prev = ret.prev
	}
}

// unlift reinserts a call and its return (backtracking).
func unlift(call *event) {
	ret := call.match
	ret.prev.next = ret
	if ret.next != nil {
		ret.next.prev = ret
	}
	call.prev.next = call
	if call.next != nil {
		call.next.prev = call
	}
}

// bitset tracks which operations are currently linearized.
type bitset []uint64

func newBitset(n int) bitset    { return make(bitset, (n+63)/64) }
func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (i % 64) }
func (b bitset) get(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

type cacheKey struct {
	bits  string
	state string
}

func makeCacheKey(b bitset, stateKey string) cacheKey {
	buf := make([]byte, 8*len(b))
	for i, w := range b {
		binary.LittleEndian.PutUint64(buf[i*8:], w)
	}
	return cacheKey{bits: string(buf), state: stateKey}
}
