package linearize_test

import (
	"sync"
	"testing"
	"time"

	"github.com/optik-go/optik/ds"
	"github.com/optik-go/optik/ds/arraymap"
	"github.com/optik-go/optik/ds/hashmap"
	"github.com/optik-go/optik/ds/list"
	"github.com/optik-go/optik/ds/queue"
	"github.com/optik-go/optik/ds/skiplist"
	"github.com/optik-go/optik/ds/stack"
	"github.com/optik-go/optik/internal/linearize"
	"github.com/optik-go/optik/internal/rng"
)

// recordSetHistory runs a concurrent workload against s and returns the
// observed history. Few keys maximize contention; few ops per goroutine
// keep per-key sub-histories tractable.
func recordSetHistory(s ds.Set, goroutines, iters int, keys uint64) []linearize.Operation {
	var mu sync.Mutex
	var history []linearize.Operation
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			view := ds.HandleFor(s)
			r := rng.NewXorshift(uint64(id + 1))
			local := make([]linearize.Operation, 0, iters)
			for i := 0; i < iters; i++ {
				key := r.Intn(keys) + 1
				var in linearize.SetInput
				var out linearize.SetOutput
				call := time.Since(start).Nanoseconds()
				switch r.Intn(3) {
				case 0:
					val := r.Next()%1000 + 1
					in = linearize.SetInput{Op: linearize.OpInsert, Key: key, Val: val}
					out.OK = view.Insert(key, val)
				case 1:
					in = linearize.SetInput{Op: linearize.OpDelete, Key: key}
					out.Val, out.OK = view.Delete(key)
				default:
					in = linearize.SetInput{Op: linearize.OpSearch, Key: key}
					out.Val, out.OK = view.Search(key)
				}
				ret := time.Since(start).Nanoseconds()
				local = append(local, linearize.Operation{
					ClientID: id, Input: in, Output: out, Call: call, Return: ret,
				})
			}
			mu.Lock()
			history = append(history, local...)
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	return history
}

func TestSetsLinearizable(t *testing.T) {
	makers := map[string]func() ds.Set{
		"list/harris":        func() ds.Set { return list.NewHarris() },
		"list/lazy":          func() ds.Set { return list.NewLazy() },
		"list/mcs-gl-opt":    func() ds.Set { return list.NewMCSGL() },
		"list/optik-gl":      func() ds.Set { return list.NewOptikGL() },
		"list/optik":         func() ds.Set { return list.NewOptik() },
		"arraymap/mcs":       func() ds.Set { return arraymap.NewMCS(16) },
		"arraymap/optik":     func() ds.Set { return arraymap.NewOptik(16) },
		"hashmap/optik":      func() ds.Set { return hashmap.NewOptik(4) },
		"hashmap/optik-gl":   func() ds.Set { return hashmap.NewOptikGL(4) },
		"hashmap/optik-map":  func() ds.Set { return hashmap.NewOptikMap(4, 8) },
		"hashmap/lazy-gl":    func() ds.Set { return hashmap.NewLazyGL(4) },
		"hashmap/java":       func() ds.Set { return hashmap.NewJava(4, 2) },
		"hashmap/java-optik": func() ds.Set { return hashmap.NewJavaOptik(4, 2) },
		"skiplist/herlihy":   func() ds.Set { return skiplist.NewHerlihy() },
		"skiplist/herloptik": func() ds.Set { return skiplist.NewHerlihyOptik() },
		"skiplist/fraser":    func() ds.Set { return skiplist.NewFraser() },
		"skiplist/optik1":    func() ds.Set { return skiplist.NewOptik1() },
		"skiplist/optik2":    func() ds.Set { return skiplist.NewOptik2() },
	}
	model := linearize.SetModel()
	for name, mk := range makers {
		t.Run(name, func(t *testing.T) {
			for round := 0; round < 3; round++ {
				h := recordSetHistory(mk(), 6, 120, 6)
				if !linearize.Check(model, h) {
					t.Fatalf("round %d: history not linearizable (%d ops)", round, len(h))
				}
			}
		})
	}
}

func TestCachedListHandlesLinearizable(t *testing.T) {
	// The node-cache handles carry per-goroutine state; HandleFor in the
	// recorder exercises them.
	model := linearize.SetModel()
	for name, mk := range map[string]func() ds.Set{
		"list/optik-cache": func() ds.Set { return list.NewOptik() },
		"list/lazy-cache":  func() ds.Set { return list.NewLazy() },
	} {
		t.Run(name, func(t *testing.T) {
			for round := 0; round < 3; round++ {
				h := recordSetHistory(mk(), 6, 120, 6)
				if !linearize.Check(model, h) {
					t.Fatalf("round %d: history not linearizable", round)
				}
			}
		})
	}
}

func recordQueueHistory(q ds.Queue, goroutines, iters int) []linearize.Operation {
	var mu sync.Mutex
	var history []linearize.Operation
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := rng.NewXorshift(uint64(id + 1))
			local := make([]linearize.Operation, 0, iters)
			for i := 0; i < iters; i++ {
				var in linearize.QueueInput
				var out linearize.QueueOutput
				call := time.Since(start).Nanoseconds()
				if r.Intn(2) == 0 {
					val := uint64(id*1000 + i + 1)
					in = linearize.QueueInput{Op: linearize.OpEnqueue, Val: val}
					q.Enqueue(val)
					out.OK = true
				} else {
					in = linearize.QueueInput{Op: linearize.OpDequeue}
					out.Val, out.OK = q.Dequeue()
				}
				ret := time.Since(start).Nanoseconds()
				local = append(local, linearize.Operation{
					ClientID: id, Input: in, Output: out, Call: call, Return: ret,
				})
			}
			mu.Lock()
			history = append(history, local...)
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	return history
}

func TestQueuesLinearizable(t *testing.T) {
	makers := map[string]func() ds.Queue{
		"ms-lf":  func() ds.Queue { return queue.NewMSLF() },
		"ms-lb":  func() ds.Queue { return queue.NewMSLB() },
		"optik0": func() ds.Queue { return queue.NewOptik0() },
		"optik1": func() ds.Queue { return queue.NewOptik1() },
		"optik2": func() ds.Queue { return queue.NewOptik2() },
		"optik3": func() ds.Queue { return queue.NewOptikVictim(0) },
	}
	model := linearize.QueueModel()
	for name, mk := range makers {
		t.Run(name, func(t *testing.T) {
			for round := 0; round < 4; round++ {
				// Small histories: queue checking is not partitionable.
				h := recordQueueHistory(mk(), 3, 14)
				if !linearize.Check(model, h) {
					t.Fatalf("round %d: queue history not linearizable (%d ops)", round, len(h))
				}
			}
		})
	}
}

func recordStackHistory(s ds.Stack, goroutines, iters int) []linearize.Operation {
	var mu sync.Mutex
	var history []linearize.Operation
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := rng.NewXorshift(uint64(id + 1))
			local := make([]linearize.Operation, 0, iters)
			for i := 0; i < iters; i++ {
				var in linearize.StackInput
				var out linearize.StackOutput
				call := time.Since(start).Nanoseconds()
				if r.Intn(2) == 0 {
					val := uint64(id*1000 + i + 1)
					in = linearize.StackInput{Op: linearize.OpPush, Val: val}
					s.Push(val)
					out.OK = true
				} else {
					in = linearize.StackInput{Op: linearize.OpPop}
					out.Val, out.OK = s.Pop()
				}
				ret := time.Since(start).Nanoseconds()
				local = append(local, linearize.Operation{
					ClientID: id, Input: in, Output: out, Call: call, Return: ret,
				})
			}
			mu.Lock()
			history = append(history, local...)
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	return history
}

func TestStacksLinearizable(t *testing.T) {
	makers := map[string]func() ds.Stack{
		"treiber": func() ds.Stack { return stack.NewTreiber() },
		"optik":   func() ds.Stack { return stack.NewOptik() },
	}
	model := linearize.StackModel()
	for name, mk := range makers {
		t.Run(name, func(t *testing.T) {
			for round := 0; round < 4; round++ {
				h := recordStackHistory(mk(), 3, 14)
				if !linearize.Check(model, h) {
					t.Fatalf("round %d: stack history not linearizable (%d ops)", round, len(h))
				}
			}
		})
	}
}
