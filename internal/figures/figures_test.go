package figures

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/optik-go/optik/ds"
)

// tinyOpts keeps the smoke runs fast.
func tinyOpts(buf *bytes.Buffer) RunOpts {
	return RunOpts{
		Threads:  []int{2},
		Duration: 20 * time.Millisecond,
		Reps:     1,
		Out:      buf,
	}
}

func TestNormalizeDefaults(t *testing.T) {
	o := RunOpts{}.Normalize()
	if len(o.Threads) == 0 || o.Duration <= 0 || o.Reps <= 0 {
		t.Fatalf("Normalize left zero fields: %+v", o)
	}
}

func TestEveryFigureEmitsItsSeries(t *testing.T) {
	cases := []struct {
		name string
		run  func(RunOpts)
		want []string
	}{
		{"fig5", Fig5, []string{"Figure 5", "ttas", "optik-versioned", "optik-ticket"}},
		{"fig7", Fig7, []string{"Figure 7", "mcs", "optik", "srch-suc", "delt-fal"}},
		{"fig9", Fig9, []string{"Figure 9", "harris", "lazy", "mcs-gl-opt", "optik-gl", "optik-cache", "lazy-cache", "Small skewed"}},
		{"fig10", Fig10, []string{"Figure 10", "lazy-gl", "java", "java-optik", "optik-map"}},
		{"fig11", Fig11, []string{"Figure 11", "fraser", "herlihy", "herl-optik", "optik1", "optik2"}},
		{"fig12", Fig12, []string{"Figure 12", "ms-lf", "ms-lb", "optik0", "optik3", "enqueue", "dequeue"}},
		{"stacks", Stacks, []string{"stacks", "treiber", "optik"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.name == "fig11" || c.name == "fig12" {
				// These prefill 65536 elements; keep but don't parallelize.
				t.Parallel()
			}
			var buf bytes.Buffer
			c.run(tinyOpts(&buf))
			out := buf.String()
			for _, want := range c.want {
				if !strings.Contains(out, want) {
					t.Fatalf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}

func TestFigResizeEmitsSeriesAndRecords(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOpts(&buf)
	rec := &Recorder{}
	o.Record = rec
	figResize(o, 64, 2000) // tiny ramp: still several doublings for resizable
	out := buf.String()
	for _, want := range []string{"Resize", "Resize latency", "lazy-gl-fixed", "optik-gl-fixed", "slab-fixed", "resizable", "p99="} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// One throughput row per algo plus one latency row per algo.
	if got, want := len(rec.Rows), 2*len(ResizeAlgos(64)); got != want {
		t.Fatalf("recorded %d rows, want %d", got, want)
	}
	for _, row := range rec.Rows {
		if row.Threads != 2 || row.Mops <= 0 {
			t.Fatalf("bad row: %+v", row)
		}
		switch row.Figure {
		case "Resize":
		case "Resize latency":
			if row.P50Ns <= 0 || row.P99Ns < row.P50Ns || row.MaxNs < row.P99Ns {
				t.Fatalf("latency row tail not ordered: %+v", row)
			}
		default:
			t.Fatalf("unexpected figure %q", row.Figure)
		}
	}

	var js bytes.Buffer
	if err := rec.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		GoVersion string `json:"go_version"`
		Rows      []Row  `json:"rows"`
	}
	if err := json.Unmarshal(js.Bytes(), &doc); err != nil {
		t.Fatalf("JSON output does not parse: %v\n%s", err, js.String())
	}
	if doc.GoVersion == "" || len(doc.Rows) != len(rec.Rows) {
		t.Fatalf("JSON document incomplete: %s", js.String())
	}
}

func TestFigChurnEmitsSeriesAndRecords(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOpts(&buf)
	rec := &Recorder{}
	o.Record = rec
	figChurn(o, 4000) // tiny churn: still grows and shrinks the resizable table
	out := buf.String()
	for _, want := range []string{"Churn", "Churn latency", "resizable", "slab-fixed", "grow", "drain", "search", "final buckets"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if got, want := len(rec.Rows), len(ResizeAlgos(500)); got != want {
		t.Fatalf("recorded %d rows, want %d", got, want)
	}
	sawResizable := false
	for _, row := range rec.Rows {
		if row.Figure != "Churn" || row.Threads != 2 || row.Mops <= 0 {
			t.Fatalf("bad row: %+v", row)
		}
		if row.P50Ns <= 0 || row.P99Ns < row.P50Ns || row.MaxNs < row.P99Ns {
			t.Fatalf("latency tail not ordered: %+v", row)
		}
		if row.Impl == "resizable" {
			sawResizable = true
			// Peak 4000 needs ≥ 1024 buckets; the drained, quiesced table
			// must be back near its 512-bucket floor. The upper bound
			// allows for a stale grow batch landing after the last flip
			// (trough 250 + up to a batch per thread, ×4 for the band).
			if row.FinalBuckets < 512 || row.FinalBuckets > 4096 {
				t.Fatalf("resizable final buckets = %d, want within [512, 4096]", row.FinalBuckets)
			}
		}
	}
	if !sawResizable {
		t.Fatal("no resizable row recorded")
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOpts(&buf) // Record left nil
	Fig5(o)
	if !strings.Contains(buf.String(), "Figure 5") {
		t.Fatal("Fig5 with nil recorder produced no output")
	}
}

func TestAlgoRegistriesComplete(t *testing.T) {
	if got := len(Fig9ListAlgos()); got != 7 {
		t.Fatalf("fig9 series = %d, want 7", got)
	}
	if got := len(HashAlgos(8)); got != 6 {
		t.Fatalf("fig10 series = %d, want 6", got)
	}
	if got := len(SkiplistAlgos()); got != 5 {
		t.Fatalf("fig11 series = %d, want 5", got)
	}
	if got := len(QueueAlgos()); got != 6 {
		t.Fatalf("fig12 series = %d, want 6", got)
	}
	if got := len(MapAlgos(4)); got != 2 {
		t.Fatalf("fig7 series = %d, want 2", got)
	}
}

func TestHideHandlesSuppressesCaching(t *testing.T) {
	// The -cache series must expose per-goroutine handles; the plain series
	// of the same structures must not, or the workload driver would turn
	// node caching on for them too.
	for _, a := range Fig9ListAlgos() {
		_, handled := a.New().(ds.Handled)
		wantHandled := a.Name == "optik-cache" || a.Name == "lazy-cache"
		if handled != wantHandled {
			t.Errorf("series %q: Handled = %v, want %v", a.Name, handled, wantHandled)
		}
	}
}

func TestFigServerEmitsSeriesAndRecords(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOpts(&buf)
	o.Shards = []int{1, 2}
	o.BatchPct = 25
	rec := &Recorder{}
	o.Record = rec
	FigServer(o)
	out := buf.String()
	for _, want := range []string{"Server", "Server latency", "store-1sh", "store-2sh", "batch25%", "get", "set", "del", "batch", "hit rate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// One throughput row per shard count plus one latency row per shard
	// count.
	if got, want := len(rec.Rows), 2*len(o.Shards); got != want {
		t.Fatalf("recorded %d rows, want %d", got, want)
	}
	for _, row := range rec.Rows {
		if row.Threads != 2 || row.Mops <= 0 {
			t.Fatalf("bad row: %+v", row)
		}
		switch row.Figure {
		case "Server":
			if row.FinalBuckets <= 0 {
				t.Fatalf("server row without buckets: %+v", row)
			}
		case "Server latency":
			if row.P50Ns <= 0 || row.P99Ns < row.P50Ns || row.MaxNs < row.P99Ns {
				t.Fatalf("latency row tail not ordered: %+v", row)
			}
		default:
			t.Fatalf("unexpected figure %q", row.Figure)
		}
	}
}

// TestFigNetEmitsSeriesAndRecords runs the wire figure at tiny scale: a
// private loopback server per cell, two pipeline depths, and the same
// row-shape contract as the in-process server figure. Pipelined depths
// fan out into the coalesced/no-coalesce/multibulk variant columns;
// depth 1 stays a single request/response column.
func TestFigNetEmitsSeriesAndRecords(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOpts(&buf)
	o.Duration = 50 * time.Millisecond
	o.Pipelines = []int{1, 8}
	rec := &Recorder{}
	o.Record = rec
	FigNet(o)
	out := buf.String()
	for _, want := range []string{"Net", "Net latency", "net-p1", "net-p8", "net-p8-nc", "net-p8-mb", "private loopback"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Columns: net-p1, plus three variants of depth 8; two figures each.
	if got, want := len(rec.Rows), 2*4; got != want {
		t.Fatalf("recorded %d rows, want %d", got, want)
	}
	for _, row := range rec.Rows {
		if row.Threads != 2 || row.Mops <= 0 {
			t.Fatalf("bad row: %+v", row)
		}
		if row.MaxProcs <= 0 {
			t.Fatalf("net row without maxprocs: %+v", row)
		}
		if row.Figure == "Net latency" && (row.P50Ns <= 0 || row.MaxNs < row.P50Ns) {
			t.Fatalf("latency row tail not ordered: %+v", row)
		}
	}
}

func TestNormalizeShards(t *testing.T) {
	got := normalizeShards([]int{3, 4, 17, 1000})
	want := []int{4, 32, 256}
	if len(got) != len(want) {
		t.Fatalf("normalizeShards = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("normalizeShards = %v, want %v", got, want)
		}
	}
	if d := normalizeShards(nil); len(d) != 3 || d[0] != 1 {
		t.Fatalf("default shards = %v", d)
	}
}
