// Package figures defines every experiment of the paper's evaluation —
// one entry per figure — and renders the same rows/series the paper
// reports. Both the root bench_test.go targets and cmd/optik-bench drive
// these definitions, so the benchmark surface has a single source of truth.
package figures

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/optik-go/optik/ds"
	"github.com/optik-go/optik/ds/arraymap"
	"github.com/optik-go/optik/ds/hashmap"
	"github.com/optik-go/optik/ds/list"
	"github.com/optik-go/optik/ds/queue"
	"github.com/optik-go/optik/ds/skiplist"
	"github.com/optik-go/optik/ds/stack"
	"github.com/optik-go/optik/internal/workload"
	"github.com/optik-go/optik/server"
	"github.com/optik-go/optik/store"
)

// RunOpts controls scale: thread counts to sweep, per-run duration and
// repetitions (the paper uses 11 × 5 s; defaults here are laptop-sized).
type RunOpts struct {
	Threads  []int
	Duration time.Duration
	Reps     int
	Out      io.Writer
	// Record, when non-nil, additionally collects every measured data
	// point for machine-readable output (cmd/optik-bench -json).
	Record *Recorder
	// ChurnPeak overrides the churn figure's peak element count (0 keeps
	// the default); CI uses a small peak to keep the sweep short.
	ChurnPeak int
	// Janitor runs the resizable series with the background janitor
	// enabled (same series name, so trends stay comparable; the header
	// notes the mode).
	Janitor bool
	// Shards are the shard counts the server figure sweeps (default
	// 1, 4, 16 — the 1-shard row is the unsharded baseline every other
	// row is read against).
	Shards []int
	// BatchPct is the server figure's batched-request percentage
	// (default 20); its batch size is fixed at 16 keys.
	BatchPct int
	// NetAddr points the net figure at an already-running optik-server
	// ("host:port"); empty starts a private loopback server per cell, so
	// every row measures a cold store.
	NetAddr string
	// Pipelines are the wire pipeline depths the net figure sweeps
	// (default 1, 16, 64, 256; depth d issues d-command pipelines per flush).
	Pipelines []int
	// Conns are the connection populations the conns figure sweeps
	// (default 64, 1024, 4096; the nightly adds 10000 — mind ulimit -n).
	Conns []int
	// ActivePcts are the active-connection percentages the conns figure
	// sweeps per population (default 100, 5: all-active parity check and
	// the mostly-idle C10K shape).
	ActivePcts []int
}

// Row is one measured data point in the shape the -json output emits, so
// the perf trajectory can be tracked across changes.
type Row struct {
	Figure   string  `json:"figure"`
	Workload string  `json:"workload,omitempty"`
	Impl     string  `json:"impl"`
	Threads  int     `json:"threads"`
	Mops     float64 `json:"mops"`
	// CASPerValidation is only set by the lock figure (Figure 5).
	CASPerValidation float64 `json:"cas_per_validation,omitempty"`
	// Per-op latency tail (ns), set by the churn and resize-latency rows:
	// migration stalls live here, not in the throughput average.
	P50Ns float64 `json:"p50_ns,omitempty"`
	P99Ns float64 `json:"p99_ns,omitempty"`
	MaxNs float64 `json:"max_ns,omitempty"`
	// FinalBuckets is set by the churn figure for resizable structures:
	// proof the table handed its memory back.
	FinalBuckets int `json:"final_buckets,omitempty"`
	// NodesRetired/NodesReused are the churn figure's chain-node
	// reclamation counters for structures that recycle through qsbr:
	// proof steady-state churn reuses nodes instead of re-allocating.
	NodesRetired uint64 `json:"nodes_retired,omitempty"`
	NodesReused  uint64 `json:"nodes_reused,omitempty"`
	// MaxProcs is set by the server/net rows: GOMAXPROCS at measurement
	// time, so rows from differently-sized runners never join silently.
	MaxProcs int `json:"maxprocs,omitempty"`
	// ConnMode is set by the conns rows: which connection-driving mode the
	// server ran ("goroutine" or "poller"). It rides in the impl name too,
	// so the bench-diff join never compares across modes.
	ConnMode string `json:"connmode,omitempty"`
	// BuffersResident is the conns rows' RSS proxy: bytes of pooled
	// connection buffers checked out server-side at the sample point.
	BuffersResident int64 `json:"buffers_resident,omitempty"`
	// ConnsShed counts connections the server shed during the run.
	ConnsShed int64 `json:"conns_shed,omitempty"`
	// HitRate/BytesUsed/Evicted are the evict rows' governance readings:
	// cache hit rate over the run, peak bytes_used the sampler observed,
	// and entries evicted for the budget.
	HitRate   float64 `json:"hit_rate,omitempty"`
	BytesUsed int64   `json:"bytes_used,omitempty"`
	Evicted   uint64  `json:"evicted,omitempty"`
}

// Recorder accumulates rows for machine-readable output. The figure
// runners drive it from a single goroutine; it needs no locking.
type Recorder struct {
	Rows []Row
}

// add appends a row; a nil recorder records nothing, so call sites don't
// need guards.
func (r *Recorder) add(row Row) {
	if r != nil {
		r.Rows = append(r.Rows, row)
	}
}

// WriteJSON writes the recorded rows plus run metadata as an indented JSON
// document.
func (r *Recorder) WriteJSON(w io.Writer) error {
	doc := struct {
		GeneratedAt string `json:"generated_at"`
		GoVersion   string `json:"go_version"`
		MaxProcs    int    `json:"maxprocs"`
		Rows        []Row  `json:"rows"`
	}{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		MaxProcs:    runtime.GOMAXPROCS(0),
		Rows:        r.Rows,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// DefaultThreads is the default sweep.
var DefaultThreads = []int{1, 2, 4, 8, 16}

// Normalize fills zero fields with defaults.
func (o RunOpts) Normalize() RunOpts {
	if len(o.Threads) == 0 {
		o.Threads = DefaultThreads
	}
	if o.Duration <= 0 {
		o.Duration = 100 * time.Millisecond
	}
	if o.Reps <= 0 {
		o.Reps = 3
	}
	return o
}

// NamedSet couples a graph key with a Set factory.
type NamedSet struct {
	Name string
	New  func() ds.Set
}

// NamedQueue couples a graph key with a Queue factory.
type NamedQueue struct {
	Name string
	New  func() ds.Queue
}

// SetWorkload is one panel of a set-structure figure.
type SetWorkload struct {
	Label       string
	InitialSize int
	UpdatePct   int
	Zipf        bool
	// Buckets configures hash tables (paper: buckets == initial size).
	Buckets int
}

// ListAlgos returns the Figure-9 series in graph order.
func ListAlgos() []NamedSet {
	return []NamedSet{
		{"harris", func() ds.Set { return list.NewHarris() }},
		{"lazy", func() ds.Set { return list.NewLazy() }},
		{"mcs-gl-opt", func() ds.Set { return list.NewMCSGL() }},
		{"optik-gl", func() ds.Set { return list.NewOptikGL() }},
		{"optik", func() ds.Set { return list.NewOptik() }},
		{"optik-cache", func() ds.Set { return list.NewOptik() }}, // handles via HandleFor
		{"lazy-cache", func() ds.Set { return list.NewLazy() }},
	}
}

// listAlgoNoCache returns factories whose handles do NOT enable caching;
// the plain "optik"/"lazy" series must not pick up handles. The workload
// driver enables caching through ds.HandleFor, so the cache-less series
// wrap the structure to hide the Handled interface.
type noHandle struct{ ds.Set }

// hideHandles prevents ds.HandleFor from discovering node-cache handles on
// series that must run without them.
func hideHandles(n NamedSet) NamedSet {
	inner := n.New
	return NamedSet{Name: n.Name, New: func() ds.Set { return noHandle{inner()} }}
}

// Fig9ListAlgos returns the Figure-9 series with caching enabled only on
// the -cache series.
func Fig9ListAlgos() []NamedSet {
	algos := ListAlgos()
	out := make([]NamedSet, 0, len(algos))
	for _, a := range algos {
		switch a.Name {
		case "optik-cache", "lazy-cache":
			out = append(out, a)
		default:
			out = append(out, hideHandles(a))
		}
	}
	return out
}

// HashAlgos returns the Figure-10 series in graph order. buckets follows
// the paper: one bucket per initial element.
func HashAlgos(buckets int) []NamedSet {
	return []NamedSet{
		{"lazy-gl", func() ds.Set { return hashmap.NewLazyGL(buckets) }},
		{"java", func() ds.Set { return hashmap.NewJava(buckets, 0) }},
		{"java-optik", func() ds.Set { return hashmap.NewJavaOptik(buckets, 0) }},
		{"optik", func() ds.Set { return hashmap.NewOptik(buckets) }},
		{"optik-gl", func() ds.Set { return hashmap.NewOptikGL(buckets) }},
		{"optik-map", func() ds.Set { return hashmap.NewOptikMap(buckets, 0) }},
	}
}

// ResizeAlgos returns the resize-under-load series: the fixed-capacity
// tables built at the ramp's start size versus the resizable slab table.
// (OptikMap is excluded: its fixed-capacity buckets reject insertions once
// full, so it cannot absorb the ramp at all.)
func ResizeAlgos(startBuckets int) []NamedSet {
	return resizeAlgos(startBuckets, false)
}

// resizeAlgos is ResizeAlgos with the janitor mode of the resizable
// series exposed. The series keeps its name either way so the bench-trend
// JSON stays joinable across commits; the workload drivers stop the
// janitor before reporting.
func resizeAlgos(startBuckets int, janitor bool) []NamedSet {
	resizable := func() ds.Set { return hashmap.NewResizable(startBuckets) }
	if janitor {
		resizable = func() ds.Set { return hashmap.NewResizable(startBuckets, hashmap.WithJanitor()) }
	}
	return []NamedSet{
		{"lazy-gl-fixed", func() ds.Set { return hashmap.NewLazyGL(startBuckets) }},
		{"optik-gl-fixed", func() ds.Set { return hashmap.NewOptikGL(startBuckets) }},
		{"slab-fixed", func() ds.Set { return hashmap.NewSlab(startBuckets) }},
		{"resizable", resizable},
	}
}

// SkiplistAlgos returns the Figure-11 series in graph order.
func SkiplistAlgos() []NamedSet {
	return []NamedSet{
		{"fraser", func() ds.Set { return skiplist.NewFraser() }},
		{"herlihy", func() ds.Set { return skiplist.NewHerlihy() }},
		{"herl-optik", func() ds.Set { return skiplist.NewHerlihyOptik() }},
		{"optik1", func() ds.Set { return skiplist.NewOptik1() }},
		{"optik2", func() ds.Set { return skiplist.NewOptik2() }},
	}
}

// QueueAlgos returns the Figure-12 series in graph order.
func QueueAlgos() []NamedQueue {
	return []NamedQueue{
		{"ms-lf", func() ds.Queue { return queue.NewMSLF() }},
		{"ms-lb", func() ds.Queue { return queue.NewMSLB() }},
		{"optik0", func() ds.Queue { return queue.NewOptik0() }},
		{"optik1", func() ds.Queue { return queue.NewOptik1() }},
		{"optik2", func() ds.Queue { return queue.NewOptik2() }},
		{"optik3", func() ds.Queue { return queue.NewOptikVictim(0) }},
	}
}

// MapAlgos returns the Figure-7 series.
func MapAlgos(capacity int) []NamedSet {
	return []NamedSet{
		{"mcs", func() ds.Set { return arraymap.NewMCS(capacity) }},
		{"optik", func() ds.Set { return arraymap.NewOptik(capacity) }},
	}
}

// StackAlgos returns the §5.5 series.
func StackAlgos() []struct {
	Name string
	New  func() ds.Stack
} {
	return []struct {
		Name string
		New  func() ds.Stack
	}{
		{"treiber", func() ds.Stack { return stack.NewTreiber() }},
		{"optik", func() ds.Stack { return stack.NewOptik() }},
	}
}

// runSetSeries sweeps threads × algorithms for one workload and prints a
// Mops/s table row per thread count.
func runSetSeries(o RunOpts, title string, wl SetWorkload, algos []NamedSet) {
	fmt.Fprintf(o.Out, "# %s — %s (%d elements, %d%% updates%s)\n",
		title, wl.Label, wl.InitialSize, wl.UpdatePct, zipfTag(wl.Zipf))
	fmt.Fprintf(o.Out, "%-8s", "threads")
	for _, a := range algos {
		fmt.Fprintf(o.Out, "%12s", a.Name)
	}
	fmt.Fprintln(o.Out)
	for _, th := range o.Threads {
		fmt.Fprintf(o.Out, "%-8d", th)
		for _, a := range algos {
			cfg := workload.Config{
				Threads:     th,
				Duration:    o.Duration,
				InitialSize: wl.InitialSize,
				UpdatePct:   wl.UpdatePct,
				Zipf:        wl.Zipf,
			}
			res := workload.MedianOf(o.Reps, func() workload.Result {
				return workload.RunSet(cfg, a.New)
			})
			fmt.Fprintf(o.Out, "%12.3f", res.Mops)
			o.Record.add(Row{Figure: title, Workload: wl.Label, Impl: a.Name, Threads: th, Mops: res.Mops})
		}
		fmt.Fprintln(o.Out)
	}
	fmt.Fprintln(o.Out)
}

func zipfTag(z bool) string {
	if z {
		return ", zipf a=0.9"
	}
	return ""
}

// Fig5 regenerates Figure 5: validated single-lock throughput and CAS per
// validation for ttas / optik-ticket / optik-versioned.
func Fig5(o RunOpts) {
	o = o.Normalize()
	fmt.Fprintln(o.Out, "# Figure 5 — locking and validation with and without OPTIK locks")
	fmt.Fprintf(o.Out, "%-8s", "threads")
	for _, impl := range workload.LockImpls {
		fmt.Fprintf(o.Out, "%24s", string(impl)+" Mops")
	}
	for _, impl := range workload.LockImpls {
		fmt.Fprintf(o.Out, "%24s", string(impl)+" CAS/val")
	}
	fmt.Fprintln(o.Out)
	for _, th := range o.Threads {
		fmt.Fprintf(o.Out, "%-8d", th)
		results := make([]workload.LockResult, len(workload.LockImpls))
		for i, impl := range workload.LockImpls {
			results[i] = workload.RunLock(workload.LockConfig{Threads: th, Duration: o.Duration}, impl)
			o.Record.add(Row{
				Figure: "Figure 5", Workload: "locks", Impl: string(impl), Threads: th,
				Mops: results[i].Mops, CASPerValidation: results[i].CASPerValidation,
			})
		}
		for _, r := range results {
			fmt.Fprintf(o.Out, "%24.3f", r.Mops)
		}
		for _, r := range results {
			fmt.Fprintf(o.Out, "%24.2f", r.CASPerValidation)
		}
		fmt.Fprintln(o.Out)
	}
	fmt.Fprintln(o.Out)
}

// Fig7 regenerates Figure 7: lock-based vs OPTIK-based array map on the
// small (4 elements) and large (1024 elements) workloads, plus the
// latency-distribution boxplots at 10 threads.
func Fig7(o RunOpts) {
	o = o.Normalize()
	for _, wl := range []SetWorkload{
		{Label: "Small map", InitialSize: 4, UpdatePct: 10},
		{Label: "Large map", InitialSize: 1024, UpdatePct: 10},
	} {
		algos := MapAlgos(mapCapacityFor(wl.InitialSize))
		runSetSeries(o, "Figure 7", wl, algos)
	}
	// Latency boxplots at 10 threads on the small map.
	fmt.Fprintln(o.Out, "# Figure 7 (right) — latency distribution, small map, 10 threads (ns)")
	for _, a := range MapAlgos(mapCapacityFor(4)) {
		cfg := workload.Config{
			Threads: 10, Duration: o.Duration, InitialSize: 4, UpdatePct: 10,
			SampleLatency: true,
		}
		res := workload.RunSet(cfg, a.New)
		for k := workload.SearchSuc; k <= workload.DeleteFal; k++ {
			fmt.Fprintf(o.Out, "%-8s %-9s %s\n", a.Name, k, res.Latency[k])
		}
	}
	fmt.Fprintln(o.Out)
}

// mapCapacityFor sizes the array map exactly to the initial element count,
// as in the paper: the map starts full, so insertions only succeed after a
// deletion frees a slot (on the 4-element map "only 25% of the updates are
// successful").
func mapCapacityFor(initial int) int { return initial }

// Fig9 regenerates Figure 9: linked lists over five workloads.
func Fig9(o RunOpts) {
	o = o.Normalize()
	for _, wl := range []SetWorkload{
		{Label: "Large", InitialSize: 8192, UpdatePct: 20},
		{Label: "Medium", InitialSize: 1024, UpdatePct: 20},
		{Label: "Small", InitialSize: 64, UpdatePct: 20},
		{Label: "Large skewed", InitialSize: 8192, UpdatePct: 20, Zipf: true},
		{Label: "Small skewed", InitialSize: 64, UpdatePct: 20, Zipf: true},
	} {
		runSetSeries(o, "Figure 9", wl, Fig9ListAlgos())
	}
}

// Fig10 regenerates Figure 10: hash tables on the medium and small-skewed
// workloads (buckets = initial size).
func Fig10(o RunOpts) {
	o = o.Normalize()
	for _, wl := range []SetWorkload{
		{Label: "Medium", InitialSize: 8192, UpdatePct: 20, Buckets: 8192},
		{Label: "Small skewed", InitialSize: 512, UpdatePct: 20, Zipf: true, Buckets: 512},
	} {
		runSetSeries(o, "Figure 10", wl, HashAlgos(wl.Buckets))
	}
}

// Fig11 regenerates Figure 11: skip lists on the large-skewed and
// small-skewed workloads.
func Fig11(o RunOpts) {
	o = o.Normalize()
	for _, wl := range []SetWorkload{
		{Label: "Large skewed", InitialSize: 65536, UpdatePct: 20, Zipf: true},
		{Label: "Small skewed", InitialSize: 1024, UpdatePct: 20, Zipf: true},
	} {
		runSetSeries(o, "Figure 11", wl, SkiplistAlgos())
	}
}

// Fig12 regenerates Figure 12: queues over the three mixes, plus the
// enqueue/dequeue latency boxplots at 10 threads on the stable mix.
func Fig12(o RunOpts) {
	o = o.Normalize()
	mixes := []struct {
		Label      string
		EnqueuePct int
	}{
		{"Decreasing size (40% enq)", 40},
		{"Stable size (50% enq)", 50},
		{"Increasing size (60% enq)", 60},
	}
	for _, mix := range mixes {
		fmt.Fprintf(o.Out, "# Figure 12 — queues, %s, init 65536\n", mix.Label)
		fmt.Fprintf(o.Out, "%-8s", "threads")
		for _, a := range QueueAlgos() {
			fmt.Fprintf(o.Out, "%12s", a.Name)
		}
		fmt.Fprintln(o.Out)
		for _, th := range o.Threads {
			fmt.Fprintf(o.Out, "%-8d", th)
			for _, a := range QueueAlgos() {
				cfg := workload.QueueConfig{
					Threads: th, Duration: o.Duration,
					InitialSize: 65536, EnqueuePct: mix.EnqueuePct,
				}
				res := workload.MedianOfQueue(o.Reps, func() workload.QueueResult {
					return workload.RunQueue(cfg, a.New)
				})
				fmt.Fprintf(o.Out, "%12.3f", res.Mops)
				o.Record.add(Row{Figure: "Figure 12", Workload: mix.Label, Impl: a.Name, Threads: th, Mops: res.Mops})
			}
			fmt.Fprintln(o.Out)
		}
		fmt.Fprintln(o.Out)
	}
	fmt.Fprintln(o.Out, "# Figure 12 (right) — enq/deq latency, stable mix, 10 threads (ns)")
	for _, a := range QueueAlgos() {
		cfg := workload.QueueConfig{
			Threads: 10, Duration: o.Duration,
			InitialSize: 65536, EnqueuePct: 50, SampleLatency: true,
		}
		res := workload.RunQueue(cfg, a.New)
		fmt.Fprintf(o.Out, "%-8s enqueue  %s\n", a.Name, res.EnqLatency)
		fmt.Fprintf(o.Out, "%-8s dequeue  %s\n", a.Name, res.DeqLatency)
	}
	fmt.Fprintln(o.Out)
}

// FigResize runs the resize-under-load scenario (beyond the paper, which
// only sizes tables statically): structures start with 1k elements and 1k
// buckets, then absorb an insert-heavy ramp to 1M elements with 10%
// searches mixed in. Fixed-bucket tables degrade to thousand-node chains;
// the resizable slab migrates buckets concurrently with the traffic.
func FigResize(o RunOpts) { figResize(o, 1000, 1_000_000) }

// figResize is FigResize with the scale exposed for fast smoke tests.
func figResize(o RunOpts, start, target int) {
	o = o.Normalize()
	algos := resizeAlgos(start, o.Janitor)
	wlLabel := fmt.Sprintf("ramp %d to %d", start, target)
	fmt.Fprintf(o.Out, "# Resize — insert-heavy %s, 10%% searches (Mops/s over the whole ramp)%s\n",
		wlLabel, janitorTag(o.Janitor))
	fmt.Fprintf(o.Out, "%-8s", "threads")
	for _, a := range algos {
		fmt.Fprintf(o.Out, "%16s", a.Name)
	}
	fmt.Fprintln(o.Out)
	for _, th := range o.Threads {
		fmt.Fprintf(o.Out, "%-8d", th)
		for _, a := range algos {
			res := workload.RunRamp(workload.RampConfig{
				Threads: th, StartSize: start, TargetSize: target, SearchPct: 10,
			}, a.New)
			fmt.Fprintf(o.Out, "%16.3f", res.Mops)
			o.Record.add(Row{Figure: "Resize", Workload: wlLabel, Impl: a.Name, Threads: th, Mops: res.Mops})
		}
		fmt.Fprintln(o.Out)
	}
	fmt.Fprintln(o.Out)
	// A separate sampled pass at the highest thread count keeps the
	// throughput table above comparable across commits while making
	// migration stalls visible: the resizable table's p50 should match
	// the fixed slab's, with the migration cost confined to the tail.
	th := o.Threads[len(o.Threads)-1]
	fmt.Fprintf(o.Out, "# Resize latency — per-op ns, %s, %d threads\n", wlLabel, th)
	for _, a := range algos {
		res := workload.RunRamp(workload.RampConfig{
			Threads: th, StartSize: start, TargetSize: target, SearchPct: 10,
			SampleLatency: true,
		}, a.New)
		fmt.Fprintf(o.Out, "%-16s %s\n", a.Name, res.Latency)
		o.Record.add(Row{
			Figure: "Resize latency", Workload: wlLabel, Impl: a.Name, Threads: th,
			Mops: res.Mops, P50Ns: res.Latency.P50, P99Ns: res.Latency.P99, MaxNs: res.Latency.Max,
		})
	}
	fmt.Fprintln(o.Out)
}

// FigChurn runs the delete-heavy churn scenario the resize figure cannot
// see: each cycle grows the table to a peak and drains it to a trough
// (peak/16), with 30% searches mixed in throughout. Fixed tables merely
// survive it; the resizable table must grow and then hand its buckets
// back, with the migration cost visible in the per-op latency tail
// (p50/p99/max) rather than hidden in the throughput average.
func FigChurn(o RunOpts) {
	peak := o.ChurnPeak
	if peak <= 0 {
		peak = 100_000
	}
	figChurn(o, peak)
}

// figChurn is FigChurn with the scale exposed for fast smoke tests.
func figChurn(o RunOpts, peak int) {
	o = o.Normalize()
	start := peak / 8
	if start < 1 {
		start = 1
	}
	trough := peak / 16
	algos := resizeAlgos(start, o.Janitor)
	// The steady-op count is part of the label on purpose: rows measured
	// under the 3-phase cycle must not join against pre-steady-phase
	// baselines in bench-diff — the workload definition changed, not the
	// implementations.
	wlLabel := fmt.Sprintf("churn %d/%d steady %d", peak, trough, peak)
	fmt.Fprintf(o.Out, "# Churn — grow to %d, steady read-only ×%d ops, drain to %d, ×2 cycles, 30%% searches (Mops/s; per-op ns tail)%s\n",
		peak, peak, trough, janitorTag(o.Janitor))
	fmt.Fprintf(o.Out, "%-8s", "threads")
	for _, a := range algos {
		fmt.Fprintf(o.Out, "%16s", a.Name)
	}
	fmt.Fprintln(o.Out)
	last := map[string]workload.ChurnResult{}
	for _, th := range o.Threads {
		fmt.Fprintf(o.Out, "%-8d", th)
		for _, a := range algos {
			res := workload.RunChurn(workload.ChurnConfig{
				Threads: th, PeakSize: peak, TroughSize: trough, Cycles: 2,
				SearchPct: 30, SteadyOps: peak, SampleLatency: true,
			}, a.New)
			fmt.Fprintf(o.Out, "%16.3f", res.Mops)
			o.Record.add(Row{
				Figure: "Churn", Workload: wlLabel, Impl: a.Name, Threads: th, Mops: res.Mops,
				P50Ns: res.Latency.P50, P99Ns: res.Latency.P99, MaxNs: res.Latency.Max,
				FinalBuckets: res.FinalBuckets,
				NodesRetired: res.NodesRetired, NodesReused: res.NodesReused,
			})
			last[a.Name] = res
		}
		fmt.Fprintln(o.Out)
	}
	fmt.Fprintln(o.Out)
	th := o.Threads[len(o.Threads)-1]
	fmt.Fprintf(o.Out, "# Churn latency — per-op ns by phase, %d threads\n", th)
	for _, a := range algos {
		res := last[a.Name]
		fmt.Fprintf(o.Out, "%-16s %-8s %s\n", a.Name, "all", res.Latency)
		fmt.Fprintf(o.Out, "%-16s %-8s %s\n", a.Name, "grow", res.GrowLatency)
		fmt.Fprintf(o.Out, "%-16s %-8s %s\n", a.Name, "drain", res.DrainLatency)
		fmt.Fprintf(o.Out, "%-16s %-8s %s\n", a.Name, "search", res.SearchLatency)
		fmt.Fprintf(o.Out, "%-16s %-8s %s\n", a.Name, "steady", res.SteadyLatency)
		if res.FinalBuckets > 0 {
			fmt.Fprintf(o.Out, "%-16s final buckets %d after %d resizes, quiesce %s\n",
				a.Name, res.FinalBuckets, res.Resizes, res.Quiesces)
		}
		if res.NodesRetired > 0 {
			fmt.Fprintf(o.Out, "%-16s nodes retired %d reclaimed %d reused %d\n",
				a.Name, res.NodesRetired, res.NodesReclaimed, res.NodesReused)
		}
	}
	fmt.Fprintln(o.Out)
}

// janitorTag annotates figure headers when the resizable series runs with
// its background janitor.
func janitorTag(j bool) string {
	if j {
		return " [janitor on]"
	}
	return ""
}

// FigServer runs the sharded-store scenario (beyond the paper: its tables
// are the building block, the store is the system the ROADMAP builds
// toward): a zipfian GET/SET/DEL request stream with a batched fraction,
// swept across thread counts × shard counts. One row per shard count puts
// the scaling axis in the table itself — the 1-shard row is the unsharded
// table behind the same API, so any separation between rows is what
// sharding buys on this machine. A second pass at the top thread count
// samples per-op latency split by request kind, where the batch
// amortization and the per-shard migration containment actually show.
func FigServer(o RunOpts) {
	o = o.Normalize()
	shards := normalizeShards(o.Shards)
	batchPct := o.BatchPct
	if batchPct <= 0 {
		batchPct = 20
	}
	const initial = 65536
	cfg := workload.ServerConfig{
		Duration:    o.Duration,
		InitialSize: initial,
		SetPct:      8,
		DelPct:      2,
		BatchPct:    batchPct,
		BatchSize:   16,
	}
	wlLabel := fmt.Sprintf("zipf get90/set8/del2 batch%d%%x16 init %d", batchPct, initial)
	fmt.Fprintf(o.Out, "# Server — store.Store, %s (Mops/s)\n", wlLabel)
	fmt.Fprintf(o.Out, "%-8s", "threads")
	for _, sh := range shards {
		fmt.Fprintf(o.Out, "%16s", implName(sh))
	}
	fmt.Fprintln(o.Out)
	for _, th := range o.Threads {
		fmt.Fprintf(o.Out, "%-8d", th)
		for _, sh := range shards {
			c := cfg
			c.Threads = th
			res := workload.RunServer(c, storeFactory(sh, initial))
			fmt.Fprintf(o.Out, "%16.3f", res.Mops)
			o.Record.add(Row{
				Figure: "Server", Workload: wlLabel, Impl: implName(sh), Threads: th,
				Mops: res.Mops, FinalBuckets: res.FinalBuckets,
				NodesRetired: res.NodesRetired, NodesReused: res.NodesReused,
				MaxProcs: res.MaxProcs,
			})
		}
		fmt.Fprintln(o.Out)
	}
	fmt.Fprintln(o.Out)
	th := o.Threads[len(o.Threads)-1]
	fmt.Fprintf(o.Out, "# Server latency — per-op ns by request kind, %d threads\n", th)
	for _, sh := range shards {
		c := cfg
		c.Threads = th
		c.SampleLatency = true
		res := workload.RunServer(c, storeFactory(sh, initial))
		fmt.Fprintf(o.Out, "%-16s %-8s %s\n", implName(sh), "all", res.Latency)
		fmt.Fprintf(o.Out, "%-16s %-8s %s\n", implName(sh), "get", res.GetLatency)
		fmt.Fprintf(o.Out, "%-16s %-8s %s\n", implName(sh), "set", res.SetLatency)
		fmt.Fprintf(o.Out, "%-16s %-8s %s\n", implName(sh), "del", res.DelLatency)
		fmt.Fprintf(o.Out, "%-16s %-8s %s\n", implName(sh), "batch", res.BatchLatency)
		fmt.Fprintf(o.Out, "%-16s hit rate %.1f%%, %d buckets across %d shards, %d resizes, %d/%d nodes retired/reused\n",
			implName(sh), 100*res.HitRate, res.FinalBuckets, sh, res.Resizes, res.NodesRetired, res.NodesReused)
		o.Record.add(Row{
			Figure: "Server latency", Workload: wlLabel, Impl: implName(sh), Threads: th,
			Mops: res.Mops, P50Ns: res.Latency.P50, P99Ns: res.Latency.P99, MaxNs: res.Latency.Max,
			MaxProcs: res.MaxProcs,
		})
	}
	fmt.Fprintln(o.Out)
}

// implName labels a shard-count series.
func implName(shards int) string { return fmt.Sprintf("store-%dsh", shards) }

// normalizeShards applies store.New's shard rounding (next power of two,
// capped at 256) up front and dedupes, so the printed series names, the
// per-shard floor provisioning and the JSON join keys all describe the
// configuration that actually runs — `-shards 3` measures and labels a
// 4-shard store, not a phantom 3-shard one.
func normalizeShards(in []int) []int {
	if len(in) == 0 {
		return []int{1, 4, 16}
	}
	out := make([]int, 0, len(in))
	seen := map[int]bool{}
	for _, n := range in {
		p := 1
		for p < n && p < 256 {
			p <<= 1
		}
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// storeFactory builds the server figure's store: the initial size split
// across the shards as each one's floor, so the per-shard provisioning is
// fair at every shard count.
func storeFactory(shards, initial int) func() workload.Target {
	perShard := initial / shards
	if perShard < 64 {
		perShard = 64
	}
	return func() workload.Target {
		return store.New(store.WithShards(shards), store.WithShardBuckets(perShard))
	}
}

// FigNet runs the server workload over the wire: the same zipfian
// GET/SET/DEL mix as FigServer, but reaching the store through
// optik-server's TCP protocol instead of a function call, swept across
// thread counts × pipeline depths. Depth 1 is the request/response
// baseline (every key pays a full round trip); deeper rows pipeline d
// commands per flush, which is where a networked optimistic store earns
// its throughput back — the FigServer rows are the zero-wire upper bound
// the net rows are read against.
func FigNet(o RunOpts) {
	o = o.Normalize()
	depths := o.Pipelines
	if len(depths) == 0 {
		depths = []int{1, 16, 64, 256}
	}
	const initial = 65536
	wlLabel := fmt.Sprintf("zipf get90/set8/del2 wire init %d", initial)
	where := "private loopback server per cell"
	if o.NetAddr != "" {
		where = "external server at " + o.NetAddr
	}
	cols := netColumns(o, depths)
	fmt.Fprintf(o.Out, "# Net — optik-server over TCP, %s (%s; Mops/s)\n", wlLabel, where)
	fmt.Fprintf(o.Out, "%-8s", "threads")
	for _, c := range cols {
		fmt.Fprintf(o.Out, "%16s", netImplName(c.depth, c.variant))
	}
	fmt.Fprintln(o.Out)
	for _, th := range o.Threads {
		fmt.Fprintf(o.Out, "%-8d", th)
		for _, c := range cols {
			res := runNetCell(o, netServerCfg(o, th, c.depth, initial, false), c.variant)
			fmt.Fprintf(o.Out, "%16.3f", res.Mops)
			o.Record.add(Row{
				Figure: "Net", Workload: wlLabel, Impl: netImplName(c.depth, c.variant), Threads: th,
				Mops: res.Mops, FinalBuckets: res.FinalBuckets, MaxProcs: res.MaxProcs,
			})
		}
		fmt.Fprintln(o.Out)
	}
	fmt.Fprintln(o.Out)
	th := o.Threads[len(o.Threads)-1]
	fmt.Fprintf(o.Out, "# Net latency — per-key ns by pipeline depth, %d threads\n", th)
	for _, c := range cols {
		res := runNetCell(o, netServerCfg(o, th, c.depth, initial, true), c.variant)
		lat := res.BatchLatency
		if c.depth == 1 {
			lat = res.Latency
		}
		fmt.Fprintf(o.Out, "%-16s %s (hit rate %.1f%%)\n", netImplName(c.depth, c.variant), lat, 100*res.HitRate)
		o.Record.add(Row{
			Figure: "Net latency", Workload: wlLabel, Impl: netImplName(c.depth, c.variant), Threads: th,
			Mops: res.Mops, P50Ns: lat.P50, P99Ns: lat.P99, MaxNs: lat.Max, MaxProcs: res.MaxProcs,
		})
	}
	fmt.Fprintln(o.Out)
}

// netVariant selects which server path a net cell exercises.
type netVariant uint8

const (
	netCoalesced  netVariant = iota // scalar pipeline, server coalescing on (default)
	netNoCoalesce                   // scalar pipeline, WithCoalesce(0) baseline
	netMultibulk                    // true MGET/MSET/MDEL frames, coalescing on
)

// netColumn is one (depth, variant) series of the net figure.
type netColumn struct {
	depth   int
	variant netVariant
}

// netColumns expands the depth sweep into the variant columns: every
// depth runs the default coalesced cell; pipelined depths additionally
// run the coalesce-off baseline (skipped against an external server —
// its -coalesce knob cannot be flipped from here) and the multibulk
// client. Depth 1 has nothing to coalesce or batch, so it stays a single
// request/response column.
func netColumns(o RunOpts, depths []int) []netColumn {
	var cols []netColumn
	for _, d := range depths {
		cols = append(cols, netColumn{d, netCoalesced})
		if d > 1 {
			if o.NetAddr == "" {
				cols = append(cols, netColumn{d, netNoCoalesce})
			}
			cols = append(cols, netColumn{d, netMultibulk})
		}
	}
	return cols
}

// netImplName labels a pipeline-depth series; the variant suffix is part
// of the JSON join key, so coalesced and baseline rows never compare
// against each other silently.
func netImplName(depth int, v netVariant) string {
	switch v {
	case netNoCoalesce:
		return fmt.Sprintf("net-p%d-nc", depth)
	case netMultibulk:
		return fmt.Sprintf("net-p%d-mb", depth)
	default:
		return fmt.Sprintf("net-p%d", depth)
	}
}

// netServerCfg is the FigNet cell configuration: depth 1 runs the scalar
// request/response path, deeper cells run every request as a depth-sized
// pipeline.
func netServerCfg(o RunOpts, threads, depth, initial int, latency bool) workload.ServerConfig {
	cfg := workload.ServerConfig{
		Threads:       threads,
		Duration:      o.Duration,
		InitialSize:   initial,
		SetPct:        8,
		DelPct:        2,
		BatchPct:      100,
		BatchSize:     depth,
		SampleLatency: latency,
	}
	if depth <= 1 {
		cfg.BatchPct = 0
	}
	return cfg
}

// runNetCell runs one net figure cell, bringing up (and tearing down) a
// private loopback server unless RunOpts names an external one. The
// variant picks the server's coalescing mode and the client's framing.
func runNetCell(o RunOpts, cfg workload.ServerConfig, v netVariant) workload.ServerResult {
	addr := o.NetAddr
	if addr == "" {
		st := store.NewStrings(store.WithShardBuckets(1024))
		var sopts []server.Option
		if v == netNoCoalesce {
			sopts = append(sopts, server.WithCoalesce(0))
		}
		srv := server.New(st, sopts...)
		bound, err := srv.Start("127.0.0.1:0")
		if err != nil {
			panic("figures: loopback server: " + err.Error())
		}
		defer func() {
			srv.Close()
			st.Close()
		}()
		addr = bound.String()
	}
	newTarget := workload.NewNetTarget
	if v == netMultibulk {
		newTarget = workload.NewNetTargetMultibulk
	}
	return workload.RunServer(cfg, func() workload.Target {
		return newTarget(addr)
	})
}

// FigOrdered runs the ordered-index scenario (beyond the paper: its
// skip list is the building block, the range-partitioned store is the
// system): a zipfian GET/SET/DEL stream with a 10% fraction of range
// scans, swept across thread counts × shard counts, plus one
// over-the-wire series driving the same mix through optik-server's
// ordered protocol (scans as RANGE commands). The 1-shard row is the
// single skip list behind the store API; separation between rows is
// what range partitioning buys when scans and point ops contend. The
// reclamation columns are the acceptance signal: towers retire and get
// reused with zero caller-side quiescing — the scheduler's idle sweeps
// alone drain them.
func FigOrdered(o RunOpts) {
	o = o.Normalize()
	shards := normalizeShards(o.Shards)
	const initial = 65536
	cfg := workload.OrderedConfig{
		Duration:    o.Duration,
		InitialSize: initial,
		SetPct:      8,
		DelPct:      2,
		ScanPct:     10,
		ScanWidth:   64,
	}
	wlLabel := fmt.Sprintf("zipf get80/set8/del2/scan10x64 init %d", initial)
	fmt.Fprintf(o.Out, "# Ordered — store.Ordered, %s (Mops/s)\n", wlLabel)
	fmt.Fprintf(o.Out, "%-8s", "threads")
	for _, sh := range shards {
		fmt.Fprintf(o.Out, "%16s", orderedImplName(sh))
	}
	fmt.Fprintf(o.Out, "%16s\n", "ordered-net")
	for _, th := range o.Threads {
		fmt.Fprintf(o.Out, "%-8d", th)
		for _, sh := range shards {
			c := cfg
			c.Threads = th
			res := workload.RunOrdered(c, orderedFactory(sh, initial))
			fmt.Fprintf(o.Out, "%16.3f", res.Mops)
			o.Record.add(Row{
				Figure: "Ordered", Workload: wlLabel, Impl: orderedImplName(sh), Threads: th,
				Mops: res.Mops, NodesRetired: res.TowersRetired, NodesReused: res.TowersReused,
				MaxProcs: res.MaxProcs,
			})
		}
		c := cfg
		c.Threads = th
		res := runOrderedNetCell(o, c)
		fmt.Fprintf(o.Out, "%16.3f\n", res.Mops)
		o.Record.add(Row{
			Figure: "Ordered", Workload: wlLabel, Impl: "ordered-net", Threads: th,
			Mops: res.Mops, MaxProcs: res.MaxProcs,
		})
	}
	fmt.Fprintln(o.Out)
	th := o.Threads[len(o.Threads)-1]
	fmt.Fprintf(o.Out, "# Ordered latency — per-op ns by request kind, %d threads\n", th)
	for _, sh := range shards {
		c := cfg
		c.Threads = th
		c.SampleLatency = true
		res := workload.RunOrdered(c, orderedFactory(sh, initial))
		fmt.Fprintf(o.Out, "%-16s %-8s %s\n", orderedImplName(sh), "all", res.Latency)
		fmt.Fprintf(o.Out, "%-16s %-8s %s\n", orderedImplName(sh), "get", res.GetLatency)
		fmt.Fprintf(o.Out, "%-16s %-8s %s\n", orderedImplName(sh), "set", res.SetLatency)
		fmt.Fprintf(o.Out, "%-16s %-8s %s\n", orderedImplName(sh), "scan", res.ScanLatency)
		fmt.Fprintf(o.Out, "%-16s hit rate %.1f%%, %.1f entries/scan, towers retired %d reclaimed %d reused %d (no caller quiesce)\n",
			orderedImplName(sh), 100*res.HitRate, scanDensity(res), res.TowersRetired, res.TowersReclaimed, res.TowersReused)
		o.Record.add(Row{
			Figure: "Ordered latency", Workload: wlLabel, Impl: orderedImplName(sh), Threads: th,
			Mops: res.Mops, P50Ns: res.Latency.P50, P99Ns: res.Latency.P99, MaxNs: res.Latency.Max,
			MaxProcs: res.MaxProcs,
		})
	}
	fmt.Fprintln(o.Out)
}

// orderedImplName labels a shard-count series of the ordered figure.
func orderedImplName(shards int) string { return fmt.Sprintf("ordered-%dsh", shards) }

// scanDensity is the average page fill of a run's scans.
func scanDensity(res workload.OrderedResult) float64 {
	if res.Scans == 0 {
		return 0
	}
	return float64(res.Scanned) / float64(res.Scans)
}

// orderedFactory builds the ordered figure's in-process store: the key
// ceiling matches the workload's 2×initial key range, so the range
// partition splits the populated space, not a mostly-empty one.
func orderedFactory(shards, initial int) func() workload.OrderedTarget {
	return func() workload.OrderedTarget {
		return store.NewOrdered(store.WithShards(shards), store.WithKeyMax(uint64(2*initial)))
	}
}

// runOrderedNetCell runs one over-the-wire ordered cell, bringing up a
// private loopback ordered server unless RunOpts names an external one
// (which must itself be ordered: optik-server -ordered).
func runOrderedNetCell(o RunOpts, cfg workload.OrderedConfig) workload.OrderedResult {
	addr := o.NetAddr
	if addr == "" {
		st := store.NewSortedStrings(store.WithKeyMax(uint64(2 * cfg.InitialSize)))
		srv := server.NewOrdered(st)
		bound, err := srv.Start("127.0.0.1:0")
		if err != nil {
			panic("figures: ordered loopback server: " + err.Error())
		}
		defer func() {
			srv.Close()
			st.Close()
		}()
		addr = bound.String()
	}
	return workload.RunOrdered(cfg, func() workload.OrderedTarget {
		return workload.NewOrderedNetTarget(addr)
	})
}

// FigConns runs the connection-scaling scenario (beyond the paper: OPTIK's
// pay-only-on-contention principle applied to connections): a population of
// N connections with an active fraction issuing pipelined bursts, swept
// across N × active% × conn mode. The all-active column is the throughput
// parity check (the poller must not tax busy connections); the mostly-idle
// column is the C10K story — buffers_resident is the memory the idle
// population pins, and the poller's idle-grace release should hold it near
// the active fraction's working set while goroutine mode pays for every
// conn that ever spoke. Populations above ~1k need a raised ulimit -n.
func FigConns(o RunOpts) {
	o = o.Normalize()
	conns := o.Conns
	if len(conns) == 0 {
		conns = []int{64, 1024, 4096}
	}
	pcts := o.ActivePcts
	if len(pcts) == 0 {
		pcts = []int{100, 5}
	}
	modes := []server.ConnMode{server.ConnModeGoroutine}
	if server.PollerSupported() {
		modes = append(modes, server.ConnModePoller)
	}
	// The idle grace must fit inside the measured window for the idle
	// release to be observable at the sample point.
	grace := o.Duration / 4
	if grace < 10*time.Millisecond {
		grace = 10 * time.Millisecond
	}
	if grace > 250*time.Millisecond {
		grace = 250 * time.Millisecond
	}
	fmt.Fprintf(o.Out, "# Conns — connection scaling, pipelined MGET/MSET bursts, idle grace %s (Mops/s; resident KiB)\n", grace)
	fmt.Fprintf(o.Out, "%-10s %-8s", "conns", "active")
	for _, m := range modes {
		fmt.Fprintf(o.Out, "%16s %14s", connsImplName(m), "resident KiB")
	}
	fmt.Fprintln(o.Out)
	for _, n := range conns {
		for _, pct := range pcts {
			fmt.Fprintf(o.Out, "%-10d %-8s", n, fmt.Sprintf("%d%%", pct))
			for _, m := range modes {
				res := runConnsCell(o, m, grace, n, pct)
				fmt.Fprintf(o.Out, "%16.3f %14d", res.Mops, res.BuffersResident/1024)
				o.Record.add(Row{
					Figure:   "Conns",
					Workload: fmt.Sprintf("conns %d active %d%%", n, pct),
					Impl:     connsImplName(m),
					Threads:  res.Active,
					Mops:     res.Mops,
					P50Ns:    res.Latency.P50, P99Ns: res.Latency.P99, MaxNs: res.Latency.Max,
					MaxProcs: res.MaxProcs,
					ConnMode: m.String(), BuffersResident: res.BuffersResident, ConnsShed: res.Shed,
				})
			}
			fmt.Fprintln(o.Out)
		}
	}
	fmt.Fprintln(o.Out)
}

// connsImplName labels a conn-mode series; the mode is part of the JSON
// join key so bench-diff never compares the poller against goroutine rows.
func connsImplName(m server.ConnMode) string { return "conns-" + m.String() }

// runConnsCell runs one conns figure cell against a private loopback
// server configured for the mode under test.
func runConnsCell(o RunOpts, mode server.ConnMode, grace time.Duration, conns, activePct int) workload.ConnsResult {
	st := store.NewStrings(store.WithShardBuckets(1024))
	srv := server.New(st, server.WithConnMode(mode), server.WithIdleGrace(grace))
	bound, err := srv.Start("127.0.0.1:0")
	if err != nil {
		panic("figures: conns loopback server: " + err.Error())
	}
	defer func() {
		srv.Close()
		st.Close()
	}()
	return workload.RunConns(workload.ConnsConfig{
		Addr:          bound.String(),
		Conns:         conns,
		ActivePct:     activePct,
		Duration:      o.Duration,
		SampleLatency: true,
	})
}

// Stacks regenerates the §5.5 stack comparison (not a numbered figure in
// the paper; reported as "behave similarly").
func Stacks(o RunOpts) {
	o = o.Normalize()
	fmt.Fprintln(o.Out, "# §5.5 — stacks, 50/50 push/pop")
	fmt.Fprintf(o.Out, "%-8s", "threads")
	for _, a := range StackAlgos() {
		fmt.Fprintf(o.Out, "%12s", a.Name)
	}
	fmt.Fprintln(o.Out)
	for _, th := range o.Threads {
		fmt.Fprintf(o.Out, "%-8d", th)
		for _, a := range StackAlgos() {
			res := workload.RunStack(th, o.Duration, a.New)
			fmt.Fprintf(o.Out, "%12.3f", res)
			o.Record.add(Row{Figure: "Stacks", Workload: "50/50", Impl: a.Name, Threads: th, Mops: res})
		}
		fmt.Fprintln(o.Out)
	}
	fmt.Fprintln(o.Out)
}

// All regenerates every figure, plus the resize-under-load, churn and
// server scenarios.
// FigEvict measures the memory-governance loop: a hotspot cache stream
// (read-through refills, a slice of SETEX traffic) whose working set is
// four times the byte budget, run ungoverned and governed. The
// ungoverned row is the baseline the governed row's hit rate is read
// against; the governed row's peak bytes_used is the budget claim.
func FigEvict(o RunOpts) {
	o = o.Normalize()
	cfg := workload.EvictConfig{
		Duration: o.Duration,
		Keys:     16384,
		ValueLen: 200,
		SetPct:   10,
		TTLPct:   20,
		TTLSecs:  1,
	}
	budget := cfg.WorkingSetBytes() / 4
	wlLabel := fmt.Sprintf("hotspot 98/20 get90/set10 ttl20%% keys %d x %dB", cfg.Keys, cfg.ValueLen)
	fmt.Fprintf(o.Out, "# Evict — byte-budget governance, %s, budget %d KiB (working set / 4)\n",
		wlLabel, budget/1024)
	fmt.Fprintf(o.Out, "%-8s %16s %8s %16s %8s %14s %10s\n",
		"threads", "evict-nobudget", "hit", "evict-budget", "hit", "bytes max KiB", "evicted")
	for _, th := range o.Threads {
		c := cfg
		c.Threads = th
		base := workload.RunEvict(c)
		g := c
		g.Budget = budget
		res := workload.RunEvict(g)
		fmt.Fprintf(o.Out, "%-8d %16.3f %8.3f %16.3f %8.3f %14d %10d\n",
			th, base.Mops, base.HitRate, res.Mops, res.HitRate, res.BytesMax/1024, res.Evicted)
		o.Record.add(Row{
			Figure: "Evict", Workload: wlLabel, Impl: "evict-nobudget", Threads: th,
			Mops: base.Mops, HitRate: base.HitRate, BytesUsed: base.BytesMax,
			MaxProcs: base.MaxProcs,
		})
		o.Record.add(Row{
			Figure: "Evict", Workload: wlLabel, Impl: "evict-budget", Threads: th,
			Mops: res.Mops, HitRate: res.HitRate, BytesUsed: res.BytesMax,
			Evicted: res.Evicted, MaxProcs: res.MaxProcs,
		})
	}
	fmt.Fprintln(o.Out)
}

func All(o RunOpts) {
	Fig5(o)
	Fig7(o)
	Fig9(o)
	Fig10(o)
	Fig11(o)
	Fig12(o)
	Stacks(o)
	FigResize(o)
	FigChurn(o)
	FigServer(o)
	FigNet(o)
	FigOrdered(o)
	FigEvict(o)
}
