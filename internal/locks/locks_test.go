package locks

import (
	"sync"
	"sync/atomic"
	"testing"
)

// exerciseMutex hammers a critical section guarded by lock/unlock callbacks
// and checks mutual exclusion plus the final counter value.
func exerciseMutex(t *testing.T, name string, lock func(), unlock func()) {
	t.Helper()
	const (
		goroutines = 8
		iters      = 2000
	)
	var (
		counter int // plain int: the lock must protect it
		inside  atomic.Int32
		wg      sync.WaitGroup
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				lock()
				if inside.Add(1) != 1 {
					t.Errorf("%s: two threads inside the critical section", name)
				}
				counter++
				inside.Add(-1)
				unlock()
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("%s: counter = %d, want %d", name, counter, goroutines*iters)
	}
}

func TestTASMutualExclusion(t *testing.T) {
	var l TAS
	exerciseMutex(t, "TAS", l.Lock, l.Unlock)
}

func TestTTASMutualExclusion(t *testing.T) {
	var l TTAS
	exerciseMutex(t, "TTAS", l.Lock, l.Unlock)
}

func TestTicketMutualExclusion(t *testing.T) {
	var l Ticket
	exerciseMutex(t, "Ticket", l.Lock, l.Unlock)
}

func TestMCSMutualExclusion(t *testing.T) {
	// MCS threads a queue node through Lock/Unlock, so it cannot reuse
	// exerciseMutex; drive it directly.
	var l MCS
	const goroutines, iters = 8, 2000
	var counter int
	var inside atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				n := l.Lock()
				if inside.Add(1) != 1 {
					t.Error("MCS: two threads inside the critical section")
				}
				counter++
				inside.Add(-1)
				l.Unlock(n)
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("MCS: counter = %d, want %d", counter, goroutines*iters)
	}
}

func TestTryLocks(t *testing.T) {
	t.Run("TAS", func(t *testing.T) {
		var l TAS
		if !l.TryLock() {
			t.Fatal("TryLock on free lock failed")
		}
		if l.TryLock() {
			t.Fatal("TryLock on held lock succeeded")
		}
		l.Unlock()
		if !l.TryLock() {
			t.Fatal("TryLock after unlock failed")
		}
	})
	t.Run("TTAS", func(t *testing.T) {
		var l TTAS
		if !l.TryLock() || l.TryLock() {
			t.Fatal("TTAS TryLock semantics broken")
		}
		l.Unlock()
		if !l.TryLock() {
			t.Fatal("TTAS TryLock after unlock failed")
		}
	})
	t.Run("Ticket", func(t *testing.T) {
		var l Ticket
		if !l.TryLock() || l.TryLock() {
			t.Fatal("Ticket TryLock semantics broken")
		}
		l.Unlock()
		if !l.TryLock() {
			t.Fatal("Ticket TryLock after unlock failed")
		}
	})
	t.Run("MCS", func(t *testing.T) {
		var l MCS
		n := l.TryLock()
		if n == nil {
			t.Fatal("MCS TryLock on free lock failed")
		}
		if l.TryLock() != nil {
			t.Fatal("MCS TryLock on held lock succeeded")
		}
		l.Unlock(n)
		n = l.TryLock()
		if n == nil {
			t.Fatal("MCS TryLock after unlock failed")
		}
		l.Unlock(n)
	})
}

func TestTicketQueued(t *testing.T) {
	var l Ticket
	if l.Queued() != 0 {
		t.Fatal("fresh lock should have 0 queued")
	}
	l.Lock()
	if l.Queued() != 1 {
		t.Fatalf("held lock Queued = %d, want 1", l.Queued())
	}
	// Simulate two more waiters by taking tickets directly.
	l.word.Add(1 << ticketShift)
	l.word.Add(1 << ticketShift)
	if l.Queued() != 3 {
		t.Fatalf("Queued = %d, want 3", l.Queued())
	}
	// Drain: serve the two fake tickets and our own.
	l.word.Add(3)
	if l.Queued() != 0 {
		t.Fatalf("Queued after drain = %d, want 0", l.Queued())
	}
}

func TestTicketFairness(t *testing.T) {
	// Grant order must equal ticket-draw order: draw tickets in a known
	// serial order while the lock is held, release, and record service order.
	var l2 Ticket
	l2.Lock()
	served := make([]int, 0, 8)
	var wg2 sync.WaitGroup
	var gate sync.Mutex
	ready := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg2.Add(1)
		gate.Lock() // serialize goroutine start so ticket order is i
		go func(me int) {
			defer wg2.Done()
			w := l2.word.Add(1 << ticketShift)
			my := uint32(w>>ticketShift) - 1
			gate.Unlock()
			<-ready
			for uint32(l2.word.Load()) != my {
			}
			served = append(served, me) // safe: we hold the ticket lock
			l2.word.Add(1)              // unlock
		}(i)
		// Wait until the goroutine grabbed its ticket before starting next.
		gate.Lock()
		gate.Unlock()
	}
	close(ready)
	l2.Unlock()
	wg2.Wait()
	for i, v := range served {
		if v != i {
			t.Fatalf("ticket lock served out of order: %v", served)
		}
	}
}

func TestVersionedTTAS(t *testing.T) {
	var l VersionedTTAS
	v := l.GetVersion()
	if !l.LockAndValidate(v) {
		t.Fatal("validation on quiescent lock failed")
	}
	l.UnlockCommit()
	if l.GetVersion() != v+1 {
		t.Fatalf("version = %d, want %d", l.GetVersion(), v+1)
	}
	// Stale version must fail validation (and release the lock).
	if l.LockAndValidate(v) {
		t.Fatal("stale version validated")
	}
	if l.lock.Locked() {
		t.Fatal("failed validation must release the lock")
	}
	if l.CASCount() == 0 {
		t.Fatal("CAS counter did not advance")
	}
	l.ResetCASCount()
	if l.CASCount() != 0 {
		t.Fatal("ResetCASCount did not zero the counter")
	}
}

func TestVersionedTTASConcurrent(t *testing.T) {
	var l VersionedTTAS
	const goroutines, iters = 8, 500
	var commits atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				for {
					v := l.GetVersion()
					if l.LockAndValidate(v) {
						commits.Add(1)
						l.UnlockCommit()
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := commits.Load(); got != goroutines*iters {
		t.Fatalf("commits = %d, want %d", got, goroutines*iters)
	}
	if l.GetVersion() != goroutines*iters {
		t.Fatalf("version = %d, want %d", l.GetVersion(), goroutines*iters)
	}
}

func BenchmarkTASUncontended(b *testing.B) {
	var l TAS
	for i := 0; i < b.N; i++ {
		l.Lock()
		l.Unlock()
	}
}

func BenchmarkTTASUncontended(b *testing.B) {
	var l TTAS
	for i := 0; i < b.N; i++ {
		l.Lock()
		l.Unlock()
	}
}

func BenchmarkTicketUncontended(b *testing.B) {
	var l Ticket
	for i := 0; i < b.N; i++ {
		l.Lock()
		l.Unlock()
	}
}

func BenchmarkMCSUncontended(b *testing.B) {
	var l MCS
	for i := 0; i < b.N; i++ {
		n := l.Lock()
		l.Unlock(n)
	}
}

func BenchmarkTicketContended(b *testing.B) {
	var l Ticket
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.Lock()
			l.Unlock()
		}
	})
}

func BenchmarkMCSContended(b *testing.B) {
	var l MCS
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := l.Lock()
			l.Unlock(n)
		}
	})
}
