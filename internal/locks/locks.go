// Package locks provides the baseline spinlock algorithms the paper compares
// against and builds on: test-and-set (TAS), test-and-test-and-set (TTAS),
// ticket locks, and MCS queue locks. It also provides VersionedTTAS, the
// "lock then validate a separate version word" baseline of Figure 5.
//
// The paper uses test-and-set locks for the non-OPTIK data structures and MCS
// locks for highly contended ones (global-lock lists, queue head/tail locks).
package locks

import (
	"sync/atomic"

	"github.com/optik-go/optik/internal/backoff"
)

// Locker is the minimal spinlock interface shared by TAS, TTAS and Ticket
// locks. MCS has a different shape (it threads a queue node through
// Lock/Unlock) and does not implement it.
type Locker interface {
	Lock()
	Unlock()
	TryLock() bool
}

// TAS is a test-and-set spinlock: every acquisition attempt is an atomic
// exchange, so a contended TAS lock keeps its cache line in a ping-pong.
type TAS struct {
	state atomic.Uint32
}

// Lock spins with repeated atomic exchanges until the lock is acquired.
func (l *TAS) Lock() {
	for i := 0; l.state.Swap(1) != 0; i++ {
		backoff.Poll(i)
	}
}

// TryLock attempts a single exchange.
func (l *TAS) TryLock() bool { return l.state.Swap(1) == 0 }

// Unlock releases the lock.
func (l *TAS) Unlock() { l.state.Store(0) }

// Locked reports whether the lock is currently held (racy; for tests/stats).
func (l *TAS) Locked() bool { return l.state.Load() != 0 }

// TTAS is a test-and-test-and-set spinlock: it spins on a plain load and
// only attempts the atomic exchange when the lock looks free, which keeps the
// line in shared state while waiting.
type TTAS struct {
	state atomic.Uint32
}

// Lock spins reading until the lock looks free, then tries to grab it.
func (l *TTAS) Lock() {
	for i := 0; ; i++ {
		if l.state.Load() == 0 && l.state.Swap(1) == 0 {
			return
		}
		backoff.Poll(i)
	}
}

// TryLock attempts acquisition only if the lock looks free.
func (l *TTAS) TryLock() bool {
	return l.state.Load() == 0 && l.state.Swap(1) == 0
}

// Unlock releases the lock.
func (l *TTAS) Unlock() { l.state.Store(0) }

// Locked reports whether the lock is currently held (racy; for tests/stats).
func (l *TTAS) Locked() bool { return l.state.Load() != 0 }

// Ticket is a fair FIFO spinlock. The two 32-bit halves (next ticket, now
// serving) are packed into a single 64-bit word so the whole lock state can
// be read atomically, which is what the OPTIK ticket implementation in
// internal/core exploits.
type Ticket struct {
	word atomic.Uint64 // high 32: next ticket; low 32: now serving
}

const ticketShift = 32

// Lock takes a ticket with fetch-and-add and spins until served.
func (l *Ticket) Lock() {
	w := l.word.Add(1 << ticketShift)
	my := uint32(w >> ticketShift) // our ticket is (next-1) after the add
	my--
	for i := 0; uint32(l.word.Load()) != my; i++ {
		backoff.Poll(i)
	}
}

// TryLock acquires the lock only if no one holds it and no one is queued.
func (l *Ticket) TryLock() bool {
	w := l.word.Load()
	next, cur := uint32(w>>ticketShift), uint32(w)
	if next != cur {
		return false
	}
	want := (uint64(next+1) << ticketShift) | uint64(cur)
	return l.word.CompareAndSwap(w, want)
}

// Unlock advances the now-serving counter.
func (l *Ticket) Unlock() { l.word.Add(1) }

// Queued returns the number of threads holding or waiting for the lock
// (0 = free). This is the property the paper's victim queues build on.
func (l *Ticket) Queued() uint32 {
	w := l.word.Load()
	return uint32(w>>ticketShift) - uint32(w)
}
