package locks

import (
	"sync"
	"sync/atomic"

	"github.com/optik-go/optik/internal/backoff"
)

// MCS is a Mellor-Crummey–Scott queue lock. Each waiter spins on its own
// queue node, so a contended MCS lock generates no global cache-line
// ping-pong, which is why the paper uses it for global-lock structures and
// queue locks ("Notice that for highly-contended locks, such as the locks in
// concurrent queues, we use MCS locks").
//
// Lock returns the queue node that must be passed to Unlock. Nodes are
// pooled internally, so the common Lock/Unlock pair does not allocate.
type MCS struct {
	tail atomic.Pointer[MCSNode]
	pool sync.Pool
}

// MCSNode is a queue node for an MCS lock. Callers treat it as opaque.
type MCSNode struct {
	next    atomic.Pointer[MCSNode]
	waiting atomic.Uint32
}

// Lock acquires the lock and returns the node to pass to Unlock.
func (l *MCS) Lock() *MCSNode {
	n, _ := l.pool.Get().(*MCSNode)
	if n == nil {
		n = new(MCSNode)
	}
	n.next.Store(nil)
	n.waiting.Store(1)
	pred := l.tail.Swap(n)
	if pred != nil {
		pred.next.Store(n)
		for i := 0; n.waiting.Load() != 0; i++ {
			backoff.Poll(i)
		}
	}
	return n
}

// TryLock acquires the lock only if it is free, returning the node on
// success and nil otherwise.
func (l *MCS) TryLock() *MCSNode {
	n, _ := l.pool.Get().(*MCSNode)
	if n == nil {
		n = new(MCSNode)
	}
	n.next.Store(nil)
	n.waiting.Store(1)
	if l.tail.CompareAndSwap(nil, n) {
		return n
	}
	l.pool.Put(n)
	return nil
}

// Unlock releases the lock, handing it to the next queued waiter if any.
func (l *MCS) Unlock(n *MCSNode) {
	if next := n.next.Load(); next != nil {
		next.waiting.Store(0)
	} else if l.tail.CompareAndSwap(n, nil) {
		l.pool.Put(n)
		return
	} else {
		// A successor swapped itself in but has not linked yet; wait for it.
		for i := 0; ; i++ {
			if next := n.next.Load(); next != nil {
				next.waiting.Store(0)
				break
			}
			backoff.Poll(i)
		}
	}
	l.pool.Put(n)
}

// Locked reports whether any thread holds or waits for the lock (racy; for
// tests/stats only).
func (l *MCS) Locked() bool { return l.tail.Load() != nil }
