package locks

import (
	"unsafe"

	"github.com/optik-go/optik/internal/core"
)

// Padded lock variants for dense lock arrays. A bare TAS is 4 bytes and a
// Ticket 8, so slices pack 8–16 locks per cache line and every acquisition
// CAS invalidates the neighbors' lines (false sharing). The padded forms
// trade memory for a private line per lock; use them for striped/segment
// lock tables, keep the bare forms for locks that live alone in a struct.

// PaddedTAS is a test-and-set lock padded to a full cache line.
type PaddedTAS struct {
	noCopy noCopy
	TAS
	_ [core.CacheLineSize - unsafe.Sizeof(TAS{})]byte
}

// PaddedTicket is a fair ticket lock padded to a full cache line.
type PaddedTicket struct {
	noCopy noCopy
	Ticket
	_ [core.CacheLineSize - unsafe.Sizeof(Ticket{})]byte
}
