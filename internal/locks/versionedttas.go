package locks

import (
	"runtime"
	"sync/atomic"
)

// VersionedTTAS is the Figure-5 baseline: implementing the OPTIK pattern
// *without* OPTIK locks. It packs a 32-bit TTAS lock and a 32-bit version
// number in 8 bytes, exactly as the paper describes ("4 bytes for a
// test-and-test-and-set (TTAS) lock and 4 bytes for the version number").
//
// To validate a version the thread must first acquire the lock — possibly
// after contending for it — and only then compare the version, which is the
// wasted work OPTIK locks eliminate.
type VersionedTTAS struct {
	lock    TTAS
	version atomic.Uint32
	// cas counts CAS(-equivalent) attempts, the metric of Figure 5 (right).
	cas atomic.Uint64
}

// GetVersion returns the current version number.
func (l *VersionedTTAS) GetVersion() uint32 { return l.version.Load() }

// LockAndValidate acquires the TTAS lock and then checks target against the
// version, counting every test-and-set attempt as a CAS. On success the
// caller runs its critical section and must call UnlockCommit; on validation
// failure the lock is released immediately and false is returned.
func (l *VersionedTTAS) LockAndValidate(target uint32) bool {
	// Busy-spin like the paper's C TTAS: waiters poll the lock word and
	// pounce together the moment it frees, which is exactly the
	// CAS-per-validation herd Figure 5 (right) plots. Yield only rarely so
	// multiprogrammed runs still make progress.
	for spins := 0; ; spins++ {
		if l.lock.state.Load() == 0 {
			l.cas.Add(1)
			if l.lock.state.Swap(1) == 0 {
				break
			}
		}
		if spins%1024 == 1023 {
			runtime.Gosched()
		}
	}
	if l.version.Load() != target {
		l.lock.Unlock()
		return false
	}
	return true
}

// UnlockCommit increments the version and releases the lock, publishing the
// critical section.
func (l *VersionedTTAS) UnlockCommit() {
	l.version.Add(1)
	l.lock.Unlock()
}

// CASCount returns the number of lock-word CAS attempts so far.
func (l *VersionedTTAS) CASCount() uint64 { return l.cas.Load() }

// ResetCASCount zeroes the CAS counter (between benchmark phases).
func (l *VersionedTTAS) ResetCASCount() { l.cas.Store(0) }
