package locks

// noCopy makes `go vet` (copylocks) flag any by-value copy of a type that
// holds one as a field — the sync package's convention. It is zero-size
// and placed first, so it never perturbs the layout the padded types
// promise. Named, not embedded: embedding would collide with the locks'
// own promoted Lock/Unlock methods.
type noCopy struct{}

// Lock is a no-op used by `go vet -copylocks`.
func (*noCopy) Lock() {}

// Unlock is a no-op used by `go vet -copylocks`.
func (*noCopy) Unlock() {}
