package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestVersionedBasics(t *testing.T) {
	var l Lock
	if l.GetVersion() != Init {
		t.Fatal("zero lock must have version Init")
	}
	if l.IsLockedNow() {
		t.Fatal("zero lock must be unlocked")
	}
	v := l.GetVersion()
	if !l.TryLockVersion(v) {
		t.Fatal("TryLockVersion on quiescent lock failed")
	}
	if !l.IsLockedNow() {
		t.Fatal("lock not held after TryLockVersion")
	}
	l.Unlock()
	if l.IsLockedNow() {
		t.Fatal("lock held after Unlock")
	}
	if l.GetVersion() != v+2 {
		t.Fatalf("version after lock/unlock = %d, want %d", l.GetVersion(), v+2)
	}
}

func TestVersionedTryLockStaleVersion(t *testing.T) {
	var l Lock
	v := l.GetVersion()
	l.TryLockVersion(v)
	l.Unlock() // version moved to v+2
	if l.TryLockVersion(v) {
		t.Fatal("stale version must not acquire")
	}
}

func TestVersionedTryLockLockedTarget(t *testing.T) {
	var l Lock
	v := l.GetVersion()
	l.TryLockVersion(v)
	locked := l.GetVersion() // odd value
	if !locked.IsLocked() {
		t.Fatal("expected locked version")
	}
	if l.TryLockVersion(locked) {
		t.Fatal("TryLockVersion with a locked target must fail")
	}
	l.Unlock()
	if l.TryLockVersion(locked) {
		t.Fatal("TryLockVersion with a locked target must fail even when free")
	}
}

func TestVersionedRevert(t *testing.T) {
	var l Lock
	v := l.GetVersion()
	l.TryLockVersion(v)
	l.Revert()
	if l.GetVersion() != v {
		t.Fatalf("Revert must restore version %d, got %d", v, l.GetVersion())
	}
	if !l.TryLockVersion(v) {
		t.Fatal("original version must validate after Revert")
	}
	l.Unlock()
}

func TestVersionedLockVersion(t *testing.T) {
	var l Lock
	v := l.GetVersion()
	if !l.LockVersion(v) {
		t.Fatal("LockVersion on quiescent lock must validate")
	}
	l.Unlock()
	if l.LockVersion(v) {
		t.Fatal("LockVersion with stale version must return false")
	}
	if !l.IsLockedNow() {
		t.Fatal("LockVersion must hold the lock even when validation fails")
	}
	l.Unlock()
}

func TestVersionedGetVersionWait(t *testing.T) {
	var l Lock
	l.Lock()
	done := make(chan Version)
	go func() { done <- l.GetVersionWait() }()
	l.Unlock()
	v := <-done
	if v.IsLocked() {
		t.Fatal("GetVersionWait returned a locked version")
	}
}

func TestVersionHelpers(t *testing.T) {
	if Version(2).IsLocked() || !Version(3).IsLocked() {
		t.Fatal("IsLocked parity broken")
	}
	if !Version(4).Same(Version(4)) || Version(4).Same(Version(6)) {
		t.Fatal("Same broken")
	}
}

func TestVersionedMutualExclusionAndVersionCount(t *testing.T) {
	// The version counts completed critical sections: after N successful
	// lock/unlock pairs the version must be exactly 2N (Figure 3).
	var l Lock
	const goroutines, iters = 8, 2000
	var counter int
	var inside atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				for {
					v := l.GetVersionWait()
					if l.TryLockVersion(v) {
						break
					}
				}
				if inside.Add(1) != 1 {
					t.Error("two holders of the OPTIK lock")
				}
				counter++
				inside.Add(-1)
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d", counter, goroutines*iters)
	}
	if got := l.GetVersion(); got != Version(2*goroutines*iters) {
		t.Fatalf("version = %d, want %d", got, 2*goroutines*iters)
	}
}

func TestVersionedTryLockLinearizesValidation(t *testing.T) {
	// A successful TryLockVersion(v) guarantees no critical section
	// committed between reading v and acquiring: we verify by publishing a
	// shadow value only inside critical sections and checking it never
	// changes under us.
	var l Lock
	var shadow atomic.Uint64
	const goroutines, iters = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				for {
					v := l.GetVersion()
					if v.IsLocked() {
						continue
					}
					snap := shadow.Load()
					if l.TryLockVersion(v) {
						if shadow.Load() != snap {
							t.Error("shadow changed despite successful validation")
						}
						shadow.Store(snap + 1)
						l.Unlock()
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if shadow.Load() != goroutines*iters {
		t.Fatalf("shadow = %d, want %d", shadow.Load(), goroutines*iters)
	}
}

func TestUpdateHelper(t *testing.T) {
	var l Lock
	ran := false
	ok := Update(&l, func(Version) Outcome { return Proceed }, func() { ran = true })
	if !ok || !ran {
		t.Fatal("Update with Proceed must run the critical section")
	}
	if l.GetVersion() != 2 {
		t.Fatalf("version = %d, want 2", l.GetVersion())
	}
	if Update(&l, func(Version) Outcome { return Abort }, func() { t.Error("must not run") }) {
		t.Fatal("Update with Abort must return false")
	}
	// Restart once, then proceed.
	n := 0
	Update(&l, func(Version) Outcome {
		n++
		if n == 1 {
			return Restart
		}
		return Proceed
	}, func() {})
	if n != 2 {
		t.Fatalf("optimistic phase ran %d times, want 2", n)
	}
}

func TestReadHelper(t *testing.T) {
	var l Lock
	x := 41
	got := Read(&l, func() int { return x + 1 })
	if got != 42 {
		t.Fatalf("Read = %d", got)
	}
}

func TestReadHelperRetriesOnConcurrentCommit(t *testing.T) {
	var l Lock
	tries := 0
	Read(&l, func() int {
		tries++
		if tries == 1 {
			// Simulate a concurrent committed critical section.
			l.Lock()
			l.Unlock()
		}
		return 0
	})
	if tries != 2 {
		t.Fatalf("Read body ran %d times, want 2", tries)
	}
}

func TestVersionedQuickProperties(t *testing.T) {
	// Property: from any even version, TryLockVersion succeeds exactly with
	// the current version and fails with any other.
	if err := quick.Check(func(startRaw uint32, offsetRaw uint8) bool {
		start := Version(startRaw) &^ 1 // even
		var l Lock
		l.word.Store(uint64(start))
		offset := Version(offsetRaw) &^ 1
		if offset != 0 {
			if l.TryLockVersion(start + offset) {
				return false
			}
		}
		if !l.TryLockVersion(start) {
			return false
		}
		l.Unlock()
		return l.GetVersion() == start+2
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkVersionedUncontended(b *testing.B) {
	var l Lock
	for i := 0; i < b.N; i++ {
		v := l.GetVersion()
		if l.TryLockVersion(v) {
			l.Unlock()
		}
	}
}

func BenchmarkVersionedContended(b *testing.B) {
	var l Lock
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			for {
				v := l.GetVersionWait()
				if l.TryLockVersion(v) {
					l.Unlock()
					break
				}
			}
		}
	})
}
