package core

// noCopy makes `go vet` (copylocks) flag any by-value copy of a type that
// holds one as a field — the sync package's convention. Zero-size, placed
// first so it never perturbs a promised layout.
type noCopy struct{}

// Lock is a no-op used by `go vet -copylocks`.
func (*noCopy) Lock() {}

// Unlock is a no-op used by `go vet -copylocks`.
func (*noCopy) Unlock() {}
