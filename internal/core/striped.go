package core

import (
	"runtime"
	"sync/atomic"
)

// Striped is a sharded counter for hot add paths: increments go to one of
// several cache-line-padded cells selected by a caller-supplied hint, and
// reading the total sums the cells. A single shared counter word would make
// every successful update of a large concurrent structure serialize on one
// cache line; striping spreads that traffic, and Sum stays O(shards) —
// constant in the element count — which is what makes a cheap Len() on a
// million-element table possible.
//
// Sum is not linearizable with respect to concurrent Adds (it reads the
// cells one by one); on a quiescent counter it is exact, matching the
// contract of the Len methods it backs.
type Striped struct {
	noCopy noCopy
	cells  []stripedCell
	mask   uint64
}

// stripedCell pads each counter word to a private cache line so concurrent
// Adds to different shards never false-share.
type stripedCell struct {
	n atomic.Int64
	_ CacheLinePad
}

// NewStriped returns a striped counter with at least the given number of
// cells, rounded up to a power of two. shards <= 0 sizes the counter to the
// machine (next power of two >= GOMAXPROCS).
func NewStriped(shards int) *Striped {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	return &Striped{cells: make([]stripedCell, n), mask: uint64(n - 1)}
}

// Add applies delta to the cell selected by hint and returns that cell's
// new value (useful for amortized threshold checks: act when the cell value
// crosses a boundary, not on every call). The hint is typically a key hash;
// any well-spread value works.
func (s *Striped) Add(hint uint64, delta int64) int64 {
	// Fibonacci-mix the hint so dense hint sequences still spread.
	return s.cells[(hint*0x9E3779B97F4A7C15)>>32&s.mask].n.Add(delta)
}

// Sum returns the total across all cells: O(shards), independent of how
// many Adds ever happened.
func (s *Striped) Sum() int64 {
	var total int64
	for i := range s.cells {
		total += s.cells[i].n.Load()
	}
	return total
}

// The op-counting view: AddOp/Net/Ops treat each cell as two packed
// counters updated by a single atomic add — a net element delta in the low
// 32 bits and a monotone operation count in the high bits. The op count is
// what a maintenance scheduler needs for its activity signal: the net sum
// is blind to balanced traffic (an insert and a delete cancel), but every
// successful update bumps the op half, so "no ops since the last sample"
// really means the structure was untouched. Packing it into the same add
// makes the sharper signal free — no second atomic on the update path.
//
// A counter must use either Add/Sum or AddOp/Net/Ops exclusively; mixing
// the flavors on one instance would misattribute the high bits. The packed
// layout bounds the net count to ±2^31 (about 2.1 billion elements, far
// beyond any table here). The op half wraps modulo 2^31 without disturbing
// the low half — two's-complement addition is bitwise modular — so Net
// stays exact forever and Ops comparisons remain valid across any sampling
// interval shorter than 2^31 operations.

// opsUnit is one operation in the packed cell encoding.
const opsUnit = int64(1) << 32

// AddOp records one successful operation whose net element effect is delta
// (+1 insert, -1 delete, 0 value update) and returns the updated cell's op
// count — callers amortize threshold checks on it crossing boundaries,
// which, unlike the raw cell value, advances deterministically under
// balanced traffic.
func (s *Striped) AddOp(hint uint64, delta int64) int64 {
	c := s.cells[(hint*0x9E3779B97F4A7C15)>>32&s.mask].n.Add(opsUnit + delta)
	return cellOps(c)
}

// Net returns the total net delta across all cells (the element count when
// the counter backs a Len). Same non-linearizable contract as Sum.
func (s *Striped) Net() int64 {
	return int64(int32(s.packedSum()))
}

// Ops returns the monotone operation count across all cells, modulo 2^31.
// Two equal Ops reads with no interleaving wrap mean no AddOp ran between
// them; its only consumer compares snapshots, so the wrap is harmless.
func (s *Striped) Ops() int64 {
	return cellOps(s.packedSum())
}

// packedSum sums the packed cells; the low 32 bits are the exact net total
// (assuming |net| < 2^31) and the remaining bits the wrapping op count.
func (s *Striped) packedSum() int64 {
	var total int64
	for i := range s.cells {
		total += s.cells[i].n.Load()
	}
	return total
}

// cellOps extracts the op half of a packed value: subtract the
// sign-extended net so a transiently negative low half does not leak its
// borrow into the count, then shift it out. Masked to 31 bits so the
// extraction is insensitive to op-half wraparound of the int64.
func cellOps(c int64) int64 {
	return (c - int64(int32(c))) >> 32 & (1<<31 - 1)
}

// Shards returns the number of cells.
func (s *Striped) Shards() int { return len(s.cells) }
