package core

import (
	"runtime"
	"sync/atomic"
)

// Striped is a sharded counter for hot add paths: increments go to one of
// several cache-line-padded cells selected by a caller-supplied hint, and
// reading the total sums the cells. A single shared counter word would make
// every successful update of a large concurrent structure serialize on one
// cache line; striping spreads that traffic, and Sum stays O(shards) —
// constant in the element count — which is what makes a cheap Len() on a
// million-element table possible.
//
// Sum is not linearizable with respect to concurrent Adds (it reads the
// cells one by one); on a quiescent counter it is exact, matching the
// contract of the Len methods it backs.
type Striped struct {
	cells []stripedCell
	mask  uint64
}

// stripedCell pads each counter word to a private cache line so concurrent
// Adds to different shards never false-share.
type stripedCell struct {
	n atomic.Int64
	_ CacheLinePad
}

// NewStriped returns a striped counter with at least the given number of
// cells, rounded up to a power of two. shards <= 0 sizes the counter to the
// machine (next power of two >= GOMAXPROCS).
func NewStriped(shards int) *Striped {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	return &Striped{cells: make([]stripedCell, n), mask: uint64(n - 1)}
}

// Add applies delta to the cell selected by hint and returns that cell's
// new value (useful for amortized threshold checks: act when the cell value
// crosses a boundary, not on every call). The hint is typically a key hash;
// any well-spread value works.
func (s *Striped) Add(hint uint64, delta int64) int64 {
	// Fibonacci-mix the hint so dense hint sequences still spread.
	return s.cells[(hint*0x9E3779B97F4A7C15)>>32&s.mask].n.Add(delta)
}

// Sum returns the total across all cells: O(shards), independent of how
// many Adds ever happened.
func (s *Striped) Sum() int64 {
	var total int64
	for i := range s.cells {
		total += s.cells[i].n.Load()
	}
	return total
}

// Shards returns the number of cells.
func (s *Striped) Shards() int { return len(s.cells) }
