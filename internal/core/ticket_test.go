package core

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestTicketBasics(t *testing.T) {
	var l TicketLock
	v := l.GetVersion()
	if v.IsLocked() {
		t.Fatal("zero lock must be unlocked")
	}
	if !l.TryLockVersion(v) {
		t.Fatal("TryLockVersion on quiescent lock failed")
	}
	if !l.IsLockedNow() {
		t.Fatal("lock not held after TryLockVersion")
	}
	if q := l.NumQueued(); q != 1 {
		t.Fatalf("NumQueued = %d, want 1 while held", q)
	}
	l.Unlock()
	if l.IsLockedNow() {
		t.Fatal("lock held after Unlock")
	}
	v2 := l.GetVersion()
	if v2.Same(v) {
		t.Fatal("version must advance across a critical section")
	}
	if v2.current() != v.current()+1 {
		t.Fatalf("serving half = %d, want %d", v2.current(), v.current()+1)
	}
}

func TestTicketTryLockStale(t *testing.T) {
	var l TicketLock
	v := l.GetVersion()
	l.TryLockVersion(v)
	l.Unlock()
	if l.TryLockVersion(v) {
		t.Fatal("stale version must not acquire")
	}
}

func TestTicketTryLockLockedTarget(t *testing.T) {
	var l TicketLock
	v := l.GetVersion()
	l.TryLockVersion(v)
	locked := l.GetVersion()
	if !locked.IsLocked() {
		t.Fatal("expected locked snapshot")
	}
	if l.TryLockVersion(locked) {
		t.Fatal("locked target must fail")
	}
	l.Unlock()
}

func TestTicketRevert(t *testing.T) {
	var l TicketLock
	v := l.GetVersion()
	l.TryLockVersion(v)
	l.Revert()
	if l.GetVersion() != v {
		t.Fatal("Revert must restore the exact word")
	}
	if !l.TryLockVersion(v) {
		t.Fatal("original snapshot must validate after Revert")
	}
	l.Unlock()
}

func TestTicketLockVersion(t *testing.T) {
	var l TicketLock
	v := l.GetVersion()
	if !l.LockVersion(v) {
		t.Fatal("LockVersion on quiescent lock must validate")
	}
	l.Unlock()
	if l.LockVersion(v) {
		t.Fatal("stale LockVersion must return false")
	}
	if !l.IsLockedNow() {
		t.Fatal("LockVersion must hold the lock even on validation failure")
	}
	l.Unlock()
}

func TestTicketLockVersionBackoff(t *testing.T) {
	var l TicketLock
	v := l.GetVersion()
	if !l.LockVersionBackoff(v) {
		t.Fatal("LockVersionBackoff on quiescent lock must validate")
	}
	l.Unlock()
	if l.LockVersionBackoff(l.GetVersion()) != true {
		t.Fatal("fresh snapshot must validate")
	}
	l.Unlock()
}

func TestTicketNumQueued(t *testing.T) {
	var l TicketLock
	if l.NumQueued() != 0 {
		t.Fatal("free lock must have 0 queued")
	}
	l.Lock()
	if l.NumQueued() != 1 {
		t.Fatalf("NumQueued = %d, want 1", l.NumQueued())
	}
	// Two waiters draw tickets.
	l.word.Add(1 << ticketShift)
	l.word.Add(1 << ticketShift)
	if l.NumQueued() != 3 {
		t.Fatalf("NumQueued = %d, want 3", l.NumQueued())
	}
	l.word.Add(3) // serve everyone (low half increments)
	if l.NumQueued() != 0 {
		t.Fatalf("NumQueued = %d, want 0", l.NumQueued())
	}
}

func TestTicketServingWraparound(t *testing.T) {
	// The §3.2 overflow property: the ticket version is 32 bits. Set the
	// lock just before the 32-bit boundary and verify lock/unlock wraps the
	// serving half without corrupting the ticket half.
	var l TicketLock
	l.word.Store(uint64(0xffffffff)<<ticketShift | uint64(0xffffffff))
	v := l.GetVersion()
	if v.IsLocked() {
		t.Fatal("crafted word should be unlocked (halves equal)")
	}
	if !l.TryLockVersion(v) {
		t.Fatal("TryLockVersion at boundary failed")
	}
	l.Unlock()
	after := l.GetVersion()
	if after.IsLocked() {
		t.Fatalf("lock corrupt after wraparound: %#x", uint64(after))
	}
	if after.current() != 0 || after.next() != 0 {
		t.Fatalf("expected both halves to wrap to 0, got next=%#x cur=%#x",
			after.next(), after.current())
	}
}

func TestTicketABAOverflow(t *testing.T) {
	// Demonstrates the documented weakness: after exactly 2^32 critical
	// sections the 32-bit version returns to its old value, so a sleeper's
	// stale snapshot validates again (we simulate the 2^32 sections by
	// setting the word directly).
	var l TicketLock
	stale := l.GetVersion() // version 0, unlocked
	// 2^32 completed critical sections later the halves wrapped to 0 again:
	l.word.Store(0)
	if !l.TryLockVersion(stale) {
		t.Fatal("expected the ABA snapshot to (incorrectly) validate — " +
			"this documents the 32-bit overflow limitation")
	}
	l.Unlock()
}

func TestTicketFIFOGrantOrder(t *testing.T) {
	var l TicketLock
	const n = 8
	l.Lock()
	served := make([]int, 0, n)
	var wg sync.WaitGroup
	var gate sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		gate.Lock()
		go func(me int) {
			defer wg.Done()
			my := l.drawTicket()
			gate.Unlock()
			for uint32(l.word.Load()) != my {
			}
			served = append(served, me) // we hold the lock
			l.Unlock()
		}(i)
		gate.Lock()
		gate.Unlock()
	}
	l.Unlock()
	wg.Wait()
	for i, v := range served {
		if v != i {
			t.Fatalf("grant order %v not FIFO", served)
		}
	}
}

func TestTicketMutualExclusion(t *testing.T) {
	var l TicketLock
	const goroutines, iters = 8, 2000
	var counter int
	var inside atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				for {
					v := l.GetVersionWait()
					if l.TryLockVersion(v) {
						break
					}
				}
				if inside.Add(1) != 1 {
					t.Error("two holders of the ticket OPTIK lock")
				}
				counter++
				inside.Add(-1)
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d", counter, goroutines*iters)
	}
	if cur := l.GetVersion().current(); cur != uint32(goroutines*iters) {
		t.Fatalf("version = %d, want %d", cur, goroutines*iters)
	}
}

func TestTicketConcurrentUnlockVsTicketDraw(t *testing.T) {
	// Stress the CAS-loop Unlock against concurrent ticket draws: counts
	// must stay consistent (every draw eventually served).
	var l TicketLock
	const goroutines, iters = 8, 3000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Lock()
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	v := l.GetVersion()
	if v.IsLocked() {
		t.Fatal("lock left held")
	}
	if v.current() != uint32(goroutines*iters) {
		t.Fatalf("served %d critical sections, want %d", v.current(), goroutines*iters)
	}
}

func BenchmarkTicketOptikUncontended(b *testing.B) {
	var l TicketLock
	for i := 0; i < b.N; i++ {
		v := l.GetVersion()
		if l.TryLockVersion(v) {
			l.Unlock()
		}
	}
}

func BenchmarkTicketOptikContended(b *testing.B) {
	var l TicketLock
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			for {
				v := l.GetVersionWait()
				if l.TryLockVersion(v) {
					l.Unlock()
					break
				}
			}
		}
	})
}
