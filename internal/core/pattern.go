package core

// This file encodes the OPTIK pattern itself (Figure 2) as a reusable
// control-flow helper: snapshot the version, run the optimistic phase, then
// lock-and-validate in one CAS and run the critical section. It exists
// mostly for small structures protected by a single OPTIK lock (array maps,
// per-bucket lists); the fine-grained algorithms in ds/ inline the pattern
// because they track several versions at once (hand-over-hand version
// tracking).

// Outcome tells Update's retry loop what the optimistic phase decided.
type Outcome int

const (
	// Proceed: the operation needs the critical section; lock and validate.
	Proceed Outcome = iota
	// Abort: the operation's result is already determined without locking
	// (e.g. inserting a key that is present); return without synchronizing.
	Abort
	// Restart: the optimistic phase observed an inconsistency; retry now.
	Restart
)

// Update runs the OPTIK pattern against a single versioned OPTIK lock:
//
//	restart:
//	  v := lock.GetVersion()
//	  outcome := optimistic(v)      // read-only phase
//	  if outcome == Abort   -> return false (no synchronization at all)
//	  if outcome == Restart -> goto restart
//	  if !lock.TryLockVersion(v)  -> goto restart
//	  critical()                    // write phase, lock held
//	  lock.Unlock()
//	  return true
//
// It returns whether the critical section ran. The optimistic callback
// receives the version snapshot for algorithms that want to double-check it
// mid-phase.
func Update(l *Lock, optimistic func(Version) Outcome, critical func()) bool {
	for {
		v := l.GetVersion()
		switch optimistic(v) {
		case Abort:
			return false
		case Restart:
			continue
		}
		if !l.TryLockVersion(v) {
			continue
		}
		critical()
		l.Unlock()
		return true
	}
}

// Read runs an optimistic read-only operation: it snapshots an unlocked
// version, runs the body, and re-validates that the version is unchanged,
// retrying until the body executed against a quiescent lock. This is the
// search-side of the pattern (Figure 6(c)).
func Read[T any](l *Lock, body func() T) T {
	for {
		v := l.GetVersionWait()
		out := body()
		if l.GetVersion().Same(v) {
			return out
		}
	}
}
