package core

import (
	"sync/atomic"

	"github.com/optik-go/optik/internal/backoff"
)

// TicketVersion is a snapshot of a TicketLock: the 32-bit next-ticket and
// now-serving halves packed in one word. For an unlocked lock the halves are
// equal and the now-serving half is the version number.
type TicketVersion uint64

const ticketShift = 32

func (v TicketVersion) next() uint32    { return uint32(v >> ticketShift) }
func (v TicketVersion) current() uint32 { return uint32(v) }

// IsLocked reports whether the snapshot corresponds to a held lock: the
// lock is busy whenever next != current.
func (v TicketVersion) IsLocked() bool { return v.next() != v.current() }

// Same reports whether two snapshots denote the same version. Both must be
// unlocked snapshots (as returned by GetVersionWait) for the comparison to
// be meaningful; it then reduces to equality of the serving halves.
func (v TicketVersion) Same(o TicketVersion) bool { return v.current() == o.current() }

// Queued returns the number of threads holding or waiting for the lock at
// the time of the snapshot (0 = free): ticket - current, exactly the
// "amount of queuing behind the lock" property of §3.2.
func (v TicketVersion) Queued() uint32 { return v.next() - v.current() }

// TicketLock is an OPTIK lock built on a ticket lock (the implementation
// that gave OPTIK its name: "optimistic concurrency with ticket locks").
// It is fair (FIFO), exposes the queue length, and supports waiting with
// backoff proportional to the thread's distance from the head of the queue.
//
// Its version number is 32 bits wide, so a thread that sleeps on a stored
// version for 2^32 acquisitions can validate incorrectly (§3.2); the
// versioned-lock implementation (Lock) extends this to 2^63.
//
// The zero value is an unlocked lock with version 0.
type TicketLock struct {
	word atomic.Uint64 // high 32 bits: next ticket; low 32 bits: now serving
}

// GetVersion returns the current snapshot (possibly locked).
func (l *TicketLock) GetVersion() TicketVersion { return TicketVersion(l.word.Load()) }

// GetVersionWait spins until the lock is free and returns the unlocked
// snapshot observed.
func (l *TicketLock) GetVersionWait() TicketVersion {
	for i := 0; ; i++ {
		v := TicketVersion(l.word.Load())
		if !v.IsLocked() {
			return v
		}
		backoff.Poll(i)
	}
}

// TryLockVersion acquires the lock iff it is free and its version equals
// target's, in a single compare-and-swap: the CAS grabs the next ticket
// only if the whole word still equals the unlocked target snapshot.
func (l *TicketLock) TryLockVersion(target TicketVersion) bool {
	if target.IsLocked() || TicketVersion(l.word.Load()) != target {
		return false
	}
	return l.word.CompareAndSwap(uint64(target), uint64(target)+(1<<ticketShift))
}

// LockVersion draws a ticket, waits until served, and returns whether the
// version it acquired equals target's version.
func (l *TicketLock) LockVersion(target TicketVersion) bool {
	my := l.drawTicket()
	for i := 0; uint32(l.word.Load()) != my; i++ {
		backoff.Poll(i)
	}
	return my == target.current()
}

// LockVersionBackoff is LockVersion with waiting proportional to the
// thread's distance from the head of the queue, the optik_lock_backoff
// extension of §3.2.
func (l *TicketLock) LockVersionBackoff(target TicketVersion) bool {
	my := l.drawTicket()
	for {
		cur := uint32(l.word.Load())
		if cur == my {
			return my == target.current()
		}
		// Spin proportionally to the number of threads ahead of us; each
		// of them will hold the lock for roughly a constant-length
		// critical section.
		backoff.Spin(int(my-cur) * backoff.InitialSpin)
	}
}

// Lock acquires the lock unconditionally (plain fair spinlock usage).
func (l *TicketLock) Lock() {
	my := l.drawTicket()
	for i := 0; uint32(l.word.Load()) != my; i++ {
		backoff.Poll(i)
	}
}

func (l *TicketLock) drawTicket() uint32 {
	w := l.word.Add(1 << ticketShift)
	return uint32(w>>ticketShift) - 1
}

// Unlock advances the now-serving half, releasing the lock and incrementing
// the version in one step (the unlock function of ticket locks "simply
// increments the version"). A CAS loop confines the 32-bit increment to the
// low half so a serving counter of 0xffffffff wraps within its own half
// instead of carrying into the ticket half; it only retries when a
// concurrent ticket draw moves the word.
func (l *TicketLock) Unlock() {
	for {
		w := l.word.Load()
		next := uint32(w >> ticketShift)
		cur := uint32(w) + 1
		nw := uint64(next)<<ticketShift | uint64(cur)
		if l.word.CompareAndSwap(w, nw) {
			return
		}
	}
}

// Revert releases the lock restoring the version it had before
// acquisition, by returning the ticket that Lock/TryLockVersion drew.
func (l *TicketLock) Revert() {
	l.word.Add(^uint64(1<<ticketShift) + 1) // subtract 1<<32
}

// NumQueued returns the number of threads holding or waiting for the lock
// (optik_num_queued). The victim-queue enqueue path (§5.4) consults it to
// decide between waiting and diverting to the victim queue.
func (l *TicketLock) NumQueued() uint32 { return l.GetVersion().Queued() }

// IsLockedNow reports whether the lock is held at this instant (racy; for
// monitoring and tests).
func (l *TicketLock) IsLockedNow() bool { return l.GetVersion().IsLocked() }
