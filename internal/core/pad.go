package core

import "unsafe"

// CacheLineSize is the coherence granularity the padded types below target.
// 64 bytes is correct for every x86-64 and most arm64 parts; on the few
// 128-byte-line arm64 designs (Apple M-series) two padded values may still
// share a line, which costs performance, never correctness.
const CacheLineSize = 64

// CacheLinePad occupies exactly one cache line. Embed it between hot fields
// (or append it to a struct stored in a dense slice) to keep unrelated
// writers off each other's lines. It is a plain byte array so it adds no
// pointers for the garbage collector to scan.
type CacheLinePad [CacheLineSize]byte

// PaddedLock is an OPTIK Lock padded to a full cache line. Slices of
// PaddedLock give every lock a private line: eight unpadded Locks share one
// line, so under contention every acquisition CAS invalidates seven
// innocent neighbors (false sharing). Use it wherever locks are stored
// densely and contended independently — per-bucket lock arrays, striped
// lock tables. The zero value is an unlocked lock.
type PaddedLock struct {
	Lock
	_ [CacheLineSize - unsafe.Sizeof(Lock{})]byte
}

// PaddedTicketLock is a TicketLock padded to a full cache line, for dense
// arrays of fair per-slot locks (the victim-queue designs of §5.4 index
// ticket locks by slot).
type PaddedTicketLock struct {
	TicketLock
	_ [CacheLineSize - unsafe.Sizeof(TicketLock{})]byte
}
