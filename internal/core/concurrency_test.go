package core

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestRevertPreservesValidationUnderConcurrency: readers snapshot the
// version; writers acquire and Revert (no modification). Readers'
// snapshots must remain valid — Revert must never look like a committed
// critical section.
func TestRevertPreservesValidationUnderConcurrency(t *testing.T) {
	var l Lock
	var committed atomic.Uint64
	stop := make(chan struct{})
	var writers, validators sync.WaitGroup

	// Writers: mostly revert, occasionally commit (bumping a counter so
	// validators can tell real commits apart).
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				v := l.GetVersionWait()
				if !l.TryLockVersion(v) {
					continue
				}
				if i%100 == 0 {
					committed.Add(1)
					l.Unlock()
				} else {
					l.Revert()
				}
			}
		}()
	}
	// Validators: a successful TryLockVersion with a fresh snapshot must
	// observe the committed counter unchanged since the snapshot.
	for r := 0; r < 4; r++ {
		validators.Add(1)
		go func() {
			defer validators.Done()
			for i := 0; i < 20000; i++ {
				v := l.GetVersionWait()
				snap := committed.Load()
				if l.TryLockVersion(v) {
					if committed.Load() != snap {
						t.Error("validated acquisition but commits advanced")
						l.Revert()
						return
					}
					l.Revert()
				}
			}
		}()
	}
	validators.Wait()
	close(stop)
	writers.Wait()
}

// TestVersionNeverDecreasesAcrossCommits: observed versions from
// GetVersionWait are monotonically non-decreasing in the absence of
// Revert.
func TestVersionNeverDecreasesAcrossCommits(t *testing.T) {
	var l Lock
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					v := l.GetVersionWait()
					if l.TryLockVersion(v) {
						l.Unlock()
					}
				}
			}
		}()
	}
	prev := Version(0)
	for i := 0; i < 100000; i++ {
		v := l.GetVersionWait()
		if v < prev {
			t.Fatalf("version went backwards: %d after %d", v, prev)
		}
		prev = v
	}
	close(stop)
	wg.Wait()
}

// TestTicketLockVersionBackoffConcurrent exercises the proportional
// backoff path under real contention.
func TestTicketLockVersionBackoffConcurrent(t *testing.T) {
	var l TicketLock
	var counter int
	var wg sync.WaitGroup
	const goroutines, iters = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.LockVersionBackoff(l.GetVersion())
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d", counter, goroutines*iters)
	}
}

// TestMixedTryAndBlockingAcquisition interleaves TryLockVersion,
// LockVersion and plain Lock on one versioned lock.
func TestMixedTryAndBlockingAcquisition(t *testing.T) {
	var l Lock
	var counter int
	var wg sync.WaitGroup
	const goroutines, iters = 9, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(mode int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch mode {
				case 0:
					for {
						v := l.GetVersionWait()
						if l.TryLockVersion(v) {
							break
						}
					}
				case 1:
					l.LockVersion(l.GetVersion())
				default:
					l.Lock()
				}
				counter++
				l.Unlock()
			}
		}(g % 3)
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d", counter, goroutines*iters)
	}
}
