package core

import (
	"sync"
	"testing"
	"unsafe"
)

func TestPaddedSizes(t *testing.T) {
	if got := unsafe.Sizeof(PaddedLock{}); got != CacheLineSize {
		t.Fatalf("PaddedLock size = %d, want %d", got, CacheLineSize)
	}
	if got := unsafe.Sizeof(PaddedTicketLock{}); got != CacheLineSize {
		t.Fatalf("PaddedTicketLock size = %d, want %d", got, CacheLineSize)
	}
	if got := unsafe.Sizeof(stripedCell{}); got < CacheLineSize {
		t.Fatalf("stripedCell size = %d, want >= %d", got, CacheLineSize)
	}
}

func TestPaddedLockBehaves(t *testing.T) {
	// The embedded lock must work exactly like a bare one.
	var locksArr [4]PaddedLock
	l := &locksArr[2]
	v := l.GetVersion()
	if !l.TryLockVersion(v) {
		t.Fatal("TryLockVersion on fresh padded lock failed")
	}
	l.Unlock()
	if l.GetVersion().Same(v) {
		t.Fatal("version did not advance across a critical section")
	}
}

func TestStripedSumQuiescentExact(t *testing.T) {
	s := NewStriped(8)
	if s.Shards() != 8 {
		t.Fatalf("Shards = %d, want 8", s.Shards())
	}
	const workers, iters = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s.Add(id*7919+uint64(i), 1)
				if i%2 == 0 {
					s.Add(uint64(i), -1)
				}
			}
		}(uint64(g))
	}
	wg.Wait()
	want := int64(workers * (iters - iters/2))
	if got := s.Sum(); got != want {
		t.Fatalf("Sum = %d, want %d", got, want)
	}
}

func TestStripedShardRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{1, 1}, {3, 4}, {8, 8}, {9, 16}} {
		if got := NewStriped(tc.in).Shards(); got != tc.want {
			t.Fatalf("NewStriped(%d).Shards() = %d, want %d", tc.in, got, tc.want)
		}
	}
	if NewStriped(0).Shards() < 1 {
		t.Fatal("machine-sized counter has no shards")
	}
}

func TestStripedAddReturnsCellValue(t *testing.T) {
	s := NewStriped(1) // single cell: Add returns the running total
	for i := int64(1); i <= 5; i++ {
		if got := s.Add(uint64(i*13), 1); got != i {
			t.Fatalf("Add #%d returned %d", i, got)
		}
	}
}
