package core

import (
	"sync"
	"testing"
	"unsafe"
)

func TestPaddedSizes(t *testing.T) {
	if got := unsafe.Sizeof(PaddedLock{}); got != CacheLineSize {
		t.Fatalf("PaddedLock size = %d, want %d", got, CacheLineSize)
	}
	if got := unsafe.Sizeof(PaddedTicketLock{}); got != CacheLineSize {
		t.Fatalf("PaddedTicketLock size = %d, want %d", got, CacheLineSize)
	}
	if got := unsafe.Sizeof(stripedCell{}); got < CacheLineSize {
		t.Fatalf("stripedCell size = %d, want >= %d", got, CacheLineSize)
	}
}

func TestPaddedLockBehaves(t *testing.T) {
	// The embedded lock must work exactly like a bare one.
	var locksArr [4]PaddedLock
	l := &locksArr[2]
	v := l.GetVersion()
	if !l.TryLockVersion(v) {
		t.Fatal("TryLockVersion on fresh padded lock failed")
	}
	l.Unlock()
	if l.GetVersion().Same(v) {
		t.Fatal("version did not advance across a critical section")
	}
}

func TestStripedSumQuiescentExact(t *testing.T) {
	s := NewStriped(8)
	if s.Shards() != 8 {
		t.Fatalf("Shards = %d, want 8", s.Shards())
	}
	const workers, iters = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s.Add(id*7919+uint64(i), 1)
				if i%2 == 0 {
					s.Add(uint64(i), -1)
				}
			}
		}(uint64(g))
	}
	wg.Wait()
	want := int64(workers * (iters - iters/2))
	if got := s.Sum(); got != want {
		t.Fatalf("Sum = %d, want %d", got, want)
	}
}

func TestStripedShardRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{1, 1}, {3, 4}, {8, 8}, {9, 16}} {
		if got := NewStriped(tc.in).Shards(); got != tc.want {
			t.Fatalf("NewStriped(%d).Shards() = %d, want %d", tc.in, got, tc.want)
		}
	}
	if NewStriped(0).Shards() < 1 {
		t.Fatal("machine-sized counter has no shards")
	}
}

func TestStripedAddReturnsCellValue(t *testing.T) {
	s := NewStriped(1) // single cell: Add returns the running total
	for i := int64(1); i <= 5; i++ {
		if got := s.Add(uint64(i*13), 1); got != i {
			t.Fatalf("Add #%d returned %d", i, got)
		}
	}
}

func TestStripedOpsPackedCounters(t *testing.T) {
	s := NewStriped(8)
	const workers, iters = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s.AddOp(id*7919+uint64(i), 1)
				if i%2 == 0 {
					s.AddOp(uint64(i), -1)
				}
				if i%4 == 0 {
					s.AddOp(uint64(i)*31, 0) // value update: op, no net change
				}
			}
		}(uint64(g))
	}
	wg.Wait()
	wantNet := int64(workers * (iters - iters/2))
	wantOps := int64(workers * (iters + iters/2 + iters/4))
	if got := s.Net(); got != wantNet {
		t.Fatalf("Net = %d, want %d", got, wantNet)
	}
	if got := s.Ops(); got != wantOps {
		t.Fatalf("Ops = %d, want %d", got, wantOps)
	}
}

func TestStripedOpsBalancedTrafficAdvances(t *testing.T) {
	// The blind spot the packed counter exists to close: perfectly balanced
	// traffic leaves the net sum unchanged but must advance the op count.
	s := NewStriped(4)
	before := s.Ops()
	for i := 0; i < 1000; i++ {
		s.AddOp(uint64(i), 1)
		s.AddOp(uint64(i), -1)
	}
	if got := s.Net(); got != 0 {
		t.Fatalf("Net = %d after balanced traffic, want 0", got)
	}
	if got := s.Ops(); got != before+2000 {
		t.Fatalf("Ops = %d, want %d", got, before+2000)
	}
}

func TestStripedOpsNegativeNetTransient(t *testing.T) {
	// A delete observed before its matching insert drives the net negative;
	// the borrow into the op half must not corrupt either counter once the
	// insert lands.
	s := NewStriped(1)
	s.AddOp(1, -1)
	if got := s.Net(); got != -1 {
		t.Fatalf("Net = %d mid-transient, want -1", got)
	}
	if got := s.Ops(); got != 1 {
		t.Fatalf("Ops = %d mid-transient, want 1", got)
	}
	s.AddOp(2, 1)
	if got := s.Net(); got != 0 {
		t.Fatalf("Net = %d settled, want 0", got)
	}
	if got := s.Ops(); got != 2 {
		t.Fatalf("Ops = %d settled, want 2", got)
	}
}

func TestStripedOpsReturnIsCellOpCount(t *testing.T) {
	s := NewStriped(1) // single cell: AddOp returns the running op count
	deltas := []int64{1, -1, 0, 1, -1}
	for i, d := range deltas {
		if got := s.AddOp(uint64(i*13), d); got != int64(i+1) {
			t.Fatalf("AddOp #%d returned %d, want %d", i, got, i+1)
		}
	}
}
