// Package core implements the paper's primary contribution: the OPTIK-lock
// abstraction, which merges lock acquisition with version-number validation
// in a single compare-and-swap (§3.2).
//
// Two implementations are provided, exactly as in the paper:
//
//   - Lock: on top of versioned locks — a single 64-bit counter where an odd
//     value means locked (Figure 4). This is the default used by all data
//     structures.
//   - TicketLock: on top of ticket locks — 32-bit next/current halves packed
//     into one 64-bit word. It additionally exposes the queue length
//     (NumQueued) and proportional backoff, the properties the victim-queue
//     technique (§5.4) builds on.
//
// The key operation is TryLockVersion(v): it acquires the lock iff the lock
// is free AND its version still equals v, in one CAS. A thread therefore
// never waits behind a lock only to fail validation afterwards — the waste
// the lock-then-validate pattern of Figure 1 suffers from.
package core

import (
	"sync/atomic"

	"github.com/optik-go/optik/internal/backoff"
)

// Version is a snapshot of an OPTIK lock's version number, obtained from
// GetVersion or GetVersionWait and later passed to TryLockVersion or
// LockVersion for validation.
type Version uint64

// Init is the version of a freshly initialized (unlocked, never acquired)
// versioned OPTIK lock, the OPTIK_INIT of the paper.
const Init Version = 0

// lockedBit marks a versioned lock as held: odd values are locked.
const lockedBit = 1

// IsLocked reports whether a versioned-lock version value corresponds to a
// held lock (odd values are locked).
func (v Version) IsLocked() bool { return v&lockedBit != 0 }

// Same reports whether two version snapshots are equal
// (optik_is_same_version).
func (v Version) Same(o Version) bool { return v == o }

// Lock is an OPTIK lock built on a versioned lock: a single 64-bit counter.
// Even values mean unlocked; odd values mean locked. Acquisition CASes the
// current even value v to v+1; release increments again to v+2, so every
// completed critical section advances the version by exactly 2 and the
// version doubles as a count of completed critical sections (Figure 3).
//
// The zero value is an unlocked lock with version Init.
type Lock struct {
	word atomic.Uint64
}

// GetVersion returns the current version (possibly a locked one). The load
// carries acquire semantics: no later access of the caller is reordered
// before it.
func (l *Lock) GetVersion() Version { return Version(l.word.Load()) }

// GetVersionWait spins until the lock is free and returns the (unlocked)
// version observed (optik_get_version_wait).
func (l *Lock) GetVersionWait() Version {
	for i := 0; ; i++ {
		v := Version(l.word.Load())
		if !v.IsLocked() {
			return v
		}
		backoff.Poll(i)
	}
}

// TryLockVersion acquires the lock iff it is free and its version equals
// target, in a single compare-and-swap. It returns whether the lock was
// acquired. A locked target never matches (the CAS would corrupt the odd
// value), and a fast-path load rejects stale versions without a CAS —
// both checks mirror lines 6-8 of Figure 4.
func (l *Lock) TryLockVersion(target Version) bool {
	if target.IsLocked() || Version(l.word.Load()) != target {
		return false
	}
	return l.word.CompareAndSwap(uint64(target), uint64(target)+1)
}

// LockVersion acquires the lock unconditionally (spinning while it is held)
// and returns whether the version it acquired equals target. A false return
// means a conflicting critical section committed since target was read; the
// caller holds the lock either way (optik_lock_version).
func (l *Lock) LockVersion(target Version) bool {
	for i := 0; ; i++ {
		cur := Version(l.word.Load())
		if cur.IsLocked() {
			backoff.Poll(i)
			continue
		}
		if l.word.CompareAndSwap(uint64(cur), uint64(cur)+1) {
			return cur == target
		}
	}
}

// Lock acquires the lock unconditionally, ignoring the version (plain
// spinlock usage; the paper's optik0 queue variant uses OPTIK locks this
// way for enqueues).
func (l *Lock) Lock() { l.LockVersion(^Version(0)) }

// Unlock increments the version and releases the lock. Only the lock holder
// may call it. The increment is the publication point: a changed version is
// how concurrent optimistic readers detect the modification.
func (l *Lock) Unlock() { l.word.Add(1) }

// Revert releases the lock restoring the version it had before acquisition,
// signalling that the critical section modified nothing (optik_revert).
// Only the lock holder may call it.
func (l *Lock) Revert() { l.word.Add(^uint64(0)) } // decrement by 1

// IsLockedNow reports whether the lock is held at this instant (racy; for
// monitoring and tests).
func (l *Lock) IsLockedNow() bool { return l.GetVersion().IsLocked() }
