// Package atomicfield implements the mixed-access detector `go vet` lacks:
// a struct field whose address is ever passed to a sync/atomic function
// must be accessed through sync/atomic everywhere. One plain load of such a
// field can tear (the compiler may read it twice, or in halves on 32-bit
// targets) and races with the atomic writers by definition; one plain store
// silently discards the synchronization every atomic reader paid for.
//
// The repo's own code uses the typed atomics (atomic.Uint64 and friends),
// which make mixed access unrepresentable — this analyzer is the fence
// that keeps it that way when a bare uint64-plus-atomic.AddUint64 counter
// sneaks in through a refactor or a benchmark harness.
//
// Scope: package-local (no cross-package facts). Plain *taking* of the
// address (&s.f) outside an atomic call is not flagged — the pointer may
// well feed a sync/atomic call elsewhere; flagging every escape would
// outlaw the common "pass &s.counter to a helper" shape.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/optik-go/optik/internal/analysis"
)

// Analyzer is the mixed plain/atomic field-access detector.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: "fields accessed via sync/atomic anywhere must never be " +
		"plain-read or plain-written elsewhere in the package",
	Run: run,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo

	// Pass 1: find every field whose address feeds a sync/atomic call, and
	// remember the selector nodes of those sanctioned accesses.
	atomicUse := map[*types.Var]token.Pos{} // field → first atomic use
	sanctioned := map[ast.Node]bool{}       // the &x.f selectors inside atomic calls
	pass.Preorder(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		path, name, ok := analysis.PkgFuncCall(info, call)
		if !ok || path != "sync/atomic" || !isAtomicOpName(name) {
			return true
		}
		for _, arg := range call.Args {
			un, ok := arg.(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			sel, ok := un.X.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			field := fieldOf(info, sel)
			if field == nil {
				continue
			}
			if _, seen := atomicUse[field]; !seen {
				atomicUse[field] = sel.Pos()
			}
			sanctioned[sel] = true
		}
		return true
	})
	if len(atomicUse) == 0 {
		return nil
	}

	// Pass 2: every other access of those fields is a violation — selector
	// reads and writes, and composite-literal field initializers. Bare
	// address-taking is allowed (see package doc).
	pass.Preorder(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if sel, ok := n.X.(*ast.SelectorExpr); ok {
					// Address-taking: never a tearing access in itself.
					sanctioned[sel] = true
				}
			}
		case *ast.SelectorExpr:
			if sanctioned[n] {
				return true
			}
			field := fieldOf(info, n)
			if field == nil {
				return true
			}
			if pos, ok := atomicUse[field]; ok {
				pass.Reportf(n.Pos(),
					"plain access of field %s, which is accessed with sync/atomic at %s; use sync/atomic consistently",
					field.Name(), pass.Fset.Position(pos))
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				id, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				field, ok := info.Uses[id].(*types.Var)
				if !ok || !field.IsField() {
					continue
				}
				if pos, ok := atomicUse[field]; ok {
					pass.Reportf(kv.Pos(),
						"composite literal writes field %s plainly, which is accessed with sync/atomic at %s",
						field.Name(), pass.Fset.Position(pos))
				}
			}
		}
		return true
	})
	return nil
}

// isAtomicOpName matches the function-style sync/atomic API
// (LoadUint64, StoreInt32, AddUintptr, SwapPointer, CompareAndSwap...).
func isAtomicOpName(name string) bool {
	for _, prefix := range []string{"Load", "Store", "Add", "And", "Or", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// fieldOf resolves sel to the struct field it selects, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil
	}
	v, ok := selection.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}
