package atomicfield_test

import (
	"testing"

	"github.com/optik-go/optik/internal/analysis/analysistest"
	"github.com/optik-go/optik/internal/analysis/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, ".", atomicfield.Analyzer, "a")
}
