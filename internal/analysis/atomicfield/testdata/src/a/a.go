// Package a seeds atomicfield violations: the counter field is managed
// with sync/atomic in one place and accessed plainly in others.
package a

import "sync/atomic"

type stats struct {
	counter uint64
	plain   uint64
}

func (s *stats) bump() {
	atomic.AddUint64(&s.counter, 1) // establishes the atomic discipline
}

func (s *stats) readRacy() uint64 {
	return s.counter // want `plain access of field counter`
}

func (s *stats) resetRacy() {
	s.counter = 0 // want `plain access of field counter`
	s.plain = 0   // fine: never touched atomically
}

func (s *stats) readSafe() uint64 {
	return atomic.LoadUint64(&s.counter)
}

func newStats() *stats {
	return &stats{
		counter: 1, // want `composite literal writes field counter plainly`
		plain:   2,
	}
}

func addrEscape(s *stats) *uint64 {
	return &s.counter // allowed: the pointer may feed sync/atomic elsewhere
}

type typed struct {
	n atomic.Uint64
}

func (t *typed) ok() uint64 {
	// Typed atomics cannot be mixed-accessed; nothing to flag.
	return t.n.Load()
}
