package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Sizes types.Sizes
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// Load resolves patterns with the go tool from dir and type-checks each
// matched package from source, importing dependencies from compiled export
// data (`go list -export` materializes it in the build cache, offline).
// This is the standalone-runner and test path; `go vet -vettool` supplies
// the same inputs through its config file instead (unitchecker.go).
func Load(dir string, patterns ...string) ([]*Package, error) {
	exports, targets, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := ExportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
	var pkgs []*Package
	for _, t := range targets {
		var files []string
		for _, gf := range t.GoFiles {
			files = append(files, filepath.Join(t.Dir, gf))
		}
		pkg, err := CheckPackage(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goList resolves patterns plus their full dependency closure, building
// export data for everything as a side effect, and returns the export-file
// map and the (non-dep-only, non-std) target packages.
func goList(dir string, patterns ...string) (map[string]string, []listedPackage, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	exports := map[string]string{}
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	return exports, targets, nil
}

// ListExportData returns the import-path → export-data-file map for the
// dependency closure of patterns (used by analysistest to resolve std
// imports of testdata packages).
func ListExportData(dir string, patterns ...string) (map[string]string, error) {
	exports, _, err := goList(dir, patterns...)
	return exports, err
}

// ExportImporter returns a types.Importer that reads gc export data files
// resolved by lookup (import path → export file path).
func ExportImporter(fset *token.FileSet, lookup func(path string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := lookup(path)
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// CheckPackage parses files and type-checks them as package path, resolving
// imports through imp.
func CheckPackage(fset *token.FileSet, path string, files []string, imp types.Importer) (*Package, error) {
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp, Sizes: TargetSizes()}
	tpkg, err := conf.Check(path, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{
		Path:  path,
		Fset:  fset,
		Files: syntax,
		Types: tpkg,
		Info:  info,
		Sizes: conf.Sizes,
	}, nil
}

// TargetSizes returns the gc layout rules for the build target, so
// padcheck's offsets match what the compiler will emit.
func TargetSizes() types.Sizes {
	arch := os.Getenv("GOARCH")
	if arch == "" {
		arch = runtime.GOARCH
	}
	if s := types.SizesFor("gc", arch); s != nil {
		return s
	}
	return types.SizesFor("gc", "amd64")
}
