package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// suppressPrefix is the escape hatch: a comment of the form
//
//	//lint:optik <analyzer>[,<analyzer>...] <reason>
//
// on (or immediately above) a line silences those analyzers' diagnostics
// for that line. The reason is mandatory by convention and enforced by
// review, not by machine; the fleet exists to make these rare.
const suppressPrefix = "//lint:optik"

// RunAnalyzers runs every analyzer over every package, applies //lint:optik
// suppressions, and returns the surviving diagnostics in positional order.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ds, err := runPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// runPackage runs the fleet over one package.
func runPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	sup := suppressions(pkg)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Sizes:     pkg.Sizes,
			report: func(d Diagnostic) {
				if !sup.covers(d) {
					out = append(out, d)
				}
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: running %s: %v", pkg.Path, a.Name, err)
		}
	}
	return out, nil
}

// suppressionIndex records, per file line, which analyzers are silenced.
type suppressionIndex map[string]map[int][]string

func (s suppressionIndex) covers(d Diagnostic) bool {
	for _, name := range s[d.Pos.Filename][d.Pos.Line] {
		if name == d.Analyzer || name == "all" {
			return true
		}
	}
	return false
}

// suppressions scans a package's comments for //lint:optik directives.
// A directive covers its own line and the line below it, so it works both
// as a trailing comment and as a line of its own above the flagged code.
func suppressions(pkg *Package) suppressionIndex {
	idx := suppressionIndex{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, suppressPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, suppressPrefix)
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				names := strings.Split(fields[0], ",")
				pos := pkg.Fset.Position(c.Pos())
				lines := idx[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					idx[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], names...)
				lines[pos.Line+1] = append(lines[pos.Line+1], names...)
			}
		}
	}
	return idx
}
