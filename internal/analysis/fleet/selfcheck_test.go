package fleet_test

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/optik-go/optik/internal/analysis"
	"github.com/optik-go/optik/internal/analysis/fleet"
)

// TestRepoSelfCheck runs the whole analyzer fleet over the live repo
// packages and requires zero diagnostics. This is the tier-1 shadow of
// the CI `go vet -vettool=optik-vet` gate: a change that breaks an
// OPTIK invariant fails `go test ./...` even before CI runs the real
// vet driver.
func TestRepoSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool; skipped in -short")
	}
	root := moduleRoot(t)
	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading repo packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded zero packages")
	}
	diags, err := analysis.RunAnalyzers(pkgs, fleet.Analyzers)
	if err != nil {
		t.Fatalf("running fleet: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
	}
	t.Logf("fleet of %d analyzers clean over %d packages", len(fleet.Analyzers), len(pkgs))
}

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}
