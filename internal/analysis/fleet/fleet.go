// Package fleet is the registry of this repo's OPTIK analyzers — the
// single list shared by cmd/optik-vet (both standalone and `go vet
// -vettool` modes) and the self-check test that runs the fleet over the
// live repo packages.
package fleet

import (
	"github.com/optik-go/optik/internal/analysis"
	"github.com/optik-go/optik/internal/analysis/atomicfield"
	"github.com/optik-go/optik/internal/analysis/bufguard"
	"github.com/optik-go/optik/internal/analysis/optikvalidate"
	"github.com/optik-go/optik/internal/analysis/padcheck"
	"github.com/optik-go/optik/internal/analysis/qsbrguard"
)

// Analyzers is the full fleet, in reporting order.
var Analyzers = []*analysis.Analyzer{
	atomicfield.Analyzer,
	bufguard.Analyzer,
	optikvalidate.Analyzer,
	padcheck.Analyzer,
	qsbrguard.Analyzer,
}
