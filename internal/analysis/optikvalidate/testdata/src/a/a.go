// Package a seeds optikvalidate violations around a stub OPTIK lock —
// including the exact chain-hit shape this repo once shipped (an atomic
// value returned on a key match without re-validating the bucket
// version).
package a

import "sync/atomic"

// Version mirrors core.Version (matched by method names, not import path).
type Version uint64

// IsLocked reports the version's lock bit.
func (v Version) IsLocked() bool { return v&1 != 0 }

// Same compares two versions.
func (v Version) Same(o Version) bool { return v == o }

// Lock is a stub OPTIK lock.
type Lock struct {
	word atomic.Uint64
}

// GetVersion returns the current version.
func (l *Lock) GetVersion() Version { return Version(l.word.Load()) }

// GetVersionWait returns an unlocked version.
func (l *Lock) GetVersionWait() Version { return Version(l.word.Load()) }

// TryLockVersion validates and locks in one CAS.
func (l *Lock) TryLockVersion(v Version) bool { return l.word.CompareAndSwap(uint64(v), uint64(v)+1) }

// LockVersion always acquires; reports whether v was still current.
func (l *Lock) LockVersion(v Version) bool {
	return l.word.Add(1)&1 == 1 && Version(l.word.Load()-1) == v
}

// Lock spins until acquired.
func (l *Lock) Lock() { l.word.Add(1) }

// Unlock publishes a new version.
func (l *Lock) Unlock() { l.word.Add(1) }

// Revert releases without changing the version.
func (l *Lock) Revert() { l.word.Add(^uint64(0)) }

type node struct {
	key  uint64
	val  atomic.Uint64
	next atomic.Pointer[node]
}

type bucket struct {
	lock Lock
	head atomic.Pointer[node]
	slot atomic.Uint64
}

// goodChain is the fixed idiom: load, validate, then trust.
func goodChain(b *bucket, key uint64) (uint64, bool) {
	vn := b.lock.GetVersionWait()
	for cur := b.head.Load(); cur != nil; cur = cur.next.Load() {
		if cur.key == key {
			val := cur.val.Load()
			if b.lock.GetVersion().Same(vn) {
				return val, true
			}
			return 0, false
		}
	}
	if b.lock.GetVersion().Same(vn) {
		return 0, false
	}
	return 0, false
}

// buggyChain is the shipped chain-hit bug: a hit deep in the chain
// returns the value without re-validating the bucket version.
func buggyChain(b *bucket, key uint64) (uint64, bool) {
	vn := b.lock.GetVersionWait()
	for cur := b.head.Load(); cur != nil; cur = cur.next.Load() {
		if cur.key == key {
			return cur.val.Load(), true // want `atomic read returned without re-validating the version snapshot`
		}
	}
	if b.lock.GetVersion().Same(vn) {
		return 0, false
	}
	return 0, false
}

// buggyTainted returns a local read optimistically, validated only
// before the read — the validation proves nothing about it.
func buggyTainted(b *bucket) (uint64, bool) {
	vn := b.lock.GetVersionWait()
	if !b.lock.GetVersion().Same(vn) {
		return 0, false
	}
	val := b.slot.Load()
	return val, true // want `value read optimistically is returned without re-validating`
}

// loadAfterValidate reads inside the validated branch: the Same proved
// state up to the compare, not the load after it.
func loadAfterValidate(b *bucket) (uint64, bool) {
	vn := b.lock.GetVersion()
	if b.lock.GetVersion().Same(vn) {
		return b.slot.Load(), true // want `atomic read returned without re-validating the version snapshot`
	}
	return 0, false
}

// deadSnapshot takes a version and never validates or hands it off.
func deadSnapshot(b *bucket) uint64 {
	vn := b.lock.GetVersion() // want `version snapshot vn is never validated`
	if vn.IsLocked() {
		return 0
	}
	return 0
}

// lockedRead reads inside the critical section: safe by exclusion.
func lockedRead(b *bucket) (uint64, bool) {
	for {
		vn := b.lock.GetVersion()
		if !b.lock.TryLockVersion(vn) {
			continue
		}
		val := b.slot.Load()
		b.lock.Unlock()
		return val, true
	}
}

// lockVersionPath mirrors the queue's Optik0 dequeue: LockVersion
// acquires on both outcomes, so both returns are under the lock.
func lockVersionPath(b *bucket) (uint64, bool) {
	vn := b.lock.GetVersionWait()
	val := b.slot.Load()
	if b.lock.LockVersion(vn) {
		b.lock.Unlock()
		return val, true
	}
	val = b.slot.Load()
	b.lock.Unlock()
	return val, true
}

// traverse hands the snapshot and a node pointer to the caller to
// validate — the hand-over-hand idiom, not a violation.
func traverse(b *bucket) (*node, Version) {
	cur := b.head.Load()
	curv := b.lock.GetVersion()
	return cur, curv
}

// searchNoSnap never snapshots a version: deliberately non-validating
// designs are out of optikvalidate's scope.
func searchNoSnap(b *bucket, key uint64) (uint64, bool) {
	for cur := b.head.Load(); cur != nil; cur = cur.next.Load() {
		if cur.key == key {
			return cur.val.Load(), true
		}
	}
	return 0, false
}
