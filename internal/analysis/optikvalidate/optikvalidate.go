// Package optikvalidate checks the OPTIK validation discipline: an
// optimistic section that snapshots a lock version (GetVersion /
// GetVersionWait) must re-validate before its reads are trusted. Two
// rules:
//
//  1. a version snapshot that is never validated — never fed to
//     TryLockVersion/LockVersion/Same or compared with ==/!= — and never
//     handed off (returned, stored, passed along for a caller to
//     validate, as the hand-over-hand traversals do) is a dead snapshot:
//     the optimistic read it opened is trusted unvalidated;
//
//  2. returning data read from protected state (an atomic .Load, or a
//     local derived from one) without an intervening validation and
//     outside any critical section. This is exactly the chain-hit bug
//     this repo once shipped: the hashmap's chain walk returned
//     cur.val.Load() on a key match without re-checking the bucket
//     version, so a racing migration could hand back a value from a
//     node that was already unlinked and recycled.
//
// A successful validation (TryLockVersion, LockVersion, a Same/==
// version compare) clears the taint: reads made before it are proven
// consistent, and reads made inside a critical section (between a
// validated lock acquisition and Unlock/Revert) are safe by mutual
// exclusion. Only functions that take version snapshots are examined —
// deliberately non-validating reads (mark-bit designs, monitoring
// Len()s) have no snapshot and are out of scope. Pointer-typed results
// are exempt: handing a node pointer plus its version to the caller for
// validation is the traversal idiom, not a bug. *_test.go files are
// skipped (tests stage deliberate violations).
package optikvalidate

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/optik-go/optik/internal/analysis"
)

// Analyzer is the OPTIK validate-before-trust checker.
var Analyzer = &analysis.Analyzer{
	Name: "optikvalidate",
	Doc: "optimistic reads opened by a version snapshot must be " +
		"re-validated (or made under the validated lock) before their " +
		"results are returned",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		// Every function body — declarations and literals — is analyzed
		// independently; nested literals are skipped by the scan itself.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					analyzeFunc(pass, n.Body)
				}
			case *ast.FuncLit:
				analyzeFunc(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// snapshotCall matches R.GetVersion() / R.GetVersionWait().
func snapshotCall(info *types.Info, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	_, name, ok := analysis.MethodCall(info, call)
	return ok && (name == "GetVersion" || name == "GetVersionWait")
}

// validationName matches the version-validating methods.
func validationName(name string) bool {
	return name == "TryLockVersion" || name == "LockVersion" || name == "Same"
}

// containsValidation reports whether the expression tree validates a
// version: a validation method call, or an ==/!= whose operand is a
// snapshot variable or a fresh GetVersion read.
func containsValidation(info *types.Info, e ast.Expr, snaps map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if _, name, ok := analysis.MethodCall(info, n); ok && validationName(name) {
				found = true
			}
		case *ast.BinaryExpr:
			if n.Op == token.EQL || n.Op == token.NEQ {
				for _, op := range []ast.Expr{n.X, n.Y} {
					if snapshotCall(info, op) {
						found = true
					}
					if id, ok := op.(*ast.Ident); ok && snaps[info.Uses[id]] {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

func analyzeFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo

	// Pass 1: collect snapshot variables (gate for both rules).
	snaps := map[types.Object]bool{}
	snapPos := map[types.Object]token.Pos{}
	inspectOwn(body, func(n ast.Node) {
		st, ok := n.(*ast.AssignStmt)
		if !ok || len(st.Lhs) != len(st.Rhs) {
			return
		}
		for i, r := range st.Rhs {
			if !snapshotCall(info, r) {
				continue
			}
			if id, ok := st.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil && !snaps[obj] {
					snaps[obj] = true
					snapPos[obj] = id.Pos()
				}
			}
		}
	})
	if len(snaps) == 0 {
		return
	}

	checkDeadSnapshots(pass, body, snaps, snapPos)

	s := &vscan{pass: pass, info: info, snaps: snaps, tainted: map[types.Object]bool{}}
	s.scan(body.List, 0)
}

// inspectOwn walks the body without descending into nested function
// literals (they are analyzed as their own functions).
func inspectOwn(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// checkDeadSnapshots implements rule 1: every snapshot must either reach
// a validation or be handed off for someone else to validate.
func checkDeadSnapshots(pass *analysis.Pass, body *ast.BlockStmt, snaps map[types.Object]bool, snapPos map[types.Object]token.Pos) {
	info := pass.TypesInfo
	ok := map[types.Object]bool{}

	mark := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			if id, isId := n.(*ast.Ident); isId {
				if obj := info.Uses[id]; obj != nil && snaps[obj] {
					ok[obj] = true
				}
			}
			return true
		})
	}

	inspectOwn(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if _, name, isM := analysis.MethodCall(info, n); isM && validationName(name) {
				// Snapshot anywhere in a validation call (argument or
				// receiver chain) is the point of the snapshot.
				mark(n)
				return
			}
			// Hand-off: passed as an argument for the callee to validate.
			for _, a := range n.Args {
				mark(a)
			}
		case *ast.BinaryExpr:
			if n.Op == token.EQL || n.Op == token.NEQ {
				mark(n.X)
				mark(n.Y)
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				mark(r) // caller validates (hand-over-hand traversal)
			}
		case *ast.AssignStmt:
			// Flowing into another variable, field, or slot hands the
			// snapshot off; its consumer is responsible for validating.
			for _, r := range n.Rhs {
				if !snapshotCall(info, r) {
					mark(r)
				}
			}
		case *ast.SendStmt:
			mark(n.Value)
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				mark(e)
			}
		}
	})

	for obj := range snaps {
		if !ok[obj] {
			pass.Reportf(snapPos[obj],
				"version snapshot %s is never validated: feed it to TryLockVersion/LockVersion/Same (or hand it off) before trusting the optimistic read it opened", obj.Name())
		}
	}
}

// vscan is the rule-2 linear walk: taint locals read from atomics outside
// critical sections, clear on validation, flag unvalidated returns.
type vscan struct {
	pass    *analysis.Pass
	info    *types.Info
	snaps   map[types.Object]bool
	tainted map[types.Object]bool
}

func (s *vscan) scan(stmts []ast.Stmt, depth int) int {
	for _, st := range stmts {
		depth = s.scanStmt(st, depth)
	}
	return depth
}

func (s *vscan) scanStmt(st ast.Stmt, depth int) int {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if _, name, isM := analysis.MethodCall(s.info, call); isM {
				switch name {
				case "Lock":
					return depth + 1
				case "Unlock", "Revert":
					if depth > 0 {
						return depth - 1
					}
					return 0
				}
			}
		}
		if containsValidation(s.info, st.X, s.snaps) {
			s.clearTaints()
		}
		return depth

	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			if containsValidation(s.info, r, s.snaps) {
				s.clearTaints()
			}
		}
		for i, l := range st.Lhs {
			id, ok := l.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := s.info.Defs[id]
			if obj == nil {
				obj = s.info.Uses[id]
			}
			if obj == nil || s.snaps[obj] {
				continue
			}
			var rhs ast.Expr
			if len(st.Rhs) == len(st.Lhs) {
				rhs = st.Rhs[i]
			} else if len(st.Rhs) == 1 {
				rhs = st.Rhs[0]
			}
			if rhs == nil {
				continue
			}
			if depth == 0 && (s.hasAtomicLoad(rhs) || s.refsTainted(rhs)) {
				s.tainted[obj] = true
			} else {
				delete(s.tainted, obj)
			}
		}
		return depth

	case *ast.ReturnStmt:
		if depth > 0 {
			return depth
		}
		for _, r := range st.Results {
			if !s.isBasicValue(r) {
				continue
			}
			if s.hasAtomicLoad(r) {
				s.pass.Reportf(r.Pos(),
					"atomic read returned without re-validating the version snapshot: a racing writer may have retired this state (validate with Same/TryLockVersion first)")
				continue
			}
			if s.refsTainted(r) {
				s.pass.Reportf(r.Pos(),
					"value read optimistically is returned without re-validating the version snapshot: validate with Same/TryLockVersion before trusting it")
			}
		}
		return depth

	case *ast.IfStmt:
		if st.Init != nil {
			depth = s.scanStmt(st.Init, depth)
		}
		try, lockv, neg := s.condLocks(st.Cond)
		if containsValidation(s.info, st.Cond, s.snaps) {
			s.clearTaints()
		}
		bodyDepth := depth
		afterDepth := depth
		switch {
		case lockv:
			// LockVersion acquires on both outcomes.
			bodyDepth, afterDepth = depth+1, depth+1
		case try && !neg:
			bodyDepth = depth + 1
		case try && neg:
			// if !TryLockVersion(v) { retry } — fallthrough holds the lock.
			afterDepth = depth + 1
		}
		s.scan(st.Body.List, bodyDepth)
		if st.Else != nil {
			s.scanStmt(st.Else, depth)
		}
		return afterDepth

	case *ast.BlockStmt:
		return s.scan(st.List, depth)
	case *ast.LabeledStmt:
		return s.scanStmt(st.Stmt, depth)

	case *ast.ForStmt:
		if st.Init != nil {
			depth = s.scanStmt(st.Init, depth)
		}
		if st.Post != nil {
			s.scanStmt(st.Post, depth)
		}
		s.scan(st.Body.List, depth)
		return depth
	case *ast.RangeStmt:
		s.scan(st.Body.List, depth)
		return depth

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var blocks *ast.BlockStmt
		switch st := st.(type) {
		case *ast.SwitchStmt:
			blocks = st.Body
		case *ast.TypeSwitchStmt:
			blocks = st.Body
		case *ast.SelectStmt:
			blocks = st.Body
		}
		for _, c := range blocks.List {
			switch c := c.(type) {
			case *ast.CaseClause:
				s.scan(c.Body, depth)
			case *ast.CommClause:
				s.scan(c.Body, depth)
			}
		}
		return depth

	default:
		return depth
	}
}

// condLocks classifies a condition's lock acquisition: try=TryLockVersion
// present, lockv=LockVersion present, neg=the acquiring call is negated.
func (s *vscan) condLocks(cond ast.Expr) (try, lockv, neg bool) {
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.NOT {
				if hasLockingCall(s.info, n.X) {
					neg = true
				}
			}
		case *ast.CallExpr:
			if _, name, ok := analysis.MethodCall(s.info, n); ok {
				switch name {
				case "TryLockVersion":
					try = true
				case "LockVersion":
					lockv = true
				}
			}
		}
		return true
	})
	return try, lockv, neg
}

func hasLockingCall(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, name, isM := analysis.MethodCall(info, call); isM && (name == "TryLockVersion" || name == "LockVersion") {
				found = true
			}
		}
		return !found
	})
	return found
}

func (s *vscan) clearTaints() {
	for k := range s.tainted {
		delete(s.tainted, k)
	}
}

// hasAtomicLoad reports whether the expression performs a .Load() on a
// typed atomic (sync/atomic value type).
func (s *vscan) hasAtomicLoad(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, name, ok := analysis.MethodCall(s.info, call)
		if ok && name == "Load" && analysis.IsAtomicType(analysis.Deref(s.info.TypeOf(recv))) {
			found = true
		}
		return !found
	})
	return found
}

// refsTainted reports whether the expression references a tainted local.
func (s *vscan) refsTainted(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && s.tainted[s.info.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

// isBasicValue reports whether the expression's type is a value type
// (basic-kinded). Pointer results are the traversal hand-off idiom and
// are validated by the caller.
func (s *vscan) isBasicValue(e ast.Expr) bool {
	t := s.info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Basic)
	return ok
}
