package optikvalidate_test

import (
	"testing"

	"github.com/optik-go/optik/internal/analysis/analysistest"
	"github.com/optik-go/optik/internal/analysis/optikvalidate"
)

func TestOptikValidate(t *testing.T) {
	analysistest.Run(t, ".", optikvalidate.Analyzer, "a")
}
