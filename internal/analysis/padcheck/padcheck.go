// Package padcheck machine-checks cache-line padding intent. The repo's
// hot structs encode layout promises in their shape — PaddedTAS is "one
// lock, one line", core.Striped's cells are "one counter cell per line",
// a bucket is "one bucket, one line" — and those promises are enforced
// today by hand-maintained `[CacheLineSize - unsafe.Sizeof(X{})]byte`
// arithmetic that silently rots when a field is added in the wrong place.
// padcheck recomputes the layout with the compiler's own sizing rules and
// flags:
//
//  1. a Padded*-named struct whose size is not a multiple of 64 — its
//     slices no longer give each element private lines;
//  2. a pad-bearing struct (one containing a CacheLinePad, a blank
//     byte-array pad, or a Padded* field) whose atomic fields would share
//     a cache line with the atomic fields of an adjacent slice element —
//     the false sharing the pad was added to prevent;
//  3. a pad-bearing struct larger than one line in which two distinct
//     atomic fields land on the same line — adjacent hot atomics inside
//     one element.
//
// One-line structs (size ≤ 64, e.g. the hashmap bucket) deliberately pack
// their atomics together, so rule 3 exempts them; their invariant is rule
// 2's stride separation.
package padcheck

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"github.com/optik-go/optik/internal/analysis"
)

// cacheLine is the coherence granularity the repo pads to
// (core.CacheLineSize).
const cacheLine = 64

// Analyzer is the padding/false-sharing layout checker.
var Analyzer = &analysis.Analyzer{
	Name: "padcheck",
	Doc: "structs that declare cache-line padding intent (CacheLinePad, " +
		"blank byte-array pads, Padded* names) must actually isolate their " +
		"atomic fields onto private lines",
	Run: run,
}

func run(pass *analysis.Pass) error {
	pass.Preorder(func(n ast.Node) bool {
		spec, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		if spec.TypeParams != nil {
			return true // generic: no concrete layout to check
		}
		if _, ok := spec.Type.(*ast.StructType); !ok {
			return true
		}
		obj := pass.TypesInfo.Defs[spec.Name]
		if obj == nil {
			return true
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok || st.NumFields() == 0 {
			return true
		}
		check(pass, spec, obj.Name(), st)
		return true
	})
	return nil
}

type span struct {
	name string
	off  int64
	size int64
}

func check(pass *analysis.Pass, spec *ast.TypeSpec, name string, st *types.Struct) {
	padded := strings.HasPrefix(name, "Padded")
	size := pass.Sizes.Sizeof(st)

	fields := make([]*types.Var, st.NumFields())
	for i := range fields {
		fields[i] = st.Field(i)
	}
	offsets := pass.Sizes.Offsetsof(fields)

	hasPad := false
	var hot []span // atomic leaves, precise offsets
	for i, f := range fields {
		if isPadMarker(f) {
			hasPad = true
		}
		if _, fn := analysis.NamedOf(f.Type()); strings.HasPrefix(fn, "Padded") {
			hasPad = true
		}
		hot = append(hot, atomicSpans(pass.Sizes, f.Type(), f.Name(), offsets[i])...)
	}

	// Rule 1: the Padded* naming contract.
	if padded && size%cacheLine != 0 {
		pass.Reportf(spec.Pos(),
			"%s is %d bytes, not a multiple of the %d-byte cache line its Padded name promises",
			name, size, cacheLine)
	}
	if !hasPad && !padded {
		return
	}

	// Rule 2: adjacent slice elements must not share lines between their
	// atomic fields (stride = struct size, the array element stride).
	if bad := strideOverlap(hot, size); bad != nil && size > 0 {
		pass.Reportf(spec.Pos(),
			"adjacent %s values false-share: %s (offset %d) and %s of the next element (offset %d) land on one cache line (struct size %d)",
			name, bad[0].name, bad[0].off, bad[1].name, bad[1].off+size, size)
	}

	// Rule 3: within a multi-line padded struct, two distinct atomic
	// fields on one line defeat the padding.
	if size > cacheLine {
		for i := 0; i < len(hot); i++ {
			for j := i + 1; j < len(hot); j++ {
				if logicalName(hot[i]) == logicalName(hot[j]) {
					continue // leaves of one field (array elements, nested struct): packing them is that field's own business
				}
				if linesOverlap(hot[i], hot[j], 0) {
					pass.Reportf(spec.Pos(),
						"fields %s (offset %d) and %s (offset %d) of padded struct %s share a cache line: false sharing under independent writers",
						hot[i].name, hot[i].off, hot[j].name, hot[j].off, name)
					return
				}
			}
		}
	}
}

// logicalName strips an array-element suffix: inline[2] → inline.
func logicalName(s span) string {
	if i := strings.IndexByte(s.name, '['); i >= 0 {
		return s.name[:i]
	}
	return s.name
}

// strideOverlap reports the first pair of atomic spans that collide when
// the whole struct repeats at the given stride, or nil.
func strideOverlap(hot []span, stride int64) []span {
	for _, a := range hot {
		for _, b := range hot {
			if linesOverlap(a, b, stride) {
				return []span{a, b}
			}
		}
	}
	return nil
}

// linesOverlap reports whether span a and span b shifted by delta occupy a
// common cache line.
func linesOverlap(a, b span, delta int64) bool {
	aFirst, aLast := a.off/cacheLine, (a.off+a.size-1)/cacheLine
	bFirst, bLast := (b.off+delta)/cacheLine, (b.off+delta+b.size-1)/cacheLine
	return aFirst <= bLast && bFirst <= aLast
}

// isPadMarker matches the repo's padding idioms: a field of a type named
// CacheLinePad, or a blank field whose type is a byte array.
func isPadMarker(f *types.Var) bool {
	if _, name := analysis.NamedOf(f.Type()); name == "CacheLinePad" {
		return true
	}
	if f.Name() != "_" {
		return false
	}
	arr, ok := f.Type().Underlying().(*types.Array)
	if !ok {
		return false
	}
	basic, ok := arr.Elem().Underlying().(*types.Basic)
	return ok && (basic.Kind() == types.Byte || basic.Kind() == types.Uint8)
}

// atomicSpans returns the byte spans of every typed-atomic leaf reachable
// inside t at the given base offset, labelled with the outermost field
// name. Arrays contribute every element (large arrays are treated as one
// opaque span to bound the work).
func atomicSpans(sizes types.Sizes, t types.Type, label string, base int64) []span {
	if analysis.IsAtomicType(t) {
		return []span{{name: label, off: base, size: sizes.Sizeof(t)}}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		var out []span
		fields := make([]*types.Var, u.NumFields())
		for i := range fields {
			fields[i] = u.Field(i)
		}
		offs := sizes.Offsetsof(fields)
		for i, f := range fields {
			out = append(out, atomicSpans(sizes, f.Type(), label, base+offs[i])...)
		}
		return out
	case *types.Array:
		if !analysis.ContainsAtomic(u.Elem()) {
			return nil
		}
		n := u.Len()
		if n > 64 {
			return []span{{name: label, off: base, size: sizes.Sizeof(t)}}
		}
		elem := sizes.Sizeof(u.Elem())
		// Array element stride equals the element size under gc alignment.
		var out []span
		for i := int64(0); i < n; i++ {
			out = append(out, atomicSpans(sizes, u.Elem(), fmt.Sprintf("%s[%d]", label, i), base+i*elem)...)
		}
		return out
	}
	return nil
}
