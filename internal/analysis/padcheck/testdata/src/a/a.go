// Package a seeds padcheck violations alongside the correct idioms they
// rot from. Offsets assume 64-bit gc layout, like the analyzer itself.
package a

import "sync/atomic"

// CacheLinePad mirrors core.CacheLinePad (padcheck matches by type name).
type CacheLinePad [64]byte

// goodCell is the striped-counter idiom: one atomic per >=64-byte stride.
type goodCell struct {
	n atomic.Int64
	_ CacheLinePad
}

// PaddedGood keeps the Padded* naming contract: exactly one line.
type PaddedGood struct {
	word atomic.Uint32
	_    [60]byte
}

// PaddedRotted grew a field after the hand-written pad arithmetic was
// sized, so the promise in the name is now a lie.
type PaddedRotted struct { // want `PaddedRotted is 72 bytes, not a multiple of the 64-byte cache line`
	word atomic.Uint32
	_    [60]byte
	oops uint64
}

// shortCell pads, but not enough: adjacent slice elements still share the
// line the pad was supposed to reserve.
type shortCell struct { // want `adjacent shortCell values false-share`
	n atomic.Int64
	_ [16]byte
}

// crowded is larger than a line and pad-bearing, yet parks two
// independently-written atomics on one line.
type crowded struct { // want `share a cache line: false sharing`
	a atomic.Uint64
	b atomic.Uint64
	_ CacheLinePad
}

// unitLine is a one-line struct (bucket-style): atomics share its single
// line by design, and the stride keeps elements apart. No diagnostics.
type unitLine struct {
	lock   atomic.Uint64
	head   atomic.Uint64
	pairs  [2]pair
	_      [8]byte
	unused uint64
}

type pair struct {
	k atomic.Uint64
	v atomic.Uint64
}

// unpadded structs are out of scope: no declared padding intent.
type unpadded struct {
	a atomic.Uint64
	b atomic.Uint64
}
