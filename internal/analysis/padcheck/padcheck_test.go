package padcheck_test

import (
	"testing"

	"github.com/optik-go/optik/internal/analysis/analysistest"
	"github.com/optik-go/optik/internal/analysis/padcheck"
)

func TestPadCheck(t *testing.T) {
	analysistest.Run(t, ".", padcheck.Analyzer, "a")
}
