package bufguard_test

import (
	"testing"

	"github.com/optik-go/optik/internal/analysis/analysistest"
	"github.com/optik-go/optik/internal/analysis/bufguard"
)

func TestBufGuard(t *testing.T) {
	analysistest.Run(t, ".", bufguard.Analyzer, "a")
}
