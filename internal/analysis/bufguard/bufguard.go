// Package bufguard checks tiered buffer-pool hygiene (server/bufpool.go).
// A buffer checked out of the pools — getReader, getWriter, getBytes,
// getCoalescer — must go back with the matching put on every path, or
// transfer ownership (stored into a struct like connState, returned,
// sent away). A dropped checkout is not a memory leak — the GC collects
// it — but it silently defeats the pooling that keeps the hot path at
// zero allocations per op, and when the checkout was charged to the
// server's buffersResident gauge the STATS `buffers_resident` proxy
// drifts upward forever.
//
// The repo idiom stores checkouts into connState fields and releases
// them in one place (releaseBuffers), which this analyzer treats as an
// ownership transfer; what it polices is the other shape — a local
// scratch checkout (`b := getBytes(n)`) that an early return forgets to
// put back. Matching is name-based (getX/putX pairs) so analysistest
// stubs work, mirroring qsbrguard.
//
// Functions in *_test.go files and the pool implementation itself
// (server/bufpool.go's own functions) are exempt.
package bufguard

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/optik-go/optik/internal/analysis"
)

// Analyzer is the buffer-pool checkout-hygiene checker.
var Analyzer = &analysis.Analyzer{
	Name: "bufguard",
	Doc: "pooled connection buffers must be returned with the matching " +
		"put on every path or transfer ownership",
	Run: run,
}

// pairs maps each pool checkout function to its return function.
var pairs = map[string]string{
	"getReader":    "putReader",
	"getWriter":    "putWriter",
	"getBytes":     "putBytes",
	"getCoalescer": "putCoalescer",
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.IsTestFile(fd.Pos()) {
				continue
			}
			// The pool's own get/put implementations handle raw
			// sync.Pool traffic; they are the mechanism, not a user.
			if _, isPool := pairs[fd.Name.Name]; isPool {
				continue
			}
			if isPutName(fd.Name.Name) {
				continue
			}
			analyzeFunc(pass, fd)
		}
	}
	return nil
}

func isPutName(name string) bool {
	for _, put := range pairs {
		if name == put {
			return true
		}
	}
	return false
}

// checkout is one tracked pool acquisition.
type checkout struct {
	obj     types.Object // the local variable holding the buffer
	put     string       // the matching put function's name
	acqStmt ast.Stmt
	acqPos  token.Pos
}

func analyzeFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	var outs []*checkout

	// Collect checkouts: `x := getX(...)` with x a plain local. Field
	// assignments (cs.r = getReader(...)) transfer ownership to the
	// struct and are not collected; closures own their checkouts
	// separately (the fleet keeps to directly-visible control flow).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		st, ok := n.(*ast.AssignStmt)
		if !ok || len(st.Lhs) != 1 || len(st.Rhs) != 1 {
			return true
		}
		id, ok := st.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return true
		}
		call, ok := st.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok {
			return true
		}
		if put, ok := pairs[fn.Name]; ok {
			outs = append(outs, &checkout{obj: obj, put: put, acqStmt: st, acqPos: st.Pos()})
		}
		return true
	})
	if len(outs) == 0 {
		return
	}

	for _, co := range outs {
		if escapes(info, fd.Body, co) {
			continue
		}
		s := &scanner{pass: pass, info: info, co: co}
		s.deferred = hasDeferredPut(info, fd.Body, co)
		held := s.scan(fd.Body.List, false)
		if held && !s.deferred {
			pass.Reportf(co.acqPos,
				"pooled buffer checked out here never returns to its pool; the checkout defeats pooling and strands its buffers_resident charge")
		}
	}
}

// scanner walks one function linearly tracking whether co is checked out.
type scanner struct {
	pass     *analysis.Pass
	info     *types.Info
	co       *checkout
	deferred bool
}

// scan processes a statement list and returns whether the buffer can
// still be checked out afterwards (conservative: out unless every path
// returned it).
func (s *scanner) scan(stmts []ast.Stmt, held bool) bool {
	for _, st := range stmts {
		held = s.scanStmt(st, held)
	}
	return held
}

func (s *scanner) scanStmt(st ast.Stmt, held bool) bool {
	if st == s.co.acqStmt {
		return true
	}
	switch st := st.(type) {
	case *ast.ExprStmt:
		if s.isPut(st.X) {
			return false
		}
		return held
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			if s.isPut(r) {
				return false
			}
		}
		return held
	case *ast.ReturnStmt:
		if held && !s.deferred {
			s.pass.Reportf(st.Pos(),
				"pooled buffer may still be checked out at this return: put it back on every path or defer the put")
		}
		return held
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred puts were collected up front; goroutine bodies own
		// their own checkouts.
		return held
	case *ast.IfStmt:
		if st.Init != nil {
			held = s.scanStmt(st.Init, held)
		}
		thenHeld := s.scan(st.Body.List, held)
		elseHeld := held
		if st.Else != nil {
			elseHeld = s.scanStmt(st.Else, held)
		}
		return thenHeld || elseHeld
	case *ast.BlockStmt:
		return s.scan(st.List, held)
	case *ast.LabeledStmt:
		return s.scanStmt(st.Stmt, held)
	case *ast.ForStmt:
		if st.Init != nil {
			held = s.scanStmt(st.Init, held)
		}
		bodyHeld := s.scan(st.Body.List, held)
		return held || bodyHeld
	case *ast.RangeStmt:
		bodyHeld := s.scan(st.Body.List, held)
		return held || bodyHeld
	case *ast.SwitchStmt:
		if st.Init != nil {
			held = s.scanStmt(st.Init, held)
		}
		return s.scanCases(st.Body, held)
	case *ast.TypeSwitchStmt:
		return s.scanCases(st.Body, held)
	case *ast.SelectStmt:
		after := held
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if s.scan(cc.Body, held) {
					after = true
				}
			}
		}
		return after
	default:
		return held
	}
}

// scanCases scans switch clause bodies; the buffer counts as checked out
// afterwards unless every clause (including a default) returned it.
func (s *scanner) scanCases(body *ast.BlockStmt, held bool) bool {
	after := false
	sawDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			sawDefault = true
		}
		if s.scan(cc.Body, held) {
			after = true
		}
	}
	if !sawDefault {
		after = after || held
	}
	return after
}

// isPut matches the checkout's matching put call with the tracked
// buffer as its argument.
func (s *scanner) isPut(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	return isPutOf(s.info, call, s.co)
}

func isPutOf(info *types.Info, call *ast.CallExpr, co *checkout) bool {
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != co.put || len(call.Args) != 1 {
		return false
	}
	return usesObj(info, call.Args[0], co.obj)
}

// hasDeferredPut reports whether any defer in the body puts co back.
func hasDeferredPut(info *types.Info, body *ast.BlockStmt, co *checkout) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if d, ok := n.(*ast.DeferStmt); ok && isPutOf(info, d.Call, co) {
			found = true
		}
		return !found
	})
	return found
}

// escapes reports whether the buffer's ownership leaves the function:
// returned, stored into a field/map/slice or pre-existing variable, sent
// on a channel, placed in a composite literal, or captured by a closure.
// Reassignment to the same variable (`b = append(b, ...)`, the scratch
// idiom) stays local ownership.
func escapes(info *types.Info, body *ast.BlockStmt, co *checkout) bool {
	esc := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if usesObj(info, r, co.obj) {
					esc = true
				}
			}
		case *ast.AssignStmt:
			for i, r := range n.Rhs {
				if !usesObj(info, r, co.obj) {
					continue
				}
				if i < len(n.Lhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && (info.Defs[id] != nil || id.Name == "_") {
						continue // fresh local alias (or drop): still local
					}
					if usesObj(info, n.Lhs[i], co.obj) {
						continue // b = append(b, ...): same owner
					}
				}
				esc = true
			}
		case *ast.SendStmt:
			if usesObj(info, n.Value, co.obj) {
				esc = true
			}
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				if usesObj(info, e, co.obj) {
					esc = true
				}
			}
		case *ast.FuncLit:
			if usesObj(info, n, co.obj) {
				esc = true
			}
			return false
		}
		return !esc
	})
	return esc
}

// usesObj reports whether the expression tree references obj.
func usesObj(info *types.Info, n ast.Node, obj types.Object) bool {
	if n == nil {
		return false
	}
	used := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && (info.Uses[id] == obj || info.Defs[id] == obj) {
			used = true
		}
		return !used
	})
	return used
}
