// Package a seeds bufguard violations next to the correct idioms they
// degrade from: dropped checkouts and forgotten early-return puts, beside
// the connState field-store shape that legitimately transfers ownership.
package a

type reader struct{}
type writer struct{}
type coalescer struct{}

// The pool surface under test: name-matched stubs of server/bufpool.go.
func getReader(size int) *reader { return &reader{} }
func putReader(r *reader)        {}
func getWriter(size int) *writer { return &writer{} }
func putWriter(w *writer)        {}
func getBytes(size int) []byte   { return make([]byte, 0, size) }
func putBytes(b []byte)          {}
func getCoalescer() *coalescer   { return &coalescer{} }
func putCoalescer(co *coalescer) {}

func work(b []byte) []byte { return b }

// deferOK is the canonical scratch borrow: defer covers every path.
func deferOK(n int) {
	b := getBytes(n)
	defer putBytes(b)
	work(b)
}

// explicitOK puts the buffer back on each path without a defer.
func explicitOK(n int, cond bool) {
	b := getBytes(n)
	if cond {
		putBytes(b)
		return
	}
	work(b)
	putBytes(b)
}

// growOK reassigns the scratch through append before returning it — the
// coalescer idiom; same variable, same ownership.
func growOK(n int) {
	b := getBytes(n)
	b = append(b, 'x')
	putBytes(b)
}

// leakOnReturn forgets the early path.
func leakOnReturn(n int, cond bool) {
	b := getBytes(n)
	if cond {
		return // want `pooled buffer may still be checked out at this return`
	}
	putBytes(b)
}

// neverPut drops the checkout entirely: the GC eats the buffer, the pool
// never sees it again.
func neverPut(n int) {
	b := getBytes(n) // want `never returns to its pool`
	work(b)
}

// wrongPut returns a reader through the bytes pool: not a release of r.
func wrongPut(n int) {
	r := getReader(n) // want `never returns to its pool`
	_ = r
	b := getBytes(n)
	putBytes(b)
}

// readerWriterOK pairs both checkout kinds with their own puts.
func readerWriterOK(n int) {
	r := getReader(n)
	w := getWriter(n)
	defer putReader(r)
	defer putWriter(w)
}

// coalescerLeak forgets the coalescer on the error path.
func coalescerLeak(fail bool) {
	co := getCoalescer()
	if fail {
		return // want `pooled buffer may still be checked out at this return`
	}
	putCoalescer(co)
}

// conn mirrors connState: checkouts stored into fields transfer
// ownership to the struct, whose releaseBuffers puts them back later.
type conn struct {
	r   *reader
	w   *writer
	out []byte
	co  *coalescer
}

// acquireOK is the repo idiom — no diagnostic: the struct owns the
// buffers now.
func (c *conn) acquireOK(n int) {
	c.r = getReader(n)
	c.w = getWriter(n)
	c.out = getBytes(512)
	c.co = getCoalescer()
}

// handOff stores a local checkout into a field before returning:
// ownership transferred, not a leak here.
func handOff(c *conn, n int) {
	b := getBytes(n)
	b = append(b, 'y')
	c.out = b
}

// returned escapes to the caller; their put, their problem.
func returned(n int) []byte {
	b := getBytes(n)
	return b
}
