// Package analysistest runs an analyzer over packages laid out under a
// testdata/src directory and checks its diagnostics against // want
// comments, mirroring golang.org/x/tools/go/analysis/analysistest closely
// enough that the suites read identically.
//
// Layout: testdata/src/<pkg>/*.go is one package, imported by its
// directory name (GOPATH-style). A testdata package may import a sibling
// testdata package (stub types, e.g. a local package named qsbr) or
// anything in the standard library; the loader source-checks siblings and
// resolves std imports from compiled export data.
//
// Expectations: a comment `// want "regexp"` (one or more space-separated
// quoted or backquoted regexps) on a line means each regexp must match a
// distinct diagnostic reported on that line; lines without a want comment
// must produce no diagnostics.
package analysistest

import (
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"github.com/optik-go/optik/internal/analysis"
)

// Run loads each named package from dir/testdata/src and reports any
// mismatch between a's diagnostics and the packages' want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	l := newLoader(t, filepath.Join(dir, "testdata", "src"))
	for _, name := range pkgs {
		pkg := l.load(name)
		diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s over %s: %v", a.Name, name, err)
		}
		checkWants(t, pkg, diags)
	}
}

// loader resolves testdata-sibling imports from source and everything else
// from the module's export-data closure.
type loader struct {
	t       *testing.T
	src     string
	fset    *token.FileSet
	exports map[string]string
	loaded  map[string]*analysis.Package
}

func newLoader(t *testing.T, src string) *loader {
	return &loader{
		t:      t,
		src:    src,
		fset:   token.NewFileSet(),
		loaded: map[string]*analysis.Package{},
	}
}

// Import implements types.Importer over testdata siblings + export data.
func (l *loader) Import(path string) (*types.Package, error) {
	if p, ok := l.loaded[path]; ok {
		return p.Types, nil
	}
	if fi, err := os.Stat(filepath.Join(l.src, path)); err == nil && fi.IsDir() {
		return l.load(path).Types, nil
	}
	if l.exports == nil {
		// One go list over the module's full dependency closure covers
		// every std package the testdata can reasonably import.
		root := moduleRoot(l.t)
		pkgs, err := listExports(root)
		if err != nil {
			l.t.Fatalf("listing export data: %v", err)
		}
		l.exports = pkgs
	}
	imp := analysis.ExportImporter(l.fset, func(p string) (string, bool) {
		f, ok := l.exports[p]
		return f, ok
	})
	return imp.Import(path)
}

func (l *loader) load(name string) *analysis.Package {
	if p, ok := l.loaded[name]; ok {
		return p
	}
	dir := filepath.Join(l.src, name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		l.t.Fatalf("reading testdata package %s: %v", name, err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	pkg, err := analysis.CheckPackage(l.fset, name, files, l)
	if err != nil {
		l.t.Fatalf("loading testdata package %s: %v", name, err)
	}
	l.loaded[name] = pkg
	return pkg
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

func listExports(root string) (map[string]string, error) {
	pkgs, err := analysis.ListExportData(root, "./...")
	if err != nil {
		return nil, err
	}
	return pkgs, nil
}

// wantRx extracts the quoted regexps of a want comment.
var wantRx = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// checkWants diffs diagnostics against the package's want comments.
func checkWants(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRx.FindAllStringSubmatch(c.Text[idx+len("// want "):], -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					k := key{pos.Filename, pos.Line}
					wants[k] = append(wants[k], rx)
				}
			}
		}
	}
	unmatched := map[key][]*regexp.Regexp{}
	for k, v := range wants {
		unmatched[k] = append([]*regexp.Regexp(nil), v...)
	}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		rxs := unmatched[k]
		found := -1
		for i, rx := range rxs {
			if rx.MatchString(d.Message) {
				found = i
				break
			}
		}
		if found < 0 {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
			continue
		}
		unmatched[k] = append(rxs[:found], rxs[found+1:]...)
	}
	var keys []key
	for k, rxs := range unmatched {
		if len(rxs) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, rx := range unmatched[k] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, rx)
		}
	}
}
