// Package analysis is a self-contained, stdlib-only miniature of
// golang.org/x/tools/go/analysis, shaped so the OPTIK invariant analyzers
// (atomicfield, qsbrguard, optikvalidate, padcheck) read exactly like
// upstream analyzers and could be ported to the real framework by swapping
// one import. The container this repo builds in carries no module
// dependencies, so the framework re-implements the three pieces it needs:
//
//   - this file: the Analyzer/Pass/Diagnostic vocabulary;
//   - load.go: a package loader built on `go list -export` plus the
//     stdlib gc importer (source-parses the packages under analysis,
//     imports their dependencies from compiled export data);
//   - checker.go: the driver that runs a fleet of analyzers over loaded
//     packages and applies `//lint:optik` suppressions;
//   - unitchecker.go: the `go vet -vettool` protocol, so cmd/optik-vet
//     plugs into the standard vet machinery (and therefore sweeps test
//     files and test packages too).
//
// The analyzers themselves machine-check the concurrency discipline the
// paper's OPTIK pattern rests on; docs/INVARIANTS.md states each invariant
// and the historical bug it would have caught.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one invariant check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer (minus facts and requires, which
// the fleet does not need: every OPTIK analyzer is package-local).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:optik
	// suppression comments. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph statement of the invariant.
	Doc string
	// Run inspects one package and reports violations through the Pass.
	Run func(*Pass) error
}

// A Pass provides one analyzer run with a single type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's parsed syntax. Files named *_test.go are
	// included when the pass comes from `go vet` (which analyzes test
	// variants); analyzers that stage deliberate races in tests skip them
	// via IsTestFile.
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Sizes gives target-accurate struct layout (padcheck's offsets).
	Sizes types.Sizes

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported violation, with its position resolved.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// IsTestFile reports whether pos lies in a *_test.go file. The qsbrguard
// and optikvalidate analyzers skip test files: tests stage deliberate
// protocol violations (staged retire/recycle windows, handles held across
// synchronization to provoke races) that are the point of the test.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Preorder walks every node of every non-skipped file in depth-first
// preorder. It is the fleet's ast.Inspect convenience.
func (p *Pass) Preorder(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// Shared type-interrogation helpers. The analyzers match types structurally
// and by name rather than by import path identity, so their analysistest
// suites can use small stub packages (a local package named qsbr, a local
// CacheLinePad type) instead of importing the real module.

// Deref returns the element type of a pointer, or t itself.
func Deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// NamedOf returns the package name and type name of t (through pointers),
// or "","" when t is not a named type.
func NamedOf(t types.Type) (pkg, name string) {
	n, ok := Deref(t).(*types.Named)
	if !ok {
		return "", ""
	}
	obj := n.Obj()
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Name()
	}
	return pkg, obj.Name()
}

// IsAtomicType reports whether t (through pointers) is one of the typed
// atomics of sync/atomic (atomic.Uint64, atomic.Pointer[T], ...).
func IsAtomicType(t types.Type) bool {
	pkg, name := NamedOf(t)
	if pkg != "atomic" {
		return false
	}
	switch name {
	case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value":
		return true
	}
	return false
}

// ContainsAtomic reports whether t (recursively through named types,
// structs and arrays) contains a typed atomic — the "hot field" test of
// padcheck. Pointers are opaque: a *T field is one word, not T.
func ContainsAtomic(t types.Type) bool {
	return containsAtomic(t, 0)
}

func containsAtomic(t types.Type, depth int) bool {
	if depth > 10 {
		return false
	}
	if IsAtomicType(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsAtomic(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return containsAtomic(u.Elem(), depth+1)
	}
	return false
}

// MethodCall matches a call expression of the form recv.Name(...) and
// returns the receiver expression and the resolved method name. It returns
// ok=false for plain function calls and conversions.
func MethodCall(info *types.Info, call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	selection, isMethod := info.Selections[sel]
	if !isMethod || selection.Kind() != types.MethodVal {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// PkgFuncCall matches a call of a package-level function pkg.Name(...) and
// returns the import path of the package and the function name.
func PkgFuncCall(info *types.Info, call *ast.CallExpr) (path, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}
