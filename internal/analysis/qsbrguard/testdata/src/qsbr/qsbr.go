// Package qsbr is a testdata stub mirroring the shapes qsbrguard matches
// on: Pool.Acquire/Release and the Thread handle.
package qsbr

// Thread is a borrowed reclamation handle.
type Thread struct {
	epoch uint64
}

// Pool hands out Threads.
type Pool struct {
	slots []Thread
}

// Acquire borrows a handle.
func (p *Pool) Acquire() *Thread { return &Thread{} }

// Release returns a handle.
func (p *Pool) Release(t *Thread) {}
