// Package a seeds qsbrguard violations next to the correct idioms they
// degrade from: leaked handles and blocking while held.
package a

import (
	"sync"
	"time"

	"qsbr"
)

func work() {}

// good is the canonical borrow: defer covers every path.
func good(p *qsbr.Pool) {
	h := p.Acquire()
	defer p.Release(h)
	work()
}

// explicitOK releases on each path without a defer.
func explicitOK(p *qsbr.Pool, cond bool) {
	h := p.Acquire()
	if cond {
		p.Release(h)
		return
	}
	work()
	p.Release(h)
}

// leakOnReturn forgets the early path.
func leakOnReturn(p *qsbr.Pool, cond bool) {
	h := p.Acquire()
	if cond {
		return // want `qsbr handle may be held at this return`
	}
	p.Release(h)
}

// neverReleased drops the handle entirely.
func neverReleased(p *qsbr.Pool) {
	h := p.Acquire() // want `not released before the function returns`
	_ = h
	work()
}

// sleepy stalls reclamation for a millisecond, fleet-wide.
func sleepy(p *qsbr.Pool) {
	h := p.Acquire()
	defer p.Release(h)
	time.Sleep(time.Millisecond) // want `time.Sleep while a qsbr handle is held`
}

// sendsWhileHeld parks on a channel with an epoch announced.
func sendsWhileHeld(p *qsbr.Pool, ch chan int) {
	h := p.Acquire()
	ch <- 1 // want `channel send while a qsbr handle is held`
	p.Release(h)
}

// recvWhileHeld blocks on a receive with an epoch announced.
func recvWhileHeld(p *qsbr.Pool, ch chan int) int {
	h := p.Acquire()
	defer p.Release(h)
	v := <-ch // want `channel receive while a qsbr handle is held`
	return v
}

// selectNoDefault can park indefinitely while held.
func selectNoDefault(p *qsbr.Pool, a, b chan int) {
	h := p.Acquire()
	defer p.Release(h)
	select { // want `select without a default while a qsbr handle is held`
	case <-a:
	case <-b:
	}
}

// selectDefaultOK is the non-blocking cancellation probe the quiesce loop
// uses; with a default clause it never parks.
func selectDefaultOK(p *qsbr.Pool, cancel chan struct{}) bool {
	h := p.Acquire()
	defer p.Release(h)
	select {
	case <-cancel:
		return false
	default:
	}
	return true
}

// waitWhileHeld pins the epoch for as long as the group runs.
func waitWhileHeld(p *qsbr.Pool, wg *sync.WaitGroup) {
	h := p.Acquire()
	defer p.Release(h)
	wg.Wait() // want `sync.WaitGroup.Wait while a qsbr handle is held`
}

// recvBeforeAcquire blocks first, borrows after: fine.
func recvBeforeAcquire(p *qsbr.Pool, ch chan int) {
	<-ch
	h := p.Acquire()
	defer p.Release(h)
	work()
}

// escapes transfers ownership to the caller; not this function's leak.
func escapes(p *qsbr.Pool) *qsbr.Thread {
	h := p.Acquire()
	return h
}

// borrower mirrors hashmap's reclaimer: pool field plus a release method.
type borrower struct {
	pool *qsbr.Pool
	th   *qsbr.Thread
}

func (b *borrower) release() {}

func use(b *borrower) {}

// carrierGood is the repo idiom: construct, defer release.
func carrierGood(p *qsbr.Pool) {
	rc := borrower{pool: p}
	defer rc.release()
	use(&rc)
}

// carrierLeak constructs a carrier and never releases it.
func carrierLeak(p *qsbr.Pool) { // no defer, no release
	rc := borrower{pool: p} // want `not released before the function returns`
	use(&rc)
}

// carrierReuse releases mid-function, then re-borrows by using the
// carrier again (it re-acquires lazily), and covers that with the defer.
func carrierReuse(p *qsbr.Pool) {
	rc := borrower{pool: p}
	defer rc.release()
	use(&rc)
	rc.release() // quiesce point
	use(&rc)     // re-acquires
}

// carrierQuiesceLeak re-borrows after a quiesce point with no defer.
func carrierQuiesceLeak(p *qsbr.Pool) {
	rc := borrower{pool: p} // want `not released before the function returns`
	use(&rc)
	rc.release()
	use(&rc) // re-acquires, never released again
}

// reclaimer mirrors the exported qsbr.Reclaimer shape the skip list
// borrows: exported Pool field, guaranteed Pin, Retire for unlinked
// towers, Release covering both.
type reclaimer struct {
	Pool *qsbr.Pool
	th   *qsbr.Thread
}

func (rc *reclaimer) Pin()            {}
func (rc *reclaimer) Retire(node any) {}
func (rc *reclaimer) Release()        {}

type tower struct{}

// towerRetireGood is the skip-list delete shape: pin an epoch, unlink,
// retire the victim tower, with the defer covering every retry path.
func towerRetireGood(p *qsbr.Pool, victim *tower) {
	rc := reclaimer{Pool: p}
	defer rc.Release()
	rc.Pin()
	work() // the unlink
	rc.Retire(victim)
}

// towerRetireLeak pins and retires but never releases: the slot stays
// busy and its announced epoch pins every later retirement fleet-wide.
func towerRetireLeak(p *qsbr.Pool, victim *tower) {
	rc := reclaimer{Pool: p} // want `not released before the function returns`
	rc.Pin()
	work()
	rc.Retire(victim)
}

// towerRetireEarlyReturn forgets the not-found path: the pinned epoch
// leaks exactly when the delete had nothing to retire.
func towerRetireEarlyReturn(p *qsbr.Pool, victim *tower, found bool) {
	rc := reclaimer{Pool: p}
	rc.Pin()
	if !found {
		return // want `qsbr handle may be held at this return`
	}
	rc.Retire(victim)
	rc.Release()
}

// towerRetireBlocked parks on a channel between the unlink and the
// retirement, stalling reclamation with the pin announced.
func towerRetireBlocked(p *qsbr.Pool, victim *tower, ch chan int) {
	rc := reclaimer{Pool: p}
	defer rc.Release()
	rc.Pin()
	<-ch // want `channel receive while a qsbr handle is held`
	rc.Retire(victim)
}
