package qsbrguard_test

import (
	"testing"

	"github.com/optik-go/optik/internal/analysis/analysistest"
	"github.com/optik-go/optik/internal/analysis/qsbrguard"
)

func TestQsbrGuard(t *testing.T) {
	analysistest.Run(t, ".", qsbrguard.Analyzer, "a")
}
