// Package qsbrguard checks qsbr critical-section hygiene. A borrowed qsbr
// handle (qsbr.Pool.Acquire, or a handle-carrying helper like hashmap's
// reclaimer) announces an epoch that blocks reclamation fleet-wide until
// it is released. Two bug classes follow:
//
//  1. a path that returns without releasing leaks the pool slot — the
//     handle stays busy forever, and with it an announced epoch that
//     pins every later retirement in the domain;
//  2. blocking while holding (channel operations, select without a
//     default, time.Sleep, WaitGroup.Wait) stalls reclamation for as long
//     as the block lasts, across every thread of the domain.
//
// Release-on-every-path is satisfied by a defer (the repo idiom:
// `rc := reclaimer{pool: p}; defer rc.release()`) or by an explicit
// release on each return path. Handles that escape the function (returned,
// stored into a struct, sent away) transfer ownership and are not checked.
//
// Functions in *_test.go files and in the qsbr package itself (whose job
// is manipulating parked handles) are exempt.
package qsbrguard

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/optik-go/optik/internal/analysis"
)

// Analyzer is the qsbr handle-hygiene checker.
var Analyzer = &analysis.Analyzer{
	Name: "qsbrguard",
	Doc: "qsbr handles must be released on every path and never held " +
		"across blocking operations",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "qsbr" {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.IsTestFile(fd.Pos()) {
				continue
			}
			analyzeFunc(pass, fd)
		}
	}
	return nil
}

// handleKind distinguishes the two acquisition shapes.
type handleKind int

const (
	kindHandle  handleKind = iota // h := pool.Acquire()
	kindCarrier                   // rc := reclaimer{pool: ...}
)

// handle is one tracked acquisition.
type handle struct {
	obj     types.Object // the local variable
	kind    handleKind
	acqStmt ast.Stmt // the statement that acquires
	acqPos  token.Pos
}

func analyzeFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	var handles []*handle

	// Collect acquisitions: direct Acquire results and locally-constructed
	// handle carriers. Only statements of the function's own body count —
	// closures own their handles separately (and are not analyzed; the
	// fleet keeps to directly-visible control flow).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
				return true
			}
			id, ok := st.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				return true
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil {
				return true
			}
			if call, ok := st.Rhs[0].(*ast.CallExpr); ok && isAcquireCall(info, call) {
				handles = append(handles, &handle{obj: obj, kind: kindHandle, acqStmt: st, acqPos: st.Pos()})
				return true
			}
			if isCarrierLit(info, st.Rhs[0]) {
				handles = append(handles, &handle{obj: obj, kind: kindCarrier, acqStmt: st, acqPos: st.Pos()})
			}
		case *ast.DeclStmt:
			gd, ok := st.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue // initialized decls handled above or skipped
				}
				for _, name := range vs.Names {
					obj := info.Defs[name]
					if obj != nil && isCarrierType(obj.Type()) {
						handles = append(handles, &handle{obj: obj, kind: kindCarrier, acqStmt: st, acqPos: st.Pos()})
					}
				}
			}
		}
		return true
	})
	if len(handles) == 0 {
		return
	}

	for _, h := range handles {
		if escapes(info, fd.Body, h) {
			continue
		}
		s := &scanner{pass: pass, info: info, h: h}
		s.deferred = hasDeferredRelease(info, fd.Body, h)
		held := s.scan(fd.Body.List, false)
		if held && !s.deferred {
			pass.Reportf(h.acqPos,
				"qsbr handle acquired here is not released before the function returns; leaked slots stall reclamation fleet-wide")
		}
	}
}

// scanner walks one function linearly tracking whether h is held.
type scanner struct {
	pass     *analysis.Pass
	info     *types.Info
	h        *handle
	deferred bool
}

// scan processes a statement list and returns whether the handle can still
// be held afterwards (conservative: held unless every path released).
func (s *scanner) scan(stmts []ast.Stmt, held bool) bool {
	for _, st := range stmts {
		held = s.scanStmt(st, held)
	}
	return held
}

func (s *scanner) scanStmt(st ast.Stmt, held bool) bool {
	if st == s.h.acqStmt {
		return true
	}
	switch st := st.(type) {
	case *ast.ExprStmt:
		if s.isRelease(st.X) {
			return false
		}
		if held {
			s.checkBlockingExpr(st.X)
		}
		return s.noteUse(st, held)
	case *ast.AssignStmt:
		if held {
			for _, r := range st.Rhs {
				s.checkBlockingExpr(r)
			}
		}
		for _, r := range st.Rhs {
			if s.isRelease(r) {
				return false
			}
		}
		return s.noteUse(st, held)
	case *ast.ReturnStmt:
		if held && !s.deferred {
			s.pass.Reportf(st.Pos(),
				"qsbr handle may be held at this return: release it on every path or defer the release")
		}
		return held
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred releases were collected up front; goroutine bodies own
		// their own handles.
		return held
	case *ast.IfStmt:
		if st.Init != nil {
			held = s.scanStmt(st.Init, held)
		}
		if held {
			s.checkBlockingExpr(st.Cond)
		}
		thenHeld := s.scan(st.Body.List, held)
		elseHeld := held
		if st.Else != nil {
			elseHeld = s.scanStmt(st.Else, held)
		}
		return thenHeld || elseHeld
	case *ast.BlockStmt:
		return s.scan(st.List, held)
	case *ast.LabeledStmt:
		return s.scanStmt(st.Stmt, held)
	case *ast.ForStmt:
		if st.Init != nil {
			held = s.scanStmt(st.Init, held)
		}
		if held && st.Cond != nil {
			s.checkBlockingExpr(st.Cond)
		}
		bodyHeld := s.scan(st.Body.List, held)
		return held || bodyHeld
	case *ast.RangeStmt:
		if held {
			if t := s.info.TypeOf(st.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					s.blocking(st.Pos(), "range over a channel")
				}
			}
			s.checkBlockingExpr(st.X)
		}
		bodyHeld := s.scan(st.Body.List, held)
		return held || bodyHeld
	case *ast.SwitchStmt:
		if st.Init != nil {
			held = s.scanStmt(st.Init, held)
		}
		if held && st.Tag != nil {
			s.checkBlockingExpr(st.Tag)
		}
		return s.scanCases(st.Body, held)
	case *ast.TypeSwitchStmt:
		return s.scanCases(st.Body, held)
	case *ast.SelectStmt:
		if held && !hasDefaultClause(st.Body) {
			s.blocking(st.Pos(), "select without a default")
		}
		after := held
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if s.scan(cc.Body, held) {
					after = true
				}
			}
		}
		return after
	case *ast.SendStmt:
		if held {
			s.blocking(st.Pos(), "channel send")
		}
		return held
	default:
		return s.noteUse(st, held)
	}
}

// scanCases scans switch/type-switch clause bodies; the handle counts as
// held afterwards unless every clause (including a default) released it.
func (s *scanner) scanCases(body *ast.BlockStmt, held bool) bool {
	after := false
	sawDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			sawDefault = true
		}
		if s.scan(cc.Body, held) {
			after = true
		}
	}
	if !sawDefault {
		after = after || held
	}
	return after
}

// noteUse re-holds a carrier on any use after a release: the repo's
// reclaimer re-acquires lazily on its next node-touching call.
func (s *scanner) noteUse(st ast.Stmt, held bool) bool {
	if held || s.h.kind != kindCarrier {
		return held
	}
	used := false
	ast.Inspect(st, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && s.info.Uses[id] == s.h.obj {
			used = true
		}
		return !used
	})
	return used
}

// isRelease matches the handle's release call: Pool.Release(h) for direct
// handles, rc.release()/rc.Release() for carriers.
func (s *scanner) isRelease(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	return isReleaseOf(s.info, call, s.h)
}

func isReleaseOf(info *types.Info, call *ast.CallExpr, h *handle) bool {
	recv, name, ok := analysis.MethodCall(info, call)
	if !ok {
		return false
	}
	switch h.kind {
	case kindHandle:
		if name != "Release" || !isQsbrPool(info.TypeOf(recv)) || len(call.Args) < 1 {
			return false
		}
		return usesObj(info, call.Args[0], h.obj)
	case kindCarrier:
		if name != "release" && name != "Release" {
			return false
		}
		return usesObj(info, recv, h.obj)
	}
	return false
}

// checkBlockingExpr flags blocking operations inside one expression tree
// (statement-level constructs — send, select, range — are handled by the
// statement scan).
func (s *scanner) checkBlockingExpr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				s.blocking(n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			if path, name, ok := analysis.PkgFuncCall(s.info, n); ok && path == "time" && name == "Sleep" {
				s.blocking(n.Pos(), "time.Sleep")
			}
			if recv, name, ok := analysis.MethodCall(s.info, n); ok && name == "Wait" {
				if pkg, tn := analysis.NamedOf(s.info.TypeOf(recv)); pkg == "sync" && tn == "WaitGroup" {
					s.blocking(n.Pos(), "sync.WaitGroup.Wait")
				}
			}
		}
		return true
	})
}

func (s *scanner) blocking(pos token.Pos, what string) {
	s.pass.Reportf(pos, "%s while a qsbr handle is held stalls reclamation fleet-wide; release the handle first", what)
}

// hasDeferredRelease reports whether any defer in the body releases h.
func hasDeferredRelease(info *types.Info, body *ast.BlockStmt, h *handle) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if d, ok := n.(*ast.DeferStmt); ok && isReleaseOf(info, d.Call, h) {
			found = true
		}
		return !found
	})
	return found
}

// escapes reports whether the handle's ownership leaves the function:
// returned, stored into anything but a plain local, sent on a channel, or
// captured by a closure. Taking its address for a helper call (&rc) is the
// normal borrowing idiom and does not escape.
func escapes(info *types.Info, body *ast.BlockStmt, h *handle) bool {
	esc := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if usesObj(info, r, h.obj) {
					esc = true
				}
			}
		case *ast.AssignStmt:
			for i, r := range n.Rhs {
				if !usesObj(info, r, h.obj) {
					continue
				}
				if n.Tok == token.DEFINE && r == ast.Expr(nil) {
					continue
				}
				if i < len(n.Lhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && info.Defs[id] != nil {
						continue // fresh local alias: still local ownership
					}
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue
					}
				}
				// Stored into a field, map, slice, or pre-existing
				// variable: conservatively treat as an ownership transfer
				// unless the destination is the same object.
				if i < len(n.Lhs) && usesObj(info, n.Lhs[i], h.obj) {
					continue
				}
				esc = true
			}
		case *ast.SendStmt:
			if usesObj(info, n.Value, h.obj) {
				esc = true
			}
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				if usesObj(info, e, h.obj) {
					esc = true
				}
			}
		case *ast.FuncLit:
			if usesObj(info, n, h.obj) {
				esc = true
			}
			return false
		}
		return !esc
	})
	return esc
}

// usesObj reports whether the expression tree references obj.
func usesObj(info *types.Info, n ast.Node, obj types.Object) bool {
	if n == nil {
		return false
	}
	used := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && (info.Uses[id] == obj || info.Defs[id] == obj) {
			used = true
		}
		return !used
	})
	return used
}

// isAcquireCall matches pool.Acquire() where pool is a qsbr.Pool.
func isAcquireCall(info *types.Info, call *ast.CallExpr) bool {
	recv, name, ok := analysis.MethodCall(info, call)
	return ok && name == "Acquire" && isQsbrPool(info.TypeOf(recv))
}

// isQsbrPool matches (possibly a pointer to) type Pool of a package named
// qsbr — name-based so analysistest stubs work.
func isQsbrPool(t types.Type) bool {
	if t == nil {
		return false
	}
	pkg, name := analysis.NamedOf(t)
	return pkg == "qsbr" && name == "Pool"
}

// isCarrierType matches handle-carrying helper types: a struct with a
// qsbr.Pool field and a release/Release method (hashmap's reclaimer shape).
func isCarrierType(t types.Type) bool {
	d := analysis.Deref(t)
	named, ok := d.(*types.Named)
	if !ok {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	hasPool := false
	for i := 0; i < st.NumFields(); i++ {
		if isQsbrPool(st.Field(i).Type()) {
			hasPool = true
			break
		}
	}
	if !hasPool {
		return false
	}
	for _, methods := range []*types.Named{named} {
		for i := 0; i < methods.NumMethods(); i++ {
			switch methods.Method(i).Name() {
			case "release", "Release":
				return true
			}
		}
	}
	return false
}

// isCarrierLit matches a composite literal (or &literal) of a carrier type.
func isCarrierLit(info *types.Info, e ast.Expr) bool {
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = u.X
	}
	cl, ok := e.(*ast.CompositeLit)
	if !ok {
		return false
	}
	t := info.TypeOf(cl)
	return t != nil && isCarrierType(t)
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
