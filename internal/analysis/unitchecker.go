package analysis

// The `go vet -vettool` protocol. The go command invokes the tool once per
// package with a single JSON config-file argument describing the parsed
// package (file list, import → export-data map), after probing the tool's
// identity with -V=full. The tool type-checks the package from source,
// runs its analyzers, prints diagnostics to stderr, writes the (for this
// fleet, empty — no cross-package facts) .vetx output file, and exits 2
// when it found anything. This mirrors x/tools' unitchecker, minimally.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// VetConfig is the JSON schema of the config file `go vet` hands a vettool.
// Unknown fields are ignored on decode.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VetMain implements a vettool's whole command-line surface for the given
// fleet and exits. Callers (cmd/optik-vet) route here when the arguments
// look like the go command's protocol rather than package patterns.
func VetMain(args []string, analyzers []*Analyzer) {
	progname := filepath.Base(os.Args[0])
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			// The go command hashes this line into its action IDs so vet
			// results are cached against the exact tool binary.
			fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, toolSum())
			os.Exit(0)
		case a == "-flags" || a == "--flags":
			// No tool-specific flags: report an empty set so `go vet`
			// accepts the tool without probing further.
			fmt.Println("[]")
			os.Exit(0)
		}
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(os.Stderr, "%s: expected a single .cfg argument from `go vet` (or package patterns in standalone mode)\n", progname)
		os.Exit(1)
	}
	diags, err := runVetConfig(args[0], analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

func toolSum() []byte {
	exe, err := os.Executable()
	if err != nil {
		return []byte{0}
	}
	f, err := os.Open(exe)
	if err != nil {
		return []byte{0}
	}
	defer f.Close()
	h := sha256.New()
	io.Copy(h, f)
	return h.Sum(nil)[:8]
}

// runVetConfig loads the package described by the config file and runs the
// fleet over it.
func runVetConfig(cfgFile string, analyzers []*Analyzer) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", cfgFile, err)
	}
	// The go command requires the vetx output to exist on success; the
	// fleet has no cross-package facts, so it is empty. Written first so
	// even a VetxOnly dependency visit satisfies the contract.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}
	fset := token.NewFileSet()
	imp := ExportImporter(fset, func(path string) (string, bool) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	pkg, err := CheckPackage(fset, cfg.ImportPath, cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, err
	}
	return RunAnalyzers([]*Package{pkg}, analyzers)
}
