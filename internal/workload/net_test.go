package workload

import (
	"testing"
	"time"

	"github.com/optik-go/optik/server"
	"github.com/optik-go/optik/store"
)

// TestRunServerOverNet runs the server workload through the wire: same
// driver, same conservation contract, with a NetTarget in place of the
// in-process store. This is the end-to-end proof that the net figure's
// rows measure the same semantics as the in-process ones.
func TestRunServerOverNet(t *testing.T) {
	st := store.NewStrings(store.WithShards(2), store.WithShardBuckets(64))
	defer st.Close()
	srv := server.New(st)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	defer srv.Close()

	cfg := ServerConfig{
		Threads:       3,
		Duration:      200 * time.Millisecond,
		InitialSize:   2048,
		SetPct:        20,
		DelPct:        10,
		BatchPct:      50,
		BatchSize:     8,
		SampleLatency: true,
	}
	res := RunServer(cfg, func() Target { return NewNetTarget(addr.String()) })
	if res.Ops == 0 || res.Gets == 0 || res.Sets == 0 || res.Dels == 0 {
		t.Fatalf("thin run: %+v", res)
	}
	if res.PrefillLen != cfg.InitialSize {
		t.Fatalf("cold-server prefill = %d, want exactly %d", res.PrefillLen, cfg.InitialSize)
	}
	if want := int64(res.PrefillLen) + res.Net; int64(res.FinalLen) != want {
		t.Fatalf("conservation over the wire: FinalLen = %d, want prefill %d + net %d = %d",
			res.FinalLen, res.PrefillLen, res.Net, want)
	}
	if res.HitRate <= 0 || res.HitRate > 1 {
		t.Fatalf("hit rate = %v", res.HitRate)
	}
	if res.Latency.P50 <= 0 || res.BatchLatency.P50 <= 0 {
		t.Fatalf("latency summaries missing: %v / %v", res.Latency.P50, res.BatchLatency.P50)
	}
	if res.FinalBuckets == 0 {
		t.Fatal("FinalBuckets not plumbed through STATS")
	}
	// The store the server fronts saw exactly what the driver accounted.
	if st.Len() != res.FinalLen {
		t.Fatalf("server store Len %d != reported FinalLen %d", st.Len(), res.FinalLen)
	}
}
