package workload

import (
	"testing"
	"time"

	"github.com/optik-go/optik/server"
	"github.com/optik-go/optik/store"
)

// TestRunOrderedInProcess drives the mixed point/scan workload against
// the range-partitioned store directly and checks the accounting
// contract: conservation of elements, a live hit rate, scans that
// actually return entries, and latency summaries per kind.
func TestRunOrderedInProcess(t *testing.T) {
	cfg := OrderedConfig{
		Threads:       4,
		Duration:      200 * time.Millisecond,
		InitialSize:   4096,
		SetPct:        20,
		DelPct:        10,
		ScanPct:       15,
		ScanWidth:     32,
		SampleLatency: true,
	}
	res := RunOrdered(cfg, func() OrderedTarget {
		return store.NewOrdered(store.WithShards(4), store.WithKeyMax(uint64(2*cfg.InitialSize)))
	})
	if res.Ops == 0 || res.Gets == 0 || res.Sets == 0 || res.Dels == 0 || res.Scans == 0 {
		t.Fatalf("thin run: %+v", res)
	}
	if res.PrefillLen != cfg.InitialSize {
		t.Fatalf("prefill = %d, want %d", res.PrefillLen, cfg.InitialSize)
	}
	if want := int64(res.PrefillLen) + res.Net; int64(res.FinalLen) != want {
		t.Fatalf("conservation: FinalLen = %d, want prefill %d + net %d = %d",
			res.FinalLen, res.PrefillLen, res.Net, want)
	}
	if res.HitRate <= 0 || res.HitRate > 1 {
		t.Fatalf("hit rate = %v", res.HitRate)
	}
	if res.Scanned == 0 {
		t.Fatal("scans returned zero entries against a dense prefill")
	}
	if res.Latency.P50 <= 0 || res.ScanLatency.P50 <= 0 {
		t.Fatalf("latency summaries missing: %v / %v", res.Latency.P50, res.ScanLatency.P50)
	}
	// Deletes ran for 200ms against a shared-pool store: towers were
	// retired, and the accounting was captured before any caller quiesce.
	if res.TowersRetired == 0 {
		t.Fatal("no towers retired despite a delete mix")
	}
}

// TestRunOrderedOverNet runs the same driver through the ordered wire
// protocol: point ops on the coalesced scalar path, scans riding RANGE.
func TestRunOrderedOverNet(t *testing.T) {
	st := store.NewSortedStrings(store.WithShards(2), store.WithKeyMax(1<<13))
	defer st.Close()
	srv := server.NewOrdered(st)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	defer srv.Close()

	cfg := OrderedConfig{
		Threads:     3,
		Duration:    200 * time.Millisecond,
		InitialSize: 2048,
		KeyRange:    1 << 12,
		SetPct:      20,
		DelPct:      10,
		ScanPct:     10,
		ScanWidth:   16,
	}
	res := RunOrdered(cfg, func() OrderedTarget { return NewOrderedNetTarget(addr.String()) })
	if res.Ops == 0 || res.Scans == 0 || res.Scanned == 0 {
		t.Fatalf("thin run over the wire: %+v", res)
	}
	if res.PrefillLen != cfg.InitialSize {
		t.Fatalf("cold-server prefill = %d, want %d", res.PrefillLen, cfg.InitialSize)
	}
	if want := int64(res.PrefillLen) + res.Net; int64(res.FinalLen) != want {
		t.Fatalf("conservation over the wire: FinalLen = %d, want prefill %d + net %d = %d",
			res.FinalLen, res.PrefillLen, res.Net, want)
	}
	// The store the server fronts saw exactly what the driver accounted.
	if st.Len() != res.FinalLen {
		t.Fatalf("server store Len %d != reported FinalLen %d", st.Len(), res.FinalLen)
	}
}
