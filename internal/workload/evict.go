// The eviction scenario: the string store serving a cache-style stream
// whose working set does not fit the configured byte budget. Unlike the
// server scenario (which measures the request path), this measures the
// governance loop — the maintenance passes and write-path hands that
// sweep expired entries and evict sampled-idle ones — under sustained
// churn: the questions are whether bytes_used holds at the budget while
// the write traffic pushes past it, and how much hit rate the
// approx-LRU victim selection gives up against an ungoverned store
// holding everything. Misses refill their key (read-through), as a
// cache client would, so the store is always under insertion pressure
// at the budget boundary.
//
// Keys follow YCSB's hotspot distribution — a hot fraction of the
// population receives almost all operations, the cold remainder is
// drawn uniformly — rather than the zipfian the throughput workloads
// use. A budget-bounded cache can only ever serve the traffic share its
// resident set captures, and zipfian mass at the YCSB skew is
// logarithmic in rank: a store holding the top quarter of a zipfian
// population tops out near 87% of draws no matter how perfect its
// victim selection, which would measure the key distribution, not the
// eviction policy. The hotspot shape puts the achievable ceiling (the
// hot share) well above the acceptance bar, so the measured gap to the
// baseline is the policy's own churn — hot entries wrongly razed and
// refilled — and nothing else.

package workload

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/optik-go/optik/internal/rng"
	"github.com/optik-go/optik/store"
)

// EvictConfig describes one eviction run.
type EvictConfig struct {
	Threads int
	// Duration of the measured run.
	Duration time.Duration
	// Keys is the key population (the working set). Its byte footprint —
	// Keys × (ValueLen + per-entry overhead) — should exceed Budget for
	// the run to measure anything; WorkingSetBytes reports it.
	Keys uint64
	// ValueLen is the value size; every key stores a value of this length.
	ValueLen int
	// Budget is the store's byte budget; 0 runs the ungoverned baseline
	// the budgeted run's hit rate is read against.
	Budget int64
	// SetPct is the percentage of blind SETs; the rest are GETs, and a GET
	// that misses refills its key (counted as the miss it was, plus a
	// set). Default 10.
	SetPct int
	// TTLPct is the percentage of sets issued as SETEX with TTLSecs, so
	// swept expiry runs alongside eviction; default 0 (no TTL traffic).
	TTLPct int
	// TTLSecs is the SETEX lifetime (default 1; real clock — this driver
	// is for soaks and benchmarks, not unit tests).
	TTLSecs int64
	// HotKeyPct is the percentage of the key population forming the hot
	// set (default 20: with a budget of a quarter of the working set the
	// hot set fits residency with room for cold churn); HotOpPct is the
	// percentage of operations drawn (uniformly) from it, the rest going
	// uniformly to the cold remainder (default 98).
	HotKeyPct, HotOpPct int
	// Seed makes runs reproducible; 0 picks a fixed default.
	Seed uint64
}

// WorkingSetBytes is the byte footprint the key population pins when
// fully resident, in the store's own accounting units.
func (c EvictConfig) WorkingSetBytes() int64 {
	return int64(c.Keys) * (int64(c.ValueLen) + store.PairOverhead)
}

// EvictResult aggregates one eviction run.
type EvictResult struct {
	// Ops counts key operations; refills count separately in Refills.
	Ops uint64
	// Mops is throughput in million key operations per second.
	Mops float64
	// Elapsed is the measured wall-clock duration.
	Elapsed time.Duration
	// Gets/Hits/Refills: HitRate is Hits/Gets; every miss refilled.
	Gets, Hits, Refills uint64
	// HitRate is Hits/Gets.
	HitRate float64
	// Budget echoes the configured budget (0 for the baseline).
	Budget int64
	// BytesMax and BytesAvg summarize bytes_used sampled every millisecond
	// across the measured window; BytesFinal is the post-quiesce value.
	// The governance claim is BytesMax staying within a few percent of
	// Budget while the working set is a multiple of it.
	BytesMax, BytesAvg, BytesFinal int64
	// Evicted/ExpiredLazy/ExpiredSwept are the store's governance
	// counters over the whole run (prefill included).
	Evicted, ExpiredLazy, ExpiredSwept uint64
	// FinalLen is the store's Len after the final quiesce.
	FinalLen int
	// MaxProcs records runtime.GOMAXPROCS at measurement time.
	MaxProcs int
}

// mixKey spreads the zipfian draws (small dense integers) over the hashed
// key space the string store's *Hashed API expects — splitmix64's
// finalizer, the same job HashKey does for wire keys.
func mixKey(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xBF58476D1CE4E5B9
	k ^= k >> 27
	k *= 0x94D049BB133111EB
	k ^= k >> 31
	if k == 0 || k == ^uint64(0) {
		return 1
	}
	return k
}

// RunEvict drives an eviction workload against a fresh string store and
// returns the aggregate result. The whole population is prefilled first
// (a budgeted store immediately evicts down to budget on the prefill
// quiesce), so the baseline starts fully resident and the budgeted run
// starts governed.
func RunEvict(cfg EvictConfig) EvictResult {
	if cfg.Threads <= 0 || cfg.Keys == 0 || cfg.Duration <= 0 {
		panic("workload: Threads, Keys and Duration must be positive")
	}
	if cfg.ValueLen <= 0 {
		cfg.ValueLen = 128
	}
	if cfg.SetPct == 0 {
		cfg.SetPct = 10
	}
	if cfg.TTLSecs <= 0 {
		cfg.TTLSecs = 1
	}
	if cfg.HotKeyPct == 0 {
		cfg.HotKeyPct = 20
	}
	if cfg.HotOpPct == 0 {
		cfg.HotOpPct = 98
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x45564943 // "EVIC"
	}
	opts := []store.Option{
		store.WithShardBuckets(1024),
		store.WithMaintenanceInterval(time.Millisecond),
	}
	if cfg.Budget > 0 {
		opts = append(opts, store.WithByteBudget(cfg.Budget))
	}
	s := store.NewStrings(opts...)
	defer s.Close()
	val := strings.Repeat("v", cfg.ValueLen)

	for k := uint64(1); k <= cfg.Keys; k++ {
		s.SetHashed(mixKey(k), val)
	}
	s.Quiesce()
	runtime.GC()

	var (
		stop     atomic.Bool
		wg       sync.WaitGroup
		ready    sync.WaitGroup
		mu       sync.Mutex
		total    EvictResult
		sampleWg sync.WaitGroup
	)
	total.Budget = cfg.Budget

	// The bytes_used sampler: the governance claim lives in its max, not
	// in any single end-of-run reading.
	var bytesMax atomic.Int64
	var bytesSum, bytesN atomic.Int64
	sampleWg.Add(1)
	go func() {
		defer sampleWg.Done()
		for !stop.Load() {
			b := s.BytesUsed()
			if b > bytesMax.Load() {
				bytesMax.Store(b)
			}
			bytesSum.Add(b)
			bytesN.Add(1)
			time.Sleep(time.Millisecond)
		}
	}()

	started := make(chan struct{})
	setCut := uint64(cfg.SetPct)
	hotCut := uint64(cfg.HotOpPct)
	hotKeys := cfg.Keys * uint64(cfg.HotKeyPct) / 100
	if hotKeys == 0 {
		hotKeys = 1
	}
	coldKeys := cfg.Keys - hotKeys
	if coldKeys == 0 {
		coldKeys = 1
	}
	for t := 0; t < cfg.Threads; t++ {
		wg.Add(1)
		ready.Add(1)
		go func(id uint64) {
			defer wg.Done()
			keyr := rng.NewXorshift(seed + id*0x9E3779B9)
			opr := rng.NewXorshift(seed ^ (id+1)*0xBF58476D1CE4E5B9)
			var gets, hits, refills, ops uint64
			ready.Done()
			<-started
			for it := 0; ; it++ {
				if it&31 == 0 && stop.Load() {
					break
				}
				// Hotspot draw: hot keys are 1..hotKeys, cold keys the
				// remainder, both uniform within their set.
				k := keyr.Next()
				if k%100 < hotCut {
					k = 1 + (k/100)%hotKeys
				} else {
					k = 1 + hotKeys + (k/100)%coldKeys
				}
				key := mixKey(k)
				if opr.Next()%100 < setCut {
					if cfg.TTLPct > 0 && int(opr.Next()%100) < cfg.TTLPct {
						s.SetEXHashed(key, val, cfg.TTLSecs)
					} else {
						s.SetHashed(key, val)
					}
				} else {
					gets++
					if _, ok := s.GetHashed(key); ok {
						hits++
					} else {
						// Read-through refill: a cache miss is a fetch
						// plus a store, which is exactly the insertion
						// pressure that makes the budget loop work.
						s.SetHashed(key, val)
						refills++
					}
				}
				ops++
			}
			mu.Lock()
			total.Ops += ops
			total.Gets += gets
			total.Hits += hits
			total.Refills += refills
			mu.Unlock()
		}(uint64(t))
	}
	ready.Wait()
	begin := time.Now()
	close(started)
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	sampleWg.Wait()
	total.Elapsed = time.Since(begin)

	s.Quiesce()
	total.MaxProcs = runtime.GOMAXPROCS(0)
	total.Mops = float64(total.Ops) / total.Elapsed.Seconds() / 1e6
	if total.Gets > 0 {
		total.HitRate = float64(total.Hits) / float64(total.Gets)
	}
	total.BytesMax = bytesMax.Load()
	if n := bytesN.Load(); n > 0 {
		total.BytesAvg = bytesSum.Load() / n
	}
	total.BytesFinal = s.BytesUsed()
	total.ExpiredLazy, total.ExpiredSwept, total.Evicted = s.TTLStats()
	total.FinalLen = s.Len()
	return total
}
