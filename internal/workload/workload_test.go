package workload

import (
	"testing"
	"time"

	"github.com/optik-go/optik/ds"
	"github.com/optik-go/optik/ds/list"
	"github.com/optik-go/optik/ds/queue"
)

func TestRunSetBasics(t *testing.T) {
	cfg := Config{
		Threads:       4,
		Duration:      50 * time.Millisecond,
		InitialSize:   128,
		UpdatePct:     20,
		SampleLatency: true,
	}
	res := RunSet(cfg, func() ds.Set { return list.NewOptik() })
	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if res.Mops <= 0 {
		t.Fatal("throughput not positive")
	}
	var sum uint64
	for _, c := range res.Counts {
		sum += c
	}
	if sum != res.Ops {
		t.Fatalf("counts sum %d != ops %d", sum, res.Ops)
	}
	// Effective updates should be in the neighbourhood of the target 20%
	// (the key range doubles the attempted updates; allow slack).
	if res.EffectiveUpdates < 0.08 || res.EffectiveUpdates > 0.35 {
		t.Fatalf("effective updates = %v, want ~0.2", res.EffectiveUpdates)
	}
	if res.Latency[SearchSuc].Count == 0 {
		t.Fatal("no successful-search latency samples")
	}
	if res.Latency[SearchSuc].P95 < res.Latency[SearchSuc].P5 {
		t.Fatal("latency percentiles inverted")
	}
}

func TestRunSetZipf(t *testing.T) {
	cfg := Config{
		Threads:     2,
		Duration:    30 * time.Millisecond,
		InitialSize: 64,
		UpdatePct:   20,
		Zipf:        true,
	}
	res := RunSet(cfg, func() ds.Set { return list.NewLazy() })
	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
}

func TestRunSetValidatesConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad config")
		}
	}()
	RunSet(Config{}, func() ds.Set { return list.NewOptik() })
}

func TestOpKindStrings(t *testing.T) {
	want := []string{"srch-suc", "insr-suc", "delt-suc", "srch-fal", "insr-fal", "delt-fal"}
	for k := OpKind(0); k < numOpKinds; k++ {
		if k.String() != want[k] {
			t.Fatalf("kind %d = %q, want %q", k, k.String(), want[k])
		}
	}
}

func TestRunQueueMixes(t *testing.T) {
	for _, enq := range []int{40, 50, 60} {
		cfg := QueueConfig{
			Threads:       4,
			Duration:      30 * time.Millisecond,
			InitialSize:   1024,
			EnqueuePct:    enq,
			SampleLatency: true,
		}
		res := RunQueue(cfg, func() ds.Queue { return queue.NewMSLF() })
		if res.Ops == 0 {
			t.Fatalf("enq=%d: no ops", enq)
		}
		if res.Enqueues+res.Dequeues != res.Ops {
			t.Fatalf("enq=%d: ops mismatch", enq)
		}
		frac := float64(res.Enqueues) / float64(res.Ops)
		if frac < float64(enq)/100-0.1 || frac > float64(enq)/100+0.1 {
			t.Fatalf("enq=%d: enqueue fraction %v", enq, frac)
		}
		if res.EnqLatency.Count == 0 || res.DeqLatency.Count == 0 {
			t.Fatalf("enq=%d: missing latency samples", enq)
		}
	}
}

func TestRunLockImpls(t *testing.T) {
	for _, impl := range LockImpls {
		res := RunLock(LockConfig{Threads: 4, Duration: 30 * time.Millisecond}, impl)
		if res.Validations == 0 {
			t.Fatalf("%s: no validated acquisitions", impl)
		}
		if res.CASPerValidation <= 0 {
			t.Fatalf("%s: CAS/validation = %v", impl, res.CASPerValidation)
		}
	}
}

func TestOptikLockBeatsTTASUnderContention(t *testing.T) {
	// The headline Figure-5 property, at reduced scale: with many threads
	// on one lock, the OPTIK versioned lock completes more validated
	// acquisitions than lock-then-validate TTAS, and spends fewer CAS per
	// validation.
	if testing.Short() {
		t.Skip("contention comparison skipped in -short")
	}
	cfg := LockConfig{Threads: 8, Duration: 300 * time.Millisecond}
	ttas := RunLock(cfg, LockTTAS)
	optik := RunLock(cfg, LockOptikVersioned)
	if optik.Mops <= ttas.Mops {
		t.Logf("warning: optik %.2f Mops <= ttas %.2f Mops (timing-sensitive)", optik.Mops, ttas.Mops)
	}
	if optik.CASPerValidation > ttas.CASPerValidation {
		t.Fatalf("optik CAS/validation %.2f > ttas %.2f",
			optik.CASPerValidation, ttas.CASPerValidation)
	}
}

func TestMedianOf(t *testing.T) {
	i := 0
	res := MedianOf(3, func() Result {
		i++
		return Result{Mops: float64(i)}
	})
	if res.Mops != 2 {
		t.Fatalf("median run = %v, want the middle one", res.Mops)
	}
}

func TestMedianOfQueue(t *testing.T) {
	i := 0
	res := MedianOfQueue(3, func() QueueResult {
		i++
		return QueueResult{Mops: float64(i)}
	})
	if res.Mops != 2 {
		t.Fatalf("median run = %v", res.Mops)
	}
}
