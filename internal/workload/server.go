// The server scenario: the sharded store serving a cache-style request
// stream. Unlike the set workloads (fixed element count, strict set
// semantics), this drives the store's own surface — GET / upsert-SET /
// DEL over a zipfian key population, with a configurable fraction of the
// requests arriving as multi-key batches (MGet/MSet/MDel), the request
// shape real caches and their pipelined clients produce. Per-op latency
// rides in the same 16K rings as every other workload, split by request
// kind, with batched requests sampled per key so single and batched
// latencies compare directly.

package workload

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/optik-go/optik/internal/rng"
	"github.com/optik-go/optik/internal/stats"
)

// Target is the store surface the server workload drives. *store.Store
// satisfies it directly (the in-process rows); the net client in net.go
// satisfies it over a TCP connection pool (the loopback rows), so the
// same zipfian mix measures the store and the network front with one
// driver and the figures stay directly comparable.
type Target interface {
	// The request mix (prefill rides the MSet path).
	Get(key uint64) (uint64, bool)
	Set(key, val uint64) (uint64, bool)
	Del(key uint64) (uint64, bool)
	MGet(keys, vals []uint64, found []bool)
	MSet(keys, vals []uint64) int
	MDel(keys []uint64) int
	// The final accounting.
	Len() int
	Buckets() int
	Resizes() int
	ReclaimStats() (retired, reclaimed, reused uint64)
	Quiesce()
	Close()
}

// ServerConfig describes one server run.
type ServerConfig struct {
	Threads int
	// Duration of the measured run.
	Duration time.Duration
	// InitialSize is the prefilled element count; the key range defaults
	// to twice this, so roughly half the GETs miss and SETs split between
	// fresh inserts and replacements — sustained churn, not a frozen set.
	InitialSize int
	// KeyRange overrides the default 2×InitialSize range when positive.
	KeyRange uint64
	// SetPct and DelPct are the percentages of SET and DEL requests; the
	// rest are GETs. Defaults (when both are 0): 8% SET, 2% DEL.
	SetPct, DelPct int
	// BatchPct is the percentage of requests issued as BatchSize-key
	// batches through MGet/MSet/MDel rather than one key at a time.
	BatchPct int
	// BatchSize is the keys per batch (default 16).
	BatchSize int
	// Uniform selects uniform keys; the default is the paper's zipfian
	// (a = 0.9) — a served cache sees skew, not uniformity.
	Uniform bool
	// Seed makes runs reproducible; 0 picks a fixed default.
	Seed uint64
	// SampleLatency enables the per-thread latency rings.
	SampleLatency bool
}

// ServerResult aggregates one server run.
type ServerResult struct {
	// Ops counts individual key operations (a batch of 16 counts 16).
	Ops uint64
	// Mops is throughput in million key operations per second.
	Mops float64
	// Elapsed is the measured wall-clock duration.
	Elapsed time.Duration
	// Gets/Sets/Dels count key operations per kind; Hits counts GETs that
	// found their key.
	Gets, Sets, Dels, Hits uint64
	// HitRate is Hits/Gets.
	HitRate float64
	// Net is the measured phase's fresh inserts minus successful deletes;
	// once quiescent, PrefillLen + Net must equal FinalLen exactly (the
	// stress driver's conservation check).
	Net int64
	// PrefillLen is the target's Len when the measured window opened. On
	// a fresh target it equals InitialSize exactly; a warm external
	// server (optik-bench -net) may start above it.
	PrefillLen int
	// FinalLen is the store's Len after the final quiesce.
	FinalLen int
	// FinalBuckets and Resizes aggregate the shards after the run.
	FinalBuckets, Resizes int
	// NodesRetired/NodesReclaimed/NodesReused are the fleet's chain-node
	// reclamation counters.
	NodesRetired, NodesReclaimed, NodesReused uint64
	// Latency summarizes every sampled key operation (ns); zero without
	// SampleLatency.
	Latency stats.Summary
	// GetLatency/SetLatency/DelLatency split Latency by kind (single-key
	// requests only).
	GetLatency, SetLatency, DelLatency stats.Summary
	// BatchLatency summarizes batched requests per key: batch time divided
	// by batch size, so the amortization is directly comparable to the
	// single-key summaries.
	BatchLatency stats.Summary
	// MaxProcs records runtime.GOMAXPROCS at measurement time: throughput
	// and latency rows are only comparable across machines (or CI runner
	// generations) alongside the parallelism they actually had.
	MaxProcs int
}

// RunServer drives a server workload against a target from factory and
// returns the aggregate result. The factory builds the target so shard
// count and maintenance mode (or, for a net target, address and
// connection policy) stay with the caller; RunServer closes it after the
// final accounting. The target is normally fresh; a warm one (an
// external optik-server) is topped up to InitialSize live keys and its
// actual baseline reported as PrefillLen.
func RunServer(cfg ServerConfig, factory func() Target) ServerResult {
	if cfg.Threads <= 0 || cfg.InitialSize <= 0 || cfg.Duration <= 0 {
		panic("workload: Threads, InitialSize and Duration must be positive")
	}
	if cfg.SetPct == 0 && cfg.DelPct == 0 {
		cfg.SetPct, cfg.DelPct = 8, 2
	}
	if cfg.SetPct+cfg.DelPct > 100 || cfg.SetPct < 0 || cfg.DelPct < 0 {
		panic("workload: SetPct+DelPct must fit in [0, 100]")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x53455256 // "SERV"
	}
	keyRange := cfg.KeyRange
	if keyRange == 0 {
		keyRange = uint64(2 * cfg.InitialSize)
	}
	if keyRange < uint64(cfg.InitialSize) {
		// The prefill inserts InitialSize distinct keys; a smaller range
		// would spin forever instead of failing loudly.
		panic("workload: KeyRange must be >= InitialSize")
	}
	st := factory()
	defer st.Close()
	// Prefill tops the target up to InitialSize live keys, in MSet
	// batches sized to the remaining deficit: a batch can only insert
	// fewer keys than it carries (duplicates upsert in place), never
	// more, so a fresh target lands on exactly InitialSize — and over a
	// net target the batches pipeline instead of paying one round trip
	// per key. The loop goal is the live count, not a fresh-insert
	// count: a warm external server (optik-bench -net, second cell
	// onward) already holds most of the keyspace, and demanding
	// InitialSize *fresh* inserts from it would never terminate.
	pre := rng.NewXorshift(seed)
	preKeys := make([]uint64, 0, 512)
	preVals := make([]uint64, 512)
	for i := range preVals {
		preVals[i] = 1
	}
	base := st.Len()
	for base < cfg.InitialSize {
		n := cfg.InitialSize - base
		if n > 512 {
			n = 512
		}
		preKeys = preKeys[:n]
		for i := range preKeys {
			preKeys[i] = pre.Intn(keyRange) + 1
		}
		base += st.MSet(preKeys, preVals[:n])
	}
	runtime.GC()

	var (
		stop    atomic.Bool
		wg      sync.WaitGroup
		ready   sync.WaitGroup
		mu      sync.Mutex
		total   ServerResult
		allS    []float64
		getS    []float64
		setS    []float64
		delS    []float64
		batchS  []float64
		started = make(chan struct{})
	)
	setCut := uint64(cfg.SetPct)
	delCut := uint64(cfg.SetPct + cfg.DelPct)
	for t := 0; t < cfg.Threads; t++ {
		wg.Add(1)
		ready.Add(1)
		go func(id uint64) {
			defer wg.Done()
			// Per-thread setup stays outside the measured window: a zipfian
			// generator's zeta precomputation over a large key range can
			// rival a short run's whole duration (particularly under the
			// race detector), and a window that opens before the workers
			// exist measures nothing.
			var dist rng.Distribution
			if cfg.Uniform {
				dist = rng.NewUniform(keyRange, seed+id*0x9E3779B9)
			} else {
				dist = rng.NewZipf(keyRange, rng.DefaultZipfTheta, true, seed+id*0x9E3779B9)
			}
			opr := rng.NewXorshift(seed ^ (id+1)*0xBF58476D1CE4E5B9)
			keys := make([]uint64, cfg.BatchSize)
			vals := make([]uint64, cfg.BatchSize)
			found := make([]bool, cfg.BatchSize)
			var gets, sets, dels, hits, ops uint64
			var net int64
			var allR, getR, setR, delR, batchR ring
			ready.Done()
			<-started
			for it := 0; ; it++ {
				if it&31 == 0 && stop.Load() {
					break
				}
				roll := opr.Next() % 100
				batched := int(opr.Next()%100) < cfg.BatchPct
				var begin time.Time
				if cfg.SampleLatency {
					begin = time.Now()
				}
				if batched {
					for i := range keys {
						keys[i] = dist.NextKey()
					}
					switch {
					case roll < setCut:
						for i := range vals {
							vals[i] = id
						}
						ins := st.MSet(keys, vals)
						net += int64(ins)
						sets += uint64(len(keys))
					case roll < delCut:
						net -= int64(st.MDel(keys))
						dels += uint64(len(keys))
					default:
						st.MGet(keys, vals, found)
						for i := range found {
							if found[i] {
								hits++
							}
						}
						gets += uint64(len(keys))
					}
					ops += uint64(len(keys))
					if cfg.SampleLatency {
						perKey := float64(time.Since(begin).Nanoseconds()) / float64(len(keys))
						batchR.add(perKey)
						allR.add(perKey)
					}
					continue
				}
				key := dist.NextKey()
				switch {
				case roll < setCut:
					if _, replaced := st.Set(key, id); !replaced {
						net++
					}
					sets++
				case roll < delCut:
					if _, ok := st.Del(key); ok {
						net--
					}
					dels++
				default:
					if _, ok := st.Get(key); ok {
						hits++
					}
					gets++
				}
				ops++
				if cfg.SampleLatency {
					ns := float64(time.Since(begin).Nanoseconds())
					allR.add(ns)
					switch {
					case roll < setCut:
						setR.add(ns)
					case roll < delCut:
						delR.add(ns)
					default:
						getR.add(ns)
					}
				}
			}
			mu.Lock()
			total.Ops += ops
			total.Gets += gets
			total.Sets += sets
			total.Dels += dels
			total.Hits += hits
			total.Net += net
			allS = append(allS, allR.buf...)
			getS = append(getS, getR.buf...)
			setS = append(setS, setR.buf...)
			delS = append(delS, delR.buf...)
			batchS = append(batchS, batchR.buf...)
			mu.Unlock()
		}(uint64(t))
	}
	ready.Wait()
	begin := time.Now()
	close(started)
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	total.Elapsed = time.Since(begin)

	st.Quiesce()
	total.MaxProcs = runtime.GOMAXPROCS(0)
	total.Mops = float64(total.Ops) / total.Elapsed.Seconds() / 1e6
	if total.Gets > 0 {
		total.HitRate = float64(total.Hits) / float64(total.Gets)
	}
	total.PrefillLen = base
	total.FinalLen = st.Len()
	total.FinalBuckets = st.Buckets()
	total.Resizes = st.Resizes()
	total.NodesRetired, total.NodesReclaimed, total.NodesReused = st.ReclaimStats()
	if cfg.SampleLatency {
		total.Latency = stats.Summarize(allS)
		total.GetLatency = stats.Summarize(getS)
		total.SetLatency = stats.Summarize(setS)
		total.DelLatency = stats.Summarize(delS)
		total.BatchLatency = stats.Summarize(batchS)
	}
	return total
}
