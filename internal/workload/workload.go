// Package workload is the microbenchmark driver that regenerates the
// paper's evaluation (§5, Experimental Methodology):
//
//   - On every run the structure is initialized to a target size over a key
//     range twice that size, so roughly half of the attempted updates fail;
//     the reported update rate is the *effective* one (operations that
//     altered the structure), exactly as in the paper's graphs.
//   - Keys are drawn per-thread, uniformly or zipfian with a = 0.9 (largest
//     keys most popular).
//   - All structures share the same backoff policy (internal/backoff).
//   - Latency is sampled into a fixed 16K-entry ring per thread and
//     reported as the paper's five-percentile boxplots, per operation kind
//     and success/failure (srch/insr/delt × suc/fal).
//   - Results across repetitions are aggregated by median.
package workload

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/optik-go/optik/ds"
	"github.com/optik-go/optik/internal/rng"
	"github.com/optik-go/optik/internal/stats"
)

// OpKind indexes the six operation-outcome classes of the paper's latency
// boxplots (Figure 7 and 12).
type OpKind int

// Operation-outcome classes.
const (
	SearchSuc OpKind = iota
	InsertSuc
	DeleteSuc
	SearchFal
	InsertFal
	DeleteFal
	numOpKinds
)

// String returns the paper's graph label for the kind.
func (k OpKind) String() string {
	return [...]string{"srch-suc", "insr-suc", "delt-suc", "srch-fal", "insr-fal", "delt-fal"}[k]
}

// SampleRingSize matches the paper's per-thread latency arrays ("every
// thread holds an array of 16K latency measurements").
const SampleRingSize = 16 * 1024

// Config describes one search-structure workload.
type Config struct {
	Threads int
	// Duration of the measured run.
	Duration time.Duration
	// InitialSize is the structure's initial (and approximately sustained)
	// element count. The key range defaults to twice this.
	InitialSize int
	// KeyRange overrides the default 2×InitialSize range when positive.
	KeyRange uint64
	// UpdatePct is the *effective* update percentage as reported by the
	// paper's graphs. The driver issues 2×UpdatePct attempted updates
	// (half insertions, half deletions); with the doubled key range about
	// half of them fail, sustaining the target.
	UpdatePct int
	// Zipf selects the skewed key distribution (a = 0.9, largest keys most
	// popular).
	Zipf bool
	// Seed makes runs reproducible; 0 picks a fixed default.
	Seed uint64
	// SampleLatency enables the per-thread latency rings.
	SampleLatency bool
}

func (c Config) keyRange() uint64 {
	if c.KeyRange > 0 {
		return c.KeyRange
	}
	return uint64(2 * c.InitialSize)
}

// Result aggregates one run.
type Result struct {
	// Ops is the total number of completed operations.
	Ops uint64
	// Mops is throughput in million operations per second.
	Mops float64
	// Counts per operation-outcome class.
	Counts [numOpKinds]uint64
	// Latency boxplots per class (nanoseconds); empty without sampling.
	Latency [numOpKinds]stats.Summary
	// EffectiveUpdates is the fraction of all operations that modified the
	// structure.
	EffectiveUpdates float64
	// Elapsed is the measured wall-clock duration.
	Elapsed time.Duration
}

// ring is a fixed-capacity latency sample ring (the paper's per-thread
// 16K arrays): append until full, then overwrite oldest. Shared by the
// per-kind sampler below and the ramp/churn drivers.
type ring struct {
	buf []float64
	pos int
}

func (r *ring) add(ns float64) {
	if r.buf == nil {
		// Pre-size up front: growth reallocations inside the measured
		// window would pollute the very tail the rings exist to capture.
		r.buf = make([]float64, 0, SampleRingSize)
	}
	if len(r.buf) < SampleRingSize {
		r.buf = append(r.buf, ns)
		return
	}
	r.buf[r.pos] = ns
	r.pos = (r.pos + 1) % SampleRingSize
}

// worker state: per-kind sample rings.
type sampler struct {
	rings [numOpKinds]ring
}

func newSampler() *sampler { return &sampler{} }

func (s *sampler) add(k OpKind, ns float64) { s.rings[k].add(ns) }

// RunSet drives a search-structure workload and returns its result.
// factory is invoked once per run to build a fresh structure.
func RunSet(cfg Config, factory func() ds.Set) Result {
	if cfg.Threads <= 0 || cfg.InitialSize <= 0 || cfg.Duration <= 0 {
		panic("workload: Threads, InitialSize and Duration must be positive")
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0xD1CEB00C
	}
	s := factory()
	prefill(s, cfg.InitialSize, cfg.keyRange(), seed)
	// Collect garbage from previous runs (earlier algorithms' structures)
	// before the measured window, so the last series in a sweep is not
	// taxed with its predecessors' dead heap.
	runtime.GC()

	var (
		stop    atomic.Bool
		wg      sync.WaitGroup
		mu      sync.Mutex
		total   Result
		rings   [numOpKinds][]float64
		started = make(chan struct{})
	)
	updateCut := uint64(2 * cfg.UpdatePct) // attempted updates out of 100
	if updateCut > 100 {
		updateCut = 100
	}
	for t := 0; t < cfg.Threads; t++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			view := ds.HandleFor(s)
			dist := newDist(cfg, seed+id*0x9E3779B9)
			opr := rng.NewXorshift(seed ^ (id+1)*0xBF58476D1CE4E5B9)
			var smp *sampler
			if cfg.SampleLatency {
				smp = newSampler()
			}
			var counts [numOpKinds]uint64
			<-started
			// Check the stop flag every 32 operations: a per-op atomic
			// load of the shared flag costs ~20% of the harness CPU.
			for it := 0; ; it++ {
				if it&31 == 0 && stop.Load() {
					break
				}
				key := dist.NextKey()
				roll := opr.Next() % 100
				var kind OpKind
				var begin time.Time
				if smp != nil {
					begin = time.Now()
				}
				switch {
				case roll < updateCut/2: // insertion attempt
					if view.Insert(key, key) {
						kind = InsertSuc
					} else {
						kind = InsertFal
					}
				case roll < updateCut: // deletion attempt
					if _, ok := view.Delete(key); ok {
						kind = DeleteSuc
					} else {
						kind = DeleteFal
					}
				default:
					if _, ok := view.Search(key); ok {
						kind = SearchSuc
					} else {
						kind = SearchFal
					}
				}
				if smp != nil {
					smp.add(kind, float64(time.Since(begin).Nanoseconds()))
				}
				counts[kind]++
				pause(opr)
			}
			mu.Lock()
			for k := range counts {
				total.Counts[k] += counts[k]
				if smp != nil {
					rings[k] = append(rings[k], smp.rings[k].buf...)
				}
			}
			mu.Unlock()
		}(uint64(t))
	}
	begin := time.Now()
	close(started)
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	total.Elapsed = time.Since(begin)

	for k := range total.Counts {
		total.Ops += total.Counts[k]
	}
	total.Mops = float64(total.Ops) / total.Elapsed.Seconds() / 1e6
	if total.Ops > 0 {
		total.EffectiveUpdates = float64(total.Counts[InsertSuc]+total.Counts[DeleteSuc]) / float64(total.Ops)
	}
	if cfg.SampleLatency {
		for k := range rings {
			total.Latency[k] = stats.Summarize(rings[k])
		}
	}
	return total
}

// prefill inserts random distinct keys until the structure holds size
// elements.
func prefill(s ds.Set, size int, keyRange uint64, seed uint64) {
	r := rng.NewXorshift(seed)
	inserted := 0
	for inserted < size {
		key := r.Intn(keyRange) + 1
		if s.Insert(key, key) {
			inserted++
		}
	}
}

// newDist builds the per-thread key distribution.
func newDist(cfg Config, seed uint64) rng.Distribution {
	if cfg.Zipf {
		return rng.NewZipf(cfg.keyRange(), rng.DefaultZipfTheta, true, seed)
	}
	return rng.NewUniform(cfg.keyRange(), seed)
}

// pause waits briefly between iterations ("after every iteration, threads
// wait for a short duration, in order to avoid long runs").
func pause(r *rng.Xorshift) {
	n := int(r.Next() % 64)
	for i := 0; i < n; i++ {
		_ = i
	}
}

// MedianOf runs fn reps times and returns the run with median throughput
// (the paper reports "the median value of 11 repetitions").
func MedianOf(reps int, fn func() Result) Result {
	if reps <= 0 {
		panic("workload: reps must be positive")
	}
	results := make([]Result, reps)
	mops := make([]float64, reps)
	for i := range results {
		results[i] = fn()
		mops[i] = results[i].Mops
	}
	med := stats.Median(mops)
	best := 0
	bestDiff := diffAbs(results[0].Mops, med)
	for i, r := range results {
		if d := diffAbs(r.Mops, med); d < bestDiff {
			best, bestDiff = i, d
		}
	}
	return results[best]
}

func diffAbs(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
