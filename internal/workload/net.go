// The network face of the server workload: NetTarget adapts a pool of
// wire-protocol clients to the Target interface, so RunServer's zipfian
// GET/SET/DEL mix drives a TCP server with the exact driver that drives
// the in-process store — the FigNet and FigServer rows differ only in the
// transport. Batched operations map to pipelines (a 16-key MGet is 16 GET
// commands, one flush, 16 replies), so the workload's batch size IS the
// wire pipeline depth.

package workload

import (
	"sync"

	"github.com/optik-go/optik/server"
)

// NetTarget drives a wire-protocol server as a workload Target. Each
// borrowing goroutine gets its own connection (a server.Client is
// single-threaded); connections are pooled, so a run with T threads
// settles at T connections. Methods panic on connection or protocol
// errors — the load generator wants a loud failure, not a slow retry
// path inside the measured window.
type NetTarget struct {
	addr      string
	multibulk bool
	mu        sync.Mutex
	idle      []*server.Client
	all       []*server.Client
}

var _ Target = (*NetTarget)(nil)

// NewNetTarget returns a Target speaking to the server at addr.
// Connections are dialed lazily on first borrow.
func NewNetTarget(addr string) *NetTarget {
	return &NetTarget{addr: addr}
}

// NewNetTargetMultibulk returns a Target whose batched operations send
// true MGET/MSET/MDEL frames instead of pipelined scalars — the same
// request mix, exercising the server's wire-level batched handlers
// rather than its coalescer.
func NewNetTargetMultibulk(addr string) *NetTarget {
	return &NetTarget{addr: addr, multibulk: true}
}

// borrow pops an idle connection or dials a fresh one.
func (t *NetTarget) borrow() *server.Client {
	t.mu.Lock()
	if n := len(t.idle); n > 0 {
		c := t.idle[n-1]
		t.idle = t.idle[:n-1]
		t.mu.Unlock()
		return c
	}
	t.mu.Unlock()
	c, err := server.Dial(t.addr)
	if err != nil {
		panic("workload: net target dial: " + err.Error())
	}
	c.SetMultibulk(t.multibulk)
	t.mu.Lock()
	t.all = append(t.all, c)
	t.mu.Unlock()
	return c
}

func (t *NetTarget) put(c *server.Client) {
	t.mu.Lock()
	t.idle = append(t.idle, c)
	t.mu.Unlock()
}

// Close closes every connection the target ever dialed.
func (t *NetTarget) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, c := range t.all {
		c.Close()
	}
	t.all, t.idle = nil, nil
}

func (t *NetTarget) Get(key uint64) (uint64, bool) {
	c := t.borrow()
	v, ok := c.Get(key)
	t.put(c)
	return v, ok
}

func (t *NetTarget) Set(key, val uint64) (uint64, bool) {
	c := t.borrow()
	v, replaced := c.Set(key, val)
	t.put(c)
	return v, replaced
}

func (t *NetTarget) Del(key uint64) (uint64, bool) {
	c := t.borrow()
	v, ok := c.Del(key)
	t.put(c)
	return v, ok
}

func (t *NetTarget) MGet(keys, vals []uint64, found []bool) {
	c := t.borrow()
	c.MGet(keys, vals, found)
	t.put(c)
}

func (t *NetTarget) MSet(keys, vals []uint64) int {
	c := t.borrow()
	n := c.MSet(keys, vals)
	t.put(c)
	return n
}

func (t *NetTarget) MDel(keys []uint64) int {
	c := t.borrow()
	n := c.MDel(keys)
	t.put(c)
	return n
}

func (t *NetTarget) Len() int {
	c := t.borrow()
	n := c.Len()
	t.put(c)
	return n
}

func (t *NetTarget) Buckets() int {
	c := t.borrow()
	n := c.Buckets()
	t.put(c)
	return n
}

func (t *NetTarget) Resizes() int {
	c := t.borrow()
	n := c.Resizes()
	t.put(c)
	return n
}

func (t *NetTarget) ReclaimStats() (retired, reclaimed, reused uint64) {
	c := t.borrow()
	retired, reclaimed, reused = c.ReclaimStats()
	t.put(c)
	return
}

func (t *NetTarget) Quiesce() {
	c := t.borrow()
	c.Quiesce()
	t.put(c)
}
