// The connection-scaling scenario: many connections, few of them active —
// the C10K shape the shared-poller conn mode exists for. RunConns opens a
// large connection population against a wire server, drives a configurable
// active fraction with pipelined request bursts, and samples the server's
// STATS just before the window closes, so a figure row carries both the
// throughput/latency of the active conns and the memory the idle ones
// pinned (buffers_resident, the RSS proxy) under that exact load.

package workload

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/optik-go/optik/internal/rng"
	"github.com/optik-go/optik/internal/stats"
	"github.com/optik-go/optik/server"
)

// ConnsConfig describes one connection-scaling run.
type ConnsConfig struct {
	// Addr is the server to drive (the caller owns the server and its
	// conn-mode/idle-grace configuration — that is the variable under test).
	Addr string
	// Conns is the total connection population.
	Conns int
	// ActivePct is the percentage of connections actively issuing requests;
	// the rest sit connected and silent. At least one conn is always active.
	ActivePct int
	// Depth is the pipeline depth of each active burst (default 16): a
	// burst is one MGet or MSet of Depth keys — Depth commands, one flush.
	Depth int
	// Duration of the measured window.
	Duration time.Duration
	// KeyRange bounds the key space (default 4096; writes populate it).
	KeyRange uint64
	// SetPct is the percentage of bursts that write (default 10).
	SetPct int
	// Seed makes runs reproducible; 0 picks a fixed default.
	Seed uint64
	// SampleLatency enables the per-conn burst latency rings.
	SampleLatency bool
}

// ConnsResult aggregates one connection-scaling run.
type ConnsResult struct {
	// Conns and Active are the realized population split.
	Conns, Active int
	// Ops counts key operations completed by active conns (a Depth-16
	// burst counts 16); Mops is that over the measured window.
	Ops     uint64
	Mops    float64
	Elapsed time.Duration
	// Latency summarizes per-key burst latency in ns (burst round-trip
	// divided by Depth); zero without SampleLatency.
	Latency stats.Summary
	// Server-side STATS sampled just before the window closed, with the
	// population still connected: ConnsOpen is conns_open,
	// BuffersResident is the buffers_resident RSS proxy (idle conns past
	// the grace hold no buffers in poller mode), Shed and Rejected count
	// overload actions, Poller reports the live conn mode.
	ConnsOpen       int64
	BuffersResident int64
	Shed            int64
	Rejected        int64
	Poller          bool
	// Retries counts client-side transient-failure retries (busy replies
	// honored, redials) across the whole population.
	Retries  uint64
	MaxProcs int
}

// RunConns opens cfg.Conns connections to cfg.Addr, drives the active
// fraction for cfg.Duration, and returns the aggregate result. Dialing is
// parallel but bounded, and every connection round-trips one PING at open
// so the population is established (accepted, registered) before the
// window opens.
func RunConns(cfg ConnsConfig) ConnsResult {
	if cfg.Conns <= 0 || cfg.Duration <= 0 || cfg.Addr == "" {
		panic("workload: Addr, Conns and Duration must be set")
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 16
	}
	if cfg.KeyRange == 0 {
		cfg.KeyRange = 4096
	}
	if cfg.SetPct == 0 {
		cfg.SetPct = 10
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x434F4E4E // "CONN"
	}
	active := cfg.Conns * cfg.ActivePct / 100
	if active < 1 {
		active = 1
	}
	if active > cfg.Conns {
		active = cfg.Conns
	}

	// Establish the population: bounded parallel dial, one PING each.
	clients := make([]*server.Client, cfg.Conns)
	var dialErr atomic.Value
	var wg sync.WaitGroup
	const dialers = 32
	next := atomic.Int64{}
	for d := 0; d < dialers; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.Conns {
					return
				}
				c, err := server.Dial(cfg.Addr)
				if err != nil {
					dialErr.Store(err)
					return
				}
				c.Ping()
				clients[i] = c
			}
		}()
	}
	wg.Wait()
	defer func() {
		for _, c := range clients {
			if c != nil {
				c.Close()
			}
		}
	}()
	if err := dialErr.Load(); err != nil {
		panic("workload: conns dial: " + err.(error).Error())
	}

	var (
		stop    atomic.Bool
		ready   sync.WaitGroup
		mu      sync.Mutex
		total   ConnsResult
		samples []float64
		started = make(chan struct{})
	)
	total.Conns, total.Active = cfg.Conns, active
	for w := 0; w < active; w++ {
		wg.Add(1)
		ready.Add(1)
		go func(id uint64, cl *server.Client) {
			defer wg.Done()
			opr := rng.NewXorshift(seed ^ (id+1)*0x9E3779B97F4A7C15)
			keys := make([]uint64, cfg.Depth)
			vals := make([]uint64, cfg.Depth)
			found := make([]bool, cfg.Depth)
			var ops uint64
			var r ring
			ready.Done()
			<-started
			for it := 0; ; it++ {
				if it&7 == 0 && stop.Load() {
					break
				}
				for i := range keys {
					keys[i] = opr.Next()%cfg.KeyRange + 1
				}
				var begin time.Time
				if cfg.SampleLatency {
					begin = time.Now()
				}
				if int(opr.Next()%100) < cfg.SetPct {
					for i := range vals {
						vals[i] = id + 1
					}
					cl.MSet(keys, vals)
				} else {
					cl.MGet(keys, vals, found)
				}
				ops += uint64(cfg.Depth)
				if cfg.SampleLatency {
					r.add(float64(time.Since(begin).Nanoseconds()) / float64(cfg.Depth))
				}
			}
			mu.Lock()
			total.Ops += ops
			samples = append(samples, r.buf...)
			mu.Unlock()
		}(uint64(w), clients[w])
	}
	ready.Wait()
	begin := time.Now()
	close(started)
	time.Sleep(cfg.Duration)

	// Sample the server's view while the population is still fully
	// connected and the idle fraction has had the whole window to go past
	// its grace: this is the row's memory story.
	if st, err := server.Dial(cfg.Addr); err == nil {
		s := st.Stats()
		total.ConnsOpen = s["conns_open"]
		total.BuffersResident = s["buffers_resident"]
		total.Shed = s["conns_shed"]
		total.Rejected = s["conns_rejected"]
		total.Poller = s["poller"] == 1
		st.Close()
	}
	stop.Store(true)
	wg.Wait()
	total.Elapsed = time.Since(begin)
	total.Mops = float64(total.Ops) / total.Elapsed.Seconds() / 1e6
	for _, c := range clients {
		if c != nil {
			total.Retries += c.Retries()
		}
	}
	total.MaxProcs = runtime.GOMAXPROCS(0)
	if cfg.SampleLatency {
		total.Latency = stats.Summarize(samples)
	}
	return total
}
