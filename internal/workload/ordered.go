// The ordered scenario: the range-partitioned skip-list store serving a
// mixed point/range request stream — zipfian GET/SET/DEL exactly as the
// server workload, plus a configurable fraction of range scans, the query
// the ordered index exists for. Scans page with a fixed width from a
// zipfian start key, so hot regions are scanned as often as they are
// read, and scan latency rides its own ring for a direct per-kind
// comparison against point ops.

package workload

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/optik-go/optik/internal/rng"
	"github.com/optik-go/optik/internal/stats"
)

// OrderedTarget is the store surface the ordered workload drives.
// *store.Ordered satisfies it directly (in-process rows); OrderedNetTarget
// drives a server.NewOrdered over TCP with the same driver.
type OrderedTarget interface {
	Get(key uint64) (uint64, bool)
	Set(key, val uint64) (uint64, bool)
	Del(key uint64) (uint64, bool)
	// Scan fills keys/vals with the live entries in [from, to] ascending,
	// returning the count (bounded by len(keys)).
	Scan(from, to uint64, keys, vals []uint64) int
	Len() int
	ReclaimStats() (retired, reclaimed, reused uint64)
	Quiesce()
	Close()
}

// OrderedConfig describes one ordered run.
type OrderedConfig struct {
	Threads int
	// Duration of the measured run.
	Duration time.Duration
	// InitialSize is the prefilled element count; the key range defaults
	// to twice this.
	InitialSize int
	// KeyRange overrides the default 2×InitialSize range when positive.
	KeyRange uint64
	// SetPct and DelPct are the percentages of SET and DEL requests;
	// ScanPct the percentage of range scans; the rest are GETs. Defaults
	// (all three 0): 8% SET, 2% DEL, 10% SCAN.
	SetPct, DelPct, ScanPct int
	// ScanWidth is the page size of each scan (default 64): the scan
	// covers [k, k+2·ScanWidth·KeyRange/InitialSize] — about twice the
	// span that holds ScanWidth live keys — capped at ScanWidth entries.
	ScanWidth int
	// Uniform selects uniform keys; the default is the paper's zipfian.
	Uniform bool
	// Seed makes runs reproducible; 0 picks a fixed default.
	Seed uint64
	// SampleLatency enables the per-thread latency rings.
	SampleLatency bool
}

// OrderedResult aggregates one ordered run.
type OrderedResult struct {
	// Ops counts requests (a scan counts 1 regardless of page size).
	Ops uint64
	// Mops is throughput in million requests per second.
	Mops float64
	// Elapsed is the measured wall-clock duration.
	Elapsed time.Duration
	// Gets/Sets/Dels/Scans count requests per kind; Hits counts GET hits;
	// Scanned counts the entries all scans returned.
	Gets, Sets, Dels, Scans, Hits, Scanned uint64
	// HitRate is Hits/Gets.
	HitRate float64
	// Net is fresh inserts minus successful deletes in the measured phase.
	Net int64
	// PrefillLen and FinalLen bracket the run (FinalLen after the final
	// quiesce).
	PrefillLen, FinalLen int
	// TowersRetired/Reclaimed/Reused are the shared domain's tower
	// reclamation counters — nonzero Reused with no caller Quiesce is the
	// recycling acceptance signal.
	TowersRetired, TowersReclaimed, TowersReused uint64
	// Latency summarizes every sampled request (ns); Scan latency rides
	// its own summary (whole-page, not per-entry).
	Latency, GetLatency, SetLatency, ScanLatency stats.Summary
	// MaxProcs records runtime.GOMAXPROCS at measurement time.
	MaxProcs int
}

// RunOrdered drives the mixed point/scan workload against a target from
// factory and returns the aggregate result; the factory owns shard count
// and transport, RunOrdered closes the target after the final accounting.
func RunOrdered(cfg OrderedConfig, factory func() OrderedTarget) OrderedResult {
	if cfg.Threads <= 0 || cfg.InitialSize <= 0 || cfg.Duration <= 0 {
		panic("workload: Threads, InitialSize and Duration must be positive")
	}
	if cfg.SetPct == 0 && cfg.DelPct == 0 && cfg.ScanPct == 0 {
		cfg.SetPct, cfg.DelPct, cfg.ScanPct = 8, 2, 10
	}
	if cfg.SetPct+cfg.DelPct+cfg.ScanPct > 100 || cfg.SetPct < 0 || cfg.DelPct < 0 || cfg.ScanPct < 0 {
		panic("workload: SetPct+DelPct+ScanPct must fit in [0, 100]")
	}
	if cfg.ScanWidth <= 0 {
		cfg.ScanWidth = 64
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x4F524452 // "ORDR"
	}
	keyRange := cfg.KeyRange
	if keyRange == 0 {
		keyRange = uint64(2 * cfg.InitialSize)
	}
	if keyRange < uint64(cfg.InitialSize) {
		panic("workload: KeyRange must be >= InitialSize")
	}
	// Span that covers ~2×ScanWidth live keys at prefill density, so a
	// typical scan fills its page but a sparse region legitimately may not.
	scanSpan := 2 * uint64(cfg.ScanWidth) * keyRange / uint64(cfg.InitialSize)
	if scanSpan == 0 {
		scanSpan = uint64(cfg.ScanWidth)
	}

	st := factory()
	defer st.Close()
	// Prefill to InitialSize live keys (upserts; duplicates collapse).
	pre := rng.NewXorshift(seed)
	base := st.Len()
	for base < cfg.InitialSize {
		k := pre.Intn(keyRange) + 1
		if _, replaced := st.Set(k, 1); !replaced {
			base++
		}
	}
	runtime.GC()

	var (
		stop    atomic.Bool
		wg      sync.WaitGroup
		ready   sync.WaitGroup
		mu      sync.Mutex
		total   OrderedResult
		allS    []float64
		getS    []float64
		setS    []float64
		scanS   []float64
		started = make(chan struct{})
	)
	setCut := uint64(cfg.SetPct)
	delCut := uint64(cfg.SetPct + cfg.DelPct)
	scanCut := uint64(cfg.SetPct + cfg.DelPct + cfg.ScanPct)
	for t := 0; t < cfg.Threads; t++ {
		wg.Add(1)
		ready.Add(1)
		go func(id uint64) {
			defer wg.Done()
			var dist rng.Distribution
			if cfg.Uniform {
				dist = rng.NewUniform(keyRange, seed+id*0x9E3779B9)
			} else {
				dist = rng.NewZipf(keyRange, rng.DefaultZipfTheta, true, seed+id*0x9E3779B9)
			}
			opr := rng.NewXorshift(seed ^ (id+1)*0xBF58476D1CE4E5B9)
			pageK := make([]uint64, cfg.ScanWidth)
			pageV := make([]uint64, cfg.ScanWidth)
			var gets, sets, dels, scans, hits, scanned, ops uint64
			var net int64
			var allR, getR, setR, scanR ring
			ready.Done()
			<-started
			for it := 0; ; it++ {
				if it&31 == 0 && stop.Load() {
					break
				}
				roll := opr.Next() % 100
				key := dist.NextKey()
				var begin time.Time
				if cfg.SampleLatency {
					begin = time.Now()
				}
				switch {
				case roll < setCut:
					if _, replaced := st.Set(key, id); !replaced {
						net++
					}
					sets++
				case roll < delCut:
					if _, ok := st.Del(key); ok {
						net--
					}
					dels++
				case roll < scanCut:
					to := key + scanSpan
					if to < key || to == ^uint64(0) {
						// Wrapped (or landed on the tail sentinel): clamp to
						// the largest legal key.
						to = ^uint64(0) - 1
					}
					scanned += uint64(st.Scan(key, to, pageK, pageV))
					scans++
				default:
					if _, ok := st.Get(key); ok {
						hits++
					}
					gets++
				}
				ops++
				if cfg.SampleLatency {
					ns := float64(time.Since(begin).Nanoseconds())
					allR.add(ns)
					switch {
					case roll < setCut:
						setR.add(ns)
					case roll < delCut:
					case roll < scanCut:
						scanR.add(ns)
					default:
						getR.add(ns)
					}
				}
			}
			mu.Lock()
			total.Ops += ops
			total.Gets += gets
			total.Sets += sets
			total.Dels += dels
			total.Scans += scans
			total.Hits += hits
			total.Scanned += scanned
			total.Net += net
			allS = append(allS, allR.buf...)
			getS = append(getS, getR.buf...)
			setS = append(setS, setR.buf...)
			scanS = append(scanS, scanR.buf...)
			mu.Unlock()
		}(uint64(t))
	}
	ready.Wait()
	begin := time.Now()
	close(started)
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	total.Elapsed = time.Since(begin)

	// Accounting BEFORE any quiesce: the acceptance bar is that reuse
	// happens with zero caller-side quiescing — the operations' own handle
	// borrows and the scheduler's idle sweeps must have done it.
	total.TowersRetired, total.TowersReclaimed, total.TowersReused = st.ReclaimStats()
	st.Quiesce()
	total.MaxProcs = runtime.GOMAXPROCS(0)
	total.Mops = float64(total.Ops) / total.Elapsed.Seconds() / 1e6
	if total.Gets > 0 {
		total.HitRate = float64(total.Hits) / float64(total.Gets)
	}
	total.PrefillLen = base
	total.FinalLen = st.Len()
	if cfg.SampleLatency {
		total.Latency = stats.Summarize(allS)
		total.GetLatency = stats.Summarize(getS)
		total.SetLatency = stats.Summarize(setS)
		total.ScanLatency = stats.Summarize(scanS)
	}
	return total
}

// OrderedNetTarget adapts a pool of wire-protocol clients to
// OrderedTarget, the ordered counterpart of NetTarget: same lazy
// connection pool, same panic-on-error contract, with Scan riding the
// RANGE command.
type OrderedNetTarget struct {
	net NetTarget
}

var _ OrderedTarget = (*OrderedNetTarget)(nil)

// NewOrderedNetTarget returns an OrderedTarget speaking to the ordered
// server at addr.
func NewOrderedNetTarget(addr string) *OrderedNetTarget {
	return &OrderedNetTarget{net: NetTarget{addr: addr}}
}

func (t *OrderedNetTarget) Get(key uint64) (uint64, bool)      { return t.net.Get(key) }
func (t *OrderedNetTarget) Set(key, val uint64) (uint64, bool) { return t.net.Set(key, val) }
func (t *OrderedNetTarget) Del(key uint64) (uint64, bool)      { return t.net.Del(key) }
func (t *OrderedNetTarget) Len() int                           { return t.net.Len() }
func (t *OrderedNetTarget) Quiesce()                           { t.net.Quiesce() }
func (t *OrderedNetTarget) Close()                             { t.net.Close() }
func (t *OrderedNetTarget) ReclaimStats() (retired, reclaimed, reused uint64) {
	return t.net.ReclaimStats()
}

func (t *OrderedNetTarget) Scan(from, to uint64, keys, vals []uint64) int {
	c := t.net.borrow()
	n := c.Range(from, to, keys, vals)
	t.net.put(c)
	return n
}
