package workload

import (
	"runtime"
	"testing"
	"time"

	"github.com/optik-go/optik/ds"
	"github.com/optik-go/optik/ds/hashmap"
)

func TestRunChurnDrainsAndShrinks(t *testing.T) {
	const peak = 4000
	res := RunChurn(ChurnConfig{
		Threads: 4, PeakSize: peak, Cycles: 2, SearchPct: 30, SampleLatency: true,
	}, func() ds.Set { return hashmap.NewResizable(peak / 8) })

	if res.Ops == 0 || res.Mops <= 0 || res.Elapsed <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	// Conservation: once quiescent, the structure's count must equal the
	// net of successful inserts and deletes exactly.
	if res.FinalLen != res.Net {
		t.Fatalf("FinalLen = %d, Net = %d", res.FinalLen, res.Net)
	}
	if res.FinalLen < 0 || res.FinalLen > peak/16+4*churnBatch {
		t.Fatalf("FinalLen = %d, want within [0, trough+slack]", res.FinalLen)
	}
	// The run ends drained and quiesced: the resizable table must have
	// grown for the peak and then handed the buckets back. The bound is
	// derived from the actual final count (a stale grow batch can land
	// after the last flip): the quiesced table keeps at most the largest
	// power-of-two bucket count within the shrink band (4×FinalLen),
	// never below the 512-bucket floor.
	if res.Resizes < 3 {
		t.Fatalf("Resizes = %d, want grows plus shrinks", res.Resizes)
	}
	maxBuckets := 512
	for maxBuckets*2 <= 4*res.FinalLen {
		maxBuckets *= 2
	}
	if res.FinalBuckets < 512 || res.FinalBuckets > maxBuckets {
		t.Fatalf("FinalBuckets = %d for %d elements, want within [512, %d]",
			res.FinalBuckets, res.FinalLen, maxBuckets)
	}
	// Latency must be populated, phase-split, and sane.
	for name, s := range map[string]struct{ count int }{
		"all":    {res.Latency.Count},
		"grow":   {res.GrowLatency.Count},
		"drain":  {res.DrainLatency.Count},
		"search": {res.SearchLatency.Count},
	} {
		if s.count == 0 {
			t.Fatalf("%s latency summary empty", name)
		}
	}
	if res.Latency.P50 > res.Latency.P99 || res.Latency.P99 > res.Latency.Max {
		t.Fatalf("latency tail not ordered: %+v", res.Latency)
	}
	// Every phase transition quiesced (4 flips + the final settle).
	if res.Quiesces.Count < 4 {
		t.Fatalf("Quiesces.Count = %d, want >= 4", res.Quiesces.Count)
	}
}

func TestRunChurnSteadyPhase(t *testing.T) {
	const peak = 4000
	res := RunChurn(ChurnConfig{
		Threads: 4, PeakSize: peak, Cycles: 2, SearchPct: 30,
		SteadyOps: 2 * peak, SampleLatency: true,
	}, func() ds.Set { return hashmap.NewResizable(peak / 8) })

	if res.FinalLen != res.Net {
		t.Fatalf("FinalLen = %d, Net = %d", res.FinalLen, res.Net)
	}
	// The steady phase ran and was sampled separately from the mixed-in
	// searches of the update phases.
	if res.SteadyLatency.Count == 0 {
		t.Fatal("steady latency summary empty with SteadyOps set")
	}
	if res.SearchLatency.Count == 0 || res.GrowLatency.Count == 0 || res.DrainLatency.Count == 0 {
		t.Fatalf("update-phase summaries missing: %+v", res)
	}
	// Three flips per cycle now (grow->steady, steady->drain, drain->next)
	// plus the final settle.
	if res.Quiesces.Count < 6 {
		t.Fatalf("Quiesces.Count = %d with steady phases, want >= 6", res.Quiesces.Count)
	}
	// The recycling table reports its reclamation counters.
	if res.NodesRetired == 0 || res.NodesReused == 0 {
		t.Fatalf("reclamation counters empty: retired %d, reused %d", res.NodesRetired, res.NodesReused)
	}
	if res.NodesReused > res.NodesReclaimed || res.NodesReclaimed > res.NodesRetired {
		t.Fatalf("counter inversion: %d retired, %d reclaimed, %d reused",
			res.NodesRetired, res.NodesReclaimed, res.NodesReused)
	}
}

func TestRunChurnJanitoredStops(t *testing.T) {
	before := runtime.NumGoroutine()
	res := RunChurn(ChurnConfig{
		Threads: 2, PeakSize: 2000, Cycles: 1, SearchPct: 10,
	}, func() ds.Set { return hashmap.NewResizable(128, hashmap.WithJanitor()) })
	if res.FinalLen != res.Net {
		t.Fatalf("FinalLen = %d, Net = %d", res.FinalLen, res.Net)
	}
	// The driver must have stopped the janitor goroutine before returning.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines leaked past RunChurn: %d -> %d", before, now)
	}
}

func TestRunChurnFixedTable(t *testing.T) {
	// Structures without Quiesce/Buckets must still churn correctly.
	res := RunChurn(ChurnConfig{
		Threads: 2, PeakSize: 2000, Cycles: 1, SearchPct: 10,
	}, func() ds.Set { return hashmap.NewSlab(256) })
	if res.FinalLen != res.Net {
		t.Fatalf("FinalLen = %d, Net = %d", res.FinalLen, res.Net)
	}
	if res.FinalBuckets != 0 || res.Resizes != 0 || res.Quiesces.Count != 0 {
		t.Fatalf("fixed table reported resize hooks: %+v", res)
	}
	if res.Latency.Count != 0 {
		t.Fatalf("latency sampled without SampleLatency: %+v", res.Latency)
	}
}

func TestRunChurnValidatesConfig(t *testing.T) {
	for _, cfg := range []ChurnConfig{
		{Threads: 0, PeakSize: 100},
		{Threads: 1, PeakSize: 0},
		{Threads: 1, PeakSize: 100, TroughSize: 100},
		{Threads: 1, PeakSize: 100, TroughSize: -1},
		{Threads: 1, PeakSize: 100, SteadyOps: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %+v did not panic", cfg)
				}
			}()
			RunChurn(cfg, func() ds.Set { return hashmap.NewResizable(8) })
		}()
	}
}

func TestRunRampSamplesLatency(t *testing.T) {
	res := RunRamp(RampConfig{
		Threads: 2, StartSize: 64, TargetSize: 4000, SearchPct: 10, SampleLatency: true,
	}, func() ds.Set { return hashmap.NewResizable(64) })
	if res.Latency.Count == 0 {
		t.Fatal("latency summary empty with SampleLatency")
	}
	if res.Latency.P50 > res.Latency.P99 || res.Latency.P99 > res.Latency.Max {
		t.Fatalf("latency tail not ordered: %+v", res.Latency)
	}
}
