// The churn scenario: the inverse-and-back of the ramp. Long-lived
// traffic-serving systems do not only grow — a table sized for peak load
// must hand memory back when a delete storm drains it, or every scan
// afterwards walks mostly-empty slabs forever. Each churn cycle drives the
// structure up to a peak with insert-heavy traffic, optionally holds it
// there through a read-only steady phase, then down to a trough with
// delete-heavy traffic, with searches mixed into the update phases; like
// the ramp it is work-bound, not time-bound. Per-op latency is sampled on
// request so the cost of in-flight migrations — invisible in throughput
// averages — shows up in the p99/max tail, and the phase transitions
// drive structures that support it (hashmap.Resizable) to quiescence, so
// a table that can shrink must actually have shrunk by the time the run
// reports its final bucket count. Structures that recycle nodes report
// their reclamation counters alongside.

package workload

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/optik-go/optik/ds"
	"github.com/optik-go/optik/internal/rng"
	"github.com/optik-go/optik/internal/stats"
)

// Quiescer is implemented by structures with cooperative background work
// (incremental resize migration) that can be driven to completion on
// demand. The churn driver calls it at phase transitions and after the
// run, mirroring how an operator would drain maintenance between traffic
// bursts.
type Quiescer interface {
	Quiesce()
}

// bucketed and resizeCounted expose the monitoring hooks of the resizable
// tables without widening ds.Set.
type bucketed interface{ Buckets() int }
type resizeCounted interface{ Resizes() int }

// reclaimStatted exposes node-reclamation counters (hashmap.Resizable's
// qsbr domain) without widening ds.Set.
type reclaimStatted interface {
	ReclaimStats() (retired, reclaimed, reused uint64)
}

// stopper matches structures with background maintenance goroutines (the
// resizable table's janitor); the drivers stop them before reporting so
// no goroutine outlives its run.
type stopper interface{ Stop() }

// phase kinds within a cycle.
const (
	phaseGrow = iota
	phaseSteady
	phaseDrain
)

// ChurnConfig describes one churn run.
type ChurnConfig struct {
	Threads int
	// PeakSize is the element count at which a grow phase flips onward.
	PeakSize int
	// TroughSize is the element count at which a drain phase flips back;
	// 0 defaults to PeakSize/16.
	TroughSize int
	// Cycles is the number of round trips; 0 defaults to 1.
	Cycles int
	// SearchPct is the percentage of searches mixed into the grow and
	// drain phases.
	SearchPct int
	// SteadyOps, when positive, inserts a read-only steady phase of that
	// many operations (across all threads) between each grow and drain:
	// pure searches against the table at its peak, freshly quiesced — the
	// measure of scan cost against a table sized for the traffic that
	// just stopped.
	SteadyOps int
	// Seed makes runs reproducible; 0 picks a fixed default.
	Seed uint64
	// SampleLatency enables the per-thread, per-phase latency rings.
	SampleLatency bool
}

// ChurnResult aggregates one churn run.
type ChurnResult struct {
	// Ops is the total number of operations across all phases.
	Ops uint64
	// Mops is throughput in million operations per second over the run.
	Mops float64
	// Elapsed is the wall-clock time from first to last operation.
	Elapsed time.Duration
	// Net is the net number of successful inserts minus deletes; once
	// quiescent it must equal FinalLen exactly (a conservation check the
	// stress driver relies on).
	Net int
	// FinalLen is the structure's Len() after the final quiesce.
	FinalLen int
	// FinalBuckets is the bucket count after the final quiesce, for
	// structures that expose one (0 otherwise). A resizable table must
	// end near its floor, not at its peak.
	FinalBuckets int
	// Resizes is the lifetime resize count, for structures that expose
	// one (0 otherwise).
	Resizes int
	// NodesRetired/NodesReclaimed/NodesReused are the chain-node
	// reclamation counters for structures that expose them (0 otherwise).
	// Steady-state churn on a recycling table shows NodesReused tracking
	// NodesRetired; a copy-always table would show zeros.
	NodesRetired, NodesReclaimed, NodesReused uint64
	// Latency summarizes every sampled operation (ns); zero without
	// SampleLatency. Migration stalls live in P99/Max.
	Latency stats.Summary
	// GrowLatency and DrainLatency split Latency by update phase.
	GrowLatency, DrainLatency stats.Summary
	// SearchLatency summarizes the searches mixed into the update phases:
	// the measure of whether readers stayed lock-free through migrations.
	SearchLatency stats.Summary
	// SteadyLatency summarizes the read-only steady phase (zero without
	// SteadyOps): search latency against a quiescent table still sized
	// for its peak.
	SteadyLatency stats.Summary
	// Quiesces summarizes the phase-transition quiesce calls (ns per
	// call) — the cost of driving a resize migration home all at once.
	Quiesces stats.Summary
}

// churnBatch is how many operations a worker runs between checks of the
// shared phase and element counters, keeping them off the measured path.
const churnBatch = 256

// RunChurn drives cfg.Cycles grow/(steady/)drain round trips against a
// fresh structure from factory and returns the aggregate result.
func RunChurn(cfg ChurnConfig, factory func() ds.Set) ChurnResult {
	if cfg.Threads <= 0 || cfg.PeakSize <= 0 {
		panic("workload: Threads and PeakSize must be positive")
	}
	if cfg.TroughSize == 0 {
		cfg.TroughSize = cfg.PeakSize / 16
	}
	if cfg.TroughSize < 0 || cfg.TroughSize >= cfg.PeakSize {
		panic("workload: TroughSize must be in [0, PeakSize)")
	}
	if cfg.SteadyOps < 0 {
		panic("workload: SteadyOps must be non-negative")
	}
	if cfg.Cycles == 0 {
		cfg.Cycles = 1
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x4348524E // "CHRN"
	}
	s := factory()
	keyRange := uint64(2 * cfg.PeakSize)
	runtime.GC()

	perCycle := int64(2)
	if cfg.SteadyOps > 0 {
		perCycle = 3
	}
	// kindOf maps a phase index to its kind under either cycle shape.
	kindOf := func(p int64) int {
		k := p % perCycle
		if perCycle == 2 && k == 1 {
			return phaseDrain
		}
		return int(k)
	}

	var (
		wg        sync.WaitGroup
		phase     atomic.Int64 // index into the cycle schedule
		live      atomic.Int64 // net successful inserts - deletes
		steadyOps atomic.Int64 // operations performed in steady phases
		totalOps  atomic.Uint64
		mu        sync.Mutex
		all       []float64
		grow      []float64
		drain     []float64
		searches  []float64
		steady    []float64
		quiesces  []float64
		started   = make(chan struct{})
	)
	phases := perCycle * int64(cfg.Cycles)
	peak, trough := int64(cfg.PeakSize), int64(cfg.TroughSize)

	// quiesce drives cooperative maintenance home; its duration is the
	// stall an operator would see draining a resize in one go.
	quiesce := func() {
		q, ok := s.(Quiescer)
		if !ok {
			return
		}
		begin := time.Now()
		q.Quiesce()
		ns := float64(time.Since(begin).Nanoseconds())
		mu.Lock()
		quiesces = append(quiesces, ns)
		mu.Unlock()
	}

	for t := 0; t < cfg.Threads; t++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			view := ds.HandleFor(s)
			keys := rng.NewXorshift(seed + id*0x9E3779B9)
			opr := rng.NewXorshift(seed ^ (id+1)*0xBF58476D1CE4E5B9)
			var ops uint64
			var allR, growR, drainR, searchR, steadyR ring
			<-started
			for {
				p := phase.Load()
				if p >= phases {
					break
				}
				kind := kindOf(p)
				delta := int64(0)
				for i := 0; i < churnBatch; i++ {
					key := keys.Intn(keyRange) + 1
					isSearch := kind == phaseSteady || int(opr.Next()%100) < cfg.SearchPct
					var begin time.Time
					if cfg.SampleLatency {
						begin = time.Now()
					}
					switch {
					case isSearch:
						view.Search(key)
					case kind == phaseGrow:
						if view.Insert(key, key) {
							delta++
						}
					default:
						if _, ok := view.Delete(key); ok {
							delta--
						}
					}
					if cfg.SampleLatency {
						ns := float64(time.Since(begin).Nanoseconds())
						allR.add(ns)
						switch kind {
						case phaseSteady:
							steadyR.add(ns)
						case phaseGrow:
							growR.add(ns)
							if isSearch {
								searchR.add(ns)
							}
						default:
							drainR.add(ns)
							if isSearch {
								searchR.add(ns)
							}
						}
					}
				}
				ops += churnBatch
				l := live.Add(delta)
				flip := false
				switch kind {
				case phaseGrow:
					flip = l >= peak
				case phaseDrain:
					flip = l <= trough
				case phaseSteady:
					// Work-bound: the phase ends after SteadyOps operations
					// across all threads (stale batches from an already
					// flipped phase only overshoot the count, harmlessly).
					done := steadyOps.Add(churnBatch)
					flip = done >= (p/perCycle+1)*int64(cfg.SteadyOps)
				}
				if flip {
					// Exactly one worker flips each phase; it pays the
					// quiesce while the others churn on.
					if phase.CompareAndSwap(p, p+1) {
						quiesce()
					}
				}
			}
			totalOps.Add(ops)
			mu.Lock()
			all = append(all, allR.buf...)
			grow = append(grow, growR.buf...)
			drain = append(drain, drainR.buf...)
			searches = append(searches, searchR.buf...)
			steady = append(steady, steadyR.buf...)
			mu.Unlock()
		}(uint64(t))
	}
	begin := time.Now()
	close(started)
	wg.Wait()
	elapsed := time.Since(begin)
	// A background janitor must not race the final accounting below (and
	// must not outlive the run).
	if st, ok := s.(stopper); ok {
		st.Stop()
	}
	// Stale batches may have raced the last flip; settle once more.
	quiesce()

	res := ChurnResult{
		Ops:      totalOps.Load(),
		Elapsed:  elapsed,
		Net:      int(live.Load()),
		FinalLen: s.Len(),
	}
	res.Mops = float64(res.Ops) / elapsed.Seconds() / 1e6
	if b, ok := s.(bucketed); ok {
		res.FinalBuckets = b.Buckets()
	}
	if rc, ok := s.(resizeCounted); ok {
		res.Resizes = rc.Resizes()
	}
	if rs, ok := s.(reclaimStatted); ok {
		res.NodesRetired, res.NodesReclaimed, res.NodesReused = rs.ReclaimStats()
	}
	if cfg.SampleLatency {
		res.Latency = stats.Summarize(all)
		res.GrowLatency = stats.Summarize(grow)
		res.DrainLatency = stats.Summarize(drain)
		res.SearchLatency = stats.Summarize(searches)
		res.SteadyLatency = stats.Summarize(steady)
	}
	res.Quiesces = stats.Summarize(quiesces)
	return res
}
