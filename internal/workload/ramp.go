// The resize-under-load scenario: unlike the steady-state workloads of the
// paper (fixed size, fixed key range), the ramp starts a structure small
// and drives it far past its initial capacity with insert-heavy traffic.
// Fixed-bucket tables degrade to long chains; a resizable table must
// migrate concurrently with the traffic. The run is work-bound, not
// time-bound: it ends when the structure has absorbed the target number of
// elements.

package workload

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/optik-go/optik/ds"
	"github.com/optik-go/optik/internal/rng"
	"github.com/optik-go/optik/internal/stats"
)

// RampConfig describes one resize-under-load run.
type RampConfig struct {
	Threads int
	// StartSize is the prefill (and the capacity hint fixed tables are
	// built with).
	StartSize int
	// TargetSize is the element count at which the ramp stops.
	TargetSize int
	// SearchPct is the percentage of non-insert traffic mixed in (searches
	// over the already-inserted range); the rest are insert attempts.
	SearchPct int
	// Seed makes runs reproducible; 0 picks a fixed default.
	Seed uint64
	// SampleLatency enables the per-thread latency rings, so migration
	// stalls during the ramp show up in the p99/max tail.
	SampleLatency bool
}

// RampResult aggregates one ramp run.
type RampResult struct {
	// Ops is the total number of operations (insert attempts + searches).
	Ops uint64
	// Mops is throughput in million operations per second over the ramp.
	Mops float64
	// Elapsed is the wall-clock time from first to last operation.
	Elapsed time.Duration
	// FinalLen is the structure's Len() after the ramp (== TargetSize up
	// to the overshoot of the last concurrent batch).
	FinalLen int
	// Latency summarizes every sampled operation (ns); zero without
	// SampleLatency.
	Latency stats.Summary
}

// rampBatch is how many operations a worker runs between checks of the
// shared progress counter, keeping the counter off the measured hot path.
const rampBatch = 256

// RunRamp prefills the structure to StartSize and then drives insert-heavy
// traffic (keys drawn uniformly from [1, 2×TargetSize]) until TargetSize
// elements are resident. factory builds the structure under test.
func RunRamp(cfg RampConfig, factory func() ds.Set) RampResult {
	if cfg.Threads <= 0 || cfg.StartSize <= 0 || cfg.TargetSize <= cfg.StartSize {
		panic("workload: Threads and StartSize must be positive, TargetSize > StartSize")
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x52414D50 // "RAMP"
	}
	s := factory()
	keyRange := uint64(2 * cfg.TargetSize)
	prefill(s, cfg.StartSize, keyRange, seed)
	runtime.GC()

	var (
		wg       sync.WaitGroup
		inserted atomic.Int64
		totalOps atomic.Uint64
		mu       sync.Mutex
		samples  []float64
		started  = make(chan struct{})
	)
	inserted.Store(int64(cfg.StartSize))
	target := int64(cfg.TargetSize)
	for t := 0; t < cfg.Threads; t++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			view := ds.HandleFor(s)
			keys := rng.NewXorshift(seed + id*0x9E3779B9)
			opr := rng.NewXorshift(seed ^ (id+1)*0xBF58476D1CE4E5B9)
			var ops uint64
			var smp ring
			<-started
			for inserted.Load() < target {
				batchInserted := int64(0)
				for i := 0; i < rampBatch; i++ {
					key := keys.Intn(keyRange) + 1
					var begin time.Time
					if cfg.SampleLatency {
						begin = time.Now()
					}
					if int(opr.Next()%100) < cfg.SearchPct {
						view.Search(key)
					} else if view.Insert(key, key) {
						batchInserted++
					}
					if cfg.SampleLatency {
						smp.add(float64(time.Since(begin).Nanoseconds()))
					}
				}
				ops += rampBatch
				if batchInserted > 0 {
					inserted.Add(batchInserted)
				}
			}
			totalOps.Add(ops)
			mu.Lock()
			samples = append(samples, smp.buf...)
			mu.Unlock()
		}(uint64(t))
	}
	begin := time.Now()
	close(started)
	wg.Wait()
	elapsed := time.Since(begin)
	// Stop any background maintenance goroutine before the final
	// accounting (no-op for structures without one).
	if st, ok := s.(stopper); ok {
		st.Stop()
	}

	res := RampResult{
		Ops:      totalOps.Load(),
		Elapsed:  elapsed,
		FinalLen: s.Len(),
	}
	res.Mops = float64(res.Ops) / elapsed.Seconds() / 1e6
	if cfg.SampleLatency {
		res.Latency = stats.Summarize(samples)
	}
	return res
}
