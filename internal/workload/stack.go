package workload

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/optik-go/optik/ds"
	"github.com/optik-go/optik/internal/rng"
)

// RunStack drives a 50/50 push/pop workload (§5.5's brief stack
// experiment) and returns throughput in Mops/s.
func RunStack(threads int, duration time.Duration, factory func() ds.Stack) float64 {
	if threads <= 0 || duration <= 0 {
		panic("workload: threads and duration must be positive")
	}
	s := factory()
	for i := 0; i < 1024; i++ {
		s.Push(uint64(i + 1))
	}
	var (
		stop    atomic.Bool
		ops     atomic.Uint64
		wg      sync.WaitGroup
		started = make(chan struct{})
	)
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			r := rng.NewXorshift(id + 1)
			var local uint64
			<-started
			// Check the stop flag every 32 operations: a per-op atomic
			// load of the shared flag costs ~20% of the harness CPU.
			for it := 0; ; it++ {
				if it&31 == 0 && stop.Load() {
					break
				}
				if r.Next()%2 == 0 {
					s.Push(r.Next())
				} else {
					s.Pop()
				}
				local++
				pause(r)
			}
			ops.Add(local)
		}(uint64(t))
	}
	begin := time.Now()
	close(started)
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	return float64(ops.Load()) / time.Since(begin).Seconds() / 1e6
}
