package workload

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/optik-go/optik/ds"
	"github.com/optik-go/optik/internal/rng"
	"github.com/optik-go/optik/internal/stats"
)

// QueueConfig describes one queue workload (§5.4 / Figure 12): an op mix of
// enqueues vs dequeues over a queue initialized with InitialSize elements.
// The paper's three mixes are 40/60 (decreasing size), 50/50 (stable) and
// 60/40 (increasing).
type QueueConfig struct {
	Threads     int
	Duration    time.Duration
	InitialSize int
	// EnqueuePct is the percentage of enqueue operations (the rest are
	// dequeues).
	EnqueuePct    int
	Seed          uint64
	SampleLatency bool
}

// Queue operation classes for latency reporting.
const (
	qEnq = iota
	qDeq
	numQueueKinds
)

// QueueResult aggregates one queue run.
type QueueResult struct {
	Ops      uint64
	Mops     float64
	Enqueues uint64
	Dequeues uint64
	// EmptyDequeues counts dequeues that found the queue empty.
	EmptyDequeues uint64
	// EnqLatency and DeqLatency are the per-operation boxplots (ns).
	EnqLatency stats.Summary
	DeqLatency stats.Summary
	Elapsed    time.Duration
}

// RunQueue drives a queue workload and returns its result.
func RunQueue(cfg QueueConfig, factory func() ds.Queue) QueueResult {
	if cfg.Threads <= 0 || cfg.Duration <= 0 {
		panic("workload: Threads and Duration must be positive")
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0xC0FFEE
	}
	q := factory()
	for i := 0; i < cfg.InitialSize; i++ {
		q.Enqueue(uint64(i + 1))
	}
	runtime.GC() // see RunSet: keep predecessors' garbage out of the window

	var (
		stop    atomic.Bool
		wg      sync.WaitGroup
		mu      sync.Mutex
		res     QueueResult
		enqLat  []float64
		deqLat  []float64
		started = make(chan struct{})
	)
	for t := 0; t < cfg.Threads; t++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			opr := rng.NewXorshift(seed ^ (id+1)*0x9E3779B97F4A7C15)
			var localEnq, localDeq, localEmpty uint64
			var enqS, deqS *sampler
			if cfg.SampleLatency {
				enqS, deqS = newSampler(), newSampler()
			}
			<-started
			// Check the stop flag every 32 operations: a per-op atomic
			// load of the shared flag costs ~20% of the harness CPU.
			for it := 0; ; it++ {
				if it&31 == 0 && stop.Load() {
					break
				}
				roll := opr.Next() % 100
				var begin time.Time
				if cfg.SampleLatency {
					begin = time.Now()
				}
				if roll < uint64(cfg.EnqueuePct) {
					q.Enqueue(opr.Next())
					localEnq++
					if enqS != nil {
						enqS.add(0, float64(time.Since(begin).Nanoseconds()))
					}
				} else {
					if _, ok := q.Dequeue(); !ok {
						localEmpty++
					}
					localDeq++
					if deqS != nil {
						deqS.add(0, float64(time.Since(begin).Nanoseconds()))
					}
				}
				pause(opr)
			}
			mu.Lock()
			res.Enqueues += localEnq
			res.Dequeues += localDeq
			res.EmptyDequeues += localEmpty
			if cfg.SampleLatency {
				enqLat = append(enqLat, enqS.rings[0].buf...)
				deqLat = append(deqLat, deqS.rings[0].buf...)
			}
			mu.Unlock()
		}(uint64(t))
	}
	begin := time.Now()
	close(started)
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	res.Elapsed = time.Since(begin)
	res.Ops = res.Enqueues + res.Dequeues
	res.Mops = float64(res.Ops) / res.Elapsed.Seconds() / 1e6
	if cfg.SampleLatency {
		res.EnqLatency = stats.Summarize(enqLat)
		res.DeqLatency = stats.Summarize(deqLat)
	}
	return res
}

// MedianOfQueue is MedianOf for queue runs.
func MedianOfQueue(reps int, fn func() QueueResult) QueueResult {
	if reps <= 0 {
		panic("workload: reps must be positive")
	}
	results := make([]QueueResult, reps)
	mops := make([]float64, reps)
	for i := range results {
		results[i] = fn()
		mops[i] = results[i].Mops
	}
	med := stats.Median(mops)
	best := 0
	bestDiff := diffAbs(results[0].Mops, med)
	for i, r := range results {
		if d := diffAbs(r.Mops, med); d < bestDiff {
			best, bestDiff = i, d
		}
	}
	return results[best]
}
