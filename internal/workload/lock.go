package workload

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/optik-go/optik/internal/core"
	"github.com/optik-go/optik/internal/locks"
)

// LockConfig describes the Figure-5 experiment: every thread performs
// validated lock acquisitions on one shared lock — snapshot the version, do
// trivial optimistic work, lock+validate, commit, unlock — and we count the
// throughput of successful validations and the CAS attempts each one cost.
type LockConfig struct {
	Threads  int
	Duration time.Duration
	Seed     uint64
}

// LockImpl names the Figure-5 contenders.
type LockImpl string

// Figure-5 lock implementations.
const (
	LockTTAS           LockImpl = "ttas"
	LockOptikVersioned LockImpl = "optik-versioned"
	LockOptikTicket    LockImpl = "optik-ticket"
)

// LockImpls lists the Figure-5 series in graph order.
var LockImpls = []LockImpl{LockTTAS, LockOptikTicket, LockOptikVersioned}

// LockResult aggregates one Figure-5 run.
type LockResult struct {
	// Validations is the number of successful validated acquisitions.
	Validations uint64
	// Mops is validated acquisitions per second, in millions.
	Mops float64
	// CASPerValidation is the average number of lock-word CAS attempts per
	// successful validation (Figure 5, right).
	CASPerValidation float64
	Elapsed          time.Duration
}

// RunLock drives the Figure-5 experiment for one implementation.
func RunLock(cfg LockConfig, impl LockImpl) LockResult {
	if cfg.Threads <= 0 || cfg.Duration <= 0 {
		panic("workload: Threads and Duration must be positive")
	}
	var (
		stop       atomic.Bool
		wg         sync.WaitGroup
		validated  atomic.Uint64
		casCount   atomic.Uint64
		sharedWord atomic.Uint64 // the "protected data"
		started    = make(chan struct{})
	)

	var ttas locks.VersionedTTAS
	var vlock core.Lock
	var tlock core.TicketLock

	worker := func() {
		defer wg.Done()
		var local, cas uint64
		<-started
		for !stop.Load() {
			switch impl {
			case LockTTAS:
				v := ttas.GetVersion()
				sharedWord.Load() // trivial optimistic work
				if ttas.LockAndValidate(v) {
					sharedWord.Add(1)
					ttas.UnlockCommit()
					local++
				}
			case LockOptikVersioned:
				v := vlock.GetVersionWait()
				sharedWord.Load()
				cas++
				if vlock.TryLockVersion(v) {
					sharedWord.Add(1)
					vlock.Unlock()
					local++
				}
			case LockOptikTicket:
				v := tlock.GetVersionWait()
				sharedWord.Load()
				cas++
				if tlock.TryLockVersion(v) {
					sharedWord.Add(1)
					tlock.Unlock()
					local++
				}
			}
		}
		validated.Add(local)
		casCount.Add(cas)
	}

	for t := 0; t < cfg.Threads; t++ {
		wg.Add(1)
		go worker()
	}
	begin := time.Now()
	close(started)
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(begin)

	res := LockResult{
		Validations: validated.Load(),
		Elapsed:     elapsed,
	}
	res.Mops = float64(res.Validations) / elapsed.Seconds() / 1e6
	totalCAS := casCount.Load()
	if impl == LockTTAS {
		totalCAS = ttas.CASCount()
	}
	if res.Validations > 0 {
		res.CASPerValidation = float64(totalCAS) / float64(res.Validations)
	}
	return res
}
