package workload

import (
	"testing"
	"time"
)

// TestEvictSmoke is the tier-1 sanity pass over the eviction driver: a
// small budgeted run must end under budget with the governance counters
// moving. The real acceptance numbers live in the soak below.
func TestEvictSmoke(t *testing.T) {
	cfg := EvictConfig{
		Threads:  2,
		Duration: 150 * time.Millisecond,
		Keys:     4096,
		ValueLen: 100,
	}
	cfg.Budget = cfg.WorkingSetBytes() / 4
	res := RunEvict(cfg)
	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if res.BytesFinal > cfg.Budget {
		t.Fatalf("BytesFinal %d over budget %d after final quiesce", res.BytesFinal, cfg.Budget)
	}
	if res.Evicted == 0 {
		t.Fatal("working set 4x budget but nothing evicted")
	}
	if res.FinalLen == 0 {
		t.Fatal("store drained to empty — eviction should stop at the budget, not zero")
	}
}

// TestEvictSoakHoldsBudget is the tier-2 eviction soak (nightly; skipped
// under -short): zipfian churn with a working set 4x the byte budget
// must hold bytes_used within 10% of the budget across the whole run,
// and the approx-LRU victim selection must keep the hit rate within 5
// points of an ungoverned store holding the entire working set. TTL
// traffic rides along so swept expiry and eviction share the
// maintenance passes, as they do in production.
func TestEvictSoakHoldsBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("eviction soak: tier-2 nightly, skipped under -short")
	}
	cfg := EvictConfig{
		Threads:  4,
		Duration: 1500 * time.Millisecond,
		Keys:     16384,
		ValueLen: 200,
		SetPct:   10,
		TTLPct:   20,
		TTLSecs:  1,
	}
	budget := cfg.WorkingSetBytes() / 4

	base := RunEvict(cfg) // Budget 0: the ungoverned baseline.
	gov := cfg
	gov.Budget = budget
	res := RunEvict(gov)

	if base.BytesMax < 2*budget {
		t.Fatalf("baseline never exceeded 2x budget (max %d, budget %d) — the run measures nothing", base.BytesMax, budget)
	}
	if limit := budget + budget/10; res.BytesMax > limit {
		t.Errorf("bytes_used peaked at %d, want <= %d (budget %d + 10%%)", res.BytesMax, limit, budget)
	}
	if res.BytesFinal > budget {
		t.Errorf("BytesFinal %d over budget %d after final quiesce", res.BytesFinal, budget)
	}
	if res.Evicted == 0 {
		t.Error("no evictions under a 4x-budget working set")
	}
	// Expiry is asserted on the baseline: in the governed run the cold
	// TTL'd entries are usually evicted before their deadline (eviction
	// and expiry compete for exactly the same idle tail), while the
	// baseline holds everything until the sweep retires it.
	if base.ExpiredSwept+base.ExpiredLazy+res.ExpiredSwept+res.ExpiredLazy == 0 {
		t.Error("TTL traffic ran but no entries expired in either run")
	}
	if res.HitRate < base.HitRate-0.05 {
		t.Errorf("governed hit rate %.3f more than 5 points under baseline %.3f (evicted %d, refills %d)",
			res.HitRate, base.HitRate, res.Evicted, res.Refills)
	}
	t.Logf("baseline: hit %.3f bytes max %d swept %d lazy %d; governed: hit %.3f bytes max/avg/final %d/%d/%d budget %d evicted %d swept %d lazy %d",
		base.HitRate, base.BytesMax, base.ExpiredSwept, base.ExpiredLazy,
		res.HitRate, res.BytesMax, res.BytesAvg, res.BytesFinal,
		budget, res.Evicted, res.ExpiredSwept, res.ExpiredLazy)
}
