package workload

import (
	"testing"

	"github.com/optik-go/optik/ds"
	"github.com/optik-go/optik/ds/hashmap"
)

func TestRunRampReachesTarget(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() ds.Set
	}{
		{"resizable", func() ds.Set { return hashmap.NewResizable(64) }},
		{"slab-fixed", func() ds.Set { return hashmap.NewSlab(64) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res := RunRamp(RampConfig{
				Threads: 4, StartSize: 64, TargetSize: 5000, SearchPct: 10,
			}, tc.mk)
			if res.FinalLen < 5000 {
				t.Fatalf("FinalLen = %d, want >= 5000", res.FinalLen)
			}
			// Workers overshoot by at most one batch each.
			if max := 5000 + 4*rampBatch; res.FinalLen > max {
				t.Fatalf("FinalLen = %d, want <= %d", res.FinalLen, max)
			}
			if res.Mops <= 0 || res.Ops == 0 || res.Elapsed <= 0 {
				t.Fatalf("degenerate result: %+v", res)
			}
		})
	}
}

func TestRunRampValidatesConfig(t *testing.T) {
	for _, cfg := range []RampConfig{
		{Threads: 0, StartSize: 10, TargetSize: 100},
		{Threads: 1, StartSize: 0, TargetSize: 100},
		{Threads: 1, StartSize: 100, TargetSize: 100},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %+v did not panic", cfg)
				}
			}()
			RunRamp(cfg, func() ds.Set { return hashmap.NewResizable(8) })
		}()
	}
}
