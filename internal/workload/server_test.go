package workload

import (
	"testing"
	"time"

	"github.com/optik-go/optik/store"
)

// TestRunServerConservation runs the server workload — batched and
// single-key — and checks exact conservation and the result plumbing.
func TestRunServerConservation(t *testing.T) {
	cfg := ServerConfig{
		Threads:       4,
		Duration:      200 * time.Millisecond,
		InitialSize:   4096,
		SetPct:        20,
		DelPct:        10,
		BatchPct:      30,
		BatchSize:     8,
		SampleLatency: true,
	}
	res := RunServer(cfg, func() Target {
		return store.New(store.WithShards(4), store.WithShardBuckets(64))
	})
	if res.Ops == 0 || res.Gets == 0 || res.Sets == 0 || res.Dels == 0 {
		t.Fatalf("thin run: %+v", res)
	}
	if res.PrefillLen != cfg.InitialSize {
		t.Fatalf("cold-store prefill = %d, want exactly %d", res.PrefillLen, cfg.InitialSize)
	}
	if want := int64(res.PrefillLen) + res.Net; int64(res.FinalLen) != want {
		t.Fatalf("conservation: FinalLen = %d, want prefill %d + net %d = %d",
			res.FinalLen, res.PrefillLen, res.Net, want)
	}
	if res.HitRate <= 0 || res.HitRate > 1 {
		t.Fatalf("hit rate = %v", res.HitRate)
	}
	if res.Latency.P50 <= 0 || res.GetLatency.P50 <= 0 || res.BatchLatency.P50 <= 0 {
		t.Fatalf("latency summaries missing: all=%v get=%v batch=%v",
			res.Latency.P50, res.GetLatency.P50, res.BatchLatency.P50)
	}
	if res.FinalBuckets == 0 {
		t.Fatal("FinalBuckets not plumbed")
	}
}

// TestRunServerBatchOnly pins the pure-batch path (BatchPct 100) — every
// op flows through MGet/MSet/MDel.
func TestRunServerBatchOnly(t *testing.T) {
	res := RunServer(ServerConfig{
		Threads: 2, Duration: 100 * time.Millisecond, InitialSize: 1024,
		SetPct: 20, DelPct: 10, BatchPct: 100, BatchSize: 4,
	}, func() Target {
		return store.New(store.WithShards(2), store.WithShardBuckets(64), store.WithoutMaintenance())
	})
	if res.Ops == 0 {
		t.Fatal("no ops")
	}
	if res.PrefillLen != 1024 || int64(res.FinalLen) != 1024+res.Net {
		t.Fatalf("conservation: prefill = %d, FinalLen = %d, net = %d",
			res.PrefillLen, res.FinalLen, res.Net)
	}
	if res.Ops%4 != 0 {
		t.Fatalf("Ops = %d not a multiple of the batch size", res.Ops)
	}
}
