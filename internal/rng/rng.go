// Package rng provides the per-thread pseudo-random number generators and the
// key distributions used by the OPTIK microbenchmarks.
//
// The paper draws keys uniformly at random from a range twice the initial
// structure size, or from a zipfian distribution with parameter a = 0.9 where
// the largest keys are the most popular (§5, Experimental Methodology). Each
// worker owns its own generator, so no synchronization is needed on the hot
// path.
package rng

// Xorshift is a xorshift64* generator. It is the per-thread PRNG used by all
// workloads: tiny state, no allocation, and good enough statistical quality
// for key selection. The zero value is repaired to a fixed non-zero seed on
// first use.
type Xorshift struct {
	state uint64
}

// NewXorshift returns a generator seeded with seed. A zero seed is replaced
// with a fixed constant because the xorshift state must never be zero.
func NewXorshift(seed uint64) *Xorshift {
	x := &Xorshift{}
	x.Seed(seed)
	return x
}

// Seed resets the generator state.
func (x *Xorshift) Seed(seed uint64) {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	x.state = seed
}

// Next returns the next 64-bit value in the sequence.
func (x *Xorshift) Next() uint64 {
	s := Step(x.state)
	x.state = s
	return Mix(s)
}

// Step advances a xorshift64* state by one step, repairing a zero state to
// the fixed seed (the xorshift state must never be zero). Exposed for
// callers that keep their state in an atomic word instead of an Xorshift —
// the skip lists' per-goroutine level cells — so every generator in the
// repo runs the same sequence.
func Step(s uint64) uint64 {
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	s ^= s >> 12
	s ^= s << 25
	s ^= s >> 27
	return s
}

// Mix finalizes a stepped state into the output word (the * of
// xorshift64*): the multiply scrambles the low bits, which the raw state
// leaves weak.
func Mix(s uint64) uint64 { return s * 0x2545F4914F6CDD1D }

// Intn returns a value in [0, n). n must be positive.
func (x *Xorshift) Intn(n uint64) uint64 {
	if n == 0 {
		panic("rng: Intn with n == 0")
	}
	return x.Next() % n
}

// Float64 returns a value in [0, 1).
func (x *Xorshift) Float64() float64 {
	return float64(x.Next()>>11) / float64(1<<53)
}

// Distribution generates keys in [1, Range]. Key 0 is reserved by the data
// structures for sentinels, so distributions never emit it.
type Distribution interface {
	// NextKey returns the next key in [1, Range].
	NextKey() uint64
	// Range returns the number of distinct keys the distribution can emit.
	Range() uint64
}

// Uniform draws keys uniformly from [1, n].
type Uniform struct {
	rng *Xorshift
	n   uint64
}

// NewUniform returns a uniform distribution over [1, n] driven by its own
// xorshift generator.
func NewUniform(n, seed uint64) *Uniform {
	if n == 0 {
		panic("rng: NewUniform with empty range")
	}
	return &Uniform{rng: NewXorshift(seed), n: n}
}

// NextKey implements Distribution.
func (u *Uniform) NextKey() uint64 { return u.rng.Intn(u.n) + 1 }

// Range implements Distribution.
func (u *Uniform) Range() uint64 { return u.n }
