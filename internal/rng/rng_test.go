package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestXorshiftZeroSeedRepaired(t *testing.T) {
	x := NewXorshift(0)
	if x.Next() == 0 {
		t.Fatal("zero seed must be repaired to a non-zero state")
	}
	var y Xorshift // zero value
	if y.Next() == 0 {
		t.Fatal("zero-value generator must still produce output")
	}
}

func TestXorshiftDeterministic(t *testing.T) {
	a, b := NewXorshift(42), NewXorshift(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestXorshiftDifferentSeedsDiverge(t *testing.T) {
	a, b := NewXorshift(1), NewXorshift(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestXorshiftNonZeroForever(t *testing.T) {
	x := NewXorshift(7)
	for i := 0; i < 1_000_000; i++ {
		if x.state == 0 {
			t.Fatal("xorshift state reached zero")
		}
		x.Next()
	}
}

func TestIntnBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint16) bool {
		n := uint64(nRaw)%1000 + 1
		x := NewXorshift(seed)
		for i := 0; i < 100; i++ {
			if v := x.Intn(n); v >= n {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	NewXorshift(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	x := NewXorshift(3)
	for i := 0; i < 100000; i++ {
		f := x.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestUniformCoversRangeWithoutZero(t *testing.T) {
	const n = 64
	u := NewUniform(n, 9)
	seen := make(map[uint64]bool)
	for i := 0; i < 100000; i++ {
		k := u.NextKey()
		if k == 0 || k > n {
			t.Fatalf("key %d out of [1,%d]", k, n)
		}
		seen[k] = true
	}
	if len(seen) != n {
		t.Fatalf("uniform over %d keys only produced %d distinct keys", n, len(seen))
	}
}

func TestUniformRoughlyUniform(t *testing.T) {
	const n = 16
	const draws = 160000
	u := NewUniform(n, 11)
	counts := make([]int, n+1)
	for i := 0; i < draws; i++ {
		counts[u.NextKey()]++
	}
	want := float64(draws) / n
	for k := 1; k <= n; k++ {
		if math.Abs(float64(counts[k])-want) > want*0.1 {
			t.Fatalf("key %d drawn %d times, want ~%v", k, counts[k], want)
		}
	}
}

func TestZipfBounds(t *testing.T) {
	for _, n := range []uint64{1, 2, 10, 1024} {
		z := NewZipf(n, DefaultZipfTheta, true, 5)
		for i := 0; i < 10000; i++ {
			k := z.NextKey()
			if k == 0 || k > n {
				t.Fatalf("n=%d: key %d out of range", n, k)
			}
		}
	}
}

func TestZipfSkewLargestPopular(t *testing.T) {
	const n = 1024
	const draws = 200000
	z := NewZipf(n, DefaultZipfTheta, true, 7)
	counts := make(map[uint64]int)
	for i := 0; i < draws; i++ {
		counts[z.NextKey()]++
	}
	// With largestPopular, key n must be the single most popular key.
	maxKey, maxCount := uint64(0), -1
	for k, c := range counts {
		if c > maxCount {
			maxKey, maxCount = k, c
		}
	}
	if maxKey != n {
		t.Fatalf("most popular key = %d, want %d", maxKey, n)
	}
	// The head of the distribution must dominate: the top key should take a
	// few percent of all draws at theta=0.9 (paper: most contended node gets
	// ~15%% of requests on the small skewed list of 64 keys).
	if frac := float64(maxCount) / draws; frac < 0.01 {
		t.Fatalf("top key fraction %v, want >= 1%%", frac)
	}
}

func TestZipfSmallestPopularMirror(t *testing.T) {
	const n = 256
	const draws = 100000
	zl := NewZipf(n, DefaultZipfTheta, false, 3)
	counts := make(map[uint64]int)
	for i := 0; i < draws; i++ {
		counts[zl.NextKey()]++
	}
	maxKey, maxCount := uint64(0), -1
	for k, c := range counts {
		if c > maxCount {
			maxKey, maxCount = k, c
		}
	}
	if maxKey != 1 {
		t.Fatalf("most popular key = %d, want 1", maxKey)
	}
}

func TestZipfSmallSkewedContention(t *testing.T) {
	// Paper footnote 9: on the small skewed list (64 keys) the most
	// contended key receives ~15% of requests. Check we are in that
	// neighbourhood (10%..25%).
	const n = 64
	const draws = 200000
	z := NewZipf(n, DefaultZipfTheta, true, 13)
	top := 0
	for i := 0; i < draws; i++ {
		if z.NextKey() == n {
			top++
		}
	}
	frac := float64(top) / draws
	if frac < 0.08 || frac > 0.30 {
		t.Fatalf("top-key fraction %v, want ~0.15", frac)
	}
}

func TestZipfDeterministicPerSeed(t *testing.T) {
	a := NewZipf(100, 0.9, true, 21)
	b := NewZipf(100, 0.9, true, 21)
	for i := 0; i < 1000; i++ {
		if a.NextKey() != b.NextKey() {
			t.Fatal("same-seed zipf diverged")
		}
	}
}

func TestZipfPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewZipf(0, 0.9, true, 1) },
		func() { NewZipf(10, 0, true, 1) },
		func() { NewZipf(10, 1, true, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkXorshift(b *testing.B) {
	x := NewXorshift(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = x.Next()
	}
	_ = sink
}

func BenchmarkZipfNextKey(b *testing.B) {
	z := NewZipf(65536, DefaultZipfTheta, true, 1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = z.NextKey()
	}
	_ = sink
}
