package rng

import "math"

// Zipf draws keys from a zipfian distribution with exponent theta over
// [1, n], following the standard YCSB construction (Gray et al., "Quickly
// Generating Billion-Record Synthetic Databases"). Rank 1 is the most
// popular. The paper's skewed workloads use a = 0.9 with the *largest* keys
// the most popular, so we map rank r to key n - r + 1.
//
// The zeta constant is precomputed once at construction (O(n)); NextKey is
// O(1) and allocation free.
type Zipf struct {
	rng     *Xorshift
	n       uint64
	theta   float64
	zetaN   float64
	zeta2   float64
	alpha   float64
	eta     float64
	largest bool
}

// DefaultZipfTheta is the skew parameter used throughout the paper's skewed
// workloads ("zipfian distribution of keys with a = 0.9").
const DefaultZipfTheta = 0.9

// NewZipf builds a zipfian distribution over [1, n] with the given theta.
// If largestPopular is true the distribution is mirrored so the largest keys
// are the most popular, matching the paper's workloads.
func NewZipf(n uint64, theta float64, largestPopular bool, seed uint64) *Zipf {
	if n == 0 {
		panic("rng: NewZipf with empty range")
	}
	if theta <= 0 || theta >= 1 {
		panic("rng: NewZipf theta must be in (0, 1)")
	}
	z := &Zipf{
		rng:     NewXorshift(seed),
		n:       n,
		theta:   theta,
		zetaN:   zeta(n, theta),
		zeta2:   zeta(2, theta),
		largest: largestPopular,
	}
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetaN)
	return z
}

func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// NextKey implements Distribution.
func (z *Zipf) NextKey() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetaN
	var rank uint64
	switch {
	case uz < 1.0:
		rank = 1
	case uz < 1.0+math.Pow(0.5, z.theta):
		rank = 2
	default:
		rank = 1 + uint64(float64(z.n)*math.Pow(z.eta*u-z.eta+1, z.alpha))
	}
	if rank > z.n {
		rank = z.n
	}
	if z.largest {
		return z.n - rank + 1
	}
	return rank
}

// Range implements Distribution.
func (z *Zipf) Range() uint64 { return z.n }
