// Package backoff implements the exponential backoff policy shared by every
// data structure in the library, mirroring the paper's methodology: "For
// fairness, all data structures use the exact same backoff function. We use
// exponentially increasing backoff times with up to 16k cycles maximum
// backoff" (§5).
//
// Cycles are approximated by iterations of a pause loop; on a ~2-3 GHz core
// one loop iteration costs a couple of cycles, which keeps the cap in the
// same order of magnitude as the paper's 16k cycles.
package backoff

import (
	"runtime"
	"sync/atomic"
)

// MaxSpin is the maximum number of pause-loop iterations, the analog of the
// paper's 16k-cycle cap.
const MaxSpin = 16 * 1024

// InitialSpin is the first backoff window.
const InitialSpin = 64

// Backoff is an exponential backoff helper. The zero value is ready to use.
// It is not safe for concurrent use; each goroutine owns its own.
type Backoff struct {
	cur int
}

// Reset returns the backoff to its initial window. Call it after a
// successful operation so the next conflict starts from a short wait.
func (b *Backoff) Reset() { b.cur = 0 }

// Wait spins for the current window and doubles it, up to MaxSpin. The very
// first call in a fresh (or reset) state yields to the scheduler without
// spinning, which keeps uncontended restarts cheap.
func (b *Backoff) Wait() {
	if b.cur == 0 {
		b.cur = InitialSpin
		runtime.Gosched()
		return
	}
	spin(b.cur)
	if b.cur < MaxSpin {
		b.cur *= 2
	}
}

// Spins reports the width of the next spin window; exposed for tests.
func (b *Backoff) Spins() int { return b.cur }

// Spin busy-waits for n pause-loop iterations, capped at MaxSpin. It is the
// building block for proportional backoff (ticket locks wait in proportion
// to their distance from the head of the queue).
func Spin(n int) {
	if n > MaxSpin {
		n = MaxSpin
	}
	spin(n)
}

// Poll is one step of a polite busy-wait: a short on-core pause, yielding
// to the scheduler once every 64 calls. Pass the loop counter. Spin loops
// that yield on *every* poll pay a scheduler round-trip per lock handoff,
// which dominates short critical sections; pure spinning starves the
// runtime when goroutines outnumber cores. This is the middle ground used
// by every waiting loop in the library.
func Poll(i int) {
	if i&63 == 63 {
		runtime.Gosched()
		return
	}
	spin(InitialSpin / 2)
}

// spinSink defeats dead-code elimination of the spin loop; the single
// atomic store per call is negligible against the loop itself.
var spinSink atomic.Uint64

//go:noinline
func spin(n int) {
	// Go has no portable PAUSE intrinsic in the stdlib; an arithmetic loop
	// whose result escapes keeps the wait on-core without touching shared
	// cache lines.
	acc := uint64(0)
	for i := 0; i < n; i++ {
		acc += uint64(i) ^ acc>>3
	}
	spinSink.Store(acc)
}
