package backoff

import "testing"

func TestBackoffGrowsAndCaps(t *testing.T) {
	var b Backoff
	if b.Spins() != 0 {
		t.Fatal("fresh backoff should have zero window")
	}
	b.Wait() // first wait only yields
	if b.Spins() != InitialSpin {
		t.Fatalf("after first wait window = %d, want %d", b.Spins(), InitialSpin)
	}
	prev := b.Spins()
	for i := 0; i < 20; i++ {
		b.Wait()
		if b.Spins() < prev {
			t.Fatal("window shrank")
		}
		if b.Spins() > MaxSpin {
			t.Fatalf("window %d exceeds cap %d", b.Spins(), MaxSpin)
		}
		prev = b.Spins()
	}
	if b.Spins() != MaxSpin {
		t.Fatalf("window should have reached the cap, got %d", b.Spins())
	}
}

func TestBackoffReset(t *testing.T) {
	var b Backoff
	b.Wait()
	b.Wait()
	b.Reset()
	if b.Spins() != 0 {
		t.Fatal("Reset must clear the window")
	}
}

func TestBackoffDoubling(t *testing.T) {
	var b Backoff
	b.Wait()
	w1 := b.Spins()
	b.Wait()
	if b.Spins() != 2*w1 {
		t.Fatalf("expected doubling: %d -> %d", w1, b.Spins())
	}
}

func BenchmarkWaitCapped(b *testing.B) {
	var bo Backoff
	for i := 0; i < 20; i++ {
		bo.Wait()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Measure a full capped window.
		spin(MaxSpin)
	}
}
