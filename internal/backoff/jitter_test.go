package backoff

import (
	"testing"
	"time"
)

// TestJitteredWindowGrowth checks the window doubles from Base to Max and
// every draw lands in [window/2, window].
func TestJitteredWindowGrowth(t *testing.T) {
	j := Jittered{Base: 2 * time.Millisecond, Max: 16 * time.Millisecond}
	j.Seed(1)
	want := []time.Duration{2, 4, 8, 16, 16, 16}
	for i, w := range want {
		window := w * time.Millisecond
		d := j.Next()
		if d < window/2 || d > window {
			t.Fatalf("draw %d: got %v, want within [%v, %v]", i, d, window/2, window)
		}
	}
}

// TestJitteredReset checks Reset shrinks the window back to Base.
func TestJitteredReset(t *testing.T) {
	j := Jittered{Base: time.Millisecond, Max: 64 * time.Millisecond}
	j.Seed(7)
	for i := 0; i < 8; i++ {
		j.Next()
	}
	j.Reset()
	if d := j.Next(); d > time.Millisecond {
		t.Fatalf("after Reset, draw %v exceeds Base window", d)
	}
}

// TestJitteredDefaults checks the zero value is usable and bounded.
func TestJitteredDefaults(t *testing.T) {
	var j Jittered
	for i := 0; i < 20; i++ {
		d := j.Next()
		if d <= 0 || d > DefaultMax {
			t.Fatalf("zero-value draw %v outside (0, %v]", d, DefaultMax)
		}
	}
}

// TestJitteredDistinctStreams checks two unseeded instances do not draw
// identical sequences — synchronized retries would defeat the jitter.
func TestJitteredDistinctStreams(t *testing.T) {
	var a, b Jittered
	same := true
	for i := 0; i < 8; i++ {
		if a.Next() != b.Next() {
			same = false
		}
	}
	if same {
		t.Fatal("two unseeded Jittered instances drew identical sequences")
	}
}
