package backoff

import (
	"sync/atomic"
	"time"

	"github.com/optik-go/optik/internal/rng"
)

// Jittered is a duration-based exponential backoff with equal jitter, for
// waits that park a goroutine instead of spinning a core: a client retrying
// a `-ERR busy retry` reply, a dialer waiting out an overloaded listener.
// The spin-based Backoff above is the right tool inside a lock-free retry
// loop; Jittered is the right tool across a network round trip, where the
// contended resource recovers on millisecond scales and synchronized
// retries from many clients would re-create the very overload they are
// backing off from — the jitter decorrelates them.
//
// The zero value is ready to use with DefaultBase/DefaultMax. Not safe for
// concurrent use; each client owns its own.
type Jittered struct {
	// Base is the upper bound of the first window (default DefaultBase).
	Base time.Duration
	// Max caps the window growth (default DefaultMax).
	Max time.Duration

	cur time.Duration
	rng rng.Xorshift
	// seeded distinguishes "never used" from "explicitly seeded": distinct
	// instances must draw distinct jitter streams or a fleet of clients
	// rejected together would retry together, defeating the jitter.
	seeded bool
}

// Default window bounds: the busy reply means "the server is shedding on
// millisecond scales", so the first retry comes quickly and the cap stays
// well under human-visible latency.
const (
	DefaultBase = 2 * time.Millisecond
	DefaultMax  = 250 * time.Millisecond
)

// jitterSeq hands every unseeded Jittered a distinct stream without
// consulting the clock: a shared counter stepped by the golden ratio, the
// standard splitmix-style stream separator.
var jitterSeq atomic.Uint64

// Seed fixes the jitter stream (tests want reproducible draws).
func (j *Jittered) Seed(seed uint64) {
	j.rng.Seed(seed)
	j.seeded = true
}

// Reset returns the window to its initial size. Call it after a successful
// operation so the next overload starts from a short wait.
func (j *Jittered) Reset() { j.cur = 0 }

// Next returns the next wait: uniform in [window/2, window], with the
// window doubling from Base up to Max ("equal jitter" — the half floor
// guarantees forward progress while the random half decorrelates clients).
func (j *Jittered) Next() time.Duration {
	if !j.seeded {
		j.Seed(jitterSeq.Add(0x9E3779B97F4A7C15))
	}
	base, max := j.Base, j.Max
	if base <= 0 {
		base = DefaultBase
	}
	if max <= 0 {
		max = DefaultMax
	}
	if max < base {
		max = base
	}
	if j.cur < base {
		j.cur = base
	} else if j.cur *= 2; j.cur > max {
		j.cur = max
	}
	half := j.cur / 2
	return half + time.Duration(j.rng.Next()%uint64(half+1))
}

// Sleep parks the goroutine for Next().
func (j *Jittered) Sleep() { time.Sleep(j.Next()) }
