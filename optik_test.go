package optik_test

import (
	"sync"
	"testing"

	optik "github.com/optik-go/optik"
)

// TestPublicAPIPattern exercises the exported surface end to end: a shared
// counter updated through the OPTIK pattern by hand and via Update/Read.
func TestPublicAPIPattern(t *testing.T) {
	var l optik.Lock
	counter := 0

	// Manual pattern (the package-doc example).
	for {
		v := l.GetVersion()
		if !l.TryLockVersion(v) {
			continue
		}
		counter++
		l.Unlock()
		break
	}
	if counter != 1 {
		t.Fatalf("counter = %d", counter)
	}

	// Update helper, concurrently.
	const goroutines, iters = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				optik.Update(&l,
					func(optik.Version) optik.Outcome { return optik.Proceed },
					func() { counter++ })
			}
		}()
	}
	wg.Wait()
	if counter != 1+goroutines*iters {
		t.Fatalf("counter = %d, want %d", counter, 1+goroutines*iters)
	}

	// Read helper sees a consistent value.
	if got := optik.Read(&l, func() int { return counter }); got != counter {
		t.Fatalf("Read = %d", got)
	}
}

func TestPublicTicketLock(t *testing.T) {
	var l optik.TicketLock
	v := l.GetVersion()
	if !l.TryLockVersion(v) {
		t.Fatal("TryLockVersion failed on quiescent ticket lock")
	}
	if l.NumQueued() != 1 {
		t.Fatalf("NumQueued = %d, want 1", l.NumQueued())
	}
	l.Unlock()
	if l.GetVersion().Same(v) {
		t.Fatal("version must advance across the critical section")
	}
}

func TestAbortShortCircuits(t *testing.T) {
	var l optik.Lock
	before := l.GetVersion()
	ran := optik.Update(&l,
		func(optik.Version) optik.Outcome { return optik.Abort },
		func() { t.Error("critical section must not run") })
	if ran {
		t.Fatal("Abort must return false")
	}
	if l.GetVersion() != before {
		t.Fatal("Abort must not touch the lock")
	}
}
