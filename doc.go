// Package optik is a Go implementation of the OPTIK design pattern and the
// OPTIK-lock abstraction from:
//
//	Rachid Guerraoui and Vasileios Trigonakis.
//	Optimistic Concurrency with OPTIK. PPoPP 2016.
//
// OPTIK couples a version number with a lock at the same granularity. An
// operation (1) snapshots the version, (2) performs optimistic, read-only
// work, and (3) acquires the lock *and* validates the version in a single
// compare-and-swap (TryLockVersion). If the version moved, a conflicting
// critical section committed and the operation restarts — without ever
// having waited behind the lock. On success the critical section runs, and
// Unlock both publishes the new version and releases the lock.
//
// This package exposes the two OPTIK-lock implementations of the paper:
//
//   - Lock, built on versioned locks (one 64-bit counter, odd = locked); and
//   - TicketLock, built on ticket locks, which is fair and additionally
//     reports the queue length (NumQueued) for contention-adaptive designs
//     such as victim queues.
//
// The concurrent data structures built with OPTIK live in the ds/
// subpackages: ds/arraymap, ds/list, ds/hashmap, ds/skiplist, ds/queue and
// ds/stack. Each provides the paper's new OPTIK-based algorithms alongside
// the state-of-the-art baselines they are evaluated against (Harris and lazy
// lists, Herlihy and Fraser skip lists, Michael-Scott queues, a
// ConcurrentHashMap-style table, and a Treiber stack).
//
// # Minimal example
//
//	var l optik.Lock
//	for {
//		v := l.GetVersion()
//		// ... optimistic read-only work ...
//		if !l.TryLockVersion(v) {
//			continue // a conflicting update committed; retry
//		}
//		// ... critical section ...
//		l.Unlock()
//		break
//	}
package optik
