// Package optik is a Go implementation of the OPTIK design pattern and the
// OPTIK-lock abstraction from:
//
//	Rachid Guerraoui and Vasileios Trigonakis.
//	Optimistic Concurrency with OPTIK. PPoPP 2016.
//
// OPTIK couples a version number with a lock at the same granularity. An
// operation (1) snapshots the version, (2) performs optimistic, read-only
// work, and (3) acquires the lock *and* validates the version in a single
// compare-and-swap (TryLockVersion). If the version moved, a conflicting
// critical section committed and the operation restarts — without ever
// having waited behind the lock. On success the critical section runs, and
// Unlock both publishes the new version and releases the lock.
//
// This package exposes the two OPTIK-lock implementations of the paper:
//
//   - Lock, built on versioned locks (one 64-bit counter, odd = locked); and
//   - TicketLock, built on ticket locks, which is fair and additionally
//     reports the queue length (NumQueued) for contention-adaptive designs
//     such as victim queues.
//
// The concurrent data structures built with OPTIK live in the ds/
// subpackages: ds/arraymap, ds/list, ds/hashmap, ds/skiplist, ds/queue and
// ds/stack. Each provides the paper's new OPTIK-based algorithms alongside
// the state-of-the-art baselines they are evaluated against (Harris and lazy
// lists, Herlihy and Fraser skip lists, Michael-Scott queues, a
// ConcurrentHashMap-style table, and a Treiber stack).
//
// Beyond the paper, ds/hashmap adds two cache-conscious tables built on a
// slab of 64-byte buckets that co-locate each bucket's OPTIK lock, chain
// head and a small inline key/value prefix, so the common operation touches
// exactly one cache line: hashmap.Slab (fixed capacity) and
// hashmap.Resizable, which resizes in both directions under load — growing
// past its load threshold and shrinking (never below its initial floor)
// when deletes drain it — with lock-free reads across the old/new slab
// pair and per-bucket OPTIK-validated incremental migration either way: a
// grow migrates one bucket at a time, a shrink merges each old bucket pair
// into its single half-table target under both buckets' OPTIK locks.
// Resizable also carries a full node-lifecycle subsystem in the spirit of
// the paper's ssmem: overflow-chain nodes are retired to a quiescent-state
// domain (internal/qsbr) on delete and migration and recycled by later
// inserts, with the OPTIK version validation — not reader announcements —
// keeping the lock-free readers safe against reuse (hashmap.SlabReuse
// isolates that ablation on the fixed table). Background maintenance is a
// shared subsystem: one hashmap.Scheduler goroutine services any number
// of registered tables, watching each table's monotone operation counter
// for idleness (balanced insert/delete traffic still reads as active),
// quiescing idle tables — migrations driven home, retired nodes swept —
// and backing its poll interval off exponentially while everything
// sleeps; StartJanitor/Stop (or the WithJanitor construction option) wrap
// a private one-table scheduler, so an abandoned oversized table returns
// to its floor and recycles its nodes with no caller involvement.
//
// The store package composes the pieces into a servable system: a
// power-of-two fleet of Resizable shards behind a 64-bit hash router,
// with upsert Set semantics, batched MGet/MSet/MDel that visit each
// touched shard once (routing through a pooled scratch, so batches
// allocate nothing), aggregated statistics, and the whole fleet
// janitored by one shared Scheduler. store.Strings adds string keys and
// values on top — a chunked atomic-handle arena whose GETs validate a
// pair's hash against slot recycling, the OPTIK move lifted to the
// value layer — and the server package puts that store on the network:
// a RESP-flavored pipelined TCP protocol served by cmd/optik-server and
// measured by cmd/optik-bench's net figure. docs/ARCHITECTURE.md in the
// repository walks the full stack and tabulates, layer by layer, what
// is validated optimistically versus what is locked; docs/PROTOCOL.md
// specifies the wire format.
// The padding and striped-counter primitives behind them are reusable:
// Lock is complemented by cache-line-padded forms for dense lock arrays
// (internal/core's PaddedLock and PaddedTicketLock, internal/locks'
// PaddedTAS and PaddedTicket).
//
// # Minimal example
//
//	var l optik.Lock
//	for {
//		v := l.GetVersion()
//		// ... optimistic read-only work ...
//		if !l.TryLockVersion(v) {
//			continue // a conflicting update committed; retry
//		}
//		// ... critical section ...
//		l.Unlock()
//		break
//	}
package optik
