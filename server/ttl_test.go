package server

import (
	"strings"
	"sync/atomic"
	"testing"

	"github.com/optik-go/optik/store"
)

// startTTLServer brings up a server over a hash store driven by an
// injected clock, so the wire-level expiry tests advance time by hand —
// no sleeps.
func startTTLServer(t *testing.T, opts ...store.Option) (*atomic.Int64, string) {
	t.Helper()
	var clock atomic.Int64
	clock.Store(1_000_000_000)
	opts = append([]store.Option{
		store.WithClock(clock.Load),
		store.WithShards(2),
		store.WithShardBuckets(64),
	}, opts...)
	st := store.NewStrings(opts...)
	srv := New(st)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		srv.Close()
		st.Close()
	})
	return &clock, addr.String()
}

// TestServerTTLTranscript pins the exact bytes of an expiry session: the
// TTL family's replies before and after the (injected) clock passes the
// deadlines.
func TestServerTTLTranscript(t *testing.T) {
	clock, addr := startTTLServer(t)
	conn, r := dialRaw(t, addr)

	send := "SETEX s 1 ephemeral\r\nSET k v\r\nTTL k\r\nEXPIRE k 100\r\nTTL k\r\n" +
		"PERSIST k\r\nTTL k\r\nTTL missing\r\nEXPIRE missing 5\r\nPERSIST k\r\n"
	want := ":0\r\n:0\r\n:-1\r\n:1\r\n:100\r\n" +
		":1\r\n:-1\r\n:-2\r\n:0\r\n:0\r\n"
	if _, err := conn.Write([]byte(send)); err != nil {
		t.Fatalf("write: %v", err)
	}
	if got := readN(t, r, len(want)); got != want {
		t.Fatalf("transcript mismatch:\n got %q\nwant %q", got, want)
	}

	// Two simulated seconds later: the SETEX key is gone, the persisted
	// key survives, and a SETEX over the expired entry is a fresh insert.
	clock.Add(2_000_000_000)
	send = "GET s\r\nGET k\r\nSETEX s 1 back\r\nGET s\r\nEXPIRE k -1\r\nGET k\r\n"
	want = "$-1\r\n$1\r\nv\r\n:0\r\n$4\r\nback\r\n:1\r\n$-1\r\n"
	if _, err := conn.Write([]byte(send)); err != nil {
		t.Fatalf("write: %v", err)
	}
	if got := readN(t, r, len(want)); got != want {
		t.Fatalf("post-expiry transcript mismatch:\n got %q\nwant %q", got, want)
	}
}

// TestServerTTLBarriersWithPipeline pins arrival-order semantics: TTL
// commands are barriers, so a pipelined coalesced run ahead of them
// answers first and their effects apply to the already-staged writes.
func TestServerTTLBarriersWithPipeline(t *testing.T) {
	_, addr := startTTLServer(t)
	conn, r := dialRaw(t, addr)

	send := "SET a 1\r\nSET b 2\r\nEXPIRE a 50\r\nMGET a b\r\nTTL a\r\nTTL b\r\n"
	want := ":0\r\n:0\r\n:1\r\n*2\r\n$1\r\n1\r\n$1\r\n2\r\n:50\r\n:-1\r\n"
	if _, err := conn.Write([]byte(send)); err != nil {
		t.Fatalf("write: %v", err)
	}
	if got := readN(t, r, len(want)); got != want {
		t.Fatalf("barrier transcript mismatch:\n got %q\nwant %q", got, want)
	}
}

// TestServerTTLSoftErrors covers the expiry family's soft errors: bad
// seconds (non-numeric, overflow, SETEX non-positive), wrong arity. The
// connection survives every one.
func TestServerTTLSoftErrors(t *testing.T) {
	_, addr := startTTLServer(t)
	conn, r := dialRaw(t, addr)

	cases := []struct{ send, wantPrefix string }{
		{"EXPIRE k abc\r\n", "-ERR value is not an integer"},
		{"EXPIRE k 99999999999999999999\r\n", "-ERR value is not an integer"},
		{"SETEX k 0 v\r\n", "-ERR invalid expire time"},
		{"SETEX k -5 v\r\n", "-ERR invalid expire time"},
		{"SETEX k nope v\r\n", "-ERR value is not an integer"},
		{"EXPIRE k\r\n", "-ERR wrong number of arguments for 'expire'"},
		{"SETEX k 5\r\n", "-ERR wrong number of arguments for 'setex'"},
		{"TTL\r\n", "-ERR wrong number of arguments for 'ttl'"},
		{"PERSIST a b\r\n", "-ERR wrong number of arguments for 'persist'"},
	}
	for _, c := range cases {
		if _, err := conn.Write([]byte(c.send)); err != nil {
			t.Fatalf("write: %v", err)
		}
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("%q: read: %v", c.send, err)
		}
		if !strings.HasPrefix(line, c.wantPrefix) {
			t.Fatalf("%q: got %q, want prefix %q", c.send, line, c.wantPrefix)
		}
	}
	conn.Write([]byte("PING\r\n"))
	if line, _ := r.ReadString('\n'); line != "+PONG\r\n" {
		t.Fatalf("connection dead after soft errors: %q", line)
	}
}

// TestTTLCommandsOnOrderedServer: the sorted store has no expiry; the
// whole family answers a soft error and the connection stays usable.
func TestTTLCommandsOnOrderedServer(t *testing.T) {
	_, c := startOrdered(t)
	addr := c.addr
	conn, r := dialRaw(t, addr)
	for _, send := range []string{"EXPIRE 1 5\r\n", "SETEX 1 5 v\r\n", "TTL 1\r\n", "PERSIST 1\r\n"} {
		if _, err := conn.Write([]byte(send)); err != nil {
			t.Fatalf("write: %v", err)
		}
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("%q: read: %v", send, err)
		}
		if !strings.HasPrefix(line, "-ERR TTL commands require the hash store") {
			t.Fatalf("%q: got %q", send, line)
		}
	}
	conn.Write([]byte("PING\r\n"))
	if line, _ := r.ReadString('\n'); line != "+PONG\r\n" {
		t.Fatalf("connection dead after TTL errors: %q", line)
	}
}

// hashStatsFields and orderedStatsFields are the documented STATS field
// lists (docs/PROTOCOL.md); serverStatsFields is the server-side suffix
// shared by both modes.
var (
	hashStatsFields = []string{
		"len", "shards", "buckets", "resizes",
		"nodes_retired", "nodes_reclaimed", "nodes_reused",
		"values_allocated", "values_free",
		"bytes_used", "expired_lazy", "expired_swept", "evicted",
	}
	orderedStatsFields = []string{
		"len", "shards", "ordered",
		"nodes_retired", "nodes_reclaimed", "nodes_reused",
		"values_allocated", "values_free", "bytes_used",
	}
	serverStatsFields = []string{
		"conns", "accepted", "commands",
		"coalesced_batches", "coalesced_keys",
		"conns_open", "conns_rejected", "conns_shed",
		"buffers_resident", "poller",
	}
)

// TestServerStatsFields asserts every documented STATS field is present
// (and numeric — Client.Stats panics on a non-numeric value) in both
// store modes, including the memory-governance counters.
func TestServerStatsFields(t *testing.T) {
	t.Run("hash", func(t *testing.T) {
		_, _, addr := startServer(t)
		c, err := Dial(addr)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		defer c.Close()
		st := c.Stats()
		for _, f := range append(append([]string{}, hashStatsFields...), serverStatsFields...) {
			if _, ok := st[f]; !ok {
				t.Errorf("hash STATS missing %q", f)
			}
		}
		if _, ok := st["ordered"]; ok {
			t.Error("hash STATS must not report ordered:1")
		}
	})
	t.Run("ordered", func(t *testing.T) {
		_, c := startOrdered(t)
		st := c.Stats()
		for _, f := range append(append([]string{}, orderedStatsFields...), serverStatsFields...) {
			if _, ok := st[f]; !ok {
				t.Errorf("ordered STATS missing %q", f)
			}
		}
		for _, f := range []string{"buckets", "resizes", "expired_lazy", "expired_swept", "evicted"} {
			if _, ok := st[f]; ok {
				t.Errorf("ordered STATS must not report hash-only %q", f)
			}
		}
	})
}

// TestServerTTLStatsCounters drives lazy expiry over the wire and checks
// the governance counters move.
func TestServerTTLStatsCounters(t *testing.T) {
	clock, addr := startTTLServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	conn, r := dialRaw(t, addr)
	conn.Write([]byte("SETEX gone 1 xx\r\nSET stay 1 \r\n"))
	readN(t, r, len(":0\r\n:0\r\n"))
	st := c.Stats()
	if st["bytes_used"] <= 0 {
		t.Fatalf("bytes_used = %d, want > 0", st["bytes_used"])
	}
	clock.Add(2_000_000_000)
	conn.Write([]byte("GET gone\r\n"))
	readN(t, r, len("$-1\r\n"))
	st = c.Stats()
	if st["expired_lazy"] == 0 {
		t.Fatal("expired_lazy did not move after lazy-expired GET")
	}
	if st["len"] != 1 {
		t.Fatalf("len = %d, want 1", st["len"])
	}
}
