package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/optik-go/optik/store"
)

// options collects construction knobs; see the Option helpers.
type options struct {
	maxConns  int
	pipeline  int
	bufSize   int
	coalesce  int
	connMode  ConnMode
	idleGrace time.Duration
	shedWater int
	shedSet   bool
}

// Option configures New.
type Option func(*options)

// WithMaxConns caps concurrent connections; past the cap an accepted
// connection is answered with -ERR busy retry and soft-closed (the reply
// travels on a FIN so a well-behaved client can read it, back off and
// redial — server.Client does). 0 (the default) means unlimited.
func WithMaxConns(n int) Option {
	return func(o *options) { o.maxConns = n }
}

// ConnMode selects how connections are driven; see WithConnMode.
type ConnMode int

const (
	// ConnModeGoroutine is the portable default: one goroutine blocks on
	// each connection.
	ConnModeGoroutine ConnMode = iota
	// ConnModePoller multiplexes every connection onto one epoll instance
	// drained by a small worker pool (linux; elsewhere it silently falls
	// back to ConnModeGoroutine). Idle connections hold a registration and
	// a small state struct instead of a goroutine and buffers.
	ConnModePoller
)

// String renders the mode the way the -connmode flag spells it.
func (m ConnMode) String() string {
	if m == ConnModePoller {
		return "poller"
	}
	return "goroutine"
}

// ParseConnMode parses the -connmode flag values "goroutine" and "poller".
func ParseConnMode(s string) (ConnMode, error) {
	switch s {
	case "", "goroutine":
		return ConnModeGoroutine, nil
	case "poller":
		return ConnModePoller, nil
	}
	return 0, fmt.Errorf("server: unknown conn mode %q (want goroutine or poller)", s)
}

// PollerSupported reports whether this platform can run ConnModePoller.
func PollerSupported() bool { return pollerSupported }

// WithConnMode selects the connection-driving mode. Both modes run the
// same protocol engine (connState) and produce byte-identical transcripts;
// they differ in idle cost: a parked goroutine per conn versus an epoll
// registration. An unsupported poller request falls back to goroutine mode
// (STATS `poller` tells which one is live).
func WithConnMode(m ConnMode) Option {
	return func(o *options) { o.connMode = m }
}

// WithIdleGrace sets how long a poller-mode connection may sit idle before
// its buffers are returned to the tiered pools (default 5s; negative keeps
// buffers resident until close). Goroutine-mode conns always hold their
// buffers from first byte to close — there is no safe point to take them
// away from a goroutine blocked inside its reader.
func WithIdleGrace(d time.Duration) Option {
	return func(o *options) { o.idleGrace = d }
}

// WithShedWater sets the high-water connection count above which an accept
// sheds idle-longest connections (busy reply + FIN) to make room, keeping
// active clients responsive instead of bouncing newcomers. Defaults to 90%
// of WithMaxConns when that is set; <= 0 disables shedding. Only parked
// connections (no request in flight) are ever shed.
func WithShedWater(n int) Option {
	return func(o *options) { o.shedWater = n; o.shedSet = true }
}

// WithPipeline sets how many pipelined requests a connection executes
// before its replies are force-flushed even though more input is already
// buffered (default 512). Smaller values bound reply latency under an
// aggressive pipeliner; larger values amortize the write syscall further.
func WithPipeline(n int) Option {
	return func(o *options) { o.pipeline = n }
}

// WithBufferSize sets each connection's read and write buffer size in
// bytes (default 16384).
func WithBufferSize(n int) Option {
	return func(o *options) { o.bufSize = n }
}

// WithCoalesce bounds server-side request coalescing: runs of same-kind
// pipelined scalar commands (GET/MGET, SET/MSET, DEL/MDEL) are staged up
// to n keys and driven through the store's shard-batched path in one
// execution (default 256). Coalescing is invisible on the wire — replies
// keep exact arrival order and byte-identical framing — and never delays
// a request/response client (the run drains whenever the read buffer
// does). 0 disables staging entirely, restoring one-execution-per-request
// (multi-key MGET/MSET/MDEL frames still take the shard-batched path). A
// run may overshoot n by the final request's keys: requests are never
// split across runs.
func WithCoalesce(n int) Option {
	return func(o *options) { o.coalesce = n }
}

// DefaultCoalesce is the default WithCoalesce run bound (in keys).
const DefaultCoalesce = 256

// Server serves a store over the wire protocol in docs/PROTOCOL.md:
// a hash-routed store.Strings (New) or an ordered store.SortedStrings
// (NewOrdered), which additionally answers SCAN/RANGE/MIN/MAX. Construct,
// then ListenAndServe (blocking) or Start (background); Close shuts the
// listener and every connection down and waits for the handlers to drain.
type Server struct {
	st   backend
	opts options

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]*connState
	pl    *poller // non-nil when the poller conn mode is live

	closed   atomic.Bool
	active   atomic.Int64
	accepted atomic.Uint64
	rejected atomic.Uint64
	shed     atomic.Uint64
	commands atomic.Uint64
	// buffersResident tracks the bytes of pooled read/write buffers
	// currently checked out by connections — the STATS RSS proxy.
	buffersResident atomic.Int64
	// Coalescing stats: runs that merged >= 2 pipelined requests into one
	// batched store execution, and the keys those runs carried.
	coalescedBatches atomic.Uint64
	coalescedKeys    atomic.Uint64
	wg               sync.WaitGroup
}

// New returns a server for st. The server does not own the store: Close
// stops serving but leaves st (and its maintenance scheduler) to the
// caller.
func New(st *store.Strings, opts ...Option) *Server {
	return newServer(stringsBackend{st}, opts)
}

// NewOrdered returns a server for an ordered store. Keys on the wire must
// be decimal uint64s (the order is the point; hashing would destroy it) —
// any other key draws a per-request error — and the ordered command
// family (SCAN, RANGE, MIN, MAX) is served. Ownership contract as in New.
func NewOrdered(st *store.SortedStrings, opts ...Option) *Server {
	return newServer(sortedBackend{st: st}, opts)
}

func newServer(b backend, opts []Option) *Server {
	o := options{pipeline: 512, bufSize: 16384, coalesce: DefaultCoalesce}
	for _, opt := range opts {
		opt(&o)
	}
	if o.pipeline < 1 {
		o.pipeline = 1
	}
	if o.bufSize < 512 {
		o.bufSize = 512
	}
	if o.coalesce < 0 {
		o.coalesce = 0
	}
	if !o.shedSet && o.maxConns > 0 {
		o.shedWater = o.maxConns - o.maxConns/10
	}
	if o.maxConns > 0 && o.shedWater >= o.maxConns {
		o.shedWater = o.maxConns - 1
	}
	if o.idleGrace == 0 {
		o.idleGrace = 5 * time.Second
	}
	return &Server{st: b, opts: o, conns: make(map[net.Conn]*connState)}
}

// Listen binds addr ("host:port"; ":0" picks a free port) without serving
// yet, so callers can learn the bound address before the first accept. In
// poller conn mode this also spins up the epoll instance and its workers
// (falling back to goroutine mode if the platform refuses).
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	var pl *poller
	if s.opts.connMode == ConnModePoller && pollerSupported {
		if pl, err = newPoller(s); err != nil {
			pl = nil // fall back to goroutine-per-conn
		}
	}
	s.mu.Lock()
	s.ln = ln
	s.pl = pl
	s.mu.Unlock()
	if pl != nil {
		pl.start()
	}
	return ln.Addr(), nil
}

// Serve accepts connections on the listener bound by Listen until Close.
// It returns nil after Close, or the accept error that stopped it.
func (s *Server) Serve() error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln == nil {
		return errors.New("server: Serve before Listen")
	}
	var acceptDelay time.Duration
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			// Transient accept failures (fd exhaustion under connection
			// churn, ECONNABORTED) must not take down a server with
			// healthy live connections: back off and retry, the pattern
			// net/http uses.
			if ne, ok := err.(interface{ Temporary() bool }); ok && ne.Temporary() {
				if acceptDelay == 0 {
					acceptDelay = 5 * time.Millisecond
				} else if acceptDelay *= 2; acceptDelay > time.Second {
					acceptDelay = time.Second
				}
				time.Sleep(acceptDelay)
				continue
			}
			return err
		}
		acceptDelay = 0
		s.accepted.Add(1)
		if hw := s.opts.shedWater; hw > 0 {
			if over := int(s.active.Load()) - hw + 1; over > 0 {
				s.shedIdle(over)
			}
		}
		if s.opts.maxConns > 0 && s.active.Load() >= int64(s.opts.maxConns) {
			s.reject(nc)
			continue
		}
		cs := newConnState(s, nc)
		if !s.track(cs, true) {
			// Close won the race between our Accept and the conns-map
			// insert; it will never see this connection, so close it here
			// and stop accepting.
			nc.Close()
			return nil
		}
		s.active.Add(1)
		if s.pl != nil {
			if s.pl.register(cs) == nil {
				continue
			}
			// Registration failed (not a TCPConn, fd pressure): fall back
			// to a goroutine for this one connection.
		}
		s.wg.Add(1)
		go s.handle(cs)
	}
}

// reject answers an over-cap accept with the busy reply and a soft close:
// the bytes are written straight to the socket (no throwaway bufio.Writer)
// and travel on a FIN, with a short bounded drain of whatever the client
// already pipelined so the kernel does not convert our close into a RST
// that destroys the reply in flight. The drain runs on a short-lived
// goroutine so the accept loop never blocks on a rejected peer.
func (s *Server) reject(nc net.Conn) {
	s.rejected.Add(1)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer nc.Close()
		if _, err := nc.Write(busyReply); err != nil {
			return
		}
		if tc, ok := nc.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		nc.SetReadDeadline(time.Now().Add(250 * time.Millisecond))
		var scratch [256]byte
		for {
			if _, err := nc.Read(scratch[:]); err != nil {
				return
			}
		}
	}()
}

// shedIdle sheds up to n parked connections, idle-longest first, to bring
// the population back under the high-water mark. Only parked conns are
// candidates — the CAS in shedConn guarantees no protocol engine owns the
// conn — so an active client never loses an in-flight request.
func (s *Server) shedIdle(n int) {
	type cand struct {
		cs   *connState
		last int64
	}
	s.mu.Lock()
	cands := make([]cand, 0, len(s.conns))
	for _, cs := range s.conns {
		if cs.state.Load() == connParked {
			cands = append(cands, cand{cs, cs.lastActive.Load()})
		}
	}
	s.mu.Unlock()
	sort.Slice(cands, func(i, j int) bool { return cands[i].last < cands[j].last })
	for _, c := range cands {
		if n <= 0 {
			return
		}
		if s.shedConn(c.cs) {
			n--
		}
	}
}

// shedConn claims one parked connection for shedding. On success the busy
// reply is written (no engine can be writing concurrently: the CAS out of
// parked excludes it) followed by a FIN; a goroutine-mode conn is then
// woken out of its blocking read via an expired deadline, a poller-mode
// conn is torn down in place. The goroutine-mode write runs on a
// short-lived goroutine with a write deadline, like reject(): shedConn is
// called from the accept loop, and a shed target whose send buffer is
// full (dead peer) must not stall new accepts — the opposite of what
// shedding under overload is for. The read deadline that wakes the parked
// handler is set only after the reply and FIN, so the handler cannot
// close the conn under the in-flight write.
func (s *Server) shedConn(cs *connState) bool {
	if !cs.state.CompareAndSwap(connParked, connShed) {
		return false
	}
	s.shed.Add(1)
	if cs.poll != nil {
		cs.poll.shed()
		return true
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		cs.nc.SetWriteDeadline(time.Now().Add(time.Second))
		cs.nc.Write(busyReply)
		if tc, ok := cs.nc.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		cs.nc.SetReadDeadline(time.Now())
	}()
	return true
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe(addr string) error {
	if _, err := s.Listen(addr); err != nil {
		return err
	}
	return s.Serve()
}

// Start is Listen followed by Serve on a background goroutine, for
// callers (tests, the loopback bench) that embed the server.
func (s *Server) Start(addr string) (net.Addr, error) {
	a, err := s.Listen(addr)
	if err != nil {
		return nil, err
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.Serve()
	}()
	return a, nil
}

// Close stops accepting, closes every live connection and waits for the
// handlers (and, in poller mode, the epoll workers) to finish. Idempotent.
// The store is not touched.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	for nc := range s.conns {
		nc.Close()
	}
	pl := s.pl
	s.mu.Unlock()
	if pl != nil {
		pl.stop()
	}
	s.wg.Wait()
	if pl != nil {
		pl.destroy()
	}
	return nil
}

// track registers or deregisters a connection. Registration reports
// false once Close has run: Close's sweep of the conns map cannot see a
// connection accepted concurrently but not yet inserted, so the insert
// itself must refuse (the closed flag is set before Close takes the
// lock, making this check race-free).
func (s *Server) track(cs *connState, add bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if add {
		if s.closed.Load() {
			return false
		}
		s.conns[cs.nc] = cs
	} else {
		delete(s.conns, cs.nc)
	}
	return true
}

// handle drives one connection in goroutine-per-conn mode. The protocol
// engine itself — parse pipelined requests, stage or execute in arrival
// order, flush once per batch — lives in connState (conn.go), shared with
// the poller mode; this wrapper owns only the goroutine-mode lifecycle.
func (s *Server) handle(cs *connState) {
	defer s.wg.Done()
	defer s.active.Add(-1)
	defer s.track(cs, false)
	defer cs.nc.Close()
	defer cs.releaseBuffers()
	cs.runLoop()
}

// dispatch routes one parsed request: the three coalescable families are
// staged into the connection's run (draining first on a family switch,
// immediately at the run bound — and always when coalescing is
// disabled); everything else is a barrier that drains the run and then
// executes. Replies append to out in arrival order either way.
func (s *Server) dispatch(co *coalescer, req *request, w *bufio.Writer, out []byte) ([]byte, error) {
	args := req.args
	if len(args) == 0 {
		return out, nil
	}
	cmd, rest := args[0], args[1:]
	kind, multi := runNone, false
	switch {
	case cmdEq(cmd, "GET"):
		if len(rest) != 1 {
			return s.barrierArity(co, w, out, "get")
		}
		kind = runRead
	case cmdEq(cmd, "MGET"):
		if len(rest) == 0 {
			return s.barrierArity(co, w, out, "mget")
		}
		kind, multi = runRead, true
	case cmdEq(cmd, "SET"):
		if len(rest) != 2 {
			return s.barrierArity(co, w, out, "set")
		}
		kind = runWrite
	case cmdEq(cmd, "MSET"):
		if len(rest) == 0 || len(rest)%2 != 0 {
			return s.barrierArity(co, w, out, "mset")
		}
		kind, multi = runWrite, true
	case cmdEq(cmd, "DEL"):
		if len(rest) != 1 {
			return s.barrierArity(co, w, out, "del")
		}
		kind = runDel
	case cmdEq(cmd, "MDEL"):
		if len(rest) == 0 {
			return s.barrierArity(co, w, out, "mdel")
		}
		kind, multi = runDel, true
	default:
		// Barrier command: the staged run's replies come first.
		out, err := s.drain(co, w, out)
		if err != nil {
			return out, err
		}
		return s.execute(req, w, out)
	}
	if co.kind != kind && co.kind != runNone {
		var err error
		if out, err = s.drain(co, w, out); err != nil {
			return out, err
		}
	}
	n := len(rest)
	staged := false
	if kind == runWrite {
		n = len(rest) / 2
		staged = s.stagePairs(co, rest)
	} else {
		staged = s.stageKeys(co, rest)
	}
	if !staged {
		// A key the backend cannot represent (the ordered backend takes
		// decimal uint64s only): soft per-request error, with the staged
		// run's replies drained first so arrival order holds. Nothing of
		// this request was staged (the stage rolls back), so the
		// connection stays fully usable.
		out, err := s.drain(co, w, out)
		if err != nil {
			return out, err
		}
		return appendError(out, "ERR invalid key"), nil
	}
	co.stage(kind, n, multi)
	if co.keys() >= s.opts.coalesce {
		return s.drain(co, w, out)
	}
	return out, nil
}

// execute answers one barrier command (every command outside the three
// coalescable families), appending its reply to out. The ordered family
// spills through w mid-reply — a 4096-entry page can outgrow any buffer
// budget — which is why execute takes the writer.
func (s *Server) execute(req *request, w *bufio.Writer, out []byte) ([]byte, error) {
	args := req.args
	cmd, rest := args[0], args[1:]
	switch {
	case cmdEq(cmd, "SCAN"), cmdEq(cmd, "RANGE"), cmdEq(cmd, "MIN"), cmdEq(cmd, "MAX"):
		ob, ok := s.st.(orderedBackend)
		if !ok {
			return appendError(out, "ERR ordered commands require an ordered store (optik-server -ordered)"), nil
		}
		switch {
		case cmdEq(cmd, "SCAN"):
			return s.executeScan(ob, rest, w, out)
		case cmdEq(cmd, "RANGE"):
			return s.executeRange(ob, rest, w, out)
		case cmdEq(cmd, "MIN"):
			if len(rest) != 0 {
				return arity(out, "min")
			}
			k, v, ok := ob.Min()
			return executeEndpoint(out, k, v, ok), nil
		default:
			if len(rest) != 0 {
				return arity(out, "max")
			}
			k, v, ok := ob.Max()
			return executeEndpoint(out, k, v, ok), nil
		}
	case cmdEq(cmd, "EXPIRE"), cmdEq(cmd, "SETEX"), cmdEq(cmd, "TTL"), cmdEq(cmd, "PERSIST"):
		tb, ok := s.st.(ttlBackend)
		if !ok {
			return appendError(out, "ERR TTL commands require the hash store (run optik-server without -ordered)"), nil
		}
		return s.executeTTL(tb, cmd, rest, out)
	case cmdEq(cmd, "LEN"):
		if len(rest) != 0 {
			return arity(out, "len")
		}
		out = appendInt(out, int64(s.st.Len()))
	case cmdEq(cmd, "STATS"):
		if len(rest) != 0 {
			return arity(out, "stats")
		}
		out = appendBulk(out, s.statsText())
	case cmdEq(cmd, "QUIESCE"):
		if len(rest) != 0 {
			return arity(out, "quiesce")
		}
		s.st.Quiesce()
		out = appendStatus(out, "OK")
	case cmdEq(cmd, "PING"):
		out = appendStatus(out, "PONG")
	case cmdEq(cmd, "QUIT"):
		return appendStatus(out, "OK"), errQuit
	default:
		out = appendError(out, fmt.Sprintf("ERR unknown command %q", cmd))
	}
	return out, nil
}

// executeTTL answers the expiry family. All four are barriers (they reach
// here through dispatch's default case), so they order after any staged
// coalesced run — a pipelined SET k / EXPIRE k pair applies in arrival
// order. Bad seconds (non-numeric, overflow, and SETEX's non-positive)
// are soft errors: the frame was well-formed, the connection stays up.
func (s *Server) executeTTL(tb ttlBackend, cmd []byte, rest [][]byte, out []byte) ([]byte, error) {
	switch {
	case cmdEq(cmd, "EXPIRE"):
		if len(rest) != 2 {
			return arity(out, "expire")
		}
		k, ok := s.st.key(rest[0])
		if !ok {
			return appendError(out, "ERR invalid key"), nil
		}
		secs, ok := parseInt(rest[1])
		if !ok {
			return appendError(out, "ERR value is not an integer or out of range"), nil
		}
		return appendInt(out, b2i(tb.ExpireHashed(k, secs))), nil
	case cmdEq(cmd, "SETEX"):
		if len(rest) != 3 {
			return arity(out, "setex")
		}
		k, ok := s.st.key(rest[0])
		if !ok {
			return appendError(out, "ERR invalid key"), nil
		}
		secs, ok := parseInt(rest[1])
		if !ok {
			return appendError(out, "ERR value is not an integer or out of range"), nil
		}
		if secs <= 0 {
			return appendError(out, "ERR invalid expire time in 'setex' command"), nil
		}
		return appendInt(out, b2i(tb.SetEXHashed(k, string(rest[2]), secs))), nil
	case cmdEq(cmd, "TTL"):
		if len(rest) != 1 {
			return arity(out, "ttl")
		}
		k, ok := s.st.key(rest[0])
		if !ok {
			return appendError(out, "ERR invalid key"), nil
		}
		return appendInt(out, tb.TTLHashed(k)), nil
	default: // PERSIST
		if len(rest) != 1 {
			return arity(out, "persist")
		}
		k, ok := s.st.key(rest[0])
		if !ok {
			return appendError(out, "ERR invalid key"), nil
		}
		return appendInt(out, b2i(tb.PersistHashed(k))), nil
	}
}

// arity reports a wrong-argument-count error for cmd; the connection
// stays usable (the frame itself was well-formed).
func arity(out []byte, cmd string) ([]byte, error) {
	return appendError(out, "ERR wrong number of arguments for '"+cmd+"'"), nil
}

// barrierArity drains the staged run — its replies precede the error in
// arrival order — then reports the wrong-argument-count error for cmd.
func (s *Server) barrierArity(co *coalescer, w *bufio.Writer, out []byte, cmd string) ([]byte, error) {
	out, err := s.drain(co, w, out)
	if err != nil {
		return out, err
	}
	return arity(out, cmd)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// cmdEq compares a request's command byte-slice against an upper-case
// name, case-insensitively, without allocating.
func cmdEq(b []byte, upper string) bool {
	if len(b) != len(upper) {
		return false
	}
	for i := 0; i < len(upper); i++ {
		c := b[i]
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c != upper[i] {
			return false
		}
	}
	return true
}

// statsText renders the STATS reply: the backend's store-side lines, then
// the server's connection and command counters. See docs/PROTOCOL.md for
// the field list and stability contract.
func (s *Server) statsText() string {
	s.mu.Lock()
	poller := s.pl != nil
	s.mu.Unlock()
	return s.st.statsPrefix() + fmt.Sprintf(
		"conns:%d\naccepted:%d\ncommands:%d\n"+
			"coalesced_batches:%d\ncoalesced_keys:%d\n"+
			"conns_open:%d\nconns_rejected:%d\nconns_shed:%d\n"+
			"buffers_resident:%d\npoller:%d\n",
		s.active.Load(), s.accepted.Load(), s.commands.Load(),
		s.coalescedBatches.Load(), s.coalescedKeys.Load(),
		s.active.Load(), s.rejected.Load(), s.shed.Load(),
		s.buffersResident.Load(), b2i(poller))
}
