// The server/store boundary. The server used to be hard-wired to the
// hash-routed store.Strings; the ordered index gives it a second store
// with the same point-op surface plus range queries, so the store-side
// dependency is now an interface. The two implementations differ in
// exactly two places:
//
//   - key: how a wire key maps into the uint64 index space. The hash
//     backend hashes arbitrary bytes (FNV-1a) and can never fail; the
//     ordered backend parses a decimal uint64 — hashing would destroy the
//     order SCAN/RANGE serve — and rejects anything else, which the
//     dispatcher turns into a soft per-request error.
//   - the ordered family: SCAN/RANGE/MIN/MAX exist only where the index
//     can answer them; the dispatcher discovers support by interface
//     assertion and answers -ERR on the hash backend.
//
// Everything else — the coalescer, the reply framing, the pipeline
// machinery — is shared verbatim, which is the point: range queries ride
// the existing ingest path instead of forking it.
package server

import (
	"fmt"

	"github.com/optik-go/optik/ds"
	"github.com/optik-go/optik/store"
)

// backend is the store surface the server drives. The *Hashed family
// matches store.Strings' method set; key maps a wire key into the index's
// key space (false = the key is not representable, a soft error).
type backend interface {
	key(arg []byte) (uint64, bool)
	GetHashed(k uint64) (string, bool)
	SetHashed(k uint64, val string) bool
	DelHashed(k uint64) bool
	MGetHashed(keys []uint64, vals []string, found []bool)
	MSetHashed(keys []uint64, vals []string, replaced []bool) int
	MDelHashed(keys []uint64, found []bool) int
	Len() int
	Quiesce()
	// statsPrefix renders the store-side lines of the STATS reply; the
	// server appends its own connection/command counters after it.
	statsPrefix() string
}

// orderedBackend is the extra surface of a backend whose index is sorted.
type orderedBackend interface {
	Scan(from, to uint64, keys []uint64, vals []string) int
	Min() (uint64, string, bool)
	Max() (uint64, string, bool)
}

// ttlBackend is the extra surface of a backend with per-entry expiry
// (EXPIRE/SETEX/TTL/PERSIST). Discovered by assertion exactly like
// orderedBackend; the sorted store answers -ERR.
type ttlBackend interface {
	SetEXHashed(k uint64, val string, secs int64) bool
	ExpireHashed(k uint64, secs int64) bool
	TTLHashed(k uint64) int64
	PersistHashed(k uint64) bool
}

// stringsBackend adapts store.Strings (the promoted methods cover the
// whole *Hashed family).
type stringsBackend struct {
	*store.Strings
}

func (b stringsBackend) key(arg []byte) (uint64, bool) {
	return store.HashKeyBytes(arg), true
}

func (b stringsBackend) statsPrefix() string {
	idx := b.Index()
	retired, reclaimed, reused := idx.ReclaimStats()
	lazy, swept, evicted := b.TTLStats()
	return fmt.Sprintf(
		"len:%d\nshards:%d\nbuckets:%d\nresizes:%d\n"+
			"nodes_retired:%d\nnodes_reclaimed:%d\nnodes_reused:%d\n"+
			"values_allocated:%d\nvalues_free:%d\n"+
			"bytes_used:%d\nexpired_lazy:%d\nexpired_swept:%d\nevicted:%d\n",
		idx.Len(), idx.Shards(), idx.Buckets(), idx.Resizes(),
		retired, reclaimed, reused,
		b.Values().Allocated(), b.Values().FreeLen(),
		b.BytesUsed(), lazy, swept, evicted)
}

// sortedBackend adapts store.SortedStrings; its index methods take the
// key directly (no hash), so the adapters are renames.
type sortedBackend struct {
	st *store.SortedStrings
}

var _ orderedBackend = sortedBackend{}

// key parses a decimal uint64 in the index key range. Overflow, non-digit
// bytes, and the two sentinel values are all rejected.
func (b sortedBackend) key(arg []byte) (uint64, bool) {
	if len(arg) == 0 || len(arg) > 20 {
		return 0, false
	}
	var n uint64
	for _, c := range arg {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if n > (^uint64(0)-d)/10 {
			return 0, false
		}
		n = n*10 + d
	}
	if n < ds.MinKey || n > ds.MaxKey {
		return 0, false
	}
	return n, true
}

func (b sortedBackend) GetHashed(k uint64) (string, bool) { return b.st.Get(k) }
func (b sortedBackend) SetHashed(k uint64, val string) bool {
	return b.st.Set(k, val)
}
func (b sortedBackend) DelHashed(k uint64) bool { return b.st.Del(k) }
func (b sortedBackend) MGetHashed(keys []uint64, vals []string, found []bool) {
	b.st.MGet(keys, vals, found)
}
func (b sortedBackend) MSetHashed(keys []uint64, vals []string, replaced []bool) int {
	return b.st.MSet(keys, vals, replaced)
}
func (b sortedBackend) MDelHashed(keys []uint64, found []bool) int {
	return b.st.MDel(keys, found)
}
func (b sortedBackend) Len() int { return b.st.Len() }
func (b sortedBackend) Quiesce() { b.st.Quiesce() }

func (b sortedBackend) Scan(from, to uint64, keys []uint64, vals []string) int {
	return b.st.Scan(from, to, keys, vals)
}
func (b sortedBackend) Min() (uint64, string, bool) { return b.st.Min() }
func (b sortedBackend) Max() (uint64, string, bool) { return b.st.Max() }

// statsPrefix keeps the nodes_* names (they count retired/reclaimed/
// reused index nodes — towers here, chain nodes on the hash backend) so
// stats consumers read both backends with one parser; ordered:1 is the
// discriminator, and the hash-only buckets/resizes lines are absent.
func (b sortedBackend) statsPrefix() string {
	idx := b.st.Index()
	retired, reclaimed, reused := idx.ReclaimStats()
	return fmt.Sprintf(
		"len:%d\nshards:%d\nordered:1\n"+
			"nodes_retired:%d\nnodes_reclaimed:%d\nnodes_reused:%d\n"+
			"values_allocated:%d\nvalues_free:%d\nbytes_used:%d\n",
		idx.Len(), idx.Shards(),
		retired, reclaimed, reused,
		b.st.Values().Allocated(), b.st.Values().FreeLen(),
		b.st.Values().Bytes())
}
