package server

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"testing"
	"time"
)

// TestCoalesceReplyOrderProperty is the coalescing correctness property:
// for random mixed pipelines — scalar and multi-key commands, inline and
// multibulk framing, duplicate keys, arity errors, barrier commands —
// the reply stream of a coalescing server must be byte-identical to a
// coalesce-disabled reference fed the same bytes. Both servers start
// empty and see identical command histories, so any divergence is a
// coalescing bug: a reply out of arrival order, framing that leaked the
// batching, or a staged run observed by a barrier.
func TestCoalesceReplyOrderProperty(t *testing.T) {
	for _, bound := range []int{1, 3, 7, 64, DefaultCoalesce} {
		t.Run(fmt.Sprintf("coalesce=%d", bound), func(t *testing.T) {
			_, _, refAddr := startServer(t, WithCoalesce(0), WithPipeline(4))
			_, _, coAddr := startServer(t, WithCoalesce(bound), WithPipeline(4))
			rng := rand.New(rand.NewSource(int64(0xC0A1 + bound)))
			for round := 0; round < 8; round++ {
				pipe := randomPipeline(rng, 150)
				ref := roundTrip(t, refAddr, pipe)
				got := roundTrip(t, coAddr, pipe)
				if !bytes.Equal(ref, got) {
					t.Fatalf("round %d: reply stream diverged\npipeline: %q\n ref: %q\n got: %q",
						round, pipe, ref, got)
				}
			}
		})
	}
}

// roundTrip writes one pipeline (ending in QUIT) and reads the whole
// reply stream to EOF.
func roundTrip(t *testing.T, addr string, pipe []byte) []byte {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(20 * time.Second))
	if _, err := conn.Write(pipe); err != nil {
		t.Fatalf("write: %v", err)
	}
	out, err := io.ReadAll(conn)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return out
}

// randomPipeline builds n random commands followed by QUIT, mixing
// inline and multibulk framing. Keys come from a small space so runs hit
// duplicates, overwrites and misses; commands include every coalescable
// family, the barriers, and soft arity errors (never malformed frames —
// those kill the connection).
func randomPipeline(rng *rand.Rand, n int) []byte {
	var b []byte
	key := func() string { return fmt.Sprintf("k%d", rng.Intn(24)) }
	val := func() string { return fmt.Sprintf("v%d", rng.Intn(1000)) }
	emit := func(args ...string) {
		if rng.Intn(2) == 0 { // inline
			for i, a := range args {
				if i > 0 {
					b = append(b, ' ')
				}
				b = append(b, a...)
			}
			b = append(b, "\r\n"...)
		} else { // multibulk
			b = append(b, fmt.Sprintf("*%d\r\n", len(args))...)
			for _, a := range args {
				b = append(b, fmt.Sprintf("$%d\r\n%s\r\n", len(a), a)...)
			}
		}
	}
	for i := 0; i < n; i++ {
		switch r := rng.Intn(20); {
		case r < 6:
			emit("GET", key())
		case r < 10:
			emit("SET", key(), val())
		case r < 12:
			emit("DEL", key())
		case r < 14:
			args := []string{"MGET"}
			for j := rng.Intn(8) + 1; j > 0; j-- {
				args = append(args, key())
			}
			emit(args...)
		case r < 16:
			args := []string{"MSET"}
			for j := rng.Intn(4) + 1; j > 0; j-- {
				args = append(args, key(), val())
			}
			emit(args...)
		case r < 17:
			args := []string{"MDEL"}
			for j := rng.Intn(5) + 1; j > 0; j-- {
				args = append(args, key())
			}
			emit(args...)
		case r < 18:
			emit([]string{"PING", "LEN"}[rng.Intn(2)])
		default:
			// Soft errors: wrong arity and unknown commands are run
			// barriers whose error reply must still land in order.
			switch rng.Intn(4) {
			case 0:
				emit("GET")
			case 1:
				emit("SET", key())
			case 2:
				emit("MGET")
			default:
				emit("FROB", key())
			}
		}
	}
	emit("QUIT")
	return b
}

// TestCoalesceStats checks that runs merging two or more pipelined
// requests are counted, and that request/response traffic is not.
func TestCoalesceStats(t *testing.T) {
	srv, _, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	// Request/response: each GET drains as a run of one. No coalescing.
	c.Set(1, 10)
	c.Get(1)
	c.Get(2)
	if got := srv.coalescedBatches.Load(); got != 0 {
		t.Fatalf("coalesced_batches after scalar traffic = %d, want 0", got)
	}

	// A pipelined batch of 8 GETs coalesces into one run of 8 keys.
	keys := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	vals := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	c.MGet(keys, vals, found)
	if got := srv.coalescedBatches.Load(); got != 1 {
		t.Fatalf("coalesced_batches after pipelined MGet = %d, want 1", got)
	}
	if got := srv.coalescedKeys.Load(); got != 8 {
		t.Fatalf("coalesced_keys after pipelined MGet = %d, want 8", got)
	}
	if !found[0] || vals[0] != 10 {
		t.Fatalf("pipelined MGet lost the value: vals=%v found=%v", vals, found)
	}

	// The stats surface through STATS.
	stats := c.Stats()
	if stats["coalesced_batches"] != 1 || stats["coalesced_keys"] != 8 {
		t.Fatalf("STATS coalesced_batches=%d coalesced_keys=%d, want 1/8",
			stats["coalesced_batches"], stats["coalesced_keys"])
	}
}

// TestClientMultibulkRoundTrip drives the client's multibulk batch mode
// against a live server, including a batch large enough to require
// chunking under the per-frame argument cap.
func TestClientMultibulkRoundTrip(t *testing.T) {
	_, _, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	c.SetMultibulk(true)

	const n = maxBatchKeys + 100 // forces a second MGET/MDEL frame
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i)
		vals[i] = uint64(i) * 3
	}
	if ins := c.MSet(keys, vals); ins != n {
		t.Fatalf("MSet inserted %d, want %d", ins, n)
	}
	got := make([]uint64, n)
	found := make([]bool, n)
	c.MGet(keys, got, found)
	for i := range keys {
		if !found[i] || got[i] != vals[i] {
			t.Fatalf("MGet[%d] = %d,%v want %d,true", i, got[i], found[i], vals[i])
		}
	}
	if del := c.MDel(keys); del != n {
		t.Fatalf("MDel removed %d, want %d", del, n)
	}
	if c.Len() != 0 {
		t.Fatalf("Len after MDel = %d, want 0", c.Len())
	}
}
