// Package server is the network front for the sharded OPTIK store: it
// exposes a store.Strings over a RESP-flavored (redis/memcached-style)
// TCP protocol — GET/SET/DEL, batched MGET/MSET/MDEL, LEN, STATS,
// QUIESCE, PING, QUIT — with per-connection read/write buffering and
// pipelining: a connection parses and executes requests back to back
// while input is buffered and flushes all their replies in one write, so
// a client that keeps k requests in flight pays the per-request syscall
// and scheduling costs once per batch instead of once per key.
//
// The full wire format — framing, command grammar, reply types, error
// handling and the pipelining contract — is specified in docs/PROTOCOL.md
// at the repository root. The server edge is where the OPTIK pattern's
// optimism pays: every GET that arrives here runs lock-free through the
// store (index read validated by bucket version, value load validated by
// hash), so request concurrency is limited by the wire, not by locks —
// the motivation the paper's introduction gives for optimistic
// concurrency in the first place.
//
// The package also ships a Client: a single-connection, allocation-lean
// load-generation client whose multi-key operations are pipelines of
// scalar commands. cmd/optik-server wraps Server in a binary;
// cmd/optik-bench's -net flag drives a server over loopback with the same
// workload mix as the in-process figures.
package server
