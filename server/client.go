package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"

	"github.com/optik-go/optik/internal/backoff"
)

// Client is a single-connection client for the wire protocol, shaped for
// the load generator: keys and values are uint64s rendered as decimal
// strings, multi-key operations are issued as pipelines of scalar
// commands (k commands written, one flush, k replies read in order), so a
// batch of size k exercises exactly pipeline depth k on the server. A
// Client is NOT safe for concurrent use; the net workload target keeps a
// pool of them.
//
// Wire protocol errors are reported by panicking: the client exists for
// the benchmark and test harnesses, where a malformed reply is a bug to
// surface loudly, not an error to propagate through a hot measurement
// loop.
//
// Overload is the exception: a `-ERR busy retry` reply (the shedding
// contract in docs/PROTOCOL.md) and transport-level failures are
// transient, so by default every operation retries them — jittered
// exponential backoff, redial, replay — up to a bounded attempt count
// before falling back to the panic. SetRetry tunes or disables this.
// Because an operation may be replayed after an ambiguous failure, a
// write's side effects can apply twice; SET/DEL are upserts/removals so
// the store converges, but the replayed reply (replaced/present flags)
// may differ from what the lost original would have said.
type Client struct {
	conn      net.Conn
	r         *bufio.Reader
	w         *bufio.Writer
	out       []byte // command build buffer: a whole pipeline, one Write
	bulk      []byte // reusable bulk-reply buffer (slow path)
	multibulk bool   // batch ops send real MGET/MSET/MDEL frames

	addr     string
	closed   bool
	attempts int // tries per operation (1 = no retry)
	bo       backoff.Jittered
	retries  uint64
}

// DefaultRetries is how many times an operation is tried before a
// transient failure (busy reply, broken connection) escalates to a panic.
const DefaultRetries = 6

// clientRetryable is the panic payload for transient failures; do()
// converts it into backoff + redial + replay, or into the original string
// panic once the attempts run out.
type clientRetryable struct{ msg string }

// retryf panics with a retryable failure carrying the conventional
// "server client: ..." message.
func retryf(format string, args ...any) {
	panic(&clientRetryable{msg: fmt.Sprintf(format, args...)})
}

// do runs op, absorbing retryable panics: jittered backoff (the shedding
// server asked exactly for that), redial, replay. Non-retryable panics —
// protocol violations, server error replies other than busy — pass
// through untouched, and exhausted retries re-panic with the first
// failure's message so disabled-retry behavior matches the old client.
func (c *Client) do(op func()) {
	first := c.try(op)
	if first == nil {
		c.bo.Reset()
		return
	}
	for attempt := 1; ; attempt++ {
		if c.closed || attempt >= c.attempts {
			panic(first.msg)
		}
		time.Sleep(c.bo.Next())
		c.retries++
		if !c.redial() {
			continue
		}
		if err := c.try(op); err == nil {
			c.bo.Reset()
			return
		}
	}
}

func (c *Client) try(op func()) (rerr *clientRetryable) {
	defer func() {
		if r := recover(); r != nil {
			cr, ok := r.(*clientRetryable)
			if !ok {
				panic(r)
			}
			rerr = cr
		}
	}()
	op()
	return nil
}

// redial replaces the connection after a transient failure. The build
// buffer is already empty (flush clears it even on error) and any
// half-read pipeline died with the old conn.
func (c *Client) redial() bool {
	c.conn.Close()
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return false
	}
	c.conn = conn
	c.r.Reset(conn)
	c.w.Reset(conn)
	c.out = c.out[:0]
	return true
}

// SetRetry sets how many times an operation is tried before a transient
// failure panics (default DefaultRetries); n <= 1 disables retrying.
func (c *Client) SetRetry(n int) {
	if n < 1 {
		n = 1
	}
	c.attempts = n
}

// Retries reports how many transient-failure retries this client has
// performed (busy replies honored, broken connections redialed).
func (c *Client) Retries() uint64 { return c.retries }

// SetMultibulk switches the batch operations (MGet/MSet/MDel) between
// pipelined scalar commands (the default: k GET frames, depth-k
// pipeline) and true multi-key frames (one MGET frame carrying k keys,
// chunked under the server's per-request argument cap). The two modes
// are semantically identical; they differ in which server path the
// batch exercises — the coalescer assembling a run from scalars versus
// the wire-level batched handler.
func (c *Client) SetMultibulk(on bool) { c.multibulk = on }

// Dial connects to a server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn:     conn,
		r:        bufio.NewReaderSize(conn, 16384),
		w:        bufio.NewWriterSize(conn, 16384),
		addr:     addr,
		attempts: DefaultRetries,
	}, nil
}

// Close closes the connection. Idempotent; a closed client never redials.
func (c *Client) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.conn.Close()
}

// appendCommand appends one inline command to the build buffer; flush
// hands the whole pipeline to the socket in one write.
func (c *Client) appendCommand(cmd string, args ...uint64) {
	c.out = append(c.out, cmd...)
	for _, a := range args {
		c.out = append(c.out, ' ')
		c.out = strconv.AppendUint(c.out, a, 10)
	}
	c.out = append(c.out, crlf...)
}

// Multibulk frame chunking: a frame carries at most maxArgs args
// including the command name, so one MGET/MDEL moves up to maxBatchKeys
// keys and one MSET up to maxBatchPairs pairs; larger batches are split
// into consecutive frames in the same pipeline.
const (
	maxBatchKeys  = maxArgs - 1
	maxBatchPairs = (maxArgs - 1) / 2
)

// beginMulti appends a multibulk array header for n items.
func (c *Client) beginMulti(n int) {
	c.out = append(c.out, '*')
	c.out = strconv.AppendInt(c.out, int64(n), 10)
	c.out = append(c.out, crlf...)
}

// bulkString appends one bulk-framed string item.
func (c *Client) bulkString(s string) {
	c.out = append(c.out, '$')
	c.out = strconv.AppendInt(c.out, int64(len(s)), 10)
	c.out = append(c.out, crlf...)
	c.out = append(c.out, s...)
	c.out = append(c.out, crlf...)
}

// bulkUint appends one bulk-framed decimal uint64 item.
func (c *Client) bulkUint(v uint64) {
	var tmp [20]byte
	b := strconv.AppendUint(tmp[:0], v, 10)
	c.out = append(c.out, '$')
	c.out = strconv.AppendInt(c.out, int64(len(b)), 10)
	c.out = append(c.out, crlf...)
	c.out = append(c.out, b...)
	c.out = append(c.out, crlf...)
}

func (c *Client) flush() {
	_, err := c.w.Write(c.out)
	c.out = c.out[:0]
	if err == nil {
		err = c.w.Flush()
	}
	if err != nil {
		retryf("server client: %s", err.Error())
	}
}

// readReply reads one reply, returning its type byte and, for ':' the
// integer, for '$' the bulk payload (a view into c.bulk, valid until the
// next read), with nil payload and n == -1 for a nil bulk.
func (c *Client) readReply() (kind byte, n int64, payload []byte) {
	line, err := readLine(c.r)
	if err != nil {
		retryf("server client: read: %s", err.Error())
	}
	if len(line) == 0 {
		panic("server client: empty reply line")
	}
	kind = line[0]
	switch kind {
	case '+':
		c.bulk = append(c.bulk[:0], line[1:]...)
		return kind, 0, c.bulk
	case '-':
		// The busy reply is the server's shedding contract: transient by
		// definition, so it retries; every other server error is a bug to
		// surface.
		if strings.HasPrefix(string(line[1:]), "ERR busy") {
			retryf("server client: server busy: %s", line[1:])
		}
		panic("server client: server error: " + string(line[1:]))
	case ':':
		v, ok := parseInt(line[1:])
		if !ok {
			panic("server client: bad integer reply " + string(line))
		}
		return kind, v, nil
	case '$':
		blen, ok := parseInt(line[1:])
		if !ok || blen < -1 || blen > maxBulk {
			panic("server client: bad bulk length " + string(line))
		}
		if blen == -1 {
			return kind, -1, nil
		}
		// Fast path: payload and terminator already buffered — return a
		// view and skip the copy (the caller consumes it before the next
		// read, same contract as c.bulk).
		if n := int(blen) + 2; n <= c.r.Buffered() {
			b, err := c.r.Peek(n)
			if err != nil || b[n-2] != '\r' || b[n-1] != '\n' {
				panic("server client: bulk string not CRLF-terminated")
			}
			c.r.Discard(n)
			return kind, blen, b[:blen]
		}
		if cap(c.bulk) < int(blen) {
			c.bulk = make([]byte, blen)
		}
		c.bulk = c.bulk[:blen]
		if _, err := io.ReadFull(c.r, c.bulk); err != nil {
			retryf("server client: read bulk: %s", err.Error())
		}
		if _, err := readLine(c.r); err != nil {
			retryf("server client: read bulk terminator: %s", err.Error())
		}
		return kind, blen, c.bulk
	case '*':
		v, ok := parseInt(line[1:])
		if !ok {
			panic("server client: bad array header " + string(line))
		}
		return kind, v, nil
	default:
		panic("server client: unknown reply type " + string(line))
	}
}

// readInt reads a reply that must be an integer.
func (c *Client) readInt() int64 {
	kind, n, _ := c.readReply()
	if kind != ':' {
		panic("server client: expected integer reply, got type " + string(kind))
	}
	return n
}

// readValue reads a bulk reply holding a decimal uint64 (or nil bulk).
func (c *Client) readValue() (uint64, bool) {
	kind, n, payload := c.readReply()
	if kind != '$' {
		panic("server client: expected bulk reply, got type " + string(kind))
	}
	if n == -1 {
		return 0, false
	}
	v, ok := parseUint(payload)
	if !ok {
		panic("server client: non-numeric value " + string(payload))
	}
	return v, true
}

// Get fetches one key.
func (c *Client) Get(key uint64) (v uint64, ok bool) {
	c.do(func() {
		c.appendCommand("GET", key)
		c.flush()
		v, ok = c.readValue()
	})
	return
}

// Set stores key→val, reporting whether an existing value was replaced.
// The wire protocol does not return the old value; the uint64 result is
// always 0 and exists to mirror store.Store's Set shape.
func (c *Client) Set(key, val uint64) (uint64, bool) {
	var replaced bool
	c.do(func() {
		c.appendCommand("SET", key, val)
		c.flush()
		replaced = c.readInt() == 1
	})
	return 0, replaced
}

// Del removes key, reporting presence (the removed value itself does not
// travel back; the uint64 is always 0, as in Set).
func (c *Client) Del(key uint64) (uint64, bool) {
	var present bool
	c.do(func() {
		c.appendCommand("DEL", key)
		c.flush()
		present = c.readInt() == 1
	})
	return 0, present
}

// Insert emulates insert-if-absent over the upsert wire SET: it reports
// true when the key was fresh. Unlike a true Insert it overwrites an
// existing value, so it is only suitable for idempotent seeding.
func (c *Client) Insert(key, val uint64) bool {
	_, replaced := c.Set(key, val)
	return !replaced
}

// MGet fetches a batch of keys — pipelined GETs by default, true MGET
// frames in multibulk mode — filling vals and found like store.Store.MGet.
func (c *Client) MGet(keys, vals []uint64, found []bool) {
	c.do(func() {
		if c.multibulk {
			for start := 0; start < len(keys); start += maxBatchKeys {
				chunk := keys[start:min(start+maxBatchKeys, len(keys))]
				c.beginMulti(len(chunk) + 1)
				c.bulkString("MGET")
				for _, k := range chunk {
					c.bulkUint(k)
				}
			}
			c.flush()
			i := 0
			for start := 0; start < len(keys); start += maxBatchKeys {
				end := min(start+maxBatchKeys, len(keys))
				if kind, n, _ := c.readReply(); kind != '*' || int(n) != end-start {
					panic("server client: bad MGET array header")
				}
				for ; i < end; i++ {
					vals[i], found[i] = c.readValue()
				}
			}
			return
		}
		for _, k := range keys {
			c.appendCommand("GET", k)
		}
		c.flush()
		for i := range keys {
			vals[i], found[i] = c.readValue()
		}
	})
}

// MSet stores a batch of pairs — pipelined SETs by default, true MSET
// frames in multibulk mode — returning how many were fresh inserts.
func (c *Client) MSet(keys, vals []uint64) int {
	inserted := 0
	c.do(func() {
		inserted = 0
		if c.multibulk {
			for start := 0; start < len(keys); start += maxBatchPairs {
				end := min(start+maxBatchPairs, len(keys))
				c.beginMulti((end-start)*2 + 1)
				c.bulkString("MSET")
				for i := start; i < end; i++ {
					c.bulkUint(keys[i])
					c.bulkUint(vals[i])
				}
			}
			c.flush()
			for start := 0; start < len(keys); start += maxBatchPairs {
				inserted += int(c.readInt())
			}
			return
		}
		for i, k := range keys {
			c.appendCommand("SET", k, vals[i])
		}
		c.flush()
		for range keys {
			if c.readInt() == 0 {
				inserted++
			}
		}
	})
	return inserted
}

// MDel removes a batch of keys — pipelined DELs by default, true MDEL
// frames in multibulk mode — returning how many were present.
func (c *Client) MDel(keys []uint64) int {
	deleted := 0
	c.do(func() {
		deleted = 0
		if c.multibulk {
			for start := 0; start < len(keys); start += maxBatchKeys {
				chunk := keys[start:min(start+maxBatchKeys, len(keys))]
				c.beginMulti(len(chunk) + 1)
				c.bulkString("MDEL")
				for _, k := range chunk {
					c.bulkUint(k)
				}
			}
			c.flush()
			for start := 0; start < len(keys); start += maxBatchKeys {
				deleted += int(c.readInt())
			}
			return
		}
		for _, k := range keys {
			c.appendCommand("DEL", k)
		}
		c.flush()
		for range keys {
			if c.readInt() == 1 {
				deleted++
			}
		}
	})
	return deleted
}

// Len returns the server's live key count.
func (c *Client) Len() (n int) {
	c.do(func() {
		c.appendCommand("LEN")
		c.flush()
		n = int(c.readInt())
	})
	return
}

// Quiesce asks the server to drive every shard's maintenance home.
func (c *Client) Quiesce() {
	c.do(func() {
		c.appendCommand("QUIESCE")
		c.flush()
		if kind, _, _ := c.readReply(); kind != '+' {
			panic("server client: QUIESCE failed")
		}
	})
}

// Ping round-trips a PING.
func (c *Client) Ping() (ok bool) {
	c.do(func() {
		c.appendCommand("PING")
		c.flush()
		kind, _, payload := c.readReply()
		ok = kind == '+' && string(payload) == "PONG"
	})
	return
}

// Buckets returns the server index's current bucket total (via STATS).
func (c *Client) Buckets() int { return int(c.Stats()["buckets"]) }

// Resizes returns the server index's lifetime resize count (via STATS).
func (c *Client) Resizes() int { return int(c.Stats()["resizes"]) }

// ReclaimStats returns the server index's chain-node reclamation
// counters (via STATS).
func (c *Client) ReclaimStats() (retired, reclaimed, reused uint64) {
	s := c.Stats()
	return uint64(s["nodes_retired"]), uint64(s["nodes_reclaimed"]), uint64(s["nodes_reused"])
}

// readBulkUint reads a bulk reply that must hold a decimal uint64.
func (c *Client) readBulkUint() uint64 {
	kind, _, payload := c.readReply()
	if kind != '$' {
		panic("server client: expected bulk reply, got type " + string(kind))
	}
	v, ok := parseUint(payload)
	if !ok {
		panic("server client: non-numeric bulk " + string(payload))
	}
	return v
}

// Scan issues one SCAN page against an ordered server: entries from
// cursor upward (0 starts a scan), optionally restricted to keys whose
// decimal form starts with prefix (empty = all), at most count entries
// (0 = server default). It returns the next cursor (0 = exhausted) and
// the page. Values come back as strings because an ordered store's
// values are arbitrary; the uint64-valued benchmark path uses Range.
func (c *Client) Scan(cursor uint64, prefix string, count int) (next uint64, keys []uint64, vals []string) {
	c.do(func() {
		c.appendCommand("SCAN", cursor)
		if prefix != "" {
			c.out = append(c.out[:len(c.out)-2], " PREFIX "...)
			c.out = append(c.out, prefix...)
			c.out = append(c.out, crlf...)
		}
		if count > 0 {
			c.out = append(c.out[:len(c.out)-2], " COUNT "...)
			c.out = strconv.AppendInt(c.out, int64(count), 10)
			c.out = append(c.out, crlf...)
		}
		c.flush()
		kind, n, _ := c.readReply()
		if kind != '*' || n < 1 || n%2 != 1 {
			panic("server client: bad SCAN reply header")
		}
		next = c.readBulkUint()
		pairs := int(n) / 2
		keys = make([]uint64, pairs)
		vals = make([]string, pairs)
		for i := 0; i < pairs; i++ {
			keys[i] = c.readBulkUint()
			kind, blen, payload := c.readReply()
			if kind != '$' || blen < 0 {
				panic("server client: bad SCAN value")
			}
			vals[i] = string(payload)
		}
	})
	return
}

// ScanAll drives the SCAN cursor loop to completion, returning every
// entry under prefix (empty = the whole store) in ascending key order,
// paging by count (0 = server default).
func (c *Client) ScanAll(prefix string, count int) ([]uint64, []string) {
	var keys []uint64
	var vals []string
	cursor := uint64(0)
	for {
		next, k, v := c.Scan(cursor, prefix, count)
		keys = append(keys, k...)
		vals = append(vals, v...)
		if next == 0 {
			return keys, vals
		}
		cursor = next
	}
}

// Range fills keys/vals (same length; at most that many entries are
// requested, capped by the server at its page max) with the entries in
// [min, max] ascending, returning how many arrived. Values must be
// decimal uint64s — this is the benchmark-shaped path; use Scan for
// string values.
func (c *Client) Range(min, max uint64, keys, vals []uint64) (pairs int) {
	c.do(func() {
		c.appendCommand("RANGE", min, max)
		c.out = append(c.out[:len(c.out)-2], " LIMIT "...)
		c.out = strconv.AppendInt(c.out, int64(len(keys)), 10)
		c.out = append(c.out, crlf...)
		c.flush()
		kind, n, _ := c.readReply()
		if kind != '*' || n%2 != 0 || int(n)/2 > len(keys) {
			panic("server client: bad RANGE reply header")
		}
		pairs = int(n) / 2
		for i := 0; i < pairs; i++ {
			keys[i] = c.readBulkUint()
			vals[i] = c.readBulkUint()
		}
	})
	return
}

// Min returns the smallest key and its value; ok is false when the store
// is empty.
func (c *Client) Min() (uint64, string, bool) { return c.endpoint("MIN") }

// Max returns the largest key and its value; ok is false when the store
// is empty.
func (c *Client) Max() (uint64, string, bool) { return c.endpoint("MAX") }

func (c *Client) endpoint(cmd string) (k uint64, v string, ok bool) {
	c.do(func() {
		c.appendCommand(cmd)
		c.flush()
		kind, n, _ := c.readReply()
		if kind != '*' || (n != 0 && n != 2) {
			panic("server client: bad " + cmd + " reply header")
		}
		if n == 0 {
			k, v, ok = 0, "", false
			return
		}
		k = c.readBulkUint()
		kind, blen, payload := c.readReply()
		if kind != '$' || blen < 0 {
			panic("server client: bad " + cmd + " value")
		}
		v, ok = string(payload), true
	})
	return
}

// Stats fetches and parses the STATS reply into a name→value map.
func (c *Client) Stats() (out map[string]int64) {
	c.do(func() {
		c.appendCommand("STATS")
		c.flush()
		kind, _, payload := c.readReply()
		if kind != '$' {
			panic("server client: expected bulk STATS reply")
		}
		out = make(map[string]int64)
		for _, line := range strings.Split(string(payload), "\n") {
			name, val, ok := strings.Cut(line, ":")
			if !ok {
				continue
			}
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				panic(fmt.Sprintf("server client: bad STATS line %q", line))
			}
			out[name] = n
		}
	})
	return
}
