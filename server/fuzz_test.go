package server

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzParseRequest drives the wire parser with arbitrary byte streams and
// checks its contract: it never panics, it only ever fails with io.EOF
// (clean close at a request boundary), io.ErrUnexpectedEOF (truncated
// frame), or a *protoError (fatal framing violation) — the soft-vs-fatal
// split serve() dispatches on — and every request it does accept respects
// the protocol limits. The request struct is reused across all requests
// of one stream, as a connection does, so slot-buffer reuse is fuzzed too.
func FuzzParseRequest(f *testing.F) {
	// Transcripts from the protocol tests: inline and multibulk framing,
	// pipelining, blank-line tolerance, and each malformed-frame class.
	seeds := [][]byte{
		[]byte("PING\r\n"),
		[]byte("GET user:1\r\n"),
		[]byte("SET user:1 alice\r\n"),
		[]byte("  GET   user:1  \r\n"),
		[]byte(" \n"),
		[]byte("\r\n\r\nPING\r\n"),
		[]byte("PING\nPING\n"),
		[]byte("*1\r\n$4\r\nPING\r\n"),
		[]byte("*3\r\n$3\r\nSET\r\n$6\r\nuser:1\r\n$5\r\nalice\r\n"),
		[]byte("*2\r\n$3\r\nGET\r\n$6\r\nuser:1\r\n*2\r\n$3\r\nDEL\r\n$6\r\nuser:1\r\n"),
		[]byte("*2\r\n$4\r\nMGET\r\n$0\r\n\r\n"),
		// The expiry family: inline and multibulk framing, bad seconds
		// (negative, overflow, non-numeric), arity errors, truncations.
		[]byte("EXPIRE user:1 60\r\n"),
		[]byte("SETEX user:1 60 alice\r\n"),
		[]byte("TTL user:1\r\n"),
		[]byte("PERSIST user:1\r\n"),
		[]byte("EXPIRE user:1 -1\r\n"),
		[]byte("EXPIRE user:1 99999999999999999999\r\n"),
		[]byte("SETEX user:1 abc alice\r\n"),
		[]byte("SETEX user:1 0 alice\r\nTTL user:1\r\n"),
		[]byte("EXPIRE user:1\r\n"),
		[]byte("*3\r\n$6\r\nEXPIRE\r\n$6\r\nuser:1\r\n$2\r\n60\r\n"),
		[]byte("*4\r\n$5\r\nSETEX\r\n$6\r\nuser:1\r\n$2\r\n60\r\n$5\r\nalice\r\n"),
		[]byte("*2\r\n$3\r\nTTL\r\n$6\r\nuser:1\r\n*2\r\n$7\r\nPERSIST\r\n$6\r\nuser:1\r\n"),
		[]byte("*4\r\n$5\r\nSETEX\r\n$6\r\nuser:1\r\n$2\r\n60\r\n"),
		[]byte("*3\r\n$6\r\nEXPIRE\r\n$6\r\nuser:1\r\n$3\r\n-"),
		// Truncations and violations.
		[]byte("*3\r\n$3\r\nSET\r\n$6\r\nuser:1\r\n"),
		[]byte("*1\r\n$4\r\nPI"),
		[]byte("*0\r\n"),
		[]byte("*-1\r\n"),
		[]byte("*abc\r\n"),
		[]byte("*2\r\n:42\r\n$4\r\nPING\r\n"),
		[]byte("*1\r\n$-5\r\n"),
		[]byte("*1\r\n$9999999999999999999\r\n"),
		[]byte("*1\r\n$4\r\nPINGx\r\n"),
		[]byte("*1\r\n$4\r\nPING\rx"),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		var q request
		// A stream of len(data) bytes holds at most len(data)/4+1 frames
		// (the shortest is "a\n" inline after a blank line); the bound only
		// guards against a parser that stops consuming input.
		for reqs := 0; reqs <= len(data); reqs++ {
			err := q.readFrom(r)
			if err != nil {
				var pe *protoError
				switch {
				case errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF):
					// Clean close or truncated frame.
				case errors.As(err, &pe):
					if pe.Error() == "" {
						t.Fatalf("empty protocol error message")
					}
				default:
					t.Fatalf("unexpected error class %T: %v", err, err)
				}
				return
			}
			// Zero args is legal: a whitespace-only inline line parses as
			// an empty request, which dispatch treats as a no-op.
			if len(q.args) > maxArgs {
				t.Fatalf("accepted %d args, limit %d", len(q.args), maxArgs)
			}
			total := 0
			for _, a := range q.args {
				if len(a) > maxBulk {
					t.Fatalf("accepted %d-byte argument, limit %d", len(a), maxBulk)
				}
				total += len(a)
			}
			if total > maxRequest+maxBulk {
				t.Fatalf("accepted %d-byte request, limit %d", total, maxRequest)
			}
		}
		t.Fatalf("parser did not consume the stream in %d requests", len(data)+1)
	})
}
