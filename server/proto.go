package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Wire framing (see docs/PROTOCOL.md for the full spec). Requests arrive
// in either of two RESP-flavored forms:
//
//	inline:  GET user:1\r\n                 (fields split on spaces)
//	array:   *3\r\n$3\r\nSET\r\n$6\r\nuser:1\r\n$5\r\nalice\r\n
//
// and replies use the RESP scalar types:
//
//	+OK\r\n   -ERR msg\r\n   :42\r\n   $5\r\nalice\r\n   $-1\r\n   *2\r\n...
//
// The parser is allocation-free in steady state: each connection owns a
// fixed set of argument buffers that are reused request after request
// (append into cap, never realloc once warm), because on the pipelined
// hot path a per-argument allocation would rival the cost of the store
// operation itself.

const (
	// maxArgs bounds a single request's argument count (an MGET of
	// maxArgs-1 keys still fits).
	maxArgs = 1024
	// maxBulk bounds one argument's byte length.
	maxBulk = 8 << 20
	// maxRequest bounds one request's total argument bytes. Without it
	// the two per-item limits still admit maxArgs×maxBulk = 8 GiB into
	// per-connection buffers that live as long as the connection — one
	// client could pin the whole box.
	maxRequest = 64 << 20
)

// errQuit signals a clean client-requested shutdown of one connection.
var errQuit = errors.New("quit")

// protoError is a framing violation after which the stream cannot be
// re-synchronized; the server reports it and closes the connection.
type protoError struct{ msg string }

func (e *protoError) Error() string { return "ERR protocol error: " + e.msg }

func protoErrorf(format string, args ...any) error {
	return &protoError{msg: fmt.Sprintf(format, args...)}
}

// skipNewlines discards buffered blank-line bytes (\r, \n) without ever
// blocking. The pipelined flush decision calls it first: a trailing
// blank line in the same TCP segment as a request must not count as
// "more input buffered", or the reply would sit unflushed while the
// server blocks reading — a permanent stall for the waiting client.
func skipNewlines(r *bufio.Reader) {
	for r.Buffered() > 0 {
		b, _ := r.Peek(1)
		if b[0] != '\r' && b[0] != '\n' {
			return
		}
		r.Discard(1)
	}
}

// readLine reads one \r\n (or bare \n) terminated line, returning a view
// into the reader's buffer with the terminator stripped. The view is only
// valid until the next read.
func readLine(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadSlice('\n')
	if err != nil {
		if err == bufio.ErrBufferFull {
			return nil, protoErrorf("line exceeds %d bytes", r.Size())
		}
		return nil, err
	}
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

// request holds one parsed request. For inline commands the args are
// views straight into the reader's buffer (valid until the next read —
// the command executes before that); for multibulk frames each argument
// is copied into a persistent per-slot buffer, since parsing the next
// argument can shift the reader's buffer under an earlier view. Either
// way the steady state allocates nothing.
type request struct {
	args [][]byte // current request's arguments
	bufs [][]byte // persistent per-slot backing storage (multibulk only)
}

// grab returns the i-th persistent slot reset to length zero.
func (q *request) grab(i int) []byte {
	for len(q.bufs) <= i {
		q.bufs = append(q.bufs, nil)
	}
	return q.bufs[i][:0]
}

// setArg stores buf back as slot i and appends it to the current args.
func (q *request) setArg(i int, buf []byte) {
	q.bufs[i] = buf
	q.args = append(q.args, buf)
}

// readFrom parses the next request. Empty inline lines are skipped (so a
// human on netcat can hit return). An io.EOF before any byte of a request
// is a clean close; a *protoError is fatal to the connection.
func (q *request) readFrom(r *bufio.Reader) error {
	q.args = q.args[:0]
	var line []byte
	var err error
	for {
		line, err = readLine(r)
		if err != nil {
			return err
		}
		if len(line) > 0 {
			break
		}
	}
	if line[0] == '*' {
		return q.readArray(r, line)
	}
	return q.readInline(line)
}

// readInline splits a space-separated command line into views of the
// line itself — zero copies on the hot path.
func (q *request) readInline(line []byte) error {
	for i := 0; i < len(line); {
		if line[i] == ' ' {
			i++
			continue
		}
		j := i
		for j < len(line) && line[j] != ' ' {
			j++
		}
		if len(q.args) >= maxArgs {
			return protoErrorf("more than %d arguments", maxArgs)
		}
		q.args = append(q.args, line[i:j])
		i = j
	}
	return nil
}

// readArray parses a RESP array of bulk strings: header is the already
// consumed "*N" line.
func (q *request) readArray(r *bufio.Reader, header []byte) error {
	n, ok := parseInt(header[1:])
	if !ok || n < 1 || n > maxArgs {
		return protoErrorf("invalid multibulk count %q", header[1:])
	}
	total := int64(0)
	for i := 0; i < int(n); i++ {
		line, err := readLine(r)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return err
		}
		if len(line) == 0 || line[0] != '$' {
			return protoErrorf("expected bulk string, got %q", line)
		}
		blen, ok := parseInt(line[1:])
		if !ok || blen < 0 || blen > maxBulk {
			return protoErrorf("invalid bulk length %q", line[1:])
		}
		if total += blen; total > maxRequest {
			return protoErrorf("request exceeds %d bytes", maxRequest)
		}
		buf := q.grab(i)
		if cap(buf) < int(blen) {
			buf = make([]byte, 0, blen)
		}
		buf = buf[:blen]
		if _, err := io.ReadFull(r, buf); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return err
		}
		// Consume the trailing \r\n (tolerating bare \n).
		b, err := r.ReadByte()
		if err == nil && b == '\r' {
			b, err = r.ReadByte()
		}
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return err
		}
		if b != '\n' {
			return protoErrorf("bulk string of %d bytes not followed by CRLF", blen)
		}
		q.setArg(i, buf)
	}
	return nil
}

// parseInt parses a decimal integer with an optional leading minus,
// rejecting empty and malformed input.
func parseInt(b []byte) (int64, bool) {
	neg := false
	if len(b) > 0 && b[0] == '-' {
		neg = true
		b = b[1:]
	}
	if len(b) == 0 || len(b) > 19 {
		return 0, false
	}
	var n int64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int64(c-'0')
	}
	if neg {
		n = -n
	}
	return n, true
}

// parseUint parses an unsigned decimal (the bench client's key/value
// encoding).
func parseUint(b []byte) (uint64, bool) {
	if len(b) == 0 || len(b) > 20 {
		return 0, false
	}
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + uint64(c-'0')
	}
	return n, true
}

// Reply builders. Replies are appended into a reusable scratch buffer
// and handed to the connection's bufio.Writer in one Write call per
// reply: five tiny writer calls per bulk reply cost more in call
// bookkeeping than the payload bytes themselves on a deep pipeline.

var crlf = []byte("\r\n")

func appendStatus(dst []byte, s string) []byte {
	dst = append(dst, '+')
	dst = append(dst, s...)
	return append(dst, crlf...)
}

func appendError(dst []byte, msg string) []byte {
	dst = append(dst, '-')
	dst = append(dst, msg...)
	return append(dst, crlf...)
}

func appendInt(dst []byte, n int64) []byte {
	dst = append(dst, ':')
	dst = strconv.AppendInt(dst, n, 10)
	return append(dst, crlf...)
}

func appendBulk(dst []byte, s string) []byte {
	dst = append(dst, '$')
	dst = strconv.AppendInt(dst, int64(len(s)), 10)
	dst = append(dst, crlf...)
	dst = append(dst, s...)
	return append(dst, crlf...)
}

func appendNilBulk(dst []byte) []byte {
	return append(dst, "$-1\r\n"...)
}

func appendArrayHeader(dst []byte, n int) []byte {
	dst = append(dst, '*')
	dst = strconv.AppendInt(dst, int64(n), 10)
	return append(dst, crlf...)
}

// writeError writes an error reply directly (cold paths: connection
// rejection and protocol teardown).
func writeError(w *bufio.Writer, msg string) {
	w.Write(appendError(nil, msg))
}
