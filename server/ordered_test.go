package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"

	"github.com/optik-go/optik/store"
)

// startOrdered boots an ordered loopback server and a client for it.
func startOrdered(t *testing.T, opts ...Option) (*store.SortedStrings, *Client) {
	t.Helper()
	st := store.NewSortedStrings(store.WithShards(4), store.WithKeyMax(1<<20))
	srv := NewOrdered(st, opts...)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() {
		c.Close()
		srv.Close()
		st.Close()
	})
	return st, c
}

func TestOrderedServerPointOps(t *testing.T) {
	_, c := startOrdered(t)
	if _, replaced := c.Set(100, 1); replaced {
		t.Fatal("fresh SET replaced")
	}
	if _, replaced := c.Set(100, 2); !replaced {
		t.Fatal("second SET did not replace")
	}
	if v, ok := c.Get(100); !ok || v != 2 {
		t.Fatalf("GET = %d,%v", v, ok)
	}
	if _, ok := c.Del(100); !ok {
		t.Fatal("DEL missed")
	}
	if c.Len() != 0 {
		t.Fatalf("LEN = %d", c.Len())
	}
	// Batched surface rides the coalescer exactly as on the hash server.
	keys := []uint64{5, 3, 9, 7}
	vals := []uint64{50, 30, 90, 70}
	if ins := c.MSet(keys, vals); ins != 4 {
		t.Fatalf("MSet inserted %d", ins)
	}
	got := make([]uint64, 4)
	found := make([]bool, 4)
	c.MGet(keys, got, found)
	for i := range keys {
		if !found[i] || got[i] != vals[i] {
			t.Fatalf("MGet[%d] = %d,%v", keys[i], got[i], found[i])
		}
	}
}

func TestOrderedServerRangeFamily(t *testing.T) {
	_, c := startOrdered(t)
	for k := uint64(10); k <= 200; k += 10 {
		c.Set(k, k*3)
	}

	keys := make([]uint64, 32)
	vals := make([]uint64, 32)
	n := c.Range(35, 95, keys, vals)
	want := []uint64{40, 50, 60, 70, 80, 90}
	if n != len(want) {
		t.Fatalf("RANGE = %d entries, want %d", n, len(want))
	}
	for i, k := range want {
		if keys[i] != k || vals[i] != k*3 {
			t.Fatalf("entry %d = %d/%d", i, keys[i], vals[i])
		}
	}
	// LIMIT caps the page.
	if n := c.Range(10, 200, keys[:4], vals[:4]); n != 4 || keys[3] != 40 {
		t.Fatalf("limited RANGE = %d (keys[3]=%d)", n, keys[3])
	}
	// Endpoints.
	if k, v, ok := c.Min(); !ok || k != 10 || v != "30" {
		t.Fatalf("MIN = %d/%q/%v", k, v, ok)
	}
	if k, v, ok := c.Max(); !ok || k != 200 || v != "600" {
		t.Fatalf("MAX = %d/%q/%v", k, v, ok)
	}
}

func TestOrderedServerScanCursor(t *testing.T) {
	_, c := startOrdered(t)
	const total = 137
	for i := uint64(1); i <= total; i++ {
		c.Set(i*7, i)
	}
	// Page through with COUNT 10: every key exactly once, ascending.
	var all []uint64
	cursor := uint64(0)
	pages := 0
	for {
		next, keys, _ := c.Scan(cursor, "", 10)
		if len(keys) > 10 {
			t.Fatalf("page of %d exceeds COUNT", len(keys))
		}
		all = append(all, keys...)
		pages++
		if next == 0 {
			break
		}
		if next != keys[len(keys)-1]+1 {
			t.Fatalf("cursor %d is not a resumption key (last %d)", next, keys[len(keys)-1])
		}
		cursor = next
	}
	if len(all) != total {
		t.Fatalf("scan saw %d keys, want %d (pages %d)", len(all), total, pages)
	}
	for i := range all {
		if all[i] != uint64(i+1)*7 {
			t.Fatalf("scan[%d] = %d, want %d", i, all[i], (i+1)*7)
		}
	}
	// ScanAll convenience equals the manual loop.
	keys, vals := c.ScanAll("", 25)
	if len(keys) != total || len(vals) != total {
		t.Fatalf("ScanAll = %d/%d entries", len(keys), len(vals))
	}
}

func TestOrderedServerScanPrefix(t *testing.T) {
	_, c := startOrdered(t)
	for _, k := range []uint64{1, 12, 123, 1234, 13, 2, 21, 120} {
		c.Set(k, k)
	}
	// PREFIX 12 matches decimal representations starting "12".
	keys, _ := c.ScanAll("12", 3)
	want := []uint64{12, 120, 123, 1234}
	if len(keys) != len(want) {
		t.Fatalf("PREFIX 12 = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("PREFIX order: %v, want %v", keys, want)
		}
	}
	// PREFIX 2 must not catch 12, 120, ...
	keys, _ = c.ScanAll("2", 0)
	if len(keys) != 2 || keys[0] != 2 || keys[1] != 21 {
		t.Fatalf("PREFIX 2 = %v", keys)
	}
	// A PREFIX above the key ceiling matches no representable key: an
	// empty page with cursor 0, not the full-range default.
	next, keys, vals := c.Scan(0, "18446744073709551615", 0)
	if next != 0 || len(keys) != 0 || len(vals) != 0 {
		t.Fatalf("overflow PREFIX = cursor %d, %d keys, want empty", next, len(keys))
	}
}

// TestOrderedServerInvalidKey pins the soft-error contract: a
// non-decimal key answers -ERR for that request only, in arrival order,
// with the connection and any staged run intact.
func TestOrderedServerInvalidKey(t *testing.T) {
	_, c := startOrdered(t)
	c.Set(5, 55)

	// Raw pipeline: valid GET, invalid GET, valid GET — three replies in
	// order, the middle one an error.
	fmt.Fprintf(c.w, "GET 5\r\nGET abc\r\nGET 5\r\n")
	c.w.Flush()
	if v, ok := c.readValue(); !ok || v != 55 {
		t.Fatalf("first GET = %d,%v", v, ok)
	}
	line, err := readLine(c.r)
	if err != nil || len(line) == 0 || line[0] != '-' {
		t.Fatalf("invalid key reply = %q, %v", line, err)
	}
	if !strings.Contains(string(line), "invalid key") {
		t.Fatalf("error text %q", line)
	}
	if v, ok := c.readValue(); !ok || v != 55 {
		t.Fatalf("third GET = %d,%v (connection broken by soft error?)", v, ok)
	}
	// The connection keeps working through the client helpers too.
	if !c.Ping() {
		t.Fatal("PING after soft error failed")
	}
}

// TestOrderedCommandsOnHashServer pins the other side of the gate: a
// hash-backed server answers the ordered family with an error, not a
// hang or a crash.
func TestOrderedCommandsOnHashServer(t *testing.T) {
	st := store.NewStrings(store.WithShards(2))
	srv := New(st)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer func() { srv.Close(); st.Close() }()
	nc, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	fmt.Fprintf(nc, "MIN\r\nPING\r\n")
	br := bufio.NewReader(nc)
	line, _ := readLine(br)
	if len(line) == 0 || line[0] != '-' {
		t.Fatalf("MIN on hash server = %q, want error", line)
	}
	line, _ = readLine(br)
	if string(line) != "+PONG" {
		t.Fatalf("connection unusable after ordered-command error: %q", line)
	}
}

func TestOrderedServerStats(t *testing.T) {
	_, c := startOrdered(t)
	c.Set(1, 1)
	c.Set(2, 2)
	st := c.Stats()
	if st["ordered"] != 1 {
		t.Fatal("STATS missing ordered:1 discriminator")
	}
	if st["len"] != 2 {
		t.Fatalf("STATS len = %d", st["len"])
	}
	if _, ok := st["buckets"]; ok {
		t.Fatal("ordered STATS must not report hash-only buckets")
	}
}
