package server_test

import (
	"fmt"

	"github.com/optik-go/optik/server"
	"github.com/optik-go/optik/store"
)

// ExampleServer brings the whole stack up in-process: a string store, the
// TCP front on a loopback port, and the pipelining client talking to it.
func ExampleServer() {
	st := store.NewStrings(store.WithShards(2))
	defer st.Close()
	srv := server.New(st)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer srv.Close()

	cl, err := server.Dial(addr.String())
	if err != nil {
		panic(err)
	}
	defer cl.Close()

	cl.Set(7, 700)
	if v, ok := cl.Get(7); ok {
		fmt.Println("GET 7 →", v)
	}
	keys := []uint64{7, 8, 9}
	fmt.Println("MSet inserted", cl.MSet(keys[1:], []uint64{800, 900}))
	vals := make([]uint64, 3)
	found := make([]bool, 3)
	cl.MGet(keys, vals, found) // three pipelined GETs, one flush
	fmt.Println("MGet", vals, found)
	fmt.Println("LEN", cl.Len())
	// Output:
	// GET 7 → 700
	// MSet inserted 2
	// MGet [700 800 900] [true true true]
	// LEN 3
}
