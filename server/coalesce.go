// Server-side request coalescing: the ingest path stages the parsed
// requests of a pipeline batch instead of executing them one index
// lookup at a time, recognizes runs of same-kind scalar commands
// (GET/MGET, SET/MSET, DEL/MDEL), and drives each run through the
// store's hash-level batch APIs — so a burst of 64 pipelined GETs pays
// the shard-batched MGet's amortized costs (one reclamation handle and
// one migration-help per touched shard, per-shard bucket locality)
// exactly as if the client had sent one 64-key MGET frame. This is the
// paper's amortize-the-synchronization move applied one layer above the
// table: the requests were going to happen anyway; the coalescer merely
// refuses to pay the per-operation fixed costs once per request.
//
// Coalescing is invisible on the wire. Replies are emitted in exact
// arrival order with byte-identical framing to the scalar path; commands
// outside the three families (LEN, STATS, PING, …) act as run barriers,
// executing only after the staged run has drained. The staging window
// never outlives the pipeline batch: when the read buffer drains (the
// client is waiting) the run executes and the replies flush, so a
// request/response client is never delayed behind an open run.
//
// Nothing staged retains parser memory: keys are hashed out of the
// parser's []byte views at staging time (HashKeyBytes) and SET values
// take their one unavoidable string copy then — the same copy the
// scalar path pays — so the reader's buffer is free to shift under the
// next request.

package server

import (
	"bufio"
)

// runKind classifies a staged run by command family.
type runKind uint8

const (
	runNone  runKind = iota
	runRead          // GET / MGET
	runWrite         // SET / MSET
	runDel           // DEL / MDEL
)

// stagedReq records one staged request's reply framing: how many of the
// run's keys it carries and whether it answers with multi-key framing
// (MGET's array, MSET/MDEL's aggregate count) or a scalar reply.
type stagedReq struct {
	n     int
	multi bool
}

// coalescer is one connection's staging state plus the reusable
// execution scratch. All slices grow to the run bound (WithCoalesce cap
// plus one request's maxArgs) and are reused batch after batch, so the
// coalesced hot path allocates nothing in steady state beyond the SET
// values' string copies the scalar path also pays.
type coalescer struct {
	kind   runKind
	reqs   []stagedReq
	hashes []uint64 // staged keys of the run, in arrival order
	vals   []string // staged SET/MSET values, parallel to hashes (write runs)

	// Execution scratch.
	outVals []string
	flags   []bool
}

// keys returns how many keys the open run has staged.
func (co *coalescer) keys() int { return len(co.hashes) }

// reset clears the staging state after a drain. Values are cleared so a
// large staged payload is not pinned by the reusable backing arrays.
func (co *coalescer) reset() {
	co.kind = runNone
	co.reqs = co.reqs[:0]
	clear(co.vals)
	co.hashes = co.hashes[:0]
	co.vals = co.vals[:0]
}

// stage opens (or extends) a run of kind k and records one request
// carrying n of the keys the caller appended to co.hashes/co.vals. The
// caller must have drained any run of a different kind first.
func (co *coalescer) stage(k runKind, n int, multi bool) {
	co.kind = k
	co.reqs = append(co.reqs, stagedReq{n: n, multi: multi})
}

// drain executes the staged run, appending every reply to out in
// arrival order (spilling to w when out outgrows the buffer budget, as
// the scalar path does), and resets the stage. A run of one scalar
// request takes the exact scalar store path, so coalescing never taxes
// request/response traffic; a run of one multi-key request is the
// shard-batched M* handler. Only runs that merged two or more requests
// count toward the coalescing stats.
func (s *Server) drain(co *coalescer, w *bufio.Writer, out []byte) ([]byte, error) {
	if co.kind == runNone {
		return out, nil
	}
	if len(co.reqs) >= 2 {
		s.coalescedBatches.Add(1)
		s.coalescedKeys.Add(uint64(co.keys()))
	}
	var err error
	switch co.kind {
	case runRead:
		out, err = s.drainRead(co, w, out)
	case runWrite:
		out, err = s.drainWrite(co, w, out)
	case runDel:
		out, err = s.drainDel(co, w, out)
	}
	co.reset()
	return out, err
}

// scratch sizes the coalescer's execution slices for n keys.
func (co *coalescer) scratch(n int) ([]string, []bool) {
	if cap(co.outVals) < n {
		co.outVals = make([]string, n)
		co.flags = make([]bool, n)
	}
	return co.outVals[:n], co.flags[:n]
}

// spill hands out to the writer when it outgrows the buffer budget,
// preserving TCP backpressure under replies much larger than requests.
func (s *Server) spill(w *bufio.Writer, out []byte) ([]byte, error) {
	if len(out) < s.opts.bufSize {
		return out, nil
	}
	if _, err := w.Write(out); err != nil {
		return out[:0], err
	}
	return out[:0], nil
}

func (s *Server) drainRead(co *coalescer, w *bufio.Writer, out []byte) ([]byte, error) {
	n := co.keys()
	vals, found := co.scratch(n)
	if n == 1 {
		vals[0], found[0] = s.st.GetHashed(co.hashes[0])
	} else {
		s.st.MGetHashed(co.hashes, vals, found)
	}
	i := 0
	var err error
	for _, rq := range co.reqs {
		if rq.multi {
			out = appendArrayHeader(out, rq.n)
		}
		for j := 0; j < rq.n; j++ {
			if found[i] {
				out = appendBulk(out, vals[i])
			} else {
				out = appendNilBulk(out)
			}
			i++
			if out, err = s.spill(w, out); err != nil {
				return out, err
			}
		}
	}
	clear(vals) // don't pin arena strings in the reusable scratch
	return out, nil
}

func (s *Server) drainWrite(co *coalescer, w *bufio.Writer, out []byte) ([]byte, error) {
	n := co.keys()
	_, replaced := co.scratch(n)
	if n == 1 {
		replaced[0] = s.st.SetHashed(co.hashes[0], co.vals[0])
	} else {
		s.st.MSetHashed(co.hashes, co.vals, replaced)
	}
	i := 0
	var err error
	for _, rq := range co.reqs {
		if rq.multi {
			inserted := int64(0)
			for j := 0; j < rq.n; j++ {
				if !replaced[i] {
					inserted++
				}
				i++
			}
			out = appendInt(out, inserted)
		} else {
			out = appendInt(out, b2i(replaced[i]))
			i++
		}
		if out, err = s.spill(w, out); err != nil {
			return out, err
		}
	}
	return out, nil
}

func (s *Server) drainDel(co *coalescer, w *bufio.Writer, out []byte) ([]byte, error) {
	n := co.keys()
	_, found := co.scratch(n)
	if n == 1 {
		found[0] = s.st.DelHashed(co.hashes[0])
	} else {
		s.st.MDelHashed(co.hashes, found)
	}
	i := 0
	var err error
	for _, rq := range co.reqs {
		if rq.multi {
			deleted := int64(0)
			for j := 0; j < rq.n; j++ {
				if found[i] {
					deleted++
				}
				i++
			}
			out = appendInt(out, deleted)
		} else {
			out = appendInt(out, b2i(found[i]))
			i++
		}
		if out, err = s.spill(w, out); err != nil {
			return out, err
		}
	}
	return out, nil
}

// stageKeys maps every key view through the backend into the run's key
// stream. On an unrepresentable key (ordered backend, non-decimal bytes)
// the request's keys are rolled back and false returned: the run keeps
// only fully staged requests, so the dispatcher can answer a per-request
// error without corrupting the reply accounting.
func (s *Server) stageKeys(co *coalescer, keys [][]byte) bool {
	base := len(co.hashes)
	for _, k := range keys {
		h, ok := s.st.key(k)
		if !ok {
			co.hashes = co.hashes[:base]
			return false
		}
		co.hashes = append(co.hashes, h)
	}
	return true
}

// stagePairs maps every even arg as a key and copies every odd arg as its
// value (the same one string copy per value the scalar SET pays). Same
// rollback contract as stageKeys.
func (s *Server) stagePairs(co *coalescer, args [][]byte) bool {
	baseH, baseV := len(co.hashes), len(co.vals)
	for i := 0; i < len(args); i += 2 {
		h, ok := s.st.key(args[i])
		if !ok {
			co.hashes = co.hashes[:baseH]
			clear(co.vals[baseV:])
			co.vals = co.vals[:baseV]
			return false
		}
		co.hashes = append(co.hashes, h)
		co.vals = append(co.vals, string(args[i+1]))
	}
	return true
}
