// The ordered command family: SCAN, RANGE, MIN, MAX (docs/PROTOCOL.md has
// the grammar). All four are coalescer barriers — they drain any staged
// run first, like LEN or STATS — because their replies depend on global
// index order, which a half-applied staged run would make unanswerable in
// arrival-order semantics.
//
// SCAN pages with a STABLE cursor: the cursor is a resumption KEY (the
// smallest key the next page may contain), not a position. A positional
// cursor breaks under churn — deletions ahead of it skip entries,
// insertions repeat them — while a resumption key inherits the skip list's
// own guarantee: keys are returned in strictly ascending order, so "give
// me keys >= c" neither skips nor repeats anything that stays present
// across the pages (the store's cursor-invariant test pins exactly this).
package server

import (
	"bufio"
	"strconv"

	"github.com/optik-go/optik/ds"
)

const (
	// defaultScanCount is the page size when SCAN/RANGE carry no
	// COUNT/LIMIT.
	defaultScanCount = 128
	// maxScanCount caps a requested page, bounding one reply's memory.
	maxScanCount = 4096
)

// appendBulkUint frames a uint64 as a decimal bulk string.
func appendBulkUint(dst []byte, v uint64) []byte {
	var tmp [20]byte
	b := strconv.AppendUint(tmp[:0], v, 10)
	dst = append(dst, '$')
	dst = strconv.AppendInt(dst, int64(len(b)), 10)
	dst = append(dst, crlf...)
	dst = append(dst, b...)
	return append(dst, crlf...)
}

// clampKeyRange pulls an arbitrary wire uint64 pair into the index key
// space (RANGE 0 18446744073709551615 means "everything").
func clampKeyRange(min, max uint64) (uint64, uint64) {
	if min < ds.MinKey {
		min = ds.MinKey
	}
	if max > ds.MaxKey {
		max = ds.MaxKey
	}
	return min, max
}

// prefixRanges appends the key ranges whose decimal representation starts
// with the digits of prefix, in ascending key order: value v with d
// trailing digits spans [v·10^d, (v+1)·10^d − 1], one range per digit
// count until 10^d·v overflows the key space. The ranges are disjoint and
// ascending (each is a full power-of-ten slice above the previous), so a
// scan visiting them in order emits globally ascending keys and the
// resumption cursor stays valid across them.
func prefixRanges(v uint64, dst [][2]uint64) [][2]uint64 {
	if v == 0 {
		// Decimal representations have no leading zeros; only the key 0
		// itself would match, and 0 is outside the key range.
		return dst
	}
	for scale := uint64(1); ; scale *= 10 {
		if v > ds.MaxKey/scale {
			break
		}
		lo := v * scale
		hi := lo + (scale - 1)
		if hi < lo || hi > ds.MaxKey {
			hi = ds.MaxKey
		}
		if lo < ds.MinKey {
			lo = ds.MinKey
		}
		dst = append(dst, [2]uint64{lo, hi})
		if scale > ds.MaxKey/10 {
			break
		}
	}
	return dst
}

// scanScratch sizes the reply page buffers.
func scanScratch(n int) ([]uint64, []string) {
	return make([]uint64, n), make([]string, n)
}

// executeScan answers SCAN cursor [PREFIX p] [COUNT n]: a flat array
// whose first element is the next cursor (0 = exhausted) followed by
// key/value pairs.
func (s *Server) executeScan(ob orderedBackend, rest [][]byte, w *bufio.Writer, out []byte) ([]byte, error) {
	if len(rest) < 1 || len(rest)%2 != 1 {
		return arity(out, "scan")
	}
	cursor, ok := parseUint(rest[0])
	if !ok {
		return appendError(out, "ERR invalid cursor"), nil
	}
	count := defaultScanCount
	var ranges [][2]uint64
	prefixed := false
	for i := 1; i < len(rest); i += 2 {
		switch {
		case cmdEq(rest[i], "COUNT"):
			n, ok := parseUint(rest[i+1])
			if !ok || n == 0 {
				return appendError(out, "ERR invalid COUNT"), nil
			}
			if n > maxScanCount {
				n = maxScanCount
			}
			count = int(n)
		case cmdEq(rest[i], "PREFIX"):
			p := rest[i+1]
			v, ok := parseUint(p)
			if !ok || len(p) > 0 && p[0] == '0' {
				return appendError(out, "ERR invalid PREFIX"), nil
			}
			prefixed = true
			ranges = prefixRanges(v, ranges[:0])
		default:
			return appendError(out, "ERR syntax error in SCAN"), nil
		}
	}
	if prefixed && len(ranges) == 0 {
		// The prefix matches no representable key (e.g. a value above
		// ds.MaxKey): an empty page with cursor 0, not the full-range
		// default below.
		out = appendArrayHeader(out, 1)
		return appendBulkUint(out, 0), nil
	}
	if ranges == nil {
		ranges = append(ranges, [2]uint64{ds.MinKey, ds.MaxKey})
	}

	keys, vals := scanScratch(count)
	filled := 0
	exhausted := true
	for _, r := range ranges {
		lo, hi := r[0], r[1]
		if cursor > lo {
			lo = cursor
		}
		if lo > hi {
			continue
		}
		filled += ob.Scan(lo, hi, keys[filled:], vals[filled:])
		if filled == count {
			// The page is full; unless this range (and every later one) is
			// truly done, more may remain.
			exhausted = keys[filled-1] == hi && r == ranges[len(ranges)-1]
			break
		}
	}
	next := uint64(0)
	if filled > 0 && !exhausted && keys[filled-1] < ds.MaxKey {
		next = keys[filled-1] + 1
	}
	out = appendArrayHeader(out, 1+2*filled)
	out = appendBulkUint(out, next)
	var err error
	for i := 0; i < filled; i++ {
		out = appendBulkUint(out, keys[i])
		out = appendBulk(out, vals[i])
		if out, err = s.spill(w, out); err != nil {
			return out, err
		}
	}
	return out, nil
}

// executeRange answers RANGE min max [LIMIT n]: a flat array of key/value
// pairs for min <= key <= max, ascending, at most n pairs (default 128,
// cap 4096). Unlike SCAN it carries no cursor — callers page by reissuing
// with min = lastKey+1.
func (s *Server) executeRange(ob orderedBackend, rest [][]byte, w *bufio.Writer, out []byte) ([]byte, error) {
	if len(rest) != 2 && len(rest) != 4 {
		return arity(out, "range")
	}
	lo, ok1 := parseUint(rest[0])
	hi, ok2 := parseUint(rest[1])
	if !ok1 || !ok2 {
		return appendError(out, "ERR invalid range bound"), nil
	}
	limit := defaultScanCount
	if len(rest) == 4 {
		if !cmdEq(rest[2], "LIMIT") {
			return appendError(out, "ERR syntax error in RANGE"), nil
		}
		n, ok := parseUint(rest[3])
		if !ok || n == 0 {
			return appendError(out, "ERR invalid LIMIT"), nil
		}
		if n > maxScanCount {
			n = maxScanCount
		}
		limit = int(n)
	}
	lo, hi = clampKeyRange(lo, hi)
	filled := 0
	var keys []uint64
	var vals []string
	if lo <= hi {
		keys, vals = scanScratch(limit)
		filled = ob.Scan(lo, hi, keys, vals)
	}
	out = appendArrayHeader(out, 2*filled)
	var err error
	for i := 0; i < filled; i++ {
		out = appendBulkUint(out, keys[i])
		out = appendBulk(out, vals[i])
		if out, err = s.spill(w, out); err != nil {
			return out, err
		}
	}
	return out, nil
}

// executeEndpoint answers MIN and MAX: a two-element [key, value] array,
// or an empty array on an empty store.
func executeEndpoint(out []byte, k uint64, v string, ok bool) []byte {
	if !ok {
		return appendArrayHeader(out, 0)
	}
	out = appendArrayHeader(out, 2)
	out = appendBulkUint(out, k)
	return appendBulk(out, v)
}
