//go:build !linux

// Non-linux stub: ConnModePoller silently falls back to the portable
// goroutine-per-conn mode (WithConnMode documents this; STATS `poller`
// reports which mode is live). fillAvailable lives in poller_linux.go on
// linux because only the poller calls it.

package server

import "errors"

const pollerSupported = false

type poller struct{}

func newPoller(*Server) (*poller, error) {
	return nil, errors.New("server: poller conn mode requires linux epoll")
}

func (*poller) start()                    {}
func (*poller) stop()                     {}
func (*poller) destroy()                  {}
func (*poller) register(*connState) error { return errors.New("server: no poller") }
