// connState is the per-connection protocol engine, shared verbatim by both
// conn modes: goroutine-per-conn (runLoop, the portable default — one
// goroutine blocks on the socket) and the shared poller (poller_linux.go —
// epoll workers call the same step/flushBatch/readFailed methods whenever
// the socket turns readable). There is exactly ONE implementation of
// parse → coalesce → dispatch → flush; the modes differ only in who drives
// it and when buffers are resident.
//
// Lifecycle: a connection starts parked with no buffers — an idle conn
// costs its registration, per the OPTIK principle of paying only when
// there is work. Buffers are acquired from the tiered pools (bufpool.go)
// on the first readable byte and released at teardown (goroutine mode) or
// additionally after an idle grace period (poller mode). The parked/busy/
// shed state word coordinates the owner (handler goroutine or poller
// worker) with the load shedder: the shedder may claim only a parked conn,
// so it never writes concurrently with the protocol engine.

package server

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net"
	"sync/atomic"
	"time"
)

// Connection lifecycle states (connState.state).
const (
	connParked int32 = iota // no request in flight; the shedder may claim it
	connBusy                // the handler/worker owns the conn
	connShed                // the shedder claimed it; the owner exits quietly
)

// busyReply is the overload reply: written to a rejected accept or into a
// shed idle connection, ahead of a FIN. Clients back off and redial (the
// server.Client does this itself; see docs/PROTOCOL.md "Overload").
var busyReply = []byte("-ERR busy retry\r\n")

// connPoller is what a poller-registered connection knows how to do beyond
// the shared engine; satisfied by pollConn (linux). It keeps server.go
// portable: non-linux builds never construct one.
type connPoller interface {
	// shed tears the connection down after the shedder claimed it (the
	// state is already connShed): busy reply, FIN, unregister, close.
	shed()
}

// blockableReader is a byte source that can switch between nonblocking
// (poller workers must not stall on a half-arrived frame) and blocking
// (frames larger than the read buffer stream through the runtime poller).
type blockableReader interface {
	io.Reader
	setBlocking(bool)
}

// connState carries one connection through either conn mode.
type connState struct {
	srv *Server
	nc  net.Conn

	// Protocol engine state; nil/empty while buffers are not resident.
	r       *bufio.Reader
	w       *bufio.Writer
	out     []byte
	co      *coalescer
	req     request
	pending int

	src     io.Reader // what r reads: prefixReader (goroutine) or rawReader (poller)
	wdst    io.Writer // what w writes: nc when nil (goroutine), deadlineWriter (poller)
	pre     prefixReader
	charged int64 // bytes charged to Server.buffersResident while resident

	state      atomic.Int32
	lastActive atomic.Int64 // UnixNano of the last claim; shed picks the smallest
	resident   atomic.Bool  // buffers held (lock-free pre-filter for the idle sweep)

	poll connPoller // nil in goroutine mode
}

func newConnState(s *Server, nc net.Conn) *connState {
	cs := &connState{srv: s, nc: nc}
	cs.touch()
	return cs
}

func (cs *connState) touch() { cs.lastActive.Store(time.Now().UnixNano()) }
func (cs *connState) park()  { cs.state.Store(connParked) }
func (cs *connState) claim() bool {
	return cs.state.CompareAndSwap(connParked, connBusy)
}

// acquireBuffers checks the engine's working set out of the tiered pools.
// Caller guarantees buffers are not already resident.
func (cs *connState) acquireBuffers(src io.Reader) {
	n := cs.srv.opts.bufSize
	cs.src = src
	dst := cs.wdst
	if dst == nil {
		dst = cs.nc
	}
	cs.r = getReader(src, n)
	cs.w = getWriter(dst, n)
	cs.out = getBytes(512)
	cs.co = getCoalescer()
	cs.charged = int64(cs.r.Size() + cs.w.Size())
	cs.srv.buffersResident.Add(cs.charged)
	cs.resident.Store(true)
}

// releaseBuffers returns the working set to the pools. Idempotent. Callers
// release only when nothing is staged or buffered (idle) or the connection
// is dead (teardown).
func (cs *connState) releaseBuffers() {
	if cs.r == nil {
		return
	}
	putReader(cs.r)
	putWriter(cs.w)
	putBytes(cs.out)
	putCoalescer(cs.co)
	cs.r, cs.w, cs.out, cs.co, cs.src = nil, nil, nil, nil, nil
	cs.resident.Store(false)
	cs.srv.buffersResident.Add(-cs.charged)
	cs.charged = 0
}

// idleReleasable reports whether the engine holds nothing that would be
// lost by releasing the buffers: no partial frame, no staged run, no
// unflushed replies. Poller-mode idle sweep calls it under the conn's
// processing lock.
func (cs *connState) idleReleasable() bool {
	return cs.r != nil && cs.r.Buffered() == 0 && cs.pending == 0 &&
		len(cs.out) == 0 && cs.co.kind == runNone && cs.w.Buffered() == 0
}

// flushAll hands the accumulated replies to the writer and flushes — one
// Write per pipeline batch, as before the refactor.
func (cs *connState) flushAll() error {
	if len(cs.out) > 0 {
		if _, err := cs.w.Write(cs.out); err != nil {
			return err
		}
		cs.out = cs.out[:0]
	}
	return cs.w.Flush()
}

// flushBatch ends a pipeline batch: drain the staged run, flush every
// reply, account the commands. Reports false when the connection is dead.
func (cs *connState) flushBatch() bool {
	var err error
	if cs.out, err = cs.srv.drain(cs.co, cs.w, cs.out); err != nil {
		return false
	}
	if cs.flushAll() != nil {
		return false
	}
	cs.srv.commands.Add(uint64(cs.pending))
	cs.pending = 0
	return true
}

// step parses and dispatches exactly one request. Reports false when the
// connection is finished (error, QUIT, or protocol teardown — all handled
// here, identically in both modes).
func (cs *connState) step() bool {
	s := cs.srv
	err := cs.req.readFrom(cs.r)
	if err != nil {
		cs.readFailed(err)
		return false
	}
	cs.out, err = s.dispatch(cs.co, &cs.req, cs.w, cs.out)
	cs.pending++
	if err != nil {
		// errQuit and write errors both end the connection; flush what
		// the client is owed first (QUIT drained the stage itself).
		cs.flushAll()
		s.commands.Add(uint64(cs.pending))
		cs.pending = 0
		return false
	}
	if cs.out, err = s.spill(cs.w, cs.out); err != nil {
		return false
	}
	return true
}

// readFailed ends the connection after a read error. A protocol error is
// reported on the wire: the staged run's replies are owed first, ahead of
// the error, and the error travels on a FIN (half-close plus drain), not a
// RST that could destroy it in flight. Every other error (EOF, deadline,
// shed wake-up) flushes what is owed and goes quiet.
func (cs *connState) readFailed(err error) {
	s := cs.srv
	s.commands.Add(uint64(cs.pending))
	cs.pending = 0
	var pe *protoError
	if errors.As(err, &pe) {
		var derr error
		if cs.out, derr = s.drain(cs.co, cs.w, cs.out); derr != nil {
			return
		}
		cs.out = appendError(cs.out, pe.Error())
		if cs.flushAll() == nil {
			if tc, ok := cs.nc.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
			cs.nc.SetReadDeadline(time.Now().Add(time.Second))
			if br, ok := cs.src.(blockableReader); ok {
				br.setBlocking(true)
			}
			io.Copy(io.Discard, cs.r)
		}
		return
	}
	var derr error
	if cs.out, derr = s.drain(cs.co, cs.w, cs.out); derr == nil {
		cs.flushAll()
	}
}

// runLoop is the goroutine-per-conn mode: one blocking loop owning the
// connection, byte-compatible with the pre-refactor handler. Buffers are
// acquired only once the conn speaks, so a connected-but-silent client
// costs a goroutine and a registration, not a working set.
func (cs *connState) runLoop() {
	var first [1]byte
	n, err := cs.nc.Read(first[:])
	for err == nil && n == 0 {
		n, err = cs.nc.Read(first[:])
	}
	if err != nil {
		return
	}
	if !cs.claim() {
		return // shed while we parked on the first read
	}
	cs.touch()
	cs.pre = prefixReader{nc: cs.nc, b: first[0], have: true}
	cs.acquireBuffers(&cs.pre)
	r := cs.r
	for {
		skipNewlines(r)
		if cs.pending > 0 && (r.Buffered() == 0 || cs.pending >= cs.srv.opts.pipeline) {
			if !cs.flushBatch() {
				return
			}
		}
		if r.Buffered() == 0 {
			// About to block between batches: park so the shedder may
			// claim the conn, then re-claim once bytes arrive.
			cs.park()
			if _, err := r.Peek(1); err != nil {
				cs.readFailed(err)
				return
			}
			if !cs.claim() {
				return
			}
			cs.touch()
		}
		if !cs.step() {
			return
		}
	}
}

// prefixReader replays the one byte the lazy-acquisition read consumed
// before the bufio.Reader existed, then delegates to the socket. It lives
// inside connState so the wrapper costs no allocation.
type prefixReader struct {
	nc   net.Conn
	b    byte
	have bool
}

func (p *prefixReader) Read(buf []byte) (int, error) {
	if p.have {
		if len(buf) == 0 {
			return 0, nil
		}
		p.have = false
		buf[0] = p.b
		return 1, nil
	}
	return p.nc.Read(buf)
}

// frameStatus classifies the reader's buffered bytes for the poller: can
// readFrom consume the next request without touching the socket, and if
// not, can more bytes ever arrive into this buffer?
type frameStatus int

const (
	// frameWait: the frame is incomplete and the buffer has room — park
	// the partial bytes and wait for the next readiness cycle.
	frameWait frameStatus = iota
	// frameBuffered: one complete frame (headers, bodies, terminators) is
	// buffered, or the buffered prefix is malformed in a way the parser
	// rejects before needing more bytes. readFrom will not block.
	frameBuffered
	// frameOverflow: the frame is incomplete and the buffer is full
	// (frames are legal up to maxBulk, far past any buffer tier) — no
	// future readiness cycle can add bytes, so only blocking reads can
	// finish it. A nonblocking readFrom here would hit EAGAIN mid-parse
	// and be mistaken for a dead connection.
	frameOverflow
)

// frameCheck reports whether the next request can be parsed entirely from
// the reader's buffered bytes. The poller calls it so a half-arrived frame
// parks in the bufio buffer across readiness cycles instead of stalling a
// worker, and so a frame that outgrows the buffer (frameOverflow) is
// finished with blocking reads instead of a nonblocking parse that cannot
// succeed.
func frameCheck(r *bufio.Reader) frameStatus {
	buf, _ := r.Peek(r.Buffered())
	i := 0
	for i < len(buf) && (buf[i] == '\r' || buf[i] == '\n') {
		i++
	}
	if i == len(buf) {
		return frameWait // only blanks: skipNewlines discards them, no frame yet
	}
	incomplete := frameWait
	if len(buf) == r.Size() {
		incomplete = frameOverflow
	}
	j := lineEnd(buf[i:])
	if j < 0 {
		return incomplete // incomplete first line (full buffer: readLine reports overflow unread)
	}
	if buf[i] != '*' {
		return frameBuffered // complete inline line
	}
	n, ok := parseInt(trimCR(buf[i : i+j])[1:])
	if !ok || n < 1 || n > maxArgs {
		return frameBuffered // malformed header: the parser rejects it from the buffer
	}
	pos := i + j + 1
	for k := int64(0); k < n; k++ {
		rest := buf[pos:]
		j := lineEnd(rest)
		if j < 0 {
			return incomplete
		}
		line := trimCR(rest[:j])
		if len(line) == 0 || line[0] != '$' {
			return frameBuffered
		}
		blen, ok := parseInt(line[1:])
		if !ok || blen < 0 || blen > maxBulk {
			return frameBuffered
		}
		pos += j + 1
		if int64(len(buf)-pos) < blen+1 {
			return incomplete // body (+ at least one terminator byte) not here yet
		}
		pos += int(blen)
		if buf[pos] == '\r' {
			if pos+1 >= len(buf) {
				return incomplete
			}
			pos++
		}
		if buf[pos] != '\n' {
			return frameBuffered // malformed terminator: parser rejects from the buffer
		}
		pos++
	}
	return frameBuffered
}

// lineEnd returns the index of the first '\n' in b (the line spans b[:i]),
// or -1.
func lineEnd(b []byte) int { return bytes.IndexByte(b, '\n') }

// trimCR strips a trailing '\r' from a line whose '\n' is already cut.
func trimCR(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\r' {
		return b[:n-1]
	}
	return b
}
