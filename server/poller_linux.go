//go:build linux

// Shared-poller conn mode: one epoll instance owns every connection's
// readiness, a small worker pool drives the shared connState protocol
// engine over whichever connections turned readable, and an idle sweep
// returns buffers to the tiered pools. An idle connection costs an epoll
// registration plus a pollConn/connState pair — no goroutine, no stack,
// and (after the grace) no buffers — which is what lets one process hold
// tens of thousands of mostly-idle clients.
//
// Concurrency scheme: connections are registered level-triggered with
// EPOLLONESHOT, so a readable conn is dispatched to exactly one worker and
// stays disarmed until that worker re-arms it after processing — two
// workers never own one conn. Each pollConn also carries a processing
// mutex (procMu): the idle sweep and the shedder take it (TryLock / Lock)
// so buffer release and teardown never overlap a worker mid-batch. The
// parked/busy/shed state word is the same protocol the goroutine mode
// uses, so the load shedder in server.go is mode-agnostic.
//
// Reads go through rawReader: a nonblocking syscall.Read under
// syscall.RawConn so a half-arrived frame never stalls a worker — the
// partial bytes park in the conn's bufio buffer and the worker moves on
// (frameCheck in conn.go decides). Two deliberate exceptions block a
// worker: frames larger than the read buffer (legal up to maxBulk) stream
// via blocking reads through the runtime's own netpoller, and replies use
// blocking nc.Write — both are rare or already backpressured paths, and a
// parked worker there is exactly the goroutine-per-conn cost, paid only
// while it is actually needed. Reply writes additionally carry a deadline
// (deadlineWriter): a zero-window or dead peer bounds the worker — or the
// dispatcher's help-drain — for pollerWriteTimeout, not for the TCP
// stack's own timeout of minutes.

package server

import (
	"errors"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

const pollerSupported = true

// errWouldBlock is rawReader's EAGAIN: no bytes now, try again on the next
// readiness event.
var errWouldBlock = errors.New("server: read would block")

// pollerWriteTimeout bounds every poller-mode reply write. Workers — and
// the dispatcher when it help-drains or sheds — write replies
// synchronously; without a deadline one stalled peer (zero TCP window,
// dead host) would wedge them until the TCP stack itself gives up,
// minutes later. A client that cannot accept reply bytes for this long is
// treated as dead and torn down.
const pollerWriteTimeout = 5 * time.Second

// deadlineWriter is what a poller-mode connection's bufio.Writer flushes
// into: it arms a write deadline ahead of every write so no reply flush
// can outlive pollerWriteTimeout. Goroutine-mode conns write to the
// socket directly — a wedged write there costs one parked goroutine, not
// a shared worker.
type deadlineWriter struct {
	nc net.Conn
}

func (dw *deadlineWriter) Write(p []byte) (int, error) {
	dw.nc.SetWriteDeadline(time.Now().Add(pollerWriteTimeout))
	return dw.nc.Write(p)
}

// rawReader reads straight from the fd. Nonblocking by default: EAGAIN
// surfaces as errWouldBlock without waiting. With setBlocking(true) an
// EAGAIN instead parks in the runtime poller (honoring read deadlines),
// which oversized frames and the teardown drain use.
type rawReader struct {
	rc    syscall.RawConn
	block bool
}

func (rr *rawReader) setBlocking(b bool) { rr.block = b }

func (rr *rawReader) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	var n int
	var rerr error
	cerr := rr.rc.Read(func(fd uintptr) bool {
		for {
			n, rerr = syscall.Read(int(fd), p)
			if rerr == syscall.EINTR {
				continue
			}
			if rerr == syscall.EAGAIN {
				if rr.block {
					return false // wait in the runtime poller, then retry
				}
				n, rerr = 0, errWouldBlock
			}
			return true
		}
	})
	switch {
	case cerr != nil:
		return 0, cerr // conn closed under us / deadline exceeded
	case rerr != nil:
		return 0, rerr
	case n == 0:
		return 0, io.EOF
	}
	return n, nil
}

// pollConn is one poller-registered connection.
type pollConn struct {
	cs  *connState
	p   *poller
	fd  int
	raw rawReader
	wdl deadlineWriter

	// procMu serializes the three parties that may touch the engine state:
	// the worker processing a readiness batch, the idle sweep releasing
	// buffers, and the shedder/teardown. closed is guarded by it.
	procMu sync.Mutex
	closed bool
}

type poller struct {
	s     *Server
	epfd  int
	wakeR int // pipe: stop() writes a byte, waitLoop exits
	wakeW int

	mu    sync.Mutex
	conns map[int32]*pollConn

	ready   chan *pollConn
	stopped atomic.Bool
}

func newPoller(s *Server) (*poller, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, err
	}
	var pfds [2]int
	if err := syscall.Pipe2(pfds[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		syscall.Close(epfd)
		return nil, err
	}
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN, Fd: int32(pfds[0])}
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, pfds[0], &ev); err != nil {
		syscall.Close(epfd)
		syscall.Close(pfds[0])
		syscall.Close(pfds[1])
		return nil, err
	}
	return &poller{
		s:     s,
		epfd:  epfd,
		wakeR: pfds[0],
		wakeW: pfds[1],
		conns: make(map[int32]*pollConn),
		ready: make(chan *pollConn, 256),
	}, nil
}

// start launches the wait loop and the worker pool, all on the server's
// WaitGroup so Close drains them.
func (p *poller) start() {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	p.s.wg.Add(1 + workers)
	go p.waitLoop()
	for i := 0; i < workers; i++ {
		go p.worker()
	}
}

// stop wakes the wait loop so it exits and closes the ready channel,
// draining the workers. Safe to call more than once.
func (p *poller) stop() {
	if p.stopped.Swap(true) {
		return
	}
	syscall.Write(p.wakeW, []byte{0})
}

// destroy closes the epoll and wake fds; call only after the wait loop and
// workers have exited (Server.Close waits on the WaitGroup first).
func (p *poller) destroy() {
	syscall.Close(p.epfd)
	syscall.Close(p.wakeR)
	syscall.Close(p.wakeW)
}

// register adds an accepted connection to the epoll set. The connection is
// parked with no buffers until its first readable byte.
func (p *poller) register(cs *connState) error {
	tc, ok := cs.nc.(*net.TCPConn)
	if !ok {
		return errors.New("server: poller needs a TCP conn")
	}
	rc, err := tc.SyscallConn()
	if err != nil {
		return err
	}
	fd := -1
	if err := rc.Control(func(u uintptr) { fd = int(u) }); err != nil {
		return err
	}
	pc := &pollConn{cs: cs, p: p, fd: fd}
	pc.raw.rc = rc
	pc.wdl.nc = cs.nc
	cs.poll = pc
	cs.wdst = &pc.wdl
	p.mu.Lock()
	p.conns[int32(fd)] = pc
	p.mu.Unlock()
	ev := syscall.EpollEvent{
		Events: syscall.EPOLLIN | syscall.EPOLLRDHUP | uint32(syscall.EPOLLONESHOT),
		Fd:     int32(fd),
	}
	if err := syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_ADD, fd, &ev); err != nil {
		p.mu.Lock()
		delete(p.conns, int32(fd))
		p.mu.Unlock()
		cs.poll = nil
		cs.wdst = nil // the fallback goroutine writes to the socket directly
		return err
	}
	return nil
}

// sweepTick converts the idle grace into the EpollWait timeout that paces
// the idle sweep.
func sweepTick(grace time.Duration) int {
	if grace <= 0 {
		return 500 // no sweeping; wake occasionally anyway
	}
	ms := int(grace / (2 * time.Millisecond))
	if ms < 5 {
		ms = 5
	}
	if ms > 500 {
		ms = 500
	}
	return ms
}

// waitLoop is the dispatcher: EpollWait, hand ready conns to the workers,
// and pace the idle sweep off the wait timeout.
func (p *poller) waitLoop() {
	defer p.s.wg.Done()
	defer close(p.ready)
	events := make([]syscall.EpollEvent, 128)
	tick := sweepTick(p.s.opts.idleGrace)
	lastSweep := time.Now()
	for {
		// Poll without a timeout first: under load there is nearly always a
		// ready conn, and a zero-timeout EpollWait returns without blocking
		// the thread — a blocking syscall would pin this goroutine's P
		// until sysmon retakes it (~tens of µs), stalling every other
		// goroutine sharing it. Only a genuinely idle poller pays the
		// blocking wait, when there is nothing to stall.
		n, err := syscall.EpollWait(p.epfd, events, 0)
		if err == nil && n == 0 {
			runtime.Gosched()
			n, err = syscall.EpollWait(p.epfd, events, tick)
		}
		if err == syscall.EINTR {
			continue
		}
		if err != nil || p.stopped.Load() {
			return
		}
		for i := 0; i < n; i++ {
			fd := events[i].Fd
			if int(fd) == p.wakeR {
				if p.stopped.Load() {
					return
				}
				var b [8]byte
				syscall.Read(p.wakeR, b[:])
				continue
			}
			p.mu.Lock()
			pc := p.conns[fd]
			p.mu.Unlock()
			if pc != nil {
				select {
				case p.ready <- pc:
				default:
					// Queue full: every worker is busy (or wedged on a slow
					// peer). Serve inline rather than park the dispatcher on
					// the channel behind them — inline work is bounded by
					// pollerWriteTimeout, a blocked send is bounded by
					// nothing.
					pc.serve()
				}
			}
		}
		// Help the workers before blocking again: drain whatever is still
		// queued right now. With spare cores the workers have already taken
		// most of it in parallel; on a single-P runtime this keeps the
		// processing inline instead of paying a goroutine wake-up per conn
		// per readiness cycle (which roughly halves throughput there). The
		// queue is only drained, never waited on, so a slow connection in
		// this loop delays dispatch by at most one conn's batch — and every
		// reply write in that batch is deadline-bounded (deadlineWriter), so
		// "one batch" is time-bounded too, not hostage to a dead peer.
	help:
		for {
			select {
			case pc := <-p.ready:
				pc.serve()
			default:
				break help
			}
		}
		if grace := p.s.opts.idleGrace; grace > 0 && time.Since(lastSweep) >= time.Duration(tick)*time.Millisecond {
			p.sweepIdle(grace)
			lastSweep = time.Now()
		}
	}
}

// sweepIdle returns the buffers of connections idle past the grace to the
// tiered pools. The atomics pre-filter keeps the scan cheap (no lock per
// conn unless it is actually parked, resident and overdue); the release
// itself happens under procMu with the engine provably quiescent.
func (p *poller) sweepIdle(grace time.Duration) {
	cutoff := time.Now().Add(-grace).UnixNano()
	p.mu.Lock()
	pcs := make([]*pollConn, 0, len(p.conns))
	for _, pc := range p.conns {
		pcs = append(pcs, pc)
	}
	p.mu.Unlock()
	for _, pc := range pcs {
		cs := pc.cs
		if !cs.resident.Load() || cs.state.Load() != connParked || cs.lastActive.Load() > cutoff {
			continue
		}
		if !pc.procMu.TryLock() {
			continue
		}
		if !pc.closed && cs.state.Load() == connParked && cs.idleReleasable() {
			cs.releaseBuffers()
		}
		pc.procMu.Unlock()
	}
}

func (p *poller) worker() {
	defer p.s.wg.Done()
	for pc := range p.ready {
		pc.serve()
	}
}

// rearm re-enables readiness delivery after a oneshot firing.
func (p *poller) rearm(fd int) error {
	ev := syscall.EpollEvent{
		Events: syscall.EPOLLIN | syscall.EPOLLRDHUP | uint32(syscall.EPOLLONESHOT),
		Fd:     int32(fd),
	}
	return syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_MOD, fd, &ev)
}

// serve handles one readiness firing: claim the conn from parked, process
// until the socket runs dry, park and re-arm.
func (pc *pollConn) serve() {
	pc.procMu.Lock()
	defer pc.procMu.Unlock()
	if pc.closed {
		return
	}
	cs := pc.cs
	if !cs.claim() {
		// The shedder claimed the conn between the event and us; its
		// teardown ran (or runs as soon as we unlock).
		return
	}
	cs.touch()
	if pc.process() {
		pc.teardownLocked()
		return
	}
	cs.park()
	if pc.p.rearm(pc.fd) != nil {
		// MOD on a dead fd: the conn is gone (torn down concurrently or
		// closed by Server.Close); make sure the bookkeeping agrees.
		if cs.claim() {
			pc.teardownLocked()
		}
	}
}

// process drives the shared engine over everything the socket has to give
// right now. It returns true when the connection is finished (EOF, error,
// QUIT, protocol teardown) and false when the socket is merely dry and
// the conn should be re-armed.
func (pc *pollConn) process() (done bool) {
	cs := pc.cs
	if cs.r == nil {
		cs.acquireBuffers(&pc.raw)
	}
	r := cs.r
	for {
		drained, ferr := cs.fillAvailable()
	frames:
		for {
			skipNewlines(r)
			if r.Buffered() == 0 {
				break
			}
			switch frameCheck(r) {
			case frameWait:
				break frames // half-arrived frame: parks in the buffer until more bytes
			case frameOverflow:
				// Frame larger than the buffer: no readiness cycle can add
				// bytes to a full buffer, so finish it with blocking reads
				// through the runtime poller.
				pc.raw.block = true
				ok := cs.step()
				pc.raw.block = false
				if !ok {
					return true
				}
			default: // frameBuffered: the parse cannot touch the socket
				if !cs.step() {
					return true
				}
			}
			if cs.pending >= cs.srv.opts.pipeline {
				if !cs.flushBatch() {
					return true
				}
			}
		}
		switch {
		case ferr == errWouldBlock, ferr == nil && drained:
			// Socket dry — either the read said so (EAGAIN) or the fill
			// came up short, which on a stream socket means the receive
			// queue was emptied at that moment. Bytes arriving after that
			// instant re-fire the level-triggered event once we re-arm, so
			// skipping the EAGAIN-confirming read loses no wake-up and
			// saves a syscall per readiness cycle.
			if cs.pending > 0 && !cs.flushBatch() {
				return true
			}
			return false
		case ferr == nil:
			continue // filled the buffer whole; there may be more
		default:
			// EOF or a hard error, with every ready frame above already
			// consumed — same teardown the goroutine mode runs.
			cs.readFailed(ferr)
			return true
		}
	}
}

// fillAvailable tries to pull newly-arrived bytes into the read buffer
// without blocking: nil means at least one byte arrived (or the buffer is
// already full), errWouldBlock means the socket is dry. drained reports
// that the fill left spare buffer space — the kernel handed over less than
// asked, so the socket's receive queue is (momentarily) empty.
func (cs *connState) fillAvailable() (drained bool, err error) {
	b := cs.r.Buffered()
	if b >= cs.r.Size() {
		return false, nil
	}
	if _, err := cs.r.Peek(b + 1); err != nil {
		return false, err
	}
	return cs.r.Buffered() < cs.r.Size(), nil
}

// shed implements connPoller for the mode-agnostic shedder in server.go:
// the state is already connShed (so no worker owns the engine — serve's
// claim fails), write the busy reply ahead of a FIN and tear down.
func (pc *pollConn) shed() {
	pc.procMu.Lock()
	defer pc.procMu.Unlock()
	if pc.closed {
		return
	}
	// shed runs on the accept loop: bound the courtesy write so a shed
	// target with a full send buffer cannot stall new accepts.
	pc.cs.nc.SetWriteDeadline(time.Now().Add(time.Second))
	pc.cs.nc.Write(busyReply)
	if tc, ok := pc.cs.nc.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	pc.teardownLocked()
}

// teardownLocked unregisters and closes the connection; procMu held.
// Idempotent via pc.closed.
func (pc *pollConn) teardownLocked() {
	if pc.closed {
		return
	}
	pc.closed = true
	p := pc.p
	syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_DEL, pc.fd, nil)
	p.mu.Lock()
	delete(p.conns, int32(pc.fd))
	p.mu.Unlock()
	pc.cs.releaseBuffers()
	p.s.track(pc.cs, false)
	p.s.active.Add(-1)
	pc.cs.nc.Close()
}
