// Tiered connection-buffer pools: the OPTIK "pay only on contention"
// principle applied to memory. A connection's read/write bufio buffers,
// reply scratch, and coalescer staging state are acquired from size-tiered
// sync.Pools on the first readable byte and returned when the connection
// goes idle (poller mode, after the idle grace) or closes — so an idle
// connection costs its registration, not ~2×16 KB of buffers, and
// connection churn stops allocating fresh buffers per accept. The server
// charges every checkout to buffersResident, the STATS `buffers_resident`
// RSS proxy.
//
// bufio.Reader/Writer cannot adopt an external []byte, so the pools hold
// the bufio objects themselves (the net/http idiom), one pool per
// power-of-two size tier. A requested size is rounded UP to its tier, so a
// non-power-of-two WithBufferSize gets slightly larger buffers than asked
// — never smaller.

package server

import (
	"bufio"
	"io"
	"sync"
)

const (
	minTierShift = 9  // 512 B — the WithBufferSize floor
	maxTierShift = 20 // 1 MiB — larger requests allocate unpooled
	numTiers     = maxTierShift - minTierShift + 1
)

// tierFor returns the tier index whose size (1 << (minTierShift+i)) is the
// smallest that holds n, and that size; ok is false when n outgrows the
// largest tier.
func tierFor(n int) (idx, size int, ok bool) {
	size = 1 << minTierShift
	for i := 0; i < numTiers; i++ {
		if size >= n {
			return i, size, true
		}
		size <<= 1
	}
	return 0, n, false
}

var (
	readerPools [numTiers]sync.Pool // *bufio.Reader of exactly the tier size
	writerPools [numTiers]sync.Pool // *bufio.Writer of exactly the tier size
	bytesPools  [numTiers]sync.Pool // *[]byte with cap >= the tier size
	coalescers  sync.Pool           // *coalescer, drained
)

// getReader returns a pooled bufio.Reader of at least size bytes reading
// from src.
func getReader(src io.Reader, size int) *bufio.Reader {
	idx, tsize, ok := tierFor(size)
	if !ok {
		return bufio.NewReaderSize(src, size)
	}
	if r, _ := readerPools[idx].Get().(*bufio.Reader); r != nil {
		r.Reset(src)
		return r
	}
	return bufio.NewReaderSize(src, tsize)
}

// putReader detaches r from its source and returns it to its tier.
// Buffered bytes are discarded — callers release only when the buffer is
// empty (idle) or the connection is dead (teardown).
func putReader(r *bufio.Reader) {
	idx, tsize, ok := tierFor(r.Size())
	if !ok || r.Size() != tsize {
		return
	}
	r.Reset(nil)
	readerPools[idx].Put(r)
}

// getWriter returns a pooled bufio.Writer of at least size bytes writing
// to dst.
func getWriter(dst io.Writer, size int) *bufio.Writer {
	idx, tsize, ok := tierFor(size)
	if !ok {
		return bufio.NewWriterSize(dst, size)
	}
	if w, _ := writerPools[idx].Get().(*bufio.Writer); w != nil {
		w.Reset(dst)
		return w
	}
	return bufio.NewWriterSize(dst, tsize)
}

// putWriter detaches w and returns it to its tier, discarding anything
// unflushed (teardown already made its best flush attempt).
func putWriter(w *bufio.Writer) {
	idx, tsize, ok := tierFor(w.Size())
	if !ok || w.Size() != tsize {
		return
	}
	w.Reset(nil)
	writerPools[idx].Put(w)
}

// getBytes returns a zero-length scratch slice with at least size capacity.
func getBytes(size int) []byte {
	idx, tsize, ok := tierFor(size)
	if !ok {
		return make([]byte, 0, size)
	}
	if p, _ := bytesPools[idx].Get().(*[]byte); p != nil {
		return (*p)[:0]
	}
	return make([]byte, 0, tsize)
}

// putBytes returns a scratch slice to the tier its grown capacity still
// fills (rounded down; undersized or oversized slices are dropped).
func putBytes(b []byte) {
	c := cap(b)
	if c < 1<<minTierShift {
		return
	}
	idx, tsize, ok := tierFor(c)
	if !ok {
		return
	}
	if tsize > c {
		idx-- // round down: the pool promises at least the tier size
	}
	b = b[:0]
	bytesPools[idx].Put(&b)
}

// getCoalescer returns a drained coalescer.
func getCoalescer() *coalescer {
	if co, _ := coalescers.Get().(*coalescer); co != nil {
		return co
	}
	return &coalescer{}
}

// putCoalescer drains co (clearing every staged or scratch string so the
// pool pins no payloads) and returns it.
func putCoalescer(co *coalescer) {
	co.reset()
	clear(co.outVals)
	coalescers.Put(co)
}
