package server

import (
	"fmt"
	"testing"

	"github.com/optik-go/optik/store"
)

// BenchmarkPipeline measures the wire path per key at several pipeline
// depths: one client goroutine keeps depth GET commands in flight against
// a loopback server on a prefilled store. This is the protocol+transport
// overhead the net figure adds on top of the in-process store, isolated
// from the workload driver. The default variant exercises the coalescer
// (pipelined scalars merged server-side); coalesce=off is the
// one-execution-per-request baseline and multibulk replaces the scalar
// pipeline with real MGET frames, bounding what coalescing can recover.
func BenchmarkPipeline(b *testing.B) {
	for _, depth := range []int{1, 16, 64, 256} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			benchPipeline(b, depth, nil, false)
		})
	}
	for _, depth := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("depth=%d/coalesce=off", depth), func(b *testing.B) {
			benchPipeline(b, depth, []Option{WithCoalesce(0)}, false)
		})
		b.Run(fmt.Sprintf("depth=%d/multibulk", depth), func(b *testing.B) {
			benchPipeline(b, depth, nil, true)
		})
	}
}

func benchPipeline(b *testing.B, depth int, opts []Option, multibulk bool) {
	st := store.NewStrings(store.WithShardBuckets(1024), store.WithoutMaintenance())
	defer st.Close()
	srv := New(st, opts...)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(addr.String())
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	cl.SetMultibulk(multibulk)

	const population = 4096
	keys := make([]uint64, depth)
	vals := make([]uint64, depth)
	found := make([]bool, depth)
	for i := 0; i < population; i++ {
		vals[0] = uint64(i)
		cl.Set(uint64(i)+1, vals[0])
	}
	b.ReportAllocs()
	b.ResetTimer()
	var k uint64
	for i := 0; i < b.N; i += depth {
		for j := range keys {
			k = k*2862933555777941757 + 3037000493 // lcg walk over the population
			keys[j] = k%population + 1
		}
		cl.MGet(keys, vals, found)
	}
}
