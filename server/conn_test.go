// Connection-lifecycle tests for the two conn modes: byte-identical
// transcripts between goroutine-per-conn and the shared poller, buffer
// pool accounting returning to its floor under churn, idle-grace buffer
// release, idle-longest-first load shedding, and client recovery from
// overload via backoff. The transcript property mirrors
// TestCoalesceReplyOrderProperty: the conn mode, like coalescing, must be
// invisible on the wire.

package server

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// connModes lists the modes to exercise on this platform. ConnModePoller
// is included only where it actually runs (elsewhere it would silently
// fall back and re-test goroutine mode).
func connModes() []ConnMode {
	modes := []ConnMode{ConnModeGoroutine}
	if PollerSupported() {
		modes = append(modes, ConnModePoller)
	}
	return modes
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestConnModeTranscriptProperty is the conn-mode counterpart of the
// coalescing property: for random mixed pipelines, a poller-mode server
// must produce a reply stream byte-identical to a goroutine-mode server
// fed the same bytes. A small read buffer forces pipelines to span many
// readiness cycles, exercising the poller's partial-frame parking.
func TestConnModeTranscriptProperty(t *testing.T) {
	if !PollerSupported() {
		t.Skip("poller conn mode not supported on this platform")
	}
	_, _, refAddr := startServer(t, WithBufferSize(512), WithPipeline(4))
	_, _, polAddr := startServer(t, WithBufferSize(512), WithPipeline(4),
		WithConnMode(ConnModePoller))
	rng := rand.New(rand.NewSource(0x90111e4))
	for round := 0; round < 8; round++ {
		pipe := randomPipeline(rng, 120)
		ref := roundTrip(t, refAddr, pipe)
		got := roundTrip(t, polAddr, pipe)
		if !bytes.Equal(ref, got) {
			t.Fatalf("round %d: reply stream diverged between conn modes\npipeline: %q\n ref: %q\n got: %q",
				round, pipe, ref, got)
		}
	}
}

// TestConnModeBigFrame round-trips a frame several times larger than the
// read buffer through both modes: the poller must fall back to blocking
// reads for it (frameCheck reports a full buffer holding an incomplete
// frame as frameOverflow) and still produce the goroutine mode's exact
// bytes.
func TestConnModeBigFrame(t *testing.T) {
	val := strings.Repeat("x", 2000)
	var pipe []byte
	pipe = append(pipe, fmt.Sprintf("*3\r\n$3\r\nSET\r\n$3\r\nbig\r\n$%d\r\n%s\r\n", len(val), val)...)
	pipe = append(pipe, "GET big\r\nQUIT\r\n"...)
	want := fmt.Sprintf(":0\r\n$%d\r\n%s\r\n+OK\r\n", len(val), val)
	for _, mode := range connModes() {
		t.Run(mode.String(), func(t *testing.T) {
			_, _, addr := startServer(t, WithBufferSize(512), WithConnMode(mode))
			if got := roundTrip(t, addr, pipe); string(got) != want {
				t.Fatalf("big-frame transcript:\n got %q\nwant %q", got, want)
			}
		})
	}
}

// TestPollerTrickledFrame feeds one command a few bytes at a time with
// pauses longer than the idle grace: the half-arrived frame must park in
// the connection's buffer across readiness cycles — and the idle sweep
// must not steal the buffers out from under it.
func TestPollerTrickledFrame(t *testing.T) {
	if !PollerSupported() {
		t.Skip("poller conn mode not supported on this platform")
	}
	_, _, addr := startServer(t, WithConnMode(ConnModePoller), WithIdleGrace(20*time.Millisecond))
	conn, r := dialRaw(t, addr)
	for _, part := range []string{"GE", "T k", "1\r\n"} {
		if _, err := conn.Write([]byte(part)); err != nil {
			t.Fatalf("write %q: %v", part, err)
		}
		time.Sleep(60 * time.Millisecond) // several sweep ticks per pause
	}
	if got := readN(t, r, 5); got != "$-1\r\n" {
		t.Fatalf("trickled GET reply: %q", got)
	}
}

// TestPollerTrickledBigFrame streams a frame several times larger than
// the read buffer in small bursts with pauses, so its bytes are never all
// in the kernel receive queue at once. Once the buffer fills mid-frame,
// frameCheck must report frameOverflow and the worker must switch to
// blocking reads for the remainder — a nonblocking parse would hit EAGAIN
// mid-frame and tear the connection down as dead (the bug this pins).
func TestPollerTrickledBigFrame(t *testing.T) {
	if !PollerSupported() {
		t.Skip("poller conn mode not supported on this platform")
	}
	val := strings.Repeat("y", 2000) // ~4x the 512B read buffer
	frame := fmt.Sprintf("*3\r\n$3\r\nSET\r\n$3\r\nbig\r\n$%d\r\n%s\r\n", len(val), val)
	_, _, addr := startServer(t, WithBufferSize(512), WithConnMode(ConnModePoller))
	conn, r := dialRaw(t, addr)
	for len(frame) > 0 {
		n := 300
		if n > len(frame) {
			n = len(frame)
		}
		if _, err := conn.Write([]byte(frame[:n])); err != nil {
			t.Fatalf("burst write: %v", err)
		}
		frame = frame[n:]
		time.Sleep(10 * time.Millisecond)
	}
	if got := readN(t, r, 4); got != ":0\r\n" {
		t.Fatalf("trickled big SET reply: %q", got)
	}
	if _, err := conn.Write([]byte("GET big\r\n")); err != nil {
		t.Fatalf("GET write: %v", err)
	}
	want := fmt.Sprintf("$%d\r\n%s\r\n", len(val), val)
	if got := readN(t, r, len(want)); got != want {
		t.Fatalf("GET after trickled big SET returned wrong bytes (%d read)", len(got))
	}
}

// TestConnChurn churns a few thousand connections through each mode and
// checks the lifecycle bookkeeping returns to its floor: no connections
// open, no pooled buffers still charged.
func TestConnChurn(t *testing.T) {
	total := 2000
	if testing.Short() {
		total = 256
	}
	for _, mode := range connModes() {
		t.Run(mode.String(), func(t *testing.T) {
			srv, _, addr := startServer(t, WithConnMode(mode))
			const workers = 32
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			wg.Add(workers)
			for w := 0; w < workers; w++ {
				n := total / workers
				if w < total%workers {
					n++
				}
				go func(n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						if err := pingOnce(addr); err != nil {
							errs <- err
							return
						}
					}
				}(n)
			}
			wg.Wait()
			close(errs)
			if err := <-errs; err != nil {
				t.Fatalf("churn worker: %v", err)
			}
			waitFor(t, "open conns to drain", func() bool { return srv.active.Load() == 0 })
			waitFor(t, "buffer charge to return to 0", func() bool { return srv.buffersResident.Load() == 0 })
			if got := srv.accepted.Load(); got < uint64(total) {
				t.Fatalf("accepted %d conns, want >= %d", got, total)
			}
		})
	}
}

// pingOnce dials, round-trips two pipelined PINGs, and closes.
func pingOnce(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Write([]byte("PING\r\nPING\r\n")); err != nil {
		return err
	}
	buf := make([]byte, 14)
	for read := 0; read < len(buf); {
		n, err := conn.Read(buf[read:])
		if err != nil {
			return err
		}
		read += n
	}
	if string(buf) != "+PONG\r\n+PONG\r\n" {
		return fmt.Errorf("bad ping replies %q", buf)
	}
	return nil
}

// TestPollerIdleRelease checks the tiered-buffer lifecycle on an idle
// poller connection: buffers are charged while it talks, released after
// the idle grace while the connection stays open, and transparently
// re-acquired when it speaks again.
func TestPollerIdleRelease(t *testing.T) {
	if !PollerSupported() {
		t.Skip("poller conn mode not supported on this platform")
	}
	srv, _, addr := startServer(t, WithConnMode(ConnModePoller), WithIdleGrace(30*time.Millisecond))
	conn, r := dialRaw(t, addr)
	ping := func() {
		t.Helper()
		if _, err := conn.Write([]byte("PING\r\n")); err != nil {
			t.Fatalf("write: %v", err)
		}
		if got := readN(t, r, 7); got != "+PONG\r\n" {
			t.Fatalf("ping reply %q", got)
		}
	}
	ping()
	if srv.buffersResident.Load() == 0 {
		t.Fatal("no buffer charge while the connection is active")
	}
	waitFor(t, "idle buffers to be released", func() bool { return srv.buffersResident.Load() == 0 })
	if got := srv.active.Load(); got != 1 {
		t.Fatalf("conn count after idle release: %d, want 1 (release must not close)", got)
	}
	ping() // buffers silently re-acquired
	if srv.buffersResident.Load() == 0 {
		t.Fatal("no buffer charge after the connection resumed")
	}
}

// TestShedIdleLongest checks the shedding order: pushing the population
// past the high-water mark sheds the connection idle the longest, with the
// busy reply readable ahead of the FIN, while younger connections stay
// usable.
func TestShedIdleLongest(t *testing.T) {
	for _, mode := range connModes() {
		t.Run(mode.String(), func(t *testing.T) {
			srv, _, addr := startServer(t, WithConnMode(mode), WithShedWater(2))
			connA, rA := dialRaw(t, addr)
			_ = connA
			waitFor(t, "conn A accepted", func() bool { return srv.active.Load() == 1 })
			time.Sleep(20 * time.Millisecond) // make A measurably idle-longer
			connB, rB := dialRaw(t, addr)
			waitFor(t, "conn B accepted", func() bool { return srv.active.Load() == 2 })
			time.Sleep(20 * time.Millisecond)
			connC, rC := dialRaw(t, addr) // pushes past the water mark: A is shed
			if got := readN(t, rA, len(busyReply)); got != string(busyReply) {
				t.Fatalf("shed conn A read %q, want busy reply", got)
			}
			if _, err := rA.ReadByte(); err == nil {
				t.Fatal("shed conn A still open after busy reply, want EOF")
			}
			if got := srv.shed.Load(); got != 1 {
				t.Fatalf("conns_shed = %d, want 1", got)
			}
			for i, cr := range []struct {
				c net.Conn
				r interface{ ReadByte() (byte, error) }
			}{{connB, rB}, {connC, rC}} {
				if _, err := cr.c.Write([]byte("PING\r\n")); err != nil {
					t.Fatalf("surviving conn %d write: %v", i, err)
				}
				buf := make([]byte, 7)
				for read := 0; read < len(buf); read++ {
					b, err := cr.r.ReadByte()
					if err != nil {
						t.Fatalf("surviving conn %d read: %v", i, err)
					}
					buf[read] = b
				}
				if string(buf) != "+PONG\r\n" {
					t.Fatalf("surviving conn %d reply %q", i, buf)
				}
			}
		})
	}
}

// TestOverloadClientRecovery runs the acceptance scenario: client load at
// twice -maxconns. In-budget connections must stay responsive the whole
// time; over-budget clients are rejected with the busy reply and must
// recover on their own — backoff, redial, replay — once capacity frees up.
func TestOverloadClientRecovery(t *testing.T) {
	for _, mode := range connModes() {
		t.Run(mode.String(), func(t *testing.T) {
			const budget = 4
			srv, _, addr := startServer(t, WithConnMode(mode), WithMaxConns(budget), WithShedWater(0))
			inBudget := make([]*Client, budget)
			for i := range inBudget {
				cl, err := Dial(addr)
				if err != nil {
					t.Fatalf("dial in-budget %d: %v", i, err)
				}
				t.Cleanup(cl.Close)
				if !cl.Ping() {
					t.Fatalf("in-budget client %d ping failed", i)
				}
				inBudget[i] = cl
			}
			waitFor(t, "budget to fill", func() bool { return srv.active.Load() == budget })

			type result struct {
				ok      bool
				retries uint64
			}
			results := make(chan result, budget)
			for i := 0; i < budget; i++ { // 2× maxconns total offered load
				go func() {
					cl, err := Dial(addr)
					if err != nil {
						results <- result{}
						return
					}
					defer cl.Close()
					cl.SetRetry(200)
					results <- result{ok: cl.Ping(), retries: cl.Retries()}
				}()
			}

			// The in-budget connections must answer while the server is
			// bouncing the overload.
			waitFor(t, "over-budget conns to be rejected", func() bool { return srv.rejected.Load() > 0 })
			for round := 0; round < 3; round++ {
				for i, cl := range inBudget {
					if !cl.Ping() {
						t.Fatalf("in-budget client %d unresponsive during overload", i)
					}
				}
			}
			for _, cl := range inBudget {
				cl.Close()
			}
			var retries uint64
			for i := 0; i < budget; i++ {
				r := <-results
				if !r.ok {
					t.Fatalf("over-budget client %d never recovered", i)
				}
				retries += r.retries
			}
			if retries == 0 {
				t.Fatal("over-budget clients recovered without retrying — rejection never happened?")
			}
			if srv.rejected.Load() == 0 {
				t.Fatal("conns_rejected stayed 0 under 2x overload")
			}
		})
	}
}

// TestStatsConnFields checks the new STATS fields exist, are numeric (the
// Client.Stats contract) and report the live conn mode.
func TestStatsConnFields(t *testing.T) {
	for _, mode := range connModes() {
		t.Run(mode.String(), func(t *testing.T) {
			_, _, addr := startServer(t, WithConnMode(mode))
			cl, err := Dial(addr)
			if err != nil {
				t.Fatalf("dial: %v", err)
			}
			defer cl.Close()
			stats := cl.Stats()
			for _, field := range []string{"conns_open", "conns_rejected", "conns_shed", "buffers_resident", "poller"} {
				if _, ok := stats[field]; !ok {
					t.Errorf("STATS missing %q", field)
				}
			}
			if got := stats["conns_open"]; got != 1 {
				t.Errorf("conns_open = %d, want 1", got)
			}
			wantPoller := int64(0)
			if mode == ConnModePoller && PollerSupported() {
				wantPoller = 1
			}
			if got := stats["poller"]; got != wantPoller {
				t.Errorf("poller = %d, want %d", got, wantPoller)
			}
			if stats["buffers_resident"] <= 0 {
				t.Errorf("buffers_resident = %d while a conn is mid-request, want > 0", stats["buffers_resident"])
			}
		})
	}
}

// TestClientCloseIdempotent pins the Close contract: double Close is safe
// and a closed client never redials.
func TestClientCloseIdempotent(t *testing.T) {
	_, _, addr := startServer(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if !cl.Ping() {
		t.Fatal("ping failed")
	}
	cl.Close()
	cl.Close() // must not panic or disturb anything
	defer func() {
		if recover() == nil {
			t.Fatal("op on closed client did not panic")
		}
		if got := cl.Retries(); got != 0 {
			t.Fatalf("closed client retried %d times, want 0 (no redial after Close)", got)
		}
	}()
	cl.Ping()
}
