package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/optik-go/optik/store"
)

// startServer brings up a server on a free loopback port and tears it
// down with the test.
func startServer(t *testing.T, opts ...Option) (*Server, *store.Strings, string) {
	t.Helper()
	st := store.NewStrings(store.WithShards(2), store.WithShardBuckets(64))
	srv := New(st, opts...)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		srv.Close()
		st.Close()
	})
	return srv, st, addr.String()
}

// dialRaw opens a raw connection for byte-level protocol tests.
func dialRaw(t *testing.T, addr string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	return conn, bufio.NewReader(conn)
}

func readN(t *testing.T, r *bufio.Reader, n int) string {
	t.Helper()
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatalf("short read: %v", err)
	}
	return string(buf)
}

// TestServerScalarTranscript pins the exact bytes of a scalar session —
// the same transcript the CI smoke job and README quickstart show.
func TestServerScalarTranscript(t *testing.T) {
	_, _, addr := startServer(t)
	conn, r := dialRaw(t, addr)

	send := "PING\r\nSET user:1 alice\r\nGET user:1\r\nSET user:1 bob\r\nGET user:1\r\n" +
		"LEN\r\nDEL user:1\r\nGET user:1\r\nDEL user:1\r\nQUIT\r\n"
	want := "+PONG\r\n:0\r\n$5\r\nalice\r\n:1\r\n$3\r\nbob\r\n" +
		":1\r\n:1\r\n$-1\r\n:0\r\n+OK\r\n"
	if _, err := conn.Write([]byte(send)); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := readN(t, r, len(want))
	if got != want {
		t.Fatalf("transcript mismatch:\n got %q\nwant %q", got, want)
	}
	// QUIT closes the connection server-side.
	if _, err := r.ReadByte(); err != io.EOF {
		t.Fatalf("connection still open after QUIT: %v", err)
	}
}

// TestServerPipelinedMixed sends one write holding a pipeline that mixes
// inline and multibulk framing, scalar and batched commands, and asserts
// every reply arrives in request order.
func TestServerPipelinedMixed(t *testing.T) {
	_, _, addr := startServer(t, WithPipeline(4)) // force multiple flushes per batch
	conn, r := dialRaw(t, addr)

	var b strings.Builder
	b.WriteString("*3\r\n$3\r\nset\r\n$1\r\na\r\n$2\r\nv1\r\n") // lower-case, multibulk
	b.WriteString("SET b v2\r\n")
	b.WriteString("MSET c v3 d v4\r\n")
	b.WriteString("MGET a b c d nope\r\n")
	b.WriteString("*2\r\n$4\r\nMGET\r\n$1\r\na\r\n")
	b.WriteString("MDEL a b missing\r\n")
	b.WriteString("LEN\r\n")
	b.WriteString("GET c\r\n")
	want := ":0\r\n:0\r\n:2\r\n" +
		"*5\r\n$2\r\nv1\r\n$2\r\nv2\r\n$2\r\nv3\r\n$2\r\nv4\r\n$-1\r\n" +
		"*1\r\n$2\r\nv1\r\n" +
		":2\r\n:2\r\n$2\r\nv3\r\n"
	if _, err := conn.Write([]byte(b.String())); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := readN(t, r, len(want))
	if got != want {
		t.Fatalf("pipeline mismatch:\n got %q\nwant %q", got, want)
	}
}

// TestServerSoftErrors covers errors after which the connection must stay
// usable: unknown commands and wrong arity.
func TestServerSoftErrors(t *testing.T) {
	_, _, addr := startServer(t)
	conn, r := dialRaw(t, addr)

	cases := []struct{ send, wantPrefix string }{
		{"FROB x\r\n", "-ERR unknown command"},
		{"GET\r\n", "-ERR wrong number of arguments for 'get'"},
		{"SET onlykey\r\n", "-ERR wrong number of arguments for 'set'"},
		{"MSET a 1 b\r\n", "-ERR wrong number of arguments for 'mset'"},
		{"MGET\r\n", "-ERR wrong number of arguments for 'mget'"},
		{"LEN extra\r\n", "-ERR wrong number of arguments for 'len'"},
	}
	for _, c := range cases {
		if _, err := conn.Write([]byte(c.send)); err != nil {
			t.Fatalf("write: %v", err)
		}
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("%q: read: %v", c.send, err)
		}
		if !strings.HasPrefix(line, c.wantPrefix) {
			t.Fatalf("%q: got %q, want prefix %q", c.send, line, c.wantPrefix)
		}
	}
	// The connection survived all of it.
	conn.Write([]byte("PING\r\n"))
	if line, _ := r.ReadString('\n'); line != "+PONG\r\n" {
		t.Fatalf("connection dead after soft errors: %q", line)
	}
}

// TestServerMalformedFrames covers framing violations, each on a fresh
// connection: the server must answer with a protocol error and close.
func TestServerMalformedFrames(t *testing.T) {
	_, _, addr := startServer(t)
	for _, send := range []string{
		"*zap\r\n",                           // unparseable multibulk count
		"*0\r\n",                             // empty array
		"*2000000\r\n",                       // count over maxArgs
		"*1\r\nnope\r\n",                     // array element not a bulk string
		"*1\r\n$-5\r\n",                      // negative bulk length
		"*1\r\n$99999999999999\r\n",          // bulk length over maxBulk
		"*1\r\n$3\r\nabcdef\r\n",             // bulk body longer than declared
		"GET " + strings.Repeat("k", 64<<10), // inline line over the read buffer
	} {
		conn, r := dialRaw(t, addr)
		if _, err := conn.Write([]byte(send)); err != nil {
			t.Fatalf("write: %v", err)
		}
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("%.30q: no error reply before close: %v", send, err)
		}
		if !strings.HasPrefix(line, "-ERR protocol error") {
			t.Fatalf("%.30q: got %q, want protocol error", send, line)
		}
		if _, err := r.ReadByte(); err != io.EOF {
			t.Fatalf("%.30q: connection not closed after protocol error (err=%v)", send, err)
		}
		conn.Close()
	}
}

// TestServerBlankLineDoesNotStallFlush pins the pipelined flush decision
// against trailing blank lines: "PING\r\n\r\n" in one segment must still
// deliver +PONG immediately — the blank line must not count as "more
// input buffered" while the server blocks reading.
func TestServerBlankLineDoesNotStallFlush(t *testing.T) {
	_, _, addr := startServer(t)
	conn, r := dialRaw(t, addr)
	conn.SetDeadline(time.Now().Add(3 * time.Second))
	if _, err := conn.Write([]byte("PING\r\n\r\n")); err != nil {
		t.Fatalf("write: %v", err)
	}
	line, err := r.ReadString('\n')
	if err != nil || line != "+PONG\r\n" {
		t.Fatalf("reply stalled behind the blank line: %q, %v", line, err)
	}
}

// TestReadArrayAggregateCap pins the whole-request size bound: per-arg
// and per-count limits alone admit 8 GiB per request, so the aggregate
// cap must trip once the declared bulks exceed maxRequest — before the
// offending body is read. The bodies stream from a lazy zero reader, so
// the test only materializes what the parser actually buffers.
func TestReadArrayAggregateCap(t *testing.T) {
	parts := []io.Reader{strings.NewReader("*10\r\n")}
	for i := 0; i < 9; i++ {
		parts = append(parts,
			strings.NewReader(fmt.Sprintf("$%d\r\n", maxBulk)),
			&zeroReader{n: maxBulk},
			strings.NewReader("\r\n"))
	}
	r := bufio.NewReader(io.MultiReader(parts...))
	var q request
	err := q.readFrom(r)
	var pe *protoError
	if !errors.As(err, &pe) || !strings.Contains(pe.Error(), "exceeds") {
		t.Fatalf("aggregate cap did not trip: %v", err)
	}
}

// zeroReader yields n zero bytes without holding them in memory.
type zeroReader struct{ n int }

func (z *zeroReader) Read(p []byte) (int, error) {
	if z.n == 0 {
		return 0, io.EOF
	}
	if len(p) > z.n {
		p = p[:z.n]
	}
	clear(p)
	z.n -= len(p)
	return len(p), nil
}

// TestServerMaxConns pins the connection cap: the over-cap connection is
// told to back off (the busy-reply contract in docs/PROTOCOL.md) and
// soft-closed, earlier ones keep working.
func TestServerMaxConns(t *testing.T) {
	_, _, addr := startServer(t, WithMaxConns(1))
	conn1, r1 := dialRaw(t, addr)
	conn1.Write([]byte("PING\r\n"))
	if line, _ := r1.ReadString('\n'); line != "+PONG\r\n" {
		t.Fatalf("first connection: %q", line)
	}
	_, r2 := dialRaw(t, addr)
	line, err := r2.ReadString('\n')
	if err != nil || line != "-ERR busy retry\r\n" {
		t.Fatalf("over-cap connection: %q, %v", line, err)
	}
	if _, err := r2.ReadByte(); err != io.EOF {
		t.Fatalf("over-cap connection not closed: %v", err)
	}
	conn1.Write([]byte("PING\r\n"))
	if line, _ := r1.ReadString('\n'); line != "+PONG\r\n" {
		t.Fatalf("first connection after rejection: %q", line)
	}
}

// TestServerConcurrentConservation is the stress check of the suite: many
// connections hammer overlapping keys with scalar and pipelined batched
// writes while tracking their own net insert−delete balance; after a
// QUIESCE the server's LEN must equal the sum exactly. Run under -race
// this doubles as the data-race coverage for the whole request path.
func TestServerConcurrentConservation(t *testing.T) {
	_, _, addr := startServer(t)
	const (
		workers  = 6
		keyRange = 2048
		iters    = 400
	)
	var net atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer cl.Close()
			rnd := seed
			next := func() uint64 { // xorshift64
				rnd ^= rnd << 13
				rnd ^= rnd >> 7
				rnd ^= rnd << 17
				return rnd
			}
			keys := make([]uint64, 8)
			vals := make([]uint64, 8)
			found := make([]bool, 8)
			for i := 0; i < iters; i++ {
				switch next() % 4 {
				case 0:
					if _, replaced := cl.Set(next()%keyRange+1, seed); !replaced {
						net.Add(1)
					}
				case 1:
					if _, ok := cl.Del(next()%keyRange + 1); ok {
						net.Add(-1)
					}
				case 2:
					for j := range keys {
						keys[j] = next()%keyRange + 1
						vals[j] = seed
					}
					net.Add(int64(cl.MSet(keys, vals)))
				default:
					for j := range keys {
						keys[j] = next()%keyRange + 1
					}
					cl.MGet(keys, vals, found)
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	cl, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	cl.Quiesce()
	if got, want := cl.Len(), int(net.Load()); got != want {
		t.Fatalf("conservation violation: LEN = %d, net SET−DEL = %d", got, want)
	}
	stats := cl.Stats()
	if stats["len"] != int64(net.Load()) || stats["shards"] != 2 || stats["commands"] == 0 {
		t.Fatalf("STATS inconsistent: %v", stats)
	}
}

// TestClientRoundTrip exercises the typed client surface end to end.
func TestClientRoundTrip(t *testing.T) {
	_, st, addr := startServer(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	if !cl.Ping() {
		t.Fatal("ping failed")
	}
	if !cl.Insert(7, 70) || cl.Insert(7, 70) {
		t.Fatal("Insert semantics broken")
	}
	if v, ok := cl.Get(7); !ok || v != 70 {
		t.Fatalf("Get(7) = %d, %v", v, ok)
	}
	if _, replaced := cl.Set(7, 71); !replaced {
		t.Fatal("Set did not report replace")
	}
	keys := []uint64{7, 8, 9}
	vals := []uint64{0, 80, 90}
	if ins := cl.MSet(keys[1:], vals[1:]); ins != 2 {
		t.Fatalf("MSet inserted %d, want 2", ins)
	}
	got := make([]uint64, 3)
	found := make([]bool, 3)
	cl.MGet(keys, got, found)
	if !found[0] || !found[1] || !found[2] || got[0] != 71 || got[1] != 80 || got[2] != 90 {
		t.Fatalf("MGet = %v %v", got, found)
	}
	if cl.Len() != 3 || st.Len() != 3 {
		t.Fatalf("Len = %d / %d, want 3", cl.Len(), st.Len())
	}
	if del := cl.MDel([]uint64{7, 8, 9, 10}); del != 3 {
		t.Fatalf("MDel = %d, want 3", del)
	}
	if _, ok := cl.Del(9); ok {
		t.Fatal("Del hit after MDel")
	}
	if retired, _, _ := cl.ReclaimStats(); retired == 0 {
		// Chain nodes may legitimately be zero at this tiny scale; just
		// exercise the parse path.
		_ = retired
	}
	if cl.Buckets() < 2 || cl.Resizes() < 0 {
		t.Fatalf("stats plumbing: buckets=%d", cl.Buckets())
	}
}
