package store

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/optik-go/optik/ds"
	"github.com/optik-go/optik/internal/rng"
)

func TestOrderedBasic(t *testing.T) {
	s := NewOrdered(WithShards(4), WithKeyMax(1<<20))
	defer s.Close()

	if _, ok := s.Get(42); ok {
		t.Fatal("found key in empty store")
	}
	if old, replaced := s.Set(42, 1); replaced || old != 0 {
		t.Fatalf("Set on empty = %d,%v", old, replaced)
	}
	if old, replaced := s.Set(42, 2); !replaced || old != 1 {
		t.Fatalf("Set replace = %d,%v", old, replaced)
	}
	if v, ok := s.Get(42); !ok || v != 2 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	if s.Insert(42, 3) {
		t.Fatal("Insert over present key succeeded")
	}
	if !s.Insert(43, 4) {
		t.Fatal("Insert of fresh key failed")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if v, ok := s.Del(42); !ok || v != 2 {
		t.Fatalf("Del = %d,%v", v, ok)
	}
	if _, ok := s.Del(42); ok {
		t.Fatal("second Del succeeded")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after delete, want 1", s.Len())
	}
}

func TestOrderedRangePartition(t *testing.T) {
	// keyMax 1<<20, 4 shards: the partition must put keys in their slice
	// and Scan must concatenate across slices in order.
	s := NewOrdered(WithShards(4), WithKeyMax(1<<20), WithoutMaintenance())
	want := []uint64{}
	for k := uint64(1); k < 1<<20; k += 1 << 14 {
		s.Set(k, k+1)
		want = append(want, k)
	}
	// A key above the declared ceiling still routes (to the last shard).
	s.Set(1<<21, 7)
	want = append(want, 1<<21)

	keys := make([]uint64, len(want)+8)
	vals := make([]uint64, len(want)+8)
	n := s.Scan(ds.MinKey, ds.MaxKey, keys, vals)
	if n != len(want) {
		t.Fatalf("full scan = %d entries, want %d", n, len(want))
	}
	for i, k := range want {
		if keys[i] != k {
			t.Fatalf("scan[%d] = %d, want %d (cross-shard order broken)", i, keys[i], k)
		}
	}
	if k, _, ok := s.Min(); !ok || k != want[0] {
		t.Fatalf("Min = %d,%v want %d", k, ok, want[0])
	}
	if k, v, ok := s.Max(); !ok || k != 1<<21 || v != 7 {
		t.Fatalf("Max = %d/%d/%v", k, v, ok)
	}
}

func TestOrderedBatchOps(t *testing.T) {
	for _, shards := range []int{1, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s := NewOrdered(WithShards(shards), WithKeyMax(1<<16), WithoutMaintenance())
			keys := []uint64{100, 5000, 60000, 5000, 1}
			vals := []uint64{1, 2, 3, 4, 5}
			old := make([]uint64, len(keys))
			repl := make([]bool, len(keys))
			if ins := s.MSetEach(keys, vals, old, repl); ins != 4 {
				t.Fatalf("MSetEach inserted %d, want 4", ins)
			}
			if !repl[3] || old[3] != 2 {
				t.Fatalf("duplicate key: repl=%v old=%d (in-order apply broken)", repl[3], old[3])
			}
			got := make([]uint64, len(keys))
			found := make([]bool, len(keys))
			s.MGet(keys, got, found)
			if !found[1] || got[1] != 4 {
				t.Fatalf("MGet[5000] = %d,%v want 4", got[1], found[1])
			}
			if s.Len() != 4 {
				t.Fatalf("Len = %d, want 4", s.Len())
			}
			if ins := s.MSet(keys[:2], []uint64{9, 9}); ins != 0 {
				t.Fatalf("MSet over present keys inserted %d", ins)
			}
			if del := s.MDelEach([]uint64{100, 77, 60000}, old[:3], found[:3]); del != 2 {
				t.Fatalf("MDelEach removed %d, want 2", del)
			}
			if found[1] {
				t.Fatal("absent key reported found")
			}
			if del := s.MDel([]uint64{5000, 1, 5000}); del != 2 {
				t.Fatalf("MDel removed %d, want 2", del)
			}
			if s.Len() != 0 {
				t.Fatalf("Len = %d after deleting everything", s.Len())
			}
		})
	}
}

// refSorted is the mutex-guarded sorted reference the property test runs
// the ordered store against.
type refSorted struct {
	mu sync.Mutex
	m  map[uint64]uint64
}

func (r *refSorted) set(k, v uint64) (uint64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old, ok := r.m[k]
	r.m[k] = v
	return old, ok
}

func (r *refSorted) del(k uint64) (uint64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old, ok := r.m[k]
	delete(r.m, k)
	return old, ok
}

func (r *refSorted) scan(from, to uint64, limit int) ([]uint64, []uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := []uint64{}
	for k := range r.m {
		if k >= from && k <= to {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if len(keys) > limit {
		keys = keys[:limit]
	}
	vals := make([]uint64, len(keys))
	for i, k := range keys {
		vals[i] = r.m[k]
	}
	return keys, vals
}

// TestOrderedVsReference drives an interleaved single-goroutine op tape
// through the ordered store and the reference: every point result and
// every scan page must be identical (here there is no concurrency, so
// "identical" is exact — the concurrent variants below check invariants
// instead).
func TestOrderedVsReference(t *testing.T) {
	s := NewOrdered(WithShards(8), WithKeyMax(1<<16), WithoutMaintenance())
	ref := &refSorted{m: map[uint64]uint64{}}
	r := rng.NewXorshift(0xfeed)
	const keyRange = 4096
	page := make([]uint64, 64)
	pageV := make([]uint64, 64)
	for op := 0; op < 30000; op++ {
		k := r.Intn(keyRange) + 1
		switch r.Intn(10) {
		case 0, 1, 2, 3:
			v := r.Next()
			gotOld, gotRepl := s.Set(k, v)
			wantOld, wantRepl := ref.set(k, v)
			if gotRepl != wantRepl || (gotRepl && gotOld != wantOld) {
				t.Fatalf("op %d: Set(%d) = %d,%v want %d,%v", op, k, gotOld, gotRepl, wantOld, wantRepl)
			}
		case 4, 5:
			gotOld, gotOk := s.Del(k)
			wantOld, wantOk := ref.del(k)
			if gotOk != wantOk || (gotOk && gotOld != wantOld) {
				t.Fatalf("op %d: Del(%d) = %d,%v want %d,%v", op, k, gotOld, gotOk, wantOld, wantOk)
			}
		default:
			from := r.Intn(keyRange) + 1
			to := from + r.Intn(512)
			n := s.Scan(from, to, page, pageV)
			wantK, wantV := ref.scan(from, to, len(page))
			if n != len(wantK) {
				t.Fatalf("op %d: Scan(%d,%d) = %d entries, want %d", op, from, to, n, len(wantK))
			}
			for i := range wantK {
				if page[i] != wantK[i] || pageV[i] != wantV[i] {
					t.Fatalf("op %d: scan entry %d = %d/%d, want %d/%d",
						op, i, page[i], pageV[i], wantK[i], wantV[i])
				}
			}
		}
	}
	if s.Len() != len(ref.m) {
		t.Fatalf("final Len = %d, reference holds %d", s.Len(), len(ref.m))
	}
}

// TestOrderedScanCursorInvariant is the iterator invariant of the issue:
// paging through the key space by resumption key (from = last+1) while
// writers churn must neither skip nor repeat any key that stays present
// for the whole scan, and every page must be strictly ascending. Stable
// keys are pinned by using a disjoint key range writers never touch.
func TestOrderedScanCursorInvariant(t *testing.T) {
	s := NewOrdered(WithShards(8), WithKeyMax(1<<20))
	defer s.Close()

	// Stable keys: every multiple of 64 in [64, 1<<19]. Churn keys are
	// everything else.
	stable := map[uint64]bool{}
	for k := uint64(64); k <= 1<<19; k += 64 {
		s.Set(k, k)
		stable[k] = true
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.NewXorshift(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := r.Intn(1<<19) + 1
				if k%64 == 0 {
					k++ // never touch a stable key
				}
				if r.Intn(2) == 0 {
					s.Set(k, k)
				} else {
					s.Del(k)
				}
			}
		}(uint64(w + 99))
	}

	deadline := time.Now().Add(300 * time.Millisecond)
	page := make([]uint64, 128)
	pageV := make([]uint64, 128)
	for pass := 0; time.Now().Before(deadline); pass++ {
		seen := map[uint64]int{}
		from := uint64(ds.MinKey)
		for {
			n := s.Scan(from, 1<<19, page, pageV)
			if n == 0 {
				break
			}
			last := uint64(0)
			for i := 0; i < n; i++ {
				if page[i] <= last && i > 0 {
					t.Fatalf("pass %d: page not strictly ascending at %d", pass, page[i])
				}
				if i == 0 && page[i] < from {
					t.Fatalf("pass %d: page starts at %d before cursor %d", pass, page[i], from)
				}
				last = page[i]
				if stable[page[i]] {
					seen[page[i]]++
				}
			}
			if page[n-1] >= 1<<19 {
				break
			}
			from = page[n-1] + 1 // resumption key, not a position
		}
		for k := range stable {
			if c := seen[k]; c != 1 {
				t.Fatalf("pass %d: stable key %d seen %d times across cursor pages", pass, k, c)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestOrderedReclaimWithoutQuiesce is the recycling acceptance bar at the
// store layer: under churn with NO caller-side Quiesce, the maintenance
// scheduler's idle sweeps alone must drain retired towers back into
// reuse.
func TestOrderedReclaimWithoutQuiesce(t *testing.T) {
	s := NewOrdered(WithShards(2), WithKeyMax(1<<16),
		WithMaintenanceInterval(time.Millisecond))
	defer s.Close()

	for i := 0; i < 4000; i++ {
		k := uint64(1 + i%64)
		s.Set(k, k)
		s.Del(k)
	}
	// Handle-borrow sweeps may already have recycled; the scheduler must
	// finish the job while the store idles.
	deadline := time.Now().Add(30 * time.Second)
	for {
		retired, reclaimed, _ := s.ReclaimStats()
		if retired > 0 && reclaimed == retired {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scheduler never drained: retired %d, reclaimed %d", retired, reclaimed)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// And churn after the drain proves reuse.
	for i := 0; i < 2000; i++ {
		k := uint64(1 + i%64)
		s.Set(k, k)
		s.Del(k)
	}
	if _, _, reused := s.ReclaimStats(); reused == 0 {
		t.Fatal("no towers reused after scheduler drain")
	}
}

func TestSortedStrings(t *testing.T) {
	s := NewSortedStrings(WithShards(4), WithKeyMax(1<<16))
	defer s.Close()

	if replaced := s.Set(100, "a"); replaced {
		t.Fatal("fresh Set reported replace")
	}
	if !s.Set(100, "b") {
		t.Fatal("second Set did not report replace")
	}
	if v, ok := s.Get(100); !ok || v != "b" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	s.Set(50, "x")
	s.Set(200, "y")

	keys := make([]uint64, 8)
	vals := make([]string, 8)
	if n := s.Scan(1, 1000, keys, vals); n != 3 || keys[0] != 50 || vals[1] != "b" || keys[2] != 200 {
		t.Fatalf("Scan = %d %v %v", n, keys[:n], vals[:n])
	}
	if k, v, ok := s.Min(); !ok || k != 50 || v != "x" {
		t.Fatalf("Min = %d/%q/%v", k, v, ok)
	}
	if k, v, ok := s.Max(); !ok || k != 200 || v != "y" {
		t.Fatalf("Max = %d/%q/%v", k, v, ok)
	}
	if !s.Del(100) || s.Del(100) {
		t.Fatal("Del semantics broken")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}

	// Batched surface.
	mk := []uint64{10, 20, 10}
	repl := make([]bool, 3)
	if ins := s.MSet(mk, []string{"p", "q", "r"}, repl); ins != 2 {
		t.Fatalf("MSet inserted %d, want 2", ins)
	}
	if !repl[2] {
		t.Fatal("duplicate key in MSet did not replace")
	}
	got := make([]string, 3)
	found := make([]bool, 3)
	s.MGet(mk, got, found)
	if got[0] != "r" || got[1] != "q" {
		t.Fatalf("MGet = %v", got)
	}
	if del := s.MDel([]uint64{10, 11, 20}, found); del != 2 {
		t.Fatalf("MDel removed %d, want 2", del)
	}
}

// TestSortedStringsConcurrent exercises the slot-recycling validate path
// under churn (meaningful mostly with -race).
func TestSortedStringsConcurrent(t *testing.T) {
	s := NewSortedStrings(WithShards(4), WithKeyMax(4096))
	defer s.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.NewXorshift(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := r.Intn(512) + 1
				switch r.Intn(4) {
				case 0:
					s.Del(k)
				case 1:
					if v, ok := s.Get(k); ok && v == "" {
						panic("empty value for present key")
					}
				default:
					s.Set(k, "v")
				}
			}
		}(uint64(w + 7))
	}
	keys := make([]uint64, 64)
	vals := make([]string, 64)
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		n := s.Scan(1, 512, keys, vals)
		for i := 0; i < n; i++ {
			if vals[i] != "v" {
				t.Fatalf("scan returned corrupt value %q for key %d", vals[i], keys[i])
			}
			if i > 0 && keys[i] <= keys[i-1] {
				t.Fatalf("scan page out of order at %d", keys[i])
			}
		}
		s.Min()
		s.Max()
	}
	close(stop)
	wg.Wait()
}

// TestSortedStringsScanShortPageMeansExhausted pins the refill contract
// paging callers depend on: a Scan page shorter than the buffer means the
// range is exhausted, even when entries vanish between the index scan and
// the arena load. The pager below interprets a short page exactly as the
// server's SCAN does — stop — so a churn-shrunk page would skip every
// stable key behind it and fail the seen-exactly-once check.
func TestSortedStringsScanShortPageMeansExhausted(t *testing.T) {
	s := NewSortedStrings(WithShards(4), WithKeyMax(1<<16))
	defer s.Close()

	stable := map[uint64]bool{}
	for k := uint64(8); k <= 1<<14; k += 8 {
		s.Set(k, "stable")
		stable[k] = true
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.NewXorshift(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := r.Intn(1<<14) + 1
				if k%8 == 0 {
					k++ // never touch a stable key
				}
				if r.Intn(2) == 0 {
					s.Set(k, "churn")
				} else {
					s.Del(k)
				}
			}
		}(uint64(w + 31))
	}

	page := make([]uint64, 64)
	pageV := make([]string, 64)
	deadline := time.Now().Add(300 * time.Millisecond)
	for pass := 0; time.Now().Before(deadline); pass++ {
		seen := map[uint64]int{}
		from := uint64(ds.MinKey)
		for {
			n := s.Scan(from, 1<<14, page, pageV)
			for i := 0; i < n; i++ {
				if stable[page[i]] {
					seen[page[i]]++
				}
			}
			if n < len(page) {
				break // short page = range exhausted, the contract under test
			}
			if page[n-1] >= 1<<14 {
				break
			}
			from = page[n-1] + 1
		}
		for k := range stable {
			if c := seen[k]; c != 1 {
				t.Fatalf("pass %d: stable key %d seen %d times across short-page cursor", pass, k, c)
			}
		}
	}
	close(stop)
	wg.Wait()
}
