package store

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/optik-go/optik/internal/rng"
)

// TestStoreBasics pins the kv surface: Set upserts (returning the old
// value), Get reads, Del removes, and the aggregate Len tracks.
func TestStoreBasics(t *testing.T) {
	s := New(WithShards(4), WithShardBuckets(16))
	defer s.Close()
	if got := s.Shards(); got != 4 {
		t.Fatalf("Shards = %d, want 4", got)
	}
	for k := uint64(1); k <= 1000; k++ {
		if old, replaced := s.Set(k, k*2); replaced || old != 0 {
			t.Fatalf("Set(%d) fresh = %d,%v", k, old, replaced)
		}
	}
	if got := s.Len(); got != 1000 {
		t.Fatalf("Len = %d, want 1000", got)
	}
	for k := uint64(1); k <= 1000; k++ {
		if v, ok := s.Get(k); !ok || v != k*2 {
			t.Fatalf("Get(%d) = %d,%v; want %d,true", k, v, ok, k*2)
		}
		if old, replaced := s.Set(k, k*3); !replaced || old != k*2 {
			t.Fatalf("Set(%d) replace = %d,%v; want %d,true", k, old, replaced, k*2)
		}
	}
	if got := s.Len(); got != 1000 {
		t.Fatalf("Len = %d after replacements, want 1000", got)
	}
	for k := uint64(1); k <= 500; k++ {
		if old, ok := s.Del(k); !ok || old != k*3 {
			t.Fatalf("Del(%d) = %d,%v; want %d,true", k, old, ok, k*3)
		}
	}
	if got := s.Len(); got != 500 {
		t.Fatalf("Len = %d after deletes, want 500", got)
	}
	if _, ok := s.Get(1); ok {
		t.Fatal("Get(1) found a deleted key")
	}
}

// TestStoreShardRounding pins the constructor's shard-count handling.
func TestStoreShardRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{1, 1}, {3, 4}, {16, 16}, {17, 32}, {100000, maxShards}} {
		s := New(WithShards(tc.in), WithoutMaintenance())
		if got := s.Shards(); got != tc.want {
			t.Fatalf("WithShards(%d) -> %d shards, want %d", tc.in, got, tc.want)
		}
	}
	if got := New(WithoutMaintenance()).Shards(); got < 1 {
		t.Fatal("default store has no shards")
	}
}

// TestStoreRoutingCoversShards checks the router actually spreads a dense
// key range over every shard — a broken shift would pile everything onto
// one shard and silently void the whole design.
func TestStoreRoutingCoversShards(t *testing.T) {
	s := New(WithShards(16), WithShardBuckets(16), WithoutMaintenance())
	const n = 100000
	for k := uint64(1); k <= n; k++ {
		s.Insert(k, k)
	}
	for i, sh := range s.shards {
		got := sh.Len()
		if got < n/len(s.shards)/2 || got > n/len(s.shards)*2 {
			t.Fatalf("shard %d holds %d of %d keys; router is not spreading", i, got, n)
		}
	}
	if got := s.Len(); got != n {
		t.Fatalf("aggregate Len = %d, want %d", got, n)
	}
}

// TestStoreBatchOps pins MGet/MSet/MDel against the scalar surface across
// shard boundaries.
func TestStoreBatchOps(t *testing.T) {
	s := New(WithShards(8), WithShardBuckets(16))
	defer s.Close()
	const n = 2000
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i + 1)
		vals[i] = uint64(i+1) * 5
	}
	if got := s.MSet(keys, vals); got != n {
		t.Fatalf("MSet fresh = %d, want %d", got, n)
	}
	if got := s.MSet(keys, vals); got != 0 {
		t.Fatalf("MSet repeat = %d, want 0", got)
	}
	outVals := make([]uint64, n)
	found := make([]bool, n)
	s.MGet(keys, outVals, found)
	for i := range keys {
		if !found[i] || outVals[i] != vals[i] {
			t.Fatalf("MGet[%d] = %d,%v; want %d,true", i, outVals[i], found[i], vals[i])
		}
	}
	if got := s.MDel(keys[:n/2]); got != n/2 {
		t.Fatalf("MDel = %d, want %d", got, n/2)
	}
	if got := s.MDel(keys[:n/2]); got != 0 {
		t.Fatalf("MDel repeat = %d, want 0", got)
	}
	if got := s.Len(); got != n/2 {
		t.Fatalf("Len = %d, want %d", got, n/2)
	}
	s.MGet(keys, outVals, found)
	for i := range keys {
		if found[i] != (i >= n/2) {
			t.Fatalf("MGet[%d] found = %v after MDel", i, found[i])
		}
	}
}

// TestStoreConcurrentConservation hammers the full surface — scalar and
// batched, strict and upsert — from many goroutines and requires exact
// conservation: the net of successful inserts minus deletes must equal
// the aggregate Len once quiescent.
func TestStoreConcurrentConservation(t *testing.T) {
	s := New(WithShards(8), WithShardBuckets(16))
	defer s.Close()
	const workers = 8
	iters := 20000
	if testing.Short() {
		iters = 5000
	}
	var net atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.NewXorshift(seed)
			batchK := make([]uint64, 8)
			batchV := make([]uint64, 8)
			for i := 0; i < iters; i++ {
				switch r.Intn(5) {
				case 0:
					key := r.Intn(8192) + 1
					if _, replaced := s.Set(key, seed); !replaced {
						net.Add(1)
					}
				case 1:
					key := r.Intn(8192) + 1
					if _, ok := s.Del(key); ok {
						net.Add(-1)
					}
				case 2:
					key := r.Intn(8192) + 1
					s.Get(key)
				case 3:
					for j := range batchK {
						batchK[j] = r.Intn(8192) + 1
						batchV[j] = seed
					}
					net.Add(int64(s.MSet(batchK, batchV)))
				default:
					for j := range batchK {
						batchK[j] = r.Intn(8192) + 1
					}
					net.Add(-int64(s.MDel(batchK)))
				}
			}
		}(uint64(g + 1))
	}
	wg.Wait()
	s.Quiesce()
	if got, want := int64(s.Len()), net.Load(); got != want {
		t.Fatalf("Len = %d, net = %d", got, want)
	}
}

// A batch whose keys repeat must count duplicates the way sequential
// scalar ops would (second upsert of one key replaces, second delete
// misses) — the conservation above depends on it.
func TestStoreBatchDuplicateKeys(t *testing.T) {
	s := New(WithShards(4), WithShardBuckets(16))
	defer s.Close()
	keys := []uint64{7, 7, 7, 9}
	vals := []uint64{1, 2, 3, 4}
	if got := s.MSet(keys, vals); got != 2 {
		t.Fatalf("MSet with duplicate keys inserted %d, want 2 (7 once, 9 once)", got)
	}
	if v, _ := s.Get(7); v != 3 {
		t.Fatalf("Get(7) = %d, want the last write 3", v)
	}
	if got := s.MDel(keys); got != 2 {
		t.Fatalf("MDel with duplicate keys deleted %d, want 2", got)
	}
	if got := s.Len(); got != 0 {
		t.Fatalf("Len = %d, want 0", got)
	}
}

// TestStoreSchedulerReturnsFleetToFloor is the acceptance scenario: one
// scheduler goroutine janitors 16 shards; every shard is grown to ~100k
// elements and drained, and with NO caller Quiesce calls and NO per-table
// goroutines the whole fleet must return to its floor bucket count.
func TestStoreSchedulerReturnsFleetToFloor(t *testing.T) {
	const shards = 16
	const floor = 64
	perShard := 100_000
	if testing.Short() {
		perShard = 20_000
	}
	before := runtime.NumGoroutine()
	s := New(WithShards(shards), WithShardBuckets(floor), WithMaintenanceInterval(time.Millisecond))
	defer s.Close()
	// The whole fleet's maintenance costs one goroutine, not one per shard.
	if got := runtime.NumGoroutine(); got > before+1 {
		t.Fatalf("goroutines grew from %d to %d building a %d-shard store; want exactly one scheduler",
			before, got, shards)
	}

	total := uint64(shards * perShard)
	const workers = 8
	span := total / workers
	var wg sync.WaitGroup
	for g := uint64(0); g < workers; g++ {
		wg.Add(1)
		go func(lo, hi uint64) {
			defer wg.Done()
			for k := lo; k <= hi; k++ {
				s.Set(k, k*3)
			}
		}(g*span+1, (g+1)*span)
	}
	wg.Wait()
	if got, want := s.Len(), int(workers*span); got != want {
		t.Fatalf("Len = %d after ramp, want %d", got, want)
	}
	// Every shard must have grown well past its floor for the drain to
	// mean anything.
	for i, sh := range s.shards {
		if sh.Buckets() <= floor {
			t.Fatalf("shard %d never grew (%d buckets)", i, sh.Buckets())
		}
	}
	for g := uint64(0); g < workers; g++ {
		wg.Add(1)
		go func(lo, hi uint64) {
			defer wg.Done()
			for k := lo; k <= hi; k++ {
				s.Del(k)
			}
		}(g*span+1, (g+1)*span)
	}
	wg.Wait()

	// No Quiesce anywhere: the shared scheduler alone must notice the
	// idle fleet and drive every shard's shrink chain home.
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if s.Buckets() == shards*floor {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i, sh := range s.shards {
		if got := sh.Buckets(); got != floor {
			t.Errorf("shard %d: buckets = %d after idle drain, want the %d floor", i, got, floor)
		}
	}
	if got := s.Len(); got != 0 {
		t.Fatalf("Len = %d after full drain, want 0", got)
	}
	retired, _, _ := s.ReclaimStats()
	if retired == 0 {
		t.Fatal("drain retired no chain nodes across the fleet")
	}
}

// TestStoreCloseLeavesShardsUsable pins Close's contract.
func TestStoreCloseLeavesShardsUsable(t *testing.T) {
	s := New(WithShards(2), WithShardBuckets(8))
	s.Set(1, 10)
	s.Close()
	s.Close() // idempotent
	if _, replaced := s.Set(1, 20); !replaced {
		t.Fatal("Set after Close did not see the key")
	}
	if v, ok := s.Get(1); !ok || v != 20 {
		t.Fatalf("Get after Close = %d,%v", v, ok)
	}
	s.Quiesce() // manual maintenance still available
}

// TestStoreEachVariants pins MSetEach/MDelEach against the scalar ops:
// per-key outcomes and old values must match what the same sequence of
// Set/Del calls reports, at shard counts on both sides of the 1-shard
// fast path, including duplicate keys inside one batch.
func TestStoreEachVariants(t *testing.T) {
	for _, shards := range []int{1, 8} {
		s := New(WithShards(shards), WithShardBuckets(64), WithoutMaintenance())
		keys := []uint64{5, 6, 5, 7, 6}
		vals := []uint64{50, 60, 51, 70, 61}
		old := make([]uint64, len(keys))
		replaced := make([]bool, len(keys))
		if got := s.MSetEach(keys, vals, old, replaced); got != 3 {
			t.Fatalf("shards=%d: MSetEach fresh = %d, want 3", shards, got)
		}
		wantRepl := []bool{false, false, true, false, true}
		for i := range keys {
			if replaced[i] != wantRepl[i] {
				t.Fatalf("shards=%d: replaced[%d] = %v, want %v", shards, i, replaced[i], wantRepl[i])
			}
		}
		if old[2] != 50 || old[4] != 60 {
			t.Fatalf("shards=%d: old = %v", shards, old)
		}
		if v, _ := s.Get(5); v != 51 {
			t.Fatalf("shards=%d: Get(5) = %d, want last write 51", shards, v)
		}
		delKeys := []uint64{5, 9, 5, 6}
		found := make([]bool, len(delKeys))
		if got := s.MDelEach(delKeys, old[:len(delKeys)], found); got != 2 {
			t.Fatalf("shards=%d: MDelEach = %d, want 2", shards, got)
		}
		if !found[0] || found[1] || found[2] || !found[3] {
			t.Fatalf("shards=%d: MDelEach found = %v", shards, found)
		}
		if old[0] != 51 || old[3] != 61 {
			t.Fatalf("shards=%d: MDelEach old = %v", shards, old[:len(delKeys)])
		}
		if got := s.Len(); got != 1 {
			t.Fatalf("shards=%d: Len = %d, want 1", shards, got)
		}
	}
}

// TestStoreEachMatchesScalar cross-checks the Each variants against a
// model map over a larger randomized batch, so the scatter/gather
// bookkeeping is exercised across many shards.
func TestStoreEachMatchesScalar(t *testing.T) {
	s := New(WithShards(16), WithShardBuckets(64), WithoutMaintenance())
	model := map[uint64]uint64{}
	const n = 2000
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	rnd := uint64(42)
	next := func() uint64 { rnd ^= rnd << 13; rnd ^= rnd >> 7; rnd ^= rnd << 17; return rnd }
	for round := 0; round < 3; round++ {
		for i := range keys {
			keys[i] = next()%512 + 1
			vals[i] = next()
		}
		old := make([]uint64, n)
		replaced := make([]bool, n)
		ins := s.MSetEach(keys, vals, old, replaced)
		wantIns := 0
		for i := range keys {
			prev, ok := model[keys[i]]
			if ok != replaced[i] || (ok && prev != old[i]) {
				t.Fatalf("round %d key %d: got old %d replaced %v, model %d %v",
					round, keys[i], old[i], replaced[i], prev, ok)
			}
			if !ok {
				wantIns++
			}
			model[keys[i]] = vals[i]
		}
		if ins != wantIns {
			t.Fatalf("round %d: inserted = %d, want %d", round, ins, wantIns)
		}
		// Delete a random half and check per-key outcomes.
		delKeys := keys[:n/2]
		found := make([]bool, n/2)
		del := s.MDelEach(delKeys, old[:n/2], found)
		wantDel := 0
		for i, k := range delKeys {
			prev, ok := model[k]
			if found[i] != ok || (ok && old[i] != prev) {
				t.Fatalf("round %d del key %d: got %d,%v model %d,%v", round, k, old[i], found[i], prev, ok)
			}
			if ok {
				wantDel++
				delete(model, k)
			}
		}
		if del != wantDel {
			t.Fatalf("round %d: deleted = %d, want %d", round, del, wantDel)
		}
		if s.Len() != len(model) {
			t.Fatalf("round %d: Len = %d, model %d", round, s.Len(), len(model))
		}
	}
}
