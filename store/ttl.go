// Memory governance for the string store: per-entry TTL and sampled
// eviction under a byte budget.
//
// The design extends OPTIK's decoupling of validation from reclamation to
// expiry. A TTL is an absolute deadline carried in the immutable value
// pair, and a reader validates it lazily exactly where it already
// validates the pair's hash against slot recycling — an expired pair is a
// miss, and the dead slot retires through the index's conditional-delete
// splice (DelIfValue, confirmed by pair identity under the bucket lock,
// so a recycled slot that reuses the same handle for the same hash is
// never mistaken for the entry that expired). Readers of TTL-less entries
// pay one predictable branch; nothing on the hot path ever blocks on the
// clock or the sweeper.
//
// Background governance rides the shared maintenance scheduler: each pass
// refreshes the coarse cached clock, advances the approx-LRU epoch,
// sweeps a cursor quantum of the arena for expired pairs, and — when a
// byte budget is configured and exceeded — evicts sampled-idle entries
// (best-of-K by touched-epoch age, the classic clock/approx-LRU sample)
// until back under budget. Writers lend the same bounded hand inline
// when an insert finds bytes past the watermark (evictHand), so the
// budget holds even when a saturated box starves the scheduler
// goroutine.
//
// Everything is driven through one injectable clock (WithClock), so tests
// advance time by hand and every expiry behavior reproduces
// deterministically — no sleeps, no flakes. The default clock is a coarse
// time.Now cached per maintenance pass and refreshed by TTL-setting
// operations, so reads never pay a syscall.
package store

import (
	"math"
	"time"
)

const (
	// nsPerSec converts the TTL commands' seconds to the clock's ns.
	nsPerSec = int64(time.Second)
	// sweepQuantum bounds how many arena slots one maintenance pass
	// examines for expiry: the sweep is incremental by design, the same
	// bounded-help bargain as the table's migration quanta.
	sweepQuantum = 2048
	// evictSampleK is the sample width of one eviction choice: evict the
	// oldest-touched of K random live entries. K=8 tracks true LRU
	// closely at a tiny fraction of its bookkeeping (the standard
	// sampled-LRU result).
	evictSampleK = 8
	// evictProbeMax bounds the slot probes spent collecting those K live
	// candidates: arena slots read nil once freed, and a store evicted
	// well under its allocated high-water mark would otherwise sample
	// mostly holes — best-of-2-live is barely better than random, and
	// random eviction of a zipfian resident set is what churns the warm
	// tail into a refill storm.
	evictProbeMax = 4 * evictSampleK
	// evictMaxFails bounds consecutive fruitless eviction attempts (free
	// or vanished slots) before a pass gives up; the next pass resumes.
	evictMaxFails = 64
	// evictBusyMax caps successful evictions in one busy-pass hand, so
	// MaintainBusy stays bounded as its contract requires. The idle pass
	// and Quiesce run to budget (cancellable).
	evictBusyMax = 4096
	// epochPeriod is the target wall-clock width of one approx-LRU epoch:
	// the write-path hands tick the epoch (CAS-gated, one winner) once
	// this much clock has passed since the last tick, so recency keeps
	// ~millisecond resolution even when a saturated box starves the
	// background scheduler that used to be the only epoch source.
	epochPeriod = int64(time.Millisecond)
	// aggressiveMinAge is the idle threshold of the aggressive eviction
	// mode: entries untouched for at least this many epochs go in bulk.
	// At the ~1ms epoch cadence this reads "idle for tens of
	// milliseconds" — long enough that a working set's warm tail (drawn
	// every few ms) never qualifies, short enough that one-shot entries
	// stop occupying a budgeted store within a blink.
	aggressiveMinAge = 32
	// evictHandRounds bounds the write path's inline governance hand to
	// this many sample rounds per insert, keeping the worst-case SET
	// latency spike small while still reclaiming several entries' bytes
	// per entry inserted (each aggressive round retires up to
	// evictSampleK victims).
	evictHandRounds = 4
)

// initTTL wires the governance layer into a freshly built Strings: seeds
// the sweep rng and the cached clock, and registers the maintenance hook
// on the index's shared scheduler (when one exists — WithoutMaintenance
// stores are driven via Quiesce).
func (s *Strings) initTTL() {
	s.sweepRng = 0x9E3779B97F4A7C15
	s.handRng.Store(0x6A09E667F3BCC909)
	if s.clock == nil {
		s.cachedNow.Store(time.Now().UnixNano())
	}
	if s.index.sched != nil {
		s.index.sched.Register(ttlMaintainer{s})
	}
}

// now is the read-path clock: the injected clock, or the coarse cached
// time.Now the maintenance pass refreshes. Reads never pay a syscall, at
// the cost of entries expiring up to one pass interval late.
func (s *Strings) now() int64 {
	if s.clock != nil {
		return s.clock()
	}
	return s.cachedNow.Load()
}

// nowFresh is the write-path clock for TTL-setting operations and TTL
// itself: a fresh time.Now (cached for subsequent reads), or the injected
// clock verbatim.
func (s *Strings) nowFresh() int64 {
	if s.clock != nil {
		return s.clock()
	}
	n := time.Now().UnixNano()
	s.cachedNow.Store(n)
	return n
}

// expiredNow is the lazy-expiry judgment of the read path and of the
// write paths' displaced-entry accounting. TTL-less pairs cost one
// branch, exactly as before. For a pair carrying a deadline the coarse
// cached clock answers first; a "still live" verdict is then confirmed
// against a fresh reading, because the cache trails real time by up to a
// whole (possibly backed-off, possibly starvation-stretched) maintenance
// interval — long enough on an idle store for a just-lapsed entry to be
// served as a hit. The fresh reading is deliberately not written back:
// concurrent readers of TTL'd keys must not ping-pong a shared cache
// line for a value the next pass refreshes anyway.
func (s *Strings) expiredNow(p *pair) bool {
	if p.deadline == 0 {
		return false
	}
	if s.clock != nil {
		return p.deadline <= s.clock()
	}
	return p.deadline <= s.cachedNow.Load() || p.deadline <= time.Now().UnixNano()
}

// deadlineFor converts a relative TTL in seconds to an absolute clock
// deadline, saturating on overflow. 0 is reserved for "no TTL", so a
// computed zero (or any non-positive deadline) clamps to 1 — an entry
// expired since the epoch.
func (s *Strings) deadlineFor(secs int64) int64 {
	now := s.nowFresh()
	if secs > (math.MaxInt64-now)/nsPerSec {
		return math.MaxInt64
	}
	if secs < (math.MinInt64+now)/nsPerSec {
		return 1
	}
	d := now + secs*nsPerSec
	if d <= 0 {
		d = 1
	}
	return d
}

// SetEX stores key→value with a TTL of secs seconds, returning true if it
// replaced a live value. Non-positive secs produce an already-expired
// entry (the server rejects them before they get here).
func (s *Strings) SetEX(key, value string, secs int64) bool {
	return s.SetEXHashed(HashKey(key), value, secs)
}

// SetEXHashed is SetEX for a pre-hashed key.
func (s *Strings) SetEXHashed(k uint64, value string, secs int64) bool {
	slot := s.values.put(k, value, s.deadlineFor(secs), s.epoch.Load())
	old, replaced := s.index.Set(k, slot)
	live := replaced && !s.releaseChecked(old)
	s.evictHand()
	return live
}

// Expire sets key's TTL to secs seconds from now, returning whether the
// key was live to receive it. Non-positive secs delete the key (Redis
// semantics), reporting whether it was present.
func (s *Strings) Expire(key string, secs int64) bool {
	return s.ExpireHashed(HashKey(key), secs)
}

// ExpireHashed is Expire for a pre-hashed key.
func (s *Strings) ExpireHashed(k uint64, secs int64) bool {
	if secs <= 0 {
		return s.DelHashed(k)
	}
	return s.ExpireAtHashed(k, s.deadlineFor(secs))
}

// ExpireAt sets key's TTL to an absolute clock deadline in nanoseconds,
// returning whether the key was live. Deadlines <= 0 clamp to 1 (expired
// since the epoch). This is the deterministic primitive the relative
// forms build on; the linearizability harness drives it directly.
func (s *Strings) ExpireAt(key string, deadline int64) bool {
	return s.ExpireAtHashed(HashKey(key), deadline)
}

// ExpireAtHashed is ExpireAt for a pre-hashed key. The loop is the OPTIK
// shape again: read the slot, build a replacement pair carrying the new
// deadline, publish by pointer CAS. Pair pointers are never reused, so
// the CAS cannot ABA; a recycled slot always fails it and the lap
// restarts through the index. Expired pairs are never re-armed — they
// retire, keeping an expired pair's identity stable for the confirm
// callbacks that splice it out.
func (s *Strings) ExpireAtHashed(k uint64, deadline int64) bool {
	if deadline <= 0 {
		deadline = 1
	}
	for {
		slot, ok := s.index.Get(k)
		if !ok {
			return false
		}
		p := s.values.loadPair(slot)
		if p == nil || p.hash != k {
			continue
		}
		if s.expiredNow(p) {
			s.retireExpired(k, slot, p)
			return false
		}
		np := &pair{hash: k, val: p.val, deadline: deadline}
		np.touched.Store(p.touched.Load())
		if s.values.casPair(slot, p, np) {
			return true
		}
	}
}

// Persist clears key's TTL, returning true only if the key was live and
// actually carried one.
func (s *Strings) Persist(key string) bool {
	return s.PersistHashed(HashKey(key))
}

// PersistHashed is Persist for a pre-hashed key.
func (s *Strings) PersistHashed(k uint64) bool {
	for {
		slot, ok := s.index.Get(k)
		if !ok {
			return false
		}
		p := s.values.loadPair(slot)
		if p == nil || p.hash != k {
			continue
		}
		if s.expiredNow(p) {
			s.retireExpired(k, slot, p)
			return false
		}
		if p.deadline == 0 {
			return false
		}
		np := &pair{hash: k, val: p.val}
		np.touched.Store(p.touched.Load())
		if s.values.casPair(slot, p, np) {
			return true
		}
	}
}

// TTL returns key's remaining time to live in seconds, rounded up: -2 if
// the key is absent (or expired), -1 if it is live with no TTL.
func (s *Strings) TTL(key string) int64 {
	return s.TTLHashed(HashKey(key))
}

// TTLHashed is TTL for a pre-hashed key. It reads a fresh clock — an
// operator asking "how long has this left" deserves better than the
// pass-coarse cache.
func (s *Strings) TTLHashed(k uint64) int64 {
	now := s.nowFresh()
	for {
		slot, ok := s.index.Get(k)
		if !ok {
			return -2
		}
		p := s.values.loadPair(slot)
		if p == nil || p.hash != k {
			continue
		}
		if p.expiredAt(now) {
			s.retireExpired(k, slot, p)
			return -2
		}
		if p.deadline == 0 {
			return -1
		}
		return (p.deadline - now + nsPerSec - 1) / nsPerSec
	}
}

// BytesUsed returns the store's approximate live footprint in bytes.
func (s *Strings) BytesUsed() int64 { return s.values.Bytes() }

// ByteBudget returns the configured budget (0 = unbounded).
func (s *Strings) ByteBudget() int64 { return s.budget }

// TTLStats snapshots the governance counters: entries retired lazily by
// readers, retired by the background sweep, and evicted for the budget.
func (s *Strings) TTLStats() (expiredLazy, expiredSwept, evicted uint64) {
	return s.expiredLazy.Load(), s.expiredSwept.Load(), s.evicted.Load()
}

// retireExpired splices an expired entry out on behalf of the reader that
// tripped over it: remove k's index entry only if it still maps to slot
// AND slot still holds exactly the pair judged expired (confirmed under
// the bucket lock — a concurrent delete+insert can recycle the slot for
// the same hash, and an unconditional delete here would kill that live
// successor). Losing the race means someone else already retired it; the
// read stays a miss either way.
func (s *Strings) retireExpired(k, slot uint64, p *pair) {
	if s.index.DelIfValue(k, slot, func() bool { return s.values.loadPair(slot) == p }) {
		s.values.Release(slot)
		s.expiredLazy.Add(1)
	}
}

// retireSwept is retireExpired for the background sweep's counter.
func (s *Strings) retireSwept(slot uint64, p *pair) {
	if s.index.DelIfValue(p.hash, slot, func() bool { return s.values.loadPair(slot) == p }) {
		s.values.Release(slot)
		s.expiredSwept.Add(1)
	}
}

// ttlMaintainer adapts the store's governance pass to the shared
// scheduler's Maintainer contract.
type ttlMaintainer struct{ s *Strings }

// ActivitySample hashes the write-visible arena state: the byte counter
// moves on any insert, delete, or size-changing overwrite. A same-size
// overwrite can alias to an unchanged sample; that only upgrades the next
// pass from busy to idle, which does strictly more maintenance — safe by
// the Maintainer contract.
func (m ttlMaintainer) ActivitySample() uint64 {
	return uint64(m.s.values.Bytes()) ^ m.s.values.Allocated()<<48
}

// MaintainIdle runs the full governance pass, cancellable, evicting all
// the way to budget.
func (m ttlMaintainer) MaintainIdle(cancel <-chan struct{}) {
	m.s.maintainPass(cancel, 0)
}

// MaintainBusy lends the bounded hand: same sweep quantum, eviction
// capped per call so the pass never blocks a busy store's scheduler slot.
func (m ttlMaintainer) MaintainBusy() {
	m.s.maintainPass(nil, evictBusyMax)
}

// maintain is the synchronous full pass Quiesce drives home.
func (s *Strings) maintain(cancel <-chan struct{}) {
	s.maintainPass(cancel, 0)
}

// maintainPass is one governance round: refresh the coarse clock, tick
// the approx-LRU epoch, sweep a cursor quantum of the arena for expired
// pairs, then — over budget — evict sampled-idle entries until under (or
// the busy cap / fail bound / cancel hits). maxEvict 0 means "to budget".
// maintMu serializes passes (the scheduler and a concurrent Quiesce may
// both drive one); the pass never blocks user operations.
func (s *Strings) maintainPass(cancel <-chan struct{}, maxEvict int) {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	now := s.nowFresh()
	epoch := s.epoch.Add(1)
	s.epochTick.Store(now)
	limit := s.values.Allocated()
	if limit == 0 {
		return
	}
	quantum := uint64(sweepQuantum)
	if quantum > limit {
		quantum = limit
	}
	for i := uint64(0); i < quantum; i++ {
		if canceled(cancel) {
			return
		}
		slot := s.sweepCursor % limit
		s.sweepCursor++
		if p := s.values.loadPair(slot); p != nil && p.expiredAt(now) {
			s.retireSwept(slot, p)
		}
	}
	if s.budget == 0 {
		return
	}
	fails, done, tick := 0, 0, 0
	for s.values.Bytes() > s.budget && fails < evictMaxFails {
		if canceled(cancel) || (maxEvict > 0 && done >= maxEvict) {
			return
		}
		// Pressure-adaptive width: mildly over budget, evict the single
		// oldest of the sample (classic best-of-K approx-LRU). More than
		// ~6% over — insertion pressure is outrunning one-at-a-time
		// eviction — evict every idle entry the sample turns up, trading
		// victim precision for the ~K× throughput that keeps bytes_used
		// pinned instead of drifting to the working-set size.
		aggressive := s.values.Bytes() > s.budget+s.budget/16
		n := s.evictSample(&s.sweepRng, now, epoch, limit, aggressive)
		if n == 0 {
			fails++
			continue
		}
		done += n
		fails = 0
		// Long passes re-tick the epoch, so "idle" keeps meaning
		// "untouched since recently" rather than "untouched since a pass
		// that started a million evictions ago" — entries the traffic is
		// actually using stay distinguishable from the razed cold mass.
		if tick += n; tick >= sweepQuantum {
			tick = 0
			now = s.nowFresh()
			epoch = s.epoch.Add(1)
			s.epochTick.Store(now)
		}
	}
}

// evictSample runs one eviction round over up to K random live entries
// (probing at most evictProbeMax arena slots to find them — free slots
// read nil, Release clears them, and skipping holes instead of counting
// them keeps the sample a genuine best-of-K over residents) and returns
// how many entries it retired. Expired pairs met along the way retire
// immediately as swept. In the normal mode only the least recently
// touched pair of the sample is evicted (largest epoch age, wraparound
// uint32 arithmetic); in aggressive mode every sampled pair idle for
// aggressiveMinAge epochs goes, with the best-of-K single victim as the
// fallback when the whole sample is fresh (fresh inserts must not stall
// convergence). rng is caller-owned xorshift state — the sweeper passes
// its maintMu-guarded field, write-path hands a private local — so
// concurrent rounds never race; every retirement below it is a
// thread-safe confirmed delete.
func (s *Strings) evictSample(rng *uint64, now int64, epoch uint32, limit uint64, aggressive bool) int {
	var best *pair
	var bestSlot uint64
	var bestAge uint32
	evicted, live := 0, 0
	for i := 0; i < evictProbeMax && live < evictSampleK; i++ {
		*rng ^= *rng << 13
		*rng ^= *rng >> 7
		*rng ^= *rng << 17
		slot := *rng % limit
		p := s.values.loadPair(slot)
		if p == nil {
			continue
		}
		live++
		if p.expiredAt(now) {
			s.retireSwept(slot, p)
			continue
		}
		// Wraparound guard: an entry touched after this round snapshotted
		// the epoch reads as a "future" stamp, and raw subtraction would
		// alias the very freshest entries to astronomical ages — razing
		// exactly the hottest keys. Signed interpretation clamps them to
		// age 0.
		age := epoch - p.touched.Load()
		if int32(age) < 0 {
			age = 0
		}
		if aggressive && age >= aggressiveMinAge {
			if s.evictOne(slot, p) {
				evicted++
			}
			continue
		}
		if best == nil || age > bestAge {
			best, bestSlot, bestAge = p, slot, age
		}
	}
	if evicted == 0 && best != nil && s.evictOne(bestSlot, best) {
		evicted = 1
	}
	return evicted
}

// evictOne retires one victim through the same confirmed conditional
// delete as expiry (see retireExpired for the recycling race it guards).
func (s *Strings) evictOne(slot uint64, p *pair) bool {
	if s.index.DelIfValue(p.hash, slot, func() bool { return s.values.loadPair(slot) == p }) {
		s.values.Release(slot)
		s.evicted.Add(1)
		return true
	}
	return false
}

// evictHand is the write path's bounded governance hand: an insert that
// observes bytes_used past the aggressive watermark lends a few eviction
// sample rounds inline, on the inserting goroutine's own time — the same
// bargain the hash table strikes for resize migration (a busy structure
// drives its own maintenance on the backs of its updates), and the same
// one Redis strikes at maxmemory (the command that crosses the watermark
// pays for the reclaim). The background passes alone cannot be trusted
// with the budget: on a saturated box the scheduler goroutine runs tens
// of milliseconds apart, and a hot write stream outgrows any bounded
// burst it could evict that rarely. The hand is deliberately lock-free —
// it must not queue behind (or be starved by) a running maintenance
// pass, because a pass fighting a hot write stream for one core is
// exactly when the writers' help is needed; each hand derives a private
// rng from one atomic bump and races the confirmed deletes safely.
func (s *Strings) evictHand() {
	if s.budget == 0 || s.values.Bytes() <= s.budget+s.budget/16 {
		return
	}
	limit := s.values.Allocated()
	if limit == 0 {
		return
	}
	rng := s.handRng.Add(0x9E3779B97F4A7C15)
	// A fresh clock, not the cached one: the hand is the component that
	// keeps the recency epoch running when a saturated box starves the
	// background passes, and the cached clock only moves when those very
	// passes run — gating the tick on it would deadlock the epoch at
	// pass cadence and collapse every resident entry into one
	// indistinguishable age bucket (eviction degrades to random, and
	// random eviction of a zipfian resident set is a refill storm). The
	// clock read is noise next to the probing below, and refreshing the
	// cache here also tightens lazy expiry while the passes are starved.
	now := s.nowFresh()
	if last := s.epochTick.Load(); now-last >= epochPeriod && s.epochTick.CompareAndSwap(last, now) {
		s.epoch.Add(1)
	}
	epoch := s.epoch.Load()
	for i := 0; i < evictHandRounds && s.values.Bytes() > s.budget; i++ {
		s.evictSample(&rng, now, epoch, limit, true)
	}
}

// canceled is a non-blocking poll of the scheduler's stop channel.
func canceled(c <-chan struct{}) bool {
	if c == nil {
		return false
	}
	select {
	case <-c:
		return true
	default:
		return false
	}
}
