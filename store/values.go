// String values for the uint64 store, lifted out of examples/kvstore so
// the network server and the example share one implementation: a Store
// maps a key's 64-bit hash to a *handle* — a slot number in a chunked
// value arena — and the arena holds one atomic pointer per slot to an
// immutable {hash, value} pair. There is no lock anywhere on the
// GET/SET/DEL path; the read-under-reuse race that handle recycling
// creates is resolved the OPTIK way, by validation instead of
// pessimism:
//
//   - SET writes the pair first and publishes the slot through the index
//     after, so any slot a reader can reach holds a fully-built pair.
//   - Freed slots recycle through a lock-free OPTIK stack, so a GET can
//     hold a slot number while a concurrent DEL frees it and another SET
//     re-points it at a different key's pair.
//   - The GET therefore validates optimistically — does the pair's hash
//     still match the key I looked up? — and restarts through the index
//     when it does not, exactly how the tables' own readers validate
//     bucket versions instead of locking.

package store

import (
	"sync"
	"sync/atomic"

	"github.com/optik-go/optik/ds/stack"
	"github.com/optik-go/optik/internal/core"
)

// pair is one stored value: the key hash it belongs to, the value, and an
// optional absolute expiry deadline (0 = no TTL) in the store clock's
// nanoseconds. Pairs are immutable once published — replacing a value (or
// a deadline: Expire/Persist build a new pair and CAS the slot pointer)
// never mutates one in place — except for touched, the approx-LRU epoch
// stamp the eviction sampler reads, which is atomic and advisory.
type pair struct {
	hash     uint64
	val      string
	deadline int64
	// touched is the maintenance epoch of the last Get (or the Put, for a
	// never-read pair). Readers store it only when the epoch moved since
	// their last visit, so a hot entry writes the line once per epoch, not
	// once per read.
	touched atomic.Uint32
}

// expiredAt reports whether the pair's deadline has passed at now.
func (p *pair) expiredAt(now int64) bool {
	return p.deadline != 0 && p.deadline <= now
}

// touch refreshes the approx-LRU stamp if the epoch moved.
func (p *pair) touch(epoch uint32) {
	if p.touched.Load() != epoch {
		p.touched.Store(epoch)
	}
}

// PairOverhead is the bytes charged per live entry beyond the value
// bytes: the pair struct, the arena's slot pointer, and a nominal share
// of the index entry. Approximate by design — the byte budget governs
// order of magnitude, not malloc-exact accounting. Exported so budget
// planners (the eviction workload, capacity math in operators' tooling)
// can convert between entry counts and budget bytes.
const PairOverhead = 56

// pairOverhead is the internal alias the value layer charges with.
const pairOverhead = PairOverhead

// Values is a growable arena of value slots addressed by the uint64
// handle the index stores. Slots are chunked so growth never moves
// published slots (a reader holding a slot number must be able to load
// its pointer with no coordination), and the chunk directory is fixed so
// reaching a slot is two indexed loads. Freed slots recycle through a
// lock-free OPTIK stack. All methods are safe for concurrent use.
type Values struct {
	chunks [valueDirSize]atomic.Pointer[valueChunk]
	next   atomic.Uint64
	free   *stack.Optik
	// bytes tracks the live footprint (value bytes + pairOverhead per
	// entry), charged at Put and released with the slot. Striped so the
	// hot Put/Release paths never serialize on one counter line.
	bytes *core.Striped
}

const (
	valueChunkBits = 12 // 4096 slots per chunk
	valueChunkSize = 1 << valueChunkBits
	valueDirSize   = 4096 // 16.7M live values
)

type valueChunk [valueChunkSize]atomic.Pointer[pair]

// NewValues returns an empty arena.
func NewValues() *Values {
	return &Values{free: stack.NewOptik(), bytes: core.NewStriped(0)}
}

// Put stores a fresh {hash, val} pair and returns its slot handle,
// recycling a freed slot when one is available. The pair is visible as
// soon as the pointer store lands — before the caller publishes the slot
// through its index — so no reader can reach a half-built pair.
func (v *Values) Put(hash uint64, val string) uint64 {
	return v.put(hash, val, 0, 0)
}

// put is Put with the TTL deadline (0 = none) and the approx-LRU epoch
// stamp the pair is born with.
func (v *Values) put(hash uint64, val string, deadline int64, epoch uint32) uint64 {
	slot, ok := v.free.Pop()
	if !ok {
		slot = v.next.Add(1) - 1
		if slot >= valueDirSize*valueChunkSize {
			panic("store: value arena exhausted")
		}
	}
	ci := slot >> valueChunkBits
	c := v.chunks[ci].Load()
	for c == nil {
		// First touch of this chunk: one allocation, racing allocators
		// settle by CAS.
		v.chunks[ci].CompareAndSwap(nil, new(valueChunk))
		c = v.chunks[ci].Load()
	}
	p := &pair{hash: hash, val: val, deadline: deadline}
	p.touched.Store(epoch)
	c[slot&(valueChunkSize-1)].Store(p)
	v.bytes.Add(slot, int64(len(val))+pairOverhead)
	return slot
}

// loadPair returns the pair currently in slot (nil before the slot's
// chunk exists). Callers validate hash — and, with TTL in play, pointer
// identity — exactly as Load does.
func (v *Values) loadPair(slot uint64) *pair {
	c := v.chunks[slot>>valueChunkBits].Load()
	if c == nil {
		return nil
	}
	return c[slot&(valueChunkSize-1)].Load()
}

// casPair swaps slot's pair pointer from old to new. Pair pointers are
// never reused, so the compare is ABA-safe. The replacement MUST be
// byte-for-byte equal in accounting terms (same hash, same val length):
// Release uncharges whatever pair it finds in the slot, and a racing
// size-changing swap would skew the byte counter.
func (v *Values) casPair(slot uint64, old, new *pair) bool {
	return v.chunks[slot>>valueChunkBits].Load()[slot&(valueChunkSize-1)].CompareAndSwap(old, new)
}

// Bytes returns the approximate live footprint in bytes: value bytes plus
// pairOverhead per live entry. Same non-linearizable contract as Len.
func (v *Values) Bytes() int64 { return v.bytes.Sum() }

// Load returns the value in slot if it still belongs to hash. A false
// return means the slot was recycled by a concurrent delete/replace since
// the caller read the handle; the caller restarts through its index (the
// OPTIK validate-and-retry, lifted to the value layer).
func (v *Values) Load(slot, hash uint64) (string, bool) {
	p := v.chunks[slot>>valueChunkBits].Load()[slot&(valueChunkSize-1)].Load()
	if p == nil || p.hash != hash {
		return "", false
	}
	return p.val, true
}

// Release recycles a slot whose index entry has been removed or replaced.
// The slot's pair pointer is cleared: stale readers observe nil, report a
// miss and retry through their index (the same validate-and-retry they
// already run for a recycled hash), and — critically — the eviction
// sampler can tell a free slot from a live one. Leaving the dead pair in
// place would make every freed slot look like a perfect eviction victim
// (old epoch, never expiring) whose conditional delete can only fail,
// and the victim search would starve on its own leftovers. The releasing
// caller owns the unmapped slot, so the load-uncharge-clear sequence
// cannot race a recycling Put; the only concurrent swap possible is
// Expire/Persist's size-invariant casPair, which leaves the uncharge
// amount unchanged.
func (v *Values) Release(slot uint64) {
	v.uncharge(slot)
	v.free.Push(slot)
}

// ReleaseBatch recycles every slot in one splice onto the free list —
// the stack's single validate-and-lock commit covers the whole batch, so
// a pipelined burst of deletes pays one contended CAS instead of one per
// slot. Same visibility contract as Release.
func (v *Values) ReleaseBatch(slots []uint64) {
	for _, slot := range slots {
		v.uncharge(slot)
	}
	v.free.PushAll(slots)
}

// uncharge credits back the bytes a slot's resident pair was charged and
// clears the pair pointer (see Release for why freed slots must read nil).
func (v *Values) uncharge(slot uint64) {
	sp := &v.chunks[slot>>valueChunkBits].Load()[slot&(valueChunkSize-1)]
	if p := sp.Load(); p != nil {
		v.bytes.Add(slot, -(int64(len(p.val)) + pairOverhead))
		sp.Store(nil)
	}
}

// Allocated returns how many slots have ever been carved from the arena
// (monotone; recycled slots are not subtracted).
func (v *Values) Allocated() uint64 { return v.next.Load() }

// FreeLen returns the current free-list length (racy; for monitoring).
func (v *Values) FreeLen() int { return v.free.Len() }

// fnv64a is FNV-1a inlined: hash/fnv's Write is allocation-free, but
// constructing its hash.Hash64 costs an interface allocation per call,
// and key hashing is on every operation's hot path.
func fnv64a[T ~string | ~[]byte](key T) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return clampHash(h)
}

// HashKey maps a string key into the index's key space, keeping clear of
// the tables' sentinel keys (0 and MaxUint64).
func HashKey(key string) uint64 { return fnv64a(key) }

// HashKeyBytes is HashKey for a byte-slice key; it does not retain or
// allocate, so protocol parsers can hash straight out of their read
// buffers.
func HashKeyBytes(key []byte) uint64 { return fnv64a(key) }

func clampHash(v uint64) uint64 {
	if v == 0 || v == ^uint64(0) {
		return 1
	}
	return v
}

// Strings maps string keys to string values: a sharded OPTIK index from
// key hashes to value handles in a Values arena. It is the string-valued
// face of the Store — examples/kvstore runs it in-process and the server
// package serves it over TCP. Distinct keys whose hashes collide alias to
// one entry; with 64-bit FNV-1a that needs ~2^32 live keys to become
// likely, far beyond the arena's capacity.
type Strings struct {
	index  *Store
	values *Values

	// Memory governance (see ttl.go): the injectable clock (nil = coarse
	// time.Now cached in cachedNow, refreshed once per maintenance pass
	// and on TTL-setting ops), the byte budget (0 = unbounded), the
	// approx-LRU epoch the sampler advances, the expiry/eviction
	// counters, and the sweeper's cursor/rng state under maintMu.
	clock        func() int64
	cachedNow    atomic.Int64
	budget       int64
	epoch        atomic.Uint32
	expiredLazy  atomic.Uint64
	expiredSwept atomic.Uint64
	evicted      atomic.Uint64
	maintMu      sync.Mutex
	sweepCursor  uint64
	sweepRng     uint64
	// handRng seeds the write path's lock-free eviction hands (see
	// evictHand): each hand derives a private xorshift state from one
	// atomic bump, so concurrent hands probe independent slots without
	// sharing the sweeper's maintMu-guarded rng.
	handRng atomic.Uint64
	// epochTick is the clock reading of the last approx-LRU epoch tick;
	// hands CAS it forward every epochPeriod (see evictHand), passes
	// overwrite it.
	epochTick atomic.Int64
}

// NewStrings returns a string store; the options configure the underlying
// index exactly as in New, and WithClock/WithByteBudget configure the
// memory-governance layer (ttl.go).
func NewStrings(opts ...Option) *Strings {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	s := &Strings{
		index:  New(opts...),
		values: NewValues(),
		clock:  o.clock,
		budget: o.byteBudget,
	}
	s.initTTL()
	return s
}

// Index exposes the underlying sharded index for stats aggregation.
func (s *Strings) Index() *Store { return s.index }

// Values exposes the underlying arena for stats aggregation.
func (s *Strings) Values() *Values { return s.values }

// Close stops the index's maintenance scheduler.
func (s *Strings) Close() { s.index.Close() }

// Quiesce drives every index shard's maintenance home, then runs one full
// synchronous governance pass (expiry sweep + eviction to budget), so a
// quiesced store's bytes_used sits at or under its budget
// deterministically — tests and workload phase transitions rely on it.
func (s *Strings) Quiesce() {
	s.index.Quiesce()
	s.maintain(nil)
}

// Len returns the live key count (same non-linearizable contract as
// Store.Len).
func (s *Strings) Len() int { return s.index.Len() }

// Set stores key→value, returning true if it replaced an existing value
// and false on a fresh insert.
func (s *Strings) Set(key, value string) bool {
	return s.SetHashed(HashKey(key), value)
}

// SetHashed is Set for a pre-hashed key (see HashKey/HashKeyBytes). A
// plain Set clears any TTL the key carried (the new pair's deadline is
// zero); overwriting an already-expired entry reports a fresh insert.
func (s *Strings) SetHashed(k uint64, value string) bool {
	slot := s.values.put(k, value, 0, s.epoch.Load())
	old, replaced := s.index.Set(k, slot)
	live := replaced && !s.releaseChecked(old)
	s.evictHand()
	return live
}

// releaseChecked recycles a replaced/removed slot and reports whether its
// pair had already expired (in which case the operation that displaced it
// observed a miss, not a hit). The caller owns the unmapped slot, so the
// pair load cannot race a recycling Put.
func (s *Strings) releaseChecked(slot uint64) (wasExpired bool) {
	if p := s.values.loadPair(slot); p != nil && s.expiredNow(p) {
		wasExpired = true
		s.expiredLazy.Add(1)
	}
	s.values.Release(slot)
	return wasExpired
}

// Get returns the value stored under key. The loop is the OPTIK shape in
// miniature: optimistic read (index lookup, then the arena load), validate
// (does the pair still belong to this key?), retry on conflict. A retry
// means a concurrent SET or DEL recycled the slot under us, so each lap
// rides on another operation's progress — the same obstruction-freedom
// argument as the tables' own readers.
func (s *Strings) Get(key string) (string, bool) {
	return s.GetHashed(HashKey(key))
}

// GetHashed is Get for a pre-hashed key. An expired pair is a miss: the
// deadline is validated lazily right where the hash is, and the dead slot
// retires through the same conditional-delete splice the sweeper uses
// (confirmed by pair identity under the bucket lock, so a concurrent
// recycle of the slot for the same hash is never mistaken for the expired
// entry). TTL-less pairs pay one predictable branch.
func (s *Strings) GetHashed(k uint64) (string, bool) {
	for {
		slot, ok := s.index.Get(k)
		if !ok {
			return "", false
		}
		p := s.values.loadPair(slot)
		if p == nil || p.hash != k {
			continue
		}
		if s.expiredNow(p) {
			s.retireExpired(k, slot, p)
			return "", false
		}
		if s.budget != 0 {
			p.touch(s.epoch.Load())
		}
		return p.val, true
	}
}

// Del removes key, reporting whether it was present.
func (s *Strings) Del(key string) bool {
	return s.DelHashed(HashKey(key))
}

// DelHashed is Del for a pre-hashed key. Deleting an entry whose TTL has
// already passed reports false — the key was observably absent.
func (s *Strings) DelHashed(k uint64) bool {
	old, ok := s.index.Del(k)
	if !ok {
		return false
	}
	return !s.releaseChecked(old)
}

// batchStrScratch pools the per-batch hash/slot/flag slices of the
// Strings batch operations, the same treatment the index's own batch
// routing gets from batchScratch — a batched path that allocates per
// call would undo it.
type batchStrScratch struct {
	hashes []uint64
	slots  []uint64
	old    []uint64
	repl   []bool
}

var strScratchPool = sync.Pool{New: func() any { return new(batchStrScratch) }}

// grab sizes the scratch for an n-key batch and returns it.
func grabStrScratch(n int) *batchStrScratch {
	sc := strScratchPool.Get().(*batchStrScratch)
	if cap(sc.hashes) < n {
		sc.hashes = make([]uint64, n)
		sc.slots = make([]uint64, n)
		sc.old = make([]uint64, n)
		sc.repl = make([]bool, n)
	}
	return sc
}

// MGet looks up every keys[i], storing the value into vals[i] and
// presence into found[i]; vals and found must be at least len(keys) long.
// The index pass is batched (each touched shard visited once); slots
// whose pairs were recycled mid-read fall back to the scalar validated
// Get.
func (s *Strings) MGet(keys []string, vals []string, found []bool) {
	sc := grabStrScratch(len(keys))
	defer strScratchPool.Put(sc)
	hashes := sc.hashes[:len(keys)]
	for i, key := range keys {
		hashes[i] = HashKey(key)
	}
	s.mgetSlots(hashes, vals, found, sc.slots[:len(keys)])
}

// MGetHashed is MGet for pre-hashed keys (see HashKeyBytes): protocol
// parsers hash straight out of their read buffers and hand the batch
// here, so key bytes never escape the parser's views.
func (s *Strings) MGetHashed(hashes []uint64, vals []string, found []bool) {
	sc := grabStrScratch(len(hashes))
	defer strScratchPool.Put(sc)
	s.mgetSlots(hashes, vals, found, sc.slots[:len(hashes)])
}

// mgetSlots is the shared body of MGet/MGetHashed: one batched index
// pass, then arena loads validated against slot recycling and expiry.
func (s *Strings) mgetSlots(hashes []uint64, vals []string, found []bool, slots []uint64) {
	s.index.MGet(hashes, slots, found)
	var epoch uint32
	if s.budget != 0 {
		epoch = s.epoch.Load()
	}
	for i := range hashes {
		if !found[i] {
			vals[i] = ""
			continue
		}
		p := s.values.loadPair(slots[i])
		if p == nil || p.hash != hashes[i] {
			vals[i], found[i] = s.GetHashed(hashes[i])
			continue
		}
		if s.expiredNow(p) {
			s.retireExpired(hashes[i], slots[i], p)
			vals[i], found[i] = "", false
			continue
		}
		if s.budget != 0 {
			p.touch(epoch)
		}
		vals[i] = p.val
	}
}

// MSetHashed stores vals[i] under every pre-hashed keys[i], recording
// into replaced[i] whether an existing value was overwritten, and
// returns the fresh-insert count. The arena writes happen up front (a
// published slot always holds a fully-built pair), the index pass is
// shard-batched, and every replaced slot recycles through one batch
// splice onto the free list. replaced must be at least len(hashes) long.
// Duplicate hashes apply in order, exactly as sequential SetHashed calls.
func (s *Strings) MSetHashed(hashes []uint64, vals []string, replaced []bool) int {
	sc := grabStrScratch(len(hashes))
	defer strScratchPool.Put(sc)
	slots, old := sc.slots[:len(hashes)], sc.old[:len(hashes)]
	epoch := s.epoch.Load()
	for i, h := range hashes {
		slots[i] = s.values.put(h, vals[i], 0, epoch)
	}
	inserted := s.index.MSetEach(hashes, slots, old, replaced)
	// Compact the replaced handles into the (now index-owned, no longer
	// needed) slots scratch and recycle them in one splice. A replaced
	// pair that had already expired counts as a fresh insert, exactly as
	// the scalar SetHashed reports it.
	rel := slots[:0]
	for i := range hashes {
		if replaced[i] {
			if p := s.values.loadPair(old[i]); p != nil && s.expiredNow(p) {
				replaced[i] = false
				inserted++
				s.expiredLazy.Add(1)
			}
			rel = append(rel, old[i])
		}
	}
	s.values.ReleaseBatch(rel)
	s.evictHand()
	return inserted
}

// MDelHashed removes every pre-hashed keys[i], recording presence into
// found[i], and returns the hit count; found must be at least len(hashes)
// long. The index pass is shard-batched and the freed value slots recycle
// in one batch splice.
func (s *Strings) MDelHashed(hashes []uint64, found []bool) int {
	sc := grabStrScratch(len(hashes))
	defer strScratchPool.Put(sc)
	old := sc.old[:len(hashes)]
	deleted := s.index.MDelEach(hashes, old, found)
	rel := sc.slots[:0]
	for i := range hashes {
		if found[i] {
			if p := s.values.loadPair(old[i]); p != nil && s.expiredNow(p) {
				found[i] = false
				deleted--
				s.expiredLazy.Add(1)
			}
			rel = append(rel, old[i])
		}
	}
	s.values.ReleaseBatch(rel)
	return deleted
}
