// String values for the uint64 store, lifted out of examples/kvstore so
// the network server and the example share one implementation: a Store
// maps a key's 64-bit hash to a *handle* — a slot number in a chunked
// value arena — and the arena holds one atomic pointer per slot to an
// immutable {hash, value} pair. There is no lock anywhere on the
// GET/SET/DEL path; the read-under-reuse race that handle recycling
// creates is resolved the OPTIK way, by validation instead of
// pessimism:
//
//   - SET writes the pair first and publishes the slot through the index
//     after, so any slot a reader can reach holds a fully-built pair.
//   - Freed slots recycle through a lock-free OPTIK stack, so a GET can
//     hold a slot number while a concurrent DEL frees it and another SET
//     re-points it at a different key's pair.
//   - The GET therefore validates optimistically — does the pair's hash
//     still match the key I looked up? — and restarts through the index
//     when it does not, exactly how the tables' own readers validate
//     bucket versions instead of locking.

package store

import (
	"sync"
	"sync/atomic"

	"github.com/optik-go/optik/ds/stack"
)

// pair is one stored value: the key hash it belongs to plus the value.
// Pairs are immutable once published; replacing a value builds a new pair
// in a new or recycled slot.
type pair struct {
	hash uint64
	val  string
}

// Values is a growable arena of value slots addressed by the uint64
// handle the index stores. Slots are chunked so growth never moves
// published slots (a reader holding a slot number must be able to load
// its pointer with no coordination), and the chunk directory is fixed so
// reaching a slot is two indexed loads. Freed slots recycle through a
// lock-free OPTIK stack. All methods are safe for concurrent use.
type Values struct {
	chunks [valueDirSize]atomic.Pointer[valueChunk]
	next   atomic.Uint64
	free   *stack.Optik
}

const (
	valueChunkBits = 12 // 4096 slots per chunk
	valueChunkSize = 1 << valueChunkBits
	valueDirSize   = 4096 // 16.7M live values
)

type valueChunk [valueChunkSize]atomic.Pointer[pair]

// NewValues returns an empty arena.
func NewValues() *Values {
	return &Values{free: stack.NewOptik()}
}

// Put stores a fresh {hash, val} pair and returns its slot handle,
// recycling a freed slot when one is available. The pair is visible as
// soon as the pointer store lands — before the caller publishes the slot
// through its index — so no reader can reach a half-built pair.
func (v *Values) Put(hash uint64, val string) uint64 {
	slot, ok := v.free.Pop()
	if !ok {
		slot = v.next.Add(1) - 1
		if slot >= valueDirSize*valueChunkSize {
			panic("store: value arena exhausted")
		}
	}
	ci := slot >> valueChunkBits
	c := v.chunks[ci].Load()
	for c == nil {
		// First touch of this chunk: one allocation, racing allocators
		// settle by CAS.
		v.chunks[ci].CompareAndSwap(nil, new(valueChunk))
		c = v.chunks[ci].Load()
	}
	c[slot&(valueChunkSize-1)].Store(&pair{hash: hash, val: val})
	return slot
}

// Load returns the value in slot if it still belongs to hash. A false
// return means the slot was recycled by a concurrent delete/replace since
// the caller read the handle; the caller restarts through its index (the
// OPTIK validate-and-retry, lifted to the value layer).
func (v *Values) Load(slot, hash uint64) (string, bool) {
	p := v.chunks[slot>>valueChunkBits].Load()[slot&(valueChunkSize-1)].Load()
	if p == nil || p.hash != hash {
		return "", false
	}
	return p.val, true
}

// Release recycles a slot whose index entry has been removed or replaced.
// The old pair is left in place for stale readers; they validate its hash
// and retry, and the pair itself is garbage-collected once the last one
// moves on.
func (v *Values) Release(slot uint64) {
	v.free.Push(slot)
}

// ReleaseBatch recycles every slot in one splice onto the free list —
// the stack's single validate-and-lock commit covers the whole batch, so
// a pipelined burst of deletes pays one contended CAS instead of one per
// slot. Same visibility contract as Release.
func (v *Values) ReleaseBatch(slots []uint64) {
	v.free.PushAll(slots)
}

// Allocated returns how many slots have ever been carved from the arena
// (monotone; recycled slots are not subtracted).
func (v *Values) Allocated() uint64 { return v.next.Load() }

// FreeLen returns the current free-list length (racy; for monitoring).
func (v *Values) FreeLen() int { return v.free.Len() }

// fnv64a is FNV-1a inlined: hash/fnv's Write is allocation-free, but
// constructing its hash.Hash64 costs an interface allocation per call,
// and key hashing is on every operation's hot path.
func fnv64a[T ~string | ~[]byte](key T) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return clampHash(h)
}

// HashKey maps a string key into the index's key space, keeping clear of
// the tables' sentinel keys (0 and MaxUint64).
func HashKey(key string) uint64 { return fnv64a(key) }

// HashKeyBytes is HashKey for a byte-slice key; it does not retain or
// allocate, so protocol parsers can hash straight out of their read
// buffers.
func HashKeyBytes(key []byte) uint64 { return fnv64a(key) }

func clampHash(v uint64) uint64 {
	if v == 0 || v == ^uint64(0) {
		return 1
	}
	return v
}

// Strings maps string keys to string values: a sharded OPTIK index from
// key hashes to value handles in a Values arena. It is the string-valued
// face of the Store — examples/kvstore runs it in-process and the server
// package serves it over TCP. Distinct keys whose hashes collide alias to
// one entry; with 64-bit FNV-1a that needs ~2^32 live keys to become
// likely, far beyond the arena's capacity.
type Strings struct {
	index  *Store
	values *Values
}

// NewStrings returns a string store; the options configure the underlying
// index exactly as in New.
func NewStrings(opts ...Option) *Strings {
	return &Strings{index: New(opts...), values: NewValues()}
}

// Index exposes the underlying sharded index for stats aggregation.
func (s *Strings) Index() *Store { return s.index }

// Values exposes the underlying arena for stats aggregation.
func (s *Strings) Values() *Values { return s.values }

// Close stops the index's maintenance scheduler.
func (s *Strings) Close() { s.index.Close() }

// Quiesce drives every index shard's maintenance home.
func (s *Strings) Quiesce() { s.index.Quiesce() }

// Len returns the live key count (same non-linearizable contract as
// Store.Len).
func (s *Strings) Len() int { return s.index.Len() }

// Set stores key→value, returning true if it replaced an existing value
// and false on a fresh insert.
func (s *Strings) Set(key, value string) bool {
	return s.SetHashed(HashKey(key), value)
}

// SetHashed is Set for a pre-hashed key (see HashKey/HashKeyBytes).
func (s *Strings) SetHashed(k uint64, value string) bool {
	slot := s.values.Put(k, value)
	old, replaced := s.index.Set(k, slot)
	if replaced {
		s.values.Release(old)
	}
	return replaced
}

// Get returns the value stored under key. The loop is the OPTIK shape in
// miniature: optimistic read (index lookup, then the arena load), validate
// (does the pair still belong to this key?), retry on conflict. A retry
// means a concurrent SET or DEL recycled the slot under us, so each lap
// rides on another operation's progress — the same obstruction-freedom
// argument as the tables' own readers.
func (s *Strings) Get(key string) (string, bool) {
	return s.GetHashed(HashKey(key))
}

// GetHashed is Get for a pre-hashed key.
func (s *Strings) GetHashed(k uint64) (string, bool) {
	for {
		slot, ok := s.index.Get(k)
		if !ok {
			return "", false
		}
		if val, ok := s.values.Load(slot, k); ok {
			return val, true
		}
	}
}

// Del removes key, reporting whether it was present.
func (s *Strings) Del(key string) bool {
	return s.DelHashed(HashKey(key))
}

// DelHashed is Del for a pre-hashed key.
func (s *Strings) DelHashed(k uint64) bool {
	old, ok := s.index.Del(k)
	if !ok {
		return false
	}
	s.values.Release(old)
	return true
}

// batchStrScratch pools the per-batch hash/slot/flag slices of the
// Strings batch operations, the same treatment the index's own batch
// routing gets from batchScratch — a batched path that allocates per
// call would undo it.
type batchStrScratch struct {
	hashes []uint64
	slots  []uint64
	old    []uint64
	repl   []bool
}

var strScratchPool = sync.Pool{New: func() any { return new(batchStrScratch) }}

// grab sizes the scratch for an n-key batch and returns it.
func grabStrScratch(n int) *batchStrScratch {
	sc := strScratchPool.Get().(*batchStrScratch)
	if cap(sc.hashes) < n {
		sc.hashes = make([]uint64, n)
		sc.slots = make([]uint64, n)
		sc.old = make([]uint64, n)
		sc.repl = make([]bool, n)
	}
	return sc
}

// MGet looks up every keys[i], storing the value into vals[i] and
// presence into found[i]; vals and found must be at least len(keys) long.
// The index pass is batched (each touched shard visited once); slots
// whose pairs were recycled mid-read fall back to the scalar validated
// Get.
func (s *Strings) MGet(keys []string, vals []string, found []bool) {
	sc := grabStrScratch(len(keys))
	defer strScratchPool.Put(sc)
	hashes := sc.hashes[:len(keys)]
	for i, key := range keys {
		hashes[i] = HashKey(key)
	}
	s.mgetSlots(hashes, vals, found, sc.slots[:len(keys)])
}

// MGetHashed is MGet for pre-hashed keys (see HashKeyBytes): protocol
// parsers hash straight out of their read buffers and hand the batch
// here, so key bytes never escape the parser's views.
func (s *Strings) MGetHashed(hashes []uint64, vals []string, found []bool) {
	sc := grabStrScratch(len(hashes))
	defer strScratchPool.Put(sc)
	s.mgetSlots(hashes, vals, found, sc.slots[:len(hashes)])
}

// mgetSlots is the shared body of MGet/MGetHashed: one batched index
// pass, then arena loads validated against slot recycling.
func (s *Strings) mgetSlots(hashes []uint64, vals []string, found []bool, slots []uint64) {
	s.index.MGet(hashes, slots, found)
	for i := range hashes {
		if !found[i] {
			vals[i] = ""
			continue
		}
		if v, ok := s.values.Load(slots[i], hashes[i]); ok {
			vals[i] = v
		} else {
			vals[i], found[i] = s.GetHashed(hashes[i])
		}
	}
}

// MSetHashed stores vals[i] under every pre-hashed keys[i], recording
// into replaced[i] whether an existing value was overwritten, and
// returns the fresh-insert count. The arena writes happen up front (a
// published slot always holds a fully-built pair), the index pass is
// shard-batched, and every replaced slot recycles through one batch
// splice onto the free list. replaced must be at least len(hashes) long.
// Duplicate hashes apply in order, exactly as sequential SetHashed calls.
func (s *Strings) MSetHashed(hashes []uint64, vals []string, replaced []bool) int {
	sc := grabStrScratch(len(hashes))
	defer strScratchPool.Put(sc)
	slots, old := sc.slots[:len(hashes)], sc.old[:len(hashes)]
	for i, h := range hashes {
		slots[i] = s.values.Put(h, vals[i])
	}
	inserted := s.index.MSetEach(hashes, slots, old, replaced)
	// Compact the replaced handles into the (now index-owned, no longer
	// needed) slots scratch and recycle them in one splice.
	rel := slots[:0]
	for i := range hashes {
		if replaced[i] {
			rel = append(rel, old[i])
		}
	}
	s.values.ReleaseBatch(rel)
	return inserted
}

// MDelHashed removes every pre-hashed keys[i], recording presence into
// found[i], and returns the hit count; found must be at least len(hashes)
// long. The index pass is shard-batched and the freed value slots recycle
// in one batch splice.
func (s *Strings) MDelHashed(hashes []uint64, found []bool) int {
	sc := grabStrScratch(len(hashes))
	defer strScratchPool.Put(sc)
	old := sc.old[:len(hashes)]
	deleted := s.index.MDelEach(hashes, old, found)
	rel := sc.slots[:0]
	for i := range hashes {
		if found[i] {
			rel = append(rel, old[i])
		}
	}
	s.values.ReleaseBatch(rel)
	return deleted
}
