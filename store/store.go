// Package store lifts the library's resizable OPTIK hash table into a
// servable subsystem: a Store is a power-of-two set of independent
// hashmap.Resizable shards behind a 64-bit hash router, with batched
// multi-key operations, store-wide aggregation, and a single shared
// maintenance scheduler janitoring the whole fleet.
//
// Sharding is the classic route from a fast table to a served system
// (lock striping over optimistic structures — the design behind the
// paper's ConcurrentHashMap baseline, scaled out): each shard is its own
// table with its own per-bucket OPTIK locks, its own striped counter, its
// own qsbr reclamation pool, and its own incremental resize machinery, so
// shards never contend on anything — no shared counter cell, no shared
// migration cursor, no shared free list. A resize migrates one shard's
// buckets while the other shards serve traffic untouched, which bounds
// the tail a resize can inflict on the store as a whole.
//
// The fleet shares exactly one piece of infrastructure: the maintenance
// scheduler (hashmap.Scheduler). One goroutine samples every shard's
// activity, quiesces the idle ones, and backs its poll interval off
// exponentially while the whole fleet sleeps — where per-table janitors
// would cost a goroutine and a timer per shard, the store costs one of
// each at any shard count.
//
// Batched operations (MGet, MSet, MDel) route each key to its shard and
// then visit each touched shard once, so the per-operation overheads —
// borrowing a reclamation handle, offering migration help — are paid per
// shard visit instead of per key. Each key remains an independent
// linearizable operation; a batch is a loop with the fixed costs hoisted,
// not a transaction.
package store

import (
	"math/bits"
	"runtime"
	"sync"
	"time"

	"github.com/optik-go/optik/ds"
	"github.com/optik-go/optik/ds/hashmap"
)

// Store is a sharded key-value store over uint64 keys and values. All
// methods are safe for concurrent use. Keys follow the library's range
// ([ds.MinKey, ds.MaxKey]); values are unrestricted.
type Store struct {
	shards []*hashmap.Resizable
	// shift routes a mixed key to a shard by its top bits: the bucket
	// index inside a shard uses low-order mix bits, so the two choices
	// stay independent.
	shift uint
	sched *hashmap.Scheduler
}

var _ ds.Set = (*Store)(nil)

// maxShards bounds the shard count; the batch router tracks touched
// shards in a fixed bitset of this width.
const maxShards = 256

// options collects construction knobs; see the Option helpers.
type options struct {
	shards       int
	shardBuckets int
	interval     time.Duration
	maintenance  bool
	// keyMax bounds the range partition of the ordered store (see
	// WithKeyMax); the hash-routed New ignores it.
	keyMax uint64
	// clock and byteBudget configure the value layer's memory governance
	// (see WithClock/WithByteBudget and store/ttl.go); the index-only New
	// ignores them.
	clock      func() int64
	byteBudget int64
}

// Option configures New.
type Option func(*options)

// WithShards sets the shard count, rounded up to a power of two and
// capped at 256. The default is the next power of two >= GOMAXPROCS —
// one shard per core's worth of traffic.
func WithShards(n int) Option {
	return func(o *options) { o.shards = n }
}

// WithShardBuckets sets each shard's initial (and floor) bucket count;
// the default is 1024. A shard never shrinks below its floor, so this is
// the provisioned per-shard size.
func WithShardBuckets(n int) Option {
	return func(o *options) { o.shardBuckets = n }
}

// WithMaintenanceInterval sets the shared scheduler's base poll interval
// (default hashmap.DefaultJanitorInterval; it backs off exponentially
// while the fleet idles).
func WithMaintenanceInterval(d time.Duration) Option {
	return func(o *options) { o.interval = d }
}

// WithoutMaintenance builds the store with no background scheduler: the
// caller owns quiescence (Quiesce, or registering the shards with its own
// hashmap.Scheduler). Benchmarks isolating the data path use this.
func WithoutMaintenance() Option {
	return func(o *options) { o.maintenance = false }
}

// WithClock injects the nanosecond clock the value layer's TTL machinery
// reads (NewStrings only). The default is a coarse time.Now cached per
// maintenance pass and refreshed by TTL-setting operations; tests inject
// a clock they advance by hand, so every expiry behavior reproduces
// deterministically — no sleeps.
func WithClock(now func() int64) Option {
	return func(o *options) { o.clock = now }
}

// WithByteBudget bounds the value layer's approximate live footprint
// (NewStrings only): when bytes_used exceeds n, the maintenance pass
// evicts sampled-idle entries until back under. 0 (the default) means
// unbounded. The budget governs bytes, not elements — the store sheds a
// few large values or many small ones alike.
func WithByteBudget(n int64) Option {
	return func(o *options) { o.byteBudget = n }
}

// New returns a Store with every shard registered on one shared
// maintenance scheduler (unless WithoutMaintenance). Close releases the
// scheduler goroutine.
func New(opts ...Option) *Store {
	o := options{
		shardBuckets: 1024,
		maintenance:  true,
	}
	for _, opt := range opts {
		opt(&o)
	}
	if o.shards <= 0 {
		o.shards = runtime.GOMAXPROCS(0)
	}
	n := 1
	for n < o.shards && n < maxShards {
		n <<= 1
	}
	// For one shard the shift is 64, which Go defines to route every key
	// to shard 0.
	s := &Store{
		shards: make([]*hashmap.Resizable, n),
		shift:  uint(64 - bits.TrailingZeros(uint(n))),
	}
	for i := range s.shards {
		s.shards[i] = hashmap.NewResizable(o.shardBuckets)
	}
	if o.maintenance {
		s.sched = hashmap.NewScheduler(o.interval)
		for _, sh := range s.shards {
			s.sched.Register(sh)
		}
	}
	return s
}

// Close stops the shared maintenance scheduler. The shards stay usable —
// migration still advances on updates and Quiesce still works — they just
// get no background attention. Idempotent.
func (s *Store) Close() {
	if s.sched != nil {
		s.sched.Stop()
	}
}

// mix is the same Fibonacci multiplicative hash the shard tables use for
// bucket placement; the router consumes its top bits, the tables bits
// 32 and up, so a route and a bucket index never alias for any sane
// shard/bucket count (shards × buckets up to 2^32).
func mix(key uint64) uint64 { return key * 0x9E3779B97F4A7C15 }

// shardFor routes a key to its shard.
func (s *Store) shardFor(key uint64) *hashmap.Resizable {
	return s.shards[mix(key)>>s.shift]
}

// Get returns the value stored under key, if present. Lock-free, like the
// shard's Search.
func (s *Store) Get(key uint64) (uint64, bool) {
	return s.shardFor(key).Search(key)
}

// Set stores key→val, inserting or replacing, and returns the previous
// value and whether one was replaced — the upsert a serving store needs
// (contrast Insert, the paper's set semantics).
func (s *Store) Set(key, val uint64) (uint64, bool) {
	return s.shardFor(key).Upsert(key, val)
}

// Del removes key, returning its value, if present.
func (s *Store) Del(key uint64) (uint64, bool) {
	return s.shardFor(key).Delete(key)
}

// DelIfValue removes key only while it still maps to val; confirm, when
// non-nil, runs under the owning bucket's lock after the value check and
// can veto the removal. The value layer's expiry/eviction retirement uses
// it to splice out exactly the slot it judged dead, never a recycled
// successor that reused the same slot for the same hash.
func (s *Store) DelIfValue(key, val uint64, confirm func() bool) bool {
	return s.shardFor(key).DeleteIfValue(key, val, confirm)
}

// Search implements ds.Set (alias of Get), so the workload drivers and
// stress harness run against a Store unchanged.
func (s *Store) Search(key uint64) (uint64, bool) { return s.Get(key) }

// Insert implements ds.Set: strict insert-if-absent.
func (s *Store) Insert(key, val uint64) bool {
	return s.shardFor(key).Insert(key, val)
}

// Delete implements ds.Set (alias of Del).
func (s *Store) Delete(key uint64) (uint64, bool) { return s.Del(key) }

// Len sums the shard counts: O(shards × counter stripes), independent of
// the element count. Same non-linearizable contract as every Len in the
// library.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// Shards returns the shard count.
func (s *Store) Shards() int { return len(s.shards) }

// Buckets sums the shards' current bucket counts (racy; for monitoring).
func (s *Store) Buckets() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Buckets()
	}
	return n
}

// Resizes sums the shards' lifetime resize counts (racy; for monitoring).
func (s *Store) Resizes() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Resizes()
	}
	return n
}

// ReclaimStats sums the shards' chain-node reclamation counters (racy
// snapshot; for monitoring).
func (s *Store) ReclaimStats() (retired, reclaimed, reused uint64) {
	for _, sh := range s.shards {
		a, b, c := sh.ReclaimStats()
		retired += a
		reclaimed += b
		reused += c
	}
	return retired, reclaimed, reused
}

// Quiesce drives every shard's maintenance home: in-flight migrations
// completed, pending resizes settled. Operators normally never call it —
// the shared scheduler does — but workload phase transitions and tests
// want the determinism.
func (s *Store) Quiesce() {
	for _, sh := range s.shards {
		sh.Quiesce()
	}
}

// batchScratch is the reusable routing state of one batched call: the
// per-key shard ids and the per-shard gather slices. Batches borrow one
// from a pool keyed by nothing — under a steady per-goroutine batch rate
// the same goroutine gets its scratch back (sync.Pool is per-P) — so
// large batches route allocation-free instead of costing two slices per
// call (the ROADMAP's batch-routing item).
type batchScratch struct {
	ids     []uint8
	subKeys []uint64
	subVals []uint64
	// Per-key-result gather buffers (MSetEach/MDelEach): shard-batch
	// outputs land here and scatter back to the caller's arrays.
	subOld   []uint64
	subFound []bool
}

var scratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// route computes every key's shard once (shard ids fit a byte: maxShards
// is 256) and the touched-shard bitset into sc.ids, so the per-shard
// gather passes below compare bytes instead of recomputing the hash
// route — the rescan is O(touchedShards × len(keys)) byte compares, the
// routing itself O(len(keys)).
func (s *Store) route(keys []uint64, sc *batchScratch) ([]uint8, shardSet) {
	if cap(sc.ids) < len(keys) {
		sc.ids = make([]uint8, len(keys))
	}
	ids := sc.ids[:len(keys)]
	var touched shardSet
	for i, k := range keys {
		id := uint8(mix(k) >> s.shift)
		ids[i] = id
		touched.add(int(id))
	}
	return ids, touched
}

// shardSet is the touched-shards bitset of a batch route.
type shardSet [maxShards / 64]uint64

func (b *shardSet) add(i int)      { b[i>>6] |= 1 << (i & 63) }
func (b *shardSet) has(i int) bool { return b[i>>6]&(1<<(i&63)) != 0 }

// MGet looks up every keys[i], storing the value into vals[i] and
// presence into found[i]; vals and found must be at least len(keys) long.
// Keys are served in shard groups so each touched shard is visited once
// with its buckets hot.
func (s *Store) MGet(keys, vals []uint64, found []bool) {
	if len(s.shards) == 1 {
		s.shards[0].SearchBatch(keys, vals, found)
		return
	}
	sc := scratchPool.Get().(*batchScratch)
	ids, touched := s.route(keys, sc)
	for si := range s.shards {
		if !touched.has(si) {
			continue
		}
		sh := s.shards[si]
		for i, k := range keys {
			if ids[i] == uint8(si) {
				vals[i], found[i] = sh.Search(k)
			}
		}
	}
	scratchPool.Put(sc)
}

// MSet applies Set(keys[i], vals[i]) for every i, returning how many keys
// were newly inserted. Each touched shard is visited once, amortizing the
// reclamation handle and migration help over the keys that landed on it.
func (s *Store) MSet(keys, vals []uint64) int {
	if len(s.shards) == 1 {
		return s.shards[0].UpsertBatch(keys, vals)
	}
	sc := scratchPool.Get().(*batchScratch)
	ids, touched := s.route(keys, sc)
	inserted := 0
	subKeys, subVals := sc.subKeys, sc.subVals
	for si := range s.shards {
		if !touched.has(si) {
			continue
		}
		subKeys, subVals = subKeys[:0], subVals[:0]
		for i, k := range keys {
			if ids[i] == uint8(si) {
				subKeys = append(subKeys, k)
				subVals = append(subVals, vals[i])
			}
		}
		inserted += s.shards[si].UpsertBatch(subKeys, subVals)
	}
	sc.subKeys, sc.subVals = subKeys, subVals
	scratchPool.Put(sc)
	return inserted
}

// MSetEach is MSet with per-key results: old[i] receives the value
// keys[i] replaced and replaced[i] whether one existed; the return value
// still counts fresh inserts. old and replaced must be at least
// len(keys) long. The value layer (store.Strings) and the server's
// pipelined SET replies both need the per-key outcomes, which plain MSet
// folds away. Within one shard keys apply in arrival order, so duplicate
// keys behave exactly as sequential Sets (a duplicate always routes to
// the same shard).
func (s *Store) MSetEach(keys, vals, old []uint64, replaced []bool) int {
	if len(s.shards) == 1 {
		return s.shards[0].UpsertBatchEach(keys, vals, old, replaced)
	}
	sc := scratchPool.Get().(*batchScratch)
	ids, touched := s.route(keys, sc)
	if cap(sc.subOld) < len(keys) {
		sc.subOld = make([]uint64, len(keys))
		sc.subFound = make([]bool, len(keys))
	}
	inserted := 0
	subKeys, subVals := sc.subKeys, sc.subVals
	for si := range s.shards {
		if !touched.has(si) {
			continue
		}
		subKeys, subVals = subKeys[:0], subVals[:0]
		for i, k := range keys {
			if ids[i] == uint8(si) {
				subKeys = append(subKeys, k)
				subVals = append(subVals, vals[i])
			}
		}
		subOld, subRepl := sc.subOld[:len(subKeys)], sc.subFound[:len(subKeys)]
		inserted += s.shards[si].UpsertBatchEach(subKeys, subVals, subOld, subRepl)
		j := 0
		for i := range keys {
			if ids[i] == uint8(si) {
				old[i], replaced[i] = subOld[j], subRepl[j]
				j++
			}
		}
	}
	sc.subKeys, sc.subVals = subKeys, subVals
	scratchPool.Put(sc)
	return inserted
}

// MDelEach is MDel with per-key results: old[i] receives the removed
// value and found[i] whether keys[i] was present; the return value still
// counts hits. old and found must be at least len(keys) long.
func (s *Store) MDelEach(keys, old []uint64, found []bool) int {
	if len(s.shards) == 1 {
		return s.shards[0].DeleteBatchEach(keys, old, found)
	}
	sc := scratchPool.Get().(*batchScratch)
	ids, touched := s.route(keys, sc)
	if cap(sc.subOld) < len(keys) {
		sc.subOld = make([]uint64, len(keys))
		sc.subFound = make([]bool, len(keys))
	}
	deleted := 0
	sub := sc.subKeys
	for si := range s.shards {
		if !touched.has(si) {
			continue
		}
		sub = sub[:0]
		for i, k := range keys {
			if ids[i] == uint8(si) {
				sub = append(sub, k)
			}
		}
		subOld, subFound := sc.subOld[:len(sub)], sc.subFound[:len(sub)]
		deleted += s.shards[si].DeleteBatchEach(sub, subOld, subFound)
		j := 0
		for i := range keys {
			if ids[i] == uint8(si) {
				old[i], found[i] = subOld[j], subFound[j]
				j++
			}
		}
	}
	sc.subKeys = sub
	scratchPool.Put(sc)
	return deleted
}

// MDel deletes every key, returning how many were present. Each touched
// shard is visited once.
func (s *Store) MDel(keys []uint64) int {
	if len(s.shards) == 1 {
		return s.shards[0].DeleteBatch(keys)
	}
	sc := scratchPool.Get().(*batchScratch)
	ids, touched := s.route(keys, sc)
	deleted := 0
	sub := sc.subKeys
	for si := range s.shards {
		if !touched.has(si) {
			continue
		}
		sub = sub[:0]
		for i, k := range keys {
			if ids[i] == uint8(si) {
				sub = append(sub, k)
			}
		}
		deleted += s.shards[si].DeleteBatch(sub)
	}
	sc.subKeys = sub
	scratchPool.Put(sc)
	return deleted
}
