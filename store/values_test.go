package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestStringsBasic pins the scalar surface: set/get/del, replace
// semantics, and the arena recycling a released slot.
func TestStringsBasic(t *testing.T) {
	s := NewStrings(WithShards(2), WithShardBuckets(64), WithoutMaintenance())
	defer s.Close()

	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get on empty store hit")
	}
	if replaced := s.Set("a", "1"); replaced {
		t.Fatal("fresh Set reported replace")
	}
	if replaced := s.Set("a", "2"); !replaced {
		t.Fatal("second Set did not report replace")
	}
	if v, ok := s.Get("a"); !ok || v != "2" {
		t.Fatalf("Get(a) = %q, %v; want 2, true", v, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if !s.Del("a") {
		t.Fatal("Del(a) missed")
	}
	if s.Del("a") {
		t.Fatal("second Del(a) hit")
	}
	// The replace and the delete each released a slot; the next two Puts
	// must recycle instead of growing the arena.
	allocated := s.Values().Allocated()
	if free := s.Values().FreeLen(); free != 2 {
		t.Fatalf("free list = %d, want 2", free)
	}
	s.Set("b", "3")
	s.Set("c", "4")
	if got := s.Values().Allocated(); got != allocated {
		t.Fatalf("arena grew %d → %d with slots on the free list", allocated, got)
	}
}

// TestValuesLoadValidates pins the OPTIK move at the value layer: a slot
// recycled to another key's pair must fail hash validation for the old
// key instead of returning the wrong value.
func TestValuesLoadValidates(t *testing.T) {
	v := NewValues()
	slot := v.Put(10, "ten")
	if got, ok := v.Load(slot, 10); !ok || got != "ten" {
		t.Fatalf("Load = %q, %v", got, ok)
	}
	v.Release(slot)
	slot2 := v.Put(99, "ninety-nine")
	if slot2 != slot {
		t.Fatalf("free list did not recycle: got slot %d, want %d", slot2, slot)
	}
	if _, ok := v.Load(slot, 10); ok {
		t.Fatal("stale Load validated against a recycled slot")
	}
	if got, ok := v.Load(slot, 99); !ok || got != "ninety-nine" {
		t.Fatalf("Load after recycle = %q, %v", got, ok)
	}
}

// TestStringsMGet pins the batched read path, including the recycled-slot
// fallback being invisible to callers.
func TestStringsMGet(t *testing.T) {
	s := NewStrings(WithShards(4), WithShardBuckets(64), WithoutMaintenance())
	defer s.Close()
	for i := 0; i < 100; i++ {
		s.Set(fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d", i))
	}
	keys := []string{"k00", "nope", "k51", "k99", "also-nope"}
	vals := make([]string, len(keys))
	found := make([]bool, len(keys))
	s.MGet(keys, vals, found)
	wantVals := []string{"v00", "", "v51", "v99", ""}
	wantFound := []bool{true, false, true, true, false}
	for i := range keys {
		if vals[i] != wantVals[i] || found[i] != wantFound[i] {
			t.Fatalf("MGet[%d] = %q, %v; want %q, %v", i, vals[i], found[i], wantVals[i], wantFound[i])
		}
	}
}

// TestStringsConcurrentRecycle hammers one hot key set with readers and
// recycling writers: a reader must only ever observe a value that was
// written for the key it asked about, never another key's pair through a
// recycled slot.
func TestStringsConcurrentRecycle(t *testing.T) {
	s := NewStrings(WithShards(2), WithShardBuckets(64), WithoutMaintenance())
	defer s.Close()
	const keys = 8
	key := func(i int) string { return fmt.Sprintf("hot%d", i) }
	val := func(i int) string { return fmt.Sprintf("val-for-%d", i) }
	for i := 0; i < keys; i++ {
		s.Set(key(i), val(i))
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := seed; !stop.Load(); i++ {
				k := i % keys
				s.Del(key(k))
				s.Set(key(k), val(k))
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := seed; !stop.Load(); i++ {
				k := i % keys
				if v, ok := s.Get(key(k)); ok && v != val(k) {
					t.Errorf("Get(%s) = %q, want %q", key(k), v, val(k))
					return
				}
			}
		}(r)
	}
	for i := 0; i < 200000 && !t.Failed(); i++ {
		k := i % keys
		if v, ok := s.Get(key(k)); ok && v != val(k) {
			t.Errorf("Get(%s) = %q, want %q", key(k), v, val(k))
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestHashKeyBytesMatches pins the zero-alloc byte hasher to the string
// one, sentinel clamping included.
func TestHashKeyBytesMatches(t *testing.T) {
	for _, k := range []string{"", "a", "user:0042", "\x00\xff", "the quick brown fox"} {
		if HashKey(k) != HashKeyBytes([]byte(k)) {
			t.Fatalf("HashKey(%q) = %d != HashKeyBytes = %d", k, HashKey(k), HashKeyBytes([]byte(k)))
		}
	}
	if HashKey("") == 0 {
		t.Fatal("sentinel clamp missing")
	}
}

// TestStringsHashedBatches drives the hash-level batch APIs end to end
// against the scalar surface: same outcomes, value-slot conservation
// (every replaced/deleted slot recycles through the free list), and
// duplicate hashes applying in order.
func TestStringsHashedBatches(t *testing.T) {
	s := NewStrings(WithShards(4), WithShardBuckets(64), WithoutMaintenance())
	defer s.Close()
	keys := []string{"a", "b", "a", "c"}
	hashes := make([]uint64, len(keys))
	for i, k := range keys {
		hashes[i] = HashKey(k)
	}
	vals := []string{"1", "2", "3", "4"}
	replaced := make([]bool, len(keys))
	if ins := s.MSetHashed(hashes, vals, replaced); ins != 3 {
		t.Fatalf("MSetHashed fresh = %d, want 3", ins)
	}
	if replaced[0] || replaced[1] || !replaced[2] || replaced[3] {
		t.Fatalf("MSetHashed replaced = %v", replaced)
	}
	// The duplicate's first slot must have recycled.
	if got := s.Values().FreeLen(); got != 1 {
		t.Fatalf("FreeLen = %d after duplicate overwrite, want 1", got)
	}
	if v, ok := s.Get("a"); !ok || v != "3" {
		t.Fatalf(`Get("a") = %q,%v; want "3" (last duplicate wins)`, v, ok)
	}
	outVals := make([]string, len(keys))
	found := make([]bool, len(keys))
	s.MGetHashed(hashes, outVals, found)
	want := []string{"3", "2", "3", "4"}
	for i := range keys {
		if !found[i] || outVals[i] != want[i] {
			t.Fatalf("MGetHashed[%d] = %q,%v; want %q", i, outVals[i], found[i], want[i])
		}
	}
	delHashes := []uint64{hashes[0], HashKey("missing"), hashes[0], hashes[3]}
	delFound := make([]bool, len(delHashes))
	if del := s.MDelHashed(delHashes, delFound); del != 2 {
		t.Fatalf("MDelHashed = %d, want 2", del)
	}
	if !delFound[0] || delFound[1] || delFound[2] || !delFound[3] {
		t.Fatalf("MDelHashed found = %v", delFound)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	// 4 puts, 3 live slots released (1 dup overwrite + 2 deletes): the
	// free list carries all of them for the next Put to recycle.
	if got := s.Values().FreeLen(); got != 3 {
		t.Fatalf("FreeLen = %d, want 3", got)
	}
	if s.Set("e", "9"); s.Values().Allocated() != 4 {
		t.Fatalf("Allocated = %d: Set did not recycle a batch-released slot", s.Values().Allocated())
	}
}

// TestStringsHashedBatchConcurrent races hashed batch writers/deleters
// with scalar readers on an overlapping keyspace; under -race this is
// the data-race coverage for the batch release path, and the final Len
// must match the model of net inserts.
func TestStringsHashedBatchConcurrent(t *testing.T) {
	s := NewStrings(WithShards(4), WithShardBuckets(64), WithoutMaintenance())
	defer s.Close()
	const workers, iters, span = 4, 300, 128
	var net int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rnd := seed
			next := func() uint64 { rnd ^= rnd << 13; rnd ^= rnd >> 7; rnd ^= rnd << 17; return rnd }
			hashes := make([]uint64, 8)
			vals := make([]string, 8)
			outV := make([]string, 8)
			flags := make([]bool, 8)
			local := int64(0)
			for i := 0; i < iters; i++ {
				for j := range hashes {
					hashes[j] = next()%span + 2 // clear of sentinel hashes
					vals[j] = "v"
				}
				switch i % 3 {
				case 0:
					local += int64(s.MSetHashed(hashes, vals, flags))
				case 1:
					local -= int64(s.MDelHashed(hashes, flags))
				default:
					s.MGetHashed(hashes, outV, flags)
				}
			}
			mu.Lock()
			net += local
			mu.Unlock()
		}(uint64(w + 1))
	}
	wg.Wait()
	s.Quiesce()
	if int64(s.Len()) != net {
		t.Fatalf("conservation: Len = %d, net = %d", s.Len(), net)
	}
}
