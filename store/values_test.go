package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestStringsBasic pins the scalar surface: set/get/del, replace
// semantics, and the arena recycling a released slot.
func TestStringsBasic(t *testing.T) {
	s := NewStrings(WithShards(2), WithShardBuckets(64), WithoutMaintenance())
	defer s.Close()

	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get on empty store hit")
	}
	if replaced := s.Set("a", "1"); replaced {
		t.Fatal("fresh Set reported replace")
	}
	if replaced := s.Set("a", "2"); !replaced {
		t.Fatal("second Set did not report replace")
	}
	if v, ok := s.Get("a"); !ok || v != "2" {
		t.Fatalf("Get(a) = %q, %v; want 2, true", v, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if !s.Del("a") {
		t.Fatal("Del(a) missed")
	}
	if s.Del("a") {
		t.Fatal("second Del(a) hit")
	}
	// The replace and the delete each released a slot; the next two Puts
	// must recycle instead of growing the arena.
	allocated := s.Values().Allocated()
	if free := s.Values().FreeLen(); free != 2 {
		t.Fatalf("free list = %d, want 2", free)
	}
	s.Set("b", "3")
	s.Set("c", "4")
	if got := s.Values().Allocated(); got != allocated {
		t.Fatalf("arena grew %d → %d with slots on the free list", allocated, got)
	}
}

// TestValuesLoadValidates pins the OPTIK move at the value layer: a slot
// recycled to another key's pair must fail hash validation for the old
// key instead of returning the wrong value.
func TestValuesLoadValidates(t *testing.T) {
	v := NewValues()
	slot := v.Put(10, "ten")
	if got, ok := v.Load(slot, 10); !ok || got != "ten" {
		t.Fatalf("Load = %q, %v", got, ok)
	}
	v.Release(slot)
	slot2 := v.Put(99, "ninety-nine")
	if slot2 != slot {
		t.Fatalf("free list did not recycle: got slot %d, want %d", slot2, slot)
	}
	if _, ok := v.Load(slot, 10); ok {
		t.Fatal("stale Load validated against a recycled slot")
	}
	if got, ok := v.Load(slot, 99); !ok || got != "ninety-nine" {
		t.Fatalf("Load after recycle = %q, %v", got, ok)
	}
}

// TestStringsMGet pins the batched read path, including the recycled-slot
// fallback being invisible to callers.
func TestStringsMGet(t *testing.T) {
	s := NewStrings(WithShards(4), WithShardBuckets(64), WithoutMaintenance())
	defer s.Close()
	for i := 0; i < 100; i++ {
		s.Set(fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d", i))
	}
	keys := []string{"k00", "nope", "k51", "k99", "also-nope"}
	vals := make([]string, len(keys))
	found := make([]bool, len(keys))
	s.MGet(keys, vals, found)
	wantVals := []string{"v00", "", "v51", "v99", ""}
	wantFound := []bool{true, false, true, true, false}
	for i := range keys {
		if vals[i] != wantVals[i] || found[i] != wantFound[i] {
			t.Fatalf("MGet[%d] = %q, %v; want %q, %v", i, vals[i], found[i], wantVals[i], wantFound[i])
		}
	}
}

// TestStringsConcurrentRecycle hammers one hot key set with readers and
// recycling writers: a reader must only ever observe a value that was
// written for the key it asked about, never another key's pair through a
// recycled slot.
func TestStringsConcurrentRecycle(t *testing.T) {
	s := NewStrings(WithShards(2), WithShardBuckets(64), WithoutMaintenance())
	defer s.Close()
	const keys = 8
	key := func(i int) string { return fmt.Sprintf("hot%d", i) }
	val := func(i int) string { return fmt.Sprintf("val-for-%d", i) }
	for i := 0; i < keys; i++ {
		s.Set(key(i), val(i))
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := seed; !stop.Load(); i++ {
				k := i % keys
				s.Del(key(k))
				s.Set(key(k), val(k))
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := seed; !stop.Load(); i++ {
				k := i % keys
				if v, ok := s.Get(key(k)); ok && v != val(k) {
					t.Errorf("Get(%s) = %q, want %q", key(k), v, val(k))
					return
				}
			}
		}(r)
	}
	for i := 0; i < 200000 && !t.Failed(); i++ {
		k := i % keys
		if v, ok := s.Get(key(k)); ok && v != val(k) {
			t.Errorf("Get(%s) = %q, want %q", key(k), v, val(k))
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestHashKeyBytesMatches pins the zero-alloc byte hasher to the string
// one, sentinel clamping included.
func TestHashKeyBytesMatches(t *testing.T) {
	for _, k := range []string{"", "a", "user:0042", "\x00\xff", "the quick brown fox"} {
		if HashKey(k) != HashKeyBytes([]byte(k)) {
			t.Fatalf("HashKey(%q) = %d != HashKeyBytes = %d", k, HashKey(k), HashKeyBytes([]byte(k)))
		}
	}
	if HashKey("") == 0 {
		t.Fatal("sentinel clamp missing")
	}
}
