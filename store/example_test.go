package store_test

import (
	"fmt"

	"github.com/optik-go/optik/store"
)

// ExampleStore shows the uint64 store surface: upsert Set semantics,
// batched multi-key operations, and aggregated accounting across shards.
func ExampleStore() {
	st := store.New(store.WithShards(4), store.WithShardBuckets(64))
	defer st.Close()

	if _, replaced := st.Set(1, 100); !replaced {
		fmt.Println("fresh insert")
	}
	old, _ := st.Set(1, 101) // upsert: replaces in place
	fmt.Println("replaced value", old)

	keys := []uint64{1, 2, 3}
	vals := []uint64{0, 200, 300}
	fmt.Println("MSet inserted", st.MSet(keys[1:], vals[1:]))

	got := make([]uint64, 3)
	found := make([]bool, 3)
	st.MGet(keys, got, found)
	fmt.Println("MGet", got, found)

	fmt.Println("deleted", st.MDel(keys), "of", 3, "keys; Len now", st.Len())
	// Output:
	// fresh insert
	// replaced value 100
	// MSet inserted 2
	// MGet [101 200 300] [true true true]
	// deleted 3 of 3 keys; Len now 0
}

// ExampleStrings shows the string-valued store the network server
// serves: same sharded OPTIK index, values through the handle arena.
func ExampleStrings() {
	st := store.NewStrings(store.WithShards(2))
	defer st.Close()

	st.Set("user:1", "alice")
	st.Set("user:2", "bob")
	if v, ok := st.Get("user:1"); ok {
		fmt.Println("user:1 =", v)
	}

	vals := make([]string, 3)
	found := make([]bool, 3)
	st.MGet([]string{"user:1", "user:2", "user:3"}, vals, found)
	fmt.Println(vals, found)

	st.Del("user:1")
	fmt.Println("len", st.Len())
	// Output:
	// user:1 = alice
	// [alice bob ] [true true false]
	// len 1
}
