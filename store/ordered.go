// The ordered index: the same lift the package applies to the resizable
// hash table (store.Store), applied to the OPTIK skip list of §5.3 —
// shards behind a router, batched multi-key operations, one shared
// maintenance scheduler — but the router is a RANGE partition, not a hash.
// Hashing would scatter adjacent keys across shards and turn every range
// scan into a full-fleet merge; partitioning the key space into contiguous
// slices keeps a scan's locality (one shard, or a few adjacent ones) and
// makes cross-shard scans a concatenation instead of a merge sort.
//
// The trade against the hash store is explicit: a skewed key distribution
// concentrates load on the shards owning the hot slice, where the hash
// router would spread it. WithKeyMax exists for exactly that reason — tell
// the store the real key ceiling and the partition stretches over the used
// space instead of dedicating almost every shard to keys that never occur.
//
// Reclamation differs from the hash fleet too, deliberately: the hash
// shards each own a private qsbr pool (their readers revalidate buckets,
// so domains never interact), while the ordered shards share ONE domain
// and pool. Skip-list traversals dereference plain fields under an epoch
// pin, every operation borrows a handle, and a shared pool lets a burst on
// one shard reuse towers retired on another — same memory, fewer cold
// allocations — at no extra coordination cost, since handle slots are
// already per-thread-affine.
package store

import (
	"runtime"

	"github.com/optik-go/optik/ds"
	"github.com/optik-go/optik/ds/hashmap"
	"github.com/optik-go/optik/ds/skiplist"
	"github.com/optik-go/optik/internal/core"
	"github.com/optik-go/optik/internal/qsbr"
)

// WithKeyMax declares the largest key the ordered store will hold
// (default ds.MaxKey). The range partition divides [0, max] evenly across
// the shards, so a store holding small keys should declare its real
// ceiling or every key lands on shard 0. Keys above max are still legal —
// they all route to the last shard. Ignored by the hash-routed New.
func WithKeyMax(max uint64) Option {
	return func(o *options) { o.keyMax = max }
}

// orderedShard pairs one skip list with its activity counter; it is the
// unit registered on the shared maintenance scheduler.
type orderedShard struct {
	list *skiplist.Optik
	// count tracks successful updates: AddOp per insert/delete/replace
	// (the op half feeds ActivitySample, the net half a cheap Len — the
	// skip list's own Len is an O(n) walk).
	count *core.Striped
}

var _ hashmap.Maintainer = (*orderedShard)(nil)

// ActivitySample implements hashmap.Maintainer: the monotone op count
// moves on every successful update, so an unchanged sample means the
// shard was untouched since the last poll.
func (sh *orderedShard) ActivitySample() uint64 { return uint64(sh.count.Ops()) }

// MaintainIdle implements hashmap.Maintainer: with the shard idle, sweep
// the (shared) pool so towers retired here reclaim even if no future
// operation ever borrows a handle. The sweep is domain-wide — sibling
// shards benefit too — and cheap when nothing is pending.
func (sh *orderedShard) MaintainIdle(cancel <-chan struct{}) {
	sh.list.Pool().Sweep()
}

// MaintainBusy implements hashmap.Maintainer: a busy skip-list shard needs
// no help — there is no migration to advance, and the operations' own
// handle borrows drive the reclamation epoch.
func (sh *orderedShard) MaintainBusy() {}

// Ordered is a sharded ordered key-value store over uint64 keys: point
// operations with the same surface as Store, plus the ordered family —
// Scan, Min, Max — that a hash store cannot serve. All methods are safe
// for concurrent use. Keys follow the library's range
// ([ds.MinKey, ds.MaxKey]).
type Ordered struct {
	shards []*orderedShard
	// shift maps a key to its slice of the partition: shard = key>>shift,
	// clamped to the last shard (the clamp absorbs both keys above the
	// declared ceiling and a ceiling that is not a multiple of the shard
	// count).
	shift uint
	pool  *qsbr.Pool
	sched *hashmap.Scheduler
}

var _ ds.Set = (*Ordered)(nil)

// NewOrdered returns an ordered store. WithShards, WithMaintenanceInterval
// and WithoutMaintenance mean what they do for New; WithKeyMax bounds the
// range partition; WithShardBuckets does not apply.
func NewOrdered(opts ...Option) *Ordered {
	o := options{
		keyMax:      ds.MaxKey,
		maintenance: true,
	}
	for _, opt := range opts {
		opt(&o)
	}
	if o.shards <= 0 {
		o.shards = runtime.GOMAXPROCS(0)
	}
	n := 1
	for n < o.shards && n < maxShards {
		n <<= 1
	}
	var shift uint
	for shift < 64 && o.keyMax>>shift >= uint64(n) {
		shift++
	}
	domain := qsbr.NewDomain()
	s := &Ordered{
		shards: make([]*orderedShard, n),
		shift:  shift,
		pool:   qsbr.NewPool(domain, 0),
	}
	for i := range s.shards {
		s.shards[i] = &orderedShard{
			list:  skiplist.NewOptikPool(s.pool),
			count: core.NewStriped(0),
		}
	}
	if o.maintenance {
		s.sched = hashmap.NewScheduler(o.interval)
		for _, sh := range s.shards {
			s.sched.Register(sh)
		}
	}
	return s
}

// Close stops the shared maintenance scheduler; the shards stay usable.
// Idempotent.
func (s *Ordered) Close() {
	if s.sched != nil {
		s.sched.Stop()
	}
}

// shardID routes a key to its partition slice.
func (s *Ordered) shardID(key uint64) int {
	id := int(key >> s.shift)
	if id >= len(s.shards) {
		id = len(s.shards) - 1
	}
	return id
}

func (s *Ordered) shardFor(key uint64) *orderedShard {
	return s.shards[s.shardID(key)]
}

// Get returns the value stored under key, if present. Lock-free.
func (s *Ordered) Get(key uint64) (uint64, bool) {
	return s.shardFor(key).list.Search(key)
}

// Set stores key→val, inserting or replacing in place, and returns the
// previous value and whether one was replaced.
func (s *Ordered) Set(key, val uint64) (uint64, bool) {
	sh := s.shardFor(key)
	old, replaced := sh.list.Upsert(key, val)
	if replaced {
		sh.count.AddOp(key, 0)
	} else {
		sh.count.AddOp(key, 1)
	}
	return old, replaced
}

// Del removes key, returning its value, if present.
func (s *Ordered) Del(key uint64) (uint64, bool) {
	sh := s.shardFor(key)
	val, ok := sh.list.Delete(key)
	if ok {
		sh.count.AddOp(key, -1)
	}
	return val, ok
}

// Search implements ds.Set (alias of Get).
func (s *Ordered) Search(key uint64) (uint64, bool) { return s.Get(key) }

// Insert implements ds.Set: strict insert-if-absent.
func (s *Ordered) Insert(key, val uint64) bool {
	sh := s.shardFor(key)
	if !sh.list.Insert(key, val) {
		return false
	}
	sh.count.AddOp(key, 1)
	return true
}

// Delete implements ds.Set (alias of Del).
func (s *Ordered) Delete(key uint64) (uint64, bool) { return s.Del(key) }

// Len sums the shard counters: O(shards × stripes), independent of the
// element count — the skip lists' own O(n) walks never run. Same
// non-linearizable contract as every Len in the library.
func (s *Ordered) Len() int {
	n := int64(0)
	for _, sh := range s.shards {
		n += sh.count.Net()
	}
	return int(n)
}

// Shards returns the shard count.
func (s *Ordered) Shards() int { return len(s.shards) }

// ReclaimStats reports the shared domain's lifetime tower reclamation
// counters (racy snapshot; for monitoring).
func (s *Ordered) ReclaimStats() (retired, reclaimed, reused uint64) {
	return s.pool.Domain().Stats()
}

// Quiesce drains pending tower retirements deterministically: with no
// concurrent operations, every retired tower is on the free list when it
// returns. Operators normally never call it — the scheduler's idle sweeps
// do the same work — but tests and workload phase transitions want the
// determinism. Bounded, so it terminates under concurrent traffic too
// (where "fully drained" is a moving target).
func (s *Ordered) Quiesce() {
	for i := 0; i < 4; i++ {
		retired, reclaimed, _ := s.pool.Domain().Stats()
		if retired == reclaimed {
			return
		}
		s.pool.Sweep()
	}
}

// Scan copies the live entries with from <= key <= to, ascending, into
// keys/vals (same length), returning how many were filled. The range
// partition makes this a concatenation: shards are visited in partition
// order and each contributes its slice of the window already sorted, so
// no merge is needed. Cursoring works by resumption key — call again with
// from = lastKey+1 — which survives any amount of concurrent churn
// because the position is a key, not an index (see the skip list's
// ScanRange for the no-skip/no-repeat argument).
func (s *Ordered) Scan(from, to uint64, keys, vals []uint64) int {
	ds.CheckKey(from)
	ds.CheckKey(to)
	if from > to || len(keys) == 0 {
		return 0
	}
	n := 0
	for si := s.shardID(from); si <= s.shardID(to); si++ {
		n += s.shards[si].list.ScanRange(from, to, keys[n:], vals[n:])
		if n == len(keys) {
			break
		}
	}
	return n
}

// Min returns the smallest live key and its value; ok is false on an
// empty store. Shards are probed in partition order, so the first hit is
// the global minimum.
func (s *Ordered) Min() (key, val uint64, ok bool) {
	for _, sh := range s.shards {
		if k, v, ok := sh.list.Min(); ok {
			return k, v, true
		}
	}
	return 0, 0, false
}

// Max returns the largest live key and its value; ok is false on an
// empty store.
func (s *Ordered) Max() (key, val uint64, ok bool) {
	for i := len(s.shards) - 1; i >= 0; i-- {
		if k, v, ok := s.shards[i].list.Max(); ok {
			return k, v, true
		}
	}
	return 0, 0, false
}

// orderedRoute computes every key's shard id into sc.ids and the
// touched-shard bitset — the ordered counterpart of Store.route, with the
// partition function in place of the hash.
func (s *Ordered) orderedRoute(keys []uint64, sc *batchScratch) ([]uint8, shardSet) {
	if cap(sc.ids) < len(keys) {
		sc.ids = make([]uint8, len(keys))
	}
	ids := sc.ids[:len(keys)]
	var touched shardSet
	for i, k := range keys {
		id := uint8(s.shardID(k))
		ids[i] = id
		touched.add(int(id))
	}
	return ids, touched
}

// MGet looks up every keys[i], storing the value into vals[i] and
// presence into found[i]; vals and found must be at least len(keys) long.
// Each touched shard is visited once under a single qsbr pin.
func (s *Ordered) MGet(keys, vals []uint64, found []bool) {
	if len(s.shards) == 1 {
		s.shards[0].list.SearchBatch(keys, vals, found)
		return
	}
	sc := scratchPool.Get().(*batchScratch)
	ids, touched := s.orderedRoute(keys, sc)
	if cap(sc.subOld) < len(keys) {
		sc.subOld = make([]uint64, len(keys))
		sc.subFound = make([]bool, len(keys))
	}
	sub := sc.subKeys
	for si := range s.shards {
		if !touched.has(si) {
			continue
		}
		sub = sub[:0]
		for i, k := range keys {
			if ids[i] == uint8(si) {
				sub = append(sub, k)
			}
		}
		sh := s.shards[si]
		subVals, subFound := sc.subOld[:len(sub)], sc.subFound[:len(sub)]
		sh.list.SearchBatch(sub, subVals, subFound)
		j := 0
		for i := range keys {
			if ids[i] == uint8(si) {
				vals[i], found[i] = subVals[j], subFound[j]
				j++
			}
		}
	}
	sc.subKeys = sub
	scratchPool.Put(sc)
}

// MSetEach applies Set(keys[i], vals[i]) for every i with per-key
// results — old[i] the replaced value, replaced[i] whether one existed —
// and returns the fresh-insert count. Within one shard keys apply in
// arrival order (duplicates route to the same shard), exactly as
// sequential Sets.
func (s *Ordered) MSetEach(keys, vals, old []uint64, replaced []bool) int {
	sc := scratchPool.Get().(*batchScratch)
	ids, touched := s.orderedRoute(keys, sc)
	if cap(sc.subOld) < len(keys) {
		sc.subOld = make([]uint64, len(keys))
		sc.subFound = make([]bool, len(keys))
	}
	inserted := 0
	subKeys, subVals := sc.subKeys, sc.subVals
	for si := range s.shards {
		if !touched.has(si) {
			continue
		}
		subKeys, subVals = subKeys[:0], subVals[:0]
		for i, k := range keys {
			if ids[i] == uint8(si) {
				subKeys = append(subKeys, k)
				subVals = append(subVals, vals[i])
			}
		}
		sh := s.shards[si]
		subOld, subRepl := sc.subOld[:len(subKeys)], sc.subFound[:len(subKeys)]
		ins := sh.list.UpsertBatchEach(subKeys, subVals, subOld, subRepl)
		inserted += ins
		for j, k := range subKeys {
			if subRepl[j] {
				sh.count.AddOp(k, 0)
			} else {
				sh.count.AddOp(k, 1)
			}
		}
		j := 0
		for i := range keys {
			if ids[i] == uint8(si) {
				old[i], replaced[i] = subOld[j], subRepl[j]
				j++
			}
		}
	}
	sc.subKeys, sc.subVals = subKeys, subVals
	scratchPool.Put(sc)
	return inserted
}

// MSet applies Set(keys[i], vals[i]) for every i, returning how many keys
// were newly inserted.
func (s *Ordered) MSet(keys, vals []uint64) int {
	sc := scratchPool.Get().(*batchScratch)
	ids, touched := s.orderedRoute(keys, sc)
	if cap(sc.subOld) < len(keys) {
		sc.subOld = make([]uint64, len(keys))
		sc.subFound = make([]bool, len(keys))
	}
	inserted := 0
	subKeys, subVals := sc.subKeys, sc.subVals
	for si := range s.shards {
		if !touched.has(si) {
			continue
		}
		subKeys, subVals = subKeys[:0], subVals[:0]
		for i, k := range keys {
			if ids[i] == uint8(si) {
				subKeys = append(subKeys, k)
				subVals = append(subVals, vals[i])
			}
		}
		sh := s.shards[si]
		subOld, subRepl := sc.subOld[:len(subKeys)], sc.subFound[:len(subKeys)]
		inserted += sh.list.UpsertBatchEach(subKeys, subVals, subOld, subRepl)
		for j, k := range subKeys {
			if subRepl[j] {
				sh.count.AddOp(k, 0)
			} else {
				sh.count.AddOp(k, 1)
			}
		}
	}
	sc.subKeys, sc.subVals = subKeys, subVals
	scratchPool.Put(sc)
	return inserted
}

// MDelEach deletes every keys[i] with per-key results — old[i] the
// removed value, found[i] presence — returning the hit count.
func (s *Ordered) MDelEach(keys, old []uint64, found []bool) int {
	sc := scratchPool.Get().(*batchScratch)
	ids, touched := s.orderedRoute(keys, sc)
	if cap(sc.subOld) < len(keys) {
		sc.subOld = make([]uint64, len(keys))
		sc.subFound = make([]bool, len(keys))
	}
	deleted := 0
	sub := sc.subKeys
	for si := range s.shards {
		if !touched.has(si) {
			continue
		}
		sub = sub[:0]
		for i, k := range keys {
			if ids[i] == uint8(si) {
				sub = append(sub, k)
			}
		}
		sh := s.shards[si]
		subOld, subFound := sc.subOld[:len(sub)], sc.subFound[:len(sub)]
		deleted += sh.list.DeleteBatchEach(sub, subOld, subFound)
		for j, k := range sub {
			if subFound[j] {
				sh.count.AddOp(k, -1)
			}
		}
		j := 0
		for i := range keys {
			if ids[i] == uint8(si) {
				old[i], found[i] = subOld[j], subFound[j]
				j++
			}
		}
	}
	sc.subKeys = sub
	scratchPool.Put(sc)
	return deleted
}

// MDel deletes every key, returning how many were present.
func (s *Ordered) MDel(keys []uint64) int {
	sc := scratchPool.Get().(*batchScratch)
	ids, touched := s.orderedRoute(keys, sc)
	if cap(sc.subOld) < len(keys) {
		sc.subOld = make([]uint64, len(keys))
		sc.subFound = make([]bool, len(keys))
	}
	deleted := 0
	sub := sc.subKeys
	for si := range s.shards {
		if !touched.has(si) {
			continue
		}
		sub = sub[:0]
		for i, k := range keys {
			if ids[i] == uint8(si) {
				sub = append(sub, k)
			}
		}
		sh := s.shards[si]
		subOld, subFound := sc.subOld[:len(sub)], sc.subFound[:len(sub)]
		deleted += sh.list.DeleteBatchEach(sub, subOld, subFound)
		for j, k := range sub {
			if subFound[j] {
				sh.count.AddOp(k, -1)
			}
		}
	}
	sc.subKeys = sub
	scratchPool.Put(sc)
	return deleted
}

// SortedStrings maps uint64 keys to string values with range queries: an
// Ordered index from keys to value handles in a Values arena — the
// ordered face of Strings. The arena's validation hash IS the key (keys
// already live in [ds.MinKey, ds.MaxKey], clear of the clamp sentinels),
// so the read path is the same optimistic load-validate-retry as Strings.
//
// Arbitrary string KEYS are deliberately not supported: hashing a string
// key would destroy the ordering this store exists to serve. Callers with
// naturally ordered identifiers (scores, timestamps, sequence numbers)
// encode them as uint64s; everything else belongs in Strings.
type SortedStrings struct {
	index  *Ordered
	values *Values
}

// NewSortedStrings returns an ordered string store; the options configure
// the underlying index exactly as in NewOrdered.
func NewSortedStrings(opts ...Option) *SortedStrings {
	return &SortedStrings{index: NewOrdered(opts...), values: NewValues()}
}

// Index exposes the underlying ordered index for stats aggregation.
func (s *SortedStrings) Index() *Ordered { return s.index }

// Values exposes the underlying arena for stats aggregation.
func (s *SortedStrings) Values() *Values { return s.values }

// Close stops the index's maintenance scheduler.
func (s *SortedStrings) Close() { s.index.Close() }

// Quiesce drains the index's pending tower retirements.
func (s *SortedStrings) Quiesce() { s.index.Quiesce() }

// Len returns the live key count.
func (s *SortedStrings) Len() int { return s.index.Len() }

// Set stores key→value, returning true if it replaced an existing value.
func (s *SortedStrings) Set(key uint64, value string) bool {
	ds.CheckKey(key)
	slot := s.values.Put(key, value)
	old, replaced := s.index.Set(key, slot)
	if replaced {
		s.values.Release(old)
	}
	return replaced
}

// Get returns the value stored under key: optimistic read, validate the
// pair still belongs to the key, retry on recycling conflict.
func (s *SortedStrings) Get(key uint64) (string, bool) {
	for {
		slot, ok := s.index.Get(key)
		if !ok {
			return "", false
		}
		if val, ok := s.values.Load(slot, key); ok {
			return val, true
		}
	}
}

// Del removes key, reporting whether it was present.
func (s *SortedStrings) Del(key uint64) bool {
	old, ok := s.index.Del(key)
	if !ok {
		return false
	}
	s.values.Release(old)
	return true
}

// MGet looks up every keys[i] into vals[i]/found[i] (at least len(keys)
// long); the index pass is shard-batched.
func (s *SortedStrings) MGet(keys []uint64, vals []string, found []bool) {
	sc := grabStrScratch(len(keys))
	defer strScratchPool.Put(sc)
	slots := sc.slots[:len(keys)]
	s.index.MGet(keys, slots, found)
	for i, k := range keys {
		if !found[i] {
			vals[i] = ""
			continue
		}
		if v, ok := s.values.Load(slots[i], k); ok {
			vals[i] = v
		} else {
			vals[i], found[i] = s.Get(k)
		}
	}
}

// MSet stores vals[i] under keys[i], recording into replaced[i] whether a
// value was overwritten, and returns the fresh-insert count. Duplicate
// keys apply in order, exactly as sequential Sets.
func (s *SortedStrings) MSet(keys []uint64, vals []string, replaced []bool) int {
	sc := grabStrScratch(len(keys))
	defer strScratchPool.Put(sc)
	slots, old := sc.slots[:len(keys)], sc.old[:len(keys)]
	for i, k := range keys {
		ds.CheckKey(k)
		slots[i] = s.values.Put(k, vals[i])
	}
	inserted := s.index.MSetEach(keys, slots, old, replaced)
	rel := slots[:0]
	for i := range keys {
		if replaced[i] {
			rel = append(rel, old[i])
		}
	}
	s.values.ReleaseBatch(rel)
	return inserted
}

// MDel removes every keys[i], recording presence into found[i], and
// returns the hit count.
func (s *SortedStrings) MDel(keys []uint64, found []bool) int {
	sc := grabStrScratch(len(keys))
	defer strScratchPool.Put(sc)
	old := sc.old[:len(keys)]
	deleted := s.index.MDelEach(keys, old, found)
	rel := sc.slots[:0]
	for i := range keys {
		if found[i] {
			rel = append(rel, old[i])
		}
	}
	s.values.ReleaseBatch(rel)
	return deleted
}

// Scan copies live entries with from <= key <= to, ascending, into
// keys/vals (same length), returning how many were filled. An entry whose
// value slot recycles between the index scan and the arena load is
// re-read through Get; if the key was deleted meanwhile it is dropped and
// the index scan resumes past the last visited key to refill the freed
// slots. A short return therefore always means the range is exhausted,
// never that churn shrank the page — paging callers (the server's SCAN
// cursor) treat a short page as end-of-range, so a churn-shrunk page
// would silently skip every key between the lost entries and the range
// end.
func (s *SortedStrings) Scan(from, to uint64, keys []uint64, vals []string) int {
	sc := grabStrScratch(len(keys))
	defer strScratchPool.Put(sc)
	w := 0
	for w < len(keys) {
		kbuf := keys[w:]
		slots := sc.slots[:len(kbuf)]
		n := s.index.Scan(from, to, kbuf, slots)
		if n == 0 {
			break
		}
		// Read before compaction below may overwrite kbuf[n-1] in place.
		last := kbuf[n-1]
		for i := 0; i < n; i++ {
			v, ok := s.values.Load(slots[i], kbuf[i])
			if !ok {
				v, ok = s.Get(kbuf[i])
			}
			if !ok {
				continue // deleted between index scan and load
			}
			keys[w], vals[w] = kbuf[i], v
			w++
		}
		if n < len(kbuf) || last >= to {
			break // the index itself ran out of keys in range
		}
		from = last + 1
	}
	return w
}

// Min returns the smallest live key and its value; ok is false on an
// empty store.
func (s *SortedStrings) Min() (uint64, string, bool) {
	for {
		k, slot, ok := s.index.Min()
		if !ok {
			return 0, "", false
		}
		if v, ok := s.values.Load(slot, k); ok {
			return k, v, true
		}
		// Slot recycled mid-read; the key may have moved or gone. Retry
		// through the scalar path, falling back to a fresh Min if the key
		// vanished entirely.
		if v, ok := s.Get(k); ok {
			return k, v, true
		}
	}
}

// Max returns the largest live key and its value; ok is false on an
// empty store.
func (s *SortedStrings) Max() (uint64, string, bool) {
	for {
		k, slot, ok := s.index.Max()
		if !ok {
			return 0, "", false
		}
		if v, ok := s.values.Load(slot, k); ok {
			return k, v, true
		}
		if v, ok := s.Get(k); ok {
			return k, v, true
		}
	}
}
