package store

import (
	"fmt"
	"math"
	"sync/atomic"
	"testing"

	"github.com/optik-go/optik/internal/rng"
)

// testClock is the injected deterministic clock every TTL test drives:
// time moves only when the test says so, so expiry behavior reproduces
// exactly — no sleeps anywhere in this file.
type testClock struct{ now atomic.Int64 }

func newTestClock(start int64) *testClock {
	c := &testClock{}
	c.now.Store(start)
	return c
}

func (c *testClock) fn() func() int64 { return c.now.Load }
func (c *testClock) advance(d int64)  { c.now.Add(d) }
func (c *testClock) set(t int64)      { c.now.Store(t) }

// ttlRef is the reference model the property test checks the store
// against: a plain map of value+deadline, normalized so an entry past
// its deadline is absent.
type ttlRef struct {
	m   map[string]ttlRefEntry
	now func() int64
}

type ttlRefEntry struct {
	val      string
	deadline int64 // 0 = no TTL
}

func newTTLRef(now func() int64) *ttlRef {
	return &ttlRef{m: make(map[string]ttlRefEntry), now: now}
}

func (r *ttlRef) live(key string) (ttlRefEntry, bool) {
	e, ok := r.m[key]
	if !ok {
		return e, false
	}
	if e.deadline != 0 && e.deadline <= r.now() {
		delete(r.m, key)
		return e, false
	}
	return e, true
}

func (r *ttlRef) set(key, val string) bool {
	_, lived := r.live(key)
	r.m[key] = ttlRefEntry{val: val}
	return lived
}

func (r *ttlRef) setEX(key, val string, deadline int64) bool {
	_, lived := r.live(key)
	r.m[key] = ttlRefEntry{val: val, deadline: deadline}
	return lived
}

func (r *ttlRef) get(key string) (string, bool) {
	e, ok := r.live(key)
	if !ok {
		return "", false
	}
	return e.val, true
}

func (r *ttlRef) del(key string) bool {
	_, lived := r.live(key)
	delete(r.m, key)
	return lived
}

func (r *ttlRef) expireAt(key string, deadline int64) bool {
	e, lived := r.live(key)
	if !lived {
		return false
	}
	if deadline <= 0 {
		deadline = 1
	}
	e.deadline = deadline
	r.m[key] = e
	return true
}

func (r *ttlRef) persist(key string) bool {
	e, lived := r.live(key)
	if !lived || e.deadline == 0 {
		return false
	}
	e.deadline = 0
	r.m[key] = e
	return true
}

func (r *ttlRef) ttl(key string) int64 {
	e, lived := r.live(key)
	if !lived {
		return -2
	}
	if e.deadline == 0 {
		return -1
	}
	return (e.deadline - r.now() + nsPerSec - 1) / nsPerSec
}

// TestTTLProperty drives randomized TTL op sequences against the
// reference model under the injected clock, checking every return value
// and, periodically, full observable equivalence over the key space.
func TestTTLProperty(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			clk := newTestClock(1_000_000_000)
			s := NewStrings(WithClock(clk.fn()), WithShards(4), WithShardBuckets(16), WithoutMaintenance())
			ref := newTTLRef(clk.fn())
			r := rng.NewXorshift(seed)
			const keySpace = 32
			key := func() string { return fmt.Sprintf("k%02d", r.Intn(keySpace)) }
			for step := 0; step < 20_000; step++ {
				switch op := r.Intn(100); {
				case op < 20: // Get
					k := key()
					gv, gok := s.Get(k)
					wv, wok := ref.get(k)
					if gok != wok || gv != wv {
						t.Fatalf("step %d: Get(%s) = (%q,%v), want (%q,%v)", step, k, gv, gok, wv, wok)
					}
				case op < 40: // Set (clears TTL)
					k, v := key(), fmt.Sprintf("v%d", step)
					if got, want := s.Set(k, v), ref.set(k, v); got != want {
						t.Fatalf("step %d: Set(%s) replaced = %v, want %v", step, k, got, want)
					}
				case op < 55: // SetEX
					k, v := key(), fmt.Sprintf("x%d", step)
					secs := int64(1 + r.Intn(5))
					want := ref.setEX(k, v, clk.now.Load()+secs*nsPerSec)
					if got := s.SetEX(k, v, secs); got != want {
						t.Fatalf("step %d: SetEX(%s) replaced = %v, want %v", step, k, got, want)
					}
				case op < 65: // ExpireAt (absolute, may be in the past)
					k := key()
					deadline := clk.now.Load() + int64(r.Intn(7)-2)*nsPerSec
					if got, want := s.ExpireAt(k, deadline), ref.expireAt(k, deadline); got != want {
						t.Fatalf("step %d: ExpireAt(%s,%d) = %v, want %v", step, k, deadline, got, want)
					}
				case op < 72: // Expire (relative; secs<=0 deletes)
					k := key()
					secs := int64(r.Intn(6) - 2)
					var want bool
					if secs <= 0 {
						want = ref.del(k)
					} else {
						want = ref.expireAt(k, clk.now.Load()+secs*nsPerSec)
					}
					if got := s.Expire(k, secs); got != want {
						t.Fatalf("step %d: Expire(%s,%d) = %v, want %v", step, k, secs, got, want)
					}
				case op < 79: // Persist
					k := key()
					if got, want := s.Persist(k), ref.persist(k); got != want {
						t.Fatalf("step %d: Persist(%s) = %v, want %v", step, k, got, want)
					}
				case op < 86: // TTL
					k := key()
					if got, want := s.TTL(k), ref.ttl(k); got != want {
						t.Fatalf("step %d: TTL(%s) = %d, want %d", step, k, got, want)
					}
				case op < 93: // Del
					k := key()
					if got, want := s.Del(k), ref.del(k); got != want {
						t.Fatalf("step %d: Del(%s) = %v, want %v", step, k, got, want)
					}
				default: // advance the clock up to 2.5s
					clk.advance(int64(r.Intn(2_500_000_000)))
				}
				if step%997 == 0 {
					for i := 0; i < keySpace; i++ {
						k := fmt.Sprintf("k%02d", i)
						gv, gok := s.Get(k)
						wv, wok := ref.get(k)
						if gok != wok || gv != wv {
							t.Fatalf("step %d: audit Get(%s) = (%q,%v), want (%q,%v)", step, k, gv, gok, wv, wok)
						}
					}
				}
			}
		})
	}
}

// TestTTLSemanticsEdges pins the documented edge semantics one by one.
func TestTTLSemanticsEdges(t *testing.T) {
	clk := newTestClock(1_000_000_000)
	s := NewStrings(WithClock(clk.fn()), WithShards(1), WithoutMaintenance())

	// Expire on a missing key reports false and creates nothing.
	if s.Expire("missing", 10) {
		t.Fatal("Expire(missing) = true")
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Expire(missing) materialized a key")
	}
	if got := s.TTL("missing"); got != -2 {
		t.Fatalf("TTL(missing) = %d, want -2", got)
	}

	// SetEX then plain Set: the overwrite clears the TTL.
	s.SetEX("k", "a", 5)
	if got := s.TTL("k"); got != 5 {
		t.Fatalf("TTL after SetEX = %d, want 5", got)
	}
	if !s.Set("k", "b") {
		t.Fatal("Set over live SetEX entry should report replaced")
	}
	if got := s.TTL("k"); got != -1 {
		t.Fatalf("TTL after overwriting Set = %d, want -1 (cleared)", got)
	}
	clk.advance(10 * nsPerSec)
	if v, ok := s.Get("k"); !ok || v != "b" {
		t.Fatalf("key with cleared TTL expired: (%q,%v)", v, ok)
	}

	// SetEX over an expired entry is a fresh insert.
	s.SetEX("e", "1", 1)
	clk.advance(2 * nsPerSec)
	if s.SetEX("e", "2", 1) {
		t.Fatal("SetEX over expired entry reported replaced")
	}

	// Expiry boundary: an entry is live strictly before its deadline and
	// a miss at it.
	s.SetEX("b", "v", 3)
	clk.advance(3*nsPerSec - 1)
	if _, ok := s.Get("b"); !ok {
		t.Fatal("entry expired before its deadline")
	}
	if got := s.TTL("b"); got != 1 {
		t.Fatalf("TTL 1ns before deadline = %d, want 1 (ceil)", got)
	}
	clk.advance(1)
	if _, ok := s.Get("b"); ok {
		t.Fatal("entry still live at its deadline")
	}
	if got := s.TTL("b"); got != -2 {
		t.Fatalf("TTL at deadline = %d, want -2", got)
	}

	// Del of an expired entry is a miss; Persist on TTL-less is false.
	s.SetEX("d", "v", 1)
	clk.advance(2 * nsPerSec)
	if s.Del("d") {
		t.Fatal("Del(expired) = true")
	}
	s.Set("p", "v")
	if s.Persist("p") {
		t.Fatal("Persist on TTL-less key = true")
	}
	if !s.Expire("p", 100) || !s.Persist("p") {
		t.Fatal("Expire+Persist round trip failed")
	}
	if got := s.TTL("p"); got != -1 {
		t.Fatalf("TTL after Persist = %d, want -1", got)
	}

	// Overflow seconds saturate instead of wrapping.
	s.Set("o", "v")
	if !s.Expire("o", math.MaxInt64/2) {
		t.Fatal("Expire with huge secs failed")
	}
	if got := s.TTL("o"); got <= 0 {
		t.Fatalf("TTL after saturating Expire = %d, want positive", got)
	}
	if _, ok := s.Get("o"); !ok {
		t.Fatal("saturated-TTL entry not live")
	}
}

// TestTTLMGetBatchExpiry pins the batched read path: expired entries are
// misses in MGet exactly as in Get, and live ones still serve.
func TestTTLMGetBatchExpiry(t *testing.T) {
	clk := newTestClock(1_000_000_000)
	s := NewStrings(WithClock(clk.fn()), WithShards(2), WithoutMaintenance())
	keys := make([]string, 8)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
		if i%2 == 0 {
			s.SetEX(keys[i], "ephemeral", 1)
		} else {
			s.Set(keys[i], "durable")
		}
	}
	vals := make([]string, len(keys))
	found := make([]bool, len(keys))
	s.MGet(keys, vals, found)
	for i := range keys {
		if !found[i] {
			t.Fatalf("pre-expiry MGet missed %s", keys[i])
		}
	}
	clk.advance(2 * nsPerSec)
	s.MGet(keys, vals, found)
	for i := range keys {
		wantLive := i%2 == 1
		if found[i] != wantLive {
			t.Fatalf("post-expiry MGet %s: found=%v, want %v", keys[i], found[i], wantLive)
		}
		if wantLive && vals[i] != "durable" {
			t.Fatalf("post-expiry MGet %s = %q", keys[i], vals[i])
		}
	}
}

// TestTTLByteAccounting pins the byte counter: exact on a quiescent
// store, charged at put, credited at release — including releases driven
// by expiry and by the sweep.
func TestTTLByteAccounting(t *testing.T) {
	clk := newTestClock(1_000_000_000)
	s := NewStrings(WithClock(clk.fn()), WithShards(1), WithoutMaintenance())
	if got := s.BytesUsed(); got != 0 {
		t.Fatalf("empty store BytesUsed = %d", got)
	}
	s.Set("a", "0123456789") // 10 bytes
	want := int64(10 + pairOverhead)
	if got := s.BytesUsed(); got != want {
		t.Fatalf("BytesUsed after one Set = %d, want %d", got, want)
	}
	s.Set("a", "01234") // overwrite: 5 bytes replaces 10
	want = 5 + pairOverhead
	if got := s.BytesUsed(); got != want {
		t.Fatalf("BytesUsed after overwrite = %d, want %d", got, want)
	}
	// Expire/Persist rebuild the pair but never change its size.
	s.Expire("a", 100)
	s.Persist("a")
	if got := s.BytesUsed(); got != want {
		t.Fatalf("BytesUsed after Expire+Persist = %d, want %d", got, want)
	}
	s.Del("a")
	if got := s.BytesUsed(); got != 0 {
		t.Fatalf("BytesUsed after Del = %d, want 0", got)
	}
	// Lazy expiry retires the slot and credits its bytes back.
	s.SetEX("e", "xx", 1)
	clk.advance(2 * nsPerSec)
	s.Get("e")
	if got := s.BytesUsed(); got != 0 {
		t.Fatalf("BytesUsed after lazy expiry = %d, want 0", got)
	}
	// The sweep finds expired entries no reader ever touches again.
	for i := 0; i < 50; i++ {
		s.SetEX(fmt.Sprintf("s%d", i), "value", 1)
	}
	clk.advance(2 * nsPerSec)
	s.Quiesce()
	if got := s.BytesUsed(); got != 0 {
		t.Fatalf("BytesUsed after sweep = %d, want 0", got)
	}
	_, swept, _ := s.TTLStats()
	if swept == 0 {
		t.Fatal("sweep retired nothing")
	}
	if got := s.Len(); got != 0 {
		t.Fatalf("Len after sweep = %d, want 0", got)
	}
}

// TestByteBudgetEviction pins the budget enforcement: exceed the budget,
// run the governance pass, land at or under it — and prefer evicting
// cold entries over recently touched ones.
func TestByteBudgetEviction(t *testing.T) {
	clk := newTestClock(1_000_000_000)
	const (
		valLen = 100
		perKey = valLen + pairOverhead
		hot    = 50
		cold   = 40
		fill   = 60
		budget = int64(perKey * 100) // room for 100 of the 150 keys
	)
	s := NewStrings(WithClock(clk.fn()), WithShards(2), WithoutMaintenance(), WithByteBudget(budget))
	val := make([]byte, valLen)
	for i := range val {
		val[i] = 'v'
	}
	// Phase 1, under budget: hot and cold together, then several epochs
	// in which only the hot set is touched — cold pairs keep their birth
	// stamp and age.
	for i := 0; i < hot; i++ {
		s.Set(fmt.Sprintf("hot%03d", i), string(val))
	}
	for i := 0; i < cold; i++ {
		s.Set(fmt.Sprintf("cold%03d", i), string(val))
	}
	for pass := 0; pass < 4; pass++ {
		s.Quiesce() // ticks the epoch; under budget, evicts nothing
		for i := 0; i < hot; i++ {
			s.Get(fmt.Sprintf("hot%03d", i))
		}
	}
	if _, _, evicted := s.TTLStats(); evicted != 0 {
		t.Fatalf("evicted %d entries while under budget", evicted)
	}
	// Phase 2: fresh filler pushes the store past budget; the governance
	// pass must land at or under it, shedding the aged cold set first.
	for i := 0; i < fill; i++ {
		s.Set(fmt.Sprintf("fill%03d", i), string(val))
	}
	if got := s.BytesUsed(); got <= budget {
		t.Fatalf("setup: BytesUsed = %d, want > budget %d", got, budget)
	}
	s.Quiesce()
	if got := s.BytesUsed(); got > budget {
		t.Fatalf("post-Quiesce BytesUsed = %d, want <= budget %d", got, budget)
	}
	_, _, evicted := s.TTLStats()
	if evicted == 0 {
		t.Fatal("nothing evicted")
	}
	hotLive, coldLive := 0, 0
	for i := 0; i < hot; i++ {
		if _, ok := s.Get(fmt.Sprintf("hot%03d", i)); ok {
			hotLive++
		}
	}
	for i := 0; i < cold; i++ {
		if _, ok := s.Get(fmt.Sprintf("cold%03d", i)); ok {
			coldLive++
		}
	}
	hotRate := float64(hotLive) / float64(hot)
	coldRate := float64(coldLive) / float64(cold)
	if hotRate < coldRate+0.2 {
		t.Fatalf("approx-LRU not preferring cold: hot survival %.2f, cold survival %.2f", hotRate, coldRate)
	}
}

// TestTTLDefaultClock exercises the uninjected path (cached coarse clock)
// without depending on real time passing: a fresh store's TTL ops work
// and a TTL far in the future stays live.
func TestTTLDefaultClock(t *testing.T) {
	s := NewStrings(WithShards(1), WithoutMaintenance())
	s.SetEX("k", "v", 3600)
	if v, ok := s.Get("k"); !ok || v != "v" {
		t.Fatalf("Get = (%q,%v)", v, ok)
	}
	if got := s.TTL("k"); got <= 0 || got > 3600 {
		t.Fatalf("TTL = %d, want (0,3600]", got)
	}
	if !s.Expire("k", -1) {
		t.Fatal("Expire(k,-1) should delete and report presence")
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("key survived Expire(-1)")
	}
}
