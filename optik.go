package optik

import "github.com/optik-go/optik/internal/core"

// Version is a snapshot of a Lock's version number. Snapshot it with
// GetVersion (or GetVersionWait), then pass it to TryLockVersion or
// LockVersion to detect conflicting critical sections.
type Version = core.Version

// Init is the version of a zero-valued (never locked) Lock.
const Init = core.Init

// Lock is an OPTIK lock built on a versioned lock: a single 64-bit counter
// where even means unlocked and odd means locked. The zero value is ready
// to use. See the package documentation for the usage pattern.
type Lock = core.Lock

// TicketVersion is a snapshot of a TicketLock.
type TicketVersion = core.TicketVersion

// TicketLock is an OPTIK lock built on a ticket lock. It is FIFO-fair and
// exposes NumQueued, the number of threads holding or waiting for the lock,
// which contention-adaptive designs (such as the victim queues in ds/queue)
// use to divert work away from a congested lock.
type TicketLock = core.TicketLock

// Outcome is the decision returned by the optimistic phase passed to Update.
type Outcome = core.Outcome

// Outcomes for Update's optimistic phase.
const (
	// Proceed requests the critical section: lock and validate.
	Proceed = core.Proceed
	// Abort finishes the operation without any synchronization (the result
	// is already determined, e.g. the key being inserted is present).
	Abort = core.Abort
	// Restart retries the optimistic phase immediately.
	Restart = core.Restart
)

// Update runs the OPTIK pattern (optimistic phase, single-CAS
// lock-and-validate, critical section) against l, retrying on conflicts.
// It returns whether the critical section ran.
func Update(l *Lock, optimistic func(Version) Outcome, critical func()) bool {
	return core.Update(l, optimistic, critical)
}

// Read runs a read-only body against l, validating with the version that no
// critical section committed during it, and retries otherwise.
func Read[T any](l *Lock, body func() T) T {
	return core.Read(l, body)
}
