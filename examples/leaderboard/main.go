// leaderboard: an ordered score index on the OPTIK skip list (§5.3) under
// a skewed update stream — the hottest players' scores change most often,
// which is precisely the zipfian contention pattern where the paper's
// optik2 skip list shines.
//
// Scores are encoded into the key (score in the high bits, player id in
// the low bits) so the skip list's key order doubles as the ranking; a
// score update deletes the old entry and inserts the new one.
//
// Run with:
//
//	go run ./examples/leaderboard [-players 10000] [-updaters 8] [-duration 2s]
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"github.com/optik-go/optik/ds/skiplist"
)

const (
	scoreBits  = 32
	playerMask = (1 << scoreBits) - 1
)

// entryKey packs (score, player) so that higher scores sort higher and
// ties are broken by player id.
func entryKey(score uint32, player uint32) uint64 {
	return uint64(score)<<scoreBits | uint64(player)
}

// Leaderboard maintains one ordered index plus a per-player current score.
type Leaderboard struct {
	index  *skiplist.Optik
	scores []atomic.Uint32 // current score per player
	locks  []sync.Mutex    // serializes updates per player
}

// NewLeaderboard creates a board with the given number of players, all at
// score 1 (key 0 is reserved by the structures).
func NewLeaderboard(players int) *Leaderboard {
	lb := &Leaderboard{
		index:  skiplist.NewOptik2(),
		scores: make([]atomic.Uint32, players),
		locks:  make([]sync.Mutex, players),
	}
	for p := range lb.scores {
		lb.scores[p].Store(1)
		lb.index.Insert(entryKey(1, uint32(p)), uint64(p))
	}
	return lb
}

// AddPoints adds delta to a player's score, moving its index entry.
func (lb *Leaderboard) AddPoints(player uint32, delta uint32) {
	lb.locks[player].Lock()
	defer lb.locks[player].Unlock()
	old := lb.scores[player].Load()
	next := old + delta
	lb.scores[player].Store(next)
	lb.index.Delete(entryKey(old, player))
	lb.index.Insert(entryKey(next, player), uint64(player))
}

// Contains reports whether a player currently has the given score entry.
func (lb *Leaderboard) Contains(player uint32) bool {
	score := lb.scores[player].Load()
	_, ok := lb.index.Search(entryKey(score, player))
	return ok
}

func main() {
	players := flag.Int("players", 10000, "number of players")
	updaters := flag.Int("updaters", 8, "updater goroutines")
	duration := flag.Duration("duration", 2*time.Second, "run duration")
	flag.Parse()

	lb := NewLeaderboard(*players)
	var (
		updates atomic.Uint64
		lookups atomic.Uint64
		stop    atomic.Bool
		wg      sync.WaitGroup
	)
	// Zipf over players: hot players get most of the score updates.
	for u := 0; u < *updaters; u++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			src := rand.NewPCG(seed, seed^0xABCD)
			r := rand.New(src)
			z := rand.NewZipf(r, 1.3, 1, uint64(*players-1))
			for !stop.Load() {
				player := uint32(z.Uint64())
				lb.AddPoints(player, uint32(r.IntN(10)+1))
				updates.Add(1)
				// Interleave a few reads, like a ranking page.
				for i := 0; i < 3; i++ {
					lb.Contains(uint32(r.IntN(*players)))
					lookups.Add(1)
				}
			}
		}(uint64(u + 1))
	}
	time.Sleep(*duration)
	stop.Store(true)
	wg.Wait()

	fmt.Printf("leaderboard: %d players, %d updaters, %v\n", *players, *updaters, *duration)
	fmt.Printf("  score updates: %8.2f Kops/s\n", float64(updates.Load())/duration.Seconds()/1e3)
	fmt.Printf("  rank lookups : %8.2f Kops/s\n", float64(lookups.Load())/duration.Seconds()/1e3)
	fmt.Printf("  index size   : %d (want %d)\n", lb.index.Len(), *players)

	// Every player's current score entry must be present.
	missing := 0
	for p := 0; p < *players; p++ {
		if !lb.Contains(uint32(p)) {
			missing++
		}
	}
	fmt.Printf("  consistency  : %d missing entries (want 0)\n", missing)
}
