// leaderboard: an ordered score index on the OPTIK skip list (§5.3) under
// a skewed update stream — the hottest players' scores change most often,
// which is precisely the zipfian contention pattern where the paper's
// optik2 skip list shines.
//
// Scores are encoded into the key with the score bits inverted (so the
// skip list's ascending key order ranks best-first) and the player id in
// the low bits breaking ties; a score update deletes the old entry and
// inserts the new one. The same encoding works over the wire: with
// -addr the board keeps its entries in an ordered optik-server
// (optik-server -ordered), moving entries with DEL+SET and reading the
// top of the table with one SCAN page.
//
// Run with:
//
//	go run ./examples/leaderboard [-players 10000] [-updaters 8] [-duration 2s]
//	go run ./examples/leaderboard -addr 127.0.0.1:7979   # needs -ordered server
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"github.com/optik-go/optik/ds/skiplist"
	"github.com/optik-go/optik/server"
)

const (
	scoreBits  = 32
	playerMask = (1 << scoreBits) - 1
)

// entryKey packs (score, player) with the score inverted, so ascending
// key order is descending score order: the index's smallest key — the
// first key any ascending scan returns — is the current leader. Ties
// rank by player id. Scores start at 1, so the inverted score never
// reaches ^uint32(0) and the key stays inside the structures' legal
// key space at both ends.
func entryKey(score uint32, player uint32) uint64 {
	return uint64(^score)<<scoreBits | uint64(player)
}

// keyScore recovers the score from an entry key.
func keyScore(key uint64) uint32 { return ^uint32(key >> scoreBits) }

// keyPlayer recovers the player id from an entry key.
func keyPlayer(key uint64) uint32 { return uint32(key & playerMask) }

// scoreIndex is the ordered index the board ranks through: in-process
// (the OPTIK skip list) or remote (an ordered optik-server over TCP).
type scoreIndex interface {
	insert(key uint64, player uint64)
	remove(key uint64)
	contains(key uint64) bool
	// top returns the first n entry keys in ascending key order — i.e.
	// the current top-n ranking, best first.
	top(n int) []uint64
	size() int
	close()
}

// localIndex ranks through the in-process optik2 skip list.
type localIndex struct {
	list *skiplist.Optik
}

func (ix *localIndex) insert(key, player uint64) { ix.list.Insert(key, player) }
func (ix *localIndex) remove(key uint64)         { ix.list.Delete(key) }
func (ix *localIndex) contains(key uint64) bool {
	_, ok := ix.list.Search(key)
	return ok
}
func (ix *localIndex) top(n int) []uint64 {
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	got := ix.list.ScanRange(1, ^uint64(0)-1, keys, vals)
	return keys[:got]
}
func (ix *localIndex) size() int { return ix.list.Len() }
func (ix *localIndex) close()    {}

// netIndex ranks through an ordered optik-server, one pooled connection
// per concurrent caller.
type netIndex struct {
	addr string
	mu   sync.Mutex
	idle []*server.Client
	all  []*server.Client
}

func (ix *netIndex) borrow() *server.Client {
	ix.mu.Lock()
	if n := len(ix.idle); n > 0 {
		c := ix.idle[n-1]
		ix.idle = ix.idle[:n-1]
		ix.mu.Unlock()
		return c
	}
	ix.mu.Unlock()
	c, err := server.Dial(ix.addr)
	if err != nil {
		panic("leaderboard: " + err.Error())
	}
	ix.mu.Lock()
	ix.all = append(ix.all, c)
	ix.mu.Unlock()
	return c
}

func (ix *netIndex) put(c *server.Client) {
	ix.mu.Lock()
	ix.idle = append(ix.idle, c)
	ix.mu.Unlock()
}

func (ix *netIndex) insert(key, player uint64) {
	c := ix.borrow()
	c.Set(key, player)
	ix.put(c)
}

func (ix *netIndex) remove(key uint64) {
	c := ix.borrow()
	c.Del(key)
	ix.put(c)
}

func (ix *netIndex) contains(key uint64) bool {
	c := ix.borrow()
	_, ok := c.Get(key)
	ix.put(c)
	return ok
}

func (ix *netIndex) top(n int) []uint64 {
	c := ix.borrow()
	_, keys, _ := c.Scan(0, "", n)
	ix.put(c)
	return keys
}

func (ix *netIndex) size() int {
	c := ix.borrow()
	n := c.Len()
	ix.put(c)
	return n
}

func (ix *netIndex) close() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, c := range ix.all {
		c.Close()
	}
	ix.all, ix.idle = nil, nil
}

// Leaderboard maintains one ordered index plus a per-player current score.
type Leaderboard struct {
	index  scoreIndex
	scores []atomic.Uint32 // current score per player
	locks  []sync.Mutex    // serializes updates per player
}

// NewLeaderboard creates a board with the given number of players, all at
// score 1.
func NewLeaderboard(players int, index scoreIndex) *Leaderboard {
	lb := &Leaderboard{
		index:  index,
		scores: make([]atomic.Uint32, players),
		locks:  make([]sync.Mutex, players),
	}
	for p := range lb.scores {
		lb.scores[p].Store(1)
		lb.index.insert(entryKey(1, uint32(p)), uint64(p))
	}
	return lb
}

// AddPoints adds delta to a player's score, moving its index entry.
func (lb *Leaderboard) AddPoints(player uint32, delta uint32) {
	lb.locks[player].Lock()
	defer lb.locks[player].Unlock()
	old := lb.scores[player].Load()
	next := old + delta
	lb.scores[player].Store(next)
	lb.index.remove(entryKey(old, player))
	lb.index.insert(entryKey(next, player), uint64(player))
}

// Contains reports whether a player currently has the given score entry.
func (lb *Leaderboard) Contains(player uint32) bool {
	return lb.index.contains(entryKey(lb.scores[player].Load(), player))
}

func main() {
	players := flag.Int("players", 10000, "number of players")
	updaters := flag.Int("updaters", 8, "updater goroutines")
	duration := flag.Duration("duration", 2*time.Second, "run duration")
	addr := flag.String("addr", "", "ordered optik-server address (empty = in-process skip list)")
	flag.Parse()

	var index scoreIndex
	mode := "in-process optik2"
	if *addr != "" {
		index = &netIndex{addr: *addr}
		mode = "ordered optik-server at " + *addr
	} else {
		index = &localIndex{list: skiplist.NewOptik2()}
	}
	defer index.close()

	lb := NewLeaderboard(*players, index)
	var (
		updates atomic.Uint64
		lookups atomic.Uint64
		stop    atomic.Bool
		wg      sync.WaitGroup
	)
	// Zipf over players: hot players get most of the score updates.
	for u := 0; u < *updaters; u++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			src := rand.NewPCG(seed, seed^0xABCD)
			r := rand.New(src)
			z := rand.NewZipf(r, 1.3, 1, uint64(*players-1))
			for !stop.Load() {
				player := uint32(z.Uint64())
				lb.AddPoints(player, uint32(r.IntN(10)+1))
				updates.Add(1)
				// Interleave a few reads, like a ranking page.
				for i := 0; i < 3; i++ {
					lb.Contains(uint32(r.IntN(*players)))
					lookups.Add(1)
				}
			}
		}(uint64(u + 1))
	}
	time.Sleep(*duration)
	stop.Store(true)
	wg.Wait()

	fmt.Printf("leaderboard: %d players, %d updaters, %v, %s\n", *players, *updaters, *duration, mode)
	fmt.Printf("  score updates: %8.2f Kops/s\n", float64(updates.Load())/duration.Seconds()/1e3)
	fmt.Printf("  rank lookups : %8.2f Kops/s\n", float64(lookups.Load())/duration.Seconds()/1e3)
	fmt.Printf("  index size   : %d (want %d)\n", index.size(), *players)

	// The first scan page IS the ranking: ascending keys, best first.
	fmt.Printf("  top 5        :")
	for _, key := range lb.index.top(5) {
		fmt.Printf(" p%d=%d", keyPlayer(key), keyScore(key))
	}
	fmt.Println()

	// Every player's current score entry must be present.
	missing := 0
	for p := 0; p < *players; p++ {
		if !lb.Contains(uint32(p)) {
			missing++
		}
	}
	fmt.Printf("  consistency  : %d missing entries (want 0)\n", missing)
}
