// kvstore: a concurrent in-memory key-value store backed by the per-bucket
// OPTIK hash table (§5.2) — the workload the paper's introduction motivates
// for hash tables. A mixed fleet of reader and writer goroutines simulates
// a read-mostly cache in front of a database: GETs dominate, SETs and DELs
// trickle in, and the store reports throughput and hit rates.
//
// Run with:
//
//	go run ./examples/kvstore [-readers 8] [-writers 2] [-duration 2s]
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"math/rand/v2"

	"github.com/optik-go/optik/ds/hashmap"
)

// Store maps string keys to string values on top of the uint64-keyed OPTIK
// hash table: keys are hashed to 64 bits and values interned in a sharded
// side table (a real store would keep value pointers; the structure under
// test is the index).
type Store struct {
	index *hashmap.OptikGL

	mu     sync.RWMutex
	values map[uint64]string
}

// NewStore returns a store with the given number of index buckets.
func NewStore(buckets int) *Store {
	return &Store{
		index:  hashmap.NewOptikGL(buckets),
		values: make(map[uint64]string),
	}
}

func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	v := h.Sum64()
	if v == 0 || v == ^uint64(0) {
		v = 1 // keep clear of the sentinel keys
	}
	return v
}

// Set stores key→value, returning false if the key already existed.
func (s *Store) Set(key, value string) bool {
	k := hashKey(key)
	s.mu.Lock()
	s.values[k] = value
	s.mu.Unlock()
	return s.index.Insert(k, k)
}

// Get returns the value stored under key.
func (s *Store) Get(key string) (string, bool) {
	k := hashKey(key)
	if _, ok := s.index.Search(k); !ok {
		return "", false
	}
	s.mu.RLock()
	v, ok := s.values[k]
	s.mu.RUnlock()
	return v, ok
}

// Del removes key, reporting whether it was present.
func (s *Store) Del(key string) bool {
	k := hashKey(key)
	if _, ok := s.index.Delete(k); !ok {
		return false
	}
	s.mu.Lock()
	delete(s.values, k)
	s.mu.Unlock()
	return true
}

func main() {
	readers := flag.Int("readers", 8, "reader goroutines")
	writers := flag.Int("writers", 2, "writer goroutines")
	duration := flag.Duration("duration", 2*time.Second, "run duration")
	flag.Parse()

	store := NewStore(4096)
	// Seed the cache.
	for i := 0; i < 2048; i++ {
		store.Set(fmt.Sprintf("user:%04d", i), fmt.Sprintf("profile-%d", i))
	}

	var (
		gets, hits, sets, dels atomic.Uint64
		stop                   atomic.Bool
		wg                     sync.WaitGroup
	)
	for r := 0; r < *readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				key := fmt.Sprintf("user:%04d", rand.IntN(4096))
				if _, ok := store.Get(key); ok {
					hits.Add(1)
				}
				gets.Add(1)
			}
		}()
	}
	for w := 0; w < *writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				key := fmt.Sprintf("user:%04d", rand.IntN(4096))
				if rand.IntN(2) == 0 {
					store.Set(key, "updated")
					sets.Add(1)
				} else {
					store.Del(key)
					dels.Add(1)
				}
			}
		}()
	}

	time.Sleep(*duration)
	stop.Store(true)
	wg.Wait()

	elapsed := duration.Seconds()
	fmt.Printf("kvstore over %v with %d readers / %d writers\n", *duration, *readers, *writers)
	fmt.Printf("  GET: %8.2f Kops/s (hit rate %.1f%%)\n",
		float64(gets.Load())/elapsed/1e3, 100*float64(hits.Load())/float64(max(gets.Load(), 1)))
	fmt.Printf("  SET: %8.2f Kops/s\n", float64(sets.Load())/elapsed/1e3)
	fmt.Printf("  DEL: %8.2f Kops/s\n", float64(dels.Load())/elapsed/1e3)
	fmt.Printf("  index size: %d\n", store.index.Len())
}
