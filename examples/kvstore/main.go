// kvstore: a concurrent in-memory key-value store on the sharded
// store.Store — the workload the paper's introduction motivates for hash
// tables, served the way the ROADMAP's production system would serve it. A
// mixed fleet of reader and writer goroutines simulates a read-mostly
// cache in front of a database: GETs dominate, SETs and DELs trickle in,
// a slice of the readers fetch in batches (MGet), and the store reports
// throughput, hit rates and the maintenance counters.
//
// There is no lock anywhere on the GET/SET/DEL path — no sync.RWMutex, no
// global anything. Earlier revisions kept string values in a mutex-guarded
// side map, the exact pessimistic global locking the OPTIK pattern exists
// to kill; this version stores values through handles instead:
//
//   - The index maps the 64-bit key hash to a slot in a chunked value
//     arena; store.Store routes it to a shard and the shard's per-bucket
//     OPTIK lock covers the update.
//   - An arena slot holds one atomic pointer to an immutable {hash,
//     value} pair. SET writes the pair first and publishes the slot
//     through the index after, so any slot a reader can reach holds a
//     fully-built pair.
//   - Freed slots recycle through a lock-free OPTIK stack. Recycling
//     creates the classic read-under-reuse race — a GET can hold a slot
//     number while a concurrent DEL frees it and another SET re-points it
//     at a different key's pair — and the fix is the OPTIK move lifted to
//     the value layer: the GET validates optimistically (does the pair's
//     hash still match the key I looked up?) and restarts through the
//     index when it does not, exactly how the table's own readers
//     validate bucket versions instead of locking.
//
// Run with:
//
//	go run ./examples/kvstore [-readers 8] [-writers 2] [-shards 0]
//	                          [-batch 16] [-duration 2s]
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"math/rand/v2"

	"github.com/optik-go/optik/ds/stack"
	"github.com/optik-go/optik/store"
)

// entry is one stored value: the key hash it belongs to plus the value.
// Entries are immutable once published; replacing a value builds a new
// entry in a new or recycled slot.
type entry struct {
	hash uint64
	val  string
}

// arena is a growable array of value slots addressed by the uint64 the
// index stores. Slots are chunked so growth never moves published slots
// (a reader holding a slot number must be able to load its pointer with
// no coordination), and the chunk directory is fixed so reaching a slot
// is two indexed loads. Freed slots recycle through a lock-free stack.
type arena struct {
	chunks [dirSize]atomic.Pointer[chunk]
	next   atomic.Uint64
	free   *stack.Optik
}

const (
	chunkBits = 12 // 4096 slots per chunk
	chunkSize = 1 << chunkBits
	dirSize   = 4096 // 16.7M live values; plenty for an example store
)

type chunk [chunkSize]atomic.Pointer[entry]

func newArena() *arena {
	return &arena{free: stack.NewOptik()}
}

// put stores a fresh {hash, val} pair and returns its slot, recycling a
// freed slot when one is available. The pair is visible as soon as the
// pointer store lands — before the caller publishes the slot through the
// index — so no reader can reach a half-built entry.
func (a *arena) put(hash uint64, val string) uint64 {
	slot, ok := a.free.Pop()
	if !ok {
		slot = a.next.Add(1) - 1
		if slot >= dirSize*chunkSize {
			panic("kvstore: value arena exhausted")
		}
	}
	ci := slot >> chunkBits
	c := a.chunks[ci].Load()
	for c == nil {
		// First touch of this chunk: one allocation, racing allocators
		// settle by CAS.
		a.chunks[ci].CompareAndSwap(nil, new(chunk))
		c = a.chunks[ci].Load()
	}
	c[slot&(chunkSize-1)].Store(&entry{hash: hash, val: val})
	return slot
}

// get loads the pair currently in slot. The caller validates its hash.
func (a *arena) get(slot uint64) *entry {
	return a.chunks[slot>>chunkBits].Load()[slot&(chunkSize-1)].Load()
}

// release recycles a slot whose index entry has been removed or replaced.
// The old pair is left in place for stale readers; they validate its hash
// and retry, and the pair itself is garbage-collected once the last one
// moves on.
func (a *arena) release(slot uint64) {
	a.free.Push(slot)
}

// Store maps string keys to string values: a sharded OPTIK index from key
// hashes to value handles in the arena.
type Store struct {
	index  *store.Store
	values *arena
}

// NewStore returns a store with the given shard count (0 = one per core)
// and per-shard floor buckets.
func NewStore(shards, shardBuckets int) *Store {
	return &Store{
		index:  store.New(store.WithShards(shards), store.WithShardBuckets(shardBuckets)),
		values: newArena(),
	}
}

// Close stops the index's maintenance scheduler.
func (s *Store) Close() { s.index.Close() }

func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	v := h.Sum64()
	if v == 0 || v == ^uint64(0) {
		v = 1 // keep clear of the sentinel keys
	}
	return v
}

// Set stores key→value, returning false if this was a fresh insert and
// true if it replaced an existing value.
func (s *Store) Set(key, value string) bool {
	k := hashKey(key)
	slot := s.values.put(k, value)
	old, replaced := s.index.Set(k, slot)
	if replaced {
		s.values.release(old)
	}
	return replaced
}

// Get returns the value stored under key. The loop is the OPTIK shape in
// miniature: optimistic read (index lookup, then the arena load), validate
// (does the pair still belong to this key?), retry on conflict. A retry
// means a concurrent SET or DEL recycled the slot under us, so each lap
// rides on another operation's progress — the same obstruction-freedom
// argument as the table's own readers.
func (s *Store) Get(key string) (string, bool) {
	k := hashKey(key)
	for {
		slot, ok := s.index.Get(k)
		if !ok {
			return "", false
		}
		if e := s.values.get(slot); e != nil && e.hash == k {
			return e.val, true
		}
	}
}

// Del removes key, reporting whether it was present.
func (s *Store) Del(key string) bool {
	k := hashKey(key)
	old, ok := s.index.Del(k)
	if !ok {
		return false
	}
	s.values.release(old)
	return true
}

// MGet fetches a batch of keys in one index pass, appending the values of
// the found ones to dst and returning it with the hit count. Slots whose
// pairs were recycled mid-read fall back to the scalar validated Get.
func (s *Store) MGet(keys []string, dst []string) ([]string, int) {
	hashes := make([]uint64, len(keys))
	slots := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	for i, key := range keys {
		hashes[i] = hashKey(key)
	}
	s.index.MGet(hashes, slots, found)
	hits := 0
	for i := range keys {
		if !found[i] {
			continue
		}
		if e := s.values.get(slots[i]); e != nil && e.hash == hashes[i] {
			dst = append(dst, e.val)
			hits++
		} else if v, ok := s.Get(keys[i]); ok {
			dst = append(dst, v)
			hits++
		}
	}
	return dst, hits
}

func main() {
	readers := flag.Int("readers", 8, "reader goroutines")
	writers := flag.Int("writers", 2, "writer goroutines")
	shards := flag.Int("shards", 0, "index shards (0 = one per core)")
	batch := flag.Int("batch", 16, "keys per batched GET (half the readers batch)")
	duration := flag.Duration("duration", 2*time.Second, "run duration")
	flag.Parse()

	st := NewStore(*shards, 1024)
	defer st.Close()
	// Seed the cache.
	for i := 0; i < 2048; i++ {
		st.Set(fmt.Sprintf("user:%04d", i), fmt.Sprintf("profile-%d", i))
	}

	var (
		gets, hits, sets, dels atomic.Uint64
		stop                   atomic.Bool
		wg                     sync.WaitGroup
	)
	for r := 0; r < *readers; r++ {
		wg.Add(1)
		batched := r%2 == 1 && *batch > 1
		go func() {
			defer wg.Done()
			keys := make([]string, *batch)
			vals := make([]string, 0, *batch)
			for !stop.Load() {
				if batched {
					for i := range keys {
						keys[i] = fmt.Sprintf("user:%04d", rand.IntN(4096))
					}
					var h int
					vals, h = st.MGet(keys, vals[:0])
					hits.Add(uint64(h))
					gets.Add(uint64(len(keys)))
				} else {
					key := fmt.Sprintf("user:%04d", rand.IntN(4096))
					if _, ok := st.Get(key); ok {
						hits.Add(1)
					}
					gets.Add(1)
				}
			}
		}()
	}
	for w := 0; w < *writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				key := fmt.Sprintf("user:%04d", rand.IntN(4096))
				if rand.IntN(2) == 0 {
					st.Set(key, "updated")
					sets.Add(1)
				} else {
					st.Del(key)
					dels.Add(1)
				}
			}
		}()
	}

	time.Sleep(*duration)
	stop.Store(true)
	wg.Wait()

	elapsed := duration.Seconds()
	fmt.Printf("kvstore over %v with %d readers / %d writers on %d shards\n",
		*duration, *readers, *writers, st.index.Shards())
	fmt.Printf("  GET: %8.2f Kops/s (hit rate %.1f%%)\n",
		float64(gets.Load())/elapsed/1e3, 100*float64(hits.Load())/float64(max(gets.Load(), 1)))
	fmt.Printf("  SET: %8.2f Kops/s\n", float64(sets.Load())/elapsed/1e3)
	fmt.Printf("  DEL: %8.2f Kops/s\n", float64(dels.Load())/elapsed/1e3)
	retired, _, reused := st.index.ReclaimStats()
	fmt.Printf("  index: %d keys in %d buckets, %d resizes, %d/%d chain nodes retired/reused\n",
		st.index.Len(), st.index.Buckets(), st.index.Resizes(), retired, reused)
	fmt.Printf("  arena: %d slots allocated, %d on the free list\n",
		st.values.next.Load(), st.values.free.Len())
}
