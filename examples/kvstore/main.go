// kvstore: a concurrent in-memory key-value store — the workload the
// paper's introduction motivates for hash tables, served the way the
// ROADMAP's production system serves it. A mixed fleet of reader and
// writer goroutines simulates a read-mostly cache in front of a database:
// GETs dominate, SETs and DELs trickle in, a slice of the readers fetch
// in batches (MGet), and the store reports throughput, hit rates and the
// maintenance counters.
//
// The machinery lives in the library now: store.Strings maps string keys
// to string values through a sharded OPTIK index and a chunked
// atomic-handle value arena with an OPTIK-stack free list (it started
// life in this example and was lifted into store/values.go when the
// network server needed it too — the server package serves the same type
// over TCP). There is no lock anywhere on the GET/SET/DEL path: index
// reads validate bucket versions, value loads validate the pair's hash
// against slot recycling and retry through the index — the OPTIK move at
// the value layer.
//
// Run with:
//
//	go run ./examples/kvstore [-readers 8] [-writers 2] [-shards 0]
//	                          [-batch 16] [-duration 2s]
package main

import (
	"flag"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"math/rand/v2"

	"github.com/optik-go/optik/store"
)

func main() {
	readers := flag.Int("readers", 8, "reader goroutines")
	writers := flag.Int("writers", 2, "writer goroutines")
	shards := flag.Int("shards", 0, "index shards (0 = one per core)")
	batch := flag.Int("batch", 16, "keys per batched GET (half the readers batch)")
	duration := flag.Duration("duration", 2*time.Second, "run duration")
	flag.Parse()

	st := store.NewStrings(store.WithShards(*shards), store.WithShardBuckets(1024))
	defer st.Close()
	// Seed the cache.
	for i := 0; i < 2048; i++ {
		st.Set(fmt.Sprintf("user:%04d", i), fmt.Sprintf("profile-%d", i))
	}

	var (
		gets, hits, sets, dels atomic.Uint64
		stop                   atomic.Bool
		wg                     sync.WaitGroup
	)
	for r := 0; r < *readers; r++ {
		wg.Add(1)
		batched := r%2 == 1 && *batch > 1
		go func() {
			defer wg.Done()
			keys := make([]string, *batch)
			vals := make([]string, *batch)
			found := make([]bool, *batch)
			for !stop.Load() {
				if batched {
					for i := range keys {
						keys[i] = fmt.Sprintf("user:%04d", rand.IntN(4096))
					}
					st.MGet(keys, vals, found)
					h := 0
					for i := range found {
						if found[i] {
							h++
						}
					}
					hits.Add(uint64(h))
					gets.Add(uint64(len(keys)))
				} else {
					key := fmt.Sprintf("user:%04d", rand.IntN(4096))
					if _, ok := st.Get(key); ok {
						hits.Add(1)
					}
					gets.Add(1)
				}
			}
		}()
	}
	for w := 0; w < *writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				key := fmt.Sprintf("user:%04d", rand.IntN(4096))
				if rand.IntN(2) == 0 {
					st.Set(key, "updated")
					sets.Add(1)
				} else {
					st.Del(key)
					dels.Add(1)
				}
			}
		}()
	}

	time.Sleep(*duration)
	stop.Store(true)
	wg.Wait()

	elapsed := duration.Seconds()
	fmt.Printf("kvstore over %v with %d readers / %d writers on %d shards\n",
		*duration, *readers, *writers, st.Index().Shards())
	fmt.Printf("  GET: %8.2f Kops/s (hit rate %.1f%%)\n",
		float64(gets.Load())/elapsed/1e3, 100*float64(hits.Load())/float64(max(gets.Load(), 1)))
	fmt.Printf("  SET: %8.2f Kops/s\n", float64(sets.Load())/elapsed/1e3)
	fmt.Printf("  DEL: %8.2f Kops/s\n", float64(dels.Load())/elapsed/1e3)
	retired, _, reused := st.Index().ReclaimStats()
	fmt.Printf("  index: %d keys in %d buckets, %d resizes, %d/%d chain nodes retired/reused\n",
		st.Len(), st.Index().Buckets(), st.Index().Resizes(), retired, reused)
	fmt.Printf("  arena: %d slots allocated, %d on the free list\n",
		st.Values().Allocated(), st.Values().FreeLen())
}
