// Quickstart: the OPTIK pattern in five minutes.
//
// This example walks through the public API top-down: first the raw OPTIK
// lock (snapshot → optimistic work → validate-and-lock in one CAS), then
// the Update/Read helpers, then one data structure built on the pattern.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	optik "github.com/optik-go/optik"
	"github.com/optik-go/optik/ds/list"
)

func main() {
	rawLockTour()
	helperTour()
	structureTour()
}

// rawLockTour shows the pattern exactly as in Figure 2 of the paper: the
// version snapshot taken before the optimistic phase is validated by the
// same CAS that acquires the lock.
//
// Note the shared state is an atomic: the optimistic phase runs without
// the lock, so it can race with a committing writer. OPTIK discards stale
// observations through the version check, but the *reads themselves* must
// be race-safe — the same reason the library's data structures load their
// next pointers atomically.
func rawLockTour() {
	var lock optik.Lock
	var hits atomic.Uint64 // state protected by the lock

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				for {
					v := lock.GetVersion()
					// --- optimistic phase: read-only, unsynchronized ---
					planned := hits.Load() + 1
					// --- validate + lock in a single CAS ---
					if !lock.TryLockVersion(v) {
						continue // a conflicting update committed; retry
					}
					// --- critical section ---
					hits.Store(planned)
					lock.Unlock()
					break
				}
			}
		}()
	}
	wg.Wait()
	fmt.Printf("raw lock: hits = %d (want 8000)\n", hits.Load())
}

// helperTour does the same with the Update helper, plus a validated Read.
func helperTour() {
	var lock optik.Lock
	counter := 0

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				optik.Update(&lock,
					func(optik.Version) optik.Outcome { return optik.Proceed },
					func() { counter++ })
			}
		}()
	}
	wg.Wait()
	snapshot := optik.Read(&lock, func() int { return counter })
	fmt.Printf("helpers:  counter = %d (want 8000)\n", snapshot)
}

// structureTour exercises the fine-grained OPTIK list (Figure 8) and its
// node-cache handles (§5.1).
func structureTour() {
	l := list.NewOptik()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			h := l.NewHandle() // per-goroutine view with node caching
			for k := base*1000 + 1; k <= base*1000+500; k++ {
				h.Insert(k, k*2)
			}
			for k := base*1000 + 1; k <= base*1000+500; k += 2 {
				h.Delete(k)
			}
		}(uint64(w))
	}
	wg.Wait()

	fmt.Printf("list:     %d elements remain (want 2000)\n", l.Len())
	if v, ok := l.Search(2); ok {
		fmt.Printf("list:     Search(2) = %d (want 4)\n", v)
	}
}
