// taskqueue: a work-dispatch system on the victim-queue MS variant (§5.4).
//
// A burst of producers floods the queue with tasks — exactly the
// enqueue-contention scenario victim queues were designed for: when too
// many threads pile up on the tail lock, enqueues divert to the secondary
// victim queue and a single thread splices the whole batch. A worker pool
// drains tasks concurrently, and the run reports per-phase throughput
// alongside the same workload on the plain lock-free MS queue.
//
// Run with:
//
//	go run ./examples/taskqueue [-producers 12] [-workers 6] [-tasks 200000]
package main

import (
	"flag"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/optik-go/optik/ds"
	"github.com/optik-go/optik/ds/queue"
)

// task is the unit of work: an opaque id whose processing cost is a short
// computation (checksum loop).
type task uint64

func (t task) process() uint64 {
	acc := uint64(t)
	for i := 0; i < 32; i++ {
		acc = acc*0x9E3779B97F4A7C15 + 1
	}
	return acc
}

func runFleet(name string, q ds.Queue, producers, workers, tasks int) {
	var (
		produced atomic.Uint64
		consumed atomic.Uint64
		checksum atomic.Uint64
		wg       sync.WaitGroup
	)
	start := time.Now()
	perProducer := tasks / producers

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Enqueue(uint64(id*perProducer + i + 1))
				produced.Add(1)
			}
		}(p)
	}
	total := uint64(producers * perProducer)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for consumed.Load() < total {
				v, ok := q.Dequeue()
				if !ok {
					continue
				}
				checksum.Add(task(v).process())
				consumed.Add(1)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	fmt.Printf("%-18s %8d tasks in %8v  (%7.2f Ktasks/s, checksum %x)\n",
		name, consumed.Load(), elapsed.Round(time.Millisecond),
		float64(consumed.Load())/elapsed.Seconds()/1e3, checksum.Load())
}

func main() {
	producers := flag.Int("producers", 12, "producer goroutines")
	workers := flag.Int("workers", 6, "worker goroutines")
	tasks := flag.Int("tasks", 200000, "total tasks")
	flag.Parse()

	fmt.Printf("dispatching %d tasks with %d producers and %d workers\n\n",
		*tasks, *producers, *workers)
	runFleet("victim-queue", queue.NewOptikVictim(0), *producers, *workers, *tasks)
	runFleet("ms-lock-free", queue.NewMSLF(), *producers, *workers, *tasks)
	runFleet("ms-two-lock", queue.NewMSLB(), *producers, *workers, *tasks)
}
