// Benchmarks regenerating the paper's evaluation, one bench tree per table
// or figure. Each sub-benchmark runs the corresponding workload for a fixed
// short duration per iteration and reports throughput as Mops/s (the
// paper's metric), so shapes are comparable directly against the figures.
//
// Paper-scale runs (5 s × 11 repetitions × a full thread sweep) are driven
// by cmd/optik-bench; these testing.B targets are the quick, scriptable
// view of the same experiment definitions in internal/figures.
package optik_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/optik-go/optik/ds"
	"github.com/optik-go/optik/ds/arraymap"
	"github.com/optik-go/optik/ds/hashmap"
	"github.com/optik-go/optik/ds/list"
	"github.com/optik-go/optik/ds/queue"
	"github.com/optik-go/optik/internal/figures"
	"github.com/optik-go/optik/internal/workload"
	"github.com/optik-go/optik/store"
)

// benchDuration is the measured duration of one benchmark iteration.
const benchDuration = 100 * time.Millisecond

// benchThreads are the sweep points exercised by the bench targets.
var benchThreads = []int{1, 4, 16}

// reportSet runs one set workload and reports Mops/s.
func reportSet(b *testing.B, cfg workload.Config, factory func() ds.Set) {
	b.Helper()
	var mops float64
	for i := 0; i < b.N; i++ {
		res := workload.RunSet(cfg, factory)
		mops = res.Mops
	}
	b.ReportMetric(mops, "Mops/s")
	b.ReportMetric(0, "ns/op") // wall-clock per op is not the figure's metric
}

// BenchmarkFig05Lock regenerates Figure 5: validated lock-acquisition
// throughput and CAS-per-validation for ttas/optik-ticket/optik-versioned.
func BenchmarkFig05Lock(b *testing.B) {
	for _, impl := range workload.LockImpls {
		for _, th := range benchThreads {
			b.Run(fmt.Sprintf("%s/threads=%d", impl, th), func(b *testing.B) {
				var res workload.LockResult
				for i := 0; i < b.N; i++ {
					res = workload.RunLock(workload.LockConfig{
						Threads: th, Duration: benchDuration,
					}, impl)
				}
				b.ReportMetric(res.Mops, "Mops/s")
				b.ReportMetric(res.CASPerValidation, "CAS/validation")
				b.ReportMetric(0, "ns/op")
			})
		}
	}
}

// BenchmarkFig07ArrayMap regenerates Figure 7: mcs vs optik array maps on
// the small (4 slots) and large (1024 slots) configurations, 10% updates.
func BenchmarkFig07ArrayMap(b *testing.B) {
	sizes := []struct {
		label string
		size  int
	}{{"small-4", 4}, {"large-1024", 1024}}
	for _, sz := range sizes {
		for _, algo := range figures.MapAlgos(sz.size) {
			for _, th := range benchThreads {
				name := fmt.Sprintf("%s/%s/threads=%d", sz.label, algo.Name, th)
				b.Run(name, func(b *testing.B) {
					reportSet(b, workload.Config{
						Threads: th, Duration: benchDuration,
						InitialSize: sz.size, UpdatePct: 10,
					}, algo.New)
				})
			}
		}
	}
}

// BenchmarkFig09List regenerates Figure 9: seven list algorithms over the
// five workloads (large/medium/small × uniform, large/small × zipfian).
func BenchmarkFig09List(b *testing.B) {
	workloads := []figures.SetWorkload{
		{Label: "large", InitialSize: 8192, UpdatePct: 20},
		{Label: "medium", InitialSize: 1024, UpdatePct: 20},
		{Label: "small", InitialSize: 64, UpdatePct: 20},
		{Label: "large-skewed", InitialSize: 8192, UpdatePct: 20, Zipf: true},
		{Label: "small-skewed", InitialSize: 64, UpdatePct: 20, Zipf: true},
	}
	for _, wl := range workloads {
		for _, algo := range figures.Fig9ListAlgos() {
			for _, th := range benchThreads {
				name := fmt.Sprintf("%s/%s/threads=%d", wl.Label, algo.Name, th)
				b.Run(name, func(b *testing.B) {
					reportSet(b, workload.Config{
						Threads: th, Duration: benchDuration,
						InitialSize: wl.InitialSize, UpdatePct: wl.UpdatePct, Zipf: wl.Zipf,
					}, algo.New)
				})
			}
		}
	}
}

// BenchmarkFig10HashTable regenerates Figure 10: six hash tables on the
// medium and small-skewed workloads (buckets = initial size).
func BenchmarkFig10HashTable(b *testing.B) {
	workloads := []figures.SetWorkload{
		{Label: "medium", InitialSize: 8192, UpdatePct: 20, Buckets: 8192},
		{Label: "small-skewed", InitialSize: 512, UpdatePct: 20, Zipf: true, Buckets: 512},
	}
	for _, wl := range workloads {
		for _, algo := range figures.HashAlgos(wl.Buckets) {
			for _, th := range benchThreads {
				name := fmt.Sprintf("%s/%s/threads=%d", wl.Label, algo.Name, th)
				b.Run(name, func(b *testing.B) {
					reportSet(b, workload.Config{
						Threads: th, Duration: benchDuration,
						InitialSize: wl.InitialSize, UpdatePct: wl.UpdatePct, Zipf: wl.Zipf,
					}, algo.New)
				})
			}
		}
	}
}

// BenchmarkFig11SkipList regenerates Figure 11: five skip lists on the
// large-skewed and small-skewed workloads.
func BenchmarkFig11SkipList(b *testing.B) {
	workloads := []figures.SetWorkload{
		{Label: "large-skewed", InitialSize: 65536, UpdatePct: 20, Zipf: true},
		{Label: "small-skewed", InitialSize: 1024, UpdatePct: 20, Zipf: true},
	}
	for _, wl := range workloads {
		for _, algo := range figures.SkiplistAlgos() {
			for _, th := range benchThreads {
				name := fmt.Sprintf("%s/%s/threads=%d", wl.Label, algo.Name, th)
				b.Run(name, func(b *testing.B) {
					reportSet(b, workload.Config{
						Threads: th, Duration: benchDuration,
						InitialSize: wl.InitialSize, UpdatePct: wl.UpdatePct, Zipf: wl.Zipf,
					}, algo.New)
				})
			}
		}
	}
}

// BenchmarkFig12Queue regenerates Figure 12: six queues over the three
// enqueue/dequeue mixes, initialized with 65536 elements.
func BenchmarkFig12Queue(b *testing.B) {
	mixes := []struct {
		label string
		enq   int
	}{{"decreasing-40enq", 40}, {"stable-50enq", 50}, {"increasing-60enq", 60}}
	for _, mix := range mixes {
		for _, algo := range figures.QueueAlgos() {
			for _, th := range benchThreads {
				name := fmt.Sprintf("%s/%s/threads=%d", mix.label, algo.Name, th)
				b.Run(name, func(b *testing.B) {
					var res workload.QueueResult
					for i := 0; i < b.N; i++ {
						res = workload.RunQueue(workload.QueueConfig{
							Threads: th, Duration: benchDuration,
							InitialSize: 65536, EnqueuePct: mix.enq,
						}, algo.New)
					}
					b.ReportMetric(res.Mops, "Mops/s")
					b.ReportMetric(0, "ns/op")
				})
			}
		}
	}
}

// BenchmarkStacks regenerates the §5.5 stack comparison (treiber vs optik,
// reported in the text as behaving similarly).
func BenchmarkStacks(b *testing.B) {
	for _, algo := range figures.StackAlgos() {
		for _, th := range benchThreads {
			b.Run(fmt.Sprintf("%s/threads=%d", algo.Name, th), func(b *testing.B) {
				var mops float64
				for i := 0; i < b.N; i++ {
					mops = workload.RunStack(th, benchDuration, algo.New)
				}
				b.ReportMetric(mops, "Mops/s")
				b.ReportMetric(0, "ns/op")
			})
		}
	}
}

// BenchmarkBucketLayout isolates the bucket memory layout: OptikGL's
// packed parallel arrays (eight bucket locks per cache line, head pointers
// in a second array) versus the padded one-cache-line slab bucket, under
// the same per-bucket OPTIK locking discipline. Update-heavy so the lock
// lines stay hot: at 1 thread the layouts should be at parity (one miss vs
// two on a cold bucket), at 16 the packed arrays additionally pay
// false-sharing invalidations on every neighbor-bucket CAS. The
// padded-slab-reuse row adds qsbr chain-node recycling to the same layout
// (ReportAllocs makes the allocation win visible; the nodes-reused metric
// proves the free lists are live), isolating the reclamation ablation
// from both the layout and the resize machinery.
func BenchmarkBucketLayout(b *testing.B) {
	impls := []figures.NamedSet{
		{Name: "packed-arrays", New: func() ds.Set { return hashmap.NewOptikGL(4096) }},
		{Name: "padded-slab", New: func() ds.Set { return hashmap.NewSlab(4096) }},
		{Name: "padded-slab-reuse", New: func() ds.Set { return hashmap.NewSlabReuse(4096) }},
	}
	for _, impl := range impls {
		for _, th := range []int{1, 16} {
			b.Run(fmt.Sprintf("%s/threads=%d", impl.Name, th), func(b *testing.B) {
				b.ReportAllocs()
				factory := impl.New
				var last ds.Set
				reportSet(b, workload.Config{
					Threads: th, Duration: benchDuration,
					InitialSize: 4096, UpdatePct: 50,
				}, func() ds.Set { last = factory(); return last })
				reused := float64(0)
				if rs, ok := last.(interface {
					ReclaimStats() (retired, reclaimed, reused uint64)
				}); ok {
					_, _, r := rs.ReclaimStats()
					reused = float64(r)
				}
				b.ReportMetric(reused, "nodes-reused")
			})
		}
	}
	// The reuse ablation needs overflow chains to recycle: at the paper's
	// load factor 1 every element sits inline and no node is ever
	// allocated, so the recycling rows run at load 8 (16384 elements in
	// 2048 buckets, 50% updates) where the chain churn is the workload.
	// slab-fixed drops every unlinked node to the GC; slab-reuse feeds
	// them back through qsbr — the allocs/op and nodes-reused columns are
	// the isolated win, the Mops/s delta its validation price.
	chained := []figures.NamedSet{
		{Name: "slab-fixed", New: func() ds.Set { return hashmap.NewSlab(2048) }},
		{Name: "slab-reuse", New: func() ds.Set { return hashmap.NewSlabReuse(2048) }},
	}
	for _, impl := range chained {
		for _, th := range []int{1, 16} {
			b.Run(fmt.Sprintf("chained/%s/threads=%d", impl.Name, th), func(b *testing.B) {
				b.ReportAllocs()
				factory := impl.New
				var last ds.Set
				reportSet(b, workload.Config{
					Threads: th, Duration: benchDuration,
					InitialSize: 16384, UpdatePct: 50,
				}, func() ds.Set { last = factory(); return last })
				reused := float64(0)
				if rs, ok := last.(interface {
					ReclaimStats() (retired, reclaimed, reused uint64)
				}); ok {
					_, _, r := rs.ReclaimStats()
					reused = float64(r)
				}
				b.ReportMetric(reused, "nodes-reused")
			})
		}
	}
}

// BenchmarkResizeRamp drives the resize-under-load scenario: insert-heavy
// ramp from 1k to 200k elements through live incremental migrations.
func BenchmarkResizeRamp(b *testing.B) {
	for _, th := range benchThreads {
		b.Run(fmt.Sprintf("resizable/threads=%d", th), func(b *testing.B) {
			var mops float64
			for i := 0; i < b.N; i++ {
				res := workload.RunRamp(workload.RampConfig{
					Threads: th, StartSize: 1000, TargetSize: 200_000, SearchPct: 10,
				}, func() ds.Set { return hashmap.NewResizable(1024) })
				mops = res.Mops
			}
			b.ReportMetric(mops, "Mops/s")
			b.ReportMetric(0, "ns/op")
		})
	}
}

// BenchmarkChurn drives the delete-heavy churn scenario: two grow/drain
// cycles between 100k elements and 100k/16, with searches mixed in. The
// resizable table must shrink back between cycles (final-buckets metric)
// and recycle its chain nodes through the qsbr free lists instead of
// re-allocating (allocs/op via ReportAllocs, plus the nodes-reused
// metric — the fixed slab, which never retires a node, is the foil for
// both). The read-heavy variant (90% searches) checks that readers stay
// lock-free through the shrink: its search p50/p99 against the fixed slab
// is the regression guard for the migration protocol's read path.
func BenchmarkChurn(b *testing.B) {
	const peak = 100_000
	impls := []figures.NamedSet{
		{Name: "resizable", New: func() ds.Set { return hashmap.NewResizable(peak / 8) }},
		{Name: "slab-fixed", New: func() ds.Set { return hashmap.NewSlab(peak / 8) }},
	}
	for _, mix := range []struct {
		label     string
		searchPct int
	}{{"update-heavy", 30}, {"read-heavy", 90}} {
		for _, impl := range impls {
			for _, th := range benchThreads {
				b.Run(fmt.Sprintf("%s/%s/threads=%d", mix.label, impl.Name, th), func(b *testing.B) {
					b.ReportAllocs()
					var res workload.ChurnResult
					for i := 0; i < b.N; i++ {
						res = workload.RunChurn(workload.ChurnConfig{
							Threads: th, PeakSize: peak, Cycles: 2,
							SearchPct: mix.searchPct, SampleLatency: true,
						}, impl.New)
					}
					b.ReportMetric(res.Mops, "Mops/s")
					b.ReportMetric(res.SearchLatency.P50, "search-p50-ns")
					b.ReportMetric(res.SearchLatency.P99, "search-p99-ns")
					b.ReportMetric(res.Latency.Max, "max-ns")
					b.ReportMetric(float64(res.FinalBuckets), "final-buckets")
					b.ReportMetric(float64(res.NodesReused), "nodes-reused")
					b.ReportMetric(0, "ns/op")
				})
			}
		}
	}
}

// BenchmarkChurnSteady isolates the read-only steady phase the churn
// workload gained: pure searches against a freshly quiesced table still
// sized for its peak, between the grow and the drain. The steady-p99
// metric is what shrinking exists to protect — scan cost against slabs
// the traffic no longer fills.
func BenchmarkChurnSteady(b *testing.B) {
	const peak = 50_000
	for _, th := range benchThreads {
		b.Run(fmt.Sprintf("resizable/threads=%d", th), func(b *testing.B) {
			b.ReportAllocs()
			var res workload.ChurnResult
			for i := 0; i < b.N; i++ {
				res = workload.RunChurn(workload.ChurnConfig{
					Threads: th, PeakSize: peak, Cycles: 2, SearchPct: 30,
					SteadyOps: peak, SampleLatency: true,
				}, func() ds.Set { return hashmap.NewResizable(peak / 8) })
			}
			b.ReportMetric(res.Mops, "Mops/s")
			b.ReportMetric(res.SteadyLatency.P50, "steady-p50-ns")
			b.ReportMetric(res.SteadyLatency.P99, "steady-p99-ns")
			b.ReportMetric(float64(res.NodesReused), "nodes-reused")
			b.ReportMetric(0, "ns/op")
		})
	}
}

// BenchmarkStore drives the sharded store on the mixed zipfian server
// workload (90% GET / 8% SET / 2% DEL over a churning key population)
// across shard counts, in a single-key variant and a batched one (every
// request a 16-key MGet/MSet/MDel). The shards=1 rows are the unsharded
// table behind the same API — the baseline the scaling axis is read
// against; the batch rows measure what hoisting the per-op fixed costs
// (router, reclamation handle, migration help) buys per key. Shard-count
// scaling is a parallelism win, so its full size shows on multi-core
// hardware; batching pays on any machine.
func BenchmarkStore(b *testing.B) {
	const initial = 65536
	threads := 16
	for _, shards := range []int{1, 4, 16} {
		for _, mode := range []struct {
			label    string
			batchPct int
		}{{"single", 0}, {"batch16", 100}} {
			name := fmt.Sprintf("shards=%d/%s/threads=%d", shards, mode.label, threads)
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				perShard := initial / shards
				var res workload.ServerResult
				for i := 0; i < b.N; i++ {
					res = workload.RunServer(workload.ServerConfig{
						Threads: threads, Duration: benchDuration, InitialSize: initial,
						SetPct: 8, DelPct: 2, BatchPct: mode.batchPct, BatchSize: 16,
					}, func() workload.Target {
						return store.New(store.WithShards(shards), store.WithShardBuckets(perShard))
					})
				}
				b.ReportMetric(res.Mops, "Mops/s")
				b.ReportMetric(100*res.HitRate, "hit-%")
				b.ReportMetric(float64(res.NodesReused), "nodes-reused")
				b.ReportMetric(0, "ns/op")
			})
		}
	}
}

// BenchmarkAblationNodeCache isolates the node-caching technique (§5.1):
// the same fine-grained OPTIK list with and without per-goroutine caches,
// on the large list where the paper reports ~50% gains.
func BenchmarkAblationNodeCache(b *testing.B) {
	cfg := workload.Config{
		Threads: 8, Duration: benchDuration, InitialSize: 8192, UpdatePct: 20,
	}
	b.Run("optik-nocache", func(b *testing.B) {
		reportSet(b, cfg, func() ds.Set { return noHandleSet{list.NewOptik()} })
	})
	b.Run("optik-cache", func(b *testing.B) {
		reportSet(b, cfg, func() ds.Set { return list.NewOptik() })
	})
}

// noHandleSet hides the Handled interface so ds.HandleFor cannot enable
// node caches.
type noHandleSet struct{ ds.Set }

// BenchmarkAblationOptikImpl compares the two OPTIK-lock implementations
// (versioned vs ticket) under the Figure-5 workload at 8 threads.
func BenchmarkAblationOptikImpl(b *testing.B) {
	for _, impl := range []workload.LockImpl{workload.LockOptikVersioned, workload.LockOptikTicket} {
		b.Run(string(impl), func(b *testing.B) {
			var res workload.LockResult
			for i := 0; i < b.N; i++ {
				res = workload.RunLock(workload.LockConfig{Threads: 8, Duration: benchDuration}, impl)
			}
			b.ReportMetric(res.Mops, "Mops/s")
			b.ReportMetric(0, "ns/op")
		})
	}
}

// BenchmarkAblationVictimThreshold sweeps the victim-queue diversion
// threshold (§5.4 uses >2) on the enqueue-heavy mix.
func BenchmarkAblationVictimThreshold(b *testing.B) {
	for _, threshold := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threshold=%d", threshold), func(b *testing.B) {
			var res workload.QueueResult
			for i := 0; i < b.N; i++ {
				res = workload.RunQueue(workload.QueueConfig{
					Threads: 16, Duration: benchDuration,
					InitialSize: 65536, EnqueuePct: 60,
				}, func() ds.Queue { return queue.NewOptikVictim(threshold) })
			}
			b.ReportMetric(res.Mops, "Mops/s")
			b.ReportMetric(0, "ns/op")
		})
	}
}

// BenchmarkAblationMapSearchVersion compares the §4.1 design discussion:
// reading the version once per restart (the paper's chosen design,
// arraymap.Optik) versus the pessimistic map that locks for every search.
func BenchmarkAblationMapSearchVersion(b *testing.B) {
	cfg := workload.Config{
		Threads: 8, Duration: benchDuration, InitialSize: 1024, UpdatePct: 10,
	}
	b.Run("optik-version-validated", func(b *testing.B) {
		reportSet(b, cfg, func() ds.Set { return arraymap.NewOptik(1024) })
	})
	b.Run("mcs-locked-search", func(b *testing.B) {
		reportSet(b, cfg, func() ds.Set { return arraymap.NewMCS(1024) })
	})
}
