// bench-diff compares two machine-readable benchmark documents written by
// optik-bench -json and reports throughput regressions, closing the loop
// on the bench-trend CI job: the job archives BENCH_*.json per commit, and
// this tool diffs the current run against the previous one.
//
// Usage:
//
//	bench-diff [-threshold 15] [-fail] old.json new.json
//
// Rows are joined on (figure, workload, impl, threads) and compared on
// Mops/s. Every matched row whose throughput dropped by more than
// threshold percent is reported — as a plain line, and as a GitHub Actions
// "::warning::" annotation when running under Actions (GITHUB_ACTIONS=true)
// — so regressions surface on the commit without failing the build on CI
// noise. Pass -fail to exit non-zero on any regression instead (for local
// gating runs with longer durations, where the numbers are trustworthy).
//
// Exit status: 0 on success (annotating mode), 1 on any regression with
// -fail, 2 on usage or input errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// doc mirrors the JSON shape of figures.Recorder.WriteJSON; unknown fields
// (latency tails, reclamation counters) are ignored — the diff is about
// throughput.
type doc struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	Rows        []row  `json:"rows"`
}

type row struct {
	Figure   string  `json:"figure"`
	Workload string  `json:"workload"`
	Impl     string  `json:"impl"`
	Threads  int     `json:"threads"`
	Mops     float64 `json:"mops"`
	// MaxProcs joins as a guard, not a key: rows that both carry it must
	// agree, or the comparison is across differently-sized runners and is
	// skipped with a note instead of reported as a phantom regression.
	// Rows without it (older baselines, non-server figures) join as before.
	MaxProcs int `json:"maxprocs"`
}

// key identifies a data point across runs.
type key struct {
	figure, workload, impl string
	threads                int
}

func main() {
	threshold := flag.Float64("threshold", 15, "regression threshold in percent")
	failFlag := flag.Bool("fail", false, "exit non-zero on any regression (default: annotate only)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bench-diff [-threshold pct] [-fail] old.json new.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	old, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-diff:", err)
		os.Exit(2)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-diff:", err)
		os.Exit(2)
	}

	base := map[key]row{}
	for _, r := range old.Rows {
		base[key{r.Figure, r.Workload, r.Impl, r.Threads}] = r
	}

	annotate := os.Getenv("GITHUB_ACTIONS") == "true"
	matched, regressions, skipped := 0, 0, 0
	for _, r := range cur.Rows {
		b, ok := base[key{r.Figure, r.Workload, r.Impl, r.Threads}]
		was := b.Mops
		if !ok || was <= 0 || r.Mops <= 0 {
			continue // new row, removed row, or a non-throughput point
		}
		if b.MaxProcs != 0 && r.MaxProcs != 0 && b.MaxProcs != r.MaxProcs {
			skipped++
			fmt.Printf("skipping %s / %s / %s @ %d threads: maxprocs %d vs %d, not comparable\n",
				r.Figure, r.Workload, r.Impl, r.Threads, b.MaxProcs, r.MaxProcs)
			continue
		}
		matched++
		deltaPct := (r.Mops - was) / was * 100
		if deltaPct < -*threshold {
			regressions++
			msg := fmt.Sprintf("%s / %s / %s @ %d threads: %.3f -> %.3f Mops/s (%.1f%%)",
				r.Figure, r.Workload, r.Impl, r.Threads, was, r.Mops, deltaPct)
			fmt.Println("REGRESSION:", msg)
			if annotate {
				fmt.Printf("::warning title=bench regression::%s\n", msg)
			}
		}
	}
	fmt.Printf("bench-diff: %d rows matched (%s -> %s), %d regressed beyond %.0f%%, %d skipped on maxprocs\n",
		matched, old.GeneratedAt, cur.GeneratedAt, regressions, *threshold, skipped)
	if regressions > 0 && *failFlag {
		os.Exit(1)
	}
}

func load(path string) (*doc, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var d doc
	if err := json.NewDecoder(f).Decode(&d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &d, nil
}
