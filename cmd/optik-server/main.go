// optik-server serves the sharded OPTIK string store over TCP, speaking
// the RESP-flavored protocol in docs/PROTOCOL.md (GET/SET/DEL,
// MGET/MSET/MDEL, LEN, STATS, QUIESCE, PING, QUIT; inline or multibulk
// framing, pipelining-friendly).
//
// Usage:
//
//	optik-server [-addr :7979] [-shards 0] [-shard-buckets 1024]
//	             [-batch 512] [-coalesce 256] [-maxconns 0]
//
// Flags:
//
//	-addr          listen address (default :7979)
//	-shards        index shards, rounded up to a power of two
//	               (default 0 = one per core)
//	-shard-buckets per-shard floor bucket count (default 1024)
//	-batch         pipelined requests executed per reply flush
//	               (default 512)
//	-coalesce      max keys per coalesced run of pipelined same-kind
//	               scalar commands (default 256, 0 disables)
//	-maxconns      concurrent connection cap (default 0 = unlimited)
//
// Try it with netcat:
//
//	$ printf 'SET user:1 alice\r\nGET user:1\r\nLEN\r\nQUIT\r\n' | nc localhost 7979
//	:0
//	$5
//	alice
//	:1
//	+OK
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"github.com/optik-go/optik/server"
	"github.com/optik-go/optik/store"
)

func main() {
	addr := flag.String("addr", ":7979", "listen address")
	shards := flag.Int("shards", 0, "index shards, power of two (0 = one per core)")
	shardBuckets := flag.Int("shard-buckets", 1024, "per-shard floor bucket count")
	batch := flag.Int("batch", 512, "pipelined requests executed per reply flush")
	coalesce := flag.Int("coalesce", server.DefaultCoalesce,
		"max keys per coalesced run of pipelined same-kind scalar commands (0 disables)")
	maxConns := flag.Int("maxconns", 0, "concurrent connection cap (0 = unlimited)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: optik-server [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	st := store.NewStrings(store.WithShards(*shards), store.WithShardBuckets(*shardBuckets))
	defer st.Close()
	srv := server.New(st, server.WithPipeline(*batch), server.WithCoalesce(*coalesce),
		server.WithMaxConns(*maxConns))

	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "optik-server:", err)
		os.Exit(1)
	}
	fmt.Printf("optik-server: serving %d shards on %s (batch %d, coalesce %d, maxconns %d)\n",
		st.Index().Shards(), bound, *batch, *coalesce, *maxConns)

	// SIGINT/SIGTERM drain the server before the store's scheduler stops.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("optik-server: shutting down")
		srv.Close()
	}()

	if err := srv.Serve(); err != nil {
		fmt.Fprintln(os.Stderr, "optik-server:", err)
		os.Exit(1)
	}
}
