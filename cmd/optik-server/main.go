// optik-server serves the sharded OPTIK string store over TCP, speaking
// the RESP-flavored protocol in docs/PROTOCOL.md (GET/SET/DEL,
// MGET/MSET/MDEL, LEN, STATS, QUIESCE, PING, QUIT; inline or multibulk
// framing, pipelining-friendly).
//
// Usage:
//
//	optik-server [-addr :7979] [-shards 0] [-shard-buckets 1024]
//	             [-batch 512] [-coalesce 256] [-maxconns 0] [-ordered]
//
// Flags:
//
//	-addr          listen address (default :7979)
//	-shards        index shards, rounded up to a power of two
//	               (default 0 = one per core)
//	-shard-buckets per-shard floor bucket count (default 1024; hash
//	               store only)
//	-batch         pipelined requests executed per reply flush
//	               (default 512)
//	-coalesce      max keys per coalesced run of pipelined same-kind
//	               scalar commands (default 256, 0 disables)
//	-maxconns      concurrent connection cap (default 0 = unlimited)
//	-ordered       back the server with the range-partitioned skip-list
//	               store instead of the hash store: keys must be decimal
//	               uint64s, and the ordered command family (SCAN, RANGE,
//	               MIN, MAX) comes alive
//	-keymax        largest expected key of the ordered store — bounds its
//	               range partition (0 = full key space; ignored without
//	               -ordered)
//
// Try it with netcat:
//
//	$ printf 'SET user:1 alice\r\nGET user:1\r\nLEN\r\nQUIT\r\n' | nc localhost 7979
//	:0
//	$5
//	alice
//	:1
//	+OK
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"github.com/optik-go/optik/server"
	"github.com/optik-go/optik/store"
)

func main() {
	addr := flag.String("addr", ":7979", "listen address")
	shards := flag.Int("shards", 0, "index shards, power of two (0 = one per core)")
	shardBuckets := flag.Int("shard-buckets", 1024, "per-shard floor bucket count")
	batch := flag.Int("batch", 512, "pipelined requests executed per reply flush")
	coalesce := flag.Int("coalesce", server.DefaultCoalesce,
		"max keys per coalesced run of pipelined same-kind scalar commands (0 disables)")
	maxConns := flag.Int("maxconns", 0, "concurrent connection cap (0 = unlimited)")
	ordered := flag.Bool("ordered", false, "back the server with the range-partitioned skip-list store (decimal keys, SCAN/RANGE/MIN/MAX)")
	keyMax := flag.Uint64("keymax", 0, "largest expected key of the ordered store (0 = full key space; ignored without -ordered)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: optik-server [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	sopts := []server.Option{server.WithPipeline(*batch), server.WithCoalesce(*coalesce),
		server.WithMaxConns(*maxConns)}
	var srv *server.Server
	var shardCount int
	var closeStore func()
	if *ordered {
		stOpts := []store.Option{store.WithShards(*shards)}
		if *keyMax > 0 {
			stOpts = append(stOpts, store.WithKeyMax(*keyMax))
		}
		st := store.NewSortedStrings(stOpts...)
		srv = server.NewOrdered(st, sopts...)
		shardCount = st.Index().Shards()
		closeStore = st.Close
	} else {
		st := store.NewStrings(store.WithShards(*shards), store.WithShardBuckets(*shardBuckets))
		srv = server.New(st, sopts...)
		shardCount = st.Index().Shards()
		closeStore = st.Close
	}
	defer closeStore()

	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "optik-server:", err)
		os.Exit(1)
	}
	fmt.Printf("optik-server: serving %d %s shards on %s (batch %d, coalesce %d, maxconns %d)\n",
		shardCount, storeKind(*ordered), bound, *batch, *coalesce, *maxConns)

	// SIGINT/SIGTERM drain the server before the store's scheduler stops.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("optik-server: shutting down")
		srv.Close()
	}()

	if err := srv.Serve(); err != nil {
		fmt.Fprintln(os.Stderr, "optik-server:", err)
		os.Exit(1)
	}
}

// storeKind labels the startup banner by backing store.
func storeKind(ordered bool) string {
	if ordered {
		return "ordered"
	}
	return "hash"
}
