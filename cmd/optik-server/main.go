// optik-server serves the sharded OPTIK string store over TCP, speaking
// the RESP-flavored protocol in docs/PROTOCOL.md (GET/SET/DEL,
// MGET/MSET/MDEL, LEN, STATS, QUIESCE, PING, QUIT; inline or multibulk
// framing, pipelining-friendly).
//
// Usage:
//
//	optik-server [-addr :7979] [-shards 0] [-shard-buckets 1024]
//	             [-batch 512] [-coalesce 256] [-maxconns 0]
//	             [-connmode goroutine] [-idle-grace 5s] [-shed-water 0]
//	             [-byte-budget 0] [-ordered]
//
// Flags:
//
//	-addr          listen address (default :7979)
//	-shards        index shards, rounded up to a power of two
//	               (default 0 = one per core)
//	-shard-buckets per-shard floor bucket count (default 1024; hash
//	               store only)
//	-batch         pipelined requests executed per reply flush
//	               (default 512)
//	-coalesce      max keys per coalesced run of pipelined same-kind
//	               scalar commands (default 256, 0 disables)
//	-maxconns      concurrent connection cap (default 0 = unlimited)
//	-connmode      connection mode: goroutine (default; one goroutine
//	               per conn) or poller (a shared epoll poller plus a
//	               small worker pool serves every conn — linux only,
//	               falls back to goroutine elsewhere)
//	-idle-grace    how long a conn may sit idle before its buffers are
//	               returned to the pool (default 5s; buffers come back
//	               on the next readable byte)
//	-shed-water    population high-water mark above which the server
//	               sheds idle-longest conns with -ERR busy retry
//	               (default: 90% of -maxconns when that is set)
//	-byte-budget   byte budget of the hash store (default 0 = unbounded):
//	               above it, maintenance passes and write-path hands
//	               evict sampled-idle entries back to the budget; STATS
//	               reports bytes_used and evicted (hash store only —
//	               the ordered store carries no TTL/eviction layer)
//	-ordered       back the server with the range-partitioned skip-list
//	               store instead of the hash store: keys must be decimal
//	               uint64s, and the ordered command family (SCAN, RANGE,
//	               MIN, MAX) comes alive
//	-keymax        largest expected key of the ordered store — bounds its
//	               range partition (0 = full key space; ignored without
//	               -ordered)
//
// Try it with netcat:
//
//	$ printf 'SET user:1 alice\r\nGET user:1\r\nLEN\r\nQUIT\r\n' | nc localhost 7979
//	:0
//	$5
//	alice
//	:1
//	+OK
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"github.com/optik-go/optik/server"
	"github.com/optik-go/optik/store"
)

func main() {
	addr := flag.String("addr", ":7979", "listen address")
	shards := flag.Int("shards", 0, "index shards, power of two (0 = one per core)")
	shardBuckets := flag.Int("shard-buckets", 1024, "per-shard floor bucket count")
	batch := flag.Int("batch", 512, "pipelined requests executed per reply flush")
	coalesce := flag.Int("coalesce", server.DefaultCoalesce,
		"max keys per coalesced run of pipelined same-kind scalar commands (0 disables)")
	maxConns := flag.Int("maxconns", 0, "concurrent connection cap (0 = unlimited)")
	connMode := flag.String("connmode", "goroutine", "connection mode: goroutine (one goroutine per conn) or poller (shared epoll poller; linux only)")
	idleGrace := flag.Duration("idle-grace", 0, "idle grace before a conn's buffers return to the pool (0 = default 5s)")
	shedWater := flag.Int("shed-water", 0, "shed idle conns above this population (0 = default: 90% of -maxconns)")
	byteBudget := flag.Int64("byte-budget", 0, "byte budget of the hash store, 0 = unbounded (incompatible with -ordered)")
	ordered := flag.Bool("ordered", false, "back the server with the range-partitioned skip-list store (decimal keys, SCAN/RANGE/MIN/MAX)")
	keyMax := flag.Uint64("keymax", 0, "largest expected key of the ordered store (0 = full key space; ignored without -ordered)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: optik-server [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	mode, err := server.ParseConnMode(*connMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "optik-server:", err)
		os.Exit(2)
	}
	if mode == server.ConnModePoller && !server.PollerSupported() {
		fmt.Fprintln(os.Stderr, "optik-server: -connmode poller is not supported on this platform; falling back to goroutine")
		mode = server.ConnModeGoroutine
	}

	sopts := []server.Option{server.WithPipeline(*batch), server.WithCoalesce(*coalesce),
		server.WithMaxConns(*maxConns), server.WithConnMode(mode)}
	if *idleGrace > 0 {
		sopts = append(sopts, server.WithIdleGrace(*idleGrace))
	}
	if *shedWater > 0 {
		sopts = append(sopts, server.WithShedWater(*shedWater))
	}
	var srv *server.Server
	var shardCount int
	var closeStore func()
	if *ordered {
		if *byteBudget > 0 {
			fmt.Fprintln(os.Stderr, "optik-server: -byte-budget requires the hash store (drop -ordered)")
			os.Exit(2)
		}
		stOpts := []store.Option{store.WithShards(*shards)}
		if *keyMax > 0 {
			stOpts = append(stOpts, store.WithKeyMax(*keyMax))
		}
		st := store.NewSortedStrings(stOpts...)
		srv = server.NewOrdered(st, sopts...)
		shardCount = st.Index().Shards()
		closeStore = st.Close
	} else {
		stOpts := []store.Option{store.WithShards(*shards), store.WithShardBuckets(*shardBuckets)}
		if *byteBudget > 0 {
			stOpts = append(stOpts, store.WithByteBudget(*byteBudget))
		}
		st := store.NewStrings(stOpts...)
		srv = server.New(st, sopts...)
		shardCount = st.Index().Shards()
		closeStore = st.Close
	}
	defer closeStore()

	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "optik-server:", err)
		os.Exit(1)
	}
	fmt.Printf("optik-server: serving %d %s shards on %s (batch %d, coalesce %d, maxconns %d, connmode %s)\n",
		shardCount, storeKind(*ordered), bound, *batch, *coalesce, *maxConns, mode)

	// SIGINT/SIGTERM drain the server before the store's scheduler stops.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("optik-server: shutting down")
		srv.Close()
	}()

	if err := srv.Serve(); err != nil {
		fmt.Fprintln(os.Stderr, "optik-server:", err)
		os.Exit(1)
	}
}

// storeKind labels the startup banner by backing store.
func storeKind(ordered bool) string {
	if ordered {
		return "ordered"
	}
	return "hash"
}
