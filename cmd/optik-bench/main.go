// optik-bench regenerates the paper's evaluation figures as text tables,
// plus the resize-under-load scenario.
//
// Usage:
//
//	optik-bench [flags] <figure>
//
// where <figure> is one of: fig5, fig7, fig9, fig10, fig11, fig12, stacks,
// resize, churn, server, net, ordered, conns, evict, all.
//
// Flags:
//
//	-threads  comma-separated thread counts to sweep (default 1,2,4,8,16)
//	-duration duration of each measured run (default 100ms; the paper
//	          uses 5s — pass -duration 5s -reps 11 for paper-scale runs)
//	-reps     repetitions per point, median reported (default 3)
//	-json     also write every measured point (impl, threads, Mops/s,
//	          CAS/validation, latency tail) as a JSON document to the given
//	          file, so the perf trajectory can be tracked across changes
//	-churn-peak  peak element count of the churn figure (default 100000;
//	          CI passes a small peak to keep the sweep short)
//	-janitor  run the resizable series of the resize and churn figures
//	          with the background janitor enabled (hashmap.WithJanitor):
//	          the table quiesces and recycles its nodes on its own when
//	          traffic idles, instead of relying on the workload's
//	          phase-flip Quiesce calls
//	-shards   comma-separated shard counts the server and ordered figures
//	          sweep (default 1,4,16; the 1-shard row is the unsharded
//	          baseline)
//	-batch    percentage of the server figure's requests issued as 16-key
//	          batches through MGet/MSet/MDel (default 20)
//	-net      drive the net figure (or the ordered figure's net series)
//	          against an already-running optik-server at this address;
//	          empty (the default) starts a private loopback server per
//	          cell (the ordered figure needs optik-server -ordered)
//	-pipelines comma-separated wire pipeline depths the net figure sweeps
//	          (default 1,16,64,256)
//	-conns    comma-separated connection populations the conns figure
//	          sweeps (default 64,1024,4096; populations above ~1k need a
//	          raised ulimit -n — the nightly adds 10000)
//	-active   comma-separated active-connection percentages the conns
//	          figure sweeps per population (default 100,5)
//
// Example:
//
//	optik-bench -threads 1,4,16 -duration 500ms -reps 5 -json BENCH_fig9.json fig9
//	optik-bench -threads 16 -janitor churn
//	optik-bench -threads 4,16 -shards 1,8 -batch 50 server
//	optik-bench -threads 4 -pipelines 1,16,64 net
//	optik-bench -threads 4 -net 127.0.0.1:7979 net
//	optik-bench -threads 4,16 -shards 1,8 ordered
//	optik-bench -duration 1s -conns 64,1024 -active 100,5 conns
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/optik-go/optik/internal/figures"
)

func main() {
	threadsFlag := flag.String("threads", "1,2,4,8,16", "comma-separated thread counts")
	durationFlag := flag.Duration("duration", 100*time.Millisecond, "duration per measured run")
	repsFlag := flag.Int("reps", 3, "repetitions per data point (median reported)")
	jsonFlag := flag.String("json", "", "write machine-readable results (JSON) to this file")
	churnPeakFlag := flag.Int("churn-peak", 0, "peak element count for the churn figure (0 = default 100000)")
	janitorFlag := flag.Bool("janitor", false, "enable the resizable table's background janitor in the resize/churn figures")
	shardsFlag := flag.String("shards", "1,4,16", "comma-separated shard counts for the server and ordered figures")
	batchFlag := flag.Int("batch", 20, "percentage of server-figure requests issued as 16-key batches")
	netFlag := flag.String("net", "", "drive the net figure against an already-running optik-server at this address (empty = private loopback server per cell)")
	pipelinesFlag := flag.String("pipelines", "1,16,64,256", "comma-separated wire pipeline depths for the net figure")
	connsFlag := flag.String("conns", "64,1024,4096", "comma-separated connection populations for the conns figure")
	activeFlag := flag.String("active", "100,5", "comma-separated active-connection percentages for the conns figure")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: optik-bench [flags] <fig5|fig7|fig9|fig10|fig11|fig12|stacks|resize|churn|server|net|ordered|conns|evict|all>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	threads, err := parseThreads(*threadsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "optik-bench:", err)
		os.Exit(2)
	}
	shards, err := parseThreads(*shardsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "optik-bench: -shards:", err)
		os.Exit(2)
	}
	pipelines, err := parseThreads(*pipelinesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "optik-bench: -pipelines:", err)
		os.Exit(2)
	}
	connCounts, err := parseThreads(*connsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "optik-bench: -conns:", err)
		os.Exit(2)
	}
	activePcts, err := parseThreads(*activeFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "optik-bench: -active:", err)
		os.Exit(2)
	}
	opts := figures.RunOpts{
		Threads:    threads,
		Duration:   *durationFlag,
		Reps:       *repsFlag,
		Out:        os.Stdout,
		ChurnPeak:  *churnPeakFlag,
		Janitor:    *janitorFlag,
		Shards:     shards,
		BatchPct:   *batchFlag,
		NetAddr:    *netFlag,
		Pipelines:  pipelines,
		Conns:      connCounts,
		ActivePcts: activePcts,
	}
	var rec *figures.Recorder
	if *jsonFlag != "" {
		rec = &figures.Recorder{}
		opts.Record = rec
	}

	figure := strings.ToLower(flag.Arg(0))
	runners := map[string]func(figures.RunOpts){
		"fig5":    figures.Fig5,
		"fig7":    figures.Fig7,
		"fig9":    figures.Fig9,
		"fig10":   figures.Fig10,
		"fig11":   figures.Fig11,
		"fig12":   figures.Fig12,
		"stacks":  figures.Stacks,
		"resize":  figures.FigResize,
		"churn":   figures.FigChurn,
		"server":  figures.FigServer,
		"net":     figures.FigNet,
		"ordered": figures.FigOrdered,
		"conns":   figures.FigConns,
		"evict":   figures.FigEvict,
		"all":     figures.All,
	}
	run, ok := runners[figure]
	if !ok {
		fmt.Fprintf(os.Stderr, "optik-bench: unknown figure %q\n", figure)
		flag.Usage()
		os.Exit(2)
	}
	run(opts)

	if rec != nil {
		f, err := os.Create(*jsonFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "optik-bench:", err)
			os.Exit(1)
		}
		err = rec.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "optik-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "optik-bench: wrote %d data points to %s\n", len(rec.Rows), *jsonFlag)
	}
}

func parseThreads(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("invalid thread count %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}
