// optik-stress is a long-running correctness harness: it hammers every
// data structure in the library with concurrent operations, verifies
// conservation invariants, and checks recorded histories for
// linearizability with the Wing–Gong checker.
//
// Usage:
//
//	optik-stress [-duration 10s] [-threads 8] [-structures list,queue,...]
//	             [-janitor=false]
//
// The hashmaps family additionally drives the resizable table through two
// full grow/drain churn cycles and — unless -janitor=false — runs that
// churn with the background janitor on (hashmap.WithJanitor) plus a
// dedicated StartJanitor/Stop hammer under live traffic, verifying the
// janitor's lifecycle and the table's invariants never interfere.
//
// The stores family drives the sharded store.Store: a mixed
// scalar-and-batched GET/SET/DEL stream with exact conservation across
// every shard (the batched MSet/MDel counts must add up key for key),
// followed by a full drain with no Quiesce calls, after which the shared
// maintenance scheduler alone must return every shard to its floor.
//
// Exit status is non-zero if any check fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/optik-go/optik/ds"
	"github.com/optik-go/optik/ds/arraymap"
	"github.com/optik-go/optik/ds/hashmap"
	"github.com/optik-go/optik/ds/list"
	"github.com/optik-go/optik/ds/queue"
	"github.com/optik-go/optik/ds/skiplist"
	"github.com/optik-go/optik/internal/linearize"
	"github.com/optik-go/optik/internal/rng"
	"github.com/optik-go/optik/internal/workload"
	"github.com/optik-go/optik/store"
)

func main() {
	duration := flag.Duration("duration", 10*time.Second, "total stress budget")
	threads := flag.Int("threads", 8, "concurrent workers per structure")
	structures := flag.String("structures", "all", "comma-separated families: lists,hashmaps,skiplists,arraymaps,queues,stores (or all)")
	janitor := flag.Bool("janitor", true, "run the resizable churn check with the background janitor on, plus a start/stop hammer")
	flag.Parse()

	want := map[string]bool{}
	for _, s := range strings.Split(*structures, ",") {
		want[strings.TrimSpace(s)] = true
	}
	all := want["all"]

	sets := map[string]func() ds.Set{}
	add := func(family string, m map[string]func() ds.Set) {
		if all || want[family] {
			for k, v := range m {
				sets[family+"/"+k] = v
			}
		}
	}
	add("lists", map[string]func() ds.Set{
		"harris":      func() ds.Set { return list.NewHarris() },
		"lazy":        func() ds.Set { return list.NewLazy() },
		"mcs-gl-opt":  func() ds.Set { return list.NewMCSGL() },
		"optik-gl":    func() ds.Set { return list.NewOptikGL() },
		"optik":       func() ds.Set { return list.NewOptik() },
		"optik-cache": func() ds.Set { return list.NewOptik() },
		"lazy-cache":  func() ds.Set { return list.NewLazy() },
	})
	add("hashmaps", map[string]func() ds.Set{
		"optik":      func() ds.Set { return hashmap.NewOptik(32) },
		"optik-gl":   func() ds.Set { return hashmap.NewOptikGL(32) },
		"optik-map":  func() ds.Set { return hashmap.NewOptikMap(32, 8) },
		"lazy-gl":    func() ds.Set { return hashmap.NewLazyGL(32) },
		"java":       func() ds.Set { return hashmap.NewJava(32, 4) },
		"java-optik": func() ds.Set { return hashmap.NewJavaOptik(32, 4) },
		"slab":       func() ds.Set { return hashmap.NewSlab(32) },
		// Tiny initial size so the stress drives it through live resizes.
		"resizable": func() ds.Set { return hashmap.NewResizable(2) },
	})
	add("skiplists", map[string]func() ds.Set{
		"herlihy":    func() ds.Set { return skiplist.NewHerlihy() },
		"herl-optik": func() ds.Set { return skiplist.NewHerlihyOptik() },
		"fraser":     func() ds.Set { return skiplist.NewFraser() },
		"optik1":     func() ds.Set { return skiplist.NewOptik1() },
		"optik2":     func() ds.Set { return skiplist.NewOptik2() },
	})
	add("arraymaps", map[string]func() ds.Set{
		"mcs":   func() ds.Set { return arraymap.NewMCS(64) },
		"optik": func() ds.Set { return arraymap.NewOptik(64) },
	})

	queues := map[string]func() ds.Queue{}
	if all || want["queues"] {
		queues = map[string]func() ds.Queue{
			"ms-lf":  func() ds.Queue { return queue.NewMSLF() },
			"ms-lb":  func() ds.Queue { return queue.NewMSLB() },
			"optik0": func() ds.Queue { return queue.NewOptik0() },
			"optik1": func() ds.Queue { return queue.NewOptik1() },
			"optik2": func() ds.Queue { return queue.NewOptik2() },
			"optik3": func() ds.Queue { return queue.NewOptikVictim(0) },
		}
	}

	churn := all || want["hashmaps"]
	hammer := churn && *janitor
	stores := all || want["stores"]
	total := len(sets) + len(queues)
	if churn {
		total++
	}
	if hammer {
		total++
	}
	if stores {
		total++
	}
	if total == 0 {
		fmt.Fprintln(os.Stderr, "optik-stress: nothing selected")
		os.Exit(2)
	}
	per := *duration / time.Duration(total)
	if per < 100*time.Millisecond {
		per = 100 * time.Millisecond
	}
	failures := 0

	for name, mk := range sets {
		ok := stressSet(name, mk, *threads, per)
		if !ok {
			failures++
		}
	}
	if churn {
		if !stressResizableChurn(*threads, *janitor) {
			failures++
		}
	}
	if hammer {
		if !stressJanitorHammer(*threads) {
			failures++
		}
	}
	if stores {
		if !stressShardedStore(*threads) {
			failures++
		}
	}
	for name, mk := range queues {
		ok := stressQueue("queues/"+name, mk, *threads, per)
		if !ok {
			failures++
		}
	}
	if failures > 0 {
		fmt.Printf("FAILED: %d of %d structures\n", failures, total)
		os.Exit(1)
	}
	fmt.Printf("OK: %d structures stressed for %v total\n", total, *duration)
}

// stressResizableChurn hammers the resizable hash map through two full
// grow/steady/drain cycles (work-bound, so it ignores the per-structure
// time budget) and verifies the shrink path end to end: exact conservation
// between the net of successful updates and the final count, no migration
// left in flight, the bucket count back within 2× of the initial one
// instead of stranded at the peak, and — janitor or not, reclamation is
// always active — the node lifecycle must have recycled chain nodes.
func stressResizableChurn(threads int, janitor bool) bool {
	const (
		peak  = 30000
		start = peak / 8
	)
	floor := 1 // NewResizable rounds start up to a power of two
	for floor < start {
		floor <<= 1
	}
	name := "hashmaps/resizable-churn"
	factory := func() ds.Set { return hashmap.NewResizable(start) }
	if janitor {
		name = "hashmaps/resizable-churn-jan"
		factory = func() ds.Set { return hashmap.NewResizable(start, hashmap.WithJanitor()) }
	}
	res := workload.RunChurn(workload.ChurnConfig{
		Threads: threads, PeakSize: peak, Cycles: 2, SearchPct: 20, SteadyOps: peak / 2,
	}, factory)
	if res.FinalLen != res.Net {
		fmt.Printf("%-24s CONSERVATION VIOLATION: len=%d net=%d\n", name, res.FinalLen, res.Net)
		return false
	}
	if res.FinalBuckets > 2*floor {
		fmt.Printf("%-24s SHRINK FAILURE: %d buckets left for %d elements (floor %d)\n",
			name, res.FinalBuckets, res.FinalLen, floor)
		return false
	}
	if res.Resizes < 3 {
		fmt.Printf("%-24s SHRINK FAILURE: only %d resizes across two churn cycles\n", name, res.Resizes)
		return false
	}
	if res.NodesRetired == 0 || res.NodesReused == 0 {
		fmt.Printf("%-24s RECLAMATION FAILURE: retired=%d reused=%d across two churn cycles\n",
			name, res.NodesRetired, res.NodesReused)
		return false
	}
	fmt.Printf("%-24s ok (conservation + shrink: %d ops, %d resizes, %d final buckets, %d/%d nodes retired/reused)\n",
		name, res.Ops, res.Resizes, res.FinalBuckets, res.NodesRetired, res.NodesReused)
	return true
}

// stressJanitorHammer starts and stops the background janitor in a tight
// loop while workers churn the table, then leaves the janitor running,
// stops the traffic, and requires the table to reach its floor with no
// one calling Quiesce — the lifecycle is safe under fire AND the janitor
// actually does its job afterwards.
func stressJanitorHammer(threads int) bool {
	const name = "hashmaps/janitor-hammer"
	m := hashmap.NewResizable(64)
	var stop atomic.Bool
	var net atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.NewXorshift(seed)
			for !stop.Load() {
				key := r.Intn(20000) + 1
				if r.Intn(3) == 0 {
					if _, ok := m.Delete(key); ok {
						net.Add(-1)
					}
				} else if m.Insert(key, key) {
					net.Add(1)
				}
			}
		}(uint64(g + 1))
	}
	for i := 0; i < 200; i++ {
		m.StartJanitor(time.Millisecond)
		if i%2 == 0 {
			time.Sleep(500 * time.Microsecond)
		}
		m.Stop()
	}
	// Drain: delete-heavy traffic empties the table, then stops entirely.
	stop.Store(true)
	wg.Wait()
	for k := uint64(1); k <= 20000; k++ {
		if _, ok := m.Delete(k); ok {
			net.Add(-1)
		}
	}
	if int64(m.Len()) != net.Load() || net.Load() != 0 {
		fmt.Printf("%-24s CONSERVATION VIOLATION: len=%d net=%d\n", name, m.Len(), net.Load())
		return false
	}
	// The janitor, not the caller, must return the empty table to its
	// floor. DefaultJanitorInterval is 10ms; two idle ticks suffice, but
	// give the scheduler slack.
	m.StartJanitor(0)
	defer m.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for m.Buckets() != 64 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := m.Buckets(); got != 64 {
		fmt.Printf("%-24s JANITOR FAILURE: %d buckets after idle drain, want 64\n", name, got)
		return false
	}
	fmt.Printf("%-24s ok (200 start/stop cycles under load; janitor returned table to floor)\n", name)
	return true
}

// stressShardedStore verifies the sharded store end to end: a mixed
// scalar-and-batched stream with exact conservation summed across every
// shard (run twice: the server workload's own accounting, then a direct
// net-tracking hammer), and after a full drain the shared scheduler —
// one goroutine for the whole fleet, zero caller Quiesce calls — must
// return every shard to its floor bucket count.
func stressShardedStore(threads int) bool {
	const name = "stores/sharded-store"
	const shards = 8
	const floor = 64
	factory := func() *store.Store {
		return store.New(store.WithShards(shards), store.WithShardBuckets(floor),
			store.WithMaintenanceInterval(time.Millisecond))
	}

	// Phase 1: the server workload's batched mix, conservation via its own
	// accounting.
	res := workload.RunServer(workload.ServerConfig{
		Threads: threads, Duration: 500 * time.Millisecond, InitialSize: 20000,
		SetPct: 25, DelPct: 15, BatchPct: 40, BatchSize: 8,
	}, func() workload.Target { return factory() })
	if res.PrefillLen != 20000 || int64(res.FinalLen) != int64(res.PrefillLen)+res.Net {
		fmt.Printf("%-24s CONSERVATION VIOLATION: len=%d net=%d prefill=%d\n",
			name, res.FinalLen, res.Net, res.PrefillLen)
		return false
	}

	// Phase 2: direct hammer with external net tracking, then the drain.
	st := factory()
	defer st.Close()
	var net atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	const keyRange = 60000
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.NewXorshift(seed)
			keys := make([]uint64, 8)
			vals := make([]uint64, 8)
			for !stop.Load() {
				switch r.Intn(4) {
				case 0:
					if _, replaced := st.Set(r.Intn(keyRange)+1, seed); !replaced {
						net.Add(1)
					}
				case 1:
					if _, ok := st.Del(r.Intn(keyRange) + 1); ok {
						net.Add(-1)
					}
				case 2:
					for i := range keys {
						keys[i] = r.Intn(keyRange) + 1
						vals[i] = seed
					}
					net.Add(int64(st.MSet(keys, vals)))
				default:
					for i := range keys {
						keys[i] = r.Intn(keyRange) + 1
					}
					net.Add(-int64(st.MDel(keys)))
				}
			}
		}(uint64(g + 1))
	}
	time.Sleep(time.Second)
	stop.Store(true)
	wg.Wait()
	st.Quiesce()
	if int64(st.Len()) != net.Load() {
		fmt.Printf("%-24s CONSERVATION VIOLATION: len=%d net=%d across %d shards\n",
			name, st.Len(), net.Load(), shards)
		return false
	}
	// Drain everything; the scheduler alone must shrink the fleet home.
	keys := make([]uint64, 64)
	for base := uint64(1); base <= keyRange; base += 64 {
		for i := range keys {
			keys[i] = base + uint64(i)
		}
		net.Add(-int64(st.MDel(keys)))
	}
	if st.Len() != 0 || net.Load() != 0 {
		fmt.Printf("%-24s DRAIN FAILURE: len=%d net=%d\n", name, st.Len(), net.Load())
		return false
	}
	deadline := time.Now().Add(10 * time.Second)
	for st.Buckets() != shards*floor && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := st.Buckets(); got != shards*floor {
		fmt.Printf("%-24s SCHEDULER FAILURE: %d buckets after idle drain, want %d\n",
			name, got, shards*floor)
		return false
	}
	fmt.Printf("%-24s ok (batched+scalar conservation across %d shards; scheduler returned fleet to floor)\n",
		name, shards)
	return true
}

// stressSet runs (a) a conservation stress and (b) a linearizability check
// on short recorded histories, within budget.
func stressSet(name string, mk func() ds.Set, threads int, budget time.Duration) bool {
	deadline := time.Now().Add(budget)
	// Conservation: net successful inserts-deletes must equal final Len.
	s := mk()
	var net atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			view := ds.HandleFor(s)
			r := rng.NewXorshift(seed)
			for !stop.Load() {
				key := r.Intn(64) + 1
				if r.Intn(2) == 0 {
					if view.Insert(key, key) {
						net.Add(1)
					}
				} else {
					if _, ok := view.Delete(key); ok {
						net.Add(-1)
					}
				}
			}
		}(uint64(g + 1))
	}
	time.Sleep(budget / 2)
	stop.Store(true)
	wg.Wait()
	if int64(s.Len()) != net.Load() {
		fmt.Printf("%-24s CONSERVATION VIOLATION: len=%d net=%d\n", name, s.Len(), net.Load())
		return false
	}

	// Linearizability on small histories until the deadline.
	model := linearize.SetModel()
	rounds := 0
	for time.Now().Before(deadline) {
		h := recordSetHistory(mk(), min(threads, 6), 100, 6)
		if !linearize.Check(model, h) {
			fmt.Printf("%-24s LINEARIZABILITY VIOLATION (%d ops)\n", name, len(h))
			return false
		}
		rounds++
	}
	fmt.Printf("%-24s ok (conservation + %d linearizability rounds)\n", name, rounds)
	return true
}

func stressQueue(name string, mk func() ds.Queue, threads int, budget time.Duration) bool {
	deadline := time.Now().Add(budget)
	// Conservation: every enqueued value dequeued at most once; counts add up.
	q := mk()
	const perProducer = 20000
	seen := make([]atomic.Uint32, threads*perProducer+1)
	var dequeued atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Enqueue(uint64(id*perProducer + i + 1))
				if v, ok := q.Dequeue(); ok {
					if seen[v].Add(1) != 1 {
						fmt.Printf("%-24s DUPLICATE DEQUEUE of %d\n", name, v)
					}
					dequeued.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	for {
		v, ok := q.Dequeue()
		if !ok {
			break
		}
		if seen[v].Add(1) != 1 {
			fmt.Printf("%-24s DUPLICATE DEQUEUE of %d on drain\n", name, v)
			return false
		}
		dequeued.Add(1)
	}
	if dequeued.Load() != int64(threads*perProducer) {
		fmt.Printf("%-24s CONSERVATION VIOLATION: dequeued %d of %d\n",
			name, dequeued.Load(), threads*perProducer)
		return false
	}

	model := linearize.QueueModel()
	rounds := 0
	for time.Now().Before(deadline) {
		h := recordQueueHistory(mk(), 3, 14)
		if !linearize.Check(model, h) {
			fmt.Printf("%-24s LINEARIZABILITY VIOLATION (%d ops)\n", name, len(h))
			return false
		}
		rounds++
	}
	fmt.Printf("%-24s ok (conservation + %d linearizability rounds)\n", name, rounds)
	return true
}

func recordSetHistory(s ds.Set, goroutines, iters int, keys uint64) []linearize.Operation {
	var mu sync.Mutex
	var history []linearize.Operation
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			view := ds.HandleFor(s)
			r := rng.NewXorshift(uint64(id + 1))
			local := make([]linearize.Operation, 0, iters)
			for i := 0; i < iters; i++ {
				key := r.Intn(keys) + 1
				var in linearize.SetInput
				var out linearize.SetOutput
				call := time.Since(start).Nanoseconds()
				switch r.Intn(3) {
				case 0:
					val := r.Next()%1000 + 1
					in = linearize.SetInput{Op: linearize.OpInsert, Key: key, Val: val}
					out.OK = view.Insert(key, val)
				case 1:
					in = linearize.SetInput{Op: linearize.OpDelete, Key: key}
					out.Val, out.OK = view.Delete(key)
				default:
					in = linearize.SetInput{Op: linearize.OpSearch, Key: key}
					out.Val, out.OK = view.Search(key)
				}
				ret := time.Since(start).Nanoseconds()
				local = append(local, linearize.Operation{
					ClientID: id, Input: in, Output: out, Call: call, Return: ret,
				})
			}
			mu.Lock()
			history = append(history, local...)
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	return history
}

func recordQueueHistory(q ds.Queue, goroutines, iters int) []linearize.Operation {
	var mu sync.Mutex
	var history []linearize.Operation
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := rng.NewXorshift(uint64(id + 1))
			local := make([]linearize.Operation, 0, iters)
			for i := 0; i < iters; i++ {
				var in linearize.QueueInput
				var out linearize.QueueOutput
				call := time.Since(start).Nanoseconds()
				if r.Intn(2) == 0 {
					val := uint64(id*1000 + i + 1)
					in = linearize.QueueInput{Op: linearize.OpEnqueue, Val: val}
					q.Enqueue(val)
					out.OK = true
				} else {
					in = linearize.QueueInput{Op: linearize.OpDequeue}
					out.Val, out.OK = q.Dequeue()
				}
				ret := time.Since(start).Nanoseconds()
				local = append(local, linearize.Operation{
					ClientID: id, Input: in, Output: out, Call: call, Return: ret,
				})
			}
			mu.Lock()
			history = append(history, local...)
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	return history
}
