// Command optik-vet runs the repo's OPTIK analyzer fleet (atomicfield,
// optikvalidate, padcheck, qsbrguard — see internal/analysis and
// docs/INVARIANTS.md).
//
// Two modes, distinguished by the arguments:
//
//	go vet -vettool=$(which optik-vet) ./...
//
// drives it through the go command's vettool protocol (one JSON config
// per package, including test packages), which is how CI runs it; and
//
//	optik-vet [packages]
//
// standalone resolves the patterns (default ./...) with the go tool and
// analyzes them directly — handy for one-off sweeps. Both modes exit 2
// when diagnostics were reported.
package main

import (
	"fmt"
	"os"
	"strings"

	"github.com/optik-go/optik/internal/analysis"
	"github.com/optik-go/optik/internal/analysis/fleet"
)

func main() {
	args := os.Args[1:]
	if isVetProtocol(args) {
		analysis.VetMain(args, fleet.Analyzers)
		return // unreachable: VetMain exits
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "optik-vet: %v\n", err)
		os.Exit(1)
	}
	diags, err := analysis.RunAnalyzers(pkgs, fleet.Analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "optik-vet: %v\n", err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

// isVetProtocol reports whether the go command is driving us: a -V/-flags
// identity probe or a single package config file.
func isVetProtocol(args []string) bool {
	for _, a := range args {
		if strings.HasPrefix(a, "-V") || strings.HasPrefix(a, "--V") || a == "-flags" || a == "--flags" {
			return true
		}
	}
	return len(args) == 1 && strings.HasSuffix(args[0], ".cfg")
}
