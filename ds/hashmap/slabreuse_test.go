package hashmap

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/optik-go/optik/internal/rng"
)

// TestSlabReuseBasic pins the set semantics on both storage classes.
func TestSlabReuseBasic(t *testing.T) {
	m := NewSlabReuse(8)
	// Enough keys that several buckets spill into overflow chains.
	const n = 100
	for k := uint64(1); k <= n; k++ {
		if !m.Insert(k, k*3) {
			t.Fatalf("Insert(%d) failed", k)
		}
		if m.Insert(k, k) {
			t.Fatalf("duplicate Insert(%d) succeeded", k)
		}
	}
	if got := m.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	for k := uint64(1); k <= n; k++ {
		if v, ok := m.Search(k); !ok || v != k*3 {
			t.Fatalf("Search(%d) = %d,%v", k, v, ok)
		}
	}
	for k := uint64(1); k <= n; k += 2 {
		if v, ok := m.Delete(k); !ok || v != k*3 {
			t.Fatalf("Delete(%d) = %d,%v", k, v, ok)
		}
		if _, ok := m.Delete(k); ok {
			t.Fatalf("double Delete(%d) succeeded", k)
		}
	}
	for k := uint64(1); k <= n; k++ {
		_, ok := m.Search(k)
		if want := k%2 == 0; ok != want {
			t.Fatalf("Search(%d) = %v after deletes, want %v", k, ok, want)
		}
	}
}

// TestSlabReuseRecycles is the satellite's point: steady-state churn on
// the fixed table must retire chain nodes through qsbr and serve later
// chain allocations from the free list — the baseline-table reclamation
// the ROADMAP called for, isolated from any resize machinery.
func TestSlabReuseRecycles(t *testing.T) {
	const n = 4000
	m := NewSlabReuse(64) // load 62: nearly everything chains
	for cycle := 0; cycle < 3; cycle++ {
		for k := uint64(1); k <= n; k++ {
			m.Insert(k, k)
		}
		for k := uint64(1); k <= n; k++ {
			m.Delete(k)
		}
	}
	retired, reclaimed, reused := m.ReclaimStats()
	if retired == 0 || reclaimed == 0 || reused == 0 {
		t.Fatalf("reclamation dead: retired=%d reclaimed=%d reused=%d", retired, reclaimed, reused)
	}
	if reused < retired/8 {
		t.Fatalf("reuse is marginal: %d reused of %d retired", reused, retired)
	}
	t.Logf("reclamation: %d retired, %d reclaimed, %d reused", retired, reclaimed, reused)
}

// TestSlabReuseChainHitValidates stages the retire-and-recycle window on
// the fixed table exactly as the Resizable white-box test does: the value
// read of a chain hit must be discarded when the bucket version moved,
// because the matched node may belong to its next owner already.
func TestSlabReuseChainHitValidates(t *testing.T) {
	m := NewSlabReuse(8)
	keys := make([]uint64, 0, inlinePairs+2)
	for k := uint64(1); len(keys) < cap(keys); k++ {
		if bucketIndex(k, len(m.buckets)) == 0 {
			keys = append(keys, k)
		}
	}
	for _, k := range keys {
		m.Insert(k, k*10)
	}
	target := keys[len(keys)-1]
	b := &m.buckets[0]
	var nd *node
	for cur := b.head.Load(); cur != nil; cur = cur.next.Load() {
		if cur.key.Load() == target {
			nd = cur
			break
		}
	}
	if nd == nil {
		t.Fatalf("key %d not in the overflow chain", target)
	}
	// Resizable's hook fires on its Search only; SlabReuse shares the
	// window, so stage it directly: deleting bumps the version (real
	// retirement), then the rewrite simulates the next owner.
	if _, ok := m.Delete(target); !ok {
		t.Fatalf("Delete(%d) failed", target)
	}
	nd.key.Store(keys[0])
	nd.val.Store(424242)
	if v, ok := m.Search(target); ok {
		t.Fatalf("Search(%d) = %d,true after retire+recycle; want miss", target, v)
	}
	for _, k := range keys[:len(keys)-1] {
		if v, ok := m.Search(k); !ok || v != k*10 {
			t.Fatalf("Search(%d) = %d,%v after recycle", k, v, ok)
		}
	}
}

// TestSlabReuseConcurrentConservation hammers the recycling table under
// the race detector: exact conservation plus live reclamation.
func TestSlabReuseConcurrentConservation(t *testing.T) {
	const workers = 8
	iters := 30000
	if testing.Short() {
		iters = 8000
	}
	m := NewSlabReuse(32) // heavy chaining: the recycle paths stay hot
	var net atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.NewXorshift(seed)
			for i := 0; i < iters; i++ {
				key := r.Intn(2048) + 1
				switch r.Intn(3) {
				case 0:
					if m.Insert(key, key) {
						net.Add(1)
					}
				case 1:
					if _, ok := m.Delete(key); ok {
						net.Add(-1)
					}
				default:
					m.Search(key)
				}
			}
		}(uint64(g + 1))
	}
	wg.Wait()
	if got, want := int64(m.Len()), net.Load(); got != want {
		t.Fatalf("Len = %d, net = %d", got, want)
	}
	retired, _, _ := m.ReclaimStats()
	if retired == 0 {
		t.Fatal("concurrent churn retired nothing")
	}
}
