package hashmap

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/optik-go/optik/internal/rng"
)

// TestJanitorReturnsTableToFloor is the acceptance scenario: a janitored
// table grown to 1M elements and drained to 1k must return to its floor
// bucket count with ZERO caller calls to Quiesce — the janitor notices
// the idle, drives the shrink chain home, and recycles the nodes.
func TestJanitorReturnsTableToFloor(t *testing.T) {
	total := uint64(1_000_000)
	if testing.Short() {
		total = 100_000
	}
	// With 1000 survivors the shrink cascade (count*shrinkLoad < buckets)
	// runs down to 4096 buckets; a 4096 floor makes "back at the floor"
	// exact rather than "within the hysteresis band".
	const keep = 1000
	const floor = 4096
	m := NewResizable(floor, WithJanitor())
	defer m.Stop()

	const workers = 8
	var wg sync.WaitGroup
	span := total / workers
	for g := uint64(0); g < workers; g++ {
		wg.Add(1)
		go func(lo, hi uint64) {
			defer wg.Done()
			for k := lo; k <= hi; k++ {
				m.Insert(k, k*3)
			}
		}(g*span+1, (g+1)*span)
	}
	wg.Wait()
	inserted := int(workers * span)
	if got := m.Len(); got != inserted {
		t.Fatalf("Len = %d after ramp, want %d", got, inserted)
	}
	for g := uint64(0); g < workers; g++ {
		wg.Add(1)
		go func(lo, hi uint64) {
			defer wg.Done()
			for k := lo; k <= hi; k++ {
				if k > keep {
					m.Delete(k)
				}
			}
		}(g*span+1, (g+1)*span)
	}
	wg.Wait()

	// No Quiesce anywhere: the janitor alone must bring the bucket count
	// back to the floor once it sees the traffic stopped.
	deadline := time.Now().Add(30 * time.Second)
	for m.Buckets() != floor && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := m.Buckets(); got != floor {
		t.Fatalf("buckets = %d after idle drain, want the %d floor", got, floor)
	}
	if got := m.Len(); got != keep {
		t.Fatalf("Len = %d, want %d", got, keep)
	}
	for k := uint64(1); k <= keep; k++ {
		if v, ok := m.Search(k); !ok || v != k*3 {
			t.Fatalf("survivor Search(%d) = %v,%v", k, v, ok)
		}
	}
	retired, _, _ := m.ReclaimStats()
	if retired == 0 {
		t.Fatal("drain retired no chain nodes")
	}
	m.checkMigrationState(t)
}

// TestJanitorStartStopHammer is the -race lifecycle stress: StartJanitor
// and Stop raced from several goroutines while others churn the table.
// Nothing may deadlock, leak past Stop, or break conservation.
func TestJanitorStartStopHammer(t *testing.T) {
	m := NewResizable(16)
	var stop atomic.Bool
	var net atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.NewXorshift(seed)
			for !stop.Load() {
				key := r.Intn(4096) + 1
				if r.Intn(2) == 0 {
					if m.Insert(key, key) {
						net.Add(1)
					}
				} else if _, ok := m.Delete(key); ok {
					net.Add(-1)
				}
			}
		}(uint64(g + 1))
	}
	var hammerWG sync.WaitGroup
	for g := 0; g < 4; g++ {
		hammerWG.Add(1)
		go func(id int) {
			defer hammerWG.Done()
			for i := 0; i < 50; i++ {
				m.StartJanitor(time.Millisecond)
				if (i+id)%3 == 0 {
					time.Sleep(200 * time.Microsecond)
				}
				m.Stop()
			}
		}(g)
	}
	hammerWG.Wait()
	stop.Store(true)
	wg.Wait()
	m.Stop() // idempotent on a stopped janitor
	m.Quiesce()
	if got, want := int64(m.Len()), net.Load(); got != want {
		t.Fatalf("Len = %d, net = %d after hammer", got, want)
	}
	m.checkMigrationState(t)
}

// TestWithJanitorOption pins the constructor option and the lifecycle
// contract: WithJanitor starts the goroutine, StartJanitor on a running
// janitor is a no-op, Stop is idempotent, and a stopped janitor can be
// restarted.
func TestWithJanitorOption(t *testing.T) {
	m := NewResizable(8, WithJanitor())
	m.jan.mu.Lock()
	running := m.jan.sched != nil
	m.jan.mu.Unlock()
	if !running {
		t.Fatal("WithJanitor did not start the janitor")
	}
	m.StartJanitor(time.Millisecond) // no-op on a running janitor
	m.Stop()
	m.Stop() // idempotent
	m.jan.mu.Lock()
	running = m.jan.sched != nil
	m.jan.mu.Unlock()
	if running {
		t.Fatal("Stop left the janitor registered")
	}
	// Restartable: grow the table, stop traffic, and let the restarted
	// janitor settle a pending resize with no Quiesce call.
	m.StartJanitor(time.Millisecond)
	defer m.Stop()
	for k := uint64(1); k <= 4096; k++ {
		m.Insert(k, k)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if rt := m.root.Load(); rt.next.Load() == nil && int64(len(rt.buckets))*maxLoad >= int64(m.Len()) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	rt := m.root.Load()
	if rt.next.Load() != nil || int64(len(rt.buckets))*maxLoad < int64(m.Len()) {
		t.Fatalf("restarted janitor left the table out of band: %d buckets for %d elements",
			m.Buckets(), m.Len())
	}
}
