package hashmap

import "github.com/optik-go/optik/internal/qsbr"

// This file is the glue between Resizable and the quiescent-state
// reclamation of internal/qsbr (the Go port of ssmem, the allocator under
// the paper's C structures, §3.3). Overflow-chain nodes come from a
// per-table qsbr pool and go back to it when an unlink or a migration
// makes them unreachable, so steady-state churn recycles nodes instead of
// re-allocating them.
//
// The protection story is deliberately NOT the classic "readers announce
// quiescent states" one — Resizable's readers are arbitrary goroutines
// that never register anywhere, and keeping reads lock-free and
// announcement-free is the point of the OPTIK design. Instead:
//
//   - Correctness is carried by version validation. A node can only leave
//     a bucket through a critical section on that bucket's OPTIK lock (a
//     chain delete or a migration), which bumps the bucket version. Any
//     optimistic scan that overlapped the retirement therefore fails its
//     validation — the chain-hit, miss, and update paths all re-check the
//     version before trusting anything they read — and restarts. A
//     recycled node's fields are atomics, so the doomed reads are
//     well-defined; they are discarded, never returned.
//   - The qsbr epochs are the recycling machinery: per-handle retire
//     lists, amortized sweeps, free-list-first allocation — ssmem's shape,
//     with writers (the only parties that retire or allocate) borrowing
//     handles from a qsbr.Pool for the node-touching part of an operation.
//
// The split mirrors the paper's decoupling claim: the concurrency control
// (OPTIK validation) does not care which reclamation scheme runs under it.

// reclaimer borrows a qsbr handle lazily — only operations that actually
// touch chain nodes pay for it; the inline-slot fast paths never do. The
// zero value with a nil pool (the fixed Slab table) allocates from the
// heap and retires to the garbage collector.
type reclaimer struct {
	pool  *qsbr.Pool
	th    *qsbr.Thread
	tried bool
}

// handle returns the borrowed qsbr handle, acquiring one on first use.
// Returns nil for heap-backed reclaimers and when the pool is exhausted
// (every slot borrowed by a descheduled goroutine) — the caller then falls
// back to plain allocation for this operation.
func (rc *reclaimer) handle() *qsbr.Thread {
	if rc == nil || rc.pool == nil {
		return nil
	}
	if !rc.tried {
		rc.tried = true
		rc.th = rc.pool.Acquire()
	}
	return rc.th
}

// alloc returns a chain node: recycled from the qsbr free list when one is
// available, freshly allocated otherwise. The caller owns the node until
// it links it; stale readers from the node's previous life may still scan
// it, which is why the caller must store key/val/next through the atomics
// before linking.
func (rc *reclaimer) alloc() *node {
	if th := rc.handle(); th != nil {
		if v := th.Alloc(); v != nil {
			return v.(*node)
		}
	}
	return new(node)
}

// retire hands an unlinked node to the reclamation scheme. Without a
// handle the node simply drops to the garbage collector — it is never
// reused, so validated readers stay safe either way.
func (rc *reclaimer) retire(n *node) {
	if th := rc.handle(); th != nil {
		th.Retire(n)
	}
}

// release returns the borrowed handle to the pool (running the amortized
// reclamation sweep when enough retirements accumulated). Safe to call on
// a reclaimer that never acquired; a released reclaimer can be used again.
func (rc *reclaimer) release() {
	if rc != nil && rc.th != nil {
		rc.pool.Release(rc.th)
		rc.th = nil
		rc.tried = false
	}
}
