package hashmap

import "github.com/optik-go/optik/internal/qsbr"

// This file is the glue between Resizable and the quiescent-state
// reclamation of internal/qsbr (the Go port of ssmem, the allocator under
// the paper's C structures, §3.3). Overflow-chain nodes come from a
// per-table qsbr pool and go back to it when an unlink or a migration
// makes them unreachable, so steady-state churn recycles nodes instead of
// re-allocating them.
//
// The protection story is deliberately NOT the classic "readers announce
// quiescent states" one — Resizable's readers are arbitrary goroutines
// that never register anywhere, and keeping reads lock-free and
// announcement-free is the point of the OPTIK design. Instead:
//
//   - Correctness is carried by version validation. A node can only leave
//     a bucket through a critical section on that bucket's OPTIK lock (a
//     chain delete or a migration), which bumps the bucket version. Any
//     optimistic scan that overlapped the retirement therefore fails its
//     validation — the chain-hit, miss, and update paths all re-check the
//     version before trusting anything they read — and restarts. A
//     recycled node's fields are atomics, so the doomed reads are
//     well-defined; they are discarded, never returned.
//   - The qsbr epochs are the recycling machinery: per-handle retire
//     lists, amortized sweeps, free-list-first allocation — ssmem's shape,
//     with writers (the only parties that retire or allocate) borrowing
//     handles from a qsbr.Pool for the node-touching part of an operation.
//
// The split mirrors the paper's decoupling claim: the concurrency control
// (OPTIK validation) does not care which reclamation scheme runs under it.
//
// The lifecycle carrier itself (lazy handle borrow, alloc/retire/release)
// is qsbr.Reclaimer, shared with the skip-list shards behind
// store.Ordered — exactly one node-lifecycle implementation exists. This
// alias keeps the table code on the short local name; the only
// table-shaped part left here is the typed allocation helper below.
type reclaimer = qsbr.Reclaimer

// allocNode returns a chain node: recycled from the qsbr free list when
// one is available, freshly allocated otherwise. The caller owns the node
// until it links it; stale readers from the node's previous life may
// still scan it, which is why the caller must store key/val/next through
// the atomics before linking.
func allocNode(rc *reclaimer) *node {
	if v := rc.Alloc(); v != nil {
		return v.(*node)
	}
	return new(node)
}
