package hashmap

import (
	"sync"
	"time"
)

// The background janitor closes the last gap between Resizable and a
// production deployment: migration advances on the backs of updates and
// Quiesce drives it home on demand, but a table whose traffic simply
// stops — a cache drained by a delete storm and then abandoned — would
// otherwise sit oversized forever, its retired chain nodes never swept.
// The janitor is a per-table goroutine that watches for that idleness and
// runs the maintenance itself: it drives in-flight migrations, starts
// whatever resize the thresholds call for, and announces quiescent states
// on the table's qsbr pool so retired nodes reach the free lists. With it
// running, a table grown to millions of entries and drained to a few
// thousand returns to its floor bucket count with zero caller calls to
// Quiesce.

// DefaultJanitorInterval is the poll period StartJanitor uses when given
// a non-positive interval: short enough that an abandoned table shrinks
// promptly, long enough that an idle janitor is invisible in a profile.
const DefaultJanitorInterval = 10 * time.Millisecond

// janitorState tracks the lifecycle of a table's janitor goroutine.
type janitorState struct {
	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

// StartJanitor starts the table's background janitor, polling every
// interval (DefaultJanitorInterval when interval <= 0). Starting an
// already-running janitor is a no-op; Stop halts it. Each tick the
// janitor samples the table's activity (root slab, migration cursor,
// element count); when two consecutive samples match, traffic is idle and
// it quiesces the table and sweeps the reclamation pool. While traffic is
// moving it only lends a bounded hand to any in-flight migration, leaving
// the updates to drive their own resizes.
func (r *Resizable) StartJanitor(interval time.Duration) {
	if interval <= 0 {
		interval = DefaultJanitorInterval
	}
	r.jan.mu.Lock()
	defer r.jan.mu.Unlock()
	if r.jan.stop != nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	r.jan.stop, r.jan.done = stop, done
	go r.janitor(interval, stop, done)
}

// Stop halts the background janitor and waits for its goroutine to exit
// (promptly even mid-quiesce: the janitor's maintenance loop is
// cancellable). A table whose janitor is not running is a no-op. Safe to
// call concurrently with operations, StartJanitor and other Stops.
func (r *Resizable) Stop() {
	r.jan.mu.Lock()
	stop, done := r.jan.stop, r.jan.done
	r.jan.stop, r.jan.done = nil, nil
	r.jan.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// janitorSnapshot is one activity sample; two equal consecutive samples
// mean no update touched the table in between (searches leave no trace,
// by design — reads alone never need maintenance).
type janitorSnapshot struct {
	root   *rtable
	cursor int64
	sum    int64
	seen   bool
}

func (r *Resizable) janitor(interval time.Duration, stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var snap janitorSnapshot
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		r.janitorTick(&snap, stop)
	}
}

// janitorTick runs one maintenance round; see StartJanitor for the
// policy. A spurious idle verdict (balanced traffic can leave the element
// count unchanged across ticks) is safe — quiescing is always correct,
// merely unnecessary — and the cancel channel keeps even a wrong verdict
// from outliving a Stop.
func (r *Resizable) janitorTick(s *janitorSnapshot, cancel <-chan struct{}) {
	t := r.root.Load()
	idle := s.seen && s.root == t && s.cursor == t.cursor.Load() && s.sum == r.count.Sum()
	if idle {
		r.quiesce(cancel)
		r.pool.Sweep()
	} else if t.next.Load() != nil {
		rc := reclaimer{pool: r.pool}
		r.help(&rc)
		rc.release()
	}
	// Snapshot the post-maintenance state: the janitor's own helping moves
	// the cursor, and sampling before it would make the janitor read its
	// own work as traffic and never conclude idle.
	t = r.root.Load()
	s.root, s.cursor, s.sum, s.seen = t, t.cursor.Load(), r.count.Sum(), true
}
