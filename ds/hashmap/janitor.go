package hashmap

import (
	"sync"
	"time"
)

// The background janitor closes the last gap between Resizable and a
// production deployment: migration advances on the backs of updates and
// Quiesce drives it home on demand, but a table whose traffic simply
// stops — a cache drained by a delete storm and then abandoned — would
// otherwise sit oversized forever, its retired chain nodes never swept.
// StartJanitor watches for that idleness and runs the maintenance itself:
// it drives in-flight migrations, starts whatever resize the thresholds
// call for, and announces quiescent states on the table's qsbr pool so
// retired nodes reach the free lists. With it running, a table grown to
// millions of entries and drained to a few thousand returns to its floor
// bucket count with zero caller calls to Quiesce.
//
// The machinery behind it is the shared maintenance Scheduler
// (scheduler.go): StartJanitor runs a private one-table scheduler, and a
// sharded deployment registers all its tables with one Scheduler instead,
// paying a single goroutine for the whole fleet.

// DefaultJanitorInterval is the base poll period StartJanitor and
// NewScheduler use when given a non-positive interval: short enough that
// an abandoned table shrinks promptly, long enough that an idle janitor
// is invisible in a profile. While a table stays idle the scheduler backs
// the interval off exponentially, up to idleBackoffMax times this.
const DefaultJanitorInterval = 10 * time.Millisecond

// janitorState tracks the private scheduler behind a table's StartJanitor.
type janitorState struct {
	mu    sync.Mutex
	sched *Scheduler
}

// StartJanitor starts the table's background janitor: a private
// maintenance scheduler polling at interval (DefaultJanitorInterval when
// interval <= 0, backing off while the table idles). Starting an
// already-running janitor is a no-op; Stop halts it. Tables sharing a
// fleet should Register with one Scheduler instead of starting one
// janitor each.
func (r *Resizable) StartJanitor(interval time.Duration) {
	r.jan.mu.Lock()
	defer r.jan.mu.Unlock()
	if r.jan.sched != nil {
		return
	}
	s := NewScheduler(interval)
	s.Register(r)
	r.jan.sched = s
}

// Stop halts the background janitor and waits for its scheduler goroutine
// to exit (promptly even mid-quiesce: the maintenance loop is
// cancellable). A table whose janitor is not running is a no-op, and a
// table registered with a shared Scheduler is not affected — Unregister
// it there instead. Safe to call concurrently with operations,
// StartJanitor and other Stops.
func (r *Resizable) Stop() {
	r.jan.mu.Lock()
	s := r.jan.sched
	r.jan.sched = nil
	r.jan.mu.Unlock()
	if s != nil {
		s.Stop()
	}
}
