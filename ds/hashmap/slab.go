package hashmap

import (
	"sync/atomic"
	"unsafe"

	"github.com/optik-go/optik/ds"
	"github.com/optik-go/optik/internal/backoff"
	"github.com/optik-go/optik/internal/core"
)

// This file implements the cache-conscious bucket slab shared by Slab and
// Resizable. OptikGL stores bucket locks and head pointers in two separate
// densely-packed arrays: eight core.Locks share a cache line, so every
// update CAS false-shares with seven neighbor buckets, and even an
// uncontended operation takes two misses (the lock line plus the head
// line). A slab bucket instead packs everything an operation touches into
// exactly one 64-byte line:
//
//	lock (8B) | overflow head (8B) | 3 × inline key/value pair (48B)
//
// The inline prefix is an arraymap-style fixed array, so at the paper's
// load factor (about one element per bucket) the common hit, miss, insert
// and delete all complete inside a single cache line; only buckets holding
// four or more keys spill into a sorted overflow chain, which reuses the
// chainNode layout of the other tables.

// inlinePairs is the number of key/value pairs stored inside the bucket
// line itself. 3 is what fits: 64 = 8 (lock) + 8 (head) + 3×16.
const inlinePairs = 3

// pairSlot is one inline slot. Key 0 marks the slot free (user keys are in
// [ds.MinKey, ds.MaxKey], as in arraymap). The fields are atomics so
// lock-free readers race cleanly with locked writers.
type pairSlot struct {
	key atomic.Uint64
	val atomic.Uint64
}

// bucket is one slab bucket, exactly one cache line. The OPTIK lock's
// version doubles as the validation word for the inline prefix: a search
// that matches an inline key re-checks the version to know it read the
// key/value pair atomically, and a feasible update's TryLockVersion proves
// its optimistic scan (free slot, chain position) is still valid.
type bucket struct {
	lock   core.Lock
	head   atomic.Pointer[chainNode] // sorted overflow chain
	inline [inlinePairs]pairSlot
}

// Compile-time proof that a bucket fills exactly one cache line: either
// expression overflows uint64 if the size drifts.
const (
	_ = uint64(core.CacheLineSize - unsafe.Sizeof(bucket{}))
	_ = uint64(unsafe.Sizeof(bucket{}) - core.CacheLineSize)
)

// search is the one-line fast path (fixed-table flavor: a miss returns
// without validation, which is linearizable because a key can only change
// buckets through a delete→insert pair, i.e. through an absence instant).
// An inline hit validates the version so the key/value pair is atomic.
func (b *bucket) search(key uint64) (uint64, bool) {
restart:
	vn := b.lock.GetVersionWait()
	for i := range b.inline {
		if b.inline[i].key.Load() == key {
			val := b.inline[i].val.Load()
			if b.lock.GetVersion().Same(vn) {
				return val, true
			}
			goto restart
		}
	}
	for cur := b.head.Load(); cur != nil && cur.key <= key; cur = cur.next.Load() {
		if cur.key == key {
			return cur.val, true
		}
	}
	return 0, false
}

// insert adds key→val if absent. The optimistic scan finds a duplicate
// (return false, no locking), a free inline slot, or the sorted chain
// position; TryLockVersion validates all of it in one CAS.
func (b *bucket) insert(key, val uint64) bool {
	var bo backoff.Backoff
	for {
		vn := b.lock.GetVersion()
		free := -1
		for i := range b.inline {
			switch b.inline[i].key.Load() {
			case key:
				return false // infeasible: no locking at all
			case 0:
				if free < 0 {
					free = i
				}
			}
		}
		var pred *chainNode
		cur := b.head.Load()
		for cur != nil && cur.key < key {
			pred, cur = cur, cur.next.Load()
		}
		if cur != nil && cur.key == key {
			return false // infeasible: no locking at all
		}
		if !b.lock.TryLockVersion(vn) {
			bo.Wait()
			continue
		}
		b.put(key, val, free, pred, cur)
		b.lock.Unlock()
		return true
	}
}

// put writes a validated insertion: into inline slot free if one was
// observed, otherwise linked into the sorted chain between pred and cur.
// The caller holds the bucket lock with the scan's version validated, so
// the slot is still free and the chain position still current.
func (b *bucket) put(key, val uint64, free int, pred, cur *chainNode) {
	if free >= 0 {
		b.inline[free].val.Store(val)
		b.inline[free].key.Store(key)
		return
	}
	n := &chainNode{key: key, val: val}
	n.next.Store(cur)
	if pred == nil {
		b.head.Store(n)
	} else {
		pred.next.Store(n)
	}
}

// del removes key, returning its value, if present. A miss returns without
// locking (fixed-table flavor, same argument as search).
func (b *bucket) del(key uint64) (uint64, bool) {
	var bo backoff.Backoff
	for {
		vn := b.lock.GetVersion()
		slot := -1
		for i := range b.inline {
			if b.inline[i].key.Load() == key {
				slot = i
				break
			}
		}
		if slot >= 0 {
			if !b.lock.TryLockVersion(vn) {
				bo.Wait()
				continue
			}
			// Validated: the slot still holds key, so the value is its.
			val := b.inline[slot].val.Load()
			b.inline[slot].key.Store(0)
			b.lock.Unlock()
			return val, true
		}
		var pred *chainNode
		cur := b.head.Load()
		for cur != nil && cur.key < key {
			pred, cur = cur, cur.next.Load()
		}
		if cur == nil || cur.key != key {
			return 0, false // infeasible: no locking at all
		}
		if !b.lock.TryLockVersion(vn) {
			bo.Wait()
			continue
		}
		if pred == nil {
			b.head.Store(cur.next.Load())
		} else {
			pred.next.Store(cur.next.Load())
		}
		b.lock.Unlock()
		return cur.val, true
	}
}

// size counts the bucket's elements (racy, for Len).
func (b *bucket) size() int {
	n := 0
	for i := range b.inline {
		if b.inline[i].key.Load() != 0 {
			n++
		}
	}
	for cur := b.head.Load(); cur != nil && cur != &forwarded; cur = cur.next.Load() {
		n++
	}
	return n
}

// Slab is OptikGL rebuilt on the contiguous bucket slab: the same
// per-bucket OPTIK locking discipline (searches and infeasible updates
// never lock; feasible updates validate-and-lock in one CAS) with the
// cache-line bucket layout, so the common path costs one cache miss
// instead of OptikGL's two and bucket locks never false-share.
type Slab struct {
	buckets []bucket
}

var _ ds.Set = (*Slab)(nil)

// NewSlab returns a fixed-capacity slab table with nbuckets buckets.
func NewSlab(nbuckets int) *Slab {
	if nbuckets <= 0 {
		panic("hashmap: nbuckets must be positive")
	}
	return &Slab{buckets: make([]bucket, nbuckets)}
}

func (t *Slab) bucket(key uint64) *bucket {
	return &t.buckets[bucketIndex(key, len(t.buckets))]
}

// Search returns the value stored under key, if present, without locking.
func (t *Slab) Search(key uint64) (uint64, bool) {
	ds.CheckKey(key)
	return t.bucket(key).search(key)
}

// Insert adds key→val if absent.
func (t *Slab) Insert(key, val uint64) bool {
	ds.CheckKey(key)
	return t.bucket(key).insert(key, val)
}

// Delete removes key, returning its value, if present.
func (t *Slab) Delete(key uint64) (uint64, bool) {
	ds.CheckKey(key)
	return t.bucket(key).del(key)
}

// Len sums the bucket sizes (not linearizable).
func (t *Slab) Len() int {
	n := 0
	for i := range t.buckets {
		n += t.buckets[i].size()
	}
	return n
}
