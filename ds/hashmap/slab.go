package hashmap

import (
	"reflect"
	"sync/atomic"
	"unsafe"

	"github.com/optik-go/optik/ds"
	"github.com/optik-go/optik/internal/backoff"
	"github.com/optik-go/optik/internal/core"
)

// This file implements the cache-conscious bucket slab shared by Slab and
// Resizable. OptikGL stores bucket locks and head pointers in two separate
// densely-packed arrays: eight core.Locks share a cache line, so every
// update CAS false-shares with seven neighbor buckets, and even an
// uncontended operation takes two misses (the lock line plus the head
// line). A slab bucket instead packs everything an operation touches into
// exactly one 64-byte line:
//
//	lock (8B) | overflow head (8B) | 3 × inline key/value pair (48B)
//
// The inline prefix is an arraymap-style fixed array, so at the paper's
// load factor (about one element per bucket) the common hit, miss, insert
// and delete all complete inside a single cache line; only buckets holding
// four or more keys spill into a sorted overflow chain of slab-private
// nodes.

// inlinePairs is the number of key/value pairs stored inside the bucket
// line itself. 3 is what fits: 64 = 8 (lock) + 8 (head) + 3×16.
const inlinePairs = 3

// node is one overflow-chain node of a slab bucket. It mirrors the
// chainNode layout of the baseline tables (24 bytes: key, value, next) but
// every field is atomic: Resizable recycles nodes through the qsbr free
// lists (reclaim.go), so a reader whose optimistic scan straddled a
// retirement can race the node's next owner rewriting it. The scan's
// version validation discards whatever such a reader saw; the atomics make
// the race well-defined for the memory model instead of undefined
// behavior. The fixed Slab table never retires nodes and pays nothing for
// the shared layout.
type node struct {
	key  atomic.Uint64
	val  atomic.Uint64
	next atomic.Pointer[node]
}

// pairSlot is one inline slot. Key 0 marks the slot free (user keys are in
// [ds.MinKey, ds.MaxKey], as in arraymap). The fields are atomics so
// lock-free readers race cleanly with locked writers.
type pairSlot struct {
	key atomic.Uint64
	val atomic.Uint64
}

// bucket is one slab bucket, exactly one cache line. The OPTIK lock's
// version doubles as the validation word for the inline prefix: a search
// that matches an inline key re-checks the version to know it read the
// key/value pair atomically, and a feasible update's TryLockVersion proves
// its optimistic scan (free slot, chain position) is still valid.
type bucket struct {
	lock   core.Lock
	head   atomic.Pointer[node] // sorted overflow chain
	inline [inlinePairs]pairSlot
}

// Compile-time proof that a bucket fills exactly one cache line: either
// expression overflows uint64 if the size drifts.
const (
	_ = uint64(core.CacheLineSize - unsafe.Sizeof(bucket{}))
	_ = uint64(unsafe.Sizeof(bucket{}) - core.CacheLineSize)
)

// newBucketSlab allocates an n-bucket slab whose base is 64-byte aligned,
// turning the one-line-per-bucket layout into a checked guarantee instead
// of an allocator accident. It is not one today: since the allocation
// headers of Go 1.22, a pointer-bearing object between 512 bytes and 32
// KiB carries an 8-byte type header inside its allocation slot, so a
// plain make([]bucket, n) for 9–511 buckets comes back 8 bytes off a
// cache line and *every* bucket in the slab straddles two lines — the
// exact failure mode the slab layout exists to prevent.
//
// The classic fixes don't survive contact with the GC. A bucket is
// exactly one cache line, so all elements of a []bucket share the same
// address modulo 64 — over-allocating whole buckets can never produce an
// aligned sub-slice. A byte-granularity shift through unsafe would move
// bucket.head (a GC-visible pointer) out of the words the collector scans
// as pointers, silently hiding live overflow chains from the GC. The one
// shift the collector does respect is a type-level one: when the plain
// allocation comes back misaligned, the constructor builds (via reflect)
// a struct type whose leading byte-array pad places its [n]bucket field
// at an aligned address, and returns a slice into that field. The
// pointer map is exact — the pad is genuinely part of the type — so
// chain nodes stay visible, and the slice keeps the whole allocation
// alive. The pad sweep covers every possible 8-byte-granular offset; if
// some future allocator defeats it entirely, the plain slab is returned
// as a last resort and TestBucketIsOneCacheLine fails loudly rather than
// letting every operation quietly pay two misses.
func newBucketSlab(n int) []bucket {
	s := make([]bucket, n)
	if uintptr(unsafe.Pointer(&s[0]))%uintptr(core.CacheLineSize) == 0 {
		return s
	}
	arr := reflect.ArrayOf(n, reflect.TypeOf(bucket{}))
	for pad := 8; pad < int(core.CacheLineSize); pad += 8 {
		st := reflect.StructOf([]reflect.StructField{
			{Name: "Pad", Type: reflect.ArrayOf(pad, reflect.TypeOf(byte(0)))},
			{Name: "Buckets", Type: arr},
		})
		v := reflect.New(st)
		p := unsafe.Add(v.UnsafePointer(), st.Field(1).Offset)
		if uintptr(p)%uintptr(core.CacheLineSize) == 0 {
			return unsafe.Slice((*bucket)(p), n)
		}
	}
	return s
}

// search is the one-line fast path (fixed-table flavor: a miss returns
// without validation, which is linearizable because a key can only change
// buckets through a delete→insert pair, i.e. through an absence instant).
// Hits validate the version: inline so the key/value pair is read
// atomically, chain so the value cannot come from a recycled node.
func (b *bucket) search(key uint64) (uint64, bool) {
restart:
	vn := b.lock.GetVersionWait()
	for i := range b.inline {
		if b.inline[i].key.Load() == key {
			val := b.inline[i].val.Load()
			if b.lock.GetVersion().Same(vn) {
				return val, true
			}
			goto restart
		}
	}
	for cur := b.head.Load(); cur != nil; cur = cur.next.Load() {
		k := cur.key.Load()
		if k > key {
			break
		}
		if k == key {
			// Validated chain hit, as in Resizable's search: only the fixed
			// Slab table calls this today, where the node could not have been
			// recycled, but the bucket type is shared with tables that do
			// recycle (see node's doc) and an unvalidated hit here is exactly
			// the chain-hit bug optikvalidate exists to catch.
			val := cur.val.Load()
			if b.lock.GetVersion().Same(vn) {
				return val, true
			}
			goto restart
		}
	}
	return 0, false
}

// insert adds key→val if absent. The optimistic scan finds a duplicate
// (return false, no locking), a free inline slot, or the sorted chain
// position; TryLockVersion validates all of it in one CAS.
func (b *bucket) insert(key, val uint64) bool {
	var bo backoff.Backoff
	for {
		vn := b.lock.GetVersion()
		free := -1
		for i := range b.inline {
			switch b.inline[i].key.Load() {
			case key:
				return false // infeasible: no locking at all
			case 0:
				if free < 0 {
					free = i
				}
			}
		}
		var pred *node
		cur := b.head.Load()
		for cur != nil && cur.key.Load() < key {
			pred, cur = cur, cur.next.Load()
		}
		if cur != nil && cur.key.Load() == key {
			return false // infeasible: no locking at all
		}
		if !b.lock.TryLockVersion(vn) {
			bo.Wait()
			continue
		}
		b.put(key, val, free, pred, cur, nil)
		b.lock.Unlock()
		return true
	}
}

// put writes a validated insertion: into inline slot free if one was
// observed, otherwise linked into the sorted chain between pred and cur.
// The caller holds the bucket lock with the scan's version validated, so
// the slot is still free and the chain position still current. A chain
// node comes from rc (recycled when possible; nil rc means plain heap),
// and its fields are stored before the linking store publishes it, so a
// reader that observes the link observes the fields.
func (b *bucket) put(key, val uint64, free int, pred, cur *node, rc *reclaimer) {
	if free >= 0 {
		b.inline[free].val.Store(val)
		b.inline[free].key.Store(key)
		return
	}
	n := allocNode(rc)
	n.key.Store(key)
	n.val.Store(val)
	n.next.Store(cur)
	if pred == nil {
		b.head.Store(n)
	} else {
		pred.next.Store(n)
	}
}

// del removes key, returning its value, if present. A miss returns without
// locking (fixed-table flavor, same argument as search).
func (b *bucket) del(key uint64) (uint64, bool) {
	var bo backoff.Backoff
	for {
		vn := b.lock.GetVersion()
		slot := -1
		for i := range b.inline {
			if b.inline[i].key.Load() == key {
				slot = i
				break
			}
		}
		if slot >= 0 {
			if !b.lock.TryLockVersion(vn) {
				bo.Wait()
				continue
			}
			// Validated: the slot still holds key, so the value is its.
			val := b.inline[slot].val.Load()
			b.inline[slot].key.Store(0)
			b.lock.Unlock()
			return val, true
		}
		var pred *node
		cur := b.head.Load()
		for cur != nil && cur.key.Load() < key {
			pred, cur = cur, cur.next.Load()
		}
		if cur == nil || cur.key.Load() != key {
			return 0, false // infeasible: no locking at all
		}
		if !b.lock.TryLockVersion(vn) {
			bo.Wait()
			continue
		}
		val := cur.val.Load()
		if pred == nil {
			b.head.Store(cur.next.Load())
		} else {
			pred.next.Store(cur.next.Load())
		}
		b.lock.Unlock()
		return val, true
	}
}

// size counts the bucket's elements (racy, for Len).
func (b *bucket) size() int {
	n := 0
	for i := range b.inline {
		if b.inline[i].key.Load() != 0 {
			n++
		}
	}
	for cur := b.head.Load(); cur != nil && cur != &forwarded; cur = cur.next.Load() {
		n++
	}
	return n
}

// Slab is OptikGL rebuilt on the contiguous bucket slab: the same
// per-bucket OPTIK locking discipline (searches and infeasible updates
// never lock; feasible updates validate-and-lock in one CAS) with the
// cache-line bucket layout, so the common path costs one cache miss
// instead of OptikGL's two and bucket locks never false-share.
type Slab struct {
	buckets []bucket
}

var _ ds.Set = (*Slab)(nil)

// NewSlab returns a fixed-capacity slab table with nbuckets buckets.
func NewSlab(nbuckets int) *Slab {
	if nbuckets <= 0 {
		panic("hashmap: nbuckets must be positive")
	}
	return &Slab{buckets: newBucketSlab(nbuckets)}
}

func (t *Slab) bucket(key uint64) *bucket {
	return &t.buckets[bucketIndex(key, len(t.buckets))]
}

// Search returns the value stored under key, if present, without locking.
func (t *Slab) Search(key uint64) (uint64, bool) {
	ds.CheckKey(key)
	return t.bucket(key).search(key)
}

// Insert adds key→val if absent.
func (t *Slab) Insert(key, val uint64) bool {
	ds.CheckKey(key)
	return t.bucket(key).insert(key, val)
}

// Delete removes key, returning its value, if present.
func (t *Slab) Delete(key uint64) (uint64, bool) {
	ds.CheckKey(key)
	return t.bucket(key).del(key)
}

// Len sums the bucket sizes (not linearizable).
func (t *Slab) Len() int {
	n := 0
	for i := range t.buckets {
		n += t.buckets[i].size()
	}
	return n
}
