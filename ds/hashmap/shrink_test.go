package hashmap

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/optik-go/optik/internal/rng"
)

// TestMigratePairMergesChains is the white-box test of the shrink merge
// critical section: two source buckets, both spilled into overflow chains,
// must land in their single half-table target bucket with nothing lost,
// nothing duplicated, and the chain still sorted, and both sources must be
// forwarded.
func TestMigratePairMergesChains(t *testing.T) {
	old := newRTable(8)
	next := newRTable(4)
	old.next.Store(next)

	// Brute-force keys that hash to the pair (2, 6) of the 8-bucket slab;
	// all of them hash to bucket 2 of the 4-bucket slab (the pair's target).
	var keys []uint64
	for k := uint64(1); len(keys) < 12; k++ {
		if i := old.index(k); i == 2 || i == 6 {
			if next.index(k) != 2 {
				t.Fatalf("key %d: old bucket %d but new bucket %d, want 2", k, i, next.index(k))
			}
			keys = append(keys, k)
		}
	}
	for _, k := range keys {
		if !old.buckets[old.index(k)].insert(k, k*11) {
			t.Fatalf("seed insert(%d) failed", k)
		}
	}

	old.migratePair(2, next, nil)

	if old.buckets[2].head.Load() != &forwarded || old.buckets[6].head.Load() != &forwarded {
		t.Fatal("pair not forwarded after migratePair")
	}
	got := map[uint64]uint64{}
	b := &next.buckets[2]
	for s := range b.inline {
		if k := b.inline[s].key.Load(); k != 0 {
			got[k] = b.inline[s].val.Load()
		}
	}
	prev := uint64(0)
	for cur := b.head.Load(); cur != nil; cur = cur.next.Load() {
		k := cur.key.Load()
		if k <= prev {
			t.Fatalf("merged chain not strictly ascending: %d after %d", k, prev)
		}
		prev = k
		if _, dup := got[k]; dup {
			t.Fatalf("key %d duplicated across inline and chain", k)
		}
		got[k] = cur.val.Load()
	}
	if len(got) != len(keys) {
		t.Fatalf("target bucket holds %d entries, want %d", len(got), len(keys))
	}
	for _, k := range keys {
		if got[k] != k*11 {
			t.Fatalf("key %d: got %d, want %d", k, got[k], k*11)
		}
	}
}

// TestResizableShrinkConverges drives the full shrink protocol end to end
// sequentially: grow under inserts, drain almost everything, quiesce, and
// require the table back inside the hysteresis band with the survivors
// intact — no lost keys, no duplicates, migration fully retired.
func TestResizableShrinkConverges(t *testing.T) {
	const total, keep = 8192, 128
	m := NewResizable(64)
	for k := uint64(1); k <= total; k++ {
		if !m.Insert(k, k*3) {
			t.Fatalf("Insert(%d) failed", k)
		}
	}
	m.Quiesce()
	peak := m.Buckets()
	if peak < total/(2*maxLoad) {
		t.Fatalf("table never grew: %d buckets for %d keys", peak, total)
	}
	for k := uint64(1); k <= total-keep; k++ {
		if v, ok := m.Delete(k); !ok || v != k*3 {
			t.Fatalf("Delete(%d) = %v,%v", k, v, ok)
		}
	}
	m.Quiesce()
	if m.root.Load().next.Load() != nil {
		t.Fatal("quiesce left a migration in flight")
	}
	if b := m.Buckets(); b >= peak || b > keep*shrinkLoad || b < 64 {
		t.Fatalf("buckets = %d after drain (peak %d, floor 64, want <= %d)", b, peak, keep*shrinkLoad)
	}
	m.checkMigrationState(t)
	if got := m.Len(); got != keep {
		t.Fatalf("Len = %d, want %d", got, keep)
	}
	got := m.entries(t)
	if len(got) != keep {
		t.Fatalf("entries = %d, want %d", len(got), keep)
	}
	for k := uint64(total - keep + 1); k <= total; k++ {
		if v, ok := m.Search(k); !ok || v != k*3 {
			t.Fatalf("survivor Search(%d) = %v,%v", k, v, ok)
		}
	}
}

// TestResizableChurnCycleBucketsReturn mirrors the acceptance scenario:
// grow to N, delete down to N/16, quiesce — the bucket count must return
// to within 2× of the initial one (and never below the floor).
func TestResizableChurnCycleBucketsReturn(t *testing.T) {
	const n, start = 16384, 2048
	m := NewResizable(start)
	for k := uint64(1); k <= n; k++ {
		m.Insert(k, k)
	}
	m.Quiesce()
	if peak := m.Buckets(); peak < n/(2*maxLoad) {
		t.Fatalf("peak buckets = %d, want >= %d", peak, n/(2*maxLoad))
	}
	for k := uint64(1); k <= n-n/16; k++ {
		m.Delete(k)
	}
	m.Quiesce()
	if b := m.Buckets(); b > 2*start || b < start {
		t.Fatalf("buckets = %d after churn cycle, want within [%d, %d]", b, start, 2*start)
	}
	if m.Resizes() < 3 {
		t.Fatalf("Resizes = %d, want grows plus shrinks", m.Resizes())
	}
	m.checkMigrationState(t)
	if got := m.Len(); got != n/16 {
		t.Fatalf("Len = %d, want %d", got, n/16)
	}
}

// TestResizableFlappingBounded oscillates the element count around the
// grow boundary and then around the shrink boundary, quiescing at every
// swing to hand the thresholds maximal opportunity, and asserts the
// hysteresis band keeps the total resize count bounded.
func TestResizableFlappingBounded(t *testing.T) {
	m := NewResizable(64) // grow boundary at 128 elements
	for k := uint64(1); k <= 128; k++ {
		m.Insert(k, k)
	}
	for cycle := 0; cycle < 200; cycle++ {
		for k := uint64(129); k <= 144; k++ {
			m.Insert(k, k)
		}
		m.Quiesce()
		for k := uint64(129); k <= 144; k++ {
			m.Delete(k)
		}
		m.Quiesce()
	}
	// Crossing 128 grows once, to 128 buckets; the shrink boundary is then
	// 32 — an 8× gap the oscillation cannot reach.
	if got := m.Resizes(); got > 1 {
		t.Fatalf("grow-boundary oscillation caused %d resizes, want <= 1", got)
	}
	for k := uint64(48); k <= 128; k++ {
		m.Delete(k)
	}
	for cycle := 0; cycle < 200; cycle++ {
		for k := uint64(32); k <= 47; k++ {
			m.Delete(k)
		}
		m.Quiesce()
		for k := uint64(32); k <= 47; k++ {
			m.Insert(k, k)
		}
		m.Quiesce()
	}
	// Crossing 32 shrinks once, to the 64-bucket floor; below the floor
	// nothing ever shrinks again, and growing needs 128 elements.
	if got := m.Resizes(); got > 2 {
		t.Fatalf("shrink-boundary oscillation caused %d resizes, want <= 2", got)
	}
	m.checkMigrationState(t)
}

// TestResizableConcurrentShrinkReaders is the race-detector stress for the
// halving path: workers drain 15/16 of their disjoint key ranges while
// reader goroutines continuously search keys that are never deleted — a
// key going missing mid-shrink, a torn pair, or a blocked reader shows up
// immediately. The table must come back inside the hysteresis band.
func TestResizableConcurrentShrinkReaders(t *testing.T) {
	const workers = 4
	span := uint64(2048)
	if testing.Short() {
		span = 1024
	}
	m := NewResizable(128)
	keyVal := func(k uint64) uint64 { return k*7 + 1 }
	kept := func(k uint64, base uint64) bool { return (k-base-1)%16 == 0 }

	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			base := id * span
			for k := base + 1; k <= base+span; k++ {
				if !m.Insert(k, keyVal(k)) {
					t.Errorf("Insert(%d) failed", k)
					return
				}
			}
		}(uint64(g))
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	m.Quiesce()
	peak := m.Buckets()

	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	for rd := 0; rd < 2; rd++ {
		readerWG.Add(1)
		go func(seed uint64) {
			defer readerWG.Done()
			r := rng.NewXorshift(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				base := (r.Next() % workers) * span
				k := base + 1 + 16*(r.Next()%(span/16))
				if !kept(k, base) {
					t.Errorf("reader picked a non-kept key %d", k)
					return
				}
				if v, ok := m.Search(k); !ok || v != keyVal(k) {
					t.Errorf("kept key %d lost during shrink: got %v,%v", k, v, ok)
					return
				}
			}
		}(uint64(rd + 1))
	}

	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			base := id * span
			for k := base + 1; k <= base+span; k++ {
				if kept(k, base) {
					continue
				}
				if v, ok := m.Delete(k); !ok || v != keyVal(k) {
					t.Errorf("Delete(%d) = %v,%v", k, v, ok)
					return
				}
			}
		}(uint64(g))
	}
	wg.Wait()
	m.Quiesce()
	close(stop)
	readerWG.Wait()
	if t.Failed() {
		return
	}

	remaining := int(workers * span / 16)
	if m.root.Load().next.Load() != nil {
		t.Fatal("quiesce left a migration in flight")
	}
	if b := m.Buckets(); b >= peak || b > remaining*shrinkLoad || b < 128 {
		t.Fatalf("buckets = %d after concurrent drain (peak %d, %d remaining)", b, peak, remaining)
	}
	m.checkMigrationState(t)
	if got := m.Len(); got != remaining {
		t.Fatalf("Len = %d, want %d", got, remaining)
	}
	got := m.entries(t)
	if len(got) != remaining {
		t.Fatalf("entries = %d, want %d", len(got), remaining)
	}
	for k, v := range got {
		base := (k - 1) / span * span
		if !kept(k, base) || v != keyVal(k) {
			t.Fatalf("unexpected survivor %d=%d", k, v)
		}
	}
}

// TestResizableLenClamped pins the Len contract: a transiently negative
// striped sum (a reader catching a delete's decrement before the matching
// insert's increment) must read as 0, never as a negative or wrapped
// count.
func TestResizableLenClamped(t *testing.T) {
	m := NewResizable(8)
	m.count.AddOp(1, -5) // simulate the racing-reader snapshot directly
	if got := m.Len(); got != 0 {
		t.Fatalf("Len = %d with negative sum, want 0", got)
	}
	m.count.AddOp(1, 5)
	if got := m.Len(); got != 0 {
		t.Fatalf("Len = %d after restoring, want 0", got)
	}
	for k := uint64(1); k <= 3; k++ {
		m.Insert(k, k)
	}
	if got := m.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
}

// TestResizableLenNeverNegativeUnderChurn hammers concurrent insert/delete
// pairs while a reader polls Len, asserting it never goes negative and
// lands exactly right once quiescent.
func TestResizableLenNeverNegativeUnderChurn(t *testing.T) {
	const workers = 4
	iters := 40000
	if testing.Short() {
		iters = 10000
	}
	m := NewResizable(4)
	var net atomic.Int64
	done := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if got := m.Len(); got < 0 {
				t.Errorf("Len = %d, want >= 0", got)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.NewXorshift(seed)
			for i := 0; i < iters; i++ {
				key := r.Intn(64) + 1
				if r.Next()%2 == 0 {
					if m.Insert(key, key) {
						net.Add(1)
					}
				} else if _, ok := m.Delete(key); ok {
					net.Add(-1)
				}
			}
		}(uint64(g + 1))
	}
	wg.Wait()
	close(done)
	readerWG.Wait()
	if got, want := m.Len(), int(net.Load()); got != want {
		t.Fatalf("quiescent Len = %d, want %d", got, want)
	}
}
