package hashmap_test

import (
	"fmt"
	"time"

	"github.com/optik-go/optik/ds/hashmap"
)

// ExampleResizable_upsert shows in-place value replacement — the serving
// store's Set semantics, in contrast to the paper tables' strict Insert.
func ExampleResizable_upsert() {
	m := hashmap.NewResizable(64)

	if _, replaced := m.Upsert(42, 1); !replaced {
		fmt.Println("fresh insert")
	}
	if old, replaced := m.Upsert(42, 2); replaced {
		fmt.Println("replaced", old)
	}
	if v, ok := m.Search(42); ok {
		fmt.Println("now holds", v)
	}
	fmt.Println("len", m.Len())
	// Output:
	// fresh insert
	// replaced 1
	// now holds 2
	// len 1
}

// ExampleScheduler shows one maintenance goroutine servicing a fleet of
// tables: both tables are grown far past their floor, drained, and then
// — with zero Quiesce calls from the caller — shrunk back to their floor
// bucket counts by the shared scheduler alone.
func ExampleScheduler() {
	sched := hashmap.NewScheduler(time.Millisecond)
	defer sched.Stop()

	tables := []*hashmap.Resizable{hashmap.NewResizable(64), hashmap.NewResizable(64)}
	for _, m := range tables {
		sched.Register(m)
	}
	for _, m := range tables {
		for k := uint64(1); k <= 10000; k++ {
			m.Insert(k, k)
		}
		for k := uint64(1); k <= 10000; k++ {
			m.Delete(k)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for _, m := range tables {
		for m.Buckets() != 64 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		fmt.Println("back at the floor:", m.Buckets(), "buckets,", m.Len(), "keys")
	}
	// Output:
	// back at the floor: 64 buckets, 0 keys
	// back at the floor: 64 buckets, 0 keys
}
