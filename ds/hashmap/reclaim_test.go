package hashmap

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/optik-go/optik/internal/rng"
)

// chainKeys brute-forces keys that all hash into one bucket of t, in
// ascending order (so the first inlinePairs inserted land in the inline
// prefix and the rest spill to the overflow chain).
func chainKeys(t *rtable, n int) []uint64 {
	byBucket := map[int][]uint64{}
	for k := uint64(1); ; k++ {
		i := t.index(k)
		byBucket[i] = append(byBucket[i], k)
		if len(byBucket[i]) == n {
			return byBucket[i]
		}
	}
}

// TestResizableChainHitValidates is the white-box test of the headline
// bugfix: Search's chain-hit path must re-validate the bucket version
// before trusting the value it read, because under node reuse the matched
// node can be retired and recycled — key and value rewritten by its next
// owner — between the key load and the value load. The test stages that
// interleaving deterministically through testHookChainHit: the hook fires
// in exactly that window, deletes the key (retiring its node with a
// version bump, as any real retirement does) and rewrites the node the
// way a recycling insert would. With the validation in place Search
// discards the torn read, restarts, and reports a clean miss; with the
// fix reverted it returns the next owner's value under the deleted key.
func TestResizableChainHitValidates(t *testing.T) {
	m := NewResizable(8)
	rt := m.root.Load()
	keys := chainKeys(rt, inlinePairs+2)
	for _, k := range keys {
		if !m.Insert(k, k*10) {
			t.Fatalf("Insert(%d) failed", k)
		}
	}
	target := keys[len(keys)-1] // inserted last: in the overflow chain
	b := &rt.buckets[rt.index(target)]
	var nd *node
	for cur := b.head.Load(); cur != nil; cur = cur.next.Load() {
		if cur.key.Load() == target {
			nd = cur
			break
		}
	}
	if nd == nil {
		t.Fatalf("key %d not in the overflow chain", target)
	}

	fired := false
	testHookChainHit = func() {
		if fired {
			return
		}
		fired = true
		// The retirement: a real critical section on the bucket (version
		// bump included), after which the node is recycling-eligible.
		if _, ok := m.Delete(target); !ok {
			t.Errorf("Delete(%d) failed inside hook", target)
		}
		// The recycle: what put does when the free list hands the node to
		// an insert of a different key.
		nd.key.Store(keys[0])
		nd.val.Store(424242)
	}
	defer func() { testHookChainHit = nil }()

	if v, ok := m.Search(target); ok {
		t.Fatalf("Search(%d) = %d,true through a recycled node; want a validated miss", target, v)
	}
	if !fired {
		t.Fatal("hook never fired: key was not found via the chain-hit path")
	}
	// The rest of the bucket is untouched by the simulated recycle as far
	// as the map's contract goes: every other key still resolves.
	for _, k := range keys[:len(keys)-1] {
		if v, ok := m.Search(k); !ok || v != k*10 {
			t.Fatalf("Search(%d) = %v,%v after recycle, want %d,true", k, v, ok, k*10)
		}
	}
}

// TestResizableChainNodeReuse pins the reclamation loop end to end:
// steady-state churn (insert a working set, drain it, repeat) must retire
// chain nodes into the qsbr free lists and serve later allocations from
// them, not from the heap.
func TestResizableChainNodeReuse(t *testing.T) {
	const n = 10000
	m := NewResizable(64)
	for cycle := 0; cycle < 3; cycle++ {
		for k := uint64(1); k <= n; k++ {
			m.Insert(k, k)
		}
		m.Quiesce()
		for k := uint64(1); k <= n; k++ {
			m.Delete(k)
		}
		m.Quiesce()
	}
	retired, reclaimed, reused := m.ReclaimStats()
	if retired == 0 {
		t.Fatal("no chain nodes ever retired across three churn cycles")
	}
	if reclaimed == 0 {
		t.Fatal("nodes retired but none reclaimed: sweeps never ran")
	}
	if reused == 0 {
		t.Fatal("nodes reclaimed but none reused: allocations never hit the free list")
	}
	if reused < retired/8 {
		t.Fatalf("reuse is marginal: %d reused of %d retired", reused, retired)
	}
	t.Logf("reclamation: %d retired, %d reclaimed, %d reused", retired, reclaimed, reused)
}

// TestResizableQuiesceUnderLoad pins the Quiesce backoff fix: a quiescer
// racing sustained write traffic must keep terminating (the writers keep
// claiming the migration work Quiesce wants to help with; before the
// backoff it would busy-spin on the root pointer, and a livelocked
// Quiesce would hang this test's deadline).
func TestResizableQuiesceUnderLoad(t *testing.T) {
	m := NewResizable(16)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.NewXorshift(seed)
			for !stop.Load() {
				key := r.Intn(50000) + 1
				if r.Intn(2) == 0 {
					m.Insert(key, key)
				} else {
					m.Delete(key)
				}
			}
		}(uint64(g + 1))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		deadline := time.Now().Add(500 * time.Millisecond)
		for time.Now().Before(deadline) {
			m.Quiesce()
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Error("Quiesce failed to return under sustained write load")
	}
	stop.Store(true)
	wg.Wait()
	m.Quiesce()
	m.checkMigrationState(t)
}
