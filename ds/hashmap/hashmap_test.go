package hashmap

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/optik-go/optik/ds"
	"github.com/optik-go/optik/internal/rng"
)

func variants() map[string]func(buckets int) ds.Set {
	return map[string]func(int) ds.Set{
		"optik":      func(b int) ds.Set { return NewOptik(b) },
		"optik-gl":   func(b int) ds.Set { return NewOptikGL(b) },
		"optik-map":  func(b int) ds.Set { return NewOptikMap(b, 0) },
		"lazy-gl":    func(b int) ds.Set { return NewLazyGL(b) },
		"java":       func(b int) ds.Set { return NewJava(b, 0) },
		"java-optik": func(b int) ds.Set { return NewJavaOptik(b, 0) },
		"slab":       func(b int) ds.Set { return NewSlab(b) },
		"resizable":  func(b int) ds.Set { return NewResizable(b) },
	}
}

func TestSequentialSemantics(t *testing.T) {
	for name, mk := range variants() {
		t.Run(name, func(t *testing.T) {
			m := mk(16)
			if _, ok := m.Search(5); ok {
				t.Fatal("found key in empty table")
			}
			if !m.Insert(5, 50) || m.Insert(5, 51) {
				t.Fatal("insert semantics broken")
			}
			if v, ok := m.Search(5); !ok || v != 50 {
				t.Fatalf("Search(5) = %v,%v", v, ok)
			}
			// Collide into the same bucket: keys ≡ 5 (mod 16).
			if !m.Insert(21, 210) || !m.Insert(37, 370) {
				t.Fatal("collision inserts failed")
			}
			for _, k := range []uint64{5, 21, 37} {
				if v, ok := m.Search(k); !ok || v != k*10 {
					t.Fatalf("Search(%d) = %v,%v", k, v, ok)
				}
			}
			if v, ok := m.Delete(21); !ok || v != 210 {
				t.Fatalf("Delete(21) = %v,%v", v, ok)
			}
			if _, ok := m.Search(21); ok {
				t.Fatal("deleted key visible")
			}
			if m.Len() != 2 {
				t.Fatalf("Len = %d, want 2", m.Len())
			}
		})
	}
}

func TestAgainstModelSequential(t *testing.T) {
	for name, mk := range variants() {
		t.Run(name, func(t *testing.T) {
			m := mk(32)
			model := map[uint64]uint64{}
			r := rng.NewXorshift(7)
			for i := 0; i < 30000; i++ {
				key := r.Intn(96) + 1
				switch r.Intn(3) {
				case 0:
					val := r.Next()
					got := m.Insert(key, val)
					_, present := model[key]
					want := !present
					if name == "optik-map" && want {
						// optik-map buckets can fill up (capacity 8); count
						// occupancy of this bucket.
						occupied := 0
						for k := range model {
							if k%32 == key%32 {
								occupied++
							}
						}
						want = occupied < DefaultBucketCap
					}
					if got != want {
						t.Fatalf("op %d: Insert(%d) = %v, want %v", i, key, got, want)
					}
					if got {
						model[key] = val
					}
				case 1:
					gotV, got := m.Delete(key)
					wantV, want := model[key]
					if got != want || (got && gotV != wantV) {
						t.Fatalf("op %d: Delete(%d) = %v,%v want %v,%v", i, key, gotV, got, wantV, want)
					}
					delete(model, key)
				default:
					gotV, got := m.Search(key)
					wantV, want := model[key]
					if got != want || (got && gotV != wantV) {
						t.Fatalf("op %d: Search(%d) = %v,%v want %v,%v", i, key, gotV, got, wantV, want)
					}
				}
			}
			if m.Len() != len(model) {
				t.Fatalf("Len = %d, model = %d", m.Len(), len(model))
			}
		})
	}
}

func TestConcurrentNetSize(t *testing.T) {
	for name, mk := range variants() {
		t.Run(name, func(t *testing.T) {
			m := mk(64)
			const goroutines, iters = 8, 5000
			var net atomic.Int64
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					r := rng.NewXorshift(seed)
					for i := 0; i < iters; i++ {
						key := r.Intn(128) + 1
						if r.Intn(2) == 0 {
							if m.Insert(key, key) {
								net.Add(1)
							}
						} else {
							if _, ok := m.Delete(key); ok {
								net.Add(-1)
							}
						}
					}
				}(uint64(g + 1))
			}
			wg.Wait()
			if int64(m.Len()) != net.Load() {
				t.Fatalf("Len = %d, net = %d", m.Len(), net.Load())
			}
		})
	}
}

func TestConcurrentValueIntegrity(t *testing.T) {
	// Values are derived from keys; no foreign values may ever be observed,
	// even mid-churn (per-bucket version/lock discipline).
	for name, mk := range variants() {
		t.Run(name, func(t *testing.T) {
			m := mk(16)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					r := rng.NewXorshift(seed)
					for {
						select {
						case <-stop:
							return
						default:
						}
						key := r.Intn(32) + 1
						if r.Intn(2) == 0 {
							m.Insert(key, key*7)
						} else {
							m.Delete(key)
						}
					}
				}(uint64(g + 1))
			}
			r := rng.NewXorshift(1234)
			for i := 0; i < 30000; i++ {
				key := r.Intn(32) + 1
				if v, ok := m.Search(key); ok && v != key*7 {
					t.Errorf("foreign value %d under key %d", v, key)
					break
				}
			}
			close(stop)
			wg.Wait()
		})
	}
}

func TestSegmentsShareLocksButStayCorrect(t *testing.T) {
	// More buckets than segments: concurrent updates to different buckets
	// in the same segment must serialize correctly.
	for _, tc := range []struct {
		name string
		mk   func() ds.Set
	}{
		{"java", func() ds.Set { return NewJava(256, 4) }},
		{"java-optik", func() ds.Set { return NewJavaOptik(256, 4) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := tc.mk()
			var wg sync.WaitGroup
			const goroutines, span = 8, 128
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(id uint64) {
					defer wg.Done()
					base := id*span + 1
					for k := base; k < base+span; k++ {
						if !m.Insert(k, k) {
							t.Errorf("Insert(%d) failed", k)
							return
						}
					}
					for k := base; k < base+span; k++ {
						if v, ok := m.Search(k); !ok || v != k {
							t.Errorf("Search(%d) = %v,%v", k, v, ok)
							return
						}
					}
					for k := base; k < base+span; k += 2 {
						if _, ok := m.Delete(k); !ok {
							t.Errorf("Delete(%d) failed", k)
							return
						}
					}
				}(uint64(g))
			}
			wg.Wait()
			if got, want := m.Len(), goroutines*span/2; got != want {
				t.Fatalf("Len = %d, want %d", got, want)
			}
		})
	}
}

func TestOptikMapBucketOverflow(t *testing.T) {
	m := NewOptikMap(1, 2) // one bucket, two slots
	if !m.Insert(1, 1) || !m.Insert(2, 2) {
		t.Fatal("inserts failed")
	}
	if m.Insert(3, 3) {
		t.Fatal("insert into full bucket succeeded")
	}
	m.Delete(1)
	if !m.Insert(3, 3) {
		t.Fatal("insert after freeing a slot failed")
	}
}

func TestConstructorValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewOptik(0) },
		func() { NewOptikGL(-1) },
		func() { NewOptikMap(0, 4) },
		func() { NewLazyGL(0) },
		func() { NewJava(0, 0) },
		func() { NewJavaOptik(0, 0) },
		func() { NewSlab(0) },
		func() { NewResizable(-3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSegmentsClampedToBuckets(t *testing.T) {
	m := NewJava(4, 128)
	if len(m.segments) != 4 {
		t.Fatalf("segments = %d, want clamped to 4", len(m.segments))
	}
	mo := NewJavaOptik(4, 128)
	if len(mo.segments) != 4 {
		t.Fatalf("segments = %d, want clamped to 4", len(mo.segments))
	}
}
