package hashmap

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
	"unsafe"

	"github.com/optik-go/optik/internal/core"
	"github.com/optik-go/optik/internal/rng"
)

// TestBucketIsOneCacheLine pins the slab layout: a bucket must be exactly
// one cache line, consecutive buckets in a slab must not overlap lines,
// and — now that newBucketSlab verifies placement instead of hoping for
// it — every slab base must be 64-byte aligned, across size classes and
// in both the fixed and the resizable table.
func TestBucketIsOneCacheLine(t *testing.T) {
	if got := unsafe.Sizeof(bucket{}); got != core.CacheLineSize {
		t.Fatalf("bucket size = %d, want %d", got, core.CacheLineSize)
	}
	s := NewSlab(8)
	stride := uintptr(unsafe.Pointer(&s.buckets[1])) - uintptr(unsafe.Pointer(&s.buckets[0]))
	if stride != core.CacheLineSize {
		t.Fatalf("bucket stride = %d, want %d", stride, core.CacheLineSize)
	}
	// Exercise small, odd, and large-object size classes.
	for _, n := range []int{1, 5, 8, 13, 100, 1024, 1000, 100_000} {
		slab := newBucketSlab(n)
		if got := uintptr(unsafe.Pointer(&slab[0])) % core.CacheLineSize; got != 0 {
			t.Fatalf("newBucketSlab(%d) base not 64-byte aligned (offset %d)", n, got)
		}
	}
	r := NewResizable(64)
	if got := uintptr(unsafe.Pointer(&r.root.Load().buckets[0])) % core.CacheLineSize; got != 0 {
		t.Fatalf("resizable slab base not 64-byte aligned (offset %d)", got)
	}
}

// TestSlabInlineOverflow drives one bucket through the inline prefix into
// the overflow chain and back.
func TestSlabInlineOverflow(t *testing.T) {
	s := NewSlab(1) // every key collides
	for k := uint64(1); k <= 2*inlinePairs; k++ {
		if !s.Insert(k, k*10) {
			t.Fatalf("Insert(%d) failed", k)
		}
	}
	if got := s.Len(); got != 2*inlinePairs {
		t.Fatalf("Len = %d, want %d", got, 2*inlinePairs)
	}
	for k := uint64(1); k <= 2*inlinePairs; k++ {
		if v, ok := s.Search(k); !ok || v != k*10 {
			t.Fatalf("Search(%d) = %v,%v", k, v, ok)
		}
	}
	// Chain must be sorted (keys beyond the inline prefix).
	b := &s.buckets[0]
	prev := uint64(0)
	for cur := b.head.Load(); cur != nil; cur = cur.next.Load() {
		if cur.key.Load() <= prev {
			t.Fatalf("chain not strictly ascending: %d after %d", cur.key.Load(), prev)
		}
		prev = cur.key.Load()
	}
	// Delete everything, inline and chained.
	for k := uint64(1); k <= 2*inlinePairs; k++ {
		if v, ok := s.Delete(k); !ok || v != k*10 {
			t.Fatalf("Delete(%d) = %v,%v", k, v, ok)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after draining", s.Len())
	}
}

// TestResizableQuickSequentialEquivalence ports the ds/list property-test
// harness: random op sequences against a map model, on a table that starts
// at a single bucket so growth triggers constantly.
func TestResizableQuickSequentialEquivalence(t *testing.T) {
	f := func(ops []uint16) bool {
		m := NewResizable(1)
		model := map[uint64]uint64{}
		for _, raw := range ops {
			key := uint64(raw%32) + 1
			switch (raw / 32) % 3 {
			case 0:
				got := m.Insert(key, key*7)
				_, present := model[key]
				if got == present {
					return false
				}
				if got {
					model[key] = key * 7
				}
			case 1:
				gotV, got := m.Delete(key)
				wantV, want := model[key]
				if got != want || (got && gotV != wantV) {
					return false
				}
				delete(model, key)
			default:
				gotV, got := m.Search(key)
				wantV, want := model[key]
				if got != want || (got && gotV != wantV) {
					return false
				}
			}
		}
		return m.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// tables returns the root slab chain.
func (r *Resizable) tables() []*rtable {
	var ts []*rtable
	for t := r.root.Load(); t != nil; t = t.next.Load() {
		ts = append(ts, t)
	}
	return ts
}

// entries collects every live entry reachable from the root chain,
// failing on duplicates across slabs. It assumes the table is quiescent.
func (r *Resizable) entries(t *testing.T) map[uint64]uint64 {
	t.Helper()
	got := map[uint64]uint64{}
	for _, rt := range r.tables() {
		for i := range rt.buckets {
			b := &rt.buckets[i]
			head := b.head.Load()
			if head == &forwarded {
				continue // contents live in a deeper slab
			}
			for s := range b.inline {
				if k := b.inline[s].key.Load(); k != 0 {
					if _, dup := got[k]; dup {
						t.Fatalf("duplicate key %d across slabs", k)
					}
					got[k] = b.inline[s].val.Load()
				}
			}
			for cur := head; cur != nil; cur = cur.next.Load() {
				k := cur.key.Load()
				if _, dup := got[k]; dup {
					t.Fatalf("duplicate key %d across slabs", k)
				}
				got[k] = cur.val.Load()
			}
		}
	}
	return got
}

// checkMigrationState verifies the quiescent migration invariants: the
// forwarded-bucket count of every slab matches its migrated counter (each
// claim forwards one bucket growing, a pair shrinking), never exceeding
// the slab size, and only slabs with a successor have forwarded buckets.
func (r *Resizable) checkMigrationState(t *testing.T) {
	t.Helper()
	for _, rt := range r.tables() {
		fwd := int64(0)
		for i := range rt.buckets {
			if rt.buckets[i].head.Load() == &forwarded {
				fwd++
			}
		}
		mig := rt.migrated.Load()
		next := rt.next.Load()
		perClaim := int64(1)
		if next != nil && len(next.buckets) < len(rt.buckets) {
			perClaim = 2
		}
		if fwd != mig*perClaim {
			t.Fatalf("slab(%d buckets): %d forwarded buckets, migrated counter %d (×%d per claim)",
				len(rt.buckets), fwd, mig, perClaim)
		}
		if next != nil && mig > claims(rt, next) {
			t.Fatalf("slab(%d buckets): migrated counter %d exceeds %d claims", len(rt.buckets), mig, claims(rt, next))
		}
		if fwd > 0 && next == nil {
			t.Fatalf("slab(%d buckets): forwarded buckets but no next slab", len(rt.buckets))
		}
	}
}

// TestResizableGrowthConverges checks that sequential load grows the table,
// that helping updates finish the migration, and that no entry is lost or
// duplicated on the way.
func TestResizableGrowthConverges(t *testing.T) {
	m := NewResizable(2)
	model := map[uint64]uint64{}
	r := rng.NewXorshift(42)
	for i := 0; i < 20000; i++ {
		key := r.Intn(30000) + 1
		if r.Intn(10) == 0 {
			if _, ok := m.Delete(key); ok != (model[key] != 0) {
				t.Fatalf("Delete(%d) disagreed with model", key)
			}
			delete(model, key)
		} else {
			if m.Insert(key, key*3) != (model[key] == 0) {
				t.Fatalf("Insert(%d) disagreed with model", key)
			}
			model[key] = key * 3
		}
	}
	if m.Buckets() <= 2 {
		t.Fatalf("table never grew: %d buckets", m.Buckets())
	}
	// Failed updates still help: drive any in-flight migration home.
	for i := 0; m.root.Load().next.Load() != nil; i++ {
		m.Insert(1, 3)
		if i > 1<<22 {
			t.Fatal("migration did not converge")
		}
	}
	model[1] = 3
	if got := m.entries(t); len(got) != len(model) {
		t.Fatalf("entries = %d, model = %d", len(got), len(model))
	} else {
		for k, v := range model {
			if got[k] != v {
				t.Fatalf("key %d: got %d, want %d", k, got[k], v)
			}
		}
	}
	m.checkMigrationState(t)
	if m.Len() != len(model) {
		t.Fatalf("Len = %d, model = %d", m.Len(), len(model))
	}
}

// TestResizableConcurrentThroughResize is the race-detector stress: workers
// run Search/Insert/Delete on disjoint key ranges while the table resizes
// underneath them. Each worker is the only mutator of its keys, so
// linearizability forces every one of its operations to agree exactly with
// its private model — a lost key, duplicate, or torn pair during migration
// shows up as a disagreement. A monitor asserts migration is monotone.
func TestResizableConcurrentThroughResize(t *testing.T) {
	const workers = 8
	span := uint64(4000)
	iters := 60000
	if testing.Short() {
		span, iters = 1500, 20000
	}
	m := NewResizable(2)
	stop := make(chan struct{})

	// Monitor: the root slab's migrated counter must never decrease, and a
	// forwarded bucket must stay forwarded.
	var monWG sync.WaitGroup
	monWG.Add(1)
	go func() {
		defer monWG.Done()
		var lastT *rtable
		var lastM int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			rt := m.root.Load()
			mg := rt.migrated.Load()
			if rt == lastT && mg < lastM {
				t.Errorf("migration went backwards: %d -> %d", lastM, mg)
				return
			}
			lastT, lastM = rt, mg
			runtime.Gosched()
		}
	}()

	models := make([]map[uint64]uint64, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			model := map[uint64]uint64{}
			models[id] = model
			r := rng.NewXorshift(id + 1)
			base := id*span + 1
			for i := 0; i < iters; i++ {
				key := base + r.Intn(span)
				switch r.Intn(4) {
				case 0:
					want := model[key] == 0
					if got := m.Insert(key, key*7); got != want {
						t.Errorf("worker %d: Insert(%d) = %v, want %v", id, key, got, want)
						return
					}
					model[key] = key * 7
				case 1:
					wantV, want := model[key], model[key] != 0
					gotV, got := m.Delete(key)
					if got != want || (got && gotV != wantV) {
						t.Errorf("worker %d: Delete(%d) = %v,%v want %v,%v", id, key, gotV, got, wantV, want)
						return
					}
					delete(model, key)
				default:
					wantV, want := model[key], model[key] != 0
					gotV, got := m.Search(key)
					if got != want || (got && gotV != wantV) {
						t.Errorf("worker %d: Search(%d) = %v,%v want %v,%v", id, key, gotV, got, wantV, want)
						return
					}
				}
			}
		}(uint64(g))
	}
	wg.Wait()
	close(stop)
	monWG.Wait()
	if t.Failed() {
		return
	}

	want := map[uint64]uint64{}
	for _, model := range models {
		for k, v := range model {
			want[k] = v
		}
	}
	got := m.entries(t)
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("lost key %d (got %d, want %d)", k, got[k], v)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("entries = %d, want %d", len(got), len(want))
	}
	m.checkMigrationState(t)
	if m.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(want))
	}
	if m.Buckets() <= 2 {
		t.Fatalf("table never grew under load: %d buckets", m.Buckets())
	}
}

// TestResizableInsertRamp is the acceptance scenario: prefill 1k keys, then
// an insert-heavy concurrent ramp to 1M elements (200k under -short), with
// the full invariant suite checked at the end.
func TestResizableInsertRamp(t *testing.T) {
	target := 1_000_000
	if testing.Short() {
		target = 200_000
	}
	const start = 1000
	m := NewResizable(1024)
	for k := uint64(1); k <= start; k++ {
		if !m.Insert(k, k) {
			t.Fatalf("prefill Insert(%d) failed", k)
		}
	}

	const workers = 8
	var mu sync.Mutex
	inserted := start
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			r := rng.NewXorshift(id*0x9E3779B9 + 7)
			local := 0
			for {
				// Batch the shared progress check so the counter mutex is
				// not the bottleneck being measured.
				for i := 0; i < 512; i++ {
					key := r.Intn(uint64(4*target)) + 1
					if m.Insert(key, key) {
						local++
					}
				}
				mu.Lock()
				inserted += local
				done := inserted >= target
				mu.Unlock()
				local = 0
				if done {
					return
				}
			}
		}(uint64(g))
	}
	wg.Wait()

	if got := m.Len(); got != inserted {
		t.Fatalf("Len = %d, want %d successful inserts", got, inserted)
	}
	// The ramp must actually have resized, repeatedly.
	if m.Buckets() < target/(2*maxLoad) {
		t.Fatalf("final bucket count %d too small for %d elements", m.Buckets(), inserted)
	}
	m.checkMigrationState(t)
	if got := len(m.entries(t)); got != inserted {
		t.Fatalf("entries = %d, want %d", got, inserted)
	}
}
