package hashmap

import "github.com/optik-go/optik/ds"

// Batch entry points: the same per-key operations as Search/Upsert/Delete,
// with the per-operation overhead hoisted out of the loop. A scalar update
// borrows a qsbr handle and offers migration help once per call; a batch
// pays both once for the whole slice. The sharded store's MGet/MSet/MDel
// route a request's keys to their shards and drive these per shard, so the
// fixed cost of touching a shard is amortized over every key that landed
// on it. Each key remains its own linearizable operation — a batch is a
// loop, not a transaction.

// SearchBatch looks up every keys[i], storing the value into vals[i] and
// presence into found[i]. vals and found must be at least len(keys) long.
func (r *Resizable) SearchBatch(keys, vals []uint64, found []bool) {
	for i, k := range keys {
		vals[i], found[i] = r.Search(k)
	}
}

// UpsertBatch applies Upsert(keys[i], vals[i]) for every i under one
// reclamation handle and returns how many keys were newly inserted (the
// rest replaced existing values).
func (r *Resizable) UpsertBatch(keys, vals []uint64) int {
	for _, k := range keys {
		ds.CheckKey(k)
	}
	rc := reclaimer{Pool: r.pool}
	defer rc.Release()
	r.help(&rc)
	inserted := 0
	for i, k := range keys {
		if _, replaced := r.upsert(&rc, k, vals[i]); !replaced {
			inserted++
		}
	}
	return inserted
}

// UpsertBatchEach is UpsertBatch with per-key results: old[i] receives
// the value keys[i] replaced and replaced[i] whether one existed. The
// sharded store's value layer needs the per-key outcomes — every
// replaced handle is a value slot it must recycle — and the network
// server needs them to frame one reply per pipelined SET. old and
// replaced must be at least len(keys) long. Keys are applied in order,
// so duplicates within a batch behave exactly as sequential Upserts.
func (r *Resizable) UpsertBatchEach(keys, vals, old []uint64, replaced []bool) int {
	for _, k := range keys {
		ds.CheckKey(k)
	}
	rc := reclaimer{Pool: r.pool}
	defer rc.Release()
	r.help(&rc)
	inserted := 0
	for i, k := range keys {
		old[i], replaced[i] = r.upsert(&rc, k, vals[i])
		if !replaced[i] {
			inserted++
		}
	}
	return inserted
}

// DeleteBatch deletes every key under one reclamation handle and returns
// how many were present.
func (r *Resizable) DeleteBatch(keys []uint64) int {
	for _, k := range keys {
		ds.CheckKey(k)
	}
	rc := reclaimer{Pool: r.pool}
	defer rc.Release()
	r.help(&rc)
	deleted := 0
	for _, k := range keys {
		if _, ok := r.delete(&rc, k); ok {
			deleted++
		}
	}
	return deleted
}

// DeleteBatchEach is DeleteBatch with per-key results: old[i] receives
// the removed value and found[i] whether keys[i] was present, under one
// reclamation handle. old and found must be at least len(keys) long.
// Keys are applied in order, so a duplicate deletes once and then
// misses, exactly as sequential Deletes would.
func (r *Resizable) DeleteBatchEach(keys, old []uint64, found []bool) int {
	for _, k := range keys {
		ds.CheckKey(k)
	}
	rc := reclaimer{Pool: r.pool}
	defer rc.Release()
	r.help(&rc)
	deleted := 0
	for i, k := range keys {
		old[i], found[i] = r.delete(&rc, k)
		if found[i] {
			deleted++
		}
	}
	return deleted
}
