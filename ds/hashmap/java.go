package hashmap

import (
	"sync/atomic"

	"github.com/optik-go/optik/ds"
	"github.com/optik-go/optik/internal/backoff"
	"github.com/optik-go/optik/internal/core"
	"github.com/optik-go/optik/internal/locks"
)

// DefaultSegments is the lock-striping factor. The paper configures Java's
// ConcurrentHashMap with 128 segments, per the Java documentation's advice
// to "accommodate as many threads as will ever concurrently modify the
// table".
const DefaultSegments = 128

// Java is a ConcurrentHashMap-style table [34] ("java" in Figure 10): the
// buckets are partitioned into segments, each protected by one lock.
// Updates lock the segment up front — even when the operation turns out
// infeasible — and searches traverse lock-free. Chains are unsorted with
// head insertion, as in ConcurrentHashMap.
type Java struct {
	segments []locks.PaddedTAS
	heads    []atomic.Pointer[chainNode]
}

var _ ds.Set = (*Java)(nil)

// NewJava returns a lock-striped table with nbuckets buckets and nsegments
// segment locks (DefaultSegments if nsegments <= 0).
func NewJava(nbuckets, nsegments int) *Java {
	if nbuckets <= 0 {
		panic("hashmap: nbuckets must be positive")
	}
	if nsegments <= 0 {
		nsegments = DefaultSegments
	}
	if nsegments > nbuckets {
		nsegments = nbuckets
	}
	return &Java{
		segments: make([]locks.PaddedTAS, nsegments),
		heads:    make([]atomic.Pointer[chainNode], nbuckets),
	}
}

func (t *Java) segment(bucket int) *locks.PaddedTAS {
	return &t.segments[bucket%len(t.segments)]
}

// Search returns the value stored under key, if present, without locking.
func (t *Java) Search(key uint64) (uint64, bool) {
	ds.CheckKey(key)
	b := bucketIndex(key, len(t.heads))
	for cur := t.heads[b].Load(); cur != nil; cur = cur.next.Load() {
		if cur.key == key {
			return cur.val, true
		}
	}
	return 0, false
}

// Insert adds key→val if absent. The segment lock is taken before the
// bucket is examined (the "unnecessary locking" §5.2 calls out).
func (t *Java) Insert(key, val uint64) bool {
	ds.CheckKey(key)
	b := bucketIndex(key, len(t.heads))
	seg := t.segment(b)
	seg.Lock()
	defer seg.Unlock()
	for cur := t.heads[b].Load(); cur != nil; cur = cur.next.Load() {
		if cur.key == key {
			return false
		}
	}
	n := &chainNode{key: key, val: val}
	n.next.Store(t.heads[b].Load())
	t.heads[b].Store(n)
	return true
}

// Delete removes key, returning its value, if present; the segment lock is
// held for the whole operation.
func (t *Java) Delete(key uint64) (uint64, bool) {
	ds.CheckKey(key)
	b := bucketIndex(key, len(t.heads))
	seg := t.segment(b)
	seg.Lock()
	defer seg.Unlock()
	var pred *chainNode
	for cur := t.heads[b].Load(); cur != nil; pred, cur = cur, cur.next.Load() {
		if cur.key == key {
			if pred == nil {
				t.heads[b].Store(cur.next.Load())
			} else {
				pred.next.Store(cur.next.Load())
			}
			return cur.val, true
		}
	}
	return 0, false
}

// Len sums the chain lengths (not linearizable).
func (t *Java) Len() int {
	n := 0
	for i := range t.heads {
		for cur := t.heads[i].Load(); cur != nil; cur = cur.next.Load() {
			n++
		}
	}
	return n
}

// JavaOptik is the paper's OPTIK optimization of the ConcurrentHashMap
// design ("java-optik"): the segment locks become OPTIK locks. Updates
// first traverse the bucket read-only under a version snapshot; infeasible
// operations return false without locking, and feasible ones acquire the
// segment with TryLockVersion — a successful validation proves the bucket
// unchanged, so no second traversal is needed.
type JavaOptik struct {
	segments []core.PaddedLock
	heads    []atomic.Pointer[chainNode]
}

var _ ds.Set = (*JavaOptik)(nil)

// NewJavaOptik returns an OPTIK lock-striped table with nbuckets buckets
// and nsegments segments (DefaultSegments if nsegments <= 0).
func NewJavaOptik(nbuckets, nsegments int) *JavaOptik {
	if nbuckets <= 0 {
		panic("hashmap: nbuckets must be positive")
	}
	if nsegments <= 0 {
		nsegments = DefaultSegments
	}
	if nsegments > nbuckets {
		nsegments = nbuckets
	}
	return &JavaOptik{
		segments: make([]core.PaddedLock, nsegments),
		heads:    make([]atomic.Pointer[chainNode], nbuckets),
	}
}

func (t *JavaOptik) segment(bucket int) *core.PaddedLock {
	return &t.segments[bucket%len(t.segments)]
}

// Search returns the value stored under key, if present, without locking.
func (t *JavaOptik) Search(key uint64) (uint64, bool) {
	ds.CheckKey(key)
	b := bucketIndex(key, len(t.heads))
	for cur := t.heads[b].Load(); cur != nil; cur = cur.next.Load() {
		if cur.key == key {
			return cur.val, true
		}
	}
	return 0, false
}

// Insert adds key→val if absent. One read-only pass decides feasibility;
// TryLockVersion then both locks the segment and proves the pass is still
// valid, so the insert prepends without re-traversing.
func (t *JavaOptik) Insert(key, val uint64) bool {
	ds.CheckKey(key)
	b := bucketIndex(key, len(t.heads))
	seg := t.segment(b)
	var bo backoff.Backoff
	for {
		vn := seg.GetVersion()
		head := t.heads[b].Load()
		found := false
		for cur := head; cur != nil; cur = cur.next.Load() {
			if cur.key == key {
				found = true
				break
			}
		}
		if found {
			return false // infeasible: no locking at all
		}
		if !seg.TryLockVersion(vn) {
			bo.Wait()
			continue
		}
		n := &chainNode{key: key, val: val}
		n.next.Store(head)
		t.heads[b].Store(n)
		seg.Unlock()
		return true
	}
}

// Delete removes key, returning its value, if present. The read-only pass
// records the predecessor; a validated TryLockVersion lets the unlink reuse
// it directly.
func (t *JavaOptik) Delete(key uint64) (uint64, bool) {
	ds.CheckKey(key)
	b := bucketIndex(key, len(t.heads))
	seg := t.segment(b)
	var bo backoff.Backoff
	for {
		vn := seg.GetVersion()
		var pred, victim *chainNode
		for cur := t.heads[b].Load(); cur != nil; pred, cur = cur, cur.next.Load() {
			if cur.key == key {
				victim = cur
				break
			}
		}
		if victim == nil {
			return 0, false // infeasible: no locking at all
		}
		if !seg.TryLockVersion(vn) {
			bo.Wait()
			continue
		}
		if pred == nil {
			t.heads[b].Store(victim.next.Load())
		} else {
			pred.next.Store(victim.next.Load())
		}
		seg.Unlock()
		return victim.val, true
	}
}

// Len sums the chain lengths (not linearizable).
func (t *JavaOptik) Len() int {
	n := 0
	for i := range t.heads {
		for cur := t.heads[i].Load(); cur != nil; cur = cur.next.Load() {
			n++
		}
	}
	return n
}
