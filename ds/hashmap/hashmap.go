// Package hashmap implements the hash tables of §5.2, under the graph keys
// of Figure 10:
//
//   - OptikGL ("optik-gl"): per-bucket OPTIK-based global-lock lists — the
//     fastest of the paper's node-based hash tables.
//   - Optik ("optik"): per-bucket fine-grained OPTIK lists.
//   - OptikMap ("optik-map"): per-bucket OPTIK array maps (fixed-capacity
//     buckets allocated in one contiguous slab, as in the paper).
//   - LazyGL ("lazy-gl"): per-bucket lock, updates always acquire it
//     (feasible or not); searches are lock-free.
//   - Java ("java"): a ConcurrentHashMap-style table [34] with lock
//     striping over n segments; updates lock the segment directly.
//   - JavaOptik ("java-optik"): the paper's optimization of Java — a
//     version-validated read-only pass returns infeasible updates without
//     locking and saves feasible updates the second bucket traversal.
//
// The paper's tables have a fixed number of buckets (sized equal to the
// initial element count) and hash by key modulo buckets.
//
// Beyond the paper, the package adds two tables built on a cache-conscious
// bucket slab (slab.go):
//
//   - Slab ("slab"): OptikGL's locking discipline on a contiguous slab of
//     64-byte buckets, each co-locating the OPTIK lock, the overflow-chain
//     head and a three-pair inline prefix. OptikGL's packed parallel
//     arrays put eight bucket locks on one cache line — every update CAS
//     false-shares with seven neighbor buckets — and split lock and head
//     across two lines, so even an uncontended operation takes two misses.
//     The slab bucket makes the common hit/miss/insert/delete path touch
//     exactly one line and gives every bucket lock a private line.
//   - Resizable ("resizable"): the slab plus optimistic resizing in both
//     directions — lock-free reads across an old/new slab pair, per-bucket
//     OPTIK-validated incremental migration (bucket-at-a-time growing,
//     bucket-pair merges under both OPTIK locks shrinking), and a striped
//     size counter whose hysteresis band (double past load 2, halve below
//     load 1/4, never below the initial floor) triggers the resizes and
//     makes Len O(shards) instead of O(n). Chain nodes live on a
//     quiescent-state reclamation domain (internal/qsbr) and are recycled
//     across deletes and migrations, and an optional background janitor
//     quiesces the table when traffic idles. See resizable.go for the
//     design, reclaim.go for the reuse-safety argument, and janitor.go
//     for the lifecycle.
package hashmap

import (
	"sync/atomic"

	"github.com/optik-go/optik/ds"
	"github.com/optik-go/optik/ds/arraymap"
	"github.com/optik-go/optik/ds/list"
	"github.com/optik-go/optik/internal/backoff"
	"github.com/optik-go/optik/internal/core"
)

// bucketIndex is the shared hash function: keys are already well spread by
// the workloads (uniform/zipfian draws), so modulo suffices, exactly as in
// the reference implementation.
func bucketIndex(key uint64, buckets int) int {
	return int(key % uint64(buckets))
}

// Optik is a hash table whose buckets are fine-grained OPTIK lists (§4.2).
type Optik struct {
	buckets []*list.Optik
}

var _ ds.Set = (*Optik)(nil)

// NewOptik returns a table with nbuckets fine-grained OPTIK list buckets.
func NewOptik(nbuckets int) *Optik {
	if nbuckets <= 0 {
		panic("hashmap: nbuckets must be positive")
	}
	t := &Optik{buckets: make([]*list.Optik, nbuckets)}
	for i := range t.buckets {
		t.buckets[i] = list.NewOptik()
	}
	return t
}

func (t *Optik) bucket(key uint64) *list.Optik {
	return t.buckets[bucketIndex(key, len(t.buckets))]
}

// Search returns the value stored under key, if present.
func (t *Optik) Search(key uint64) (uint64, bool) { return t.bucket(key).Search(key) }

// Insert adds key→val if absent.
func (t *Optik) Insert(key, val uint64) bool { return t.bucket(key).Insert(key, val) }

// Delete removes key, returning its value, if present.
func (t *Optik) Delete(key uint64) (uint64, bool) { return t.bucket(key).Delete(key) }

// Len sums the bucket sizes (not linearizable).
func (t *Optik) Len() int {
	n := 0
	for _, b := range t.buckets {
		n += b.Len()
	}
	return n
}

// OptikGL is a hash table with per-bucket OPTIK locking ("Intuitively, the
// list protected by a global lock, resulting in per-bucket locking, is more
// suitable for hash tables"). Buckets are lean nil-terminated sorted chains
// — the same layout as LazyGL/Java, so the comparison isolates the locking
// discipline: searches and infeasible updates never lock, and a feasible
// update's single validate-and-lock CAS replaces the second bucket
// traversal.
type OptikGL struct {
	bucketLocks []core.Lock
	heads       []atomic.Pointer[chainNode]
}

var _ ds.Set = (*OptikGL)(nil)

// NewOptikGL returns a table with nbuckets per-bucket-OPTIK-locked buckets.
func NewOptikGL(nbuckets int) *OptikGL {
	if nbuckets <= 0 {
		panic("hashmap: nbuckets must be positive")
	}
	return &OptikGL{
		bucketLocks: make([]core.Lock, nbuckets),
		heads:       make([]atomic.Pointer[chainNode], nbuckets),
	}
}

// Search returns the value stored under key, if present, without locking.
func (t *OptikGL) Search(key uint64) (uint64, bool) {
	ds.CheckKey(key)
	b := bucketIndex(key, len(t.heads))
	for cur := t.heads[b].Load(); cur != nil && cur.key <= key; cur = cur.next.Load() {
		if cur.key == key {
			return cur.val, true
		}
	}
	return 0, false
}

// Insert adds key→val if absent. The optimistic traversal decides
// feasibility; TryLockVersion validates it and locks in one CAS.
func (t *OptikGL) Insert(key, val uint64) bool {
	ds.CheckKey(key)
	b := bucketIndex(key, len(t.heads))
	lock := &t.bucketLocks[b]
	var bo backoff.Backoff
	for {
		vn := lock.GetVersion()
		var pred *chainNode
		cur := t.heads[b].Load()
		for cur != nil && cur.key < key {
			pred, cur = cur, cur.next.Load()
		}
		if cur != nil && cur.key == key {
			return false // infeasible: no locking
		}
		if !lock.TryLockVersion(vn) {
			bo.Wait()
			continue
		}
		n := &chainNode{key: key, val: val}
		n.next.Store(cur)
		if pred == nil {
			t.heads[b].Store(n)
		} else {
			pred.next.Store(n)
		}
		lock.Unlock()
		return true
	}
}

// Delete removes key, returning its value, if present. A miss returns
// without locking.
func (t *OptikGL) Delete(key uint64) (uint64, bool) {
	ds.CheckKey(key)
	b := bucketIndex(key, len(t.heads))
	lock := &t.bucketLocks[b]
	var bo backoff.Backoff
	for {
		vn := lock.GetVersion()
		var pred *chainNode
		cur := t.heads[b].Load()
		for cur != nil && cur.key < key {
			pred, cur = cur, cur.next.Load()
		}
		if cur == nil || cur.key != key {
			return 0, false
		}
		if !lock.TryLockVersion(vn) {
			bo.Wait()
			continue
		}
		if pred == nil {
			t.heads[b].Store(cur.next.Load())
		} else {
			pred.next.Store(cur.next.Load())
		}
		lock.Unlock()
		return cur.val, true
	}
}

// Len sums the chain lengths (not linearizable).
func (t *OptikGL) Len() int {
	n := 0
	for i := range t.heads {
		for cur := t.heads[i].Load(); cur != nil; cur = cur.next.Load() {
			n++
		}
	}
	return n
}

// DefaultBucketCap is OptikMap's default per-bucket array capacity. The
// paper's map returns false for insertions into a full bucket; eight slots
// per bucket keeps that rare at one element per bucket on average.
const DefaultBucketCap = 8

// OptikMap is a hash table whose buckets are OPTIK array maps (§4.1). Its
// buckets are fixed-size arrays, so insertions into a full bucket fail —
// matching the paper's design, which trades resizing for cache-friendly
// contiguous buckets.
type OptikMap struct {
	buckets []*arraymap.Optik
}

var _ ds.Set = (*OptikMap)(nil)

// NewOptikMap returns a table with nbuckets array-map buckets of the given
// per-bucket capacity (DefaultBucketCap if cap <= 0).
func NewOptikMap(nbuckets, capacity int) *OptikMap {
	if nbuckets <= 0 {
		panic("hashmap: nbuckets must be positive")
	}
	if capacity <= 0 {
		capacity = DefaultBucketCap
	}
	t := &OptikMap{buckets: make([]*arraymap.Optik, nbuckets)}
	for i := range t.buckets {
		t.buckets[i] = arraymap.NewOptik(capacity)
	}
	return t
}

func (t *OptikMap) bucket(key uint64) *arraymap.Optik {
	return t.buckets[bucketIndex(key, len(t.buckets))]
}

// Search returns the value stored under key, if present.
func (t *OptikMap) Search(key uint64) (uint64, bool) { return t.bucket(key).Search(key) }

// Insert adds key→val if absent and the bucket has a free slot.
func (t *OptikMap) Insert(key, val uint64) bool { return t.bucket(key).Insert(key, val) }

// Delete removes key, returning its value, if present.
func (t *OptikMap) Delete(key uint64) (uint64, bool) { return t.bucket(key).Delete(key) }

// Len sums the bucket sizes (not linearizable).
func (t *OptikMap) Len() int {
	n := 0
	for _, b := range t.buckets {
		n += b.Len()
	}
	return n
}
