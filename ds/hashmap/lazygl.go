package hashmap

import (
	"sync/atomic"

	"github.com/optik-go/optik/ds"
	"github.com/optik-go/optik/internal/locks"
)

// chainNode is a node of the simple per-bucket chains used by LazyGL, Java
// and JavaOptik. Chains are sorted for LazyGL (it derives from the lazy
// list) and unsorted head-insert for the ConcurrentHashMap-style tables.
type chainNode struct {
	key  uint64
	val  uint64
	next atomic.Pointer[chainNode]
}

// LazyGL is the "lazy-gl" baseline of Figure 10: lazy lists adapted to
// per-bucket locking. Searches traverse lock-free; updates acquire the
// bucket's test-and-set lock up front, regardless of whether the operation
// turns out feasible — the unnecessary locking OPTIK removes.
type LazyGL struct {
	bucketLocks []locks.TAS
	heads       []atomic.Pointer[chainNode]
}

var _ ds.Set = (*LazyGL)(nil)

// NewLazyGL returns a per-bucket-locked table with nbuckets buckets.
func NewLazyGL(nbuckets int) *LazyGL {
	if nbuckets <= 0 {
		panic("hashmap: nbuckets must be positive")
	}
	return &LazyGL{
		bucketLocks: make([]locks.TAS, nbuckets),
		heads:       make([]atomic.Pointer[chainNode], nbuckets),
	}
}

// Search returns the value stored under key, if present, without locking.
func (t *LazyGL) Search(key uint64) (uint64, bool) {
	ds.CheckKey(key)
	b := bucketIndex(key, len(t.heads))
	for cur := t.heads[b].Load(); cur != nil && cur.key <= key; cur = cur.next.Load() {
		if cur.key == key {
			return cur.val, true
		}
	}
	return 0, false
}

// Insert adds key→val if absent; the bucket lock is held for the whole
// operation, feasible or not.
func (t *LazyGL) Insert(key, val uint64) bool {
	ds.CheckKey(key)
	b := bucketIndex(key, len(t.heads))
	t.bucketLocks[b].Lock()
	defer t.bucketLocks[b].Unlock()
	var pred *chainNode
	cur := t.heads[b].Load()
	for cur != nil && cur.key < key {
		pred, cur = cur, cur.next.Load()
	}
	if cur != nil && cur.key == key {
		return false
	}
	n := &chainNode{key: key, val: val}
	n.next.Store(cur)
	if pred == nil {
		t.heads[b].Store(n)
	} else {
		pred.next.Store(n)
	}
	return true
}

// Delete removes key, returning its value, if present; the bucket lock is
// held for the whole operation.
func (t *LazyGL) Delete(key uint64) (uint64, bool) {
	ds.CheckKey(key)
	b := bucketIndex(key, len(t.heads))
	t.bucketLocks[b].Lock()
	defer t.bucketLocks[b].Unlock()
	var pred *chainNode
	cur := t.heads[b].Load()
	for cur != nil && cur.key < key {
		pred, cur = cur, cur.next.Load()
	}
	if cur == nil || cur.key != key {
		return 0, false
	}
	if pred == nil {
		t.heads[b].Store(cur.next.Load())
	} else {
		pred.next.Store(cur.next.Load())
	}
	return cur.val, true
}

// Len sums the chain lengths (not linearizable).
func (t *LazyGL) Len() int {
	n := 0
	for i := range t.heads {
		for cur := t.heads[i].Load(); cur != nil; cur = cur.next.Load() {
			n++
		}
	}
	return n
}
