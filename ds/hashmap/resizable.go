package hashmap

import (
	"sync/atomic"
	"unsafe"

	"github.com/optik-go/optik/ds"
	"github.com/optik-go/optik/internal/backoff"
	"github.com/optik-go/optik/internal/core"
	"github.com/optik-go/optik/internal/qsbr"
)

// Resizable is a hash table on the cache-line bucket slab that resizes in
// both directions under load — doubling past maxLoad, halving below the
// shrink threshold — following the paper's discipline end to end: reads
// stay lock-free and optimistic across any resize, and every write
// (including the migration of a bucket) is a per-bucket OPTIK critical
// section.
//
// The design:
//
//   - The table is a chain of slabs (rtable). Normally the chain is one
//     slab long and operations are exactly the Slab fast path plus one
//     pointer load.
//   - A striped, cache-line-padded size counter (core.Striped, in its
//     packed AddOp form: net element count in the low half, a monotone
//     operation count in the high half of the same atomic add) tracks the
//     element count. When the load factor passes maxLoad, the deepest
//     slab links an empty slab of twice the size as its next; when the
//     count falls below len(buckets)/shrinkLoad (and the slab is above
//     the floor, the table's initial bucket count), it links one of half
//     the size instead. The op half is the maintenance scheduler's
//     activity signal (scheduler.go): unlike the net sum, it advances
//     under perfectly balanced traffic.
//   - Migration is incremental and cooperative: each update claims work
//     from the old slab via an atomic cursor (up to migrateQuantum claims
//     per update), moves the claimed entries into the new slab, and
//     forwards the source buckets. A migrated bucket's head points at the
//     forwarding sentinel and stays that way forever; operations that
//     encounter it simply hop to the next slab.
//   - Growing, a claim is one bucket, whose entries split across two new
//     buckets. Shrinking, a claim is a bucket *pair*: old buckets i and
//     i+n/2 are exactly the two whose contents hash to new bucket i, so
//     the claimant locks both (a critical section under both OPTIK
//     locks), merges the pair's inline slots and chains into that single
//     target bucket, and forwards both. Concurrent feasible updates fail
//     TryLockVersion against either held lock and retry until they see
//     the sentinel; optimistic readers that raced the merge fail version
//     validation and re-run — reads cross a shrink exactly as they cross
//     a grow, without acquiring anything.
//   - When the last claim completes, the root pointer advances and the
//     old slab is garbage — but its overflow-chain nodes are not: the
//     migration retires them to a qsbr free list (reclaim.go) and the
//     copies in the new slab are built from recycled nodes, so churn
//     reuses memory instead of re-allocating it, as the paper's
//     structures do on ssmem.
//
// Grow and shrink thresholds are deliberately far apart (load > 2 grows,
// load < 1/4 shrinks, and the post-resize load lands at 1 and just under
// 1/2 respectively), so churn at either boundary cannot flap the table
// between sizes; the floor keeps a delete storm from shrinking a table
// below its provisioned size. Migration advances only on the backs of
// updates; Quiesce drives it (and any threshold-pending resize) home when
// traffic stops, and the optional background janitor (janitor.go) calls
// Quiesce itself when it sees traffic idle, so an abandoned oversized
// table hands its memory back with no caller involvement.
//
// Unlike the fixed tables, every path of Search and Delete must
// re-validate the bucket version — the miss paths because migration moves
// a key from the old slab to the new one without an instant of absence,
// and (with node reuse) the chain-hit path too: a node observed with the
// right key may have been retired and recycled under the scan, its value
// already rewritten by its next owner. Any retirement is a critical
// section on the bucket the node came from, so the validation catches it;
// on a quiescent bucket it is one extra load of the line the scan already
// owns.
//
// The size counter also changes Len from an O(n) traversal to an O(shards)
// sum, independent of the element count.
type Resizable struct {
	root  atomic.Pointer[rtable]
	count *core.Striped
	// pool hands out qsbr reclamation handles to whatever goroutines the
	// writes arrive on; see reclaim.go.
	pool *qsbr.Pool
	// floor is the initial bucket count; shrinking never goes below it.
	floor int
	// resizes counts linked resize slabs, grows and shrinks alike (racy
	// reads via Resizes; for monitoring and the flapping tests).
	resizes atomic.Int64
	// jan is the optional background janitor; see janitor.go.
	jan janitorState
}

var _ ds.Set = (*Resizable)(nil)

// rtable is one slab in the resize chain. mask is len(buckets)-1 (bucket
// counts are powers of two); cursor hands out buckets to migrate and
// migrated counts the ones fully forwarded.
type rtable struct {
	buckets  []bucket
	mask     uint64
	next     atomic.Pointer[rtable]
	cursor   atomic.Int64
	migrated atomic.Int64
}

// forwarded is the sentinel a migrated bucket's head points at, forever.
// Like the deleted-node locks of the OPTIK lists, the permanence is the
// point: any operation that meets it knows the bucket's contents live in
// the next slab, with no instant at which the bucket looks merely empty.
var forwarded node

// maxLoad is the load factor (elements per bucket) beyond which the table
// doubles; 2 keeps the expected bucket population within the inline
// prefix, so the one-cache-line fast path survives growth.
const maxLoad = 2

// shrinkLoad is the hysteresis divisor of the halving path: the table
// shrinks only when fewer than len(buckets)/shrinkLoad elements remain.
// With maxLoad = 2 the thresholds sit a factor of 8 apart, and a resize
// lands the load mid-band (1 after a grow, just under 1/2 after a
// shrink), so no workload oscillating around either boundary can flap
// the table back and forth.
const shrinkLoad = 4

// migrateQuantum bounds the helping work one update performs while a
// resize is in flight: claim and move up to this many old buckets.
const migrateQuantum = 2

// growthCheckMask amortizes load-factor checks: the O(shards) Net scan
// runs when an update's counter cell crosses a multiple of 64 operations
// (or an insert spills to an overflow chain — the bucket is visibly
// overfull).
const growthCheckMask = 64 - 1

// chainGuardMask paces the version re-validation of an optimistic chain
// walk: one check every 16 hops (counter & mask == 0). Without reuse a
// stale walk is merely wasted work over a frozen, finite chain; with
// recycled nodes the pointers under a walk can keep changing, so the walk
// must periodically prove the bucket untouched (in which case the
// remaining chain is the live, sorted, finite one) or restart. Chains are
// short — at maxLoad almost every bucket fits its inline prefix — so the
// guard is off the common path.
const chainGuardMask = 16 - 1

// testHookChainHit, when non-nil, runs after Search's chain scan matches
// its key and before it reads the value — exactly the window in which a
// concurrent retire-and-recycle can rewrite the node. The white-box
// validation test uses it to stage that interleaving deterministically.
var testHookChainHit func()

// ResizableOption configures NewResizable beyond its bucket count.
type ResizableOption func(*resizableOptions)

type resizableOptions struct {
	janitor bool
}

// WithJanitor makes NewResizable start the background janitor (see
// StartJanitor) before returning. Equivalent to calling StartJanitor on
// the new table; callers that stop using a janitored table should call
// Stop to release its goroutine.
func WithJanitor() ResizableOption {
	return func(o *resizableOptions) { o.janitor = true }
}

// NewResizable returns a growing table with at least nbuckets buckets
// (rounded up to a power of two).
func NewResizable(nbuckets int, opts ...ResizableOption) *Resizable {
	if nbuckets <= 0 {
		panic("hashmap: nbuckets must be positive")
	}
	n := 1
	for n < nbuckets {
		n <<= 1
	}
	r := &Resizable{
		count: core.NewStriped(0),
		pool:  qsbr.NewPool(qsbr.NewDomain(), 0),
		floor: n,
	}
	r.root.Store(newRTable(n))
	var o resizableOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.janitor {
		r.StartJanitor(0)
	}
	return r
}

func newRTable(nbuckets int) *rtable {
	return &rtable{buckets: newBucketSlab(nbuckets), mask: uint64(nbuckets - 1)}
}

// index spreads keys with a Fibonacci multiplicative hash. The fixed
// tables use key mod nbuckets, mirroring the paper; a power-of-two mask
// needs the multiply so dense key ranges don't collapse onto low bits.
func (t *rtable) index(key uint64) int {
	return int((key * 0x9E3779B97F4A7C15 >> 32) & t.mask)
}

// Search returns the value stored under key, if present. It never locks:
// forwarded buckets are followed into the next slab, and every outcome is
// version-validated — inline hits for pair atomicity, misses against a
// migration moving the key under the scan, and chain hits against node
// reuse: the matched node may have been retired and recycled between the
// key load and the value load, and only an unchanged bucket version
// proves it was not (any retirement is a critical section on this
// bucket). The chain walk itself re-validates every chainGuard hops so a
// scan over recycled nodes cannot chase mutating pointers forever.
func (r *Resizable) Search(key uint64) (uint64, bool) {
	ds.CheckKey(key)
	t := r.root.Load()
	for {
		b := &t.buckets[t.index(key)]
	restart:
		vn := b.lock.GetVersionWait()
		head := b.head.Load()
		if head == &forwarded {
			t = t.next.Load()
			continue
		}
		for i := range b.inline {
			if b.inline[i].key.Load() == key {
				val := b.inline[i].val.Load()
				if b.lock.GetVersion().Same(vn) {
					return val, true
				}
				goto restart
			}
		}
		hops := 0
		for cur := head; cur != nil; cur = cur.next.Load() {
			k := cur.key.Load()
			if k > key {
				break
			}
			if k == key {
				if h := testHookChainHit; h != nil {
					h()
				}
				val := cur.val.Load()
				if b.lock.GetVersion().Same(vn) {
					return val, true
				}
				goto restart
			}
			if hops++; hops&chainGuardMask == 0 && !b.lock.GetVersion().Same(vn) {
				goto restart
			}
		}
		if b.lock.GetVersion().Same(vn) {
			return 0, false
		}
		goto restart
	}
}

// Insert adds key→val if absent. A duplicate returns false without any
// synchronization; a feasible insert validates its scan with one
// TryLockVersion CAS, then bumps the size counter and, when thresholds
// say so, starts or helps a resize. Chain nodes come from the table's
// qsbr free list when a retired one is available.
func (r *Resizable) Insert(key, val uint64) bool {
	ds.CheckKey(key)
	rc := reclaimer{Pool: r.pool}
	defer rc.Release()
	r.help(&rc)
	return r.insert(&rc, key, val)
}

// insert is Insert's body with the reclamation handle supplied by the
// caller, so batch entry points (batch.go) amortize one handle over many
// operations.
func (r *Resizable) insert(rc *reclaimer, key, val uint64) bool {
	t := r.root.Load()
	var bo backoff.Backoff
	spilled := false
retry:
	for {
		b := &t.buckets[t.index(key)]
		vn := b.lock.GetVersion()
		head := b.head.Load()
		if head == &forwarded {
			t = t.next.Load()
			continue
		}
		free := -1
		dup := false
		for i := range b.inline {
			switch b.inline[i].key.Load() {
			case key:
				dup = true
			case 0:
				if free < 0 {
					free = i
				}
			}
		}
		if dup {
			return false // infeasible: no locking at all
		}
		var pred *node
		cur := head
		for hops := 0; cur != nil && cur.key.Load() < key; {
			pred, cur = cur, cur.next.Load()
			if hops++; hops&chainGuardMask == 0 && !b.lock.GetVersion().Same(vn) {
				continue retry
			}
		}
		if cur != nil && cur.key.Load() == key {
			return false // infeasible: no locking at all
		}
		if !b.lock.TryLockVersion(vn) {
			bo.Wait()
			continue
		}
		b.put(key, val, free, pred, cur, rc)
		b.lock.Unlock()
		spilled = free < 0
		break
	}
	c := r.count.AddOp(key, 1)
	if spilled || c&growthCheckMask == 0 {
		r.maybeGrow()
	}
	return true
}

// Upsert inserts key→val when key is absent and replaces the stored value
// when it is present, returning the previous value and whether a
// replacement happened. The replacement is a per-bucket OPTIK critical
// section like any other feasible update — the scan finds the slot or
// chain node optimistically, TryLockVersion validates it, and the store
// commits under the lock, so concurrent readers either validate against
// the old value or restart into the new one. An in-place replacement
// moves no thresholds (the element count is unchanged) but still counts
// as an operation for the maintenance scheduler's activity signal.
func (r *Resizable) Upsert(key, val uint64) (uint64, bool) {
	ds.CheckKey(key)
	rc := reclaimer{Pool: r.pool}
	defer rc.Release()
	r.help(&rc)
	return r.upsert(&rc, key, val)
}

// upsert is Upsert's body with a caller-supplied reclamation handle.
func (r *Resizable) upsert(rc *reclaimer, key, val uint64) (uint64, bool) {
	t := r.root.Load()
	var bo backoff.Backoff
retry:
	for {
		b := &t.buckets[t.index(key)]
		vn := b.lock.GetVersion()
		head := b.head.Load()
		if head == &forwarded {
			t = t.next.Load()
			continue
		}
		free := -1
		slot := -1
		for i := range b.inline {
			switch b.inline[i].key.Load() {
			case key:
				slot = i
			case 0:
				if free < 0 {
					free = i
				}
			}
		}
		if slot >= 0 {
			if !b.lock.TryLockVersion(vn) {
				bo.Wait()
				continue
			}
			// Validated: the slot still holds key, so the value is its.
			old := b.inline[slot].val.Load()
			b.inline[slot].val.Store(val)
			b.lock.Unlock()
			r.noteUpdate(key)
			return old, true
		}
		var pred *node
		cur := head
		for hops := 0; cur != nil && cur.key.Load() < key; {
			pred, cur = cur, cur.next.Load()
			if hops++; hops&chainGuardMask == 0 && !b.lock.GetVersion().Same(vn) {
				continue retry
			}
		}
		if cur != nil && cur.key.Load() == key {
			if !b.lock.TryLockVersion(vn) {
				bo.Wait()
				continue
			}
			old := cur.val.Load()
			cur.val.Store(val)
			b.lock.Unlock()
			r.noteUpdate(key)
			return old, true
		}
		if !b.lock.TryLockVersion(vn) {
			bo.Wait()
			continue
		}
		b.put(key, val, free, pred, cur, rc)
		b.lock.Unlock()
		if c := r.count.AddOp(key, 1); free < 0 || c&growthCheckMask == 0 {
			r.maybeGrow()
		}
		return 0, false
	}
}

// Delete removes key, returning its value, if present. A validated miss
// returns without locking; a hit validates-and-locks in one CAS. An
// unlinked chain node is retired to the qsbr free list — its value is
// read inside the critical section, never after, because retirement makes
// the node eligible for recycling the moment the version bump publishes.
func (r *Resizable) Delete(key uint64) (uint64, bool) {
	ds.CheckKey(key)
	rc := reclaimer{Pool: r.pool}
	defer rc.Release()
	r.help(&rc)
	return r.delete(&rc, key)
}

// delete is Delete's body with a caller-supplied reclamation handle.
func (r *Resizable) delete(rc *reclaimer, key uint64) (uint64, bool) {
	t := r.root.Load()
	var bo backoff.Backoff
retry:
	for {
		b := &t.buckets[t.index(key)]
		vn := b.lock.GetVersionWait()
		head := b.head.Load()
		if head == &forwarded {
			t = t.next.Load()
			continue
		}
		slot := -1
		for i := range b.inline {
			if b.inline[i].key.Load() == key {
				slot = i
				break
			}
		}
		if slot >= 0 {
			if !b.lock.TryLockVersion(vn) {
				bo.Wait()
				continue
			}
			// Validated: the slot still holds key, so the value is its.
			val := b.inline[slot].val.Load()
			b.inline[slot].key.Store(0)
			b.lock.Unlock()
			r.noteDelete(key)
			return val, true
		}
		var pred *node
		cur := head
		for hops := 0; cur != nil && cur.key.Load() < key; {
			pred, cur = cur, cur.next.Load()
			if hops++; hops&chainGuardMask == 0 && !b.lock.GetVersion().Same(vn) {
				continue retry
			}
		}
		if cur == nil || cur.key.Load() != key {
			if b.lock.GetVersion().Same(vn) {
				return 0, false
			}
			continue
		}
		if !b.lock.TryLockVersion(vn) {
			bo.Wait()
			continue
		}
		val := cur.val.Load()
		if pred == nil {
			b.head.Store(cur.next.Load())
		} else {
			pred.next.Store(cur.next.Load())
		}
		b.lock.Unlock()
		rc.Retire(cur)
		r.noteDelete(key)
		return val, true
	}
}

// DeleteIfValue removes key only while it still maps to val, reporting
// whether it did. confirm, when non-nil, runs while the bucket's OPTIK
// lock is held after the value check passes; returning false aborts the
// removal with the lock Reverted (no version bump, so concurrent readers'
// snapshots stay valid — nothing changed). This is the conditional-delete
// primitive a layer above needs to retire an entry it sampled without a
// lock: the value check proves the mapping is the one it saw, and the
// confirm hook lets it re-validate its own state (store.Strings checks
// the value slot still holds the pair it judged expired or idle) at a
// point where no concurrent delete/re-insert can be in flight for this
// key — both would need this bucket's lock.
func (r *Resizable) DeleteIfValue(key, val uint64, confirm func() bool) bool {
	ds.CheckKey(key)
	rc := reclaimer{Pool: r.pool}
	defer rc.Release()
	r.help(&rc)
	return r.deleteIfValue(&rc, key, val, confirm)
}

// deleteIfValue is DeleteIfValue's body with a caller-supplied reclamation
// handle; the shape is delete's, plus the value/confirm checks inside the
// critical section.
func (r *Resizable) deleteIfValue(rc *reclaimer, key, val uint64, confirm func() bool) bool {
	t := r.root.Load()
	var bo backoff.Backoff
retry:
	for {
		b := &t.buckets[t.index(key)]
		vn := b.lock.GetVersionWait()
		head := b.head.Load()
		if head == &forwarded {
			t = t.next.Load()
			continue
		}
		slot := -1
		for i := range b.inline {
			if b.inline[i].key.Load() == key {
				slot = i
				break
			}
		}
		if slot >= 0 {
			if !b.lock.TryLockVersion(vn) {
				bo.Wait()
				continue
			}
			// Validated: the slot still holds key, so the value is its.
			if b.inline[slot].val.Load() != val || (confirm != nil && !confirm()) {
				b.lock.Revert()
				return false
			}
			b.inline[slot].key.Store(0)
			b.lock.Unlock()
			r.noteDelete(key)
			return true
		}
		var pred *node
		cur := head
		for hops := 0; cur != nil && cur.key.Load() < key; {
			pred, cur = cur, cur.next.Load()
			if hops++; hops&chainGuardMask == 0 && !b.lock.GetVersion().Same(vn) {
				continue retry
			}
		}
		if cur == nil || cur.key.Load() != key {
			if b.lock.GetVersion().Same(vn) {
				return false
			}
			continue
		}
		if !b.lock.TryLockVersion(vn) {
			bo.Wait()
			continue
		}
		if cur.val.Load() != val || (confirm != nil && !confirm()) {
			b.lock.Revert()
			return false
		}
		if pred == nil {
			b.head.Store(cur.next.Load())
		} else {
			pred.next.Store(cur.next.Load())
		}
		b.lock.Unlock()
		rc.Retire(cur)
		r.noteDelete(key)
		return true
	}
}

// noteDelete records a successful removal on the striped counter and, on
// the same amortization schedule as the growth check, considers shrinking.
// The check fires when the cell's op count crosses a multiple of 64 —
// deterministic progress even when inserts and deletes balance and the net
// cell value stands still.
func (r *Resizable) noteDelete(key uint64) {
	if c := r.count.AddOp(key, -1); c&growthCheckMask == 0 {
		r.maybeShrink()
	}
}

// noteUpdate records an in-place value replacement: one operation with no
// net element effect. It exists for the maintenance scheduler's activity
// signal — no threshold can have moved, so there is nothing to check.
func (r *Resizable) noteUpdate(key uint64) {
	r.count.AddOp(key, 0)
}

// Len returns the element count from the striped counter: O(shards),
// independent of the table size. Exact when quiescent, approximate under
// concurrent updates (like every Len in the library). The net is clamped
// at zero: a reader can catch a delete's decrement before the matching
// insert's increment and see a transiently negative total, which must not
// leak out as a negative (or, through int truncation, enormous) length.
func (r *Resizable) Len() int {
	if n := r.count.Net(); n > 0 {
		return int(n)
	}
	return 0
}

// Buckets returns the current root slab's bucket count (racy; for tests
// and monitoring).
func (r *Resizable) Buckets() int { return len(r.root.Load().buckets) }

// Resizes returns how many resizes (grows and shrinks alike) the table has
// started over its lifetime (racy; for tests and monitoring — the flapping
// tests assert this stays bounded under threshold oscillation).
func (r *Resizable) Resizes() int { return int(r.resizes.Load()) }

// ReclaimStats reports the table's lifetime chain-node reclamation
// counters — retired (unlinked and handed to qsbr), reclaimed (moved to a
// free list once no announcement blocked them) and reused (handed back
// out by an allocation). Racy snapshot; for monitoring and the
// allocation-regression tests.
func (r *Resizable) ReclaimStats() (retired, reclaimed, reused uint64) {
	return r.pool.Domain().Stats()
}

// ActivitySample implements Maintainer: a hash of the root slab pointer,
// the migration cursor and the monotone op count, so any update — an
// insert, a delete, a value replacement, or migration progress — changes
// the sample. The old per-field comparison compared the striped element
// *sum*, which perfectly balanced traffic (equal inserts and deletes, the
// steady state of any full cache) leaves unchanged; the op count advances
// on every successful update, so "unchanged since last sample" genuinely
// means untouched. Hash-combining can in principle collide two distinct
// states into a false idle verdict — safe per the Maintainer contract
// (quiescing is merely unnecessary work) and requiring an exact 64-bit
// collision between consecutive samples.
func (r *Resizable) ActivitySample() uint64 {
	t := r.root.Load()
	h := uint64(uintptr(unsafe.Pointer(t)))
	h = (h ^ uint64(t.cursor.Load())) * 0x9E3779B97F4A7C15
	h = (h ^ uint64(r.count.Ops())) * 0x9E3779B97F4A7C15
	return h
}

// MaintainIdle implements Maintainer: the full maintenance pass for a
// table nothing touched since the last sample — quiesce any migration
// home (cancellably) and sweep the reclamation pool so retirements below
// the release batch threshold still reach the free lists.
func (r *Resizable) MaintainIdle(cancel <-chan struct{}) {
	r.quiesce(cancel)
	r.pool.Sweep()
}

// MaintainBusy implements Maintainer: a busy table drives its own resizes
// on the backs of its updates, so the scheduler only lends a bounded hand
// when a migration is actually in flight.
func (r *Resizable) MaintainBusy() {
	if r.root.Load().next.Load() == nil {
		return
	}
	rc := reclaimer{Pool: r.pool}
	defer rc.Release()
	r.help(&rc)
}

// help migrates up to migrateQuantum claims of the root slab if a resize
// is in flight. When no resize is running it costs one pointer load.
// A claim is one bucket when growing and a bucket pair when shrinking
// (claims(t, next) counts them).
func (r *Resizable) help(rc *reclaimer) {
	t := r.root.Load()
	next := t.next.Load()
	if next == nil {
		return
	}
	total := claims(t, next)
	shrink := len(next.buckets) < len(t.buckets)
	for q := 0; q < migrateQuantum; q++ {
		idx := t.cursor.Add(1) - 1
		if idx >= total {
			return
		}
		if shrink {
			t.migratePair(int(idx), next, rc)
		} else {
			t.migrateBucket(int(idx), next, rc)
		}
		if t.migrated.Add(1) == total {
			// Every bucket is forwarded: retire the old slab. Exactly one
			// helper observes the final count, so the CAS is unambiguous.
			r.root.CompareAndSwap(t, next)
			return
		}
	}
}

// claims returns how many cursor claims migrating t into next takes: one
// per bucket growing, one per bucket pair shrinking.
func claims(t, next *rtable) int64 {
	n := int64(len(t.buckets))
	if len(next.buckets) < len(t.buckets) {
		return n / 2
	}
	return n
}

// maybeGrow links a doubled slab behind the deepest one when the load
// factor passes maxLoad. The CAS makes concurrent growers idempotent.
func (r *Resizable) maybeGrow() {
	t := r.root.Load()
	for n := t.next.Load(); n != nil; n = t.next.Load() {
		t = n
	}
	if r.count.Net() <= int64(len(t.buckets))*maxLoad {
		return
	}
	if t.next.CompareAndSwap(nil, newRTable(len(t.buckets)*2)) {
		r.resizes.Add(1)
	}
}

// maybeShrink links a halved slab behind the deepest one when the element
// count drops below len(buckets)/shrinkLoad, never below the floor. The
// CAS makes concurrent shrinkers (and a racing grower) link exactly one
// successor.
func (r *Resizable) maybeShrink() {
	t := r.root.Load()
	for n := t.next.Load(); n != nil; n = t.next.Load() {
		t = n
	}
	n := len(t.buckets)
	if n <= r.floor || r.count.Net()*shrinkLoad >= int64(n) {
		return
	}
	if t.next.CompareAndSwap(nil, newRTable(n/2)) {
		r.resizes.Add(1)
	}
}

// Quiesce drives any in-flight migration to completion, then starts (and
// completes) whatever resize the current load calls for, until the table
// is a single slab sized within the hysteresis band. Migration otherwise
// advances only on the backs of updates, so a table left oversized by a
// delete storm keeps its memory until the next write burst; operators and
// the churn workload call Quiesce between traffic phases (or run the
// janitor, which calls it for them). Safe to call concurrently with
// operations, which proceed exactly as they do against update-driven
// migration.
//
// When every remaining claim is already handed out to concurrent updates
// that have not finished them, there is nothing left to help with; the
// loop then backs off (exponentially, yielding to the scheduler first)
// instead of spinning on the root pointer, so a janitor quiescing under
// sustained write traffic cannot burn a core re-reading state only those
// writers can change.
func (r *Resizable) Quiesce() { r.quiesce(nil) }

// quiesce is Quiesce with an optional cancel channel, so the janitor's
// maintenance never outlives a Stop even when traffic keeps the table out
// of band indefinitely.
func (r *Resizable) quiesce(cancel <-chan struct{}) {
	rc := reclaimer{Pool: r.pool}
	defer rc.Release()
	var bo backoff.Backoff
	var last *rtable
	helps := 0
	for {
		if cancel != nil {
			select {
			case <-cancel:
				return
			default:
			}
		}
		t := r.root.Load()
		if t != last {
			last = t
			bo.Reset()
		}
		if next := t.next.Load(); next != nil {
			if t.cursor.Load() < claims(t, next) {
				r.help(&rc)
				bo.Reset()
				// A long migration retires whole chains per claim; cycling
				// the handle at op-boundaries lets the amortized sweep run,
				// so nodes retired early in the drain feed the allocations
				// later in it instead of piling up unreclaimed.
				if helps++; helps%64 == 0 {
					rc.Release()
				}
			} else {
				bo.Wait()
			}
			continue
		}
		// Single slab: let the triggers decide — each owns its threshold
		// and declines inside the band.
		r.maybeGrow()
		r.maybeShrink()
		if r.root.Load() == t && t.next.Load() == nil {
			// Both triggers declined: the table is in band. Done.
			return
		}
	}
}

// migrateBucket moves bucket i into next and forwards it. The copy is an
// OPTIK critical section on the bucket's lock: concurrent feasible updates
// fail TryLockVersion and retry until they observe the sentinel, and the
// version bump on unlock sends optimistic readers back around.
func (t *rtable) migrateBucket(i int, next *rtable, rc *reclaimer) {
	b := &t.buckets[i]
	b.lock.Lock()
	b.moveAll(next, rc)
	b.head.Store(&forwarded)
	b.lock.Unlock()
}

// migratePair is migrateBucket's shrinking counterpart: old buckets i and
// i+n/2 are exactly the two whose keys hash to new bucket i in the
// half-size successor, so the merge of their chains is one critical
// section under both OPTIK locks. Holding both while copying gives the
// same guarantee the single-bucket copy gives growing — no instant at
// which part of the pair's contents is absent from every slab — and the
// two forwarding stores then retire the pair together. Lock order is safe
// without a global discipline: the cursor hands each pair to exactly one
// claimant, ordinary updates hold one bucket lock at a time and never
// block acquiring another while holding it, and migrations only acquire
// down the slab chain (sources before destinations), so no cycle can
// form. Readers, as ever, acquire nothing: a racing scan either fails
// version validation against the bumped source versions or meets the
// sentinel and hops.
func (t *rtable) migratePair(i int, next *rtable, rc *reclaimer) {
	lo, hi := &t.buckets[i], &t.buckets[i+len(t.buckets)/2]
	lo.lock.Lock()
	hi.lock.Lock()
	lo.moveAll(next, rc)
	hi.moveAll(next, rc)
	lo.head.Store(&forwarded)
	hi.head.Store(&forwarded)
	hi.lock.Unlock()
	lo.lock.Unlock()
}

// moveAll copies every live entry of b (inline prefix and overflow chain)
// into next, retiring the source chain nodes as it goes. The caller holds
// b's lock; the old slots and node contents are left untouched, so
// readers that entered before forwarding finish against a consistent (if
// stale) snapshot — retirement only makes the nodes *eligible* for
// recycling, and any reader that could still be bitten by the eventual
// recycle necessarily fails its version validation against this critical
// section and restarts.
func (b *bucket) moveAll(next *rtable, rc *reclaimer) {
	for s := range b.inline {
		if k := b.inline[s].key.Load(); k != 0 {
			insertMoved(next, k, b.inline[s].val.Load(), rc)
		}
	}
	for cur := b.head.Load(); cur != nil; cur = cur.next.Load() {
		insertMoved(next, cur.key.Load(), cur.val.Load(), rc)
		rc.Retire(cur)
	}
}

// insertMoved inserts a migrated entry into t, following forwarded buckets
// into deeper slabs (a cascaded resize may already have forwarded the
// destination). No duplicate check: the key's source bucket is locked by
// the caller, so the key cannot exist anywhere ahead. No counting either —
// migration moves entries, it does not create them. Destination chain
// nodes come from the same reclaimer that is retiring the source chain,
// though never a node retired within this same operation: retirements
// only reach the free list at a sweep, and sweeps run strictly between
// operations.
func insertMoved(t *rtable, key, val uint64, rc *reclaimer) {
	var bo backoff.Backoff
retry:
	for {
		b := &t.buckets[t.index(key)]
		vn := b.lock.GetVersion()
		head := b.head.Load()
		if head == &forwarded {
			t = t.next.Load()
			continue
		}
		free := -1
		for i := range b.inline {
			if b.inline[i].key.Load() == 0 {
				free = i
				break
			}
		}
		var pred *node
		cur := head
		for hops := 0; cur != nil && cur.key.Load() < key; {
			pred, cur = cur, cur.next.Load()
			if hops++; hops&chainGuardMask == 0 && !b.lock.GetVersion().Same(vn) {
				continue retry
			}
		}
		if !b.lock.TryLockVersion(vn) {
			bo.Wait()
			continue
		}
		b.put(key, val, free, pred, cur, rc)
		b.lock.Unlock()
		return
	}
}
