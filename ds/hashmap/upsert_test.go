package hashmap

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/optik-go/optik/internal/rng"
)

// TestUpsertSemantics pins the contract on both storage classes: a fresh
// key inserts (old = 0, replaced = false), an existing key replaces in
// place and returns the previous value, and a replacement moves neither
// Len nor the thresholds.
func TestUpsertSemantics(t *testing.T) {
	m := NewResizable(8)
	rt := m.root.Load()
	keys := chainKeys(rt, inlinePairs+3) // first 3 inline, rest chained
	for i, k := range keys {
		if old, replaced := m.Upsert(k, uint64(i+1)); replaced || old != 0 {
			t.Fatalf("Upsert(%d) fresh = %d,%v; want 0,false", k, old, replaced)
		}
	}
	if got := m.Len(); got != len(keys) {
		t.Fatalf("Len = %d, want %d", got, len(keys))
	}
	for i, k := range keys {
		if old, replaced := m.Upsert(k, uint64(i+1)*100); !replaced || old != uint64(i+1) {
			t.Fatalf("Upsert(%d) replace = %d,%v; want %d,true", k, old, replaced, i+1)
		}
	}
	if got := m.Len(); got != len(keys) {
		t.Fatalf("Len = %d after replacements, want %d", got, len(keys))
	}
	for i, k := range keys {
		if v, ok := m.Search(k); !ok || v != uint64(i+1)*100 {
			t.Fatalf("Search(%d) = %d,%v; want %d,true", k, v, ok, (i+1)*100)
		}
	}
	resizesBefore := m.Resizes()
	for rep := 0; rep < 1000; rep++ {
		m.Upsert(keys[0], uint64(rep))
	}
	if got := m.Resizes(); got != resizesBefore {
		t.Fatalf("replacements triggered %d resizes", got-resizesBefore)
	}
}

// TestUpsertAcrossResize drives upserts through live migrations: values
// written before, during and after a grow must all be the last ones
// written, whichever slab the key lived in at the time.
func TestUpsertAcrossResize(t *testing.T) {
	m := NewResizable(2)
	const n = 20000
	for k := uint64(1); k <= n; k++ {
		m.Upsert(k, k)
	}
	for k := uint64(1); k <= n; k++ {
		if old, replaced := m.Upsert(k, k*7); !replaced || old != k {
			t.Fatalf("Upsert(%d) = %d,%v mid-growth; want %d,true", k, old, replaced, k)
		}
	}
	m.Quiesce()
	for k := uint64(1); k <= n; k++ {
		if v, ok := m.Search(k); !ok || v != k*7 {
			t.Fatalf("Search(%d) = %d,%v; want %d,true", k, v, ok, k*7)
		}
	}
	if got := m.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
}

// TestUpsertConcurrentConservation hammers Upsert/Delete from many
// goroutines: the net of fresh inserts minus successful deletes must equal
// the final Len, and every surviving value must be one some writer wrote.
func TestUpsertConcurrentConservation(t *testing.T) {
	const workers = 8
	iters := 30000
	if testing.Short() {
		iters = 8000
	}
	m := NewResizable(16)
	var net atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.NewXorshift(seed)
			for i := 0; i < iters; i++ {
				key := r.Intn(4096) + 1
				switch r.Intn(3) {
				case 0:
					if _, replaced := m.Upsert(key, key*10+seed); !replaced {
						net.Add(1)
					}
				case 1:
					if m.Insert(key, key*10+seed) {
						net.Add(1)
					}
				default:
					if _, ok := m.Delete(key); ok {
						net.Add(-1)
					}
				}
			}
		}(uint64(g + 1))
	}
	wg.Wait()
	m.Quiesce()
	if got, want := int64(m.Len()), net.Load(); got != want {
		t.Fatalf("Len = %d, net = %d", got, want)
	}
	m.checkMigrationState(t)
}

// TestBatchOps pins the batch entry points against their scalar
// equivalents: same results, one key at a time, and the batch insert
// count matches the fresh-key count.
func TestBatchOps(t *testing.T) {
	m := NewResizable(16)
	keys := make([]uint64, 500)
	vals := make([]uint64, 500)
	for i := range keys {
		keys[i] = uint64(i + 1)
		vals[i] = uint64(i+1) * 3
	}
	if got := m.UpsertBatch(keys, vals); got != len(keys) {
		t.Fatalf("UpsertBatch fresh = %d, want %d", got, len(keys))
	}
	if got := m.UpsertBatch(keys, vals); got != 0 {
		t.Fatalf("UpsertBatch repeat = %d, want 0", got)
	}
	outVals := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	m.SearchBatch(keys, outVals, found)
	for i := range keys {
		if !found[i] || outVals[i] != vals[i] {
			t.Fatalf("SearchBatch[%d] = %d,%v; want %d,true", i, outVals[i], found[i], vals[i])
		}
	}
	if got := m.DeleteBatch(keys[:250]); got != 250 {
		t.Fatalf("DeleteBatch = %d, want 250", got)
	}
	if got := m.DeleteBatch(keys[:250]); got != 0 {
		t.Fatalf("DeleteBatch repeat = %d, want 0", got)
	}
	if got := m.Len(); got != 250 {
		t.Fatalf("Len = %d, want 250", got)
	}
	m.SearchBatch(keys, outVals, found)
	for i := range keys {
		if found[i] != (i >= 250) {
			t.Fatalf("SearchBatch[%d] found = %v after deletes", i, found[i])
		}
	}
}

// TestBatchOpsEach pins the per-key-result batch variants: outcomes must
// match what the same sequence of scalar Upserts/Deletes would report,
// including duplicate keys inside one batch (applied in order: the first
// occurrence inserts or deletes, the rest see its effect).
func TestBatchOpsEach(t *testing.T) {
	m := NewResizable(16)
	keys := []uint64{10, 20, 10, 30, 20, 10}
	vals := []uint64{1, 2, 3, 4, 5, 6}
	old := make([]uint64, len(keys))
	replaced := make([]bool, len(keys))
	if got := m.UpsertBatchEach(keys, vals, old, replaced); got != 3 {
		t.Fatalf("UpsertBatchEach fresh = %d, want 3 (distinct keys)", got)
	}
	wantRepl := []bool{false, false, true, false, true, true}
	wantOld := []uint64{0, 0, 1, 0, 2, 3}
	for i := range keys {
		if replaced[i] != wantRepl[i] || (replaced[i] && old[i] != wantOld[i]) {
			t.Fatalf("UpsertBatchEach[%d] = old %d replaced %v; want %d %v",
				i, old[i], replaced[i], wantOld[i], wantRepl[i])
		}
	}
	if v, ok := m.Search(10); !ok || v != 6 {
		t.Fatalf("Search(10) = %d,%v; want 6 (last duplicate wins)", v, ok)
	}
	delKeys := []uint64{10, 99, 10, 20}
	delOld := make([]uint64, len(delKeys))
	delFound := make([]bool, len(delKeys))
	if got := m.DeleteBatchEach(delKeys, delOld, delFound); got != 2 {
		t.Fatalf("DeleteBatchEach = %d, want 2", got)
	}
	wantDel := []bool{true, false, false, true}
	for i := range delKeys {
		if delFound[i] != wantDel[i] {
			t.Fatalf("DeleteBatchEach[%d] found = %v, want %v", i, delFound[i], wantDel[i])
		}
	}
	if delOld[0] != 6 || delOld[3] != 5 {
		t.Fatalf("DeleteBatchEach old = %v", delOld)
	}
	if got := m.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1 (only key 30 left)", got)
	}
}
