package hashmap

import (
	"github.com/optik-go/optik/ds"
	"github.com/optik-go/optik/internal/backoff"
	"github.com/optik-go/optik/internal/qsbr"
)

// SlabReuse is the fixed-capacity slab table with the node lifecycle of
// Resizable but none of its resize machinery: overflow-chain nodes retire
// to a per-table qsbr pool on delete and recycle into later inserts. It
// exists to isolate the reclamation ablation — Slab (never recycles) vs
// SlabReuse (recycles) differ in exactly one dimension, so the
// BenchmarkBucketLayout rows attribute the allocation win (and the
// validation cost that buys it) to reuse alone, with no migration noise.
//
// Reuse changes the read-side obligations, the same way it did for
// Resizable (PR 3's headline fix): Slab's chain walks trust whatever they
// traverse because an unlinked node is frozen forever, but a recycled
// node's key, value and next pointer are rewritten by its next owner.
// Every chain outcome therefore validates the bucket version before it is
// trusted — a hit before returning the value (the node may have been
// retired and rewritten between the key load and the value load), a miss
// before returning false (a walk over a recycled node can wander off this
// bucket's chain entirely and skip a key that was present all along) —
// and long walks re-validate every chainGuard hops so a scan over
// mutating pointers cannot chase them forever. Retirement only happens
// inside a critical section on the node's bucket, so an unchanged version
// proves the walk saw the live chain. The inline fast paths are untouched:
// at the paper's load factor the common operation still completes inside
// one cache line with Slab's exact cost.
type SlabReuse struct {
	buckets []bucket
	pool    *qsbr.Pool
}

var _ ds.Set = (*SlabReuse)(nil)

// NewSlabReuse returns a fixed-capacity slab table with nbuckets buckets
// and qsbr-backed chain-node recycling.
func NewSlabReuse(nbuckets int) *SlabReuse {
	if nbuckets <= 0 {
		panic("hashmap: nbuckets must be positive")
	}
	return &SlabReuse{
		buckets: newBucketSlab(nbuckets),
		pool:    qsbr.NewPool(qsbr.NewDomain(), 0),
	}
}

func (t *SlabReuse) bucket(key uint64) *bucket {
	return &t.buckets[bucketIndex(key, len(t.buckets))]
}

// Search returns the value stored under key, if present. Lock-free; every
// chain outcome is version-validated against node reuse (see the type
// comment). An inline hit validates exactly as Slab's does.
func (t *SlabReuse) Search(key uint64) (uint64, bool) {
	ds.CheckKey(key)
	b := t.bucket(key)
restart:
	vn := b.lock.GetVersionWait()
	for i := range b.inline {
		if b.inline[i].key.Load() == key {
			val := b.inline[i].val.Load()
			if b.lock.GetVersion().Same(vn) {
				return val, true
			}
			goto restart
		}
	}
	hops := 0
	for cur := b.head.Load(); cur != nil; cur = cur.next.Load() {
		k := cur.key.Load()
		if k > key {
			break
		}
		if k == key {
			val := cur.val.Load()
			if b.lock.GetVersion().Same(vn) {
				return val, true
			}
			goto restart
		}
		if hops++; hops&chainGuardMask == 0 && !b.lock.GetVersion().Same(vn) {
			goto restart
		}
	}
	if b.lock.GetVersion().Same(vn) {
		return 0, false
	}
	goto restart
}

// Insert adds key→val if absent. The feasible path validates-and-locks in
// one CAS and links a node recycled from the free list when one is
// available; the infeasible (duplicate) path returns without locking once
// the version validates its scan.
func (t *SlabReuse) Insert(key, val uint64) bool {
	ds.CheckKey(key)
	rc := reclaimer{Pool: t.pool}
	defer rc.Release()
	b := t.bucket(key)
	var bo backoff.Backoff
retry:
	for {
		vn := b.lock.GetVersion()
		free := -1
		dup := false
		for i := range b.inline {
			switch b.inline[i].key.Load() {
			case key:
				dup = true
			case 0:
				if free < 0 {
					free = i
				}
			}
		}
		if dup {
			return false // infeasible: no locking at all
		}
		var pred *node
		cur := b.head.Load()
		for hops := 0; cur != nil && cur.key.Load() < key; {
			pred, cur = cur, cur.next.Load()
			if hops++; hops&chainGuardMask == 0 && !b.lock.GetVersion().Same(vn) {
				continue retry
			}
		}
		if cur != nil && cur.key.Load() == key {
			if b.lock.GetVersion().Same(vn) {
				return false // the chain duplicate was really there
			}
			continue
		}
		if !b.lock.TryLockVersion(vn) {
			bo.Wait()
			continue
		}
		b.put(key, val, free, pred, cur, &rc)
		b.lock.Unlock()
		return true
	}
}

// Delete removes key, returning its value, if present. The unlinked chain
// node retires to the qsbr free list — its value is read inside the
// critical section, never after, because retirement makes the node
// eligible for recycling the moment the version bump publishes. A chain
// miss validates before returning (unlike Slab's, which may trust a
// frozen chain).
func (t *SlabReuse) Delete(key uint64) (uint64, bool) {
	ds.CheckKey(key)
	rc := reclaimer{Pool: t.pool}
	defer rc.Release()
	b := t.bucket(key)
	var bo backoff.Backoff
retry:
	for {
		vn := b.lock.GetVersionWait()
		slot := -1
		for i := range b.inline {
			if b.inline[i].key.Load() == key {
				slot = i
				break
			}
		}
		if slot >= 0 {
			if !b.lock.TryLockVersion(vn) {
				bo.Wait()
				continue
			}
			// Validated: the slot still holds key, so the value is its.
			val := b.inline[slot].val.Load()
			b.inline[slot].key.Store(0)
			b.lock.Unlock()
			return val, true
		}
		var pred *node
		cur := b.head.Load()
		for hops := 0; cur != nil && cur.key.Load() < key; {
			pred, cur = cur, cur.next.Load()
			if hops++; hops&chainGuardMask == 0 && !b.lock.GetVersion().Same(vn) {
				continue retry
			}
		}
		if cur == nil || cur.key.Load() != key {
			if b.lock.GetVersion().Same(vn) {
				return 0, false
			}
			continue
		}
		if !b.lock.TryLockVersion(vn) {
			bo.Wait()
			continue
		}
		val := cur.val.Load()
		if pred == nil {
			b.head.Store(cur.next.Load())
		} else {
			pred.next.Store(cur.next.Load())
		}
		b.lock.Unlock()
		rc.Retire(cur)
		return val, true
	}
}

// Len sums the bucket sizes (not linearizable).
func (t *SlabReuse) Len() int {
	n := 0
	for i := range t.buckets {
		n += t.buckets[i].size()
	}
	return n
}

// ReclaimStats reports the table's lifetime chain-node reclamation
// counters (racy snapshot; for monitoring and the reuse tests).
func (t *SlabReuse) ReclaimStats() (retired, reclaimed, reused uint64) {
	return t.pool.Domain().Stats()
}
