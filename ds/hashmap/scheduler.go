package hashmap

import (
	"sync"
	"sync/atomic"
	"time"
)

// Scheduler is the shared maintenance goroutine behind the background
// janitors: one goroutine services any number of registered Resizable
// tables, so a sharded deployment (store.Store) pays one timer and one
// goroutine for its whole fleet instead of one per shard. Each poll the
// scheduler samples every table's activity; a table idle for two
// consecutive samples gets the full maintenance pass (quiesce its resize
// chain home, sweep its reclamation pool), a table with a migration in
// flight gets a bounded hand, and a busy table is left to drive its own
// resizes on the backs of its updates.
//
// Two refinements over the per-table janitor it replaces:
//
//   - The activity signal is the table's monotone operation count (the op
//     half of the packed striped counter), alongside the root slab and
//     migration cursor. The old signal compared the striped element *sum*,
//     which perfectly balanced traffic — equal inserts and deletes, the
//     steady state of any full cache — leaves unchanged, so a hot table
//     could read as idle. The op count advances on every successful
//     update, so "unchanged since last sample" now genuinely means
//     untouched. (A spurious idle verdict was always safe — quiescing is
//     merely unnecessary work — but a scheduler serving many tables
//     cannot afford to run full quiesces against busy ones.)
//   - The poll interval backs off exponentially while every table is
//     idle, doubling from the base up to idleBackoffMax times it, and
//     snaps back to the base the moment any table shows activity (or a
//     table is registered). An abandoned fleet costs a waking timer a few
//     times a second instead of a hundred times; a busy one is sampled at
//     the base rate.
//
// The scheduler is structure-agnostic: anything implementing Maintainer —
// Resizable tables, the skip-list shards behind store.Ordered — registers
// and shares the one goroutine. Register and Unregister may be called at
// any time, including while the scheduler is mid-pass; Stop halts the
// goroutine and waits for it. The per-table StartJanitor/WithJanitor API
// (janitor.go) remains as a thin wrapper that runs a private one-table
// scheduler.
type Scheduler struct {
	mu      sync.Mutex
	entries map[Maintainer]*schedEntry
	stop    chan struct{}
	done    chan struct{}
	wake    chan struct{}
	stopped bool
	base    time.Duration
	// interval mirrors the goroutine's current poll interval in
	// nanoseconds (racy reads via Interval; for monitoring and the
	// backoff tests).
	interval atomic.Int64
}

// Maintainer is what a structure exposes to share the maintenance
// goroutine. The scheduler samples activity each poll; two equal
// consecutive samples earn the full idle pass, anything else gets the
// bounded busy hand.
type Maintainer interface {
	// ActivitySample condenses the structure's write-visible state into
	// one word: it MUST change whenever an update touched the structure
	// since the previous call (reads may leave no trace — reads alone
	// never need maintenance). A spurious "unchanged" verdict must be
	// safe for MaintainIdle, merely unnecessary; implementations that
	// hash several fields together accept a collision-induced false idle
	// on those terms.
	ActivitySample() uint64
	// MaintainIdle runs the full maintenance pass — quiesce migrations
	// home, sweep the reclamation pool — aborting promptly when cancel
	// closes, so maintenance never outlives a Stop.
	MaintainIdle(cancel <-chan struct{})
	// MaintainBusy lends a bounded hand to a structure with traffic (for
	// the hash table: advance an in-flight migration by one quantum). It
	// must not block on the structure going idle.
	MaintainBusy()
}

// schedEntry is one registered structure plus its last activity sample.
type schedEntry struct {
	m      Maintainer
	sample uint64
	seen   bool
}

// idleBackoffMax caps the idle poll interval at this multiple of the base
// interval: wide enough that an idle fleet's timer is background noise,
// narrow enough that the first write burst after a lull is picked up
// within a second at the default base.
const idleBackoffMax = 64

// NewScheduler returns a running scheduler polling every base
// (DefaultJanitorInterval when base <= 0). It starts with no tables; the
// goroutine idles at the backed-off interval until the first Register.
func NewScheduler(base time.Duration) *Scheduler {
	if base <= 0 {
		base = DefaultJanitorInterval
	}
	s := &Scheduler{
		entries: make(map[Maintainer]*schedEntry),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		wake:    make(chan struct{}, 1),
		base:    base,
	}
	s.interval.Store(int64(base))
	go s.run()
	return s
}

// Register adds m to the scheduler's maintenance rounds and resets the
// poll interval to the base (a fresh structure deserves prompt attention).
// Registering a structure twice, or on a stopped scheduler, is a no-op.
func (s *Scheduler) Register(m Maintainer) {
	s.mu.Lock()
	if _, ok := s.entries[m]; !ok && !s.stopped {
		s.entries[m] = &schedEntry{m: m}
	}
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Unregister removes m from the maintenance rounds. The structure keeps
// working — migration still advances on its updates and Quiesce remains
// available — it just gets no background attention.
func (s *Scheduler) Unregister(m Maintainer) {
	s.mu.Lock()
	delete(s.entries, m)
	s.mu.Unlock()
}

// Stop halts the scheduler goroutine and waits for it to exit (promptly
// even mid-quiesce: the per-table maintenance is cancellable). Idempotent;
// a stopped scheduler stays stopped — start a new one instead.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.stopped = true
	s.mu.Unlock()
	close(s.stop)
	<-s.done
}

// Tables returns how many structures are registered (racy; for
// monitoring).
func (s *Scheduler) Tables() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Interval returns the scheduler's current poll interval: the base while
// any table is active, backed off exponentially (up to idleBackoffMax ×
// base) while all are idle. Racy; for monitoring and tests.
func (s *Scheduler) Interval() time.Duration {
	return time.Duration(s.interval.Load())
}

func (s *Scheduler) run() {
	defer close(s.done)
	interval := s.base
	timer := time.NewTimer(interval)
	defer timer.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-s.wake:
			// A registration: restart the cadence at the base so the new
			// table's first sample lands promptly.
			interval = s.base
			s.interval.Store(int64(interval))
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(interval)
			continue
		case <-timer.C:
		}
		if s.pass() {
			interval = s.base
		} else if interval < s.base*idleBackoffMax {
			interval *= 2
		}
		s.interval.Store(int64(interval))
		timer.Reset(interval)
	}
}

// pass runs one maintenance round over every registered table and reports
// whether any of them showed activity. The entry list is snapshotted so
// Register/Unregister never wait behind a quiesce.
func (s *Scheduler) pass() bool {
	s.mu.Lock()
	entries := make([]*schedEntry, 0, len(s.entries))
	for _, e := range s.entries {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	active := false
	for _, e := range entries {
		if s.service(e) {
			active = true
		}
	}
	return active
}

// service runs one maintenance round for one structure and reports whether
// it was active since its last sample. A spurious idle verdict is safe by
// the Maintainer contract (the idle pass is always correct, merely
// unnecessary); the stop channel keeps even a wrong verdict from outliving
// the scheduler.
func (s *Scheduler) service(e *schedEntry) bool {
	cur := e.m.ActivitySample()
	idle := e.seen && e.sample == cur
	if idle {
		e.m.MaintainIdle(s.stop)
	} else {
		e.m.MaintainBusy()
	}
	// Snapshot the post-maintenance state: the scheduler's own helping
	// moves the sample, and reusing the pre-maintenance one would make the
	// scheduler read its own work as traffic and never conclude idle.
	e.sample, e.seen = e.m.ActivitySample(), true
	return !idle
}
