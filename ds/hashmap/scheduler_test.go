package hashmap

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newTestScheduler builds an unstarted scheduler for white-box, single-step
// service tests: no goroutine, no timer, just the sampling state.
func newTestScheduler() *Scheduler {
	return &Scheduler{
		entries: make(map[Maintainer]*schedEntry),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		wake:    make(chan struct{}, 1),
		base:    DefaultJanitorInterval,
	}
}

// TestSchedulerBalancedTrafficReadsActive is the regression test for the
// activity signal's sharpening: perfectly balanced traffic — every insert
// matched by a delete, so every stripe of the element counter ends where
// it started — must still read as active. The old signal compared the
// striped *sum* across samples and was blind to exactly this pattern (the
// steady state of any full cache); the op count is monotone, so it cannot
// be.
func TestSchedulerBalancedTrafficReadsActive(t *testing.T) {
	m := NewResizable(64)
	s := newTestScheduler()
	e := &schedEntry{m: m}

	if !s.service(e) {
		t.Fatal("first sample must read active (nothing seen yet)")
	}
	if s.service(e) {
		t.Fatal("untouched table read as active on the second sample")
	}

	netBefore := m.count.Net()
	for k := uint64(1); k <= 1000; k++ {
		if !m.Insert(k, k) {
			t.Fatalf("Insert(%d) failed", k)
		}
		if _, ok := m.Delete(k); !ok {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	if net := m.count.Net(); net != netBefore {
		t.Fatalf("traffic was not balanced: net moved %d -> %d", netBefore, net)
	}
	// The net sum is back where it was — the exact state the old signal
	// could not distinguish from idleness.
	if !s.service(e) {
		t.Fatal("balanced traffic read as idle: the activity signal regressed to the striped-sum blind spot")
	}
	if s.service(e) {
		t.Fatal("table read as active with no traffic since the last sample")
	}
}

// TestSchedulerValueUpdatesReadActive pins that in-place replacements —
// which move neither the element count nor any threshold — still feed the
// activity signal.
func TestSchedulerValueUpdatesReadActive(t *testing.T) {
	m := NewResizable(8)
	m.Insert(7, 1)
	s := newTestScheduler()
	e := &schedEntry{m: m}
	s.service(e)
	s.service(e) // settle to idle
	if _, replaced := m.Upsert(7, 2); !replaced {
		t.Fatal("Upsert did not replace")
	}
	if !s.service(e) {
		t.Fatal("value update read as idle")
	}
}

// TestSchedulerIdleBackoffWidens proves the poll interval actually backs
// off: an idle scheduler must widen its interval to the cap, and a
// registration must snap it back to the base.
func TestSchedulerIdleBackoffWidens(t *testing.T) {
	base := time.Millisecond
	s := NewScheduler(base)
	defer s.Stop()
	if got := s.Interval(); got != base {
		t.Fatalf("fresh scheduler interval = %v, want %v", got, base)
	}
	deadline := time.Now().Add(30 * time.Second)
	for s.Interval() < idleBackoffMax*base && time.Now().Before(deadline) {
		time.Sleep(base)
	}
	if got := s.Interval(); got != idleBackoffMax*base {
		t.Fatalf("idle interval = %v, want the %v cap", got, idleBackoffMax*base)
	}
	// A registration is activity: the cadence restarts at the base so the
	// new table's first sample lands promptly.
	m := NewResizable(8)
	s.Register(m)
	deadline = time.Now().Add(30 * time.Second)
	for s.Interval() != base && time.Now().Before(deadline) {
		time.Sleep(base / 2)
	}
	if got := s.Interval(); got != base {
		t.Fatalf("interval after Register = %v, want %v", got, base)
	}
}

// TestSchedulerManyTablesOneGoroutine is the sharded-fleet scenario at
// test scale: one scheduler (one goroutine) services 16 tables; each is
// grown past several resizes and drained, and every one must return to
// its floor with no caller Quiesce calls and no per-table goroutines.
func TestSchedulerManyTablesOneGoroutine(t *testing.T) {
	const tables = 16
	const floor = 64
	n := 10000
	if testing.Short() {
		n = 3000
	}
	before := runtime.NumGoroutine()
	s := NewScheduler(time.Millisecond)
	defer s.Stop()
	ms := make([]*Resizable, tables)
	for i := range ms {
		ms[i] = NewResizable(floor)
		s.Register(ms[i])
	}
	if got := s.Tables(); got != tables {
		t.Fatalf("Tables = %d, want %d", got, tables)
	}
	// One goroutine for the whole fleet. Unrelated runtime goroutines can
	// come and go, so allow slack downward but never more than +1.
	if got := runtime.NumGoroutine(); got > before+1 {
		t.Fatalf("goroutines grew from %d to %d; the fleet must cost exactly one", before, got)
	}

	var wg sync.WaitGroup
	for i := range ms {
		wg.Add(1)
		go func(m *Resizable, seed uint64) {
			defer wg.Done()
			for k := uint64(1); k <= uint64(n); k++ {
				m.Insert(k, k+seed)
			}
			for k := uint64(1); k <= uint64(n); k++ {
				m.Delete(k)
			}
		}(ms[i], uint64(i))
	}
	wg.Wait()

	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		settled := 0
		for _, m := range ms {
			if m.Buckets() == floor {
				settled++
			}
		}
		if settled == tables {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i, m := range ms {
		if got := m.Buckets(); got != floor {
			t.Errorf("table %d: buckets = %d after idle drain, want the %d floor", i, got, floor)
		}
		if got := m.Len(); got != 0 {
			t.Errorf("table %d: Len = %d after drain, want 0", i, got)
		}
		m.checkMigrationState(t)
	}
}

// TestSchedulerLifecycle pins Register/Unregister/Stop edge cases: double
// registration is a no-op, unregistered tables stop being serviced but
// keep working, Stop is idempotent, and a stopped scheduler refuses new
// registrations instead of leaking them.
func TestSchedulerLifecycle(t *testing.T) {
	s := NewScheduler(time.Millisecond)
	m := NewResizable(8)
	s.Register(m)
	s.Register(m)
	if got := s.Tables(); got != 1 {
		t.Fatalf("Tables = %d after double Register, want 1", got)
	}
	s.Unregister(m)
	if got := s.Tables(); got != 0 {
		t.Fatalf("Tables = %d after Unregister, want 0", got)
	}
	if !m.Insert(1, 1) {
		t.Fatal("unregistered table stopped working")
	}
	s.Stop()
	s.Stop() // idempotent
	s.Register(m)
	if got := s.Tables(); got != 0 {
		t.Fatalf("stopped scheduler accepted a registration (Tables = %d)", got)
	}
}

// stubMaintainer is a minimal non-table Maintainer: the scheduler must
// drive anything implementing the interface (the skip-list shards behind
// store.Ordered ride the same goroutine), choosing the idle or busy pass
// purely from the activity sample.
type stubMaintainer struct {
	sample atomic.Uint64
	idles  atomic.Int64
	busies atomic.Int64
}

func (m *stubMaintainer) ActivitySample() uint64       { return m.sample.Load() }
func (m *stubMaintainer) MaintainIdle(<-chan struct{}) { m.idles.Add(1) }
func (m *stubMaintainer) MaintainBusy()                { m.busies.Add(1) }

// TestSchedulerDrivesAnyMaintainer pins the structure-agnostic contract:
// an unchanged sample earns MaintainIdle, a changed one MaintainBusy, and
// the post-maintenance re-sample keeps the scheduler's own pass from
// reading as traffic.
func TestSchedulerDrivesAnyMaintainer(t *testing.T) {
	m := &stubMaintainer{}
	s := newTestScheduler()
	e := &schedEntry{m: m}

	if !s.service(e) {
		t.Fatal("first sample must read active (nothing seen yet)")
	}
	if got := m.busies.Load(); got != 1 {
		t.Fatalf("busies = %d after first service, want 1", got)
	}
	if s.service(e) {
		t.Fatal("unchanged sample read as active")
	}
	if got := m.idles.Load(); got != 1 {
		t.Fatalf("idles = %d after idle service, want 1", got)
	}
	m.sample.Add(1)
	if !s.service(e) {
		t.Fatal("changed sample read as idle")
	}
	if got := m.busies.Load(); got != 2 {
		t.Fatalf("busies = %d after activity, want 2", got)
	}
}

// TestSchedulerMixedFleet registers a Resizable table and a stub in one
// scheduler: both are serviced, neither starves the other, and Tables
// counts them together.
func TestSchedulerMixedFleet(t *testing.T) {
	s := NewScheduler(time.Millisecond)
	defer s.Stop()
	r := NewResizable(8)
	m := &stubMaintainer{}
	s.Register(r)
	s.Register(m)
	if got := s.Tables(); got != 2 {
		t.Fatalf("Tables = %d, want 2", got)
	}
	deadline := time.Now().Add(30 * time.Second)
	for m.idles.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if m.idles.Load() == 0 {
		t.Fatal("stub maintainer never reached an idle pass")
	}
	s.Unregister(m)
	if got := s.Tables(); got != 1 {
		t.Fatalf("Tables = %d after Unregister, want 1", got)
	}
}
