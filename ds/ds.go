// Package ds defines the interfaces shared by every concurrent data
// structure in the library. Keys and values are uint64, matching the
// paper's 8-byte keys and values; key 0 and key 2^64-1 are reserved for the
// head and tail sentinels of the list-based structures.
package ds

import "math"

// MinKey and MaxKey bound the usable key space. The sentinels of the
// list-based structures use the values outside this range.
const (
	MinKey uint64 = 1
	MaxKey uint64 = math.MaxUint64 - 1
)

// Set is the interface of the search data structures (lists, hash tables,
// skip lists, array maps): Search, Insert and Delete over unique keys (§2).
// All methods are safe for concurrent use.
type Set interface {
	// Search returns the value stored under key, if present.
	Search(key uint64) (uint64, bool)
	// Insert adds key→val if key is absent and reports whether it did.
	Insert(key, val uint64) bool
	// Delete removes key, returning its value, if present.
	Delete(key uint64) (uint64, bool)
	// Len returns the number of elements. It traverses the structure and is
	// not linearizable with respect to concurrent updates; it is meant for
	// tests and monitoring.
	Len() int
}

// Handled is implemented by structures that carry per-goroutine state, such
// as the node caches of §5.1. A Handle must be used by one goroutine at a
// time; the structure itself remains safe for direct concurrent use (a
// direct call simply skips the per-goroutine optimizations).
type Handled interface {
	Set
	// NewHandle returns a per-goroutine view of the structure.
	NewHandle() Set
}

// HandleFor returns a per-goroutine view of s when it offers one, and s
// itself otherwise. Benchmark workers call it once at startup.
func HandleFor(s Set) Set {
	if h, ok := s.(Handled); ok {
		return h.NewHandle()
	}
	return s
}

// Queue is the interface of the FIFO queues (§5.4). All methods are safe
// for concurrent use.
type Queue interface {
	// Enqueue appends val at the tail of the queue.
	Enqueue(val uint64)
	// Dequeue removes and returns the head element, if any.
	Dequeue() (uint64, bool)
	// Len returns the number of queued elements; like Set.Len it is not
	// linearizable and is meant for tests and monitoring.
	Len() int
}

// Stack is the interface of the LIFO stacks (§5.5).
type Stack interface {
	// Push places val on top of the stack.
	Push(val uint64)
	// Pop removes and returns the top element, if any.
	Pop() (uint64, bool)
	// Len returns the number of stacked elements (non-linearizable).
	Len() int
}

// CheckKey panics when key is outside the usable range. The list-based
// structures call it on the update paths; it compiles to two compares.
func CheckKey(key uint64) {
	if key < MinKey || key > MaxKey {
		panic("ds: key out of range [1, 2^64-2]; 0 and 2^64-1 are reserved for sentinels")
	}
}
