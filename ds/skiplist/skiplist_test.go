package skiplist

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/optik-go/optik/ds"
	"github.com/optik-go/optik/internal/rng"
)

func variants() map[string]func() ds.Set {
	return map[string]func() ds.Set{
		"herlihy":    func() ds.Set { return NewHerlihy() },
		"herl-optik": func() ds.Set { return NewHerlihyOptik() },
		"fraser":     func() ds.Set { return NewFraser() },
		"optik1":     func() ds.Set { return NewOptik1() },
		"optik2":     func() ds.Set { return NewOptik2() },
	}
}

func TestRandomLevelDistribution(t *testing.T) {
	counts := make([]int, MaxLevel+1)
	const draws = 200000
	for i := 0; i < draws; i++ {
		l := randomLevel()
		if l < 1 || l > MaxLevel {
			t.Fatalf("level %d out of range", l)
		}
		counts[l]++
	}
	// Geometric p=1/2: level 1 about half, level 2 about a quarter...
	if f := float64(counts[1]) / draws; f < 0.45 || f > 0.55 {
		t.Fatalf("P(level=1) = %v, want ~0.5", f)
	}
	if f := float64(counts[2]) / draws; f < 0.2 || f > 0.3 {
		t.Fatalf("P(level=2) = %v, want ~0.25", f)
	}
}

func TestSequentialSemantics(t *testing.T) {
	for name, mk := range variants() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			if _, ok := s.Search(5); ok {
				t.Fatal("found key in empty skip list")
			}
			if !s.Insert(5, 50) || s.Insert(5, 51) {
				t.Fatal("insert semantics broken")
			}
			if v, ok := s.Search(5); !ok || v != 50 {
				t.Fatalf("Search(5) = %v,%v", v, ok)
			}
			if !s.Insert(3, 30) || !s.Insert(7, 70) {
				t.Fatal("inserts failed")
			}
			if s.Len() != 3 {
				t.Fatalf("Len = %d", s.Len())
			}
			if v, ok := s.Delete(5); !ok || v != 50 {
				t.Fatalf("Delete(5) = %v,%v", v, ok)
			}
			if _, ok := s.Delete(5); ok {
				t.Fatal("double delete succeeded")
			}
			if _, ok := s.Search(5); ok {
				t.Fatal("deleted key still visible")
			}
			if s.Len() != 2 {
				t.Fatalf("Len = %d", s.Len())
			}
		})
	}
}

func TestAgainstModelSequential(t *testing.T) {
	for name, mk := range variants() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			model := map[uint64]uint64{}
			r := rng.NewXorshift(31)
			for i := 0; i < 30000; i++ {
				key := r.Intn(256) + 1
				switch r.Intn(3) {
				case 0:
					val := r.Next()
					got := s.Insert(key, val)
					_, present := model[key]
					if got == present {
						t.Fatalf("op %d: Insert(%d) = %v, present=%v", i, key, got, present)
					}
					if got {
						model[key] = val
					}
				case 1:
					gotV, got := s.Delete(key)
					wantV, want := model[key]
					if got != want || (got && gotV != wantV) {
						t.Fatalf("op %d: Delete(%d) = %v,%v want %v,%v", i, key, gotV, got, wantV, want)
					}
					delete(model, key)
				default:
					gotV, got := s.Search(key)
					wantV, want := model[key]
					if got != want || (got && gotV != wantV) {
						t.Fatalf("op %d: Search(%d) = %v,%v want %v,%v", i, key, gotV, got, wantV, want)
					}
				}
			}
			if s.Len() != len(model) {
				t.Fatalf("Len = %d, model = %d", s.Len(), len(model))
			}
		})
	}
}

func TestTallTowers(t *testing.T) {
	// Insert enough keys that multi-level towers certainly exist, then
	// check ordering queries from both ends of the key space.
	for name, mk := range variants() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			const n = 5000
			for k := uint64(1); k <= n; k++ {
				if !s.Insert(k, k*3) {
					t.Fatalf("insert %d failed", k)
				}
			}
			for _, k := range []uint64{1, 2, n / 2, n - 1, n} {
				if v, ok := s.Search(k); !ok || v != k*3 {
					t.Fatalf("Search(%d) = %v,%v", k, v, ok)
				}
			}
			if _, ok := s.Search(n + 1); ok {
				t.Fatal("phantom key")
			}
			for k := uint64(1); k <= n; k += 2 {
				if _, ok := s.Delete(k); !ok {
					t.Fatalf("delete %d failed", k)
				}
			}
			if s.Len() != n/2 {
				t.Fatalf("Len = %d, want %d", s.Len(), n/2)
			}
		})
	}
}

func TestConcurrentNetSize(t *testing.T) {
	for name, mk := range variants() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			const goroutines, iters = 8, 4000
			var net atomic.Int64
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					r := rng.NewXorshift(seed)
					for i := 0; i < iters; i++ {
						key := r.Intn(128) + 1
						if r.Intn(2) == 0 {
							if s.Insert(key, key) {
								net.Add(1)
							}
						} else {
							if _, ok := s.Delete(key); ok {
								net.Add(-1)
							}
						}
					}
				}(uint64(g + 1))
			}
			wg.Wait()
			if int64(s.Len()) != net.Load() {
				t.Fatalf("Len = %d, net = %d", s.Len(), net.Load())
			}
		})
	}
}

func TestConcurrentDisjointRanges(t *testing.T) {
	for name, mk := range variants() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			const goroutines, span = 8, 512
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(id uint64) {
					defer wg.Done()
					base := id*span + 1
					model := map[uint64]uint64{}
					r := rng.NewXorshift(id + 1)
					for i := 0; i < 3000; i++ {
						key := base + r.Intn(span/2)
						switch r.Intn(3) {
						case 0:
							val := r.Next()
							got := s.Insert(key, val)
							_, present := model[key]
							if got == present {
								t.Errorf("Insert(%d) inconsistent", key)
								return
							}
							if got {
								model[key] = val
							}
						case 1:
							gotV, got := s.Delete(key)
							wantV, want := model[key]
							if got != want || (got && gotV != wantV) {
								t.Errorf("Delete(%d) inconsistent", key)
								return
							}
							delete(model, key)
						default:
							gotV, got := s.Search(key)
							wantV, want := model[key]
							if got != want || (got && gotV != wantV) {
								t.Errorf("Search(%d) = (%d,%v) want (%d,%v)", key, gotV, got, wantV, want)
								return
							}
						}
					}
				}(uint64(g))
			}
			wg.Wait()
		})
	}
}

func TestConcurrentSingleKeyContention(t *testing.T) {
	for name, mk := range variants() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			const goroutines, iters = 8, 2000
			const key = 99
			var net atomic.Int64
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					r := rng.NewXorshift(seed)
					for i := 0; i < iters; i++ {
						if r.Intn(2) == 0 {
							if s.Insert(key, seed) {
								net.Add(1)
							}
						} else {
							if _, ok := s.Delete(key); ok {
								net.Add(-1)
							}
						}
					}
				}(uint64(g + 1))
			}
			wg.Wait()
			n := net.Load()
			if n != 0 && n != 1 {
				t.Fatalf("net = %d", n)
			}
			if int64(s.Len()) != n {
				t.Fatalf("Len = %d, net = %d", s.Len(), n)
			}
		})
	}
}

func TestValueIntegrityUnderChurn(t *testing.T) {
	for name, mk := range variants() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					r := rng.NewXorshift(seed)
					for {
						select {
						case <-stop:
							return
						default:
						}
						key := r.Intn(64) + 1
						if r.Intn(2) == 0 {
							s.Insert(key, key*13)
						} else {
							s.Delete(key)
						}
					}
				}(uint64(g + 1))
			}
			r := rng.NewXorshift(555)
			for i := 0; i < 20000; i++ {
				key := r.Intn(64) + 1
				if v, ok := s.Search(key); ok && v != key*13 {
					t.Errorf("foreign value %d under key %d", v, key)
					break
				}
			}
			close(stop)
			wg.Wait()
		})
	}
}
