package skiplist

import (
	"sync"
	"testing"
	"time"

	"github.com/optik-go/optik/internal/qsbr"
	"github.com/optik-go/optik/internal/rng"
)

func TestOptikUpsert(t *testing.T) {
	s := NewOptik2()
	if old, replaced := s.Upsert(5, 50); replaced || old != 0 {
		t.Fatalf("Upsert on absent key = %d,%v", old, replaced)
	}
	if v, ok := s.Search(5); !ok || v != 50 {
		t.Fatalf("Search(5) = %d,%v", v, ok)
	}
	if old, replaced := s.Upsert(5, 55); !replaced || old != 50 {
		t.Fatalf("Upsert on present key = %d,%v", old, replaced)
	}
	if v, ok := s.Search(5); !ok || v != 55 {
		t.Fatalf("Search(5) after replace = %d,%v", v, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after two upserts of one key", s.Len())
	}
	if v, ok := s.Delete(5); !ok || v != 55 {
		t.Fatalf("Delete(5) = %d,%v", v, ok)
	}
}

func TestOptikScanRange(t *testing.T) {
	s := NewOptik2()
	for k := uint64(10); k <= 100; k += 10 {
		s.Insert(k, k*2)
	}
	keys := make([]uint64, 16)
	vals := make([]uint64, 16)

	n := s.ScanRange(25, 75, keys, vals)
	want := []uint64{30, 40, 50, 60, 70}
	if n != len(want) {
		t.Fatalf("ScanRange(25,75) = %d entries, want %d", n, len(want))
	}
	for i, k := range want {
		if keys[i] != k || vals[i] != k*2 {
			t.Fatalf("entry %d = %d/%d, want %d/%d", i, keys[i], vals[i], k, k*2)
		}
	}

	// Inclusive bounds.
	if n := s.ScanRange(10, 100, keys, vals); n != 10 {
		t.Fatalf("inclusive full scan = %d, want 10", n)
	}
	// Page cap.
	if n := s.ScanRange(10, 100, keys[:3], vals[:3]); n != 3 || keys[2] != 30 {
		t.Fatalf("capped scan = %d (keys[2]=%d), want 3 ending at 30", n, keys[2])
	}
	// Empty window and inverted range.
	if n := s.ScanRange(41, 49, keys, vals); n != 0 {
		t.Fatalf("empty window scan = %d", n)
	}
	if n := s.ScanRange(70, 30, keys, vals); n != 0 {
		t.Fatalf("inverted range scan = %d", n)
	}
	// Deleted keys disappear from scans.
	s.Delete(50)
	if n := s.ScanRange(25, 75, keys, vals); n != 4 {
		t.Fatalf("scan after delete = %d, want 4", n)
	}
}

func TestOptikMinMax(t *testing.T) {
	s := NewOptik2()
	if _, _, ok := s.Min(); ok {
		t.Fatal("Min on empty list")
	}
	if _, _, ok := s.Max(); ok {
		t.Fatal("Max on empty list")
	}
	for _, k := range []uint64{40, 10, 90, 60} {
		s.Insert(k, k+1)
	}
	if k, v, ok := s.Min(); !ok || k != 10 || v != 11 {
		t.Fatalf("Min = %d/%d/%v", k, v, ok)
	}
	if k, v, ok := s.Max(); !ok || k != 90 || v != 91 {
		t.Fatalf("Max = %d/%d/%v", k, v, ok)
	}
	s.Delete(10)
	s.Delete(90)
	if k, _, ok := s.Min(); !ok || k != 40 {
		t.Fatalf("Min after deletes = %d/%v", k, ok)
	}
	if k, _, ok := s.Max(); !ok || k != 60 {
		t.Fatalf("Max after deletes = %d/%v", k, ok)
	}
}

func TestOptikBatchOps(t *testing.T) {
	s := NewOptik2()
	keys := []uint64{3, 1, 4, 1, 5}
	vals := []uint64{30, 10, 40, 11, 50}
	old := make([]uint64, len(keys))
	replaced := make([]bool, len(keys))

	if ins := s.UpsertBatchEach(keys, vals, old, replaced); ins != 4 {
		t.Fatalf("UpsertBatchEach inserted %d, want 4", ins)
	}
	if !replaced[3] || old[3] != 10 {
		t.Fatalf("duplicate key in batch: replaced=%v old=%d", replaced[3], old[3])
	}

	got := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	s.SearchBatch(keys, got, found)
	for i := range keys {
		if !found[i] {
			t.Fatalf("key %d not found after batch upsert", keys[i])
		}
	}
	if got[1] != 11 {
		t.Fatalf("key 1 = %d, want the later batch value 11", got[1])
	}

	if rem := s.DeleteBatchEach([]uint64{1, 2, 3}, old[:3], found[:3]); rem != 2 {
		t.Fatalf("DeleteBatchEach removed %d, want 2", rem)
	}
	if found[1] {
		t.Fatal("absent key 2 reported found by batch delete")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d after batch delete, want 2", s.Len())
	}
}

// TestOptikPoolRecycles is the ordered-index half of the recycling
// acceptance bar: with a pool-backed list, deleted towers must come back
// out of Alloc after quiescent passes — ReclaimStats showing reuse — with
// the callers never invoking a quiesce themselves (here the test drives
// the epoch via a scheduler-shaped sweep: release/re-acquire cycles).
func TestOptikPoolRecycles(t *testing.T) {
	d := qsbr.NewDomain()
	p := qsbr.NewPool(d, 8)
	s := NewOptikPool(p)
	if s.Pool() != p {
		t.Fatal("Pool accessor broken")
	}

	// Churn one key: every delete retires a tower, and because each op
	// borrows and releases a pool slot (which runs a quiescent sweep on
	// release), retired towers become allocatable for later inserts.
	for i := 0; i < 2000; i++ {
		k := uint64(1 + i%16)
		s.Insert(k, k)
		s.Delete(k)
	}
	retired, reclaimed, reused := s.ReclaimStats()
	if retired == 0 {
		t.Fatal("no towers retired under churn")
	}
	if reclaimed == 0 {
		t.Fatal("no towers reclaimed: epoch never advanced")
	}
	if reused == 0 {
		t.Fatalf("no towers reused (retired %d, reclaimed %d)", retired, reclaimed)
	}
}

// TestOptikPoolConcurrent hammers a pool-backed list from writers and
// scanners at once: recycled towers must never corrupt the order or leak
// marked nodes into scan pages. Run under -race this also exercises the
// epoch protection story (pinned traversals vs recycling resets).
func TestOptikPoolConcurrent(t *testing.T) {
	d := qsbr.NewDomain()
	p := qsbr.NewPool(d, 64)
	s := NewOptikPool(p)
	const keyRange = 512
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.NewXorshift(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := r.Intn(keyRange) + 1
				switch r.Intn(3) {
				case 0:
					s.Insert(k, k)
				case 1:
					s.Upsert(k, k+1)
				default:
					s.Delete(k)
				}
			}
		}(uint64(w + 1))
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			keys := make([]uint64, 64)
			vals := make([]uint64, 64)
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := s.ScanRange(1, keyRange, keys, vals)
				for i := 1; i < n; i++ {
					if keys[i] <= keys[i-1] {
						panic("scan page out of order")
					}
				}
				s.Min()
				s.Max()
			}
		}()
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	// The list must still be coherent after the churn.
	keys := make([]uint64, keyRange+1)
	vals := make([]uint64, keyRange+1)
	n := s.ScanRange(1, keyRange, keys, vals)
	if n != s.Len() {
		t.Fatalf("scan sees %d entries, Len reports %d", n, s.Len())
	}
	for i := 0; i < n; i++ {
		if v, ok := s.Search(keys[i]); !ok || (v != keys[i] && v != keys[i]+1) {
			t.Fatalf("scanned key %d: Search = %d,%v", keys[i], v, ok)
		}
	}
}
